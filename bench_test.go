// Package main_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper. Each iteration regenerates
// the artifact end to end (scenario construction, multi-seed simulation,
// extraction) in quick mode; run with
//
//	go test -bench=. -benchmem
//
// For paper-faithful sweeps (5 seeds × 5 s per point) use
// cmd/experiments instead; benchmarks favor bounded runtime.
package main_test

import (
	"fmt"
	"testing"

	"greedy80211/internal/experiments"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
)

// benchArtifact runs one registered artifact per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.RunConfig{Quick: true, BaseSeed: 11}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 && len(res.Series) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

// One benchmark per evaluation artifact (fig20 is a flow chart; no data).

func BenchmarkExpFig1(b *testing.B)  { benchArtifact(b, "fig1") }
func BenchmarkExpFig2(b *testing.B)  { benchArtifact(b, "fig2") }
func BenchmarkExpFig3(b *testing.B)  { benchArtifact(b, "fig3") }
func BenchmarkExpFig4(b *testing.B)  { benchArtifact(b, "fig4") }
func BenchmarkExpFig5(b *testing.B)  { benchArtifact(b, "fig5") }
func BenchmarkExpFig6(b *testing.B)  { benchArtifact(b, "fig6") }
func BenchmarkExpFig7(b *testing.B)  { benchArtifact(b, "fig7") }
func BenchmarkExpFig8(b *testing.B)  { benchArtifact(b, "fig8") }
func BenchmarkExpFig9(b *testing.B)  { benchArtifact(b, "fig9") }
func BenchmarkExpFig10(b *testing.B) { benchArtifact(b, "fig10") }
func BenchmarkExpFig11(b *testing.B) { benchArtifact(b, "fig11") }
func BenchmarkExpFig12(b *testing.B) { benchArtifact(b, "fig12") }
func BenchmarkExpFig13(b *testing.B) { benchArtifact(b, "fig13") }
func BenchmarkExpFig14(b *testing.B) { benchArtifact(b, "fig14") }
func BenchmarkExpFig15(b *testing.B) { benchArtifact(b, "fig15") }
func BenchmarkExpFig16(b *testing.B) { benchArtifact(b, "fig16") }
func BenchmarkExpFig17(b *testing.B) { benchArtifact(b, "fig17") }
func BenchmarkExpFig18(b *testing.B) { benchArtifact(b, "fig18") }
func BenchmarkExpFig19(b *testing.B) { benchArtifact(b, "fig19") }
func BenchmarkExpFig21(b *testing.B) { benchArtifact(b, "fig21") }
func BenchmarkExpFig22(b *testing.B) { benchArtifact(b, "fig22") }
func BenchmarkExpFig23(b *testing.B) { benchArtifact(b, "fig23") }
func BenchmarkExpFig24(b *testing.B) { benchArtifact(b, "fig24") }
func BenchmarkExpTab1(b *testing.B)  { benchArtifact(b, "tab1") }
func BenchmarkExpTab2(b *testing.B)  { benchArtifact(b, "tab2") }
func BenchmarkExpTab3(b *testing.B)  { benchArtifact(b, "tab3") }
func BenchmarkExpTab4(b *testing.B)  { benchArtifact(b, "tab4") }
func BenchmarkExpTab5(b *testing.B)  { benchArtifact(b, "tab5") }
func BenchmarkExpTab6(b *testing.B)  { benchArtifact(b, "tab6") }
func BenchmarkExpTab7(b *testing.B)  { benchArtifact(b, "tab7") }
func BenchmarkExpTab8(b *testing.B)  { benchArtifact(b, "tab8") }
func BenchmarkExpTab9(b *testing.B)  { benchArtifact(b, "tab9") }
func BenchmarkExpExtA(b *testing.B)  { benchArtifact(b, "exta") }
func BenchmarkExpExtB(b *testing.B)  { benchArtifact(b, "extb") }
func BenchmarkExpExtC(b *testing.B)  { benchArtifact(b, "extc") }
func BenchmarkExpAbl1(b *testing.B)  { benchArtifact(b, "abl1") }
func BenchmarkExpAbl2(b *testing.B)  { benchArtifact(b, "abl2") }
func BenchmarkExpAbl3(b *testing.B)  { benchArtifact(b, "abl3") }

// BenchmarkSimulatorThroughput measures raw simulator speed on a saturated
// two-pair 802.11b UDP hotspot: one op is one simulated second. Events are
// accumulated across iterations and reported once, normalized per op and
// per wall-clock second. Run with -benchmem to see the scheduler's
// allocation behavior (the event queue recycles its storage, so allocs/op
// stays flat as simulated time grows).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:    scenario.Config{Seed: int64(i + 1), UseRTSCTS: true},
			N:         2,
			Transport: scenario.UDP,
		})
		if err != nil {
			b.Fatal(err)
		}
		w.Run(sim.Second)
		events += w.Sched.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// TestSimulatorAllocBudget is the allocation-budget gate on the hot
// path: one op of the throughput workload (world construction plus one
// simulated second, ~18k scheduler events and ~1.9k frame exchanges)
// must stay within budget. The pooled simulator sits around 250
// allocs/op — almost all world construction — against a pre-pooling
// baseline of ~20k; the budget of 2,000 leaves headroom for legitimate
// construction growth while still catching any per-event or
// per-exchange allocation sneaking back into the steady state.
func TestSimulatorAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const budget = 2000
	seed := int64(0)
	avg := testing.AllocsPerRun(5, func() {
		seed++
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:    scenario.Config{Seed: seed, UseRTSCTS: true},
			N:         2,
			Transport: scenario.UDP,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Run(sim.Second)
	})
	if avg > budget {
		t.Errorf("simulator workload allocates %.0f allocs/op, budget %d", avg, budget)
	}
	t.Logf("allocs/op = %.0f (budget %d)", avg, budget)
}

// TestDenseWorldAllocBudget is the allocation-budget gate on the
// multi-BSS fan-out path: a 4×4 grid of BSSs (336 radios, 320 flows,
// the bench suite's dense_world reference case) run for one simulated
// second must stay within budget. Neighbor tables are built once per
// topology generation and arrivals ride the pooled arena, so
// steady-state delivery allocates nothing; the budget covers world
// construction (which scales with radio and flow count) plus headroom,
// and catches any per-delivery allocation sneaking into the scoped
// path.
func TestDenseWorldAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const budget = 40000
	prop := phys.GRCPropagation()
	seed := int64(0)
	avg := testing.AllocsPerRun(5, func() {
		seed++
		w, err := scenario.BuildCells(scenario.CellsConfig{
			Config: scenario.Config{Seed: seed, Propagation: &prop},
			Topology: scenario.TopologySpec{
				NumCells:        16,
				GridCols:        4,
				ChannelPlan:     []int{1, 6, 11},
				DefaultStations: 20,
				DefaultUplink:   5,
			},
			CBRRateBps: 2e5,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Run(sim.Second)
	})
	if avg > budget {
		t.Errorf("dense world allocates %.0f allocs/op, budget %d", avg, budget)
	}
	t.Logf("allocs/op = %.0f (budget %d)", avg, budget)
}

// BenchmarkScale measures how cost grows with the number of contending
// pairs.
func BenchmarkScale(b *testing.B) {
	for _, pairs := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("pairs=%d", pairs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := scenario.BuildPairs(scenario.PairsConfig{
					Config:    scenario.Config{Seed: int64(i + 1), UseRTSCTS: true},
					N:         pairs,
					Transport: scenario.UDP,
				})
				if err != nil {
					b.Fatal(err)
				}
				w.Run(sim.Second)
			}
		})
	}
}
