// ack_spoofing_wan reproduces the paper's most damaging ACK-spoofing
// setting (Fig 15/16): TCP senders at a remote site reach hotspot clients
// through a wired backhaul, and a greedy client spoofs MAC-layer ACKs on
// behalf of its neighbor. Every suppressed MAC retransmission then costs
// the victim a full WAN round trip of end-to-end recovery.
package main

import (
	"fmt"
	"log"

	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/transport"
	"greedy80211/internal/wireline"
)

func buildWorld(seed int64, wiredDelay sim.Time, spoof bool) (*scenario.World, error) {
	w, err := scenario.NewWorld(scenario.Config{
		Seed:         seed,
		UseRTSCTS:    true,
		Error:        phys.BERSpec(2e-5), // the paper's wireless loss for this study
		ForceCapture: true,
	})
	if err != nil {
		return nil, err
	}
	if _, err := w.AddStation("victim", phys.Position{X: 5}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	attacker := scenario.StationOpts{}
	if spoof {
		v, _ := w.Station("victim")
		attacker.Policy = greedy.NewACKSpoofer(w.Sched.RNG(), 100, v.ID)
	}
	if _, err := w.AddStation("attacker", phys.Position{X: 5, Y: 5}, attacker); err != nil {
		return nil, err
	}
	if _, err := w.AddStation("AP", phys.Position{}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	for i, host := range []string{"server1", "server2"} {
		if _, err := w.AddWiredHost(host); err != nil {
			return nil, err
		}
		if err := w.ConnectWired(host, "AP", wireline.Config{
			Delay: wiredDelay, RateBps: 100e6,
		}); err != nil {
			return nil, err
		}
		rx := []string{"victim", "attacker"}[i]
		if _, err := w.AddTCPFlow(i+1, host, rx, transport.DefaultTCPConfig(i+1)); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func main() {
	victim := stats.Series{Name: "victim (Mbps)"}
	attacker := stats.Series{Name: "attacker (Mbps)"}
	victimBase := stats.Series{Name: "victim w/o attack (Mbps)"}

	for _, ms := range []float64{2, 50, 100, 200, 400} {
		delay := sim.FromSeconds(ms / 1000)
		const d = 6 * sim.Second

		base, err := buildWorld(7, delay, false)
		if err != nil {
			log.Fatalf("ack_spoofing_wan: %v", err)
		}
		base.Run(d)
		b1, _ := base.Flow(1)
		victimBase.Add(ms, b1.GoodputMbps(d))

		att, err := buildWorld(7, delay, true)
		if err != nil {
			log.Fatalf("ack_spoofing_wan: %v", err)
		}
		att.Run(d)
		a1, _ := att.Flow(1)
		a2, _ := att.Flow(2)
		victim.Add(ms, a1.GoodputMbps(d))
		attacker.Add(ms, a2.GoodputMbps(d))

		gr, _ := att.Station("attacker")
		fmt.Printf("wired delay %3.0f ms: attacker forged %d MAC ACKs\n",
			ms, gr.DCF.Counters().SpoofedACKsSent)
	}

	fmt.Println()
	fmt.Println(stats.FormatSeries("wired_latency_ms", victimBase, victim, attacker))
	fmt.Println("The damage grows with wireline latency: each spoof-suppressed MAC")
	fmt.Println("retransmission becomes an end-to-end TCP recovery over the WAN.")
}
