// Quickstart: a two-flow 802.11b hotspot where one receiver inflates its
// CTS/ACK NAV, with and without the GRC countermeasure. This is the
// paper's headline result in ~40 lines against the high-level API.
package main

import (
	"fmt"
	"log"

	"greedy80211/internal/core"
	"greedy80211/internal/sim"
)

func main() {
	base := core.Config{
		Seed:         1,
		Runs:         3,
		Duration:     4 * sim.Second,
		Misbehavior:  core.MisbehaviorNAVInflation,
		NAVInflation: 10 * sim.Millisecond,
	}

	attacked, err := core.Run(base)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	protected := base
	protected.EnableGRC = true
	defended, err := core.Run(protected)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("Greedy receiver inflating CTS/ACK NAV by 10 ms (802.11b, UDP):")
	fmt.Printf("  unprotected: greedy %.2f Mbps, normal %.2f Mbps\n",
		attacked.Goodput.GreedyMbps, attacked.Goodput.NormalMbps)
	fmt.Printf("  with GRC:    greedy %.2f Mbps, normal %.2f Mbps"+
		" (%.0f NAV corrections per run)\n",
		defended.Goodput.GreedyMbps, defended.Goodput.NormalMbps,
		defended.GRC.NAVCorrections)

	if attacked.Goodput.NormalMbps < 0.2 && defended.Goodput.NormalMbps > 1.0 {
		fmt.Println("  -> the attack starves the normal flow; GRC restores fairness.")
	}
}
