// airtime_forensics shows how to *see* a greedy receiver at work: a
// channel-tap recorder accounts per-station airtime while a DOMINO-style
// sender-side monitor (the prior art the paper argues against) watches
// backoff compliance. The NAV-inflating receiver's sender ends up owning
// the channel — with every sender contending perfectly normally, which is
// exactly why sender-side detection cannot catch receiver misbehavior.
package main

import (
	"fmt"
	"log"

	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/mac"
	"greedy80211/internal/medium"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
)

// fanoutTap duplicates channel events to several taps.
type fanoutTap []medium.Tap

func (f fanoutTap) OnTransmit(src mac.NodeID, fr *mac.Frame, start, airtime sim.Time) {
	for _, t := range f {
		t.OnTransmit(src, fr, start, airtime)
	}
}

func (f fanoutTap) OnReceive(dst mac.NodeID, fr *mac.Frame, info mac.RxInfo, at sim.Time) {
	for _, t := range f {
		t.OnReceive(dst, fr, info, at)
	}
}

func main() {
	rec := trace.NewRecorder(24)
	dom := detect.NewDomino(phys.Params80211B(), 0.5, 20)

	w, err := scenario.BuildPairs(scenario.PairsConfig{
		Config: scenario.Config{
			Seed:      7,
			UseRTSCTS: true,
			Trace:     fanoutTap{rec, dom},
		},
		N:         2,
		Transport: scenario.UDP,
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if i != 1 {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{Policy: greedy.NewNAVInflation(
				w.Sched.RNG(), greedy.CTSAndACK, 10*sim.Millisecond, 100)}
		},
	})
	if err != nil {
		log.Fatalf("airtime_forensics: %v", err)
	}
	const d = 4 * sim.Second
	w.Run(d)

	fmt.Println("Per-flow goodput (R2 inflates CTS/ACK NAV by 10 ms):")
	for _, fl := range w.Flows() {
		fmt.Printf("  flow %d (%s -> %s): %.2f Mbps\n", fl.ID, fl.From, fl.To, fl.GoodputMbps(d))
	}

	fmt.Println("\nChannel accounting (trace.Recorder):")
	fmt.Print(rec.Summary(d))

	fmt.Println("\nDOMINO backoff monitor (sender-side prior art):")
	for _, v := range dom.Verdicts() {
		status := "compliant"
		if v.FlaggedCheat {
			status = "FLAGGED"
		}
		if v.Samples < 20 {
			status = "too few samples"
		}
		fmt.Printf("  station %d: %d acquisitions, avg backoff %.1f slots (nominal %.1f) — %s\n",
			v.Station, v.Samples, v.AvgBackoff, v.Nominal, status)
	}
	fmt.Println("\nEvery sender contends normally — the receiver-side attack is invisible")
	fmt.Println("to sender-side monitors. GRC (examples/detection_grc) catches it.")

	fmt.Println("\nLast channel events:")
	for _, e := range rec.Events()[:8] {
		fmt.Println(" ", e)
	}
}
