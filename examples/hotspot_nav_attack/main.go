// hotspot_nav_attack sweeps NAV-inflation amount and frame set over two
// competing TCP flows (the paper's Fig 4), using the scenario API directly
// for full control over policies and counters.
package main

import (
	"fmt"
	"log"

	"greedy80211/internal/greedy"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
)

func main() {
	frameSets := []struct {
		name string
		set  greedy.FrameSet
	}{
		{"CTS", greedy.CTSOnly},
		{"RTS+CTS", greedy.RTSAndCTS},
		{"ACK", greedy.ACKOnly},
		{"all frames", greedy.AllFrames},
	}
	inflationsMs := []float64{0, 2, 5, 10, 31}

	for _, fsp := range frameSets {
		nr := stats.Series{Name: "normal (Mbps)"}
		gr := stats.Series{Name: "greedy (Mbps)"}
		for _, ms := range inflationsMs {
			extra := sim.FromSeconds(ms / 1000)
			w, err := scenario.BuildPairs(scenario.PairsConfig{
				Config:    scenario.Config{Seed: 42, UseRTSCTS: true},
				N:         2,
				Transport: scenario.TCP,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if i != 1 || extra == 0 {
						return scenario.StationOpts{}
					}
					return scenario.StationOpts{
						Policy: greedy.NewNAVInflation(w.Sched.RNG(), fsp.set, extra, 100),
					}
				},
			})
			if err != nil {
				log.Fatalf("hotspot_nav_attack: %v", err)
			}
			const d = 4 * sim.Second
			w.Run(d)
			f1, _ := w.Flow(1)
			f2, _ := w.Flow(2)
			nr.Add(ms, f1.GoodputMbps(d))
			gr.Add(ms, f2.GoodputMbps(d))
		}
		fmt.Printf("Inflating NAV on %s frames:\n", fsp.name)
		fmt.Println(stats.FormatSeries("nav_increase_ms", nr, gr))
	}
	fmt.Println("Inflating all frames causes the largest damage; a TCP receiver")
	fmt.Println("also inflates RTS/DATA because its TCP ACKs are MAC data frames.")
}
