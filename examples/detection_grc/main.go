// detection_grc demonstrates the full GRC countermeasure (Section VII)
// against all three misbehaviors: NAV clamping, RSSI-based spoofed-ACK
// rejection, and probing-based fake-ACK detection.
package main

import (
	"fmt"
	"log"

	"greedy80211/internal/core"
	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
)

func main() {
	demoNAV()
	demoSpoof()
	demoFakeACK()
}

// demoNAV: misbehavior 1 vs the NAV guard.
func demoNAV() {
	run := func(grc bool) core.Result {
		res, err := core.Run(core.Config{
			Seed: 1, Runs: 3, Duration: 4 * sim.Second,
			Misbehavior:  core.MisbehaviorNAVInflation,
			NAVInflation: 31 * sim.Millisecond,
			NAVFrames:    greedy.CTSOnly,
			EnableGRC:    grc,
		})
		if err != nil {
			log.Fatalf("detection_grc: %v", err)
		}
		return res
	}
	att, def := run(false), run(true)
	fmt.Println("[1] NAV inflation (+31 ms on CTS):")
	fmt.Printf("    without GRC: normal %.2f / greedy %.2f Mbps\n",
		att.Goodput.NormalMbps, att.Goodput.GreedyMbps)
	fmt.Printf("    with GRC:    normal %.2f / greedy %.2f Mbps (%.0f NAVs clamped/run)\n",
		def.Goodput.NormalMbps, def.Goodput.GreedyMbps, def.GRC.NAVCorrections)
}

// demoSpoof: misbehavior 2 vs the RSSI median check.
func demoSpoof() {
	run := func(grc bool) core.Result {
		res, err := core.Run(core.Config{
			Seed: 2, Runs: 3, Duration: 4 * sim.Second,
			Transport:   scenario.TCP,
			Misbehavior: core.MisbehaviorACKSpoofing,
			BER:         4.4e-4,
			EnableGRC:   grc,
		})
		if err != nil {
			log.Fatalf("detection_grc: %v", err)
		}
		return res
	}
	att, def := run(false), run(true)
	fmt.Println("[2] ACK spoofing (TCP, BER 4.4e-4):")
	fmt.Printf("    without GRC: victim %.2f / attacker %.2f Mbps\n",
		att.Goodput.NormalMbps, att.Goodput.GreedyMbps)
	fmt.Printf("    with GRC:    victim %.2f / attacker %.2f Mbps (%.0f spoofed ACKs ignored/run)\n",
		def.Goodput.NormalMbps, def.Goodput.GreedyMbps, def.GRC.SpoofsIgnored)
}

// demoFakeACK: misbehavior 3 vs the probing loss-consistency check.
func demoFakeACK() {
	run := func(fake bool) (macLoss, appLoss float64) {
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:     scenario.Config{Seed: 3, UseRTSCTS: true, Error: phys.BERSpec(8e-4)},
			N:          1,
			Transport:  scenario.UDP,
			CBRRateBps: 5e5,
			ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
				if !fake {
					return scenario.StationOpts{}
				}
				return scenario.StationOpts{Policy: greedy.NewFakeACKer(w.Sched.RNG(), 100)}
			},
		})
		if err != nil {
			log.Fatalf("detection_grc: %v", err)
		}
		probe, err := w.AddProbeFlow(99, scenario.SenderName(0), scenario.ReceiverName(0),
			20*sim.Millisecond)
		if err != nil {
			log.Fatalf("detection_grc: %v", err)
		}
		w.Run(8 * sim.Second)
		s, _ := w.Station(scenario.SenderName(0))
		c := s.DCF.Counters()
		return float64(c.ACKTimeouts) / float64(c.DataSent), probe.Prober.AppLoss()
	}
	det := detect.NewFakeACKDetector(phys.Params80211B().LongRetryLimit, 0.02)
	fmt.Println("[3] fake ACKs (UDP, BER 8e-4), probing detector:")
	for _, tc := range []struct {
		name string
		fake bool
	}{{"honest receiver", false}, {"fake-ACKing receiver", true}} {
		macLoss, appLoss := run(tc.fake)
		fmt.Printf("    %-21s macLoss=%.3f appLoss=%.3f expected≤%.3f detected=%v\n",
			tc.name, macLoss, appLoss, det.ExpectedAppLoss(macLoss)+0.02,
			det.Evaluate(macLoss, appLoss))
	}
}
