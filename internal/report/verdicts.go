package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"greedy80211/internal/stats"
)

// verdicts.json: the machine-readable twin of RESULTS.md, for tooling
// that wants the verdicts without parsing Markdown. Encoding is stable
// (fixed field order, sorted-by-construction artifact order, NaN mapped
// to null — encoding/json cannot represent NaN).

type verdictsDoc struct {
	Module  string `json:"module"`
	Config  Config `json:"config"`
	Pass    int    `json:"pass"`
	Drift   int    `json:"drift"`
	Fail    int    `json:"fail"`
	Missing int    `json:"missing"`
	// Model tallies cover only the checks with analytic-tier bands;
	// advisory, except model_missing which CI's analytic-check trips on.
	ModelPass    int                `json:"model_pass"`
	ModelDrift   int                `json:"model_drift"`
	ModelFail    int                `json:"model_fail"`
	ModelMissing int                `json:"model_missing"`
	Artifacts    []verdictsArtifact `json:"artifacts"`
}

type verdictsArtifact struct {
	Artifact string          `json:"artifact"`
	Paper    string          `json:"paper"`
	Verdict  stats.Verdict   `json:"verdict"`
	Checks   []verdictsCheck `json:"checks"`
}

type verdictsCheck struct {
	ID      string        `json:"id"`
	Kind    string        `json:"kind"`
	Want    *float64      `json:"want,omitempty"`
	Got     *float64      `json:"got"`
	GotText string        `json:"got_text,omitempty"`
	Pass    stats.Band    `json:"pass,omitempty"`
	Fail    stats.Band    `json:"fail,omitempty"`
	Verdict stats.Verdict `json:"verdict"`
	// Model fields are present only for checks under analytic-tier
	// coverage (model bands declared in refdata).
	Model        *float64      `json:"model,omitempty"`
	ModelPass    stats.Band    `json:"model_pass,omitempty"`
	ModelFail    stats.Band    `json:"model_fail,omitempty"`
	ModelVerdict stats.Verdict `json:"model_verdict,omitempty"`
}

func jsonFloat(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// WriteVerdicts encodes the report's verdicts as indented JSON.
func WriteVerdicts(w io.Writer, rep *Report) error {
	doc := verdictsDoc{
		Module:       rep.Module,
		Config:       rep.Config,
		Pass:         rep.Pass,
		Drift:        rep.Drift,
		Fail:         rep.Fail,
		Missing:      rep.Missing,
		ModelPass:    rep.ModelPass,
		ModelDrift:   rep.ModelDrift,
		ModelFail:    rep.ModelFail,
		ModelMissing: rep.ModelMissing,
	}
	for _, ar := range rep.Artifacts {
		va := verdictsArtifact{Artifact: ar.Artifact, Paper: ar.Paper, Verdict: ar.Verdict()}
		for _, c := range ar.Checks {
			vc := verdictsCheck{
				ID:      c.ID,
				Kind:    c.Kind,
				Got:     jsonFloat(c.Got),
				GotText: c.GotText,
				Pass:    c.Pass,
				Fail:    c.Fail,
				Verdict: c.Verdict,
			}
			if c.Kind != "text" {
				vc.Want = jsonFloat(c.Want)
			}
			if c.HasModel() {
				vc.Model = jsonFloat(c.Model)
				vc.ModelPass = c.ModelPass
				vc.ModelFail = c.ModelFail
				vc.ModelVerdict = c.ModelVerdict
			}
			va.Checks = append(va.Checks, vc)
		}
		doc.Artifacts = append(doc.Artifacts, va)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("report: verdicts: %w", err)
	}
	return nil
}
