package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"greedy80211/internal/stats"
)

// verdicts.json: the machine-readable twin of RESULTS.md, for tooling
// that wants the verdicts without parsing Markdown. Encoding is stable
// (fixed field order, sorted-by-construction artifact order, NaN mapped
// to null — encoding/json cannot represent NaN).

type verdictsDoc struct {
	Module    string             `json:"module"`
	Config    Config             `json:"config"`
	Pass      int                `json:"pass"`
	Drift     int                `json:"drift"`
	Fail      int                `json:"fail"`
	Missing   int                `json:"missing"`
	Artifacts []verdictsArtifact `json:"artifacts"`
}

type verdictsArtifact struct {
	Artifact string          `json:"artifact"`
	Paper    string          `json:"paper"`
	Verdict  stats.Verdict   `json:"verdict"`
	Checks   []verdictsCheck `json:"checks"`
}

type verdictsCheck struct {
	ID      string        `json:"id"`
	Kind    string        `json:"kind"`
	Want    *float64      `json:"want,omitempty"`
	Got     *float64      `json:"got"`
	GotText string        `json:"got_text,omitempty"`
	Pass    stats.Band    `json:"pass,omitempty"`
	Fail    stats.Band    `json:"fail,omitempty"`
	Verdict stats.Verdict `json:"verdict"`
}

func jsonFloat(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// WriteVerdicts encodes the report's verdicts as indented JSON.
func WriteVerdicts(w io.Writer, rep *Report) error {
	doc := verdictsDoc{
		Module:  rep.Module,
		Config:  rep.Config,
		Pass:    rep.Pass,
		Drift:   rep.Drift,
		Fail:    rep.Fail,
		Missing: rep.Missing,
	}
	for _, ar := range rep.Artifacts {
		va := verdictsArtifact{Artifact: ar.Artifact, Paper: ar.Paper, Verdict: ar.Verdict()}
		for _, c := range ar.Checks {
			vc := verdictsCheck{
				ID:      c.ID,
				Kind:    c.Kind,
				Got:     jsonFloat(c.Got),
				GotText: c.GotText,
				Pass:    c.Pass,
				Fail:    c.Fail,
				Verdict: c.Verdict,
			}
			if c.Kind != "text" {
				vc.Want = jsonFloat(c.Want)
			}
			va.Checks = append(va.Checks, vc)
		}
		doc.Artifacts = append(doc.Artifacts, va)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("report: verdicts: %w", err)
	}
	return nil
}
