package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greedy80211/internal/experiments"
	"greedy80211/internal/metrics"
	"greedy80211/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderMarkdownGolden pins the full RESULTS.md rendering — layout,
// sparklines, number formatting, verdict icons, footer — against a
// checked-in golden file built from a synthetic report that exercises
// every verdict and check kind.
func TestRenderMarkdownGolden(t *testing.T) {
	sets := fixtureSet(
		Check{ID: "pass-point", Kind: "point", Series: "A (Mbps)", X: 0,
			Paper: f(1.6), Want: 2.0, Pass: stats.Band{Rel: 0.25}, Fail: stats.Band{Rel: 0.75},
			Note: "baseline share"},
		Check{ID: "drift-point", Kind: "point", Series: "A (Mbps)", X: 1,
			Want: 1.0, Pass: stats.Band{Rel: 0.25}, Fail: stats.Band{Rel: 0.75},
			Note: "halved but trend intact"},
		Check{ID: "fail-ratio", Kind: "ratio", Series: "A (Mbps)", Denom: "B (Mbps)", X: 1,
			Want: 2.0, Pass: stats.Band{Rel: 0.1}, Fail: stats.Band{Rel: 0.2}},
		Check{ID: "missing-series", Kind: "point", Series: "Z", X: 0,
			Want: 1.0, Pass: stats.Band{Rel: 0.1}},
		Check{ID: "cell-zero-want", Kind: "cell", Col: "v", Key: "base",
			Paper: f(0), Want: 10, Pass: stats.Band{Rel: 0.05}},
		Check{ID: "text-flag", Kind: "text", Col: "flag", Key: "base", WantText: "no"},
	)
	snaps := map[string][]*metrics.Snapshot{
		"fig1": {
			{Runs: 1, DurationSecs: 1, ChannelUtilization: 0.8125},
			{Runs: 1, DurationSecs: 1, ChannelUtilization: 0.9375},
		},
	}
	rep, err := Evaluate(sets, map[string]*experiments.Result{"fig1": fixtureResult()}, snaps)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// The fingerprint under `go test` is stable ("devel"), but pin it
	// anyway so the golden file can never depend on build stamping.
	rep.Module = "greedy80211@devel"
	bench := &BenchSnapshot{File: "BENCH_2026-01-01.json", GoVersion: "go1.24.0"}
	bench.Simulator.EventsPerSec = 5.0e6
	bench.Simulator.BytesPerOp = 1048576
	bench.Artifacts.Speedup = 1.5
	bench.Artifacts.ParallelLimit = 4

	var a, b strings.Builder
	RenderMarkdown(&a, rep, bench)
	RenderMarkdown(&b, rep, bench)
	if a.String() != b.String() {
		t.Fatal("two renders of the same report differ")
	}

	golden := filepath.Join("testdata", "golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(a.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if a.String() != string(want) {
		t.Errorf("rendered markdown differs from %s (re-run with -update after intentional changes)\n--- got ---\n%s",
			golden, a.String())
	}
}

func f(v float64) *float64 { return &v }
