package report

import (
	"math"
	"strings"
	"testing"

	"greedy80211/internal/experiments"
	"greedy80211/internal/stats"
)

// fixtureResult builds a small synthetic artifact to evaluate against.
func fixtureResult() *experiments.Result {
	res := &experiments.Result{ID: "fig1", Title: "fixture"}
	a := stats.Series{Name: "A (Mbps)"}
	a.Add(0, 2.0)
	a.Add(1, 0.5)
	b := stats.Series{Name: "B (Mbps)"}
	b.Add(0, 2.0)
	b.Add(1, 4.0)
	res.AddSeries("fixture sweep", "x", a, b)
	tab := stats.Table{Header: []string{"case", "v", "flag"}}
	tab.AddRow("base", 10.0, "no")
	res.AddTable(tab)
	return res
}

func fixtureSet(checks ...Check) []*RefSet {
	return []*RefSet{{
		Artifact: "fig1",
		Claim:    "fixture claim",
		Config:   Config{Seeds: 1, Duration: "1s"},
		Checks:   checks,
	}}
}

func evalOne(t *testing.T, c Check) CheckResult {
	t.Helper()
	rep, err := Evaluate(fixtureSet(c),
		map[string]*experiments.Result{"fig1": fixtureResult()}, nil)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return rep.Artifacts[0].Checks[0]
}

func TestEvaluateVerdicts(t *testing.T) {
	cases := []struct {
		name string
		c    Check
		want stats.Verdict
	}{
		{"point in band", Check{ID: "a", Kind: "point", Series: "A (Mbps)", X: 0,
			Want: 2.0, Pass: stats.Band{Rel: 0.25}}, stats.VerdictPass},
		{"point at boundary", Check{ID: "a", Kind: "point", Series: "A (Mbps)", X: 1,
			Want: 0.4, Pass: stats.Band{Abs: 0.1}}, stats.VerdictPass},
		{"point drifts", Check{ID: "a", Kind: "point", Series: "A (Mbps)", X: 1,
			Want: 1.0, Pass: stats.Band{Rel: 0.25}, Fail: stats.Band{Rel: 0.75}}, stats.VerdictDrift},
		{"point fails", Check{ID: "a", Kind: "point", Series: "A (Mbps)", X: 1,
			Want: 4.0, Pass: stats.Band{Rel: 0.25}, Fail: stats.Band{Rel: 0.75}}, stats.VerdictFail},
		{"absent series missing", Check{ID: "a", Kind: "point", Series: "Z", X: 0,
			Want: 1, Pass: stats.Band{Rel: 0.5}}, stats.VerdictMissing},
		{"absent x missing", Check{ID: "a", Kind: "point", Series: "A (Mbps)", X: 7,
			Want: 1, Pass: stats.Band{Rel: 0.5}}, stats.VerdictMissing},
		{"ratio", Check{ID: "a", Kind: "ratio", Series: "A (Mbps)", Denom: "B (Mbps)", X: 1,
			Want: 0.125, Pass: stats.Band{Rel: 0.1}}, stats.VerdictPass},
		{"ratio bad denom", Check{ID: "a", Kind: "ratio", Series: "A (Mbps)", Denom: "Z", X: 1,
			Want: 0.125, Pass: stats.Band{Rel: 0.1}}, stats.VerdictMissing},
		{"cell", Check{ID: "a", Kind: "cell", Col: "v", Key: "base",
			Want: 10, Pass: stats.Band{Rel: 0.05}}, stats.VerdictPass},
		{"cell key mismatch missing", Check{ID: "a", Kind: "cell", Col: "v", Key: "other",
			Want: 10, Pass: stats.Band{Rel: 0.05}}, stats.VerdictMissing},
		{"text match", Check{ID: "a", Kind: "text", Col: "flag", Key: "base",
			WantText: "no"}, stats.VerdictPass},
		{"text mismatch fails", Check{ID: "a", Kind: "text", Col: "flag", Key: "base",
			WantText: "yes"}, stats.VerdictFail},
		{"text absent missing", Check{ID: "a", Kind: "text", Col: "nope", Key: "base",
			WantText: "no"}, stats.VerdictMissing},
	}
	for _, tc := range cases {
		if got := evalOne(t, tc.c).Verdict; got != tc.want {
			t.Errorf("%s: verdict %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestEvaluateAbsentArtifactGates(t *testing.T) {
	set := fixtureSet(Check{ID: "a", Kind: "point", Series: "A (Mbps)", X: 0,
		Want: 2, Pass: stats.Band{Rel: 0.1}})
	rep, err := Evaluate(set, map[string]*experiments.Result{}, nil)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.Missing != 1 || rep.Gating(false) != 1 {
		t.Fatalf("absent artifact: missing=%d gating=%d, want 1/1", rep.Missing, rep.Gating(false))
	}
	if !math.IsNaN(rep.Artifacts[0].Checks[0].Got) {
		t.Errorf("Got = %v, want NaN", rep.Artifacts[0].Checks[0].Got)
	}
}

func TestGatingStrictness(t *testing.T) {
	drift := Check{ID: "d", Kind: "point", Series: "A (Mbps)", X: 1,
		Want: 1.0, Pass: stats.Band{Rel: 0.25}, Fail: stats.Band{Rel: 0.75}}
	pass := Check{ID: "p", Kind: "point", Series: "A (Mbps)", X: 0,
		Want: 2.0, Pass: stats.Band{Rel: 0.25}}
	rep, err := Evaluate(fixtureSet(pass, drift),
		map[string]*experiments.Result{"fig1": fixtureResult()}, nil)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.Pass != 1 || rep.Drift != 1 {
		t.Fatalf("tally pass=%d drift=%d, want 1/1", rep.Pass, rep.Drift)
	}
	if rep.Gating(false) != 0 {
		t.Errorf("drift gated in non-strict mode")
	}
	if rep.Gating(true) != 1 {
		t.Errorf("drift did not gate in strict mode")
	}
	if v := rep.Artifacts[0].Verdict(); v != stats.VerdictDrift {
		t.Errorf("artifact verdict %s, want drift (worst of pass+drift)", v)
	}
}

func TestVerdictsJSONStable(t *testing.T) {
	set := fixtureSet(
		Check{ID: "ok", Kind: "point", Series: "A (Mbps)", X: 0, Want: 2, Pass: stats.Band{Rel: 0.1}},
		Check{ID: "gone", Kind: "point", Series: "Z", X: 0, Want: 1, Pass: stats.Band{Rel: 0.1}},
	)
	results := map[string]*experiments.Result{"fig1": fixtureResult()}
	rep, err := Evaluate(set, results, nil)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	var a, b strings.Builder
	if err := WriteVerdicts(&a, rep); err != nil {
		t.Fatalf("WriteVerdicts: %v", err)
	}
	if err := WriteVerdicts(&b, rep); err != nil {
		t.Fatalf("WriteVerdicts: %v", err)
	}
	if a.String() != b.String() {
		t.Error("verdicts encoding is not deterministic")
	}
	// NaN measurements must encode as null, not break the encoder.
	if !strings.Contains(a.String(), `"got": null`) {
		t.Errorf("missing check should encode got: null; got:\n%s", a.String())
	}
}
