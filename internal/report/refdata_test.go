package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadEmbedded(t *testing.T) {
	sets, err := LoadEmbedded()
	if err != nil {
		t.Fatalf("LoadEmbedded: %v", err)
	}
	if len(sets) < 5 {
		t.Fatalf("only %d embedded refdata sets", len(sets))
	}
	cfg, err := SharedConfig(sets)
	if err != nil {
		t.Fatalf("SharedConfig: %v", err)
	}
	if cfg.Seeds == 0 || cfg.Duration == "" {
		t.Fatalf("profile not pinned: %+v", cfg)
	}
	// Registry order: fig1 must precede tab4 and ext*.
	ids := Artifacts(sets)
	var fig1, tab4 int
	for i, id := range ids {
		switch id {
		case "fig1":
			fig1 = i
		case "tab4":
			tab4 = i
		}
	}
	if fig1 >= tab4 {
		t.Errorf("artifact order %v: figures should precede tables", ids)
	}
}

func writeRefdata(t *testing.T, name, body string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLoadDirRejectsBadFiles(t *testing.T) {
	cases := map[string]struct {
		file, body, wantErr string
	}{
		"unknown field": {
			"fig1.json",
			`{"artifact":"fig1","config":{"seeds":1,"duration":"1s"},"typo":true,
			  "checks":[{"id":"a","kind":"point","series":"s","pass":{"rel":0.1}}]}`,
			"typo",
		},
		"unknown kind": {
			"fig1.json",
			`{"artifact":"fig1","config":{"seeds":1,"duration":"1s"},
			  "checks":[{"id":"a","kind":"blob","series":"s","pass":{"rel":0.1}}]}`,
			"unknown kind",
		},
		"unknown artifact": {
			"fig99.json",
			`{"artifact":"fig99","config":{"seeds":1,"duration":"1s"},
			  "checks":[{"id":"a","kind":"point","series":"s","pass":{"rel":0.1}}]}`,
			"unknown artifact",
		},
		"missing pass band": {
			"fig1.json",
			`{"artifact":"fig1","config":{"seeds":1,"duration":"1s"},
			  "checks":[{"id":"a","kind":"point","series":"s"}]}`,
			"no pass band",
		},
		"duplicate check id": {
			"fig1.json",
			`{"artifact":"fig1","config":{"seeds":1,"duration":"1s"},"checks":[
			  {"id":"a","kind":"point","series":"s","pass":{"rel":0.1}},
			  {"id":"a","kind":"point","series":"t","pass":{"rel":0.1}}]}`,
			"duplicate check id",
		},
		"file name mismatch": {
			"other.json",
			`{"artifact":"fig1","config":{"seeds":1,"duration":"1s"},
			  "checks":[{"id":"a","kind":"point","series":"s","pass":{"rel":0.1}}]}`,
			"rename",
		},
	}
	for name, tc := range cases {
		dir := writeRefdata(t, tc.file, tc.body)
		_, err := LoadDir(dir)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

func TestSharedConfigMismatch(t *testing.T) {
	a := &RefSet{Artifact: "fig1", Config: Config{Seeds: 3, Duration: "1s"}}
	b := &RefSet{Artifact: "fig2", Config: Config{Seeds: 5, Duration: "1s"}}
	if _, err := SharedConfig([]*RefSet{a, b}); err == nil {
		t.Fatal("SharedConfig accepted disagreeing profiles")
	}
	if _, err := SharedConfig([]*RefSet{a, a}); err != nil {
		t.Fatalf("SharedConfig rejected agreeing profiles: %v", err)
	}
}
