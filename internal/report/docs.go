package report

import (
	"fmt"
	"strings"

	"greedy80211/internal/experiments"
)

// EXPERIMENTS.md carries a generated artifact↔paper mapping table
// between these markers. cmd/report -write-docs regenerates the block
// in place and -check-docs (plus a package test) verifies it matches
// the registry and refdata, so the table can never silently rot.

const (
	docsBegin = "<!-- BEGIN ARTIFACT-PAPER MAP (generated: go run ./cmd/report -write-docs) -->"
	docsEnd   = "<!-- END ARTIFACT-PAPER MAP -->"
)

// MappingTable renders the full artifact↔paper map: every registered
// artifact with its paper locator, and — for artifacts gated by a
// refdata set — the claim under test, the check count, the loosest
// pass tolerance, and how many checks the analytic tier also predicts
// (see MODEL.md).
func MappingTable(sets []*RefSet) string {
	byID := make(map[string]*RefSet, len(sets))
	for _, s := range sets {
		byID[s.Artifact] = s
	}
	var b strings.Builder
	b.WriteString("| artifact | paper | gated claim | checks | pass tolerance | model checks |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, reg := range experiments.All() {
		set := byID[reg.ID]
		claim, checks, tol, model := "—", "—", "—", "—"
		if set != nil {
			claim = set.Claim
			checks = fmt.Sprintf("%d", len(set.Checks))
			tol = loosestBand(set)
			if n := modelChecks(set); n > 0 {
				model = fmt.Sprintf("%d", n)
			}
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s |\n",
			reg.ID, reg.Paper, claim, checks, tol, model)
	}
	return b.String()
}

// modelChecks counts the set's checks under analytic-tier coverage.
func modelChecks(set *RefSet) int {
	n := 0
	for _, c := range set.Checks {
		if c.HasModel() {
			n++
		}
	}
	return n
}

// loosestBand summarizes the widest pass band across a set's checks —
// the headline "reproduces within ±X%" number for the table.
func loosestBand(set *RefSet) string {
	var maxRel, maxAbs float64
	for _, c := range set.Checks {
		if c.Kind == "text" {
			continue
		}
		if c.Pass.Rel > maxRel {
			maxRel = c.Pass.Rel
		}
		if c.Pass.Abs > maxAbs {
			maxAbs = c.Pass.Abs
		}
	}
	var parts []string
	if maxRel > 0 {
		parts = append(parts, fmt.Sprintf("rel ≤ %g%%", maxRel*100))
	}
	if maxAbs > 0 {
		parts = append(parts, fmt.Sprintf("abs ≤ %g", maxAbs))
	}
	if len(parts) == 0 {
		return "exact"
	}
	return strings.Join(parts, ", ")
}

// docsBlock is the full replacement text between (and including) the
// markers.
func docsBlock(sets []*RefSet) string {
	return docsBegin + "\n\n" + MappingTable(sets) + "\n" + docsEnd
}

// splitDocs locates the marker block in a document, returning the text
// before, the block itself, and the text after.
func splitDocs(doc string) (before, block, after string, err error) {
	i := strings.Index(doc, docsBegin)
	if i < 0 {
		return "", "", "", fmt.Errorf("report: docs: begin marker %q not found", docsBegin)
	}
	j := strings.Index(doc[i:], docsEnd)
	if j < 0 {
		return "", "", "", fmt.Errorf("report: docs: end marker %q not found", docsEnd)
	}
	end := i + j + len(docsEnd)
	return doc[:i], doc[i:end], doc[end:], nil
}

// UpdateDocs replaces the marker block in doc with the freshly generated
// table, leaving everything else untouched.
func UpdateDocs(doc string, sets []*RefSet) (string, error) {
	before, _, after, err := splitDocs(doc)
	if err != nil {
		return "", err
	}
	return before + docsBlock(sets) + after, nil
}

// CheckDocs verifies the marker block is present and current.
func CheckDocs(doc string, sets []*RefSet) error {
	_, block, _, err := splitDocs(doc)
	if err != nil {
		return err
	}
	if block != docsBlock(sets) {
		return fmt.Errorf("report: docs: artifact↔paper map is stale; regenerate with `go run ./cmd/report -write-docs`")
	}
	return nil
}
