package report

import (
	"bytes"
	"fmt"
	"math"

	"greedy80211/internal/campaign"
	"greedy80211/internal/experiments"
)

// ModelAgreement is the screening oracle: it reports whether a measured
// result still agrees with the analytic tier on every model-banded
// check of the artifact's golden set. Agreement means the measured
// value sits inside the check's model_pass band centered on the model's
// prediction — the same half-width that makes a prediction "pass"
// against the golden want, reused to ask whether two oracles (model and
// a stale simulation) tell the same story. Artifacts with no
// model-banded checks never agree: screening only ever stands on an
// explicit model claim.
func ModelAgreement(sets []*RefSet, artifact string, res *experiments.Result) (bool, string) {
	var set *RefSet
	for _, s := range sets {
		if s.Artifact == artifact {
			set = s
			break
		}
	}
	if set == nil {
		return false, fmt.Sprintf("no golden set for %s", artifact)
	}
	pred := predictions(artifact)
	covered := 0
	for _, c := range set.Checks {
		if !c.HasModel() {
			continue
		}
		covered++
		model, ok := pred[c.ID]
		if !ok {
			return false, fmt.Sprintf("%s: no model prediction", c.ID)
		}
		got, _ := extract(c, res)
		if math.IsNaN(got) {
			return false, fmt.Sprintf("%s: value missing from result", c.ID)
		}
		if !c.ModelPass.Holds(got, model) {
			return false, fmt.Sprintf("%s: measured %.4g vs model %.4g outside band ±%.3g",
				c.ID, got, model, c.ModelPass.Width(model))
		}
	}
	if covered == 0 {
		return false, fmt.Sprintf("%s has no model-banded checks", artifact)
	}
	return true, fmt.Sprintf("model agrees on %d/%d model-banded checks", covered, covered)
}

// ModelScreen adapts ModelAgreement into a campaign.Options.Screen
// hook: it decodes the previous-module result bytes and asks whether
// the analytic model still vouches for them.
func ModelScreen(sets []*RefSet) func(u campaign.Unit, prev campaign.Meta, result []byte) (bool, string) {
	return func(u campaign.Unit, prev campaign.Meta, result []byte) (bool, string) {
		res, err := experiments.DecodeResult(bytes.NewReader(result))
		if err != nil {
			return false, fmt.Sprintf("previous result undecodable: %v", err)
		}
		ok, why := ModelAgreement(sets, u.Artifact, res)
		if ok {
			why = fmt.Sprintf("%s (prev module %s)", why, shortModule(prev.Module))
		}
		return ok, why
	}
}

func shortModule(m string) string {
	if len(m) > 12 {
		return m[:12]
	}
	return m
}
