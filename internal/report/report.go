// Package report is the reproduction gate: it joins regenerated
// artifacts against checked-in paper-reference golden values
// (refdata/*.json), classifies every pinned data point as pass, drift,
// fail, or missing via stats.Classify, and renders a byte-stable
// Markdown report (RESULTS.md) plus a machine-readable verdicts.json.
// The same evaluation backs the CI report-gate: any fail or missing
// verdict (and, in strict mode, drift) makes cmd/report exit nonzero.
//
// Reports are deterministic end to end. Measurements come either from a
// fresh run (ComputeFresh) or from a campaign store (FromStore); both
// yield identical Results for the same profile, and rendering introduces
// no timestamps or environment state beyond core.ModuleFingerprint —
// so regenerating RESULTS.md from a warm store reproduces it
// byte-identically.
package report

import (
	"context"
	"errors"
	"io"
	"math"
	"sync"

	"greedy80211/internal/analytic"
	"greedy80211/internal/campaign"
	"greedy80211/internal/core"
	"greedy80211/internal/experiments"
	"greedy80211/internal/metrics"
	"greedy80211/internal/stats"
)

// CheckResult is one evaluated check: the refdata pin plus what the run
// measured and how it classified.
type CheckResult struct {
	Check
	// Got is the measured value (NaN when extraction failed); GotText the
	// measured string for kind "text".
	Got     float64
	GotText string
	Verdict stats.Verdict
	// Model is the analytic tier's prediction for this check (NaN when
	// the check declares no model bands or the prediction is absent), and
	// ModelVerdict its advisory classification against Want under the
	// model bands. ModelVerdict is empty for checks outside the model's
	// declared coverage.
	Model        float64
	ModelVerdict stats.Verdict
}

// ArtifactReport is one gated artifact's evaluation.
type ArtifactReport struct {
	Artifact string
	Title    string
	// Paper is the registry's figure/table locator, Claim the refdata
	// one-liner being gated.
	Paper  string
	Claim  string
	Result *experiments.Result
	// Snapshots is the artifact's telemetry sidecar (one per series
	// group / table batch).
	Snapshots []*metrics.Snapshot
	Checks    []CheckResult
}

// Verdict is the artifact's worst check verdict.
func (a *ArtifactReport) Verdict() stats.Verdict {
	worst := stats.VerdictPass
	for _, c := range a.Checks {
		if verdictRank(c.Verdict) > verdictRank(worst) {
			worst = c.Verdict
		}
	}
	return worst
}

func verdictRank(v stats.Verdict) int {
	switch v {
	case stats.VerdictPass:
		return 0
	case stats.VerdictDrift:
		return 1
	case stats.VerdictFail:
		return 2
	default: // missing
		return 3
	}
}

// Report is a full evaluation across every gated artifact.
type Report struct {
	// Module is the code fingerprint the measurements came from.
	Module string
	// Config is the shared run profile.
	Config    Config
	Artifacts []*ArtifactReport
	// Verdict tallies across all checks.
	Pass, Drift, Fail, Missing int
	// Model verdict tallies across the checks the analytic tier declares
	// coverage of (model bands in refdata). Advisory: they never trip the
	// reproduction gate, but ModelMissing trips -analytic-gate.
	ModelPass, ModelDrift, ModelFail, ModelMissing int
}

// Checks is the total number of evaluated checks.
func (r *Report) Checks() int { return r.Pass + r.Drift + r.Fail + r.Missing }

// ModelChecks is the number of checks under analytic-tier coverage.
func (r *Report) ModelChecks() int {
	return r.ModelPass + r.ModelDrift + r.ModelFail + r.ModelMissing
}

// Gating returns how many verdicts gate (fail + missing, plus drift in
// strict mode) — nonzero means cmd/report exits 1.
func (r *Report) Gating(strict bool) int {
	n := r.Fail + r.Missing
	if strict {
		n += r.Drift
	}
	return n
}

// extract pulls the check's measured value out of the result.
func extract(c Check, res *experiments.Result) (float64, string) {
	switch c.Kind {
	case "point":
		return res.Point(c.Group, c.Series, c.X), ""
	case "ratio":
		num := res.Point(c.Group, c.Series, c.X)
		den := res.Point(c.Group, c.Denom, c.X)
		if den == 0 {
			return math.NaN(), ""
		}
		return num / den, ""
	case "cell":
		return res.Cell(c.Table, c.Row, c.Col, c.Key), ""
	case "text":
		raw, ok := res.CellText(c.Table, c.Row, c.Col, c.Key)
		if !ok {
			return math.NaN(), ""
		}
		return math.NaN(), raw
	}
	return math.NaN(), ""
}

func classify(c Check, got float64, gotText string) stats.Verdict {
	if c.Kind == "text" {
		switch {
		case gotText == "":
			return stats.VerdictMissing
		case gotText == c.WantText:
			return stats.VerdictPass
		default:
			return stats.VerdictFail
		}
	}
	return stats.Classify(got, c.Want, c.Pass, c.Fail)
}

// Evaluate joins the golden sets against measured results. results and
// snaps are keyed by artifact id; a set whose artifact is absent from
// results gets all-missing verdicts rather than an error, so a report
// over a torn store still names exactly what could not be checked.
func Evaluate(sets []*RefSet, results map[string]*experiments.Result,
	snaps map[string][]*metrics.Snapshot) (*Report, error) {
	cfg, err := SharedConfig(sets)
	if err != nil {
		return nil, err
	}
	rep := &Report{Module: core.ModuleFingerprint(), Config: cfg}
	for _, set := range sets {
		reg, _ := experiments.Lookup(set.Artifact)
		ar := &ArtifactReport{
			Artifact:  set.Artifact,
			Title:     reg.Title,
			Paper:     reg.Paper,
			Claim:     set.Claim,
			Result:    results[set.Artifact],
			Snapshots: snaps[set.Artifact],
		}
		pred := predictions(set.Artifact)
		for _, c := range set.Checks {
			got, gotText := math.NaN(), ""
			if ar.Result != nil {
				got, gotText = extract(c, ar.Result)
			}
			v := classify(c, got, gotText)
			cr := CheckResult{Check: c, Got: got, GotText: gotText, Verdict: v, Model: math.NaN()}
			if c.HasModel() {
				model, ok := pred[c.ID]
				if ok {
					cr.Model = model
					cr.ModelVerdict = stats.Classify(model, c.Want, c.ModelPass, c.ModelFail)
				} else {
					cr.ModelVerdict = stats.VerdictMissing
				}
				switch cr.ModelVerdict {
				case stats.VerdictPass:
					rep.ModelPass++
				case stats.VerdictDrift:
					rep.ModelDrift++
				case stats.VerdictFail:
					rep.ModelFail++
				default:
					rep.ModelMissing++
				}
			}
			ar.Checks = append(ar.Checks, cr)
			switch v {
			case stats.VerdictPass:
				rep.Pass++
			case stats.VerdictDrift:
				rep.Drift++
			case stats.VerdictFail:
				rep.Fail++
			default:
				rep.Missing++
			}
		}
		rep.Artifacts = append(rep.Artifacts, ar)
	}
	return rep, nil
}

// predictions evaluates the analytic tier for one artifact, keyed by
// check id. Artifacts outside the model's coverage (or a prediction
// failure) yield an empty map: every model-banded check then classifies
// as missing, which is exactly the signal -analytic-gate trips on.
func predictions(artifact string) map[string]float64 {
	pred, err := analytic.Predict(artifact)
	if err != nil {
		return nil
	}
	return pred.Values
}

// ComputeFresh regenerates every gated artifact at the shared profile —
// no store, no cache — and evaluates. This is the storeless cmd/report
// path and the one the determinism tests exercise: its output is
// byte-identical to FromStore over the same code.
func ComputeFresh(sets []*RefSet) (*Report, error) {
	cfg, err := SharedConfig(sets)
	if err != nil {
		return nil, err
	}
	base, err := cfg.RunConfig()
	if err != nil {
		return nil, err
	}
	results := make(map[string]*experiments.Result, len(sets))
	snaps := make(map[string][]*metrics.Snapshot, len(sets))
	for _, set := range sets {
		coll := metrics.NewCollector()
		rc := base
		rc.Metrics = coll
		res, err := experiments.Run(set.Artifact, rc)
		if err != nil {
			return nil, err
		}
		results[set.Artifact] = res
		snaps[set.Artifact] = coll.Snapshots()
	}
	return Evaluate(sets, results, snaps)
}

// FromStore evaluates against an open campaign store (any Backend).
// When compute is true, missing units are computed (and cached) first
// via the campaign engine; when false, a cold store yields missing
// verdicts for its artifacts instead of simulating — the read-only CI
// mode.
func FromStore(ctx context.Context, sets []*RefSet, store *campaign.Store, compute bool, logw io.Writer) (*Report, error) {
	cfg, err := SharedConfig(sets)
	if err != nil {
		return nil, err
	}
	spec := &campaign.Spec{
		Artifacts: Artifacts(sets),
		Config: campaign.SpecConfig{
			Seeds:    cfg.Seeds,
			Duration: cfg.Duration,
			Quick:    cfg.Quick,
		},
	}
	if compute {
		crep, err := campaign.Run(ctx, spec, campaign.Options{Store: store, Log: logw})
		if err != nil {
			return nil, err
		}
		if len(crep.Failures) > 0 {
			return nil, crep.Failures[0].Err
		}
	}
	results := make(map[string]*experiments.Result, len(sets))
	snaps := make(map[string][]*metrics.Snapshot, len(sets))
	urs, err := campaign.Results(spec, store)
	if err != nil {
		var missing *campaign.MissingUnitsError
		if !errors.As(err, &missing) {
			return nil, err
		}
		// Partial store: evaluate what is present; absent artifacts
		// surface as missing verdicts (which gate).
		urs = presentUnits(spec, store)
	}
	for _, ur := range urs {
		results[ur.Unit.Artifact] = ur.Result
		snaps[ur.Unit.Artifact] = ur.Snapshots
	}
	return Evaluate(sets, results, snaps)
}

// presentUnits reads back only the units that exist in the store.
func presentUnits(spec *campaign.Spec, store *campaign.Store) []campaign.UnitResult {
	var out []campaign.UnitResult
	for _, id := range spec.Artifacts {
		one := &campaign.Spec{Artifacts: []string{id}, Config: spec.Config}
		urs, err := campaign.Results(one, store)
		if err != nil {
			continue
		}
		out = append(out, urs...)
	}
	return out
}

// artifactLess orders artifact ids in registry order (fig2 before
// fig10, figures before tables).
func artifactLess(a, b string) bool {
	idx := artifactIndex()
	ia, aok := idx[a]
	ib, bok := idx[b]
	if aok && bok {
		return ia < ib
	}
	if aok != bok {
		return aok
	}
	return a < b
}

var (
	artifactIdxOnce sync.Once
	artifactIdx     map[string]int
)

func artifactIndex() map[string]int {
	artifactIdxOnce.Do(func() {
		all := experiments.All()
		artifactIdx = make(map[string]int, len(all))
		for i, reg := range all {
			artifactIdx[reg.ID] = i
		}
	})
	return artifactIdx
}
