package report

import (
	"strings"
	"testing"

	"greedy80211/internal/analytic"
	"greedy80211/internal/campaign"
	"greedy80211/internal/experiments"
	"greedy80211/internal/stats"
)

// screenFixture builds a one-check golden set whose check ID is a real
// fig1 prediction, plus a result measuring exactly got for it.
func screenFixture(t *testing.T, got float64) ([]*RefSet, *experiments.Result) {
	t.Helper()
	sets := []*RefSet{{
		Artifact: "fig1",
		Claim:    "screen fixture",
		Config:   Config{Seeds: 1, Duration: "1s"},
		Checks: []Check{{
			ID: "fair-baseline-nr", Kind: "point", Series: "A (Mbps)", X: 0,
			Want: 1.9, Pass: stats.Band{Rel: 0.2},
			ModelPass: stats.Band{Rel: 0.2}, ModelFail: stats.Band{Rel: 0.5},
		}},
	}}
	res := &experiments.Result{ID: "fig1", Title: "screen fixture"}
	a := stats.Series{Name: "A (Mbps)"}
	a.Add(0, got)
	res.AddSeries("fixture sweep", "x", a)
	return sets, res
}

func fig1Model(t *testing.T, id string) float64 {
	t.Helper()
	pred, err := analytic.Predict("fig1")
	if err != nil {
		t.Fatalf("analytic.Predict(fig1): %v", err)
	}
	v, ok := pred.Values[id]
	if !ok {
		t.Fatalf("fig1 prediction missing %s", id)
	}
	return v
}

func TestModelAgreement(t *testing.T) {
	model := fig1Model(t, "fair-baseline-nr")

	// Measured value inside the model band around the prediction agrees.
	sets, res := screenFixture(t, model)
	ok, why := ModelAgreement(sets, "fig1", res)
	if !ok {
		t.Fatalf("exact match disagreed: %s", why)
	}

	// Outside the band: disagreement naming the check.
	sets, res = screenFixture(t, model*2)
	ok, why = ModelAgreement(sets, "fig1", res)
	if ok {
		t.Fatal("2x deviation agreed")
	}
	if why == "" || !strings.Contains(why, "fair-baseline-nr") {
		t.Errorf("disagreement reason %q does not name the check", why)
	}

	// An artifact absent from the sets never agrees.
	if ok, _ := ModelAgreement(sets, "fig2", res); ok {
		t.Error("unknown artifact agreed")
	}

	// A set with no model-banded checks never agrees: screening only
	// stands on explicit model claims.
	sets[0].Checks[0].ModelPass = stats.Band{}
	sets[0].Checks[0].ModelFail = stats.Band{}
	if ok, why := ModelAgreement(sets, "fig1", res); ok {
		t.Errorf("model-free set agreed: %s", why)
	}

	// A model-banded check outside the model's prediction coverage
	// blocks agreement rather than silently passing.
	sets, res = screenFixture(t, model)
	sets[0].Checks[0].ID = "no-such-prediction"
	if ok, why := ModelAgreement(sets, "fig1", res); ok {
		t.Errorf("uncovered check agreed: %s", why)
	}
}

func TestModelScreenHook(t *testing.T) {
	model := fig1Model(t, "fair-baseline-nr")
	sets, res := screenFixture(t, model)
	raw, err := res.MarshalStable()
	if err != nil {
		t.Fatalf("MarshalStable: %v", err)
	}
	hook := ModelScreen(sets)
	u := campaign.Unit{Artifact: "fig1"}
	prev := campaign.Meta{Module: "previous-module-fingerprint"}

	ok, why := hook(u, prev, raw)
	if !ok {
		t.Fatalf("hook rejected agreeing result: %s", why)
	}
	if !strings.Contains(why, "previous-mod") {
		t.Errorf("agreement note %q does not cite the previous module", why)
	}

	if ok, _ := hook(u, prev, []byte("not json")); ok {
		t.Error("hook accepted undecodable bytes")
	}
}
