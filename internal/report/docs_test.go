package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExperimentsMappingTable keeps the generated artifact↔paper map in
// EXPERIMENTS.md current: it must match what the registry + embedded
// refdata produce right now.
func TestExperimentsMappingTable(t *testing.T) {
	sets, err := LoadEmbedded()
	if err != nil {
		t.Fatalf("LoadEmbedded: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatalf("reading EXPERIMENTS.md: %v", err)
	}
	if err := CheckDocs(string(raw), sets); err != nil {
		t.Errorf("%v", err)
	}
}

func TestUpdateDocsRoundTrip(t *testing.T) {
	sets, err := LoadEmbedded()
	if err != nil {
		t.Fatalf("LoadEmbedded: %v", err)
	}
	doc := "intro\n\n" + docsBegin + "\nstale\n" + docsEnd + "\n\ntail\n"
	updated, err := UpdateDocs(doc, sets)
	if err != nil {
		t.Fatalf("UpdateDocs: %v", err)
	}
	if !strings.HasPrefix(updated, "intro\n\n") || !strings.HasSuffix(updated, "\n\ntail\n") {
		t.Error("UpdateDocs touched text outside the marker block")
	}
	if err := CheckDocs(updated, sets); err != nil {
		t.Errorf("CheckDocs after UpdateDocs: %v", err)
	}
	// Idempotent: updating an already-current doc changes nothing.
	again, err := UpdateDocs(updated, sets)
	if err != nil {
		t.Fatalf("UpdateDocs (second): %v", err)
	}
	if again != updated {
		t.Error("UpdateDocs is not idempotent")
	}
	// A doc without markers is a loud error, not a silent no-op.
	if _, err := UpdateDocs("no markers here", sets); err == nil {
		t.Error("UpdateDocs accepted a document without markers")
	}
}

func TestMappingTableCoversRegistryAndRefdata(t *testing.T) {
	sets, err := LoadEmbedded()
	if err != nil {
		t.Fatalf("LoadEmbedded: %v", err)
	}
	table := MappingTable(sets)
	for _, id := range []string{"fig1", "fig24", "tab1", "tab9", "exta", "abl3"} {
		if !strings.Contains(table, "`"+id+"`") {
			t.Errorf("mapping table is missing artifact %s", id)
		}
	}
	for _, s := range sets {
		if !strings.Contains(table, s.Claim) {
			t.Errorf("mapping table is missing %s's gated claim", s.Artifact)
		}
	}
}
