package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"greedy80211/internal/experiments"
	"greedy80211/internal/stats"
	"greedy80211/internal/trace"
)

// FailedArtifacts lists the ids of artifacts whose verdict gates (fail or
// missing; drift too in strict mode) — the set CaptureTraces re-runs.
func (r *Report) FailedArtifacts(strict bool) []string {
	var out []string
	for _, ar := range r.Artifacts {
		v := ar.Verdict()
		bad := v == stats.VerdictFail || v == stats.VerdictMissing
		if strict && v == stats.VerdictDrift {
			bad = true
		}
		if bad {
			out = append(out, ar.Artifact)
		}
	}
	return out
}

// CaptureTraces re-runs the named artifacts at the report profile with a
// flight recorder attached and writes the post-mortem evidence into dir:
// per-world JSONL traces, an ASCII timeline each, and an invariant-checker
// summary per artifact. It returns the written file paths. The re-run uses
// the same seeds and duration the gate measured at, and probe emission
// does not perturb the simulation, so the traces show exactly the runs
// that produced the gated numbers.
func CaptureTraces(cfg Config, artifacts []string, dir string, capacity int) ([]string, error) {
	base, err := cfg.RunConfig()
	if err != nil {
		return nil, err
	}
	var written []string
	for _, id := range artifacts {
		coll := trace.NewCollector(capacity)
		coll.EnableChecks()
		rc := base
		rc.Trace = coll
		if _, err := experiments.Run(id, rc); err != nil {
			return written, fmt.Errorf("report: tracing %s: %w", id, err)
		}
		paths, err := trace.ExportDir(dir, id, coll.Recordings())
		written = append(written, paths...)
		if err != nil {
			return written, err
		}
		inv := filepath.Join(dir, id+"_invariants.txt")
		var body strings.Builder
		if vs := coll.Violations(); len(vs) == 0 {
			fmt.Fprintf(&body, "%s: %d worlds traced, no invariant violations\n",
				id, len(coll.Recordings()))
		} else {
			for _, v := range vs {
				fmt.Fprintln(&body, v)
			}
		}
		if err := os.WriteFile(inv, []byte(body.String()), 0o644); err != nil {
			return written, fmt.Errorf("report: writing %s: %w", inv, err)
		}
		written = append(written, inv)
	}
	return written, nil
}
