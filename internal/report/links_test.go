package report

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinksResolve is the repo's link checker: every relative
// link and anchor in the top-level docs must point at a file that
// exists (no external tool, so it runs wherever `go test` runs).
func TestMarkdownLinksResolve(t *testing.T) {
	root := filepath.Join("..", "..")
	docs := []string{
		"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md", "DESIGN.md",
		"RESULTS.md", "ROADMAP.md", "CHANGES.md",
	}
	linkRE := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, doc := range docs {
		raw, err := os.ReadFile(filepath.Join(root, doc))
		if err != nil {
			t.Errorf("doc %s unreadable: %v", doc, err)
			continue
		}
		anchors := headingAnchors(string(raw))
		for _, m := range linkRE.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; not checked offline
			case strings.HasPrefix(target, "#"):
				if !anchors[strings.TrimPrefix(target, "#")] {
					t.Errorf("%s: broken anchor %s", doc, target)
				}
				continue
			}
			path := target
			if i := strings.IndexByte(path, '#'); i >= 0 {
				path = path[:i]
			}
			if path == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(path))); err != nil {
				t.Errorf("%s: broken link %s", doc, target)
			}
		}
	}
}

// headingAnchors collects the anchor ids a Markdown renderer would
// generate: explicit <a id="..."> tags plus GitHub-style slugs of ATX
// headings.
func headingAnchors(doc string) map[string]bool {
	anchors := make(map[string]bool)
	idRE := regexp.MustCompile(`<a id="([^"]+)">`)
	for _, m := range idRE.FindAllStringSubmatch(doc, -1) {
		anchors[m[1]] = true
	}
	slugStrip := regexp.MustCompile("[^a-z0-9 _-]")
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		// Inline code and emphasis markers do not survive slugging.
		text = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(text)
		slug := strings.ToLower(text)
		slug = slugStrip.ReplaceAllString(slug, "")
		slug = strings.ReplaceAll(slug, " ", "-")
		anchors[slug] = true
	}
	return anchors
}
