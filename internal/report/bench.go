package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BenchSnapshot is the slice of cmd/bench's committed BENCH_<date>.json
// the report footer quotes. Decoding is deliberately loose (no
// DisallowUnknownFields): the bench schema may grow fields the footer
// does not care about.
type BenchSnapshot struct {
	// File is the basename the snapshot was loaded from.
	File      string `json:"-"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	Simulator struct {
		EventsPerSec float64 `json:"events_per_sec"`
		BytesPerOp   int64   `json:"bytes_per_op"`
	} `json:"simulator"`
	Artifacts struct {
		Speedup       float64 `json:"speedup"`
		ParallelLimit int     `json:"parallel_limit"`
	} `json:"artifacts"`
}

// LoadBenchSnapshot reads one snapshot file.
func LoadBenchSnapshot(path string) (*BenchSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s BenchSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("report: bench snapshot %s: %w", path, err)
	}
	s.File = filepath.Base(path)
	return &s, nil
}

// LatestBenchSnapshot finds the newest BENCH_*.json in dir (the names
// embed ISO dates, so lexicographic order is chronological). Returns
// (nil, nil) when there is none — the footer simply omits the bench
// line.
func LatestBenchSnapshot(dir string) (*BenchSnapshot, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, nil
	}
	sort.Strings(matches)
	return LoadBenchSnapshot(matches[len(matches)-1])
}
