package report

import (
	"context"
	"io"
	"runtime"
	"strings"
	"testing"

	"greedy80211/internal/campaign"
	"greedy80211/internal/runner"
	"greedy80211/internal/stats"
)

// quickSets is a tiny real-artifact refdata set (fig2 in quick mode) so
// the determinism tests simulate for milliseconds, not seconds. Bands
// are irrelevant here — both sides of each comparison share them.
func quickSets() []*RefSet {
	return []*RefSet{{
		Artifact: "fig2",
		Claim:    "GS CW pins at CWmin",
		Config:   Config{Seeds: 1, Duration: "200ms", Quick: true},
		Checks: []Check{
			{ID: "gs-cw", Kind: "point", Series: "GS avg CW", X: 0,
				Want: 31, Pass: stats.Band{Rel: 0.25}},
			{ID: "ns-cw", Kind: "point", Series: "NS avg CW", X: 40,
				Want: 31, Pass: stats.Band{Rel: 0.25}},
		},
	}}
}

func renderFresh(t *testing.T, sets []*RefSet) string {
	t.Helper()
	rep, err := ComputeFresh(sets)
	if err != nil {
		t.Fatalf("ComputeFresh: %v", err)
	}
	var md strings.Builder
	RenderMarkdown(&md, rep, nil)
	return md.String()
}

// TestReportSequentialMatchesParallel pins the ISSUE acceptance
// criterion: the rendered report is byte-identical whether artifacts
// regenerate on one worker or many.
func TestReportSequentialMatchesParallel(t *testing.T) {
	sets := quickSets()
	defer runner.SetLimit(runtime.GOMAXPROCS(0))
	runner.SetLimit(1)
	seq := renderFresh(t, sets)
	runner.SetLimit(8)
	par := renderFresh(t, sets)
	if seq != par {
		t.Error("sequential and parallel reports differ byte-wise")
	}
}

// TestReportStoreMatchesFresh pins the other half: a report computed
// through a campaign store (cold, then warm — zero simulation) is
// byte-identical to a storeless fresh run.
func TestReportStoreMatchesFresh(t *testing.T) {
	sets := quickSets()
	fresh := renderFresh(t, sets)

	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	render := func(compute bool) string {
		rep, err := FromStore(context.Background(), sets, store, compute, io.Discard)
		if err != nil {
			t.Fatalf("FromStore(compute=%v): %v", compute, err)
		}
		var md strings.Builder
		RenderMarkdown(&md, rep, nil)
		return md.String()
	}
	cold := render(true)
	warm := render(true)  // all cache hits
	read := render(false) // no-compute read of the warm store
	if cold != fresh {
		t.Error("cold-store report differs from fresh report")
	}
	if warm != cold || read != cold {
		t.Error("warm-store or read-only report differs from cold-store report")
	}
}

// TestFromStoreNoComputeColdGates: a cold store in read-only mode must
// yield gating missing verdicts, not simulate behind CI's back.
func TestFromStoreNoComputeColdGates(t *testing.T) {
	sets := quickSets()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FromStore(context.Background(), sets, store, false, io.Discard)
	if err != nil {
		t.Fatalf("FromStore: %v", err)
	}
	if rep.Missing != 2 || rep.Gating(false) != 2 {
		t.Fatalf("cold read-only store: missing=%d gating=%d, want 2/2", rep.Missing, rep.Gating(false))
	}
}
