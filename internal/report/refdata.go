package report

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path"
	"sort"
	"time"

	"greedy80211/internal/experiments"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
)

// The golden values: one JSON file per gated artifact, checked in and
// compiled into the binary so a report run needs nothing but the code
// that produced it. Each file pins a handful of load-bearing data points
// of the artifact (the numbers EXPERIMENTS.md argues from) together with
// the paper's value where the paper states one, and a pass/fail
// tolerance band pair for stats.Classify.

//go:embed refdata/*.json
var embeddedRefdata embed.FS

// Config is the run profile the golden values were transcribed under.
// Every refdata file must declare the same profile: the report is one
// campaign, and golden values are only comparable to measurements taken
// at their own seeds × duration.
type Config struct {
	Seeds    int    `json:"seeds"`
	Duration string `json:"duration"`
	Quick    bool   `json:"quick,omitempty"`
}

// RunConfig converts the profile to an experiments.RunConfig.
func (c Config) RunConfig() (experiments.RunConfig, error) {
	cfg := experiments.RunConfig{Seeds: c.Seeds, Quick: c.Quick}
	if c.Duration != "" {
		d, err := time.ParseDuration(c.Duration)
		if err != nil {
			return cfg, fmt.Errorf("report: refdata duration: %w", err)
		}
		cfg.Duration = sim.Time(d.Nanoseconds())
	}
	return cfg, nil
}

// Check pins one data point of an artifact against a golden value.
type Check struct {
	// ID names the check within its artifact (kebab-case, unique).
	ID string `json:"id"`
	// Kind selects the extraction: "point" (series group/series/x),
	// "ratio" (series/denom at the same x, checked as series÷denom),
	// "cell" (table/row/col numeric), or "text" (table/row/col string
	// equality against WantText — pass or fail, no bands).
	Kind string `json:"kind"`

	// Point/ratio addressing.
	Group  int     `json:"group,omitempty"`
	Series string  `json:"series,omitempty"`
	Denom  string  `json:"denom,omitempty"`
	X      float64 `json:"x,omitempty"`

	// Cell/text addressing.
	Table int    `json:"table,omitempty"`
	Row   int    `json:"row,omitempty"`
	Col   string `json:"col,omitempty"`
	// Key guards cell lookups against row reordering (see Result.Cell).
	Key string `json:"key,omitempty"`

	// Paper is the value the paper reports for this point, when it states
	// one — display-only context, never gated on (the substrate differs).
	Paper *float64 `json:"paper,omitempty"`
	// Want is the golden value: what this repo measured at the declared
	// profile when the check was authored.
	Want float64 `json:"want,omitempty"`
	// WantText is the expected string for kind "text".
	WantText string `json:"want_text,omitempty"`
	// Pass is the tolerance band around Want within which the check
	// passes; Fail, when wider, bounds the drift region beyond which the
	// check fails outright (zero Fail: anything outside Pass fails).
	Pass stats.Band `json:"pass,omitempty"`
	Fail stats.Band `json:"fail,omitempty"`
	// ModelPass/ModelFail, when set, declare that the analytic tier
	// (internal/analytic.Predict) covers this check: the Markov-chain
	// prediction is classified against Want with these bands. They are
	// deliberately wider than Pass/Fail — the model omits capture,
	// transport dynamics, and finite-duration effects — and the verdict
	// is advisory: it never gates the reproduction, but cmd/report
	// -analytic-gate (CI's analytic-check step) fails when a declared
	// prediction goes missing. MODEL.md documents each covered check's
	// calibration and worst-case error.
	ModelPass stats.Band `json:"model_pass,omitempty"`
	ModelFail stats.Band `json:"model_fail,omitempty"`
	// Note says what claim the point carries, for the report table.
	Note string `json:"note,omitempty"`
}

// HasModel reports whether the analytic tier declares coverage of this
// check.
func (c *Check) HasModel() bool { return !c.ModelPass.IsZero() }

// RefSet is one artifact's golden-value file.
type RefSet struct {
	// Artifact is the registered artifact id; must match the file name.
	Artifact string `json:"artifact"`
	// Claim is the one-line paper claim this artifact reproduces.
	Claim string `json:"claim"`
	// Config is the run profile the golden values were measured at.
	Config Config  `json:"config"`
	Checks []Check `json:"checks"`
}

func (s *RefSet) validate() error {
	if s.Artifact == "" {
		return fmt.Errorf("report: refdata set has no artifact id")
	}
	if _, ok := experiments.Lookup(s.Artifact); !ok {
		return fmt.Errorf("report: refdata %s: unknown artifact", s.Artifact)
	}
	if len(s.Checks) == 0 {
		return fmt.Errorf("report: refdata %s: no checks", s.Artifact)
	}
	seen := make(map[string]bool, len(s.Checks))
	for i := range s.Checks {
		c := &s.Checks[i]
		if c.ID == "" {
			return fmt.Errorf("report: refdata %s: check %d has no id", s.Artifact, i)
		}
		if seen[c.ID] {
			return fmt.Errorf("report: refdata %s: duplicate check id %q", s.Artifact, c.ID)
		}
		seen[c.ID] = true
		where := fmt.Sprintf("report: refdata %s check %s", s.Artifact, c.ID)
		switch c.Kind {
		case "point":
			if c.Series == "" {
				return fmt.Errorf("%s: point check needs a series", where)
			}
		case "ratio":
			if c.Series == "" || c.Denom == "" {
				return fmt.Errorf("%s: ratio check needs series and denom", where)
			}
		case "cell":
			if c.Col == "" {
				return fmt.Errorf("%s: cell check needs a column", where)
			}
		case "text":
			if c.Col == "" || c.WantText == "" {
				return fmt.Errorf("%s: text check needs a column and want_text", where)
			}
		default:
			return fmt.Errorf("%s: unknown kind %q", where, c.Kind)
		}
		if c.Kind != "text" && c.Pass.IsZero() {
			return fmt.Errorf("%s: no pass band", where)
		}
		if c.Kind == "text" && c.HasModel() {
			return fmt.Errorf("%s: text checks cannot carry model bands", where)
		}
		if !c.ModelFail.IsZero() && c.ModelPass.IsZero() {
			return fmt.Errorf("%s: model_fail without model_pass", where)
		}
	}
	return nil
}

// loadFS reads every refdata/*.json under the fsys root, strictly
// (unknown fields are typos in a golden file, and those must fail
// loudly), sorted by artifact id in registry order.
func loadFS(fsys fs.FS, dir string) ([]*RefSet, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("report: refdata: %w", err)
	}
	var sets []*RefSet
	for _, e := range entries {
		if e.IsDir() || path.Ext(e.Name()) != ".json" {
			continue
		}
		raw, err := fs.ReadFile(fsys, path.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("report: refdata: %w", err)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var s RefSet
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("report: refdata %s: %w", e.Name(), err)
		}
		if err := s.validate(); err != nil {
			return nil, err
		}
		want := s.Artifact + ".json"
		if e.Name() != want {
			return nil, fmt.Errorf("report: refdata %s declares artifact %s (rename to %s)",
				e.Name(), s.Artifact, want)
		}
		sets = append(sets, &s)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("report: no refdata files under %s", dir)
	}
	sort.Slice(sets, func(i, j int) bool {
		return artifactLess(sets[i].Artifact, sets[j].Artifact)
	})
	return sets, nil
}

// LoadEmbedded returns the checked-in golden set compiled into the
// binary — the set the repo's RESULTS.md and the CI gate run against.
func LoadEmbedded() ([]*RefSet, error) {
	return loadFS(embeddedRefdata, "refdata")
}

// LoadDir loads golden files from a directory instead of the embedded
// set. This is the override hook CI's negative test uses: tamper a copy
// of one file and assert the gate trips.
func LoadDir(dir string) ([]*RefSet, error) {
	return loadFS(os.DirFS(dir), ".")
}

// Artifacts lists the gated artifact ids in set order.
func Artifacts(sets []*RefSet) []string {
	ids := make([]string, len(sets))
	for i, s := range sets {
		ids[i] = s.Artifact
	}
	return ids
}

// SharedConfig returns the single run profile all sets agree on, or an
// error naming the first mismatch — mixed profiles would compare golden
// values against measurements they were never taken at.
func SharedConfig(sets []*RefSet) (Config, error) {
	if len(sets) == 0 {
		return Config{}, fmt.Errorf("report: no refdata sets")
	}
	cfg := sets[0].Config
	for _, s := range sets[1:] {
		if s.Config != cfg {
			return Config{}, fmt.Errorf("report: refdata %s profile %+v disagrees with %s profile %+v",
				s.Artifact, s.Config, sets[0].Artifact, cfg)
		}
	}
	if cfg.Seeds == 0 || cfg.Duration == "" {
		return Config{}, fmt.Errorf("report: refdata profile must pin seeds and duration explicitly, got %+v", cfg)
	}
	return cfg, nil
}
