package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greedy80211/internal/experiments"
	"greedy80211/internal/stats"
)

// failReport evaluates the fixture artifact against checks chosen to
// produce one verdict per named severity.
func failReport(t *testing.T, checks ...Check) *Report {
	t.Helper()
	rep, err := Evaluate(fixtureSet(checks...),
		map[string]*experiments.Result{"fig1": fixtureResult()}, nil)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return rep
}

func TestFailedArtifactsSelectsGatingVerdicts(t *testing.T) {
	pass := Check{ID: "p", Kind: "point", Series: "A (Mbps)", X: 0,
		Want: 2.0, Pass: stats.Band{Rel: 0.25}}
	drift := Check{ID: "d", Kind: "point", Series: "A (Mbps)", X: 1,
		Want: 1.0, Pass: stats.Band{Rel: 0.25}, Fail: stats.Band{Rel: 0.75}}
	fail := Check{ID: "f", Kind: "point", Series: "A (Mbps)", X: 1,
		Want: 4.0, Pass: stats.Band{Rel: 0.25}, Fail: stats.Band{Rel: 0.75}}

	if got := failReport(t, pass).FailedArtifacts(false); len(got) != 0 {
		t.Errorf("passing artifact listed for capture: %v", got)
	}
	if got := failReport(t, fail).FailedArtifacts(false); len(got) != 1 || got[0] != "fig1" {
		t.Errorf("failing artifact not listed: %v", got)
	}
	// Drift gates only in strict mode, matching cmd/report's exit policy.
	if got := failReport(t, drift).FailedArtifacts(false); len(got) != 0 {
		t.Errorf("drift listed without -strict: %v", got)
	}
	if got := failReport(t, drift).FailedArtifacts(true); len(got) != 1 {
		t.Errorf("drift not listed in strict mode: %v", got)
	}
}

// TestCaptureTracesWritesDumps is the -trace-on-fail post-mortem path: a
// gating artifact is re-run with the flight recorder attached and the
// dump directory receives JSONL traces, ASCII timelines, and an
// invariant summary per artifact.
func TestCaptureTracesWritesDumps(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seeds: 1, Duration: "50ms", Quick: true}
	paths, err := CaptureTraces(cfg, []string{"fig1"}, dir, 0)
	if err != nil {
		t.Fatalf("CaptureTraces: %v", err)
	}
	var jsonl, timeline, inv int
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("reported path missing: %v", err)
		}
		switch {
		case strings.HasSuffix(p, ".trace.jsonl"):
			jsonl++
		case strings.HasSuffix(p, ".timeline.txt"):
			timeline++
		case strings.HasSuffix(p, "_invariants.txt"):
			inv++
		}
	}
	if jsonl == 0 || timeline == 0 || inv != 1 {
		t.Fatalf("dump set incomplete: %d jsonl, %d timelines, %d invariant summaries (%v)",
			jsonl, timeline, inv, paths)
	}
	body, err := os.ReadFile(filepath.Join(dir, "fig1_invariants.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "no invariant violations") {
		t.Errorf("invariant summary = %q, want a clean verdict", body)
	}
}
