// Package detect implements the paper's Greedy Receiver Countermeasure
// (GRC, Section VII): detection and mitigation of the three receiver-side
// misbehaviors.
//
//   - Inflated NAV (Section VII-A): stations that overhear the sender's
//     frame know the exchange's true remaining duration and clamp the
//     receiver's advertised NAV to it; stations out of the sender's range
//     bound the NAV by the duration of a maximum-MTU (1500-byte) exchange.
//     ACK frames must carry a zero NAV without fragmentation.
//   - Spoofed ACKs (Section VII-B): the sender tracks the median RSSI of
//     each receiver and flags ACKs whose RSSI deviates by more than a
//     threshold (1 dB is the paper's sweet spot, Fig 22). When the true
//     receiver's signal would have captured the spoofed ACK, the sender
//     safely ignores the ACK and lets the MAC retransmit. A cross-layer
//     detector (CrossLayer) covers mobile clients with unstable RSSI.
//   - Fake ACKs (Section VII-C): the sender compares application-layer
//     loss (via active probing) with the loss its MAC reports; honest MAC
//     retransmission implies appLoss ≈ macLoss^(maxRetries+1).
//
// GRC implements mac.Observer and plugs into any station's MAC; the more
// stations run it, the higher the detection likelihood.
package detect

import (
	"fmt"
	"math"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// Config parameterizes GRC.
type Config struct {
	// MaxMTUBytes bounds the data-frame size assumed when the sender's
	// frame was not overheard; the paper argues 1500 bytes (Ethernet MTU)
	// covers Internet traffic.
	MaxMTUBytes int
	// RSSIThresholdDB flags ACKs deviating this much from the claimed
	// sender's median RSSI (the paper selects 1 dB).
	RSSIThresholdDB float64
	// CaptureThresholdDB gates safe recovery: an ACK is ignored only when
	// the true receiver's median RSSI exceeds the ACK's by at least this
	// much (it would have captured).
	CaptureThresholdDB float64
	// MinRSSISamples is how many RSSI observations a link needs before
	// the spoof detector acts.
	MinRSSISamples int
	// MedianWindow sizes the per-link RSSI median tracker.
	MedianWindow int
	// NAVGuard and SpoofGuard enable the two mitigations independently.
	NAVGuard   bool
	SpoofGuard bool
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		MaxMTUBytes:        1500,
		RSSIThresholdDB:    1.0,
		CaptureThresholdDB: phys.CaptureThresholdDB,
		MinRSSISamples:     8,
		MedianWindow:       32,
		NAVGuard:           true,
		SpoofGuard:         true,
	}
}

// Stats counts GRC's decisions.
type Stats struct {
	// NAVClamped counts overheard frames whose NAV was reduced.
	NAVClamped int64
	// NAVExact counts clamps that used the overheard sender frame (exact
	// bound) rather than the MTU fallback.
	NAVExact int64
	// SpoofSuspected counts ACKs flagged by RSSI deviation; SpoofIgnored
	// counts those safely discarded (capture condition held).
	SpoofSuspected int64
	SpoofIgnored   int64
	// ACKsChecked counts ACK acceptances evaluated.
	ACKsChecked int64
}

// expectedCTS remembers the NAV a receiver's CTS should carry, learned
// from the sender's overheard RTS.
type expectedCTS struct {
	nav     sim.Time
	expires sim.Time
}

// GRC is one station's countermeasure instance. It implements
// mac.Observer. Not safe for concurrent use (scheduler-driven).
type GRC struct {
	cfg    Config
	params phys.Params
	sched  *sim.Scheduler

	pendingCTS map[mac.NodeID]expectedCTS
	rssi       map[mac.NodeID]*phys.MedianTracker

	stats Stats
}

var _ mac.Observer = (*GRC)(nil)

// New builds a GRC observer for a station on the given band.
func New(sched *sim.Scheduler, params phys.Params, cfg Config) *GRC {
	if sched == nil {
		panic("detect: New requires a scheduler")
	}
	if cfg.MaxMTUBytes <= 0 {
		panic(fmt.Sprintf("detect: MaxMTUBytes %d must be positive", cfg.MaxMTUBytes))
	}
	return &GRC{
		cfg:        cfg,
		params:     params,
		sched:      sched,
		pendingCTS: make(map[mac.NodeID]expectedCTS),
		rssi:       make(map[mac.NodeID]*phys.MedianTracker),
	}
}

// Stats reports the accumulated decisions.
func (g *GRC) Stats() Stats { return g.stats }

// maxCTSNAV is the largest legitimate CTS NAV: an MTU-sized data frame
// plus its ACK and two SIFS gaps.
func (g *GRC) maxCTSNAV() sim.Time {
	dataBytes := g.cfg.MaxMTUBytes + phys.DataHeaderBytes
	return 2*g.params.SIFS +
		g.params.TxDuration(dataBytes, g.params.DataRateBps) +
		g.params.TxDuration(phys.ACKFrameBytes, g.params.BasicRateBps)
}

// maxRTSNAV is the largest legitimate RTS NAV: a full MTU-sized exchange.
func (g *GRC) maxRTSNAV() sim.Time {
	return mac.RTSNAV(g.params, g.cfg.MaxMTUBytes+phys.DataHeaderBytes)
}

// OnOverheard implements mac.Observer: builds the detection state.
func (g *GRC) OnOverheard(f *mac.Frame, rssiDBm float64) {
	// RSSI history for the spoof detector. MAC ACKs are excluded: they are
	// exactly the frame type a spoofer forges, so they would poison the
	// median. Data, RTS, and CTS frames cannot usefully be forged under
	// these misbehaviors (the paper obtains the reference RSSI from the
	// receiver's TCP ACKs, which are data frames here).
	if f.Type != mac.FrameACK {
		tr, ok := g.rssi[f.Src]
		if !ok {
			tr = phys.NewMedianTracker(g.cfg.MedianWindow)
			g.rssi[f.Src] = tr
		}
		tr.Add(rssiDBm)
	}
	if f.Type == mac.FrameRTS {
		// The responder's CTS NAV is fully determined by the RTS duration.
		g.pendingCTS[f.Dst] = expectedCTS{
			nav: mac.CTSNAVFromRTS(g.params, f.Duration),
			expires: g.sched.Now() + g.params.SIFS +
				g.params.TxDuration(phys.CTSFrameBytes, g.params.BasicRateBps) +
				g.params.SlotTime,
		}
	}
}

// FilterNAV implements mac.Observer: the NAV mitigation. It returns the
// duration to actually honor for an overheard frame.
func (g *GRC) FilterNAV(f *mac.Frame, _ float64) sim.Time {
	if !g.cfg.NAVGuard {
		return f.Duration
	}
	bound := f.Duration
	exact := false
	switch f.Type {
	case mac.FrameACK:
		// Without fragmentation an ACK reserves nothing.
		bound = 0
		exact = true
	case mac.FrameCTS:
		if exp, ok := g.pendingCTS[f.Src]; ok && g.sched.Now() <= exp.expires {
			bound = exp.nav
			exact = true
			delete(g.pendingCTS, f.Src)
		} else if m := g.maxCTSNAV(); m < bound {
			bound = m
		}
	case mac.FrameRTS:
		if m := g.maxRTSNAV(); m < bound {
			bound = m
		}
	case mac.FrameData:
		// A non-fragmented data frame reserves exactly SIFS + ACK.
		bound = mac.DataNAV(g.params)
		exact = true
	}
	if bound < f.Duration {
		g.stats.NAVClamped++
		if exact {
			g.stats.NAVExact++
		}
		return bound
	}
	return f.Duration
}

// AcceptACK implements mac.Observer: the spoofed-ACK mitigation at the
// sender. f.Src is the station the ACK claims to come from.
func (g *GRC) AcceptACK(f *mac.Frame, rssiDBm float64) bool {
	if !g.cfg.SpoofGuard {
		return true
	}
	g.stats.ACKsChecked++
	tr, ok := g.rssi[f.Src]
	if !ok || tr.Count() < g.cfg.MinRSSISamples {
		return true // not enough history to judge
	}
	median, ok := tr.Median()
	if !ok {
		return true
	}
	if math.Abs(rssiDBm-median) <= g.cfg.RSSIThresholdDB {
		return true
	}
	g.stats.SpoofSuspected++
	// Safe recovery: if the true receiver had transmitted, its ACK would
	// have captured this one — so it did not transmit, and ignoring the
	// forged ACK lets the MAC retransmit as it should.
	if median-rssiDBm >= g.cfg.CaptureThresholdDB {
		g.stats.SpoofIgnored++
		return false
	}
	return true
}
