package detect

import (
	"math"

	"greedy80211/internal/sim"
	"greedy80211/internal/transport"
)

// FakeACKDetector implements Section VII-C: a sender compares the loss
// rate its MAC reports with the application-layer loss rate measured by
// active probing. With an honest receiver and maxRetries MAC attempts per
// frame, independent losses give
//
//	appLoss ≈ macLoss^(maxRetries+1)
//
// A receiver faking ACKs makes macLoss look near zero while application
// loss stays at the raw channel loss, so appLoss far exceeds the bound.
type FakeACKDetector struct {
	// MaxRetries is the MAC retry limit in use.
	MaxRetries int
	// Threshold absorbs wireline loss when the connection spans both
	// wireless and wireline segments.
	Threshold float64
}

// NewFakeACKDetector builds a detector for the given MAC retry limit.
func NewFakeACKDetector(maxRetries int, threshold float64) *FakeACKDetector {
	if maxRetries < 0 {
		maxRetries = 0
	}
	if threshold <= 0 {
		threshold = 0.02
	}
	return &FakeACKDetector{MaxRetries: maxRetries, Threshold: threshold}
}

// ExpectedAppLoss reports the application loss an honest MAC would show.
func (d *FakeACKDetector) ExpectedAppLoss(macLoss float64) float64 {
	if macLoss <= 0 {
		return 0
	}
	if macLoss >= 1 {
		return 1
	}
	return math.Pow(macLoss, float64(d.MaxRetries+1))
}

// Evaluate reports whether the measured application loss is inconsistent
// with the MAC-reported per-attempt loss — i.e. the receiver is faking
// ACKs.
func (d *FakeACKDetector) Evaluate(macLoss, appLoss float64) bool {
	return appLoss > d.ExpectedAppLoss(macLoss)+d.Threshold
}

// Prober measures application-layer loss with ping-style probes: it sends
// a probe every interval and counts echoes. A receiver that never actually
// got a (corrupted but fake-ACKed) probe cannot echo it. Prober implements
// transport.Agent to consume echo packets.
type Prober struct {
	sched *sim.Scheduler
	out   transport.Output
	flow  int
	every sim.Time
	timer *sim.Timer

	seq    int
	echoed map[int]bool

	// Sent and Echoed count probes and their echoes.
	Sent   int64
	Echoed int64
}

var _ transport.Agent = (*Prober)(nil)

// ProbePayloadBytes is the probe packet payload size (ping default).
const ProbePayloadBytes = 64

// NewProber builds a prober on flow emitting through out every interval.
func NewProber(sched *sim.Scheduler, out transport.Output, flow int, interval sim.Time) *Prober {
	if interval <= 0 {
		panic("detect: probe interval must be positive")
	}
	p := &Prober{
		sched:  sched,
		out:    out,
		flow:   flow,
		every:  interval,
		echoed: make(map[int]bool),
	}
	p.timer = sim.NewTimer(sched, p.tick)
	return p
}

// Start begins probing.
func (p *Prober) Start() { p.timer.Start(0) }

// Stop halts probing.
func (p *Prober) Stop() { p.timer.Stop() }

func (p *Prober) tick() {
	pkt := &transport.Packet{
		Flow:         p.flow,
		Seq:          p.seq,
		PayloadBytes: ProbePayloadBytes,
		WireBytes:    ProbePayloadBytes + transport.UDPIPHeaderBytes,
	}
	p.seq++
	p.Sent++
	p.out.Output(pkt)
	p.timer.Start(p.every)
}

// Receive implements transport.Agent: consumes echoes.
func (p *Prober) Receive(pkt *transport.Packet) {
	if pkt.Flow != p.flow || p.echoed[pkt.Seq] {
		return
	}
	p.echoed[pkt.Seq] = true
	p.Echoed++
}

// AppLoss reports the measured application loss rate. The last in-flight
// probe is excluded to avoid counting a probe whose echo has not had time
// to return.
func (p *Prober) AppLoss() float64 {
	counted := p.Sent - 1
	if counted <= 0 {
		return 0
	}
	lost := counted - p.Echoed
	if lost < 0 {
		lost = 0
	}
	return float64(lost) / float64(counted)
}

// Responder echoes probes back; it runs at an honest receiver. A greedy
// receiver that fake-ACKed a corrupted probe never sees it, so the echo is
// missing — exactly the signal the detector needs. Responder implements
// transport.Agent.
type Responder struct {
	out  transport.Output
	flow int

	// Echoes counts probe replies sent.
	Echoes int64
}

var _ transport.Agent = (*Responder)(nil)

// NewResponder builds a responder for flow answering through out.
func NewResponder(flow int, out transport.Output) *Responder {
	return &Responder{out: out, flow: flow}
}

// Receive implements transport.Agent.
func (r *Responder) Receive(pkt *transport.Packet) {
	if pkt.Flow != r.flow || pkt.IsACK {
		return
	}
	echo := &transport.Packet{
		Flow:         r.flow,
		Seq:          pkt.Seq,
		IsACK:        true, // echoes travel the reverse route
		AckSeq:       pkt.Seq,
		PayloadBytes: ProbePayloadBytes,
		WireBytes:    ProbePayloadBytes + transport.UDPIPHeaderBytes,
	}
	r.Echoes++
	r.out.Output(echo)
}
