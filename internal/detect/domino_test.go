package detect

import (
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// feedSender injects a synthetic contention pattern: each acquisition
// waits DIFS + backoffSlots of idle after the previous busy period.
func feedSender(d *Domino, sta mac.NodeID, p phys.Params, n int, backoffSlots float64) {
	now := d.lastBusyEnd // continue after any traffic already injected
	air := 500 * sim.Microsecond
	for i := 0; i < n; i++ {
		start := now + p.DIFS() + sim.Time(backoffSlots*float64(p.SlotTime))
		d.OnTransmit(sta, &mac.Frame{Type: mac.FrameData, Src: sta, Dst: 99, MACBytes: 1052},
			start, air)
		now = start + air
	}
}

func TestDominoFlagsBackoffCheater(t *testing.T) {
	p := phys.Params80211B()
	d := NewDomino(p, 0.5, 20)
	feedSender(d, 1, p, 50, 15.5) // nominal: CWmin/2 = 15.5 slots
	feedSender(d, 2, p, 50, 2)    // cheater: ~2 slots

	verdicts := d.Verdicts()
	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %d, want 2", len(verdicts))
	}
	if verdicts[0].Station != 1 || verdicts[0].FlaggedCheat {
		t.Errorf("compliant sender flagged: %+v", verdicts[0])
	}
	if !verdicts[1].FlaggedCheat {
		t.Errorf("cheater not flagged: %+v", verdicts[1])
	}
	if !d.AnyCheater() {
		t.Error("AnyCheater() = false with a cheater present")
	}
	// Average estimates should be near the injected values.
	if v := verdicts[0].AvgBackoff; v < 14 || v > 17 {
		t.Errorf("compliant avg backoff = %.1f, want ≈15.5", v)
	}
	if v := verdicts[1].AvgBackoff; v < 1 || v > 3 {
		t.Errorf("cheater avg backoff = %.1f, want ≈2", v)
	}
}

func TestDominoNeedsSamples(t *testing.T) {
	p := phys.Params80211B()
	d := NewDomino(p, 0.5, 20)
	feedSender(d, 1, p, 5, 0) // blatant cheating but too few samples
	if d.AnyCheater() {
		t.Error("verdict rendered below MinSamples")
	}
}

func TestDominoIgnoresResponses(t *testing.T) {
	p := phys.Params80211B()
	d := NewDomino(p, 0.5, 1)
	// CTS/ACK frames follow at SIFS — they must not count as acquisitions
	// (their "backoff" would look like cheating).
	now := sim.Time(0)
	for i := 0; i < 30; i++ {
		start := now + p.DIFS() + 15*p.SlotTime
		d.OnTransmit(1, &mac.Frame{Type: mac.FrameRTS, Src: 1, Dst: 2, MACBytes: 20},
			start, 352*sim.Microsecond)
		ctsStart := start + 352*sim.Microsecond + p.SIFS
		d.OnTransmit(2, &mac.Frame{Type: mac.FrameCTS, Src: 2, Dst: 1, MACBytes: 14},
			ctsStart, 304*sim.Microsecond)
		now = ctsStart + 304*sim.Microsecond
	}
	for _, v := range d.Verdicts() {
		if v.Station == 2 && v.Samples != 0 {
			t.Errorf("responder accumulated %d contention samples", v.Samples)
		}
		if v.Station == 1 && v.FlaggedCheat {
			t.Errorf("RTS initiator flagged: %+v", v)
		}
	}
}

func TestDominoIgnoresMidExchangeData(t *testing.T) {
	p := phys.Params80211B()
	d := NewDomino(p, 0.5, 1)
	// A data frame SIFS after a CTS is part of the exchange, not a fresh
	// acquisition.
	d.OnTransmit(2, &mac.Frame{Type: mac.FrameCTS, Src: 2, Dst: 1, MACBytes: 14},
		sim.Millisecond, 304*sim.Microsecond)
	dataStart := sim.Millisecond + 304*sim.Microsecond + p.SIFS
	d.OnTransmit(1, &mac.Frame{Type: mac.FrameData, Src: 1, Dst: 2, MACBytes: 1052},
		dataStart, 958*sim.Microsecond)
	for _, v := range d.Verdicts() {
		if v.Station == 1 && v.Samples != 0 {
			t.Errorf("mid-exchange data counted as acquisition: %+v", v)
		}
	}
}

func TestDominoDefaults(t *testing.T) {
	d := NewDomino(phys.Params80211B(), 0, 0)
	if d.CheatFactor != 0.5 || d.MinSamples != 20 {
		t.Errorf("defaults = %v/%v", d.CheatFactor, d.MinSamples)
	}
	d.OnReceive(1, &mac.Frame{}, mac.RxInfo{}, 0) // no-op, must not panic
}
