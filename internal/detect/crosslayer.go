package detect

// CrossLayer is the paper's fallback spoofed-ACK detector for highly
// mobile clients whose RSSI varies too much for the median test: the
// sender keeps recently MAC-acknowledged TCP sequence numbers per flow and
// counts TCP retransmissions of segments the MAC claims were delivered.
// Frequent hits mean some station is acknowledging frames the true
// receiver never got. It assumes wireline loss is negligible next to
// wireless loss.
type CrossLayer struct {
	// SuspicionThreshold is how many anomalies (TCP retransmission of a
	// MAC-acked segment) mark the flow as under attack.
	SuspicionThreshold int

	ackedWindow int
	acked       map[flowSeq]bool
	ring        []flowSeq
	next        int

	// Anomalies counts TCP retransmissions of MAC-acked segments.
	Anomalies int64
}

type flowSeq struct {
	flow, seq int
}

// NewCrossLayer builds a detector remembering the last window MAC-acked
// segments per sender.
func NewCrossLayer(window, suspicionThreshold int) *CrossLayer {
	if window <= 0 {
		window = 256
	}
	if suspicionThreshold <= 0 {
		suspicionThreshold = 3
	}
	return &CrossLayer{
		SuspicionThreshold: suspicionThreshold,
		ackedWindow:        window,
		acked:              make(map[flowSeq]bool, window),
		ring:               make([]flowSeq, window),
	}
}

// OnMACAcked records that the MAC reported a data frame carrying the given
// TCP segment as acknowledged.
func (c *CrossLayer) OnMACAcked(flow, seq int) {
	k := flowSeq{flow, seq}
	if c.acked[k] {
		return
	}
	old := c.ring[c.next]
	if c.acked[old] {
		delete(c.acked, old)
	}
	c.ring[c.next] = k
	c.next = (c.next + 1) % c.ackedWindow
	c.acked[k] = true
}

// OnTCPRetransmit records that TCP retransmitted the given segment; if the
// MAC had already reported it acknowledged, that is an anomaly.
func (c *CrossLayer) OnTCPRetransmit(flow, seq int) {
	if c.acked[flowSeq{flow, seq}] {
		c.Anomalies++
	}
}

// Detected reports whether anomalies crossed the suspicion threshold.
func (c *CrossLayer) Detected() bool {
	return c.Anomalies >= int64(c.SuspicionThreshold)
}
