package detect

import (
	"sort"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// Domino is a minimal reimplementation of the backoff-manipulation test
// of DOMINO (Raya et al., MobiSys 2004) — the state-of-the-art *sender-
// side* greedy detector the paper positions itself against. A passive
// monitor measures each sender's idle time before its channel
// acquisitions and flags senders whose average backoff is suspiciously
// small compared to the nominal CWmin/2 slots.
//
// Its role in this repository is the paper's motivating negative result:
// greedy receivers never manipulate their own backoff — their senders
// contend perfectly normally — so DOMINO observes a compliant network
// while one flow starves the rest. The experiment "extc" demonstrates
// this against all three misbehaviors; GRC (package detect's observer)
// is the countermeasure that actually catches them.
//
// Domino implements medium.Tap (it is a passive monitor overhearing the
// channel).
type Domino struct {
	params phys.Params
	// CheatFactor flags a sender whose average observed backoff is below
	// CheatFactor × (CWmin/2) slots (DOMINO's threshold parameter).
	CheatFactor float64
	// MinSamples before a verdict is rendered for a sender.
	MinSamples int

	lastBusyEnd sim.Time
	samples     map[mac.NodeID][]float64
}

// NewDomino builds the monitor for a band's parameters.
func NewDomino(params phys.Params, cheatFactor float64, minSamples int) *Domino {
	if cheatFactor <= 0 {
		cheatFactor = 0.5
	}
	if minSamples <= 0 {
		minSamples = 20
	}
	return &Domino{
		params:      params,
		CheatFactor: cheatFactor,
		MinSamples:  minSamples,
		samples:     make(map[mac.NodeID][]float64),
	}
}

// OnTransmit implements medium.Tap: channel-acquiring frames (RTS and
// data) yield one backoff observation — the idle slots between the end of
// the previous busy period and this transmission, minus the DIFS wait.
// SIFS responses (CTS/ACK) extend the busy period but are not
// acquisitions.
func (d *Domino) OnTransmit(src mac.NodeID, f *mac.Frame, start, airtime sim.Time) {
	defer func() {
		if end := start + airtime; end > d.lastBusyEnd {
			d.lastBusyEnd = end
		}
	}()
	if f.Type != mac.FrameRTS && f.Type != mac.FrameData {
		return
	}
	idle := start - d.lastBusyEnd
	if idle < d.params.DIFS() {
		// Part of an ongoing exchange (e.g. data after CTS): not a
		// contention sample.
		return
	}
	slots := float64(idle-d.params.DIFS()) / float64(d.params.SlotTime)
	d.samples[src] = append(d.samples[src], slots)
}

// OnReceive implements medium.Tap (unused: DOMINO only times the air).
func (d *Domino) OnReceive(mac.NodeID, *mac.Frame, mac.RxInfo, sim.Time) {}

// Verdict is one monitored sender's assessment.
type Verdict struct {
	Station      mac.NodeID
	Samples      int
	AvgBackoff   float64 // observed, in slots
	Nominal      float64 // CWmin/2
	FlaggedCheat bool
}

// Verdicts reports every monitored sender, sorted by station id.
func (d *Domino) Verdicts() []Verdict {
	nominal := float64(d.params.CWMin) / 2
	out := make([]Verdict, 0, len(d.samples))
	for sta, samples := range d.samples {
		v := Verdict{Station: sta, Samples: len(samples), Nominal: nominal}
		if len(samples) >= d.MinSamples {
			var sum float64
			for _, s := range samples {
				sum += s
			}
			v.AvgBackoff = sum / float64(len(samples))
			v.FlaggedCheat = v.AvgBackoff < d.CheatFactor*nominal
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Station < out[j].Station })
	return out
}

// AnyCheater reports whether any sufficiently-sampled sender was flagged.
func (d *Domino) AnyCheater() bool {
	for _, v := range d.Verdicts() {
		if v.FlaggedCheat {
			return true
		}
	}
	return false
}
