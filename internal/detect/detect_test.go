package detect

import (
	"math"
	"testing"
	"testing/quick"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/transport"
)

func newGRC(t *testing.T) (*sim.Scheduler, *GRC) {
	t.Helper()
	sched := sim.NewScheduler(1)
	return sched, New(sched, phys.Params80211B(), DefaultConfig())
}

func TestFilterNAVClampsACK(t *testing.T) {
	_, g := newGRC(t)
	f := &mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1, Duration: 30 * sim.Millisecond}
	if got := g.FilterNAV(f, -50); got != 0 {
		t.Errorf("inflated ACK NAV passed: %v", got)
	}
	if g.Stats().NAVClamped != 1 || g.Stats().NAVExact != 1 {
		t.Errorf("stats = %+v", g.Stats())
	}
	// A zero ACK NAV is untouched.
	ok := &mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1, Duration: 0}
	if got := g.FilterNAV(ok, -50); got != 0 {
		t.Errorf("legit ACK NAV altered: %v", got)
	}
}

func TestFilterNAVExactCTSBoundFromRTS(t *testing.T) {
	sched, g := newGRC(t)
	p := phys.Params80211B()
	dataBytes := 1024 + phys.DataHeaderBytes
	rts := &mac.Frame{
		Type: mac.FrameRTS, Src: 1, Dst: 2,
		Duration: mac.RTSNAV(p, dataBytes), MACBytes: phys.RTSFrameBytes,
	}
	g.OnOverheard(rts, -50)

	want := mac.CTSNAVFromRTS(p, rts.Duration)
	// Inflated CTS from the receiver must be clamped to the exact value.
	cts := &mac.Frame{Type: mac.FrameCTS, Src: 2, Dst: 1, Duration: want + 20*sim.Millisecond}
	if got := g.FilterNAV(cts, -50); got != want {
		t.Errorf("CTS NAV = %v, want exact %v", got, want)
	}
	if g.Stats().NAVExact != 1 {
		t.Error("exact clamp not counted")
	}
	// The pairing is consumed: a second CTS falls back to the MTU bound.
	cts2 := &mac.Frame{Type: mac.FrameCTS, Src: 2, Dst: 1, Duration: 30 * sim.Millisecond}
	got2 := g.FilterNAV(cts2, -50)
	if got2 != g.maxCTSNAV() {
		t.Errorf("second CTS = %v, want MTU bound %v", got2, g.maxCTSNAV())
	}
	_ = sched
}

func TestFilterNAVMTUFallback(t *testing.T) {
	_, g := newGRC(t)
	// No RTS overheard (out of sender range): the MTU bound applies, which
	// for a 1024-byte exchange is ≈46% larger than the true value — the
	// residual advantage Fig 23 shows beyond 45 m.
	cts := &mac.Frame{Type: mac.FrameCTS, Src: 2, Dst: 1, Duration: phys.MaxNAV()}
	got := g.FilterNAV(cts, -50)
	if got != g.maxCTSNAV() {
		t.Errorf("CTS fallback = %v, want %v", got, g.maxCTSNAV())
	}
	p := phys.Params80211B()
	exact := mac.CTSNAVFromRTS(p, mac.RTSNAV(p, 1024+phys.DataHeaderBytes))
	ratio := float64(got) / float64(exact)
	if ratio < 1.2 || ratio > 1.7 {
		t.Errorf("MTU bound is %.2f× the exact NAV, want ≈1.4×", ratio)
	}
	// Legit CTS durations below the bound pass unchanged.
	small := &mac.Frame{Type: mac.FrameCTS, Src: 3, Dst: 1, Duration: sim.Millisecond}
	if g.FilterNAV(small, -50) != sim.Millisecond {
		t.Error("legit CTS clamped")
	}
}

func TestFilterNAVRTSAndDataBounds(t *testing.T) {
	_, g := newGRC(t)
	rts := &mac.Frame{Type: mac.FrameRTS, Src: 2, Dst: 1, Duration: phys.MaxNAV()}
	if got := g.FilterNAV(rts, -50); got != g.maxRTSNAV() {
		t.Errorf("RTS clamp = %v, want %v", got, g.maxRTSNAV())
	}
	p := phys.Params80211B()
	data := &mac.Frame{Type: mac.FrameData, Src: 2, Dst: 1, Duration: phys.MaxNAV()}
	if got := g.FilterNAV(data, -50); got != mac.DataNAV(p) {
		t.Errorf("DATA clamp = %v, want %v", got, mac.DataNAV(p))
	}
}

func TestFilterNAVDisabled(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := DefaultConfig()
	cfg.NAVGuard = false
	g := New(sched, phys.Params80211B(), cfg)
	f := &mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1, Duration: 30 * sim.Millisecond}
	if got := g.FilterNAV(f, -50); got != f.Duration {
		t.Error("disabled NAV guard still clamped")
	}
}

func TestAcceptACKRejectsSpoofWithCaptureMargin(t *testing.T) {
	_, g := newGRC(t)
	// Build RSSI history for the true receiver (node 2) at −50 dBm.
	for i := 0; i < 10; i++ {
		g.OnOverheard(&mac.Frame{Type: mac.FrameData, Src: 2, Dst: 1, Seq: uint16(i)}, -50)
	}
	ack := &mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1}
	// Consistent RSSI: accepted.
	if !g.AcceptACK(ack, -50.4) {
		t.Error("consistent ACK rejected")
	}
	// 15 dB weaker than the median: suspected and safely ignored.
	if g.AcceptACK(ack, -65) {
		t.Error("spoofed ACK (15 dB off) accepted")
	}
	st := g.Stats()
	if st.SpoofSuspected != 1 || st.SpoofIgnored != 1 {
		t.Errorf("stats = %+v", st)
	}
	// 3 dB off: suspected but not safely ignorable (below capture margin).
	if !g.AcceptACK(ack, -53) {
		t.Error("ACK within capture margin rejected (unsafe recovery)")
	}
	if g.Stats().SpoofSuspected != 2 {
		t.Error("second suspicion not counted")
	}
	// Stronger than the median by 15 dB: suspected, but the capture rule
	// (median − rssi) does not allow ignoring.
	if !g.AcceptACK(ack, -35) {
		t.Error("stronger-than-median ACK rejected")
	}
}

func TestAcceptACKNeedsHistory(t *testing.T) {
	_, g := newGRC(t)
	ack := &mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1}
	if !g.AcceptACK(ack, -90) {
		t.Error("ACK rejected without any RSSI history")
	}
	// ACK frames must not feed the median (spoofable).
	for i := 0; i < 20; i++ {
		g.OnOverheard(&mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1}, -90)
	}
	if !g.AcceptACK(ack, -40) {
		t.Error("ACK-only history should not enable detection")
	}
}

func TestAcceptACKDisabled(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := DefaultConfig()
	cfg.SpoofGuard = false
	g := New(sched, phys.Params80211B(), cfg)
	for i := 0; i < 10; i++ {
		g.OnOverheard(&mac.Frame{Type: mac.FrameData, Src: 2, Dst: 1}, -50)
	}
	if !g.AcceptACK(&mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1}, -90) {
		t.Error("disabled spoof guard rejected an ACK")
	}
}

func TestCrossLayerDetector(t *testing.T) {
	c := NewCrossLayer(16, 3)
	c.OnMACAcked(1, 10)
	c.OnMACAcked(1, 11)
	c.OnTCPRetransmit(1, 10)
	c.OnTCPRetransmit(1, 11)
	if c.Detected() {
		t.Error("detected below threshold")
	}
	c.OnMACAcked(1, 12)
	c.OnTCPRetransmit(1, 12)
	if !c.Detected() {
		t.Error("not detected at threshold")
	}
	// Retransmits of segments the MAC never acked are not anomalies.
	c2 := NewCrossLayer(16, 1)
	c2.OnTCPRetransmit(1, 99)
	if c2.Detected() {
		t.Error("non-acked retransmit counted as anomaly")
	}
}

func TestCrossLayerWindowEviction(t *testing.T) {
	c := NewCrossLayer(4, 1)
	for seq := 0; seq < 10; seq++ {
		c.OnMACAcked(1, seq)
	}
	// Seq 0 was evicted by the rolling window.
	c.OnTCPRetransmit(1, 0)
	if c.Anomalies != 0 {
		t.Error("evicted entry still triggered")
	}
	c.OnTCPRetransmit(1, 9)
	if c.Anomalies != 1 {
		t.Error("fresh entry did not trigger")
	}
}

func TestFakeACKDetectorMath(t *testing.T) {
	d := NewFakeACKDetector(4, 0.02)
	// Honest MAC: macLoss 0.5 over 5 attempts → appLoss ≈ 0.03.
	if got := d.ExpectedAppLoss(0.5); math.Abs(got-0.03125) > 1e-9 {
		t.Errorf("ExpectedAppLoss(0.5) = %v", got)
	}
	if d.ExpectedAppLoss(0) != 0 || d.ExpectedAppLoss(1) != 1 {
		t.Error("edge losses wrong")
	}
	// Honest case: consistent losses → no detection.
	if d.Evaluate(0.5, 0.04) {
		t.Error("honest receiver flagged")
	}
	// Faking: MAC sees no loss, app sees 30% → detected.
	if !d.Evaluate(0.0, 0.3) {
		t.Error("faking receiver not flagged")
	}
}

func TestProberAndResponder(t *testing.T) {
	sched := sim.NewScheduler(1)
	var resp *Responder
	var prober *Prober
	lossy := 0
	// Probe path: every 3rd probe is "corrupted" (dropped before the app).
	toResponder := transport.OutputFunc(func(p *transport.Packet) bool {
		lossy++
		if lossy%3 == 0 {
			return true // lost in flight
		}
		resp.Receive(p)
		return true
	})
	toProber := transport.OutputFunc(func(p *transport.Packet) bool {
		prober.Receive(p)
		return true
	})
	prober = NewProber(sched, toResponder, 1, 10*sim.Millisecond)
	resp = NewResponder(1, toProber)
	prober.Start()
	sched.RunUntil(sim.Second)
	prober.Stop()

	if prober.Sent < 100 {
		t.Fatalf("sent %d probes", prober.Sent)
	}
	if got := prober.AppLoss(); math.Abs(got-1.0/3) > 0.05 {
		t.Errorf("AppLoss = %v, want ≈0.33", got)
	}
	if resp.Echoes == 0 {
		t.Error("responder never echoed")
	}
}

func TestProberAppLossNoProbes(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := NewProber(sched, transport.OutputFunc(func(*transport.Packet) bool { return true }), 1, sim.Second)
	if p.AppLoss() != 0 {
		t.Error("AppLoss before probing should be 0")
	}
}

// Property: Evaluate is monotone — increasing appLoss can only turn
// detection on, never off.
func TestPropertyEvaluateMonotone(t *testing.T) {
	d := NewFakeACKDetector(4, 0.02)
	f := func(macRaw, app1Raw, app2Raw uint8) bool {
		macLoss := float64(macRaw) / 255
		a1 := float64(app1Raw) / 255
		a2 := float64(app2Raw) / 255
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		if d.Evaluate(macLoss, a1) && !d.Evaluate(macLoss, a2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FilterNAV output is never negative and never exceeds the
// advertised duration.
func TestPropertyFilterNAVBounds(t *testing.T) {
	sched := sim.NewScheduler(1)
	g := New(sched, phys.Params80211B(), DefaultConfig())
	f := func(typRaw uint8, durRaw uint16) bool {
		typ := mac.FrameType(typRaw%4) + 1
		dur := sim.Time(durRaw) * sim.Microsecond
		fr := &mac.Frame{Type: typ, Src: 2, Dst: 3, Duration: dur}
		got := g.FilterNAV(fr, -50)
		return got >= 0 && got <= dur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
