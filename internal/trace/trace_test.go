package trace

import (
	"strings"
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/sim"
)

func txFrame(seq uint16) *mac.Frame {
	return &mac.Frame{
		Type: mac.FrameData, Src: 1, Dst: 2, Seq: seq,
		MACBytes: 1052, Duration: 314 * sim.Microsecond,
	}
}

func TestKindString(t *testing.T) {
	if KindTransmit.String() != "TX" || KindDecode.String() != "RX" || KindCorrupt.String() != "ERR" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind name wrong")
	}
}

func TestRecorderAccounting(t *testing.T) {
	r := NewRecorder(16)
	f := txFrame(1)
	r.OnTransmit(1, f, 0, 958*sim.Microsecond)
	r.OnReceive(2, f, mac.RxInfo{Decoded: true, RSSIDBm: -50}, 958*sim.Microsecond)
	ack := &mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1, MACBytes: 14}
	r.OnTransmit(2, ack, 968*sim.Microsecond, 304*sim.Microsecond)
	r.OnReceive(1, ack, mac.RxInfo{Decoded: false, RSSIDBm: -60}, 1272*sim.Microsecond)

	st := r.Stats()
	if st.TxCount[mac.FrameData] != 1 || st.TxCount[mac.FrameACK] != 1 {
		t.Errorf("tx counts = %v", st.TxCount)
	}
	if st.Decoded != 1 || st.Corrupted != 1 {
		t.Errorf("rx outcomes = %d/%d", st.Decoded, st.Corrupted)
	}
	if st.BusyAirtime != 1262*sim.Microsecond {
		t.Errorf("busy airtime = %v", st.BusyAirtime)
	}
	if st.AirtimePerStation[1] != 958*sim.Microsecond {
		t.Errorf("station 1 airtime = %v", st.AirtimePerStation[1])
	}
	if got := r.Utilization(10 * sim.Millisecond); got < 0.12 || got > 0.13 {
		t.Errorf("utilization = %v, want ≈0.126", got)
	}
	if r.Utilization(0) != 0 {
		t.Error("zero-elapsed utilization nonzero")
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.OnTransmit(1, txFrame(uint16(i)), sim.Time(i)*sim.Millisecond, sim.Microsecond)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first: seqs 6,7,8,9.
	for i, e := range evs {
		if e.Frame.Seq != uint16(6+i) {
			t.Errorf("event %d seq = %d, want %d", i, e.Frame.Seq, 6+i)
		}
	}
}

func TestRecorderPartialRing(t *testing.T) {
	r := NewRecorder(100)
	r.OnTransmit(1, txFrame(7), 0, sim.Microsecond)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Frame.Seq != 7 {
		t.Fatalf("events = %v", evs)
	}
}

func TestSummaryAndDump(t *testing.T) {
	r := NewRecorder(8)
	f := txFrame(3)
	r.OnTransmit(1, f, 0, 958*sim.Microsecond)
	r.OnReceive(2, f, mac.RxInfo{Decoded: true, RSSIDBm: -48.2}, sim.Millisecond)

	sum := r.Summary(sim.Second)
	for _, want := range []string{"channel utilization", "DATA", "1 decoded", "station 1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	dump := r.Dump()
	if !strings.Contains(dump, "TX") || !strings.Contains(dump, "RX") ||
		!strings.Contains(dump, "seq=3") {
		t.Errorf("dump missing content:\n%s", dump)
	}
}

func TestNewRecorderDefaults(t *testing.T) {
	r := NewRecorder(0)
	if r.cap != 4096 {
		t.Errorf("default capacity = %d", r.cap)
	}
}

// TestShardWrapClearsStaleFields guards the field-by-field recording
// discipline: ring slots are reused after wrap, and the recording sites
// overwrite every Event field rather than storing a composite literal. A
// site that skips a field would leak a stale value from the slot's
// previous occupant into exports. The test dirties every slot of one
// station's shard with events that set every field group nonzero, then
// records a minimal event through each site and checks it is identical
// to the same event recorded by a fresh recorder.
func TestShardWrapClearsStaleFields(t *testing.T) {
	const ringCap = 4
	loud := &mac.ProbeEvent{
		Kind: mac.ProbeIFSDefer, At: sim.Second, Station: 1,
		Until: 2 * sim.Second, CW: 31, Slots: 9, Retries: 3, QueueLen: 7,
		EIFS: true, Long: true, OK: true,
		Frame: mac.FrameData, Dst: 2, Seq: 99,
	}
	loudFrame := &mac.Frame{Type: mac.FrameRTS, Src: 1, Dst: 2, Seq: 77,
		MACBytes: 20, Retry: true, Duration: sim.Millisecond}
	dirty := NewRecorder(ringCap)
	for i := 0; i < 3*ringCap; i++ {
		dirty.OnMACEvent(loud)
		dirty.OnTransmit(1, loudFrame, sim.Time(i)*sim.Millisecond, 211*sim.Microsecond)
		dirty.OnReceive(1, loudFrame, mac.RxInfo{Decoded: false, RSSIDBm: -31.5},
			sim.Time(i)*sim.Millisecond)
	}
	sites := []struct {
		name   string
		record func(r *Recorder)
	}{
		{"transmit", func(r *Recorder) { r.OnTransmit(1, &mac.Frame{}, 0, 0) }},
		{"receive", func(r *Recorder) { r.OnReceive(1, &mac.Frame{}, mac.RxInfo{}, 0) }},
		{"mac", func(r *Recorder) { r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeBackoffExpire, Station: 1}) }},
	}
	for _, site := range sites {
		site.record(dirty)
		fresh := NewRecorder(ringCap)
		site.record(fresh)
		got := dirty.Events()
		want := fresh.Events()
		if got[len(got)-1] != want[len(want)-1] {
			t.Errorf("%s after wrap leaked stale fields:\ngot  %+v\nwant %+v",
				site.name, got[len(got)-1], want[len(want)-1])
		}
	}
}

// TestShardedRetentionMatchesGlobalWindow checks the canonical-merge
// property the per-station shards are built on: the merged export equals
// exactly the newest-cap window of the global record stream, as a single
// shared ring would have retained it — including stations recording at
// very different rates and a negative station id folded into shard 0.
func TestShardedRetentionMatchesGlobalWindow(t *testing.T) {
	const ringCap = 8
	sharded := NewRecorder(ringCap)
	reference := NewRecorder(1 << 16) // never wraps: retains everything
	stations := []mac.NodeID{0, 1, 1, 2, -5, 3, 1, 2}
	n := 0
	for round := 0; round < 7; round++ {
		for _, sta := range stations {
			n++
			f := &mac.Frame{Type: mac.FrameData, Src: sta, Dst: 2, Seq: uint16(n)}
			for _, r := range []*Recorder{sharded, reference} {
				r.OnTransmit(sta, f, sim.Time(n)*sim.Microsecond, sim.Microsecond)
			}
		}
	}
	all := reference.Events()
	want := all[len(all)-ringCap:]
	got := sharded.Events()
	if len(got) != len(want) {
		t.Fatalf("retained %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if d := sharded.Dropped(); d != uint64(n-ringCap) {
		t.Errorf("Dropped() = %d, want %d", d, n-ringCap)
	}
}
