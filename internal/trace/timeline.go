package trace

import (
	"fmt"
	"sort"
	"strings"

	"greedy80211/internal/mac"
	"greedy80211/internal/sim"
)

// Timeline rendering: each station gets one row of fixed-width buckets;
// each bucket shows the highest-priority activity inside its time span.
//
//	R/C/D/A  transmitting RTS / CTS / DATA / ACK
//	!        corrupted reception
//	N        NAV-blocked (virtual carrier sense holds the medium busy)
//	b        backoff countdown running
//	~        physical carrier busy
//	.        idle
const timelineLegend = "R/C/D/A=tx RTS/CTS/DATA/ACK  !=corrupt rx  N=NAV-blocked  b=backoff  ~=carrier busy  .=idle"

var txChar = map[mac.FrameType]byte{
	mac.FrameRTS:  'R',
	mac.FrameCTS:  'C',
	mac.FrameData: 'D',
	mac.FrameACK:  'A',
}

// paint priority, low to high: idle < busy < backoff < NAV < corrupt < tx.
var paintRank = map[byte]int{'.': 0, '~': 1, 'b': 2, 'N': 3, '!': 4, 'R': 5, 'C': 5, 'D': 5, 'A': 5}

type row struct {
	cells []byte
}

func (r *row) paint(lo, hi int, ch byte) {
	rank := paintRank[ch]
	if hi < lo {
		hi = lo
	}
	if hi >= len(r.cells) {
		hi = len(r.cells) - 1
	}
	for i := lo; i <= hi; i++ {
		if i < 0 {
			continue
		}
		if paintRank[r.cells[i]] < rank {
			r.cells[i] = ch
		}
	}
}

// RenderTimeline draws an ASCII per-station timeline of the events over
// [from, to) using width buckets per row. A zero from/to autosizes to the
// event span; width <= 0 defaults to 100 buckets.
func RenderTimeline(meta Meta, events []Event, from, to sim.Time, width int) string {
	if width <= 0 {
		width = 100
	}
	if len(events) == 0 {
		return "trace: no events\n"
	}
	if to <= from {
		from = events[0].At
		to = events[0].At
		for _, e := range events {
			if end := e.At + e.Frame.Airtime; end > to {
				to = end
			}
			if e.Until > to && (e.Kind == KindNAVBlockedStart || e.Kind == KindNAVUpdate) {
				to = e.Until
			}
		}
		if to == from {
			to = from + 1
		}
	}
	span := to - from
	bucket := func(t sim.Time) int {
		if t < from {
			return -1
		}
		return int(int64(t-from) * int64(width) / int64(span))
	}

	rows := map[mac.NodeID]*row{}
	order := []mac.NodeID{}
	get := func(id mac.NodeID) *row {
		r, ok := rows[id]
		if !ok {
			cells := make([]byte, width)
			for i := range cells {
				cells[i] = '.'
			}
			r = &row{cells: cells}
			rows[id] = r
			order = append(order, id)
		}
		return r
	}
	for _, s := range meta.Stations {
		get(s.ID)
	}

	// Open intervals awaiting their closing event.
	navFrom := map[mac.NodeID]sim.Time{}
	boFrom := map[mac.NodeID]sim.Time{}
	busyFrom := map[mac.NodeID]sim.Time{}
	const none = sim.Time(-1)

	for _, e := range events {
		r := get(e.Station)
		switch e.Kind {
		case KindTransmit:
			if ch, ok := txChar[e.Frame.Type]; ok {
				r.paint(bucket(e.At), bucket(e.At+e.Frame.Airtime), ch)
			}
		case KindCorrupt:
			r.paint(bucket(e.At), bucket(e.At), '!')
		case KindNAVBlockedStart:
			navFrom[e.Station] = e.At
		case KindNAVBlockedEnd:
			if at, ok := navFrom[e.Station]; ok && at != none {
				r.paint(bucket(at), bucket(e.At), 'N')
				navFrom[e.Station] = none
			}
		case KindBackoffResume:
			boFrom[e.Station] = e.At
		case KindBackoffFreeze, KindBackoffExpire:
			if at, ok := boFrom[e.Station]; ok && at != none {
				r.paint(bucket(at), bucket(e.At), 'b')
				boFrom[e.Station] = none
			}
		case KindBusyStart:
			busyFrom[e.Station] = e.At
		case KindBusyEnd:
			if at, ok := busyFrom[e.Station]; ok && at != none {
				r.paint(bucket(at), bucket(e.At), '~')
				busyFrom[e.Station] = none
			}
		}
	}
	// Intervals still open at the horizon run to the right edge.
	closeOpen := func(m map[mac.NodeID]sim.Time, ch byte) {
		for id, at := range m {
			if at != none {
				get(id).paint(bucket(at), width-1, ch)
			}
		}
	}
	closeOpen(busyFrom, '~')
	closeOpen(boFrom, 'b')
	closeOpen(navFrom, 'N')

	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	nameW := 0
	for _, id := range order {
		if n := len(meta.Name(id)); n > nameW {
			nameW = n
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (%v per column)\n", from, to, span/sim.Time(width))
	for _, id := range order {
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, meta.Name(id), rows[id].cells)
	}
	fmt.Fprintf(&b, "%s\n", timelineLegend)
	return b.String()
}
