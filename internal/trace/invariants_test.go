package trace

import (
	"strings"
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/sim"
)

// feedAll runs a hand-built event stream through a fresh checker.
func feedAll(events []Event) *Checker {
	c := NewChecker(DefaultTiming())
	for _, e := range events {
		c.Feed(e)
	}
	return c
}

// requireViolation asserts exactly one violation of the named invariant
// and returns it.
func requireViolation(t *testing.T, c *Checker, invariant string) Violation {
	t.Helper()
	if c.Count() != 1 {
		t.Fatalf("violations = %d, want 1: %v", c.Count(), c.Violations())
	}
	v := c.Violations()[0]
	if v.Invariant != invariant {
		t.Fatalf("invariant = %s, want %s", v.Invariant, invariant)
	}
	return v
}

const us = sim.Microsecond

// TestInvariantTxWhileNAVBlocked: a fake MAC that wins contention while
// its own NAV still holds the medium must be caught, and the violation
// must cite both the transmission and the NAV update it ignored.
func TestInvariantTxWhileNAVBlocked(t *testing.T) {
	navSet := Event{Kind: KindNAVUpdate, At: 100 * us, Station: 1, Until: 10000 * us}
	rogue := Event{Kind: KindTxContend, At: 5000 * us, Station: 1,
		Frame: FrameInfo{Type: mac.FrameRTS, Src: 1, Dst: 2}}
	c := feedAll([]Event{navSet, rogue})

	v := requireViolation(t, c, InvNAV)
	if v.Station != 1 || v.At != 5000*us {
		t.Errorf("violation at sta=%d t=%v, want sta=1 t=5ms", v.Station, v.At)
	}
	if len(v.Evidence) != 2 || v.Evidence[0].Kind != KindTxContend || v.Evidence[1].Kind != KindNAVUpdate {
		t.Errorf("evidence = %v, want [TX-CONTEND, NAV-SET]", v.Evidence)
	}
	if !strings.Contains(v.String(), "NAV holds until 10.000ms") {
		t.Errorf("violation text missing NAV deadline:\n%s", v)
	}
}

// TestInvariantDIFSSpacing: transmitting 30µs after the medium went idle
// violates the DIFS=50µs wait.
func TestInvariantDIFSSpacing(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindBusyStart, At: 500 * us, Station: 1},
		{Kind: KindBusyEnd, At: 1000 * us, Station: 1},
		{Kind: KindTxContend, At: 1030 * us, Station: 1,
			Frame: FrameInfo{Type: mac.FrameData, Src: 1, Dst: 2}},
	})
	v := requireViolation(t, c, InvIFS)
	if !strings.Contains(v.Detail, "30.0µs") || !strings.Contains(v.Detail, "DIFS") {
		t.Errorf("detail = %q, want the 30µs gap against DIFS", v.Detail)
	}
}

// TestInvariantEIFSAfterCorruption: after a corrupted reception the wait
// stretches to EIFS; clearing plain DIFS is not enough, and the violation
// must cite the corrupted frame that raised the bar.
func TestInvariantEIFSAfterCorruption(t *testing.T) {
	corrupt := Event{Kind: KindCorrupt, At: 1000 * us, Station: 1,
		Frame: FrameInfo{Type: mac.FrameData, Src: 3, Dst: 4}, RSSIDBm: -88}
	c := feedAll([]Event{
		{Kind: KindBusyStart, At: 900 * us, Station: 1},
		corrupt,
		{Kind: KindBusyEnd, At: 1000 * us, Station: 1},
		// 60µs clears DIFS (50µs) but not EIFS (364µs for 802.11b).
		{Kind: KindTxContend, At: 1060 * us, Station: 1,
			Frame: FrameInfo{Type: mac.FrameData, Src: 1, Dst: 2}},
	})
	v := requireViolation(t, c, InvIFS)
	if !strings.Contains(v.Detail, "EIFS") {
		t.Errorf("detail = %q, want an EIFS citation", v.Detail)
	}
	found := false
	for _, e := range v.Evidence {
		if e.Kind == KindCorrupt {
			found = true
		}
	}
	if !found {
		t.Errorf("evidence %v does not cite the corrupted reception", v.Evidence)
	}
}

// TestInvariantBusyMedium: a contention TX while the reconstructed medium
// is still busy cites the event that began the busy period.
func TestInvariantBusyMedium(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindBusyStart, At: 500 * us, Station: 1},
		{Kind: KindTxContend, At: 700 * us, Station: 1,
			Frame: FrameInfo{Type: mac.FrameRTS, Src: 1, Dst: 2}},
	})
	v := requireViolation(t, c, InvIFS)
	if !strings.Contains(v.Detail, "busy medium") {
		t.Errorf("detail = %q, want a busy-medium citation", v.Detail)
	}
	if len(v.Evidence) != 2 || v.Evidence[1].Kind != KindBusyStart {
		t.Errorf("evidence = %v, want the BUSY-BEG onset cited", v.Evidence)
	}
}

// TestInvariantBackoffWrongExpiry: a countdown of 5 slots from t must
// expire at t+5·slot; a fake MAC expiring two slots early is caught.
func TestInvariantBackoffWrongExpiry(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindBackoffResume, At: 1000 * us, Station: 1, Slots: 5},
		{Kind: KindBackoffExpire, At: 1060 * us, Station: 1}, // want 1100µs
	})
	v := requireViolation(t, c, InvBackoff)
	if !strings.Contains(v.Detail, "must expire at 1.100ms") {
		t.Errorf("detail = %q, want the correct expiry time", v.Detail)
	}
}

// TestInvariantBackoffThroughBusy: the countdown must freeze on a busy
// onset; expiring past one is the classic backoff cheat.
func TestInvariantBackoffThroughBusy(t *testing.T) {
	busy := Event{Kind: KindBusyStart, At: 1020 * us, Station: 1}
	c := feedAll([]Event{
		{Kind: KindBackoffResume, At: 1000 * us, Station: 1, Slots: 5},
		busy,
		{Kind: KindBackoffExpire, At: 1100 * us, Station: 1},
	})
	v := requireViolation(t, c, InvBackoff)
	if !strings.Contains(v.Detail, "busy onset at 1.020ms") {
		t.Errorf("detail = %q, want the busy onset cited", v.Detail)
	}
	found := false
	for _, e := range v.Evidence {
		if e.Kind == KindBusyStart && e.At == busy.At {
			found = true
		}
	}
	if !found {
		t.Errorf("evidence %v does not cite the busy onset", v.Evidence)
	}
}

// TestInvariantFreezeOverconsumes: a freeze that claims more consumed
// slots than idle slots elapsed is caught.
func TestInvariantFreezeOverconsumes(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindBackoffResume, At: 1000 * us, Station: 1, Slots: 5},
		// 40µs = 2 idle slots elapsed, yet 4 slots were consumed.
		{Kind: KindBackoffFreeze, At: 1040 * us, Station: 1, Slots: 1},
	})
	v := requireViolation(t, c, InvBackoff)
	if !strings.Contains(v.Detail, "consumed 4 slots but only 2 idle slots") {
		t.Errorf("detail = %q", v.Detail)
	}
}

// TestInvariantSIFSWrongOffset: a response 30µs after the reception it
// answers (SIFS is 10µs) is caught.
func TestInvariantSIFSWrongOffset(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindDecode, At: 1000 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameData, Src: 1, Dst: 2}, RSSIDBm: -50},
		{Kind: KindTxRespond, At: 1030 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameACK, Src: 2, Dst: 1}},
	})
	v := requireViolation(t, c, InvSIFS)
	if !strings.Contains(v.Detail, "nearest reception ended 30000ns before") {
		t.Errorf("detail = %q, want the 30µs offset", v.Detail)
	}
}

// TestInvariantSIFSOverlappedRxIsClean pins the hidden-terminal edge: an
// overlapped arrival that ends between the answered frame and its ACK
// does not reset the response clock, so an ACK exactly SIFS after the
// frame it answers is compliant even though it is not SIFS after the
// *latest* reception.
func TestInvariantSIFSOverlappedRxIsClean(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindDecode, At: 1000 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameData, Src: 1, Dst: 2}, RSSIDBm: -50},
		// A hidden sender's frame ends 3µs later, corrupted.
		{Kind: KindCorrupt, At: 1003 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameData, Src: 3, Dst: 4}, RSSIDBm: -60},
		{Kind: KindTxRespond, At: 1010 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameACK, Src: 2, Dst: 1}},
	})
	if c.Count() != 0 {
		t.Fatalf("violations = %v, want none: the ACK is exactly SIFS after the frame it answers", c.Violations())
	}
}

// TestInvariantSIFSWrongFrame: a CTS exactly SIFS after a reception that
// was not an RTS addressed to this station is caught with the receptions
// cited.
func TestInvariantSIFSWrongFrame(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindDecode, At: 1000 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameData, Src: 1, Dst: 2}, RSSIDBm: -50},
		{Kind: KindTxRespond, At: 1010 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameCTS, Src: 2, Dst: 1}},
	})
	v := requireViolation(t, c, InvSIFS)
	if !strings.Contains(v.Detail, "without a decoded RTS") {
		t.Errorf("detail = %q, want the missing-RTS citation", v.Detail)
	}
	if len(v.Evidence) < 2 {
		t.Errorf("evidence = %v, want the response plus the receptions", v.Evidence)
	}
}

// TestCompliantStreamIsClean: a protocol-faithful exchange produces no
// violations.
func TestCompliantStreamIsClean(t *testing.T) {
	c := feedAll([]Event{
		// An RTS arrives for station 2; CTS answers at exactly SIFS.
		{Kind: KindBusyStart, At: 1000 * us, Station: 2},
		{Kind: KindDecode, At: 1300 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameRTS, Src: 1, Dst: 2}, RSSIDBm: -50},
		{Kind: KindBusyEnd, At: 1300 * us, Station: 2},
		{Kind: KindTxRespond, At: 1310 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameCTS, Src: 2, Dst: 1}},
		// Later, a contention TX after DIFS plus a correctly-paced backoff.
		{Kind: KindBackoffResume, At: 2000 * us, Station: 2, Slots: 3},
		{Kind: KindBackoffExpire, At: 2060 * us, Station: 2},
		{Kind: KindTxContend, At: 2060 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameData, Src: 2, Dst: 1}},
	})
	if c.Count() != 0 {
		t.Fatalf("compliant stream flagged: %v", c.Violations())
	}
}

// TestTruncatedStreamSkipsPreHorizonChecks: a ring-truncated stream that
// opens mid-run must not flag a response whose reception was evicted.
func TestTruncatedStreamSkipsPreHorizonChecks(t *testing.T) {
	c := feedAll([]Event{
		{Kind: KindBusyEnd, At: 5000 * us, Station: 2},
		// The DATA this ACK answers predates the stream; unverifiable.
		{Kind: KindTxRespond, At: 5005 * us, Station: 2,
			Frame: FrameInfo{Type: mac.FrameACK, Src: 2, Dst: 1}},
	})
	if c.Count() != 0 {
		t.Fatalf("truncated stream flagged: %v", c.Violations())
	}
}

// TestViolationRetentionCap: the checker keeps counting past the cap but
// retains at most maxViolations entries.
func TestViolationRetentionCap(t *testing.T) {
	c := NewChecker(DefaultTiming())
	nav := Event{Kind: KindNAVUpdate, At: 0, Station: 1, Until: sim.Second}
	c.Feed(nav)
	for i := 0; i < maxViolations+20; i++ {
		c.Feed(Event{Kind: KindTxContend, At: sim.Time(i+1) * us, Station: 1,
			Frame: FrameInfo{Type: mac.FrameRTS, Src: 1, Dst: 2}})
	}
	if c.Count() != maxViolations+20 {
		t.Errorf("count = %d, want %d", c.Count(), maxViolations+20)
	}
	if len(c.Violations()) != maxViolations {
		t.Errorf("retained = %d, want %d", len(c.Violations()), maxViolations)
	}
}
