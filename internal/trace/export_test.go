package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// recordSample drives a recorder through a representative mix of channel
// and MAC events, exercising every wire field at least once.
func recordSample() *Recorder {
	r := NewRecorder(64)
	r.SetParams(phys.Params80211B())
	r.SetStationName(1, "S1")
	r.SetStationName(2, "R1")

	data := &mac.Frame{Type: mac.FrameData, Src: 1, Dst: 2, Seq: 9, Retry: true,
		MACBytes: 1052, Duration: 25 * sim.Millisecond}
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeEnqueue, At: 10 * us, Station: 1,
		Frame: mac.FrameData, Dst: 2, Seq: 9, QueueLen: 1})
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeBackoffDraw, At: 50 * us, Station: 1,
		CW: 31, Slots: 7})
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeBackoffResume, At: 100 * us, Station: 1, Slots: 7})
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeBackoffExpire, At: 240 * us, Station: 1})
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeTxContend, At: 240 * us, Station: 1,
		Frame: mac.FrameData, Dst: 2, Seq: 9})
	r.OnTransmit(1, data, 240*us, 958*us)
	r.OnReceive(2, data, mac.RxInfo{Decoded: true, RSSIDBm: -47.5}, 1198*us)
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeNAVUpdate, At: 1198 * us, Station: 3,
		Until: 26198 * us})
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeNAVBlockedStart, At: 1208 * us, Station: 3,
		Until: 26198 * us})
	ack := &mac.Frame{Type: mac.FrameACK, Src: 2, Dst: 1, MACBytes: 14}
	r.OnTransmit(2, ack, 1208*us, 304*us)
	r.OnReceive(1, ack, mac.RxInfo{Decoded: false, RSSIDBm: -91}, 1512*us)
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeRetry, At: 1512 * us, Station: 1,
		Retries: 1, Long: true, Frame: mac.FrameData, Dst: 2, Seq: 9})
	r.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeMSDUDone, At: 3000 * us, Station: 1,
		OK: true, Frame: mac.FrameData, Dst: 2, Seq: 9})
	return r
}

// TestJSONLRoundTrip: Write → Read must reproduce the meta header and every
// event exactly, including retry flags and NAV durations.
func TestJSONLRoundTrip(t *testing.T) {
	r := recordSample()
	meta := r.Meta("fig1", 42)
	events := r.Events()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotEvents, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	meta.Version = FormatVersion // WriteJSONL stamps it
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Errorf("meta mismatch:\n got %+v\nwant %+v", gotMeta, meta)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Errorf("events mismatch:\n got %+v\nwant %+v", gotEvents, events)
	}
	// The inflated-NAV signature must survive the round trip.
	var sawRetry, sawNAV bool
	for _, e := range gotEvents {
		if e.Kind == KindTransmit && e.Frame.Retry {
			sawRetry = true
		}
		if e.Kind == KindTransmit && e.Frame.Duration == 25*sim.Millisecond {
			sawNAV = true
		}
	}
	if !sawRetry || !sawNAV {
		t.Errorf("retry=%v nav=%v flags lost in round trip", sawRetry, sawNAV)
	}
}

// TestReadJSONLRejectsGarbage covers the error paths: wrong version, no
// header, empty input.
func TestReadJSONLRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"empty":        "",
		"wrongVersion": `{"v":"other/v9"}` + "\n",
		"notJSON":      "hello\n",
	} {
		if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestChromeTraceExport: the export must be valid JSON with per-station
// thread metadata, TX slices, and NAV-blocked slices.
func TestChromeTraceExport(t *testing.T) {
	r := recordSample()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Meta("fig1", 42), r.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var threads, slices, navSlices int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Name == "thread_name":
			threads++
		case e.Ph == "X" && strings.HasPrefix(e.Name, "DATA"):
			slices++
			if !strings.Contains(e.Name, "(retry)") {
				t.Errorf("retry TX slice name %q lacks the retry marker", e.Name)
			}
			if e.Args["nav_us"] == nil {
				t.Errorf("TX slice args %v lack nav_us", e.Args)
			}
		case e.Ph == "X" && e.Name == "NAV-blocked":
			navSlices++
		}
	}
	if threads < 3 {
		t.Errorf("thread_name metadata = %d, want one per station (3)", threads)
	}
	if slices == 0 || navSlices == 0 {
		t.Errorf("TX slices = %d, NAV-blocked slices = %d; want both > 0", slices, navSlices)
	}
}

// TestRenderTimeline: the ASCII view must label stations by name and show
// transmissions and NAV-blocked intervals with the legend characters.
func TestRenderTimeline(t *testing.T) {
	r := recordSample()
	out := RenderTimeline(r.Meta("fig1", 42), r.Events(), 0, 0, 100)
	if !strings.Contains(out, "S1") || !strings.Contains(out, "R1") {
		t.Errorf("timeline missing station names:\n%s", out)
	}
	if !strings.Contains(out, "D") {
		t.Errorf("timeline missing a data TX mark:\n%s", out)
	}
	if !strings.Contains(out, "N") {
		t.Errorf("timeline missing the NAV-blocked band:\n%s", out)
	}
	if !strings.Contains(out, "timeline") {
		t.Errorf("timeline missing header:\n%s", out)
	}
}

// TestCollectorCanonicalOrder: recordings come back sorted by seed no
// matter the Start order, so exports are deterministic under parallel
// scheduling.
func TestCollectorCanonicalOrder(t *testing.T) {
	c := NewCollector(16)
	for _, seed := range []int64{3, 1, 2} {
		rec := c.Start(seed)
		rec.OnTransmit(1, &mac.Frame{Type: mac.FrameData, Src: 1, Dst: 2, MACBytes: 100},
			sim.Time(seed)*us, us)
	}
	recs := c.Recordings()
	if len(recs) != 3 {
		t.Fatalf("recordings = %d", len(recs))
	}
	for i, want := range []int64{1, 2, 3} {
		if recs[i].Seed != want {
			t.Errorf("recording %d seed = %d, want %d", i, recs[i].Seed, want)
		}
	}
}

// TestCollectorChecksWired: EnableChecks attaches a live checker fed by
// the recorder sink, and violations surface with their seed.
func TestCollectorChecksWired(t *testing.T) {
	c := NewCollector(16)
	c.EnableChecks()
	rec := c.Start(7)
	// A NAV-ignoring transmission, delivered through the probe path.
	rec.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeNAVUpdate, At: 0, Station: 1, Until: sim.Second})
	rec.OnMACEvent(&mac.ProbeEvent{Kind: mac.ProbeTxContend, At: 100 * us, Station: 1,
		Frame: mac.FrameRTS, Dst: 2})
	if c.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", c.ViolationCount())
	}
	if v := c.Violations()[0]; !strings.HasPrefix(v, "seed=7 ") || !strings.Contains(v, InvNAV) {
		t.Errorf("violation = %q, want seed prefix and invariant name", v)
	}
}

// TestExportDir writes one JSONL and one timeline file per recording.
func TestExportDir(t *testing.T) {
	c := NewCollector(16)
	rec := c.Start(5)
	rec.OnTransmit(1, &mac.Frame{Type: mac.FrameData, Src: 1, Dst: 2, MACBytes: 100}, 0, us)
	dir := t.TempDir()
	paths, err := ExportDir(dir, "figX", c.Recordings())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2 files", paths)
	}
	base := filepath.Base(paths[0])
	if base != "figX_run0_seed5.trace.jsonl" {
		t.Errorf("jsonl name = %s", base)
	}
	for _, p := range paths {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("%s: err=%v size=%d", p, err, st.Size())
		}
	}
	f, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta, events, err := ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Label != "figX" || meta.Seed != 5 || len(events) != 1 {
		t.Errorf("reread meta=%+v events=%d", meta, len(events))
	}
}
