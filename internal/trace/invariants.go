package trace

import (
	"fmt"
	"strings"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// Timing is the subset of band parameters the invariant checker needs; it
// travels in the JSONL header so a trace file can be re-checked offline.
type Timing struct {
	Slot  sim.Time `json:"slot"`
	SIFS  sim.Time `json:"sifs"`
	DIFS  sim.Time `json:"difs"`
	EIFS  sim.Time `json:"eifs"`
	CWMin int      `json:"cwmin"`
	CWMax int      `json:"cwmax"`
}

// TimingFromParams extracts the checker-relevant timing from a band.
func TimingFromParams(p phys.Params) Timing {
	return Timing{
		Slot:  p.SlotTime,
		SIFS:  p.SIFS,
		DIFS:  p.DIFS(),
		EIFS:  p.EIFS(),
		CWMin: p.CWMin,
		CWMax: p.CWMax,
	}
}

// DefaultTiming is the 802.11b timing, the paper's default band.
func DefaultTiming() Timing { return TimingFromParams(phys.Params80211B()) }

// Invariant names reported in violations.
const (
	// InvNAV: a station must not win contention while its virtual carrier
	// sense still holds the medium busy (SIFS responses are exempt: they
	// own the medium by protocol timing).
	InvNAV = "tx-while-nav-blocked"
	// InvIFS: a contention transmission requires the reconstructed medium
	// (physical carrier, own transmissions, NAV) to have been idle for at
	// least DIFS — or EIFS after a corrupted reception.
	InvIFS = "ifs-spacing"
	// InvBackoff: the backoff counter decrements only during idle slots,
	// never faster than the slot clock, and an expiry consumes exactly the
	// drawn slot count.
	InvBackoff = "backoff-idle-decrement"
	// InvSIFS: every SIFS response (ACK, CTS, the post-CTS data frame)
	// follows the reception it answers by exactly SIFS.
	InvSIFS = "sifs-response-spacing"
)

// Violation is one invariant breach, citing the offending event and the
// establishing context (e.g. the NAV update a transmission ignored).
type Violation struct {
	Invariant string
	At        sim.Time
	Station   mac.NodeID
	Detail    string
	Evidence  []Event
}

// String renders the violation with its event citations.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s sta=%d at %v: %s", v.Invariant, v.Station, v.At, v.Detail)
	for _, e := range v.Evidence {
		b.WriteString("\n    | ")
		b.WriteString(e.String())
	}
	return b.String()
}

// maxViolations bounds how many violations a checker retains; the count
// keeps running past the cap.
const maxViolations = 100

// staState reconstructs one station's medium view from the event stream.
type staState struct {
	id mac.NodeID

	physBusy bool
	physEnd  sim.Time // last observed physical-busy end

	txUntil sim.Time
	txEvent Event

	navUntil sim.Time
	navEvent Event

	// Reconstructed medium-busy (phys OR own TX OR NAV) state machine.
	busy      bool
	idleSince sim.Time // valid when !busy: when the medium last went idle
	busyEvent Event    // event that began the current busy period

	eifs      bool
	eifsEvent Event

	// Receptions (any outcome) that ended within the last SIFS, newest
	// last, for SIFS matching. Overlapped hidden-terminal arrivals can
	// end between the answered frame and its response, so the checker
	// must remember every recent reception, not just the latest.
	rx []Event

	// Backoff countdown in progress.
	counting bool
	cdStart  sim.Time
	cdSlots  int
	cdEvent  Event
	// First medium-busy onset observed inside the countdown (zero time
	// means none). A countdown that keeps running past it is a violation.
	cdBusyAt sim.Time
	cdBusyEv Event
}

// Checker verifies 802.11 access invariants over one world's unified
// trace stream. Feed events in scheduler order (a Recorder sink delivers
// exactly that); the checker needs MAC-probe events, so channel-only
// traces pass vacuously.
type Checker struct {
	timing     Timing
	sta        map[mac.NodeID]*staState
	violations []Violation
	count      int

	// begin is the first fed event's timestamp: checks whose supporting
	// evidence predates it are skipped, so a ring-truncated stream (which
	// starts mid-run) does not produce spurious violations.
	begin   sim.Time
	seenAny bool
}

// NewChecker builds a checker for a world running under the given timing.
func NewChecker(t Timing) *Checker {
	return &Checker{timing: t, sta: make(map[mac.NodeID]*staState)}
}

// SetTiming replaces the timing; call before feeding events.
func (c *Checker) SetTiming(t Timing) { c.timing = t }

// Violations returns the retained violations (at most maxViolations).
func (c *Checker) Violations() []Violation { return c.violations }

// Count reports the total number of violations, including any past the
// retention cap.
func (c *Checker) Count() int { return c.count }

func (c *Checker) report(v Violation) {
	c.count++
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, v)
	}
}

func (c *Checker) state(id mac.NodeID) *staState {
	s, ok := c.sta[id]
	if !ok {
		s = &staState{id: id}
		c.sta[id] = s
	}
	return s
}

func maxTime(a, b, d sim.Time) sim.Time {
	if b > a {
		a = b
	}
	if d > a {
		a = d
	}
	return a
}

// advance lazily retires tx/NAV busy components that expired before t.
func (s *staState) advance(t sim.Time) {
	if s.busy && !s.physBusy && t >= s.txUntil && t >= s.navUntil {
		s.busy = false
		s.idleSince = maxTime(s.physEnd, s.txUntil, s.navUntil)
	}
}

// markBusy notes a medium-busy onset caused by event e at time t.
func (s *staState) markBusy(t sim.Time, e Event) {
	if !s.busy {
		s.busy = true
		s.busyEvent = e
	}
	if s.counting && s.cdBusyAt == 0 {
		s.cdBusyAt = t
		s.cdBusyEv = e
	}
}

// Feed consumes the next event in stream order.
func (c *Checker) Feed(e Event) {
	if !c.seenAny {
		c.seenAny = true
		c.begin = e.At
	}
	s := c.state(e.Station)
	t := e.At
	s.advance(t)

	switch e.Kind {
	case KindBusyStart:
		s.markBusy(t, e)
		s.physBusy = true

	case KindBusyEnd:
		s.physBusy = false
		s.physEnd = t
		s.advance(t)

	case KindTransmit:
		s.markBusy(t, e)
		if until := t + e.Frame.Airtime; until > s.txUntil {
			s.txUntil = until
			s.txEvent = e
		}

	case KindNAVUpdate:
		if e.Until > s.navUntil {
			s.markBusy(t, e)
			s.navUntil = e.Until
			s.navEvent = e
		}

	case KindNAVExpire:
		s.advance(t)

	case KindDecode:
		s.eifs = false
		s.noteRx(e, c.timing.SIFS)

	case KindCorrupt:
		s.eifs = true
		s.eifsEvent = e
		s.noteRx(e, c.timing.SIFS)

	case KindBackoffResume:
		s.counting = true
		s.cdStart = t
		s.cdSlots = e.Slots
		s.cdEvent = e
		s.cdBusyAt = 0

	case KindBackoffFreeze:
		if s.counting {
			c.checkFreeze(s, e)
		}
		s.counting = false

	case KindBackoffExpire:
		if s.counting {
			c.checkExpire(s, e)
		}
		s.counting = false

	case KindTxContend:
		c.checkContend(s, e)

	case KindTxRespond:
		c.checkRespond(s, e)
	}
}

// noteRx records a reception end and prunes ones too old to be answered
// by a SIFS response (the window keeps the slice a handful long even
// under heavy hidden-terminal overlap).
func (s *staState) noteRx(e Event, sifs sim.Time) {
	keep := s.rx[:0]
	for _, rx := range s.rx {
		if rx.At+sifs >= e.At {
			keep = append(keep, rx)
		}
	}
	s.rx = append(keep, e)
}

func (c *Checker) checkContend(s *staState, e Event) {
	t := e.At
	if t < s.navUntil {
		c.report(Violation{
			Invariant: InvNAV, At: t, Station: s.id,
			Detail:   fmt.Sprintf("contention TX of %s while NAV holds until %v", e.Frame.Type, s.navUntil),
			Evidence: []Event{e, s.navEvent},
		})
		return
	}
	if s.busy {
		c.report(Violation{
			Invariant: InvIFS, At: t, Station: s.id,
			Detail:   fmt.Sprintf("contention TX of %s on a busy medium", e.Frame.Type),
			Evidence: []Event{e, s.busyEvent},
		})
		return
	}
	ifs, reason := c.timing.DIFS, "DIFS"
	evidence := []Event{e}
	if s.eifs {
		ifs, reason = c.timing.EIFS, "EIFS"
		evidence = append(evidence, s.eifsEvent)
	}
	if t-s.idleSince < ifs {
		c.report(Violation{
			Invariant: InvIFS, At: t, Station: s.id,
			Detail: fmt.Sprintf("contention TX of %s only %v after the medium went idle (need %s=%v)",
				e.Frame.Type, t-s.idleSince, reason, ifs),
			Evidence: evidence,
		})
	}
}

func (c *Checker) checkRespond(s *staState, e Event) {
	t := e.At
	want := t - c.timing.SIFS
	if want < c.begin {
		// The reception this response answers predates the stream (ring
		// truncation); nothing to check against.
		return
	}
	// A response answers the reception that scheduled it, which ended
	// exactly SIFS ago. Later overlapped arrivals (hidden terminals) may
	// have ended in between; they do not reset the response clock, so
	// match against every reception still inside the SIFS window.
	var answered []Event
	for _, rx := range s.rx {
		if rx.At == want {
			answered = append(answered, rx)
		}
	}
	if len(answered) == 0 {
		detail := fmt.Sprintf("%s response with no reception ending SIFS=%v earlier (at %v)",
			e.Frame.Type, c.timing.SIFS, want)
		evidence := []Event{e}
		if n := len(s.rx); n > 0 {
			last := s.rx[n-1]
			detail += fmt.Sprintf("; nearest reception ended %dns before the response", int64(t-last.At))
			evidence = append(evidence, last)
		}
		c.report(Violation{
			Invariant: InvSIFS, At: t, Station: s.id,
			Detail:   detail,
			Evidence: evidence,
		})
		return
	}
	// The response slot timing is right; responses answering a decoded
	// frame must also answer the right frame type.
	var need mac.FrameType
	switch e.Frame.Type {
	case mac.FrameCTS:
		need = mac.FrameRTS
	case mac.FrameData:
		need = mac.FrameCTS
	default:
		return // ACKs answer any reception outcome (fake ACKs answer corruption)
	}
	for _, rx := range answered {
		if rx.Kind == KindDecode && rx.Frame.Type == need && rx.Frame.Dst == s.id {
			return
		}
	}
	c.report(Violation{
		Invariant: InvSIFS, At: t, Station: s.id,
		Detail:   fmt.Sprintf("%s response without a decoded %s addressed to this station at %v", e.Frame.Type, need, want),
		Evidence: append([]Event{e}, answered...),
	})
}

func (c *Checker) checkFreeze(s *staState, e Event) {
	t := e.At
	if s.cdBusyAt != 0 && s.cdBusyAt < t {
		c.report(Violation{
			Invariant: InvBackoff, At: t, Station: s.id,
			Detail: fmt.Sprintf("countdown ran until %v through a medium-busy onset at %v",
				t, s.cdBusyAt),
			Evidence: []Event{e, s.cdEvent, s.cdBusyEv},
		})
		return
	}
	consumed := s.cdSlots - e.Slots
	elapsed := int((t - s.cdStart) / c.timing.Slot)
	if consumed < 0 || consumed > elapsed {
		c.report(Violation{
			Invariant: InvBackoff, At: t, Station: s.id,
			Detail: fmt.Sprintf("freeze consumed %d slots but only %d idle slots elapsed since %v",
				consumed, elapsed, s.cdStart),
			Evidence: []Event{e, s.cdEvent},
		})
	}
}

func (c *Checker) checkExpire(s *staState, e Event) {
	t := e.At
	if s.cdBusyAt != 0 && s.cdBusyAt < t {
		c.report(Violation{
			Invariant: InvBackoff, At: t, Station: s.id,
			Detail: fmt.Sprintf("countdown expired at %v despite a medium-busy onset at %v",
				t, s.cdBusyAt),
			Evidence: []Event{e, s.cdEvent, s.cdBusyEv},
		})
		return
	}
	if want := s.cdStart + sim.Time(s.cdSlots)*c.timing.Slot; t != want {
		c.report(Violation{
			Invariant: InvBackoff, At: t, Station: s.id,
			Detail: fmt.Sprintf("countdown of %d slots from %v must expire at %v, not %v",
				s.cdSlots, s.cdStart, want, t),
			Evidence: []Event{e, s.cdEvent},
		})
	}
}
