package trace

import (
	"fmt"
	"os"
	"path/filepath"
)

// ExportDir writes each recording's evidence into dir: a JSONL trace
// (<label>_run<i>_seed<seed>.trace.jsonl) and an ASCII timeline
// (.timeline.txt) per recording, in the collector's canonical order. It
// returns the written paths.
func ExportDir(dir, label string, recs []*Recording) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: export dir: %w", err)
	}
	var written []string
	for i, rec := range recs {
		meta := rec.Meta(label)
		events := rec.Recorder.Events()
		stem := fmt.Sprintf("%s_run%d_seed%d", label, i, rec.Seed)
		jsonl := filepath.Join(dir, stem+".trace.jsonl")
		f, err := os.Create(jsonl)
		if err != nil {
			return written, fmt.Errorf("trace: %w", err)
		}
		err = WriteJSONL(f, meta, events)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return written, fmt.Errorf("trace: writing %s: %w", jsonl, err)
		}
		written = append(written, jsonl)
		tl := filepath.Join(dir, stem+".timeline.txt")
		if err := os.WriteFile(tl, []byte(RenderTimeline(meta, events, 0, 0, 120)), 0o644); err != nil {
			return written, fmt.Errorf("trace: writing %s: %w", tl, err)
		}
		written = append(written, tl)
	}
	return written, nil
}
