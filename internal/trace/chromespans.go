package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is a generic named interval on a named track, the shape the
// campaign layer's progress spans reduce to. Times are microseconds on
// whatever epoch the caller picked (Chrome trace viewers only care
// about relative position).
type Span struct {
	Track   string // one timeline row per distinct track
	Name    string // slice label
	Cat     string // category, drives viewer colouring/filtering
	StartUs float64
	DurUs   float64
	Args    map[string]any // extra key/values shown on click
}

// WriteChromeSpans renders generic spans as Chrome trace-event JSON
// (Perfetto-loadable), one thread per track. Tracks are numbered in
// sorted-name order and spans emitted in (start, track, name) order, so
// the output is deterministic for a given input.
func WriteChromeSpans(w io.Writer, process string, spans []Span) error {
	const pid = 1
	tracks := map[string]int{}
	for _, s := range spans {
		if _, ok := tracks[s.Track]; !ok {
			tracks[s.Track] = 0
		}
	}
	names := make([]string, 0, len(tracks))
	for name := range tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		tracks[name] = i + 1
	}

	out := make([]chromeEvent, 0, len(spans)+len(names)+1)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": process},
	})
	for _, name := range names {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tracks[name],
			Args: map[string]any{"name": name},
		})
	}

	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.StartUs != b.StartUs {
			return a.StartUs < b.StartUs
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	for _, s := range ordered {
		if s.DurUs < 0 {
			return fmt.Errorf("trace: span %q on %q has negative duration", s.Name, s.Track)
		}
		out = append(out, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: s.StartUs, Dur: s.DurUs,
			Pid: pid, Tid: tracks[s.Track], Args: s.Args,
		})
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
