package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"greedy80211/internal/mac"
	"greedy80211/internal/sim"
)

// FormatVersion identifies the JSONL trace file layout.
const FormatVersion = "greedy80211-trace/v1"

// StationName pairs a station id with its scenario name.
type StationName struct {
	ID   mac.NodeID `json:"id"`
	Name string     `json:"name"`
}

// Meta is the header line of a JSONL trace file: provenance plus the
// timing needed to re-run the invariant checker offline.
type Meta struct {
	Version  string        `json:"v"`
	Label    string        `json:"label,omitempty"`
	Seed     int64         `json:"seed"`
	Timing   Timing        `json:"timing"`
	Stations []StationName `json:"stations,omitempty"`
	Events   uint64        `json:"events"`
	Dropped  uint64        `json:"dropped,omitempty"`
}

// Meta assembles the header for this recorder's retained events.
func (r *Recorder) Meta(label string, seed int64) Meta {
	m := Meta{
		Version: FormatVersion,
		Label:   label,
		Seed:    seed,
		Timing:  r.timing,
		Events:  r.total,
		Dropped: r.Dropped(),
	}
	for id, name := range r.names {
		m.Stations = append(m.Stations, StationName{ID: id, Name: name})
	}
	sort.Slice(m.Stations, func(i, j int) bool { return m.Stations[i].ID < m.Stations[j].ID })
	return m
}

// Name resolves a station id to its scenario name, falling back to "sta<id>".
func (m Meta) Name(id mac.NodeID) string {
	for _, s := range m.Stations {
		if s.ID == id {
			return s.Name
		}
	}
	return fmt.Sprintf("sta%d", id)
}

// eventJSON is the stable wire encoding of an Event: zero-valued fields
// are omitted, so round-tripping is lossless and lines stay compact.
type eventJSON struct {
	K     string     `json:"k"`
	At    sim.Time   `json:"at"`
	Sta   mac.NodeID `json:"sta"`
	Ft    int        `json:"ft,omitempty"`
	Src   mac.NodeID `json:"src,omitempty"`
	Dst   mac.NodeID `json:"dst,omitempty"`
	Seq   uint16     `json:"seq,omitempty"`
	Len   int        `json:"len,omitempty"`
	Rty   bool       `json:"retry,omitempty"`
	Dur   sim.Time   `json:"dur,omitempty"`
	Air   sim.Time   `json:"air,omitempty"`
	RSSI  float64    `json:"rssi,omitempty"`
	Until sim.Time   `json:"until,omitempty"`
	CW    int        `json:"cw,omitempty"`
	Slots int        `json:"slots,omitempty"`
	Retr  int        `json:"retries,omitempty"`
	QLen  int        `json:"qlen,omitempty"`
	EIFS  bool       `json:"eifs,omitempty"`
	Long  bool       `json:"long,omitempty"`
	OK    bool       `json:"ok,omitempty"`
}

func toWire(e Event) eventJSON {
	return eventJSON{
		K:     e.Kind.String(),
		At:    e.At,
		Sta:   e.Station,
		Ft:    int(e.Frame.Type),
		Src:   e.Frame.Src,
		Dst:   e.Frame.Dst,
		Seq:   e.Frame.Seq,
		Len:   e.Frame.Bytes,
		Rty:   e.Frame.Retry,
		Dur:   e.Frame.Duration,
		Air:   e.Frame.Airtime,
		RSSI:  e.RSSIDBm,
		Until: e.Until,
		CW:    e.CW,
		Slots: e.Slots,
		Retr:  e.Retries,
		QLen:  e.QueueLen,
		EIFS:  e.EIFS,
		Long:  e.Long,
		OK:    e.OK,
	}
}

func fromWire(w eventJSON) (Event, error) {
	k, ok := kindByName[w.K]
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown event kind %q", w.K)
	}
	return Event{
		Kind:    k,
		At:      w.At,
		Station: w.Sta,
		Frame: FrameInfo{
			Type:     mac.FrameType(w.Ft),
			Src:      w.Src,
			Dst:      w.Dst,
			Seq:      w.Seq,
			Bytes:    w.Len,
			Retry:    w.Rty,
			Duration: w.Dur,
			Airtime:  w.Air,
		},
		RSSIDBm:  w.RSSI,
		Until:    w.Until,
		CW:       w.CW,
		Slots:    w.Slots,
		Retries:  w.Retr,
		QueueLen: w.QLen,
		EIFS:     w.EIFS,
		Long:     w.Long,
		OK:       w.OK,
	}, nil
}

// WriteJSONL writes the header line followed by one event per line. The
// output is byte-deterministic for a given (meta, events) input.
func WriteJSONL(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	meta.Version = FormatVersion
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i, e := range events {
		if err := enc.Encode(toWire(e)); err != nil {
			return fmt.Errorf("trace: writing event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace file written by WriteJSONL.
func ReadJSONL(r io.Reader) (Meta, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var meta Meta
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if line == 1 {
			if err := json.Unmarshal(raw, &meta); err != nil {
				return Meta{}, nil, fmt.Errorf("trace: header: %w", err)
			}
			if meta.Version != FormatVersion {
				return Meta{}, nil, fmt.Errorf("trace: unsupported format %q (want %q)", meta.Version, FormatVersion)
			}
			continue
		}
		var w eventJSON
		if err := json.Unmarshal(raw, &w); err != nil {
			return Meta{}, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		e, err := fromWire(w)
		if err != nil {
			return Meta{}, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return Meta{}, nil, fmt.Errorf("trace: reading: %w", err)
	}
	if line == 0 {
		return Meta{}, nil, fmt.Errorf("trace: empty trace file")
	}
	return meta, events, nil
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (Perfetto-viewable). Maps marshal with sorted keys, so the output is
// deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func microseconds(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace renders the events as Chrome trace-event JSON: one
// track (thread) per station, "X" slices for transmissions, NAV-blocked
// intervals, and backoff countdowns, instants for the rest. Load the
// output in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, meta Meta, events []Event) error {
	const pid = 1
	var out []chromeEvent

	// Track metadata: name every station's thread, ordered by id.
	stations := map[mac.NodeID]bool{}
	for _, s := range meta.Stations {
		stations[s.ID] = true
	}
	for _, e := range events {
		stations[e.Station] = true
	}
	ids := make([]mac.NodeID, 0, len(stations))
	for id := range stations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": "greedy80211 " + meta.Label},
	})
	for _, id := range ids {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: int(id),
			Args: map[string]any{"name": meta.Name(id)},
		})
	}

	var last sim.Time
	for _, e := range events {
		if e.At > last {
			last = e.At
		}
		if e.Kind == KindTransmit && e.At+e.Frame.Airtime > last {
			last = e.At + e.Frame.Airtime
		}
	}

	// Open intervals per station, closed by their end events (or at the
	// trace horizon).
	type open struct {
		at   sim.Time
		name string
		args map[string]any
	}
	navOpen := map[mac.NodeID]*open{}
	boOpen := map[mac.NodeID]*open{}
	slice := func(tid mac.NodeID, cat string, o *open, end sim.Time) {
		if end < o.at {
			end = o.at
		}
		out = append(out, chromeEvent{
			Name: o.name, Cat: cat, Ph: "X",
			Ts: microseconds(o.at), Dur: microseconds(end - o.at),
			Pid: pid, Tid: int(tid), Args: o.args,
		})
	}
	instant := func(e Event, cat, name string, args map[string]any) {
		out = append(out, chromeEvent{
			Name: name, Cat: cat, Ph: "i", S: "t",
			Ts: microseconds(e.At), Pid: pid, Tid: int(e.Station), Args: args,
		})
	}

	for _, e := range events {
		switch e.Kind {
		case KindTransmit:
			name := fmt.Sprintf("%s %d→%d", e.Frame.Type, e.Frame.Src, e.Frame.Dst)
			if e.Frame.Retry {
				name += " (retry)"
			}
			out = append(out, chromeEvent{
				Name: name, Cat: "tx", Ph: "X",
				Ts: microseconds(e.At), Dur: microseconds(e.Frame.Airtime),
				Pid: pid, Tid: int(e.Station),
				Args: map[string]any{
					"seq": e.Frame.Seq, "bytes": e.Frame.Bytes,
					"nav_us": microseconds(e.Frame.Duration),
				},
			})
		case KindDecode:
			instant(e, "rx", fmt.Sprintf("RX %s %d→%d", e.Frame.Type, e.Frame.Src, e.Frame.Dst),
				map[string]any{"seq": e.Frame.Seq, "rssi_dbm": e.RSSIDBm, "nav_us": microseconds(e.Frame.Duration)})
		case KindCorrupt:
			instant(e, "rx", fmt.Sprintf("ERR %s %d→%d", e.Frame.Type, e.Frame.Src, e.Frame.Dst),
				map[string]any{"seq": e.Frame.Seq, "rssi_dbm": e.RSSIDBm})
		case KindNAVBlockedStart:
			navOpen[e.Station] = &open{at: e.At, name: "NAV-blocked",
				args: map[string]any{"until_us": microseconds(e.Until)}}
		case KindNAVBlockedEnd:
			if o := navOpen[e.Station]; o != nil {
				slice(e.Station, "nav", o, e.At)
				delete(navOpen, e.Station)
			}
		case KindBackoffResume:
			boOpen[e.Station] = &open{at: e.At, name: fmt.Sprintf("backoff (%d slots)", e.Slots),
				args: map[string]any{"slots": e.Slots}}
		case KindBackoffFreeze, KindBackoffExpire:
			if o := boOpen[e.Station]; o != nil {
				if e.Kind == KindBackoffFreeze {
					o.args["remaining"] = e.Slots
				}
				slice(e.Station, "backoff", o, e.At)
				delete(boOpen, e.Station)
			}
		case KindNAVUpdate:
			instant(e, "mac", "NAV-SET", map[string]any{"until_us": microseconds(e.Until)})
		case KindBackoffDraw:
			instant(e, "mac", "BO-DRAW", map[string]any{"cw": e.CW, "slots": e.Slots})
		case KindCWDouble, KindCWReset:
			instant(e, "mac", e.Kind.String(), map[string]any{"cw": e.CW})
		case KindRetry:
			counter := "short"
			if e.Long {
				counter = "long"
			}
			instant(e, "mac", "RETRY", map[string]any{"counter": counter, "retries": e.Retries})
		case KindQueueDrop:
			instant(e, "mac", "Q-DROP", map[string]any{"qlen": e.QueueLen})
		case KindMSDUDone:
			instant(e, "mac", "MSDU-DONE", map[string]any{"ok": e.OK, "seq": e.Frame.Seq})
		}
	}
	// Close intervals still open at the trace horizon, in station order
	// for determinism.
	for _, id := range ids {
		if o := navOpen[id]; o != nil {
			end := sim.Time(0)
			if u, ok := o.args["until_us"].(float64); ok {
				end = sim.Time(u * 1e3)
			}
			if end > last || end == 0 {
				end = last
			}
			slice(id, "nav", o, end)
		}
		if o := boOpen[id]; o != nil {
			slice(id, "backoff", o, last)
		}
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
