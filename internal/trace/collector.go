package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Recording is one world's flight-recorder output plus its checker state.
type Recording struct {
	Seed     int64
	Recorder *Recorder
	Checker  *Checker // nil unless the collector has checks enabled
}

// Meta builds the export header for this recording.
func (r *Recording) Meta(label string) Meta {
	return r.Recorder.Meta(label, r.Seed)
}

// Collector hands out one Recorder per simulated world and gathers the
// results in a canonical order, so exports are byte-identical no matter
// how many worlds ran concurrently. Start is safe to call from parallel
// workers; each returned Recorder must stay within its own world.
type Collector struct {
	mu       sync.Mutex
	capacity int
	checks   bool
	recs     []*Recording
}

// NewCollector builds a collector whose recorders keep the last capacity
// events each (<= 0 selects the Recorder default).
func NewCollector(capacity int) *Collector {
	return &Collector{capacity: capacity}
}

// EnableChecks attaches an invariant checker to every subsequently
// started recording; the checker consumes the full event stream via the
// recorder's sink, so ring evictions don't blind it.
func (c *Collector) EnableChecks() { c.checks = true }

// Start registers a new recording for the given seed and returns its
// recorder, ready to attach to a world.
func (c *Collector) Start(seed int64) *Recorder {
	rec := NewRecorder(c.capacity)
	r := &Recording{Seed: seed, Recorder: rec}
	if c.checks {
		r.Checker = NewChecker(DefaultTiming())
		rec.SetSink(r.Checker.Feed)
		rec.onTiming = r.Checker.SetTiming
	}
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
	return rec
}

// Recordings returns the recordings in canonical order: by seed, ties
// broken by comparing the event streams themselves. The order therefore
// depends only on what was recorded, not on which worker finished first.
func (c *Collector) Recordings() []*Recording {
	c.mu.Lock()
	out := append([]*Recording(nil), c.recs...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Seed != out[j].Seed {
			return out[i].Seed < out[j].Seed
		}
		return compareStreams(out[i].Recorder, out[j].Recorder) < 0
	})
	return out
}

// Violations aggregates checker findings across all recordings in
// canonical order, labelling each with its seed.
func (c *Collector) Violations() []string {
	var out []string
	for _, r := range c.Recordings() {
		if r.Checker == nil {
			continue
		}
		for _, v := range r.Checker.Violations() {
			out = append(out, fmt.Sprintf("seed=%d %s", r.Seed, v))
		}
	}
	return out
}

// ViolationCount totals checker findings across all recordings.
func (c *Collector) ViolationCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.recs {
		if r.Checker != nil {
			n += r.Checker.Count()
		}
	}
	return n
}

// compareStreams orders two recorders by their retained event streams.
func compareStreams(a, b *Recorder) int {
	n := a.retained()
	if m := b.retained(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		if c := compareEvents(a.eventAt(i), b.eventAt(i)); c != 0 {
			return c
		}
	}
	switch {
	case a.retained() < b.retained():
		return -1
	case a.retained() > b.retained():
		return 1
	}
	return 0
}

func compareEvents(a, b Event) int {
	if a.At != b.At {
		if a.At < b.At {
			return -1
		}
		return 1
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	if a.Station != b.Station {
		if a.Station < b.Station {
			return -1
		}
		return 1
	}
	// Same (time, kind, station): fall back to the rendered line, which
	// covers every remaining field.
	return strings.Compare(a.String(), b.String())
}
