// Package trace is the simulator's flight recorder: it captures
// channel-level activity (from a medium tap) and MAC-internal
// state-machine events (from a DCF probe) into one timestamped,
// deterministic stream. A bounded ring keeps the most recent events for
// post-mortem dumps, exporters render the stream as JSONL, Chrome
// trace-event JSON (Perfetto-viewable), or an ASCII per-station timeline,
// and a trace-driven checker verifies the 802.11 access invariants. It is
// how a user inspects *why* a greedy receiver wins — the log shows the
// silenced stations, the forged ACKs, and the airtime the attacker's flow
// occupies.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"greedy80211/internal/mac"
	"greedy80211/internal/medium"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// Kind labels one recorded event. The first three kinds are channel-level
// (from the medium tap); the rest mirror mac.ProbeKind (MAC-internal).
type Kind int

const (
	// KindTransmit is a frame entering the air.
	KindTransmit Kind = iota + 1
	// KindDecode is a successful reception.
	KindDecode
	// KindCorrupt is a corrupted reception.
	KindCorrupt
	// KindNAVUpdate through KindMSDUDone are MAC-internal events; see the
	// mac.ProbeKind documentation for their semantics.
	KindNAVUpdate
	KindNAVExpire
	KindNAVBlockedStart
	KindNAVBlockedEnd
	KindBusyStart
	KindBusyEnd
	KindBackoffDraw
	KindBackoffResume
	KindBackoffFreeze
	KindBackoffExpire
	KindCWDouble
	KindCWReset
	KindIFSDefer
	KindRetry
	KindEnqueue
	KindQueueDrop
	KindTxContend
	KindTxRespond
	KindMSDUDone
)

// kindNames is the stable wire encoding; JSONL files carry these strings.
var kindNames = map[Kind]string{
	KindTransmit:        "TX",
	KindDecode:          "RX",
	KindCorrupt:         "ERR",
	KindNAVUpdate:       "NAV-SET",
	KindNAVExpire:       "NAV-EXP",
	KindNAVBlockedStart: "NAVBLK-BEG",
	KindNAVBlockedEnd:   "NAVBLK-END",
	KindBusyStart:       "BUSY-BEG",
	KindBusyEnd:         "BUSY-END",
	KindBackoffDraw:     "BO-DRAW",
	KindBackoffResume:   "BO-RESUME",
	KindBackoffFreeze:   "BO-FREEZE",
	KindBackoffExpire:   "BO-EXPIRE",
	KindCWDouble:        "CW-DOUBLE",
	KindCWReset:         "CW-RESET",
	KindIFSDefer:        "IFS-DEFER",
	KindRetry:           "RETRY",
	KindEnqueue:         "ENQ",
	KindQueueDrop:       "Q-DROP",
	KindTxContend:       "TX-CONTEND",
	KindTxRespond:       "TX-RESPOND",
	KindMSDUDone:        "MSDU-DONE",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// probeKindToKind maps the mac-package enumeration onto the trace one.
var probeKindToKind = map[mac.ProbeKind]Kind{
	mac.ProbeNAVUpdate:       KindNAVUpdate,
	mac.ProbeNAVExpire:       KindNAVExpire,
	mac.ProbeNAVBlockedStart: KindNAVBlockedStart,
	mac.ProbeNAVBlockedEnd:   KindNAVBlockedEnd,
	mac.ProbeBusyStart:       KindBusyStart,
	mac.ProbeBusyEnd:         KindBusyEnd,
	mac.ProbeBackoffDraw:     KindBackoffDraw,
	mac.ProbeBackoffResume:   KindBackoffResume,
	mac.ProbeBackoffFreeze:   KindBackoffFreeze,
	mac.ProbeBackoffExpire:   KindBackoffExpire,
	mac.ProbeCWDouble:        KindCWDouble,
	mac.ProbeCWReset:         KindCWReset,
	mac.ProbeIFSDefer:        KindIFSDefer,
	mac.ProbeRetry:           KindRetry,
	mac.ProbeEnqueue:         KindEnqueue,
	mac.ProbeQueueDrop:       KindQueueDrop,
	mac.ProbeTxContend:       KindTxContend,
	mac.ProbeTxRespond:       KindTxRespond,
	mac.ProbeMSDUDone:        KindMSDUDone,
}

// Event is one recorded event: channel-level (Frame and RSSIDBm populated)
// or MAC-internal (the probe detail fields populated).
type Event struct {
	Kind    Kind
	At      sim.Time
	Station mac.NodeID // transmitter (TX), receiver (RX/ERR), or probe owner
	Frame   FrameInfo
	RSSIDBm float64 // receptions only

	// MAC-internal detail, mirroring mac.ProbeEvent.
	Until    sim.Time
	CW       int
	Slots    int
	Retries  int
	QueueLen int
	EIFS     bool
	Long     bool
	OK       bool
}

// FrameInfo is the frame summary captured by the recorder (frames are
// mutable and reused upstream, so the recorder copies what it needs).
type FrameInfo struct {
	Type     mac.FrameType
	Src, Dst mac.NodeID
	Seq      uint16
	Bytes    int
	Retry    bool
	Duration sim.Time // the NAV value the frame carries
	Airtime  sim.Time // TX events only
}

// String renders an event as one trace line. Retransmissions carry a
// "retry" marker and every frame's NAV duration is shown, so inflated-NAV
// frames stand out in rendered logs.
func (e Event) String() string {
	switch e.Kind {
	case KindTransmit:
		return fmt.Sprintf("%12v %-3s sta=%d %s%s %d->%d seq=%d len=%dB dur=%v air=%v",
			e.At, e.Kind, e.Station, e.Frame.Type, retryMark(e.Frame.Retry),
			e.Frame.Src, e.Frame.Dst, e.Frame.Seq, e.Frame.Bytes,
			e.Frame.Duration, e.Frame.Airtime)
	case KindDecode, KindCorrupt:
		return fmt.Sprintf("%12v %-3s sta=%d %s%s %d->%d seq=%d dur=%v rssi=%.1fdBm",
			e.At, e.Kind, e.Station, e.Frame.Type, retryMark(e.Frame.Retry),
			e.Frame.Src, e.Frame.Dst, e.Frame.Seq, e.Frame.Duration, e.RSSIDBm)
	case KindNAVUpdate, KindNAVExpire, KindNAVBlockedStart:
		return fmt.Sprintf("%12v %-10s sta=%d until=%v", e.At, e.Kind, e.Station, e.Until)
	case KindIFSDefer:
		ifs := "DIFS"
		if e.EIFS {
			ifs = "EIFS"
		}
		return fmt.Sprintf("%12v %-10s sta=%d until=%v reason=%s", e.At, e.Kind, e.Station, e.Until, ifs)
	case KindBackoffDraw:
		return fmt.Sprintf("%12v %-10s sta=%d cw=%d slots=%d", e.At, e.Kind, e.Station, e.CW, e.Slots)
	case KindBackoffResume, KindBackoffFreeze:
		return fmt.Sprintf("%12v %-10s sta=%d slots=%d", e.At, e.Kind, e.Station, e.Slots)
	case KindCWDouble, KindCWReset:
		return fmt.Sprintf("%12v %-10s sta=%d cw=%d", e.At, e.Kind, e.Station, e.CW)
	case KindRetry:
		counter := "short"
		if e.Long {
			counter = "long"
		}
		return fmt.Sprintf("%12v %-10s sta=%d %s=%d dst=%d seq=%d",
			e.At, e.Kind, e.Station, counter, e.Retries, e.Frame.Dst, e.Frame.Seq)
	case KindEnqueue, KindQueueDrop:
		return fmt.Sprintf("%12v %-10s sta=%d qlen=%d dst=%d", e.At, e.Kind, e.Station, e.QueueLen, e.Frame.Dst)
	case KindTxContend, KindTxRespond:
		return fmt.Sprintf("%12v %-10s sta=%d %s dst=%d seq=%d",
			e.At, e.Kind, e.Station, e.Frame.Type, e.Frame.Dst, e.Frame.Seq)
	case KindMSDUDone:
		outcome := "dropped"
		if e.OK {
			outcome = "ok"
		}
		return fmt.Sprintf("%12v %-10s sta=%d %s dst=%d seq=%d",
			e.At, e.Kind, e.Station, outcome, e.Frame.Dst, e.Frame.Seq)
	default:
		return fmt.Sprintf("%12v %-10s sta=%d", e.At, e.Kind, e.Station)
	}
}

func retryMark(retry bool) string {
	if retry {
		return "(retry)"
	}
	return ""
}

// Recorder implements medium.Tap and mac.Probe: it keeps the most recent
// events in a bounded ring (flight-recorder semantics) and accumulates
// channel statistics for the whole run. It has no dependency on a
// scheduler, so it can be built before the world it taps. Not safe for
// concurrent use; attach one recorder per world.
type Recorder struct {
	cap  int
	ring []Event // grows lazily up to cap, then wraps
	next int     // oldest slot once len(ring) == cap

	total uint64
	sink  func(Event) // optional streaming consumer, sees every event

	names  map[mac.NodeID]string
	timing Timing
	// onTiming, when set (by a Collector), hears about the world's band
	// timing as soon as the recorder is attached.
	onTiming func(Timing)

	stats Stats
}

var (
	_ medium.Tap = (*Recorder)(nil)
	_ mac.Probe  = (*Recorder)(nil)
)

// Stats aggregates whole-run channel accounting.
type Stats struct {
	// Transmissions and airtime per frame type.
	TxCount   map[mac.FrameType]int64
	TxAirtime map[mac.FrameType]sim.Time
	// AirtimePerStation attributes transmit airtime to each transmitter.
	AirtimePerStation map[mac.NodeID]sim.Time
	// Decoded and Corrupted count per-receiver outcomes.
	Decoded   int64
	Corrupted int64
	// MACEvents counts MAC-internal probe events.
	MACEvents int64
	// BusyAirtime is total transmit airtime (overlaps double-count —
	// with a single collision domain it approximates channel occupancy).
	BusyAirtime sim.Time
}

// NewRecorder builds a recorder keeping the last capacity events
// (default 4096). The ring grows lazily, so a large capacity costs memory
// only as events actually accumulate.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{
		cap: capacity,
		stats: Stats{
			TxCount:           make(map[mac.FrameType]int64),
			TxAirtime:         make(map[mac.FrameType]sim.Time),
			AirtimePerStation: make(map[mac.NodeID]sim.Time),
		},
	}
}

// SetSink installs a streaming consumer that sees every event in order,
// regardless of ring evictions — the invariant checker consumes the full
// stream this way while the ring stays bounded.
func (r *Recorder) SetSink(fn func(Event)) { r.sink = fn }

// SetStationName registers a human-readable name used by the exporters.
func (r *Recorder) SetStationName(id mac.NodeID, name string) {
	if r.names == nil {
		r.names = make(map[mac.NodeID]string)
	}
	r.names[id] = name
}

// SetParams records the band timing the traced world runs under;
// scenario.World.AttachTrace calls it through a duck-typed hook.
func (r *Recorder) SetParams(p phys.Params) {
	r.timing = TimingFromParams(p)
	if r.onTiming != nil {
		r.onTiming(r.timing)
	}
}

// Timing reports the band timing captured at attach time (zero if the
// recorder was fed by hand).
func (r *Recorder) Timing() Timing { return r.timing }

// Total reports how many events were recorded over the run, including
// those the ring has since evicted.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped reports how many events the ring evicted.
func (r *Recorder) Dropped() uint64 {
	retained := uint64(len(r.ring))
	if r.total <= retained {
		return 0
	}
	return r.total - retained
}

func (r *Recorder) record(e Event) {
	r.total++
	if r.sink != nil {
		r.sink(e)
	}
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, e)
		return
	}
	r.ring[r.next] = e
	r.next++
	if r.next == r.cap {
		r.next = 0
	}
}

func frameInfo(f *mac.Frame) FrameInfo {
	return FrameInfo{
		Type:     f.Type,
		Src:      f.Src,
		Dst:      f.Dst,
		Seq:      f.Seq,
		Bytes:    f.MACBytes,
		Retry:    f.Retry,
		Duration: f.Duration,
	}
}

// OnTransmit implements medium.Tap.
func (r *Recorder) OnTransmit(src mac.NodeID, f *mac.Frame, start, airtime sim.Time) {
	fi := frameInfo(f)
	fi.Airtime = airtime
	r.record(Event{Kind: KindTransmit, At: start, Station: src, Frame: fi})
	r.stats.TxCount[f.Type]++
	r.stats.TxAirtime[f.Type] += airtime
	r.stats.AirtimePerStation[src] += airtime
	r.stats.BusyAirtime += airtime
}

// OnReceive implements medium.Tap.
func (r *Recorder) OnReceive(dst mac.NodeID, f *mac.Frame, info mac.RxInfo, at sim.Time) {
	kind := KindDecode
	if info.Decoded {
		r.stats.Decoded++
	} else {
		kind = KindCorrupt
		r.stats.Corrupted++
	}
	r.record(Event{
		Kind: kind, At: at, Station: dst,
		Frame: frameInfo(f), RSSIDBm: info.RSSIDBm,
	})
}

// OnMACEvent implements mac.Probe: the MAC-internal stream lands in the
// same ring, interleaved with channel events in scheduler order.
func (r *Recorder) OnMACEvent(pe mac.ProbeEvent) {
	r.stats.MACEvents++
	r.record(Event{
		Kind:     probeKindToKind[pe.Kind],
		At:       pe.At,
		Station:  pe.Station,
		Until:    pe.Until,
		CW:       pe.CW,
		Slots:    pe.Slots,
		Retries:  pe.Retries,
		QueueLen: pe.QueueLen,
		EIFS:     pe.EIFS,
		Long:     pe.Long,
		OK:       pe.OK,
		Frame:    FrameInfo{Type: pe.Frame, Dst: pe.Dst, Seq: pe.Seq},
	})
}

// Stats reports the accumulated accounting.
func (r *Recorder) Stats() Stats { return r.stats }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if len(r.ring) < r.cap {
		return append([]Event(nil), r.ring...)
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// eventAt indexes the retained events oldest-first without copying.
func (r *Recorder) eventAt(i int) Event {
	if len(r.ring) < r.cap {
		return r.ring[i]
	}
	return r.ring[(r.next+i)%r.cap]
}

// retained reports how many events the ring currently holds.
func (r *Recorder) retained() int { return len(r.ring) }

// Utilization reports transmit airtime as a fraction of elapsed time
// (overlapping transmissions double-count, so values may exceed 1 under
// heavy collisions).
func (r *Recorder) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.stats.BusyAirtime) / float64(elapsed)
}

// Summary renders the accounting as text.
func (r *Recorder) Summary(elapsed sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "channel utilization: %.1f%% over %v\n",
		100*r.Utilization(elapsed), elapsed)
	for _, ft := range []mac.FrameType{mac.FrameRTS, mac.FrameCTS, mac.FrameData, mac.FrameACK} {
		if n := r.stats.TxCount[ft]; n > 0 {
			fmt.Fprintf(&b, "  %-4s %7d frames  %v airtime\n", ft, n, r.stats.TxAirtime[ft])
		}
	}
	fmt.Fprintf(&b, "  receptions: %d decoded, %d corrupted\n",
		r.stats.Decoded, r.stats.Corrupted)
	stations := make([]mac.NodeID, 0, len(r.stats.AirtimePerStation))
	for sta := range r.stats.AirtimePerStation {
		stations = append(stations, sta)
	}
	sort.Slice(stations, func(i, j int) bool { return stations[i] < stations[j] })
	for _, sta := range stations {
		air := r.stats.AirtimePerStation[sta]
		fmt.Fprintf(&b, "  station %d: %v airtime (%.1f%%)\n",
			sta, air, 100*float64(air)/float64(elapsed))
	}
	return b.String()
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
