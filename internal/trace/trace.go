// Package trace is the simulator's flight recorder: it captures
// channel-level activity (from a medium tap) and MAC-internal
// state-machine events (from a DCF probe) into one timestamped,
// deterministic stream. A bounded ring keeps the most recent events for
// post-mortem dumps, exporters render the stream as JSONL, Chrome
// trace-event JSON (Perfetto-viewable), or an ASCII per-station timeline,
// and a trace-driven checker verifies the 802.11 access invariants. It is
// how a user inspects *why* a greedy receiver wins — the log shows the
// silenced stations, the forged ACKs, and the airtime the attacker's flow
// occupies.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"greedy80211/internal/mac"
	"greedy80211/internal/medium"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// Kind labels one recorded event. The first three kinds are channel-level
// (from the medium tap); the rest mirror mac.ProbeKind (MAC-internal).
type Kind int

const (
	// KindTransmit is a frame entering the air.
	KindTransmit Kind = iota + 1
	// KindDecode is a successful reception.
	KindDecode
	// KindCorrupt is a corrupted reception.
	KindCorrupt
	// KindNAVUpdate through KindMSDUDone are MAC-internal events; see the
	// mac.ProbeKind documentation for their semantics.
	KindNAVUpdate
	KindNAVExpire
	KindNAVBlockedStart
	KindNAVBlockedEnd
	KindBusyStart
	KindBusyEnd
	KindBackoffDraw
	KindBackoffResume
	KindBackoffFreeze
	KindBackoffExpire
	KindCWDouble
	KindCWReset
	KindIFSDefer
	KindRetry
	KindEnqueue
	KindQueueDrop
	KindTxContend
	KindTxRespond
	KindMSDUDone
)

// kindNames is the stable wire encoding; JSONL files carry these strings.
var kindNames = map[Kind]string{
	KindTransmit:        "TX",
	KindDecode:          "RX",
	KindCorrupt:         "ERR",
	KindNAVUpdate:       "NAV-SET",
	KindNAVExpire:       "NAV-EXP",
	KindNAVBlockedStart: "NAVBLK-BEG",
	KindNAVBlockedEnd:   "NAVBLK-END",
	KindBusyStart:       "BUSY-BEG",
	KindBusyEnd:         "BUSY-END",
	KindBackoffDraw:     "BO-DRAW",
	KindBackoffResume:   "BO-RESUME",
	KindBackoffFreeze:   "BO-FREEZE",
	KindBackoffExpire:   "BO-EXPIRE",
	KindCWDouble:        "CW-DOUBLE",
	KindCWReset:         "CW-RESET",
	KindIFSDefer:        "IFS-DEFER",
	KindRetry:           "RETRY",
	KindEnqueue:         "ENQ",
	KindQueueDrop:       "Q-DROP",
	KindTxContend:       "TX-CONTEND",
	KindTxRespond:       "TX-RESPOND",
	KindMSDUDone:        "MSDU-DONE",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// probeKindToKind maps the mac-package enumeration onto the trace one.
// The hot path reads the derived dense table probeKindLUT; the map stays
// as the readable source of truth.
var probeKindToKind = map[mac.ProbeKind]Kind{
	mac.ProbeNAVUpdate:       KindNAVUpdate,
	mac.ProbeNAVExpire:       KindNAVExpire,
	mac.ProbeNAVBlockedStart: KindNAVBlockedStart,
	mac.ProbeNAVBlockedEnd:   KindNAVBlockedEnd,
	mac.ProbeBusyStart:       KindBusyStart,
	mac.ProbeBusyEnd:         KindBusyEnd,
	mac.ProbeBackoffDraw:     KindBackoffDraw,
	mac.ProbeBackoffResume:   KindBackoffResume,
	mac.ProbeBackoffFreeze:   KindBackoffFreeze,
	mac.ProbeBackoffExpire:   KindBackoffExpire,
	mac.ProbeCWDouble:        KindCWDouble,
	mac.ProbeCWReset:         KindCWReset,
	mac.ProbeIFSDefer:        KindIFSDefer,
	mac.ProbeRetry:           KindRetry,
	mac.ProbeEnqueue:         KindEnqueue,
	mac.ProbeQueueDrop:       KindQueueDrop,
	mac.ProbeTxContend:       KindTxContend,
	mac.ProbeTxRespond:       KindTxRespond,
	mac.ProbeMSDUDone:        KindMSDUDone,
}

// probeKindLUT is probeKindToKind as a dense array: a map lookup per MAC
// probe event was measurable in traced-run profiles.
var probeKindLUT = func() [32]Kind {
	var lut [32]Kind
	for pk, k := range probeKindToKind {
		lut[pk] = k
	}
	return lut
}()

// Event is one recorded event: channel-level (Frame and RSSIDBm populated)
// or MAC-internal (the probe detail fields populated).
type Event struct {
	Kind    Kind
	At      sim.Time
	Station mac.NodeID // transmitter (TX), receiver (RX/ERR), or probe owner
	Frame   FrameInfo
	RSSIDBm float64 // receptions only

	// MAC-internal detail, mirroring mac.ProbeEvent.
	Until    sim.Time
	CW       int
	Slots    int
	Retries  int
	QueueLen int
	EIFS     bool
	Long     bool
	OK       bool
}

// FrameInfo is the frame summary captured by the recorder (frames are
// mutable and reused upstream, so the recorder copies what it needs).
type FrameInfo struct {
	Type     mac.FrameType
	Src, Dst mac.NodeID
	Seq      uint16
	Bytes    int
	Retry    bool
	Duration sim.Time // the NAV value the frame carries
	Airtime  sim.Time // TX events only
}

// String renders an event as one trace line. Retransmissions carry a
// "retry" marker and every frame's NAV duration is shown, so inflated-NAV
// frames stand out in rendered logs.
func (e Event) String() string {
	switch e.Kind {
	case KindTransmit:
		return fmt.Sprintf("%12v %-3s sta=%d %s%s %d->%d seq=%d len=%dB dur=%v air=%v",
			e.At, e.Kind, e.Station, e.Frame.Type, retryMark(e.Frame.Retry),
			e.Frame.Src, e.Frame.Dst, e.Frame.Seq, e.Frame.Bytes,
			e.Frame.Duration, e.Frame.Airtime)
	case KindDecode, KindCorrupt:
		return fmt.Sprintf("%12v %-3s sta=%d %s%s %d->%d seq=%d dur=%v rssi=%.1fdBm",
			e.At, e.Kind, e.Station, e.Frame.Type, retryMark(e.Frame.Retry),
			e.Frame.Src, e.Frame.Dst, e.Frame.Seq, e.Frame.Duration, e.RSSIDBm)
	case KindNAVUpdate, KindNAVExpire, KindNAVBlockedStart:
		return fmt.Sprintf("%12v %-10s sta=%d until=%v", e.At, e.Kind, e.Station, e.Until)
	case KindIFSDefer:
		ifs := "DIFS"
		if e.EIFS {
			ifs = "EIFS"
		}
		return fmt.Sprintf("%12v %-10s sta=%d until=%v reason=%s", e.At, e.Kind, e.Station, e.Until, ifs)
	case KindBackoffDraw:
		return fmt.Sprintf("%12v %-10s sta=%d cw=%d slots=%d", e.At, e.Kind, e.Station, e.CW, e.Slots)
	case KindBackoffResume, KindBackoffFreeze:
		return fmt.Sprintf("%12v %-10s sta=%d slots=%d", e.At, e.Kind, e.Station, e.Slots)
	case KindCWDouble, KindCWReset:
		return fmt.Sprintf("%12v %-10s sta=%d cw=%d", e.At, e.Kind, e.Station, e.CW)
	case KindRetry:
		counter := "short"
		if e.Long {
			counter = "long"
		}
		return fmt.Sprintf("%12v %-10s sta=%d %s=%d dst=%d seq=%d",
			e.At, e.Kind, e.Station, counter, e.Retries, e.Frame.Dst, e.Frame.Seq)
	case KindEnqueue, KindQueueDrop:
		return fmt.Sprintf("%12v %-10s sta=%d qlen=%d dst=%d", e.At, e.Kind, e.Station, e.QueueLen, e.Frame.Dst)
	case KindTxContend, KindTxRespond:
		return fmt.Sprintf("%12v %-10s sta=%d %s dst=%d seq=%d",
			e.At, e.Kind, e.Station, e.Frame.Type, e.Frame.Dst, e.Frame.Seq)
	case KindMSDUDone:
		outcome := "dropped"
		if e.OK {
			outcome = "ok"
		}
		return fmt.Sprintf("%12v %-10s sta=%d %s dst=%d seq=%d",
			e.At, e.Kind, e.Station, outcome, e.Frame.Dst, e.Frame.Seq)
	default:
		return fmt.Sprintf("%12v %-10s sta=%d", e.At, e.Kind, e.Station)
	}
}

func retryMark(retry bool) string {
	if retry {
		return "(retry)"
	}
	return ""
}

// Recorder implements medium.Tap and mac.Probe: it keeps the most recent
// events in bounded per-station rings (flight-recorder semantics) and
// accumulates channel statistics for the whole run. It has no dependency
// on a scheduler, so it can be built before the world it taps. Not safe
// for concurrent use; attach one recorder per world.
//
// Sharding is an internal layout choice only: every event carries a
// global monotonic sequence stamp, and readers see the canonical merge —
// the newest `cap` events across all stations in record order, exactly
// what a single shared ring of the same capacity would have retained.
// (An event within the global newest-cap window has fewer than cap
// events after it overall, hence fewer than cap after it in its own
// shard, so a per-shard capacity of cap is guaranteed to still hold it.)
// Keeping each station's stream in its own ring makes the hot record
// path a plain append into a small per-station buffer and pushes all
// ordering work to export time.
type Recorder struct {
	cap    int
	shards []traceShard // indexed by station id (negatives fold into 0)

	// merged caches the canonical view, valid while mergedAt == total.
	// (A generation stamp instead of nilling the cache per record: the
	// nil store was a GC write barrier on the hottest path.)
	merged   []Event
	mergedAt uint64

	total uint64      // count of events ever recorded; doubles as seq stamp
	sink  func(Event) // optional streaming consumer, sees every event

	names  map[mac.NodeID]string
	timing Timing
	// onTiming, when set (by a Collector), hears about the world's band
	// timing as soon as the recorder is attached.
	onTiming func(Timing)

	acc statsAccum
}

// traceShard is one station's bounded event ring.
type traceShard struct {
	ring []shardEvent // grows lazily up to the recorder cap, then wraps
	next int          // oldest slot once len(ring) == cap
}

// shardEvent stamps a recorded event with its global sequence number.
type shardEvent struct {
	seq uint64 // 1-based record order across all shards
	ev  Event
}

var (
	_ medium.Tap = (*Recorder)(nil)
	_ mac.Probe  = (*Recorder)(nil)
)

// Stats aggregates whole-run channel accounting. The maps are
// materialized on each Stats call from dense internal counters (maps in
// the per-transmit path cost a hash per frame); treat a returned Stats
// as a snapshot.
type Stats struct {
	// Transmissions and airtime per frame type.
	TxCount   map[mac.FrameType]int64
	TxAirtime map[mac.FrameType]sim.Time
	// AirtimePerStation attributes transmit airtime to each transmitter.
	AirtimePerStation map[mac.NodeID]sim.Time
	// Decoded and Corrupted count per-receiver outcomes.
	Decoded   int64
	Corrupted int64
	// MACEvents counts MAC-internal probe events.
	MACEvents int64
	// BusyAirtime is total transmit airtime (overlaps double-count —
	// with a single collision domain it approximates channel occupancy).
	BusyAirtime sim.Time
}

// frameTypeSlots sizes the dense per-type counters: FrameType values are
// 1..4, slot 0 is unused. Out-of-range types (hand-built test frames)
// fall back to overflow maps.
const frameTypeSlots = 5

// statsAccum is the dense accumulation behind Stats: arrays indexed by
// frame type and station id instead of maps, so the per-transmit cost is
// two array adds rather than three map operations.
type statsAccum struct {
	txCount    [frameTypeSlots]int64
	txAirtime  [frameTypeSlots]sim.Time
	staAirtime []sim.Time // indexed by transmitter id, grown on demand

	// Overflow for out-of-band keys (never touched by simulator traffic).
	txCountOther   map[mac.FrameType]int64
	txAirtimeOther map[mac.FrameType]sim.Time
	staOther       map[mac.NodeID]sim.Time

	decoded, corrupted, macEvents int64
	busy                          sim.Time
}

// NewRecorder builds a recorder keeping the last capacity events
// (default 4096). Rings grow lazily, so a large capacity costs memory
// only as events actually accumulate.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{cap: capacity}
}

// SetSink installs a streaming consumer that sees every event in order,
// regardless of ring evictions — the invariant checker consumes the full
// stream this way while the ring stays bounded.
func (r *Recorder) SetSink(fn func(Event)) { r.sink = fn }

// SetStationName registers a human-readable name used by the exporters.
func (r *Recorder) SetStationName(id mac.NodeID, name string) {
	if r.names == nil {
		r.names = make(map[mac.NodeID]string)
	}
	r.names[id] = name
}

// SetParams records the band timing the traced world runs under;
// scenario.World.AttachTrace calls it through a duck-typed hook.
func (r *Recorder) SetParams(p phys.Params) {
	r.timing = TimingFromParams(p)
	if r.onTiming != nil {
		r.onTiming(r.timing)
	}
}

// Timing reports the band timing captured at attach time (zero if the
// recorder was fed by hand).
func (r *Recorder) Timing() Timing { return r.timing }

// Total reports how many events were recorded over the run, including
// those the ring has since evicted.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped reports how many events fell outside the retained window.
func (r *Recorder) Dropped() uint64 {
	if r.total <= uint64(r.cap) {
		return 0
	}
	return r.total - uint64(r.cap)
}

// slot reserves the next ring slot for station sta and returns the Event
// to fill in place — callers write the record directly into the ring
// (one struct store) instead of building it on the stack and copying.
// The caller must overwrite every field (assign a composite literal).
func (r *Recorder) slot(sta mac.NodeID) *Event {
	r.total++
	idx := int(sta)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.shards) {
		grown := make([]traceShard, idx+1)
		copy(grown, r.shards)
		r.shards = grown
	}
	s := &r.shards[idx]
	if n := len(s.ring); n < r.cap {
		if s.ring == nil {
			// Reserve full capacity up front: append-doubling on the
			// record path generated most of the traced-run garbage.
			s.ring = make([]shardEvent, 0, r.cap)
		}
		// Reslice rather than append a zero value: the backing array is
		// already zeroed and the caller overwrites the whole Event, so a
		// zero-struct store here would double the ring write traffic.
		s.ring = s.ring[:n+1]
		se := &s.ring[n]
		se.seq = r.total
		return &se.ev
	}
	se := &s.ring[s.next]
	s.next++
	if s.next == r.cap {
		s.next = 0
	}
	se.seq = r.total
	return &se.ev
}

// OnTransmit implements medium.Tap.
//
// The recording sites below assign every Event field through the slot
// pointer instead of storing a composite literal: the literal forces a
// stack temporary plus a 144-byte copy per event, which dominated the
// tracing-on overhead. Each site MUST write all fields — ring slots are
// reused after wrap, and a skipped field would leak a stale value into
// exports (TestShardWrapClearsStaleFields guards this).
func (r *Recorder) OnTransmit(src mac.NodeID, f *mac.Frame, start, airtime sim.Time) {
	ev := r.slot(src)
	ev.Kind = KindTransmit
	ev.At = start
	ev.Station = src
	ev.Frame.Type = f.Type
	ev.Frame.Src = f.Src
	ev.Frame.Dst = f.Dst
	ev.Frame.Seq = f.Seq
	ev.Frame.Bytes = f.MACBytes
	ev.Frame.Retry = f.Retry
	ev.Frame.Duration = f.Duration
	ev.Frame.Airtime = airtime
	ev.RSSIDBm = 0
	ev.Until = 0
	ev.CW = 0
	ev.Slots = 0
	ev.Retries = 0
	ev.QueueLen = 0
	ev.EIFS = false
	ev.Long = false
	ev.OK = false
	if r.sink != nil {
		r.sink(*ev)
	}
	if t := int(f.Type); t >= 1 && t < frameTypeSlots {
		r.acc.txCount[t]++
		r.acc.txAirtime[t] += airtime
	} else {
		if r.acc.txCountOther == nil {
			r.acc.txCountOther = make(map[mac.FrameType]int64)
			r.acc.txAirtimeOther = make(map[mac.FrameType]sim.Time)
		}
		r.acc.txCountOther[f.Type]++
		r.acc.txAirtimeOther[f.Type] += airtime
	}
	if i := int(src); i >= 0 {
		if i >= len(r.acc.staAirtime) {
			grown := make([]sim.Time, i+1)
			copy(grown, r.acc.staAirtime)
			r.acc.staAirtime = grown
		}
		r.acc.staAirtime[i] += airtime
	} else {
		if r.acc.staOther == nil {
			r.acc.staOther = make(map[mac.NodeID]sim.Time)
		}
		r.acc.staOther[src] += airtime
	}
	r.acc.busy += airtime
}

// OnReceive implements medium.Tap.
func (r *Recorder) OnReceive(dst mac.NodeID, f *mac.Frame, info mac.RxInfo, at sim.Time) {
	kind := KindDecode
	if info.Decoded {
		r.acc.decoded++
	} else {
		kind = KindCorrupt
		r.acc.corrupted++
	}
	ev := r.slot(dst)
	ev.Kind = kind
	ev.At = at
	ev.Station = dst
	ev.Frame.Type = f.Type
	ev.Frame.Src = f.Src
	ev.Frame.Dst = f.Dst
	ev.Frame.Seq = f.Seq
	ev.Frame.Bytes = f.MACBytes
	ev.Frame.Retry = f.Retry
	ev.Frame.Duration = f.Duration
	ev.Frame.Airtime = 0
	ev.RSSIDBm = info.RSSIDBm
	ev.Until = 0
	ev.CW = 0
	ev.Slots = 0
	ev.Retries = 0
	ev.QueueLen = 0
	ev.EIFS = false
	ev.Long = false
	ev.OK = false
	if r.sink != nil {
		r.sink(*ev)
	}
}

// OnMACEvent implements mac.Probe: the MAC-internal stream lands in the
// same ring, interleaved with channel events in scheduler order. The
// pointee is the DCF's scratch event, valid only for this call — every
// field is copied into the ring slot before returning.
func (r *Recorder) OnMACEvent(pe *mac.ProbeEvent) {
	r.acc.macEvents++
	var kind Kind
	if i := int(pe.Kind); i >= 0 && i < len(probeKindLUT) {
		kind = probeKindLUT[i]
	}
	ev := r.slot(pe.Station)
	ev.Kind = kind
	ev.At = pe.At
	ev.Station = pe.Station
	ev.Frame.Type = pe.Frame
	ev.Frame.Src = 0
	ev.Frame.Dst = pe.Dst
	ev.Frame.Seq = pe.Seq
	ev.Frame.Bytes = 0
	ev.Frame.Retry = false
	ev.Frame.Duration = 0
	ev.Frame.Airtime = 0
	ev.RSSIDBm = 0
	ev.Until = pe.Until
	ev.CW = pe.CW
	ev.Slots = pe.Slots
	ev.Retries = pe.Retries
	ev.QueueLen = pe.QueueLen
	ev.EIFS = pe.EIFS
	ev.Long = pe.Long
	ev.OK = pe.OK
	if r.sink != nil {
		r.sink(*ev)
	}
}

// Stats reports the accumulated accounting as a fresh snapshot.
func (r *Recorder) Stats() Stats {
	st := Stats{
		TxCount:           make(map[mac.FrameType]int64),
		TxAirtime:         make(map[mac.FrameType]sim.Time),
		AirtimePerStation: make(map[mac.NodeID]sim.Time),
		Decoded:           r.acc.decoded,
		Corrupted:         r.acc.corrupted,
		MACEvents:         r.acc.macEvents,
		BusyAirtime:       r.acc.busy,
	}
	for t := 1; t < frameTypeSlots; t++ {
		if r.acc.txCount[t] != 0 {
			st.TxCount[mac.FrameType(t)] = r.acc.txCount[t]
			st.TxAirtime[mac.FrameType(t)] = r.acc.txAirtime[t]
		}
	}
	for k, v := range r.acc.txCountOther {
		st.TxCount[k] = v
		st.TxAirtime[k] = r.acc.txAirtimeOther[k]
	}
	for i, air := range r.acc.staAirtime {
		if air != 0 {
			st.AirtimePerStation[mac.NodeID(i)] = air
		}
	}
	for k, v := range r.acc.staOther {
		st.AirtimePerStation[k] = v
	}
	return st
}

// mergedEvents materializes (and caches) the canonical retained view:
// the newest cap events across every shard, in record order. Sequence
// stamps are dense, so "newest cap" is exactly the events with
// seq > total-cap, and the per-shard capacity argument in the Recorder
// doc guarantees every one of them is still in its shard's ring.
func (r *Recorder) mergedEvents() []Event {
	if r.mergedAt == r.total {
		return r.merged
	}
	var lo uint64 // retain seq > lo
	if r.total > uint64(r.cap) {
		lo = r.total - uint64(r.cap)
	}
	type seqRef struct {
		seq        uint64
		shard, pos int
	}
	refs := make([]seqRef, 0, r.total-lo)
	for si := range r.shards {
		ring := r.shards[si].ring
		for pi := range ring {
			if ring[pi].seq > lo {
				refs = append(refs, seqRef{seq: ring[pi].seq, shard: si, pos: pi})
			}
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].seq < refs[j].seq })
	out := make([]Event, len(refs))
	for i, ref := range refs {
		out[i] = r.shards[ref.shard].ring[ref.pos].ev
	}
	r.merged = out
	r.mergedAt = r.total
	return out
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	return append([]Event(nil), r.mergedEvents()...)
}

// eventAt indexes the retained events oldest-first without copying.
func (r *Recorder) eventAt(i int) Event { return r.mergedEvents()[i] }

// retained reports how many events the rings currently hold within the
// canonical window.
func (r *Recorder) retained() int { return len(r.mergedEvents()) }

// Utilization reports transmit airtime as a fraction of elapsed time
// (overlapping transmissions double-count, so values may exceed 1 under
// heavy collisions).
func (r *Recorder) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.acc.busy) / float64(elapsed)
}

// Summary renders the accounting as text.
func (r *Recorder) Summary(elapsed sim.Time) string {
	st := r.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "channel utilization: %.1f%% over %v\n",
		100*r.Utilization(elapsed), elapsed)
	for _, ft := range []mac.FrameType{mac.FrameRTS, mac.FrameCTS, mac.FrameData, mac.FrameACK} {
		if n := st.TxCount[ft]; n > 0 {
			fmt.Fprintf(&b, "  %-4s %7d frames  %v airtime\n", ft, n, st.TxAirtime[ft])
		}
	}
	fmt.Fprintf(&b, "  receptions: %d decoded, %d corrupted\n",
		st.Decoded, st.Corrupted)
	stations := make([]mac.NodeID, 0, len(st.AirtimePerStation))
	for sta := range st.AirtimePerStation {
		stations = append(stations, sta)
	}
	sort.Slice(stations, func(i, j int) bool { return stations[i] < stations[j] })
	for _, sta := range stations {
		air := st.AirtimePerStation[sta]
		fmt.Fprintf(&b, "  station %d: %v airtime (%.1f%%)\n",
			sta, air, 100*float64(air)/float64(elapsed))
	}
	return b.String()
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
