// Package trace records per-frame channel activity from a medium tap: a
// bounded event log for debugging and channel-level accounting (airtime
// utilization, per-type frame counts, per-station shares). It is how a
// user inspects *why* a greedy receiver wins — the log shows the silenced
// stations, the forged ACKs, and the airtime the attacker's flow occupies.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"greedy80211/internal/mac"
	"greedy80211/internal/medium"
	"greedy80211/internal/sim"
)

// Kind labels one recorded event.
type Kind int

const (
	// KindTransmit is a frame entering the air.
	KindTransmit Kind = iota + 1
	// KindDecode is a successful reception.
	KindDecode
	// KindCorrupt is a corrupted reception.
	KindCorrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTransmit:
		return "TX"
	case KindDecode:
		return "RX"
	case KindCorrupt:
		return "ERR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded channel event.
type Event struct {
	Kind    Kind
	At      sim.Time
	Station mac.NodeID // transmitter (TX) or receiver (RX/ERR)
	Frame   FrameInfo
	RSSIDBm float64 // receptions only
}

// FrameInfo is the frame summary captured by the recorder (frames are
// mutable and reused upstream, so the recorder copies what it needs).
type FrameInfo struct {
	Type     mac.FrameType
	Src, Dst mac.NodeID
	Seq      uint16
	Bytes    int
	Duration sim.Time
	Airtime  sim.Time // TX events only
}

// String renders an event as one trace line.
func (e Event) String() string {
	switch e.Kind {
	case KindTransmit:
		return fmt.Sprintf("%12v %-3s sta=%d %s %d->%d seq=%d len=%dB dur=%v air=%v",
			e.At, e.Kind, e.Station, e.Frame.Type, e.Frame.Src, e.Frame.Dst,
			e.Frame.Seq, e.Frame.Bytes, e.Frame.Duration, e.Frame.Airtime)
	default:
		return fmt.Sprintf("%12v %-3s sta=%d %s %d->%d seq=%d rssi=%.1fdBm",
			e.At, e.Kind, e.Station, e.Frame.Type, e.Frame.Src, e.Frame.Dst,
			e.Frame.Seq, e.RSSIDBm)
	}
}

// Recorder implements medium.Tap: it keeps the last Cap events in a ring
// and accumulates channel statistics for the whole run. It has no
// dependency on a scheduler, so it can be built before the world it taps.
type Recorder struct {
	cap  int
	ring []Event
	next int
	full bool

	stats Stats
}

var _ medium.Tap = (*Recorder)(nil)

// Stats aggregates whole-run channel accounting.
type Stats struct {
	// Transmissions and airtime per frame type.
	TxCount   map[mac.FrameType]int64
	TxAirtime map[mac.FrameType]sim.Time
	// AirtimePerStation attributes transmit airtime to each transmitter.
	AirtimePerStation map[mac.NodeID]sim.Time
	// Decoded and Corrupted count per-receiver outcomes.
	Decoded   int64
	Corrupted int64
	// BusyAirtime is total transmit airtime (overlaps double-count —
	// with a single collision domain it approximates channel occupancy).
	BusyAirtime sim.Time
}

// NewRecorder builds a recorder keeping the last capacity events
// (default 4096).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{
		cap:  capacity,
		ring: make([]Event, capacity),
		stats: Stats{
			TxCount:           make(map[mac.FrameType]int64),
			TxAirtime:         make(map[mac.FrameType]sim.Time),
			AirtimePerStation: make(map[mac.NodeID]sim.Time),
		},
	}
}

func (r *Recorder) record(e Event) {
	r.ring[r.next] = e
	r.next++
	if r.next == r.cap {
		r.next = 0
		r.full = true
	}
}

func frameInfo(f *mac.Frame) FrameInfo {
	return FrameInfo{
		Type:     f.Type,
		Src:      f.Src,
		Dst:      f.Dst,
		Seq:      f.Seq,
		Bytes:    f.MACBytes,
		Duration: f.Duration,
	}
}

// OnTransmit implements medium.Tap.
func (r *Recorder) OnTransmit(src mac.NodeID, f *mac.Frame, start, airtime sim.Time) {
	fi := frameInfo(f)
	fi.Airtime = airtime
	r.record(Event{Kind: KindTransmit, At: start, Station: src, Frame: fi})
	r.stats.TxCount[f.Type]++
	r.stats.TxAirtime[f.Type] += airtime
	r.stats.AirtimePerStation[src] += airtime
	r.stats.BusyAirtime += airtime
}

// OnReceive implements medium.Tap.
func (r *Recorder) OnReceive(dst mac.NodeID, f *mac.Frame, info mac.RxInfo, at sim.Time) {
	kind := KindDecode
	if info.Decoded {
		r.stats.Decoded++
	} else {
		kind = KindCorrupt
		r.stats.Corrupted++
	}
	r.record(Event{
		Kind: kind, At: at, Station: dst,
		Frame: frameInfo(f), RSSIDBm: info.RSSIDBm,
	})
}

// Stats reports the accumulated accounting.
func (r *Recorder) Stats() Stats { return r.stats }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Utilization reports transmit airtime as a fraction of elapsed time
// (overlapping transmissions double-count, so values may exceed 1 under
// heavy collisions).
func (r *Recorder) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.stats.BusyAirtime) / float64(elapsed)
}

// Summary renders the accounting as text.
func (r *Recorder) Summary(elapsed sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "channel utilization: %.1f%% over %v\n",
		100*r.Utilization(elapsed), elapsed)
	for _, ft := range []mac.FrameType{mac.FrameRTS, mac.FrameCTS, mac.FrameData, mac.FrameACK} {
		if n := r.stats.TxCount[ft]; n > 0 {
			fmt.Fprintf(&b, "  %-4s %7d frames  %v airtime\n", ft, n, r.stats.TxAirtime[ft])
		}
	}
	fmt.Fprintf(&b, "  receptions: %d decoded, %d corrupted\n",
		r.stats.Decoded, r.stats.Corrupted)
	stations := make([]mac.NodeID, 0, len(r.stats.AirtimePerStation))
	for sta := range r.stats.AirtimePerStation {
		stations = append(stations, sta)
	}
	sort.Slice(stations, func(i, j int) bool { return stations[i] < stations[j] })
	for _, sta := range stations {
		air := r.stats.AirtimePerStation[sta]
		fmt.Fprintf(&b, "  station %d: %v airtime (%.1f%%)\n",
			sta, air, 100*float64(air)/float64(elapsed))
	}
	return b.String()
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
