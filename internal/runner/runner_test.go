package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// withLimit runs body under a temporary concurrency limit.
func withLimit(t *testing.T, n int, body func()) {
	t.Helper()
	old := Limit()
	SetLimit(n)
	defer SetLimit(old)
	body()
}

func TestMapOrdering(t *testing.T) {
	for _, limit := range []int{1, 2, 8} {
		withLimit(t, limit, func() {
			got, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("limit %d: %v", limit, err)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("limit %d: got[%d] = %d, want %d", limit, i, v, i*i)
				}
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

// The reported error must be the lowest-indexed failure regardless of
// completion order, so parallel and sequential runs fail identically.
func TestMapLowestIndexError(t *testing.T) {
	withLimit(t, 8, func() {
		errHigh := errors.New("high")
		errLow := errors.New("low")
		_, err := Map(50, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errLow
			case 31:
				return 0, errHigh
			}
			return i, nil
		})
		if err != errLow {
			t.Fatalf("err = %v, want lowest-index error %v", err, errLow)
		}
	})
}

func TestMapConcurrencyBounded(t *testing.T) {
	withLimit(t, 3, func() {
		var cur, max atomic.Int32
		var mu sync.Mutex
		_, err := Map(64, func(i int) (struct{}, error) {
			c := cur.Add(1)
			mu.Lock()
			if c > max.Load() {
				max.Store(c)
			}
			mu.Unlock()
			defer cur.Add(-1)
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// limit workers + the submitting goroutine running inline.
		if got := max.Load(); got > 4 {
			t.Errorf("observed concurrency %d, want ≤ limit+1 = 4", got)
		}
	})
}

// Nested Maps (sweep over points × seeds) must not deadlock even when the
// pool is saturated by the outer level.
func TestMapNestedNoDeadlock(t *testing.T) {
	withLimit(t, 2, func() {
		got, err := Map(8, func(i int) (int, error) {
			inner, err := Map(8, func(j int) (int, error) { return i*8 + j, nil })
			if err != nil {
				return 0, err
			}
			sum := 0
			for _, v := range inner {
				sum += v
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			want := 0
			for j := 0; j < 8; j++ {
				want += i*8 + j
			}
			if v != want {
				t.Fatalf("got[%d] = %d, want %d", i, v, want)
			}
		}
	})
}

func TestMapPanicPropagates(t *testing.T) {
	withLimit(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		Map(16, func(i int) (int, error) {
			if i == 5 {
				panic("boom")
			}
			return i, nil
		})
		t.Fatal("Map did not panic")
	})
}

// A pre-cancelled context fails every not-yet-started task with ctx.Err();
// lowest-index reporting makes the error deterministic.
func TestMapContextPreCancelled(t *testing.T) {
	withLimit(t, 4, func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int32
		_, err := MapContext(ctx, 16, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if ran.Load() != 0 {
			t.Errorf("%d tasks ran under a cancelled context", ran.Load())
		}
		// n == 1 takes the inline path; it must check ctx too.
		if _, err := MapContext(ctx, 1, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
			t.Errorf("n=1 err = %v, want context.Canceled", err)
		}
	})
}

// Cancelling mid-flight stops tasks that have not started; tasks already
// running finish normally (a simulated world has no preemption points).
func TestMapContextMidFlightCancel(t *testing.T) {
	withLimit(t, 1, func() {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		_, err := MapContext(ctx, 8, func(i int) (int, error) {
			ran.Add(1)
			if i == 2 {
				cancel()
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := ran.Load(); got > 4 {
			t.Errorf("%d tasks ran after cancellation at task 2", got)
		}
	})
}

func TestSetLimitClamps(t *testing.T) {
	old := Limit()
	defer SetLimit(old)
	SetLimit(0)
	if Limit() != 1 {
		t.Errorf("Limit() = %d after SetLimit(0), want 1", Limit())
	}
	SetLimit(-3)
	if Limit() != 1 {
		t.Errorf("Limit() = %d after SetLimit(-3), want 1", Limit())
	}
}

func TestEach(t *testing.T) {
	withLimit(t, 4, func() {
		var count atomic.Int32
		if err := Each(10, func(i int) error {
			count.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count.Load() != 10 {
			t.Errorf("ran %d tasks, want 10", count.Load())
		}
		wantErr := fmt.Errorf("nope")
		if err := Each(3, func(i int) error { return wantErr }); err != wantErr {
			t.Errorf("Each err = %v, want %v", err, wantErr)
		}
	})
}

// EachContext must stop launching bodies after cancellation, finish the
// ones in flight, and report ctx.Err() — while a completed sweep returns
// nil. This is the campaign engine's interrupt path.
func TestEachContextCancellation(t *testing.T) {
	withLimit(t, 2, func() {
		if err := EachContext(context.Background(), 10, func(i int) error { return nil }); err != nil {
			t.Fatalf("uncancelled EachContext: %v", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		err := EachContext(ctx, 100, func(i int) error {
			started.Add(1)
			cancel()
			return nil
		})
		if err != context.Canceled {
			t.Fatalf("cancelled EachContext err = %v, want context.Canceled", err)
		}
		if n := started.Load(); n == 0 || n == 100 {
			t.Fatalf("started %d bodies, want a strict non-empty subset", n)
		}
	})
}
