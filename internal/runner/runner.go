// Package runner is the experiment harness's worker pool. Every simulated
// world is an independent, deterministic, single-goroutine computation, so
// the harness fans (sweep-point × seed) builds/runs across CPUs and then
// aggregates sequentially.
//
// Determinism is preserved by construction: Map collects results by input
// index, never by completion order, and reports the error of the
// lowest-indexed failure. A run with limit 1 and a run with limit N
// therefore produce byte-identical aggregates.
//
// Map calls nest freely (a sweep over points whose body runs a Map over
// seeds): a task that cannot get a pool slot runs inline on the caller's
// goroutine instead of queueing, which both bounds concurrency near the
// limit and makes nested waits deadlock-free.
package runner

import (
	"context"
	"runtime"
	"sync"
)

var (
	mu  sync.Mutex
	sem chan struct{} // capacity = current limit; nil until first use
)

// SetLimit caps how many Map tasks run concurrently across the whole
// process. n < 1 means 1 (fully sequential). The default is
// runtime.GOMAXPROCS(0). Calls already in flight keep their previous
// limit; subsequent Map calls use the new one.
func SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	sem = make(chan struct{}, n)
}

// Limit reports the current concurrency limit.
func Limit() int { return cap(pool()) }

// pool returns the current semaphore, initializing it to GOMAXPROCS on
// first use.
func pool() chan struct{} {
	mu.Lock()
	defer mu.Unlock()
	if sem == nil {
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	return sem
}

// panicValue carries a recovered panic from a worker to the caller.
type panicValue struct{ v any }

// Map runs fn(0) … fn(n-1) across the worker pool and returns the results
// in index order. All tasks are attempted even after a failure; the error
// returned is the one from the lowest failing index, so error reporting
// does not depend on completion order. A panic in any task is re-raised on
// the caller's goroutine after the remaining tasks finish.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), n, fn)
}

// MapContext is Map with cooperative cancellation: each task checks ctx
// before starting, so tasks not yet begun when ctx is cancelled fail with
// ctx.Err() instead of running. In-flight tasks are never interrupted (a
// simulated world has no preemption points), which keeps cancellation
// granularity at one (sweep-point × seed) run. Error selection is
// unchanged — the lowest failing index wins — so a cancelled sweep
// reports the same error no matter the completion order.
func MapContext[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	errs := make([]error, n)
	if n == 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		out[0], err = fn(0)
		return out, err
	}
	sem := pool()
	var (
		wg     sync.WaitGroup
		pmu    sync.Mutex
		panics []panicValue
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				pmu.Lock()
				panics = append(panics, panicValue{r})
				pmu.Unlock()
			}
		}()
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		out[i], errs[i] = fn(i)
	}
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				run(i)
			}(i)
		default:
			// Pool saturated (or this is a nested Map holding slots up
			// the stack): run on the caller's goroutine to keep making
			// progress without queueing.
			run(i)
		}
	}
	wg.Wait()
	if len(panics) > 0 {
		panic(panics[0].v)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Each is Map for bodies with no result value.
func Each(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// EachContext is MapContext for bodies with no result value: tasks not
// yet started when ctx is cancelled are skipped and the call reports
// ctx.Err(). The campaign engine drives its unit work-list through this
// — each body records its own outcome, so a non-nil return means the
// sweep was interrupted, not that a unit failed.
func EachContext(ctx context.Context, n int, fn func(i int) error) error {
	_, err := MapContext(ctx, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
