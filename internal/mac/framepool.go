package mac

import "greedy80211/internal/pool"

// FramePool recycles Frames through a chunked freelist arena so the hot
// RTS/CTS/DATA/ACK exchange path allocates nothing in steady state. One
// pool serves a whole world (all stations share it), matching the
// single-goroutine scheduler.
//
// Ownership follows reference counts. Get returns a frame holding one
// reference for the creator. The medium retains one reference per
// scheduled arrival and releases it after delivery, so the creator may
// release its own reference as soon as the frame's MAC lifecycle ends
// (TxDone for data, transmit for control responses) without racing
// copies still propagating to receivers. The frame returns to the
// freelist only when the last reference is released.
//
// A nil *FramePool is valid and simply heap-allocates: Get returns
// &Frame{}, and Retain/Release on such frames are no-ops. Tests and
// callers outside the hot path keep building frames with literals.
type FramePool struct {
	arena *pool.Arena[Frame]
}

// NewFramePool builds an empty pool. The chunk size is modest: live
// frames track MAC queue depth (tens), and worlds are built per seed, so
// a big first chunk would dominate construction cost.
func NewFramePool() *FramePool {
	p := &FramePool{arena: pool.NewArena[Frame](64, nil)}
	p.arena.SetPoison(func(f *Frame) {
		// Sentinel values make use-after-release show up as impossible
		// frames (negative type, out-of-band addresses) under pooldebug.
		*f = Frame{Type: FrameType(-1), Src: -9999, Dst: -9999, Seq: 0xDEAD, pool: f.pool}
	})
	return p
}

// Get checks a zeroed frame out of the pool with one reference held by
// the caller. On a nil pool it returns a plain heap frame.
func (p *FramePool) Get() *Frame {
	if p == nil {
		return &Frame{}
	}
	f := p.arena.Get()
	*f = Frame{pool: p, refs: 1}
	return f
}

// Stats reports pool occupancy; zero on a nil pool.
func (p *FramePool) Stats() pool.Stats {
	if p == nil {
		return pool.Stats{}
	}
	return p.arena.Stats()
}

// Retain adds a reference to a pooled frame. It is a no-op for nil or
// unpooled frames, so callers need not know where a frame came from.
func (f *Frame) Retain() {
	if f == nil || f.pool == nil {
		return
	}
	if f.refs <= 0 {
		panic("mac: Retain of a released frame")
	}
	f.refs++
}

// Release drops one reference; the last release zeroes the frame and
// returns it to the pool. It is a no-op for nil or unpooled frames.
// Releasing more times than retained panics — the always-on guard
// against double release.
func (f *Frame) Release() {
	if f == nil || f.pool == nil {
		return
	}
	if f.refs <= 0 {
		panic("mac: frame released twice")
	}
	f.refs--
	if f.refs > 0 {
		return
	}
	p := f.pool
	*f = Frame{pool: p}
	p.arena.Put(f)
}
