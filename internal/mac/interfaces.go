package mac

import (
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// Channel is the MAC's transmit path onto the shared medium. It is
// implemented by package medium; the MAC never imports medium directly.
type Channel interface {
	// Transmit puts f on the air from the radio identified by src for
	// airtime. src names the actual transmitting radio — f.Src may claim a
	// different station when the transmitter is spoofing.
	Transmit(src NodeID, f *Frame, airtime sim.Time)
}

// RxInfo describes the outcome of one frame reception at one radio.
type RxInfo struct {
	// Decoded reports whether the frame was received intact.
	Decoded bool
	// Corruption describes where errors landed when Decoded is false.
	Corruption phys.FrameCorruption
	// RSSIDBm is the sampled received signal strength of this frame.
	RSSIDBm float64
}

// Receiver is the medium-to-MAC delivery interface, implemented by *DCF.
type Receiver interface {
	// ChannelBusy signals physical-carrier-sense transitions: true when
	// energy from another radio first appears, false when the last
	// overlapping transmission ends.
	ChannelBusy(busy bool)
	// RxEnd delivers a frame at the end of its airtime with its outcome.
	// Frames below the reception threshold are never delivered (they only
	// contribute carrier sense).
	RxEnd(f *Frame, info RxInfo)
}

// Upper is the MAC-to-upper-layer interface implemented by package node.
type Upper interface {
	// DeliverData hands up a decoded, non-duplicate data frame addressed
	// to this station.
	DeliverData(f *Frame, rssiDBm float64)
	// TxDone reports that the MAC finished serving a queued MSDU: ok is
	// true when the frame was acknowledged (or the MAC was configured to
	// treat it as acknowledged), false when it was dropped after
	// exhausting retries.
	TxDone(f *Frame, ok bool)
}
