package mac

import (
	"testing"
	"testing/quick"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

func TestFrameTypeString(t *testing.T) {
	tests := []struct {
		ft   FrameType
		want string
	}{
		{FrameRTS, "RTS"}, {FrameCTS, "CTS"}, {FrameData, "DATA"},
		{FrameACK, "ACK"}, {FrameType(42), "FrameType(42)"},
	}
	for _, tt := range tests {
		if got := tt.ft.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.ft), got, tt.want)
		}
	}
}

func TestFrameHelpers(t *testing.T) {
	f := &Frame{Type: FrameRTS, Src: 1, Dst: 2, Seq: 7, Duration: sim.Millisecond, MACBytes: 20}
	if !f.IsControl() {
		t.Error("RTS should be control")
	}
	if (&Frame{Type: FrameData}).IsControl() {
		t.Error("DATA should not be control")
	}
	if s := f.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestNAVChain80211B(t *testing.T) {
	p := phys.Params80211B()
	dataBytes := 1024 + phys.DataHeaderBytes
	// RTS NAV covers CTS + DATA + ACK + 3 SIFS.
	rtsNAV := RTSNAV(p, dataBytes)
	want := 3*p.SIFS +
		p.TxDuration(phys.CTSFrameBytes, p.BasicRateBps) +
		p.TxDuration(dataBytes, p.DataRateBps) +
		p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps)
	if rtsNAV != want {
		t.Errorf("RTSNAV = %v, want %v", rtsNAV, want)
	}
	// The CTS NAV in response should cover exactly DATA + ACK + 2 SIFS.
	ctsNAV := CTSNAVFromRTS(p, rtsNAV)
	wantCTS := 2*p.SIFS +
		p.TxDuration(dataBytes, p.DataRateBps) +
		p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps)
	if ctsNAV != wantCTS {
		t.Errorf("CTSNAVFromRTS = %v, want %v", ctsNAV, wantCTS)
	}
	// The data NAV covers SIFS + ACK; the final ACK reserves nothing.
	if got := DataNAV(p); got != p.SIFS+p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps) {
		t.Errorf("DataNAV = %v", got)
	}
	if ACKNAV() != 0 {
		t.Error("ACKNAV should be zero without fragmentation")
	}
}

func TestCTSNAVFromRTSNeverNegative(t *testing.T) {
	p := phys.Params80211B()
	if got := CTSNAVFromRTS(p, 0); got != 0 {
		t.Errorf("CTSNAVFromRTS(0) = %v, want 0", got)
	}
}

func TestClampNAV(t *testing.T) {
	tests := []struct {
		name string
		in   sim.Time
		want sim.Time
	}{
		{"negative", -sim.Second, 0},
		{"in range", 5 * sim.Millisecond, 5 * sim.Millisecond},
		{"at max", phys.MaxNAV(), phys.MaxNAV()},
		{"above max", sim.Second, phys.MaxNAV()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClampNAV(tt.in); got != tt.want {
				t.Errorf("ClampNAV(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestPropertyClampNAVBounds(t *testing.T) {
	f := func(raw int64) bool {
		got := ClampNAV(sim.Time(raw))
		return got >= 0 && got <= phys.MaxNAV()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalPolicyIsTransparent(t *testing.T) {
	var p NormalPolicy
	for _, ft := range []FrameType{FrameRTS, FrameCTS, FrameData, FrameACK} {
		if got := p.OutgoingDuration(ft, 123*sim.Microsecond); got != 123*sim.Microsecond {
			t.Errorf("NormalPolicy changed %v duration", ft)
		}
	}
	if p.AckCorrupted(1, phys.FrameCorruption{Corrupted: true}) {
		t.Error("NormalPolicy acked a corrupted frame")
	}
	if p.SpoofSniffedData(&Frame{Type: FrameData, Src: 1, Dst: 2}) {
		t.Error("NormalPolicy spoofed an ACK")
	}
}

func TestPassiveObserver(t *testing.T) {
	var o PassiveObserver
	f := &Frame{Type: FrameCTS, Duration: 9 * sim.Millisecond}
	if got := o.FilterNAV(f, -50); got != f.Duration {
		t.Error("PassiveObserver altered NAV")
	}
	if !o.AcceptACK(&Frame{Type: FrameACK}, -50) {
		t.Error("PassiveObserver rejected an ACK")
	}
	o.OnOverheard(f, -50) // must not panic
}

func TestCountersAvgCW(t *testing.T) {
	var c Counters
	if c.AvgCW() != 0 {
		t.Error("empty AvgCW should be 0")
	}
	c.CWSum, c.CWSamples = 62, 2
	if c.AvgCW() != 31 {
		t.Errorf("AvgCW = %v, want 31", c.AvgCW())
	}
	c.RTSSent, c.DataSent = 3, 4
	if c.Attempts() != 7 {
		t.Errorf("Attempts = %d, want 7", c.Attempts())
	}
}
