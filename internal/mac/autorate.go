package mac

import (
	"fmt"
)

// RateController selects the PHY rate for data frames and learns from
// per-attempt transmission outcomes. It is the hook for the auto-rate
// extension (the paper's Section IX future work): misbehaviors that forge
// positive feedback — fake ACKs (misbehavior 3) and spoofed ACKs
// (misbehavior 2) — also corrupt the sender's rate adaptation, because the
// controller sees successes that never happened.
type RateController interface {
	// DataRate reports the PHY rate (bits/s) for the next data frame to
	// dst.
	DataRate(dst NodeID) int64
	// OnTxOutcome feeds back one data-frame attempt toward dst: ok is
	// whether a MAC ACK (genuine or forged) was received.
	OnTxOutcome(dst NodeID, ok bool)
}

// ARF implements Automatic Rate Fallback, the classic 802.11 controller:
// step the rate up after SuccessThreshold consecutive successes, step it
// down after FailureThreshold consecutive failures. State is tracked per
// destination.
type ARF struct {
	rates            []int64
	successThreshold int
	failureThreshold int
	state            map[NodeID]*arfState
}

type arfState struct {
	idx       int
	successes int
	failures  int
}

var _ RateController = (*ARF)(nil)

// ARF defaults per the original Lucent design.
const (
	DefaultARFSuccessThreshold = 10
	DefaultARFFailureThreshold = 2
)

// Rates80211B is the 802.11b rate ladder.
func Rates80211B() []int64 { return []int64{1_000_000, 2_000_000, 5_500_000, 11_000_000} }

// Rates80211A is the 802.11a rate ladder (subset the paper's rates span).
func Rates80211A() []int64 {
	return []int64{6_000_000, 9_000_000, 12_000_000, 18_000_000, 24_000_000, 36_000_000, 48_000_000, 54_000_000}
}

// NewARF builds an ARF controller over the given ascending rate ladder,
// starting every destination at the highest rate.
func NewARF(rates []int64, successThreshold, failureThreshold int) *ARF {
	if len(rates) == 0 {
		panic("mac: NewARF with empty rate ladder")
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			panic(fmt.Sprintf("mac: ARF ladder not ascending at %d", i))
		}
	}
	if successThreshold <= 0 {
		successThreshold = DefaultARFSuccessThreshold
	}
	if failureThreshold <= 0 {
		failureThreshold = DefaultARFFailureThreshold
	}
	return &ARF{
		rates:            rates,
		successThreshold: successThreshold,
		failureThreshold: failureThreshold,
		state:            make(map[NodeID]*arfState),
	}
}

func (a *ARF) stateFor(dst NodeID) *arfState {
	s, ok := a.state[dst]
	if !ok {
		s = &arfState{idx: len(a.rates) - 1}
		a.state[dst] = s
	}
	return s
}

// DataRate implements RateController.
func (a *ARF) DataRate(dst NodeID) int64 { return a.rates[a.stateFor(dst).idx] }

// OnTxOutcome implements RateController.
func (a *ARF) OnTxOutcome(dst NodeID, ok bool) {
	s := a.stateFor(dst)
	if ok {
		s.failures = 0
		s.successes++
		if s.successes >= a.successThreshold && s.idx < len(a.rates)-1 {
			s.idx++
			s.successes = 0
		}
		return
	}
	s.successes = 0
	s.failures++
	if s.failures >= a.failureThreshold && s.idx > 0 {
		s.idx--
		s.failures = 0
	}
}
