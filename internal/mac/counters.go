package mac

// Counters accumulates per-station MAC statistics. The paper's figures use
// several of these directly: average contention window (Fig 2, Table IV),
// RTS sending ratios (Fig 3), and retransmission/timeout behavior.
type Counters struct {
	// Transmission counts by frame type.
	RTSSent  int64
	CTSSent  int64
	DataSent int64
	ACKSent  int64

	// SpoofedACKsSent counts ACKs transmitted on behalf of another station
	// (misbehavior 2) and FakeACKsSent counts ACKs for corrupted frames
	// (misbehavior 3).
	SpoofedACKsSent int64
	FakeACKsSent    int64

	// MSDU-level outcomes.
	MSDUEnqueued  int64
	MSDUQueueDrop int64
	MSDUSuccess   int64
	MSDURetryDrop int64

	// Retransmission behavior.
	DataRetries int64
	RTSRetries  int64
	CTSTimeouts int64
	ACKTimeouts int64

	// Receive-side outcomes.
	DataDelivered  int64 // non-duplicate data frames passed up
	DataDuplicates int64
	CorruptedRx    int64
	ACKIgnored     int64 // ACKs discarded by the Observer (GRC mitigation)
	NAVCorrections int64 // NAV values clamped by the Observer (GRC)

	// Contention-window sampling: CWSum accumulates the CW value at every
	// backoff draw so AvgCW reports the station's average contention
	// window in slots. CWHist is the full draw histogram, which the
	// analytic model of Equations 1–2 consumes (Fig 3).
	CWSum     int64
	CWSamples int64
	CWHist    map[int]int64
}

// AvgCW reports the average contention window over all backoff draws, in
// slots (e.g. 31 means the station never left CWmin on 802.11b).
func (c *Counters) AvgCW() float64 {
	if c.CWSamples == 0 {
		return 0
	}
	return float64(c.CWSum) / float64(c.CWSamples)
}

// Attempts reports the total channel acquisitions attempted (RTS for
// protected exchanges, data frames otherwise).
func (c *Counters) Attempts() int64 { return c.RTSSent + c.DataSent }
