package mac

import (
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// ReceiverPolicy decides the feedback behavior of a station: the duration
// (NAV) values it advertises and how it acknowledges frames. A compliant
// station uses NormalPolicy; the paper's three greedy misbehaviors are
// implemented as ReceiverPolicies in package greedy.
type ReceiverPolicy interface {
	// OutgoingDuration returns the duration field to put in an outgoing
	// frame whose correct value is normal. A greedy receiver inflates it.
	OutgoingDuration(t FrameType, normal sim.Time) sim.Time
	// AckCorrupted reports whether to send a MAC ACK for a corrupted frame
	// whose preserved addressing shows it was destined to this station
	// (misbehavior 3: fake ACKs).
	AckCorrupted(src NodeID, c phys.FrameCorruption) bool
	// SpoofSniffedData reports whether to transmit a MAC ACK impersonating
	// dst in response to an overheard data frame addressed to dst
	// (misbehavior 2: spoofed ACKs).
	SpoofSniffedData(f *Frame) bool
}

// NormalPolicy is the protocol-compliant receiver behavior.
type NormalPolicy struct{}

var _ ReceiverPolicy = NormalPolicy{}

// OutgoingDuration implements ReceiverPolicy: no inflation.
func (NormalPolicy) OutgoingDuration(_ FrameType, normal sim.Time) sim.Time { return normal }

// AckCorrupted implements ReceiverPolicy: never acknowledge corrupt frames.
func (NormalPolicy) AckCorrupted(NodeID, phys.FrameCorruption) bool { return false }

// SpoofSniffedData implements ReceiverPolicy: never spoof.
func (NormalPolicy) SpoofSniffedData(*Frame) bool { return false }

// Observer vets incoming protocol feedback. It is the hook surface for the
// GRC detection/mitigation scheme (package detect); PassiveObserver accepts
// everything, which is the behavior of an unprotected station.
type Observer interface {
	// FilterNAV is consulted before the station applies the NAV from an
	// overheard frame. It returns the duration to actually use; GRC clamps
	// inflated values to the maximum consistent with the observed exchange.
	FilterNAV(f *Frame, rssiDBm float64) sim.Time
	// AcceptACK is consulted when a MAC ACK arrives for the station's own
	// in-flight data frame. Returning false discards the ACK (treating the
	// transmission as unacknowledged); GRC uses this to ignore spoofed
	// ACKs whose RSSI is inconsistent with the true receiver.
	AcceptACK(f *Frame, rssiDBm float64) bool
	// OnOverheard is informed of every decoded frame, including those
	// addressed to other stations, with its received signal strength.
	// Detection state (median RSSI, RTS→CTS pairing) is built here.
	OnOverheard(f *Frame, rssiDBm float64)
}

// PassiveObserver applies protocol values verbatim and accepts every ACK.
type PassiveObserver struct{}

var _ Observer = PassiveObserver{}

// FilterNAV implements Observer: use the advertised duration unchanged.
func (PassiveObserver) FilterNAV(f *Frame, _ float64) sim.Time { return f.Duration }

// AcceptACK implements Observer: accept every ACK.
func (PassiveObserver) AcceptACK(*Frame, float64) bool { return true }

// OnOverheard implements Observer: ignore.
func (PassiveObserver) OnOverheard(*Frame, float64) {}
