package mac

import (
	"testing"

	"greedy80211/internal/sim"
)

// probeLog captures every emitted ProbeEvent in order.
type probeLog struct {
	events []ProbeEvent
}

func (p *probeLog) OnMACEvent(e *ProbeEvent) { p.events = append(p.events, *e) }

func (p *probeLog) kinds() map[ProbeKind]int {
	m := make(map[ProbeKind]int)
	for _, e := range p.events {
		m[e.Kind]++
	}
	return m
}

func (p *probeLog) first(k ProbeKind) (ProbeEvent, bool) {
	for _, e := range p.events {
		if e.Kind == k {
			return e, true
		}
	}
	return ProbeEvent{}, false
}

// TestProbeRetryLifecycle drives the RTS retry machinery on a dead channel
// and asserts the probe narrates every stage of the state machine.
func TestProbeRetryLifecycle(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{UseRTSCTS: true})
	log := &probeLog{}
	d.SetProbe(log)
	d.Send(2, nil, 1024)
	sched.RunUntil(2 * sim.Second)

	k := log.kinds()
	if k[ProbeEnqueue] != 1 {
		t.Errorf("enqueue events = %d, want 1", k[ProbeEnqueue])
	}
	// 8 RTS attempts (1 + 7 short retries), each a contention TX.
	if k[ProbeTxContend] != 8 {
		t.Errorf("TX-CONTEND events = %d, want 8", k[ProbeTxContend])
	}
	if k[ProbeRetry] != 8 {
		// The 8th timeout still emits a retry probe before the limit check
		// drops the MSDU.
		t.Errorf("RETRY events = %d, want 8", k[ProbeRetry])
	}
	if k[ProbeCWDouble] != 7 {
		t.Errorf("CW-DOUBLE events = %d, want 7", k[ProbeCWDouble])
	}
	if k[ProbeCWReset] == 0 {
		t.Error("no CW-RESET after the MSDU was dropped")
	}
	// Each retry draws a fresh backoff, runs it down, and expires.
	if k[ProbeBackoffDraw] == 0 || k[ProbeBackoffResume] == 0 || k[ProbeBackoffExpire] == 0 {
		t.Errorf("backoff lifecycle incomplete: draw=%d resume=%d expire=%d",
			k[ProbeBackoffDraw], k[ProbeBackoffResume], k[ProbeBackoffExpire])
	}
	if k[ProbeMSDUDone] != 1 {
		t.Errorf("MSDU-DONE events = %d, want 1", k[ProbeMSDUDone])
	}
	if done, _ := log.first(ProbeMSDUDone); done.OK {
		t.Error("MSDU-DONE reports success on a dead channel")
	}
	if retry, _ := log.first(ProbeRetry); retry.Long || retry.Retries != 1 {
		t.Errorf("first retry = long=%v retries=%d, want short retry #1", retry.Long, retry.Retries)
	}
	// Every event is stamped with the owning station and nondecreasing time.
	var last sim.Time
	for i, e := range log.events {
		if e.Station != d.ID() {
			t.Fatalf("event %d station = %d, want %d", i, e.Station, d.ID())
		}
		if e.At < last {
			t.Fatalf("event %d time %v before predecessor %v", i, e.At, last)
		}
		last = e.At
	}
}

// TestProbeNAVAndBusy checks the virtual and physical carrier-sense probes.
func TestProbeNAVAndBusy(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{})
	log := &probeLog{}
	d.SetProbe(log)

	// An overheard CTS for someone else sets the NAV: the station becomes
	// NAV-blocked with nothing on the physical channel.
	sched.Schedule(sim.Millisecond, func() {
		d.RxEnd(&Frame{Type: FrameCTS, Src: 7, Dst: 8, Duration: 5 * sim.Millisecond, MACBytes: 14},
			RxInfo{Decoded: true, RSSIDBm: -50})
	})
	sched.Schedule(10*sim.Millisecond, func() { d.ChannelBusy(true) })
	sched.Schedule(11*sim.Millisecond, func() { d.ChannelBusy(false) })
	sched.RunUntil(20 * sim.Millisecond)

	nav, ok := log.first(ProbeNAVUpdate)
	if !ok || nav.Until != 6*sim.Millisecond {
		t.Fatalf("NAV-SET until = %v (ok=%v), want 6ms", nav.Until, ok)
	}
	if blk, ok := log.first(ProbeNAVBlockedStart); !ok || blk.At != sim.Millisecond {
		t.Errorf("NAVBLK-BEG at %v (ok=%v), want 1ms", blk.At, ok)
	}
	if end, ok := log.first(ProbeNAVBlockedEnd); !ok || end.At != 6*sim.Millisecond {
		t.Errorf("NAVBLK-END at %v (ok=%v), want 6ms", end.At, ok)
	}
	if exp, ok := log.first(ProbeNAVExpire); !ok || exp.At != 6*sim.Millisecond {
		t.Errorf("NAV-EXP at %v (ok=%v), want 6ms", exp.At, ok)
	}
	k := log.kinds()
	if k[ProbeBusyStart] != 1 || k[ProbeBusyEnd] != 1 {
		t.Errorf("busy events = %d/%d, want 1/1", k[ProbeBusyStart], k[ProbeBusyEnd])
	}
}

// TestProbeQueueDrop floods a tiny queue and expects a drop probe carrying
// the queue length.
func TestProbeQueueDrop(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	_, d := newTestDCF(t, ch, up, Config{UseRTSCTS: true, QueueCap: 2})
	log := &probeLog{}
	d.SetProbe(log)
	for i := 0; i < 5; i++ {
		d.Send(2, nil, 1024)
	}
	k := log.kinds()
	if k[ProbeQueueDrop] == 0 {
		t.Fatal("no Q-DROP probe despite overflow")
	}
	drop, _ := log.first(ProbeQueueDrop)
	if drop.QueueLen != 2 {
		t.Errorf("Q-DROP qlen = %d, want 2", drop.QueueLen)
	}
}

// TestNAVBlockedClosesOpenInterval pins the snapshot-before-expiry edge:
// NAVBlocked() must include the still-open NAV-only interval when the
// accounting is read before the NAV-expiry event has fired.
func TestNAVBlockedClosesOpenInterval(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{})

	// NAV set at t=1ms until t=6ms.
	sched.Schedule(sim.Millisecond, func() {
		d.RxEnd(&Frame{Type: FrameCTS, Src: 7, Dst: 8, Duration: 5 * sim.Millisecond, MACBytes: 14},
			RxInfo{Decoded: true, RSSIDBm: -50})
	})
	// Snapshot mid-interval: the expiry at 6ms has not fired, yet the 2ms
	// spent NAV-blocked so far must be reported.
	sched.RunUntil(3 * sim.Millisecond)
	if got := d.NAVBlocked(); got != 2*sim.Millisecond {
		t.Errorf("mid-interval NAVBlocked = %v, want 2ms", got)
	}
	// A second snapshot later in the same open interval grows accordingly.
	sched.RunUntil(5 * sim.Millisecond)
	if got := d.NAVBlocked(); got != 4*sim.Millisecond {
		t.Errorf("later NAVBlocked = %v, want 4ms", got)
	}
	// After expiry the closed interval matches the full NAV span and stops
	// growing.
	sched.RunUntil(20 * sim.Millisecond)
	if got := d.NAVBlocked(); got != 5*sim.Millisecond {
		t.Errorf("final NAVBlocked = %v, want 5ms", got)
	}
}

// TestProbeDisabledIsFree asserts the disabled-probe fast path performs no
// allocations: the nil check compiles to a branch and the event struct is
// never materialized.
func TestProbeDisabledIsFree(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{})
	// Warm the MAC: first Send allocates queue/frame state.
	d.Send(2, nil, 1024)
	sched.RunUntil(sim.Second)
	at := sim.Second
	cts := &Frame{Type: FrameCTS, Src: 7, Dst: 8, Duration: 50 * sim.Microsecond, MACBytes: 14}
	allocs := testing.AllocsPerRun(100, func() {
		// NAV update + expiry + blocked-start/end would each emit probes;
		// with no probe attached they must cost nothing beyond the MAC
		// work itself, which recycles its timer nodes once the scheduler
		// runs the expiry.
		d.RxEnd(cts, RxInfo{Decoded: true, RSSIDBm: -50})
		d.ChannelBusy(true)
		d.ChannelBusy(false)
		at += sim.Millisecond
		sched.RunUntil(at)
	})
	if allocs != 0 {
		t.Errorf("disabled-probe NAV/busy path allocates %.1f/op, want 0", allocs)
	}
}
