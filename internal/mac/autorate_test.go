package mac

import (
	"testing"
	"testing/quick"
)

func TestARFStartsAtTop(t *testing.T) {
	a := NewARF(Rates80211B(), 0, 0)
	if got := a.DataRate(1); got != 11_000_000 {
		t.Errorf("initial rate = %d, want 11M", got)
	}
}

func TestARFDownshiftOnFailures(t *testing.T) {
	a := NewARF(Rates80211B(), 10, 2)
	a.OnTxOutcome(1, false)
	if a.DataRate(1) != 11_000_000 {
		t.Error("downshifted after a single failure")
	}
	a.OnTxOutcome(1, false)
	if a.DataRate(1) != 5_500_000 {
		t.Errorf("rate after 2 failures = %d, want 5.5M", a.DataRate(1))
	}
	// Keep failing to the floor; never below the lowest rate.
	for i := 0; i < 20; i++ {
		a.OnTxOutcome(1, false)
	}
	if a.DataRate(1) != 1_000_000 {
		t.Errorf("floor rate = %d, want 1M", a.DataRate(1))
	}
}

func TestARFUpshiftAfterSuccesses(t *testing.T) {
	a := NewARF(Rates80211B(), 10, 2)
	// Drop to 5.5M first.
	a.OnTxOutcome(1, false)
	a.OnTxOutcome(1, false)
	for i := 0; i < 9; i++ {
		a.OnTxOutcome(1, true)
	}
	if a.DataRate(1) != 5_500_000 {
		t.Error("upshifted before the success threshold")
	}
	a.OnTxOutcome(1, true)
	if a.DataRate(1) != 11_000_000 {
		t.Errorf("rate after 10 successes = %d, want 11M", a.DataRate(1))
	}
	// The ceiling holds.
	for i := 0; i < 30; i++ {
		a.OnTxOutcome(1, true)
	}
	if a.DataRate(1) != 11_000_000 {
		t.Error("exceeded the ladder ceiling")
	}
}

func TestARFFailureResetsSuccessStreak(t *testing.T) {
	a := NewARF(Rates80211B(), 10, 2)
	a.OnTxOutcome(1, false)
	a.OnTxOutcome(1, false) // at 5.5M
	for i := 0; i < 9; i++ {
		a.OnTxOutcome(1, true)
	}
	a.OnTxOutcome(1, false) // streak broken
	for i := 0; i < 9; i++ {
		a.OnTxOutcome(1, true)
	}
	if a.DataRate(1) != 5_500_000 {
		t.Error("success streak survived a failure")
	}
}

func TestARFPerDestinationState(t *testing.T) {
	a := NewARF(Rates80211B(), 10, 2)
	a.OnTxOutcome(1, false)
	a.OnTxOutcome(1, false)
	if a.DataRate(1) == a.DataRate(2) {
		t.Error("destination 2 shares destination 1's state")
	}
	if a.DataRate(2) != 11_000_000 {
		t.Error("fresh destination not at the top rate")
	}
}

func TestARFValidation(t *testing.T) {
	for _, tt := range []struct {
		name  string
		rates []int64
	}{
		{"empty ladder", nil},
		{"non-ascending", []int64{2_000_000, 1_000_000}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			NewARF(tt.rates, 0, 0)
		})
	}
}

// Property: the selected rate is always a ladder member, under any
// outcome sequence.
func TestPropertyARFRateInLadder(t *testing.T) {
	ladder := Rates80211A()
	member := make(map[int64]bool, len(ladder))
	for _, r := range ladder {
		member[r] = true
	}
	f := func(outcomes []bool) bool {
		a := NewARF(ladder, 5, 2)
		for _, ok := range outcomes {
			a.OnTxOutcome(3, ok)
			if !member[a.DataRate(3)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
