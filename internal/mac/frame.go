// Package mac implements the IEEE 802.11 DCF MAC layer: RTS/CTS/DATA/ACK
// exchanges, physical + virtual carrier sense (NAV), binary exponential
// backoff, retransmission limits, and EIFS deferral. It exposes the two
// hook surfaces the paper's contribution plugs into:
//
//   - ReceiverPolicy: how a node fills the duration (NAV) field of frames it
//     transmits and how it reacts to corrupted or overheard frames. The
//     greedy misbehaviors (package greedy) are ReceiverPolicies.
//   - Observer: how a node vets NAV values and MAC ACKs it receives. The
//     GRC countermeasure (package detect) is an Observer.
package mac

import (
	"fmt"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// NodeID identifies a station on the shared medium.
type NodeID int

// BroadcastID addresses a frame to every station.
const BroadcastID NodeID = -1

// FrameType enumerates the 802.11 frame types the DCF exchanges.
type FrameType int

const (
	// FrameRTS is a request-to-send control frame.
	FrameRTS FrameType = iota + 1
	// FrameCTS is a clear-to-send control frame.
	FrameCTS
	// FrameData is a data frame (MSDU + MAC header).
	FrameData
	// FrameACK is a MAC-layer acknowledgment.
	FrameACK
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	case FrameData:
		return "DATA"
	case FrameACK:
		return "ACK"
	default:
		return fmt.Sprintf("FrameType(%d)", int(t))
	}
}

// Frame is an on-air 802.11 frame. Control frames carry no payload.
//
// Src is the transmitter address the frame *claims* (Address2); for a
// spoofed ACK it names the impersonated receiver, not the actual
// transmitter. The medium computes signal strength from the actual
// transmitting radio, which is what makes RSSI-based spoof detection
// possible.
type Frame struct {
	Type FrameType
	Src  NodeID
	Dst  NodeID
	// Duration is the NAV value carried in the MAC duration field.
	Duration sim.Time
	// MACBytes is the frame size on the air, including MAC header and FCS.
	MACBytes int
	// Seq is the MAC sequence number, used for duplicate detection on
	// retransmitted data frames.
	Seq uint16
	// Retry marks a retransmission.
	Retry bool
	// TxRate is the PHY rate (bits/s) the frame was transmitted at, set
	// by the MAC at transmission time. Rate-aware channel error models
	// use it (auto-rate extension).
	TxRate int64
	// Payload carries the upper-layer packet for data frames.
	Payload any
	// PayloadBytes is the upper-layer packet size carried by a data frame.
	PayloadBytes int

	// pool and refs implement recycled frames (see FramePool). Both stay
	// zero for plain &Frame{} literals, which Retain/Release then ignore.
	pool *FramePool
	refs int32
}

// String implements fmt.Stringer for debugging traces.
func (f *Frame) String() string {
	return fmt.Sprintf("%s %d->%d seq=%d dur=%v len=%dB",
		f.Type, f.Src, f.Dst, f.Seq, f.Duration, f.MACBytes)
}

// IsControl reports whether the frame is RTS, CTS, or ACK.
func (f *Frame) IsControl() bool { return f.Type != FrameData }

// Durations of the standard 802.11 virtual-carrier-sense reservations.
// These are the *correct* values; greedy receivers inflate them.

// RTSNAV is the duration an RTS reserves: CTS + DATA + ACK + 3 SIFS, with
// the data frame at the band's configured data rate.
func RTSNAV(p phys.Params, dataMACBytes int) sim.Time {
	return RTSNAVAtRate(p, dataMACBytes, p.DataRateBps)
}

// RTSNAVAtRate is RTSNAV with an explicit data rate (auto-rate senders
// reserve airtime for the rate they are about to use).
func RTSNAVAtRate(p phys.Params, dataMACBytes int, dataRateBps int64) sim.Time {
	return 3*p.SIFS +
		p.TxDuration(phys.CTSFrameBytes, p.BasicRateBps) +
		p.TxDuration(dataMACBytes, dataRateBps) +
		p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps)
}

// CTSNAVFromRTS is the duration a CTS should carry in response to an RTS
// with the given duration field: the RTS reservation minus SIFS and the CTS
// airtime itself.
func CTSNAVFromRTS(p phys.Params, rtsDuration sim.Time) sim.Time {
	nav := rtsDuration - p.SIFS - p.TxDuration(phys.CTSFrameBytes, p.BasicRateBps)
	if nav < 0 {
		nav = 0
	}
	return nav
}

// DataNAV is the duration a non-fragmented data frame reserves: SIFS + ACK.
func DataNAV(p phys.Params) sim.Time {
	return p.SIFS + p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps)
}

// ACKNAV is the duration a final (non-fragment) ACK reserves: zero.
func ACKNAV() sim.Time { return 0 }

// ClampNAV bounds a duration field to the protocol maximum of 32767 µs.
func ClampNAV(d sim.Time) sim.Time {
	if d < 0 {
		return 0
	}
	if max := phys.MaxNAV(); d > max {
		return max
	}
	return d
}
