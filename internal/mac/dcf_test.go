package mac

import (
	"testing"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// blackHoleChannel swallows every transmission (nothing is ever received),
// recording what was sent. It drives the sender's timeout/retry machinery.
type blackHoleChannel struct {
	sent []*Frame
}

func (c *blackHoleChannel) Transmit(_ NodeID, f *Frame, _ sim.Time) {
	c.sent = append(c.sent, f)
}

type recordingUpper struct {
	delivered []*Frame
	done      []bool
}

func (u *recordingUpper) DeliverData(f *Frame, _ float64) { u.delivered = append(u.delivered, f) }
func (u *recordingUpper) TxDone(_ *Frame, ok bool)        { u.done = append(u.done, ok) }

func newTestDCF(t *testing.T, ch Channel, up Upper, cfg Config) (*sim.Scheduler, *DCF) {
	t.Helper()
	sched := sim.NewScheduler(42)
	if cfg.Params.Band == 0 {
		cfg.Params = phys.Params80211B()
	}
	if cfg.ID == 0 {
		cfg.ID = 1
	}
	return sched, New(sched, ch, up, cfg)
}

func TestRetryLimitDropsMSDUWithoutRTS(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{})
	if !d.Send(2, nil, 1024) {
		t.Fatal("Send rejected")
	}
	sched.RunUntil(2 * sim.Second)

	// LongRetryLimit = 4: initial + 4 retries = 5 data transmissions.
	if got := len(ch.sent); got != 5 {
		t.Errorf("sent %d data frames, want 5 (1 + 4 retries)", got)
	}
	if len(up.done) != 1 || up.done[0] {
		t.Errorf("TxDone = %v, want one failure", up.done)
	}
	c := d.Counters()
	if c.MSDURetryDrop != 1 || c.ACKTimeouts != 5 {
		t.Errorf("drop=%d timeouts=%d, want 1 and 5", c.MSDURetryDrop, c.ACKTimeouts)
	}
	// Retransmitted frames carry the Retry flag and the same sequence.
	for i, f := range ch.sent {
		if i > 0 && !f.Retry {
			t.Errorf("frame %d missing retry flag", i)
		}
		if f.Seq != ch.sent[0].Seq {
			t.Errorf("retransmission changed sequence number")
		}
	}
}

func TestRetryLimitDropsMSDUWithRTS(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{UseRTSCTS: true})
	d.Send(2, nil, 1024)
	sched.RunUntil(2 * sim.Second)

	// ShortRetryLimit = 7: 8 RTS attempts, no data ever sent.
	rts := 0
	for _, f := range ch.sent {
		if f.Type == FrameRTS {
			rts++
		} else {
			t.Errorf("unexpected %v frame on a dead channel", f.Type)
		}
	}
	if rts != 8 {
		t.Errorf("sent %d RTS, want 8 (1 + 7 retries)", rts)
	}
	if d.Counters().MSDURetryDrop != 1 {
		t.Error("MSDU not dropped after RTS retries")
	}
}

func TestCWDoublingAndBounds(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{})
	// Saturate so CW history spans many failures.
	for i := 0; i < 5; i++ {
		d.Send(2, nil, 1024)
	}
	sched.RunUntil(10 * sim.Second)

	c := d.Counters()
	p := phys.Params80211B()
	// Average CW must exceed CWmin (failures double it) and no draw may
	// exceed CWmax.
	if c.AvgCW() <= float64(p.CWMin) {
		t.Errorf("avg CW %.1f did not grow beyond CWmin on a dead channel", c.AvgCW())
	}
	if c.AvgCW() > float64(p.CWMax) {
		t.Errorf("avg CW %.1f exceeds CWmax", c.AvgCW())
	}
}

func TestCWMinCapEmulation(t *testing.T) {
	// Table IX emulation: CW pinned at CWmin toward the greedy receiver.
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{
		CWMinCapTo: map[NodeID]bool{2: true},
	})
	for i := 0; i < 5; i++ {
		d.Send(2, nil, 1024)
	}
	sched.RunUntil(10 * sim.Second)

	c := d.Counters()
	if got := c.AvgCW(); got != float64(phys.Params80211B().CWMin) {
		t.Errorf("avg CW with CWMin cap = %.1f, want %d", got, phys.Params80211B().CWMin)
	}
}

func TestSpoofEmulationSkipsRetries(t *testing.T) {
	// Table VIII emulation: ACK timeouts to the victim destination are
	// treated as success — exactly one transmission per MSDU, reported ok.
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	sched, d := newTestDCF(t, ch, up, Config{
		SpoofEmulationTo: map[NodeID]bool{2: true},
	})
	d.Send(2, nil, 1024)
	d.Send(2, nil, 1024)
	sched.RunUntil(1 * sim.Second)

	if got := len(ch.sent); got != 2 {
		t.Errorf("sent %d frames, want 2 (no retransmissions)", got)
	}
	if len(up.done) != 2 || !up.done[0] || !up.done[1] {
		t.Errorf("TxDone = %v, want two successes", up.done)
	}
	if d.Counters().ACKTimeouts != 0 {
		t.Error("spoof emulation should not count ACK timeouts")
	}
}

func TestQueueCapacityDrops(t *testing.T) {
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	_, d := newTestDCF(t, ch, up, Config{QueueCap: 3})
	accepted := 0
	for i := 0; i < 10; i++ {
		if d.Send(2, nil, 100) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Errorf("accepted %d, want 3 (queue cap)", accepted)
	}
	if d.Counters().MSDUQueueDrop != 7 {
		t.Errorf("queue drops = %d, want 7", d.Counters().MSDUQueueDrop)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	ch := &blackHoleChannel{}
	_, d := newTestDCF(t, ch, &recordingUpper{}, Config{})
	defer func() {
		if recover() == nil {
			t.Error("sending to self did not panic")
		}
	}()
	d.Send(1, nil, 100)
}

func TestNewValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Error("New with nil channel did not panic")
		}
	}()
	New(sched, nil, &recordingUpper{}, Config{ID: 1, Params: phys.Params80211B()})
}

// loopChannel wires two DCFs together with perfect reception and correct
// airtime/busy signaling — a minimal two-station medium.
type loopChannel struct {
	sched *sim.Scheduler
	peers map[NodeID]Receiver
	rssi  float64
}

func (c *loopChannel) Transmit(src NodeID, f *Frame, airtime sim.Time) {
	for id, rcv := range c.peers {
		if id == src {
			continue
		}
		rcv := rcv
		c.sched.Schedule(0, func() { rcv.ChannelBusy(true) })
		c.sched.Schedule(airtime, func() {
			rcv.ChannelBusy(false)
			rcv.RxEnd(f, RxInfo{Decoded: true, RSSIDBm: c.rssi})
		})
	}
}

func TestDataAckExchange(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &loopChannel{sched: sched, peers: make(map[NodeID]Receiver), rssi: -50}
	upA, upB := &recordingUpper{}, &recordingUpper{}
	p := phys.Params80211B()
	a := New(sched, ch, upA, Config{ID: 1, Params: p})
	b := New(sched, ch, upB, Config{ID: 2, Params: p})
	ch.peers[1] = a
	ch.peers[2] = b

	payload := "hello"
	a.Send(2, payload, 1024)
	sched.RunUntil(sim.Second)

	if len(upB.delivered) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(upB.delivered))
	}
	if got := upB.delivered[0].Payload; got != payload {
		t.Errorf("payload = %v, want %v", got, payload)
	}
	if len(upA.done) != 1 || !upA.done[0] {
		t.Errorf("TxDone = %v, want one success", upA.done)
	}
	if b.Counters().ACKSent != 1 {
		t.Errorf("receiver sent %d ACKs, want 1", b.Counters().ACKSent)
	}
	if a.Counters().ACKTimeouts != 0 {
		t.Error("sender timed out despite delivered ACK")
	}
}

func TestRTSCTSExchange(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &loopChannel{sched: sched, peers: make(map[NodeID]Receiver), rssi: -50}
	upA, upB := &recordingUpper{}, &recordingUpper{}
	p := phys.Params80211B()
	a := New(sched, ch, upA, Config{ID: 1, Params: p, UseRTSCTS: true})
	b := New(sched, ch, upB, Config{ID: 2, Params: p, UseRTSCTS: true})
	ch.peers[1] = a
	ch.peers[2] = b

	a.Send(2, nil, 1024)
	sched.RunUntil(sim.Second)

	ca, cb := a.Counters(), b.Counters()
	if ca.RTSSent != 1 || cb.CTSSent != 1 || ca.DataSent != 1 || cb.ACKSent != 1 {
		t.Errorf("exchange counts RTS=%d CTS=%d DATA=%d ACK=%d, want all 1",
			ca.RTSSent, cb.CTSSent, ca.DataSent, cb.ACKSent)
	}
	if len(upB.delivered) != 1 {
		t.Errorf("delivered %d, want 1", len(upB.delivered))
	}
}

func TestDuplicateDataDetected(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &loopChannel{sched: sched, peers: make(map[NodeID]Receiver), rssi: -50}
	up := &recordingUpper{}
	p := phys.Params80211B()
	b := New(sched, ch, up, Config{ID: 2, Params: p})
	ch.peers[2] = b

	f := &Frame{Type: FrameData, Src: 9, Dst: 2, Seq: 5, MACBytes: 1052, PayloadBytes: 1024}
	b.RxEnd(f, RxInfo{Decoded: true, RSSIDBm: -50})
	b.RxEnd(f, RxInfo{Decoded: true, RSSIDBm: -50}) // retransmission
	sched.RunUntil(sim.Millisecond)

	if len(up.delivered) != 1 {
		t.Errorf("delivered %d, want 1 (duplicate suppressed)", len(up.delivered))
	}
	if b.Counters().DataDuplicates != 1 {
		t.Errorf("duplicates = %d, want 1", b.Counters().DataDuplicates)
	}
}

func TestNAVSuppressesCTSResponse(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	p := phys.Params80211B()
	b := New(sched, ch, &recordingUpper{}, Config{ID: 2, Params: p})

	// Set B's NAV via an overheard frame, then deliver an RTS for B.
	b.RxEnd(&Frame{Type: FrameCTS, Src: 7, Dst: 8, Duration: 5 * sim.Millisecond, MACBytes: 14},
		RxInfo{Decoded: true, RSSIDBm: -50})
	b.RxEnd(&Frame{Type: FrameRTS, Src: 9, Dst: 2, Duration: 2 * sim.Millisecond, MACBytes: 20},
		RxInfo{Decoded: true, RSSIDBm: -50})
	sched.RunUntil(sim.Millisecond)

	if len(ch.sent) != 0 {
		t.Errorf("station with active NAV answered RTS: sent %v", ch.sent)
	}
	// After NAV expiry a fresh RTS must be answered.
	sched.RunUntil(6 * sim.Millisecond)
	b.RxEnd(&Frame{Type: FrameRTS, Src: 9, Dst: 2, Duration: 2 * sim.Millisecond, MACBytes: 20},
		RxInfo{Decoded: true, RSSIDBm: -50})
	sched.RunUntil(7 * sim.Millisecond)
	if len(ch.sent) != 1 || ch.sent[0].Type != FrameCTS {
		t.Errorf("idle-NAV station did not CTS: %v", ch.sent)
	}
}

func TestNAVIgnoredWhenAddressedToSelf(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	p := phys.Params80211B()
	b := New(sched, ch, &recordingUpper{}, Config{ID: 2, Params: p})

	// A CTS addressed to this station must not set its NAV — the rule
	// that makes NAV inflation a *greedy* attack rather than self-harm.
	b.RxEnd(&Frame{Type: FrameCTS, Src: 7, Dst: 2, Duration: 30 * sim.Millisecond, MACBytes: 14},
		RxInfo{Decoded: true, RSSIDBm: -50})
	if nav := b.NAVUntil(); nav != 0 {
		t.Errorf("NAV set to %v by a self-addressed frame", nav)
	}
	// An overheard CTS (addressed elsewhere) must set it.
	b.RxEnd(&Frame{Type: FrameCTS, Src: 7, Dst: 9, Duration: 30 * sim.Millisecond, MACBytes: 14},
		RxInfo{Decoded: true, RSSIDBm: -50})
	if nav := b.NAVUntil(); nav != sched.Now()+30*sim.Millisecond {
		t.Errorf("NAV = %v, want 30ms out", nav)
	}
}

func TestNAVOnlyGrows(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	b := New(sched, ch, &recordingUpper{}, Config{ID: 2, Params: phys.Params80211B()})

	b.RxEnd(&Frame{Type: FrameCTS, Src: 7, Dst: 9, Duration: 20 * sim.Millisecond, MACBytes: 14},
		RxInfo{Decoded: true, RSSIDBm: -50})
	first := b.NAVUntil()
	b.RxEnd(&Frame{Type: FrameCTS, Src: 8, Dst: 9, Duration: 5 * sim.Millisecond, MACBytes: 14},
		RxInfo{Decoded: true, RSSIDBm: -50})
	if b.NAVUntil() != first {
		t.Error("shorter NAV overwrote a longer one")
	}
}

// rejectingObserver refuses every ACK — the GRC mitigation path.
type rejectingObserver struct{ PassiveObserver }

func (rejectingObserver) AcceptACK(*Frame, float64) bool { return false }

func TestObserverRejectedACKTriggersRetry(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &loopChannel{sched: sched, peers: make(map[NodeID]Receiver), rssi: -50}
	upA, upB := &recordingUpper{}, &recordingUpper{}
	p := phys.Params80211B()
	a := New(sched, ch, upA, Config{ID: 1, Params: p, Observer: rejectingObserver{}})
	b := New(sched, ch, upB, Config{ID: 2, Params: p})
	ch.peers[1] = a
	ch.peers[2] = b

	a.Send(2, nil, 1024)
	sched.RunUntil(2 * sim.Second)

	c := a.Counters()
	if c.ACKIgnored == 0 {
		t.Error("observer never consulted / ACKs never ignored")
	}
	if c.ACKTimeouts == 0 {
		t.Error("ignored ACKs should surface as timeouts and retries")
	}
	if len(upA.done) != 1 || upA.done[0] {
		t.Errorf("MSDU should eventually drop when every ACK is rejected: %v", upA.done)
	}
}

// spoofingPolicy spoofs an ACK for every sniffed data frame.
type spoofingPolicy struct{ NormalPolicy }

func (spoofingPolicy) SpoofSniffedData(*Frame) bool { return true }

func TestSpoofedACKFrameClaimsReceiverAddress(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	p := phys.Params80211B()
	g := New(sched, ch, &recordingUpper{}, Config{ID: 3, Params: p, Policy: spoofingPolicy{}})

	g.RxEnd(&Frame{Type: FrameData, Src: 1, Dst: 2, Seq: 1, MACBytes: 1052},
		RxInfo{Decoded: true, RSSIDBm: -50})
	sched.RunUntil(sim.Millisecond)

	if len(ch.sent) != 1 {
		t.Fatalf("spoofed %d frames, want 1", len(ch.sent))
	}
	ack := ch.sent[0]
	if ack.Type != FrameACK || ack.Src != 2 || ack.Dst != 1 {
		t.Errorf("spoofed ACK = %v, want ACK claiming 2->1", ack)
	}
	if g.Counters().SpoofedACKsSent != 1 {
		t.Error("spoofed ACK not counted")
	}
}

// fakingPolicy ACKs corrupted frames destined to the station.
type fakingPolicy struct{ NormalPolicy }

func (fakingPolicy) AckCorrupted(NodeID, phys.FrameCorruption) bool { return true }

func TestFakeACKOnCorruptedFrame(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	p := phys.Params80211B()
	g := New(sched, ch, &recordingUpper{}, Config{ID: 2, Params: p, Policy: fakingPolicy{}})

	// Corrupted frame with preserved addressing: fake ACK expected.
	g.RxEnd(&Frame{Type: FrameData, Src: 1, Dst: 2, Seq: 1, MACBytes: 1052},
		RxInfo{Decoded: false, Corruption: phys.FrameCorruption{Corrupted: true}, RSSIDBm: -50})
	sched.RunUntil(sim.Millisecond)
	if len(ch.sent) != 1 || ch.sent[0].Type != FrameACK {
		t.Fatalf("fake ACK not sent: %v", ch.sent)
	}
	if g.Counters().FakeACKsSent != 1 {
		t.Error("fake ACK not counted")
	}

	// Corrupted addressing: the greedy receiver cannot tell the frame was
	// for it, so no fake ACK.
	g.RxEnd(&Frame{Type: FrameData, Src: 1, Dst: 2, Seq: 2, MACBytes: 1052},
		RxInfo{Decoded: false, Corruption: phys.FrameCorruption{Corrupted: true, DstHit: true}, RSSIDBm: -50})
	sched.RunUntil(2 * sim.Millisecond)
	if len(ch.sent) != 1 {
		t.Error("fake ACK sent despite corrupted destination address")
	}
}

func TestEIFSAfterCorruption(t *testing.T) {
	// After a corrupted reception the next access waits EIFS, not DIFS.
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	p := phys.Params80211B()
	d := New(sched, ch, &recordingUpper{}, Config{ID: 1, Params: p})

	d.RxEnd(&Frame{Type: FrameData, Src: 3, Dst: 4, Seq: 1, MACBytes: 1052},
		RxInfo{Decoded: false, Corruption: phys.FrameCorruption{Corrupted: true}})
	d.Send(2, nil, 1024)
	sched.Run()

	if len(ch.sent) != 0 {
		// The frame will eventually send; what matters is when.
		t.Log("frame sent during Run, checking timing")
	}
	// Find the first transmission time by re-running deterministically.
	sched2 := sim.NewScheduler(42)
	ch2 := &blackHoleChannel{}
	d2 := New(sched2, ch2, &recordingUpper{}, Config{ID: 1, Params: p})
	var firstTx sim.Time = -1
	d2.RxEnd(&Frame{Type: FrameData, Src: 3, Dst: 4, Seq: 1, MACBytes: 1052},
		RxInfo{Decoded: false, Corruption: phys.FrameCorruption{Corrupted: true}})
	d2.Send(2, nil, 1024)
	for firstTx < 0 && sched2.Pending() > 0 {
		sched2.RunUntil(sched2.Now() + sim.Microsecond)
		if len(ch2.sent) > 0 && firstTx < 0 {
			firstTx = sched2.Now()
		}
	}
	if firstTx < p.EIFS() {
		t.Errorf("first tx at %v, want ≥ EIFS %v after corruption", firstTx, p.EIFS())
	}
}
