package mac

import (
	"fmt"

	"greedy80211/internal/sim"
)

// ProbeKind labels one MAC-internal state-machine event.
type ProbeKind int

const (
	// ProbeNAVUpdate fires when an overheard frame extends the NAV.
	ProbeNAVUpdate ProbeKind = iota + 1
	// ProbeNAVExpire fires when the virtual carrier sense clears.
	ProbeNAVExpire
	// ProbeNAVBlockedStart/End bracket intervals where the NAV alone holds
	// an otherwise-idle medium busy — the victim-side signature of an
	// inflated-NAV attack.
	ProbeNAVBlockedStart
	ProbeNAVBlockedEnd
	// ProbeBusyStart/End mirror the physical carrier-sense transitions the
	// medium reports to this station.
	ProbeBusyStart
	ProbeBusyEnd
	// ProbeBackoffDraw is a fresh backoff draw from [0, CW].
	ProbeBackoffDraw
	// ProbeBackoffResume starts (or restarts) the slot countdown.
	ProbeBackoffResume
	// ProbeBackoffFreeze pauses the countdown on a busy transition; Slots
	// carries the remaining count after the elapsed slots were consumed.
	ProbeBackoffFreeze
	// ProbeBackoffExpire is the countdown reaching zero.
	ProbeBackoffExpire
	// ProbeCWDouble/ProbeCWReset track the contention-window evolution.
	ProbeCWDouble
	ProbeCWReset
	// ProbeIFSDefer is an access attempt deferred until the IFS elapses;
	// EIFS reports the reason (EIFS after a corrupted reception, DIFS
	// otherwise). It may repeat within one wait when access is re-kicked.
	ProbeIFSDefer
	// ProbeRetry is a missing CTS (Long=false) or ACK (Long=true); Retries
	// is the counter after incrementing.
	ProbeRetry
	// ProbeEnqueue/ProbeQueueDrop are MSDU queue admissions and tail drops.
	ProbeEnqueue
	ProbeQueueDrop
	// ProbeTxContend is a transmission won through contention (RTS or
	// data); ProbeTxRespond is a SIFS-slot response (CTS, ACK, fake or
	// spoofed ACK, or the post-CTS data frame) that never carrier-senses.
	ProbeTxContend
	ProbeTxRespond
	// ProbeMSDUDone closes one MSDU's service: delivered (OK) or dropped
	// after the retry limit.
	ProbeMSDUDone
)

// String implements fmt.Stringer.
func (k ProbeKind) String() string {
	switch k {
	case ProbeNAVUpdate:
		return "NAV-SET"
	case ProbeNAVExpire:
		return "NAV-EXP"
	case ProbeNAVBlockedStart:
		return "NAVBLK-BEG"
	case ProbeNAVBlockedEnd:
		return "NAVBLK-END"
	case ProbeBusyStart:
		return "BUSY-BEG"
	case ProbeBusyEnd:
		return "BUSY-END"
	case ProbeBackoffDraw:
		return "BO-DRAW"
	case ProbeBackoffResume:
		return "BO-RESUME"
	case ProbeBackoffFreeze:
		return "BO-FREEZE"
	case ProbeBackoffExpire:
		return "BO-EXPIRE"
	case ProbeCWDouble:
		return "CW-DOUBLE"
	case ProbeCWReset:
		return "CW-RESET"
	case ProbeIFSDefer:
		return "IFS-DEFER"
	case ProbeRetry:
		return "RETRY"
	case ProbeEnqueue:
		return "ENQ"
	case ProbeQueueDrop:
		return "Q-DROP"
	case ProbeTxContend:
		return "TX-CONTEND"
	case ProbeTxRespond:
		return "TX-RESPOND"
	case ProbeMSDUDone:
		return "MSDU-DONE"
	default:
		return fmt.Sprintf("ProbeKind(%d)", int(k))
	}
}

// ProbeEvent is one MAC-internal event. It is a flat value struct so the
// emission sites build it on the stack inside a nil-probe guard: with no
// probe installed the tracing hooks cost one pointer comparison and zero
// allocations.
type ProbeEvent struct {
	Kind    ProbeKind
	At      sim.Time
	Station NodeID

	// Until is the NAV expiry (NAV events) or the IFS end (IFSDefer).
	Until sim.Time
	// CW is the contention window in play (draw, double, reset).
	CW int
	// Slots is the backoff slot count: drawn (draw), remaining (resume,
	// freeze), or zero (expire).
	Slots int
	// Retries is the short or long retry counter after a Retry event.
	Retries int
	// QueueLen is the MSDU queue length after an Enqueue or QueueDrop.
	QueueLen int
	// EIFS marks an IFSDefer caused by a corrupted reception.
	EIFS bool
	// Long distinguishes the long (ACK) from the short (CTS) retry counter.
	Long bool
	// OK reports MSDU delivery on MSDUDone.
	OK bool
	// Frame, Dst, and Seq identify the frame for queue, retry, transmit,
	// and lifecycle events.
	Frame FrameType
	Dst   NodeID
	Seq   uint16
}

// Probe observes MAC-internal events. Implementations must not call back
// into the DCF or mutate simulation state: they see a read-only event
// stream in scheduler order. The event is delivered by pointer to keep
// the ~100-byte struct off the interface-call path (it is the DCF's
// reused scratch buffer); it is only valid for the duration of the call,
// so implementations must copy whatever they keep.
type Probe interface {
	OnMACEvent(e *ProbeEvent)
}

// SetProbe installs (or, with nil, removes) the station's MAC probe. A
// station carries at most one probe; installing replaces the previous one.
// Call it before the simulation runs.
func (d *DCF) SetProbe(p Probe) { d.probe = p }

// emit is the single funnel every probe site goes through: callers fill
// d.pe (the reused scratch event) and call emit, which stamps time and
// station and hands the probe a pointer. Callers must check
// d.probe != nil first so the ProbeEvent literal is never built when
// tracing is off. Writing the literal straight into d.pe instead of
// passing it by value saves a ~100-byte copy per probe event — with
// tens of thousands of events per simulated second that copy was a
// visible slice of the tracing-on overhead.
func (d *DCF) emit() {
	d.pe.At = d.sched.Now()
	d.pe.Station = d.cfg.ID
	d.probe.OnMACEvent(&d.pe)
}
