package mac

import "testing"

func TestFramePoolLifecycle(t *testing.T) {
	p := NewFramePool()
	f := p.Get()
	f.Type = FrameData
	f.Src, f.Dst, f.Seq = 1, 2, 9
	f.Release()
	if st := p.Stats(); st.Live != 0 || st.Gets != 1 || st.Puts != 1 {
		t.Errorf("after release: %+v", st)
	}
	g := p.Get()
	if g != f {
		t.Error("pool did not recycle the released frame")
	}
	if g.Type != 0 || g.Src != 0 || g.Dst != 0 || g.Seq != 0 {
		t.Errorf("recycled frame not zeroed: %+v", g)
	}
}

func TestFrameRetainRelease(t *testing.T) {
	p := NewFramePool()
	f := p.Get()
	f.Retain() // e.g. the medium holding it across an arrival
	f.Release()
	if st := p.Stats(); st.Live != 1 {
		t.Errorf("live = %d after one of two refs dropped, want 1", st.Live)
	}
	f.Release()
	if st := p.Stats(); st.Live != 0 {
		t.Errorf("live = %d after final release, want 0", st.Live)
	}
}

func TestFrameDoubleReleasePanics(t *testing.T) {
	p := NewFramePool()
	f := p.Get()
	f.Release()
	defer func() {
		if recover() == nil {
			t.Error("second Release did not panic")
		}
	}()
	f.Release()
}

func TestFrameRetainAfterReleasePanics(t *testing.T) {
	p := NewFramePool()
	f := p.Get()
	f.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain of a released frame did not panic")
		}
	}()
	f.Retain()
}

func TestUnpooledFrameNoOps(t *testing.T) {
	var p *FramePool
	f := p.Get() // nil pool: plain heap frame
	f.Retain()
	f.Release()
	f.Release() // still a no-op, never panics
	var nilFrame *Frame
	nilFrame.Retain()
	nilFrame.Release()
	if st := p.Stats(); st.Gets != 0 || st.Live != 0 {
		t.Errorf("nil pool stats nonzero: %+v", st)
	}
}
