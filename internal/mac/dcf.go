package mac

import (
	"fmt"
	"math/rand"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// accessState tracks the DCF's transmitter-side progress for the MSDU at
// the head of its queue.
type accessState int

const (
	accessIdle    accessState = iota + 1 // nothing to send
	accessContend                        // waiting out IFS + backoff
	accessTxRTS                          // RTS on the air
	accessWaitCTS                        // CTS timeout armed
	accessTxData                         // data frame on the air
	accessWaitACK                        // ACK timeout armed
)

// respKind labels the SIFS-scheduled response a station owes.
type respKind int

const (
	respNone respKind = iota
	respCTS
	respACK
	respFakeACK    // ACK for a corrupted frame (misbehavior 3)
	respSpoofedACK // ACK impersonating another receiver (misbehavior 2)
	respOwnData    // our data frame following a received CTS
)

// Config parameterizes a DCF instance.
type Config struct {
	// ID is the station's address on the medium.
	ID NodeID
	// Params carries the band constants (timings, CW bounds, rates).
	Params phys.Params
	// UseRTSCTS enables the RTS/CTS exchange for MSDUs of at least
	// RTSThresholdBytes MAC bytes. The paper's simulations enable it.
	UseRTSCTS bool
	// RTSThresholdBytes is the minimum MAC frame size protected by
	// RTS/CTS; zero protects everything (ns-2's default).
	RTSThresholdBytes int
	// QueueCap bounds the MSDU queue; zero means the default of 50
	// (ns-2's DropTail default).
	QueueCap int
	// Policy is the station's feedback behavior; nil means NormalPolicy.
	Policy ReceiverPolicy
	// Observer vets incoming NAV values and ACKs; nil means
	// PassiveObserver.
	Observer Observer
	// SpoofEmulationTo lists destinations for which an ACK timeout is
	// treated as success without retransmission — the testbed's emulation
	// of a spoofed-ACK victim (Table VIII).
	SpoofEmulationTo map[NodeID]bool
	// CWMinCapTo lists destinations for which the contention window is
	// pinned at CWMin — the testbed's emulation of a fake-ACK beneficiary
	// (Table IX).
	CWMinCapTo map[NodeID]bool
	// AutoRate selects per-destination data rates when non-nil (auto-rate
	// extension); nil uses Params.DataRateBps for every data frame.
	AutoRate RateController
	// Frames recycles the frames this station builds (data, RTS, CTS,
	// ACK, spoof). A nil pool heap-allocates every frame, which is the
	// behavior tests and cold paths rely on; worlds share one pool across
	// all their stations.
	Frames *FramePool
}

// DCF is one station's 802.11 distributed coordination function. It is
// driven entirely by the simulation scheduler: not safe for concurrent use.
type DCF struct {
	cfg      Config
	sched    *sim.Scheduler
	channel  Channel
	upper    Upper
	rng      *rand.Rand
	policy   ReceiverPolicy
	observer Observer

	// Medium state.
	busyPhys    bool
	txUntil     sim.Time
	navUntil    sim.Time
	wasIdle     bool
	lastBusyEnd sim.Time
	useEIFS     bool

	// Transmit-side state.
	access           accessState
	queue            []*Frame
	current          *Frame
	seq              uint16
	shortRetries     int
	longRetries      int
	cw               int
	backoffRemaining int
	drawPending      bool
	needBackoff      bool
	inCountdown      bool
	countdownStart   sim.Time

	// Pending SIFS response.
	respFrame *Frame
	respWhat  respKind

	// Duplicate detection: last accepted sequence number per source.
	lastSeq map[NodeID]uint16

	accessTimer *sim.Timer
	waitTimer   *sim.Timer
	respTimer   *sim.Timer
	txTimer     *sim.Timer
	navTimer    *sim.Timer

	counters Counters

	// probe, when non-nil, observes MAC-internal state-machine events
	// (see probe.go). Every emission site guards on the nil check, so a
	// station without a probe pays nothing. pe is the scratch event the
	// sites fill before calling emit, which delivers a pointer to it —
	// one struct build per probe event instead of build-plus-copy.
	probe Probe
	pe    ProbeEvent

	// Always-on telemetry accounting (see internal/metrics): time the
	// virtual carrier sense alone held the medium busy, and time spent
	// counting down backoff slots. Both keep an open interval that the
	// accessors close against the current clock.
	navOnly      bool
	navOnlySince sim.Time
	navBlocked   sim.Time
	backoffWait  sim.Time
}

// New constructs a DCF bound to the scheduler, medium, and upper layer.
func New(sched *sim.Scheduler, channel Channel, upper Upper, cfg Config) *DCF {
	if sched == nil || channel == nil || upper == nil {
		panic("mac: New requires scheduler, channel, and upper layer")
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 50
	}
	d := &DCF{
		cfg:      cfg,
		sched:    sched,
		channel:  channel,
		upper:    upper,
		rng:      sched.RNG(),
		policy:   cfg.Policy,
		observer: cfg.Observer,
		access:   accessIdle,
		cw:       cfg.Params.CWMin,
		wasIdle:  true,
		lastSeq:  make(map[NodeID]uint16),
	}
	if d.policy == nil {
		d.policy = NormalPolicy{}
	}
	if d.observer == nil {
		d.observer = PassiveObserver{}
	}
	d.accessTimer = sim.NewTimer(sched, d.onAccessTimer)
	d.waitTimer = sim.NewTimer(sched, d.onResponseTimeout)
	d.respTimer = sim.NewTimer(sched, d.onRespond)
	d.txTimer = sim.NewTimer(sched, d.onTxDone)
	d.navTimer = sim.NewTimer(sched, d.onNAVExpire)
	return d
}

// ID reports the station address.
func (d *DCF) ID() NodeID { return d.cfg.ID }

// Counters exposes the station's accumulated MAC statistics.
func (d *DCF) Counters() *Counters { return &d.counters }

// NAVBlocked reports the cumulative time during which only this station's
// virtual carrier sense (NAV) held the medium busy — the physical channel
// was idle and the station was not transmitting. Inflated-NAV attacks
// show up here on their victims.
func (d *DCF) NAVBlocked() sim.Time {
	t := d.navBlocked
	if d.navOnly {
		// Close the open interval: the NAV expiry event may not have
		// fired yet if the run ended first.
		end := min(d.sched.Now(), d.navUntil)
		if end > d.navOnlySince {
			t += end - d.navOnlySince
		}
	}
	return t
}

// BackoffWait reports the cumulative time this station spent counting
// down backoff slots on an idle medium.
func (d *DCF) BackoffWait() sim.Time {
	t := d.backoffWait
	if d.inCountdown {
		t += d.sched.Now() - d.countdownStart
	}
	return t
}

// QueueLen reports the number of MSDUs queued behind the one in service.
func (d *DCF) QueueLen() int { return len(d.queue) }

// NAVUntil reports when the station's virtual carrier sense clears.
func (d *DCF) NAVUntil() sim.Time { return d.navUntil }

// Send enqueues an upper-layer packet for transmission to dst. It reports
// false when the queue is full and the packet was dropped.
func (d *DCF) Send(dst NodeID, payload any, payloadBytes int) bool {
	if dst == d.cfg.ID {
		panic(fmt.Sprintf("mac: station %d sending to itself", d.cfg.ID))
	}
	d.counters.MSDUEnqueued++
	if len(d.queue) >= d.cfg.QueueCap {
		d.counters.MSDUQueueDrop++
		if d.probe != nil {
			d.pe = ProbeEvent{Kind: ProbeQueueDrop, QueueLen: len(d.queue), Dst: dst}
			d.emit()
		}
		return false
	}
	d.seq++
	f := d.cfg.Frames.Get()
	f.Type = FrameData
	f.Src = d.cfg.ID
	f.Dst = dst
	f.MACBytes = payloadBytes + phys.DataHeaderBytes
	f.Seq = d.seq
	f.Payload = payload
	f.PayloadBytes = payloadBytes
	d.queue = append(d.queue, f)
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeEnqueue, QueueLen: len(d.queue), Frame: FrameData, Dst: dst, Seq: f.Seq}
		d.emit()
	}
	if d.access == accessIdle {
		d.access = accessContend
		// IEEE 802.11 §9.2.5.1: immediate transmission is allowed only
		// when the medium has been idle for at least an IFS; a packet
		// arriving to a busy (or too-recently-busy) medium owes a backoff.
		if !d.needBackoff &&
			(!d.mediumIdle() || d.sched.Now() < d.lastBusyEnd+d.currentIFS()) {
			d.needBackoff = true
			d.drawPending = true
		}
		d.kickAccess()
	}
	return true
}

// --- medium-state bookkeeping -------------------------------------------

func (d *DCF) mediumIdle() bool {
	now := d.sched.Now()
	return !d.busyPhys && now >= d.txUntil && now >= d.navUntil
}

// refresh recomputes the idle/busy view of the medium and reacts to
// transitions. It is called after any change to the inputs of mediumIdle.
func (d *DCF) refresh() {
	idle := d.mediumIdle()
	// NAV-blocked accounting: every input of the "NAV alone blocks an
	// otherwise-idle channel" predicate changes only through paths that
	// call refresh (ChannelBusy, updateNAV, transmit, onTxDone, and the
	// NAV expiry timer), so transitions are observed exactly.
	now := d.sched.Now()
	navOnly := !d.busyPhys && now >= d.txUntil && now < d.navUntil
	if navOnly != d.navOnly {
		if d.navOnly {
			d.navBlocked += now - d.navOnlySince
			if d.probe != nil {
				d.pe = ProbeEvent{Kind: ProbeNAVBlockedEnd}
				d.emit()
			}
		} else {
			d.navOnlySince = now
			if d.probe != nil {
				d.pe = ProbeEvent{Kind: ProbeNAVBlockedStart, Until: d.navUntil}
				d.emit()
			}
		}
		d.navOnly = navOnly
	}
	switch {
	case idle && !d.wasIdle:
		d.wasIdle = true
		d.lastBusyEnd = d.sched.Now()
		d.kickAccess()
	case !idle && d.wasIdle:
		d.wasIdle = false
		d.pauseCountdown()
	}
}

// ChannelBusy implements Receiver.
func (d *DCF) ChannelBusy(busy bool) {
	d.busyPhys = busy
	if d.probe != nil {
		k := ProbeBusyEnd
		if busy {
			k = ProbeBusyStart
		}
		d.pe = ProbeEvent{Kind: k}
		d.emit()
	}
	d.refresh()
}

func (d *DCF) updateNAV(dur sim.Time) {
	if dur <= 0 {
		return
	}
	expiry := d.sched.Now() + dur
	if expiry <= d.navUntil {
		return
	}
	d.navUntil = expiry
	d.navTimer.StartAt(expiry)
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeNAVUpdate, Until: expiry}
		d.emit()
	}
	d.refresh()
}

// onNAVExpire runs when the NAV clears. StartAt replaces any pending
// expiry, so the timer fires exactly once, at the final expiry time.
func (d *DCF) onNAVExpire() {
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeNAVExpire, Until: d.navUntil}
		d.emit()
	}
	d.refresh()
}

// currentIFS is DIFS normally, EIFS after a corrupted reception.
func (d *DCF) currentIFS() sim.Time {
	if d.useEIFS {
		return d.cfg.Params.EIFS()
	}
	return d.cfg.Params.DIFS()
}

// --- contention ----------------------------------------------------------

func (d *DCF) drawBackoff() {
	cw := d.cw
	// Table IX emulation: the contention window is pinned at CWmin for
	// transmissions toward the capped destination.
	if d.current != nil && d.cfg.CWMinCapTo[d.current.Dst] && cw > d.cfg.Params.CWMin {
		cw = d.cfg.Params.CWMin
	}
	d.counters.CWSum += int64(cw)
	d.counters.CWSamples++
	if d.counters.CWHist == nil {
		d.counters.CWHist = make(map[int]int64)
	}
	d.counters.CWHist[cw]++
	d.backoffRemaining = d.rng.Intn(cw + 1)
	d.drawPending = false
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeBackoffDraw, CW: cw, Slots: d.backoffRemaining}
		d.emit()
	}
}

func (d *DCF) pauseCountdown() {
	if d.inCountdown {
		d.backoffWait += d.sched.Now() - d.countdownStart
		elapsed := int((d.sched.Now() - d.countdownStart) / d.cfg.Params.SlotTime)
		if elapsed > d.backoffRemaining {
			elapsed = d.backoffRemaining
		}
		d.backoffRemaining -= elapsed
		d.inCountdown = false
		if d.probe != nil {
			d.pe = ProbeEvent{Kind: ProbeBackoffFreeze, Slots: d.backoffRemaining}
			d.emit()
		}
	}
	d.accessTimer.Stop()
}

// kickAccess advances the transmit side toward the next transmission
// whenever the medium is idle. It implements: wait IFS, then count down the
// backoff, then transmit; stations with no backoff owed (fresh arrival to a
// long-idle medium) may transmit right after IFS.
func (d *DCF) kickAccess() {
	if d.access != accessContend && !(d.access == accessIdle && d.needBackoff) {
		return
	}
	if !d.mediumIdle() {
		return
	}
	if d.inCountdown && d.accessTimer.Pending() {
		return // countdown already in progress; let it run
	}
	now := d.sched.Now()
	ifsEnd := d.lastBusyEnd + d.currentIFS()
	if now < ifsEnd {
		d.inCountdown = false
		if d.probe != nil {
			d.pe = ProbeEvent{Kind: ProbeIFSDefer, Until: ifsEnd, EIFS: d.useEIFS}
			d.emit()
		}
		d.accessTimer.StartAt(ifsEnd)
		return
	}
	if d.needBackoff {
		if d.drawPending {
			d.drawBackoff()
		}
		if d.backoffRemaining > 0 {
			d.inCountdown = true
			d.countdownStart = now
			if d.probe != nil {
				d.pe = ProbeEvent{Kind: ProbeBackoffResume, Slots: d.backoffRemaining}
				d.emit()
			}
			d.accessTimer.Start(sim.Time(d.backoffRemaining) * d.cfg.Params.SlotTime)
			return
		}
		d.needBackoff = false // post-backoff complete
	}
	if d.access != accessContend {
		return // post-backoff finished with nothing to send
	}
	d.transmitCurrent()
}

func (d *DCF) onAccessTimer() {
	if !d.mediumIdle() {
		// A busy transition should have cancelled us; be defensive.
		if d.inCountdown {
			d.backoffWait += d.sched.Now() - d.countdownStart
			d.inCountdown = false
			if d.probe != nil {
				d.pe = ProbeEvent{Kind: ProbeBackoffFreeze, Slots: d.backoffRemaining}
				d.emit()
			}
		}
		return
	}
	if d.inCountdown {
		d.backoffWait += d.sched.Now() - d.countdownStart
		d.backoffRemaining = 0
		d.inCountdown = false
		d.needBackoff = false
		if d.probe != nil {
			d.pe = ProbeEvent{Kind: ProbeBackoffExpire}
			d.emit()
		}
	}
	d.kickAccess()
}

func (d *DCF) useRTSFor(f *Frame) bool {
	return d.cfg.UseRTSCTS && f.MACBytes >= d.cfg.RTSThresholdBytes
}

func (d *DCF) transmitCurrent() {
	if d.current == nil {
		if len(d.queue) == 0 {
			d.access = accessIdle
			return
		}
		d.current = d.queue[0]
		copy(d.queue, d.queue[1:])
		d.queue[len(d.queue)-1] = nil
		d.queue = d.queue[:len(d.queue)-1]
		d.shortRetries = 0
		d.longRetries = 0
	}
	if d.useRTSFor(d.current) {
		rts := d.cfg.Frames.Get()
		rts.Type = FrameRTS
		rts.Src = d.cfg.ID
		rts.Dst = d.current.Dst
		rts.MACBytes = phys.RTSFrameBytes
		rts.Duration = ClampNAV(d.policy.OutgoingDuration(FrameRTS,
			RTSNAVAtRate(d.cfg.Params, d.current.MACBytes, d.dataRateFor(d.current.Dst))))
		d.counters.RTSSent++
		d.access = accessTxRTS
		if d.probe != nil {
			d.pe = ProbeEvent{Kind: ProbeTxContend, Frame: FrameRTS, Dst: rts.Dst, Seq: d.current.Seq}
			d.emit()
		}
		d.transmit(rts, d.cfg.Params.BasicRateBps)
		// The medium holds its own references for in-flight copies; the
		// MAC is done with the RTS the moment it is on the air.
		rts.Release()
		return
	}
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeTxContend, Frame: FrameData, Dst: d.current.Dst, Seq: d.current.Seq}
		d.emit()
	}
	d.startDataTx()
}

// dataRateFor reports the PHY rate for data frames toward dst.
func (d *DCF) dataRateFor(dst NodeID) int64 {
	if d.cfg.AutoRate != nil {
		return d.cfg.AutoRate.DataRate(dst)
	}
	return d.cfg.Params.DataRateBps
}

func (d *DCF) startDataTx() {
	d.current.Duration = ClampNAV(d.policy.OutgoingDuration(FrameData, DataNAV(d.cfg.Params)))
	d.current.Retry = d.longRetries > 0 || d.shortRetries > 0
	d.counters.DataSent++
	if d.current.Retry {
		d.counters.DataRetries++
	}
	d.access = accessTxData
	d.transmit(d.current, d.dataRateFor(d.current.Dst))
}

// transmit puts f on the air and arms the tx-done timer.
func (d *DCF) transmit(f *Frame, bps int64) {
	f.TxRate = bps
	airtime := d.cfg.Params.TxDuration(f.MACBytes, bps)
	d.txUntil = d.sched.Now() + airtime
	d.txTimer.StartAt(d.txUntil)
	d.channel.Transmit(d.cfg.ID, f, airtime)
	d.refresh()
}

func (d *DCF) onTxDone() {
	switch d.access {
	case accessTxRTS:
		d.access = accessWaitCTS
		d.waitTimer.Start(d.cfg.Params.CTSTimeout())
	case accessTxData:
		if d.cfg.SpoofEmulationTo[d.current.Dst] {
			if d.cfg.AutoRate != nil {
				d.cfg.AutoRate.OnTxOutcome(d.current.Dst, true)
			}
			// Testbed emulation: the victim sender believes every data
			// frame is acknowledged (Table VIII). The frame itself may or
			// may not have been delivered — the medium decided that.
			d.refresh()
			d.finishCurrent(true)
			return
		}
		d.access = accessWaitACK
		d.waitTimer.Start(d.cfg.Params.ACKTimeout())
	}
	d.refresh()
}

// effectiveCWMax honors the per-destination CWMin pin used by the fake-ACK
// testbed emulation (Table IX).
func (d *DCF) effectiveCWMax() int {
	if d.current != nil && d.cfg.CWMinCapTo[d.current.Dst] {
		return d.cfg.Params.CWMin
	}
	return d.cfg.Params.CWMax
}

func (d *DCF) doubleCW() {
	d.cw = 2*(d.cw+1) - 1
	if max := d.effectiveCWMax(); d.cw > max {
		d.cw = max
	}
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeCWDouble, CW: d.cw}
		d.emit()
	}
}

func (d *DCF) resetCW() {
	d.cw = d.cfg.Params.CWMin
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeCWReset, CW: d.cw}
		d.emit()
	}
}

// onResponseTimeout handles a missing CTS or ACK.
func (d *DCF) onResponseTimeout() {
	switch d.access {
	case accessWaitCTS:
		d.counters.CTSTimeouts++
		d.shortRetries++
		d.counters.RTSRetries++
		if d.probe != nil && d.current != nil {
			d.pe = ProbeEvent{Kind: ProbeRetry, Retries: d.shortRetries, Dst: d.current.Dst, Seq: d.current.Seq}
			d.emit()
		}
		if d.shortRetries > d.cfg.Params.ShortRetryLimit {
			d.finishCurrent(false)
			return
		}
	case accessWaitACK:
		d.counters.ACKTimeouts++
		if d.cfg.AutoRate != nil && d.current != nil {
			d.cfg.AutoRate.OnTxOutcome(d.current.Dst, false)
		}
		d.longRetries++
		if d.probe != nil && d.current != nil {
			d.pe = ProbeEvent{Kind: ProbeRetry, Long: true, Retries: d.longRetries, Dst: d.current.Dst, Seq: d.current.Seq}
			d.emit()
		}
		if d.longRetries > d.cfg.Params.LongRetryLimit {
			d.finishCurrent(false)
			return
		}
	default:
		return
	}
	d.doubleCW()
	d.retryAccess()
}

func (d *DCF) retryAccess() {
	d.access = accessContend
	d.needBackoff = true
	d.drawPending = true
	d.kickAccess()
}

// finishCurrent completes service of the in-flight MSDU.
func (d *DCF) finishCurrent(ok bool) {
	f := d.current
	d.current = nil
	if d.probe != nil && f != nil {
		d.pe = ProbeEvent{Kind: ProbeMSDUDone, OK: ok, Frame: f.Type, Dst: f.Dst, Seq: f.Seq}
		d.emit()
	}
	d.waitTimer.Stop()
	if ok {
		d.counters.MSDUSuccess++
	} else {
		d.counters.MSDURetryDrop++
	}
	d.resetCW()
	d.shortRetries = 0
	d.longRetries = 0
	d.needBackoff = true // post-backoff
	d.drawPending = true
	if len(d.queue) > 0 {
		d.access = accessContend
	} else {
		d.access = accessIdle
	}
	d.upper.TxDone(f, ok)
	// The MSDU's MAC lifecycle is over; copies still propagating on the
	// medium hold their own references.
	f.Release()
	d.kickAccess()
}

// --- reception -----------------------------------------------------------

// RxEnd implements Receiver.
func (d *DCF) RxEnd(f *Frame, info RxInfo) {
	if !info.Decoded {
		d.counters.CorruptedRx++
		d.useEIFS = true
		// Misbehavior 3 hook: a corrupted data frame whose addressing
		// survived shows this station it was the intended receiver.
		if f.Type == FrameData && f.Dst == d.cfg.ID &&
			!info.Corruption.DstHit && !info.Corruption.SrcHit &&
			d.policy.AckCorrupted(f.Src, info.Corruption) {
			d.scheduleResponse(d.ackFrameFor(f.Src), respFakeACK)
		}
		return
	}
	d.useEIFS = false
	d.observer.OnOverheard(f, info.RSSIDBm)
	if f.Dst == d.cfg.ID {
		switch f.Type {
		case FrameRTS:
			d.handleRTS(f)
		case FrameCTS:
			d.handleCTS(f)
		case FrameData:
			d.handleData(f, info)
		case FrameACK:
			d.handleACK(f, info)
		}
		return
	}
	// Overheard frame: virtual carrier sense, via the observer's filter
	// (GRC clamps inflated NAVs here).
	dur := d.observer.FilterNAV(f, info.RSSIDBm)
	if dur < f.Duration {
		d.counters.NAVCorrections++
	}
	d.updateNAV(dur)
	// Misbehavior 2 hook: spoof a MAC ACK on behalf of the addressee.
	if f.Type == FrameData && d.policy.SpoofSniffedData(f) {
		spoof := d.cfg.Frames.Get()
		spoof.Type = FrameACK
		spoof.Src = f.Dst // impersonate the true receiver
		spoof.Dst = f.Src
		spoof.MACBytes = phys.ACKFrameBytes
		spoof.Duration = 0
		d.scheduleResponse(spoof, respSpoofedACK)
	}
}

func (d *DCF) ackFrameFor(dst NodeID) *Frame {
	ack := d.cfg.Frames.Get()
	ack.Type = FrameACK
	ack.Src = d.cfg.ID
	ack.Dst = dst
	ack.MACBytes = phys.ACKFrameBytes
	ack.Duration = ClampNAV(d.policy.OutgoingDuration(FrameACK, ACKNAV()))
	return ack
}

func (d *DCF) handleRTS(f *Frame) {
	// A station answers an RTS only if its virtual carrier sense is idle
	// (IEEE 802.11 §9.2.5.7) — this is how an inflated NAV strangles a
	// co-located normal receiver sharing the sender (Fig 10).
	if d.sched.Now() < d.navUntil || d.busyPhys {
		return
	}
	cts := d.cfg.Frames.Get()
	cts.Type = FrameCTS
	cts.Src = d.cfg.ID
	cts.Dst = f.Src
	cts.MACBytes = phys.CTSFrameBytes
	cts.Duration = ClampNAV(d.policy.OutgoingDuration(FrameCTS, CTSNAVFromRTS(d.cfg.Params, f.Duration)))
	d.scheduleResponse(cts, respCTS)
}

func (d *DCF) handleCTS(f *Frame) {
	if d.access != accessWaitCTS || d.current == nil || f.Src != d.current.Dst {
		return
	}
	if d.respTimer.Pending() {
		// The response slot is occupied; let the CTS timeout drive a retry.
		return
	}
	d.waitTimer.Stop()
	d.shortRetries = 0
	d.scheduleResponse(d.current, respOwnData)
}

func (d *DCF) handleData(f *Frame, info RxInfo) {
	// Always acknowledge, even duplicates (the sender missed our ACK).
	d.scheduleResponse(d.ackFrameFor(f.Src), respACK)
	if last, ok := d.lastSeq[f.Src]; ok && last == f.Seq {
		d.counters.DataDuplicates++
		return
	}
	d.lastSeq[f.Src] = f.Seq
	d.counters.DataDelivered++
	d.upper.DeliverData(f, info.RSSIDBm)
}

func (d *DCF) handleACK(f *Frame, info RxInfo) {
	if d.access != accessWaitACK || d.current == nil {
		return
	}
	if !d.observer.AcceptACK(f, info.RSSIDBm) {
		// GRC mitigation: a suspected spoofed ACK is ignored; the ACK
		// timeout will drive the retransmission the spoofer suppressed.
		d.counters.ACKIgnored++
		return
	}
	if d.cfg.AutoRate != nil {
		// Forged ACKs (spoofed or fake) poison this feedback — that is
		// the auto-rate interaction the paper's Section IX predicts.
		d.cfg.AutoRate.OnTxOutcome(d.current.Dst, true)
	}
	d.waitTimer.Stop()
	d.finishCurrent(true)
}

// --- SIFS responses ------------------------------------------------------

// scheduleResponse arms the single SIFS-response slot. Responses never
// carrier-sense (they own the medium by protocol timing). A station owes at
// most one response at a time; conflicting demands drop the newcomer.
func (d *DCF) scheduleResponse(f *Frame, what respKind) {
	if d.respTimer.Pending() {
		if what != respOwnData {
			// Dropped control responses die here; respOwnData is
			// d.current, still owned by the retry machinery.
			f.Release()
		}
		return
	}
	d.respFrame = f
	d.respWhat = what
	d.respTimer.Start(d.cfg.Params.SIFS)
}

func (d *DCF) onRespond() {
	f := d.respFrame
	what := d.respWhat
	d.respFrame = nil
	d.respWhat = respNone
	if f == nil {
		return
	}
	if d.sched.Now() < d.txUntil {
		// Already transmitting. Control responses are simply dropped (the
		// peer times out); our own post-CTS data frame must not be lost
		// silently or the exchange would hang, so retry it.
		if what == respOwnData {
			d.retryAccess()
		} else {
			f.Release()
		}
		return
	}
	if d.probe != nil {
		d.pe = ProbeEvent{Kind: ProbeTxRespond, Frame: f.Type, Dst: f.Dst, Seq: f.Seq}
		d.emit()
	}
	switch what {
	case respCTS:
		d.counters.CTSSent++
		d.transmit(f, d.cfg.Params.BasicRateBps)
		f.Release()
	case respACK:
		d.counters.ACKSent++
		d.transmit(f, d.cfg.Params.BasicRateBps)
		f.Release()
	case respFakeACK:
		d.counters.FakeACKsSent++
		d.transmit(f, d.cfg.Params.BasicRateBps)
		f.Release()
	case respSpoofedACK:
		d.counters.SpoofedACKsSent++
		d.transmit(f, d.cfg.Params.BasicRateBps)
		f.Release()
	case respOwnData:
		d.startDataTx()
	}
}
