package mac

import (
	"testing"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// lossyLoopChannel is loopChannel with per-frame drop control.
type lossyLoopChannel struct {
	sched *sim.Scheduler
	peers map[NodeID]Receiver
	// dropNext drops the next N frames of the given type.
	dropType  FrameType
	dropCount int
	dropped   int
	sent      []*Frame
}

func (c *lossyLoopChannel) Transmit(src NodeID, f *Frame, airtime sim.Time) {
	c.sent = append(c.sent, f)
	drop := false
	if c.dropCount > 0 && f.Type == c.dropType {
		c.dropCount--
		c.dropped++
		drop = true
	}
	for id, rcv := range c.peers {
		if id == src {
			continue
		}
		rcv := rcv
		c.sched.Schedule(0, func() { rcv.ChannelBusy(true) })
		if drop {
			c.sched.Schedule(airtime, func() { rcv.ChannelBusy(false) })
			continue
		}
		c.sched.Schedule(airtime, func() {
			rcv.ChannelBusy(false)
			rcv.RxEnd(f, RxInfo{Decoded: true, RSSIDBm: -50})
		})
	}
}

func newLossyPair(t *testing.T, useRTS bool) (*sim.Scheduler, *lossyLoopChannel, *DCF, *DCF, *recordingUpper, *recordingUpper) {
	t.Helper()
	sched := sim.NewScheduler(42)
	ch := &lossyLoopChannel{sched: sched, peers: make(map[NodeID]Receiver)}
	upA, upB := &recordingUpper{}, &recordingUpper{}
	p := phys.Params80211B()
	a := New(sched, ch, upA, Config{ID: 1, Params: p, UseRTSCTS: useRTS})
	b := New(sched, ch, upB, Config{ID: 2, Params: p, UseRTSCTS: useRTS})
	ch.peers[1] = a
	ch.peers[2] = b
	return sched, ch, a, b, upA, upB
}

// Lost MAC ACK: the sender retransmits; the receiver must deliver the
// payload exactly once and re-acknowledge the duplicate.
func TestLostACKCausesDuplicateSuppressedRetry(t *testing.T) {
	sched, ch, a, b, upA, upB := newLossyPair(t, false)
	ch.dropType = FrameACK
	ch.dropCount = 1
	a.Send(2, "payload", 1024)
	sched.RunUntil(sim.Second)

	if ch.dropped != 1 {
		t.Fatalf("dropped %d ACKs, want 1", ch.dropped)
	}
	if len(upB.delivered) != 1 {
		t.Errorf("delivered %d copies, want exactly 1", len(upB.delivered))
	}
	if b.Counters().DataDuplicates != 1 {
		t.Errorf("duplicates = %d, want 1 (the retransmission)", b.Counters().DataDuplicates)
	}
	if b.Counters().ACKSent != 2 {
		t.Errorf("ACKs sent = %d, want 2 (original + for the retry)", b.Counters().ACKSent)
	}
	if len(upA.done) != 1 || !upA.done[0] {
		t.Errorf("sender outcome = %v, want success after retry", upA.done)
	}
	if a.Counters().ACKTimeouts != 1 {
		t.Errorf("ACK timeouts = %d, want 1", a.Counters().ACKTimeouts)
	}
}

// Lost CTS: the RTS is retried and the exchange then completes.
func TestLostCTSRetriesRTS(t *testing.T) {
	sched, ch, a, b, upA, upB := newLossyPair(t, true)
	ch.dropType = FrameCTS
	ch.dropCount = 2
	a.Send(2, nil, 1024)
	sched.RunUntil(sim.Second)

	if a.Counters().RTSSent != 3 {
		t.Errorf("RTS sent = %d, want 3 (2 lost CTSes)", a.Counters().RTSSent)
	}
	if a.Counters().CTSTimeouts != 2 {
		t.Errorf("CTS timeouts = %d, want 2", a.Counters().CTSTimeouts)
	}
	if len(upB.delivered) != 1 || len(upA.done) != 1 || !upA.done[0] {
		t.Error("exchange did not complete after CTS losses")
	}
	_ = b
}

// A lost data frame under RTS/CTS: the retry goes through the full
// RTS/CTS cycle again (long retry path).
func TestLostDataUnderRTSRetries(t *testing.T) {
	sched, ch, a, _, upA, upB := newLossyPair(t, true)
	ch.dropType = FrameData
	ch.dropCount = 1
	a.Send(2, nil, 1024)
	sched.RunUntil(sim.Second)

	if a.Counters().DataSent != 2 || a.Counters().DataRetries != 1 {
		t.Errorf("data sent/retries = %d/%d, want 2/1",
			a.Counters().DataSent, a.Counters().DataRetries)
	}
	if a.Counters().RTSSent != 2 {
		t.Errorf("RTS sent = %d, want 2 (fresh cycle per retry)", a.Counters().RTSSent)
	}
	if len(upB.delivered) != 1 || !upA.done[0] {
		t.Error("delivery failed after data loss")
	}
}

// An RTS addressed to a station whose SIFS response slot is already
// committed must go unanswered.
func TestResponseSlotConflictDropsCTS(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	p := phys.Params80211B()
	b := New(sched, ch, &recordingUpper{}, Config{ID: 2, Params: p})

	// First a data frame for us (commits the slot to an ACK), then an RTS
	// in the same instant.
	b.RxEnd(&Frame{Type: FrameData, Src: 3, Dst: 2, Seq: 1, MACBytes: 1052},
		RxInfo{Decoded: true, RSSIDBm: -50})
	b.RxEnd(&Frame{Type: FrameRTS, Src: 4, Dst: 2, Duration: 2 * sim.Millisecond, MACBytes: 20},
		RxInfo{Decoded: true, RSSIDBm: -50})
	sched.RunUntil(sim.Millisecond)

	if len(ch.sent) != 1 || ch.sent[0].Type != FrameACK {
		t.Errorf("sent %v, want exactly the ACK (CTS dropped by slot conflict)", ch.sent)
	}
}

// EIFS is cleared by a subsequent correct reception.
func TestEIFSClearedByGoodFrame(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	p := phys.Params80211B()
	d := New(sched, ch, &recordingUpper{}, Config{ID: 1, Params: p})

	d.RxEnd(&Frame{Type: FrameData, Src: 3, Dst: 4, Seq: 1, MACBytes: 1052},
		RxInfo{Decoded: false, Corruption: phys.FrameCorruption{Corrupted: true}})
	// A decoded overheard frame (zero NAV) clears the EIFS condition.
	d.RxEnd(&Frame{Type: FrameACK, Src: 4, Dst: 3, Duration: 0, MACBytes: 14},
		RxInfo{Decoded: true, RSSIDBm: -50})
	d.Send(2, nil, 1024)
	var firstTx sim.Time = -1
	for firstTx < 0 && sched.Pending() > 0 {
		sched.RunUntil(sched.Now() + sim.Microsecond)
		if len(ch.sent) > 0 {
			firstTx = sched.Now()
		}
	}
	// DIFS (50µs) + up to CWmin backoff — but never the 364µs EIFS floor
	// would enforce... the draw may exceed it, so assert only that the
	// deferral base is DIFS: earliest possible tx is DIFS, not EIFS.
	if firstTx < p.DIFS() {
		t.Errorf("tx at %v, before DIFS", firstTx)
	}
	if firstTx >= p.EIFS()+sim.Time(p.CWMin)*p.SlotTime {
		t.Errorf("tx at %v suggests EIFS was still in force", firstTx)
	}
}

// Duplicate-detection state is per source station.
func TestDedupPerSource(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	up := &recordingUpper{}
	b := New(sched, ch, up, Config{ID: 2, Params: phys.Params80211B()})

	// Same seq from two different sources: both must be delivered.
	b.RxEnd(&Frame{Type: FrameData, Src: 8, Dst: 2, Seq: 5, MACBytes: 500},
		RxInfo{Decoded: true, RSSIDBm: -50})
	b.RxEnd(&Frame{Type: FrameData, Src: 9, Dst: 2, Seq: 5, MACBytes: 500},
		RxInfo{Decoded: true, RSSIDBm: -50})
	if len(up.delivered) != 2 {
		t.Errorf("delivered %d, want 2 (dedup must be per source)", len(up.delivered))
	}
}

// A station that is purely a receiver still answers protocol frames while
// its own queue is empty.
func TestPureReceiverResponds(t *testing.T) {
	sched := sim.NewScheduler(42)
	ch := &blackHoleChannel{}
	b := New(sched, ch, &recordingUpper{}, Config{ID: 2, Params: phys.Params80211B()})

	b.RxEnd(&Frame{Type: FrameRTS, Src: 1, Dst: 2, Duration: 3 * sim.Millisecond, MACBytes: 20},
		RxInfo{Decoded: true, RSSIDBm: -50})
	sched.RunUntil(sim.Millisecond)
	if len(ch.sent) != 1 || ch.sent[0].Type != FrameCTS {
		t.Fatalf("pure receiver sent %v, want CTS", ch.sent)
	}
	// The CTS duration must be derived from the RTS duration.
	p := phys.Params80211B()
	want := CTSNAVFromRTS(p, 3*sim.Millisecond)
	if ch.sent[0].Duration != want {
		t.Errorf("CTS NAV = %v, want %v", ch.sent[0].Duration, want)
	}
}

// timestampChannel records when each frame was transmitted.
type timestampChannel struct {
	sched *sim.Scheduler
	sent  []*Frame
	at    []sim.Time
}

func (c *timestampChannel) Transmit(_ NodeID, f *Frame, _ sim.Time) {
	c.sent = append(c.sent, f)
	c.at = append(c.at, c.sched.Now())
}

// Backoff freeze: a busy interval mid-countdown defers the transmission
// to after the busy period ends plus a fresh DIFS, and the remaining
// countdown never exceeds the original draw (≤ CWmin slots).
func TestBackoffFreezeDefersTransmission(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sched := sim.NewScheduler(seed)
		ch := &timestampChannel{sched: sched}
		p := phys.Params80211B()
		d := New(sched, ch, &recordingUpper{}, Config{ID: 1, Params: p})

		// Force a backoff by making the medium busy at Send time.
		d.ChannelBusy(true)
		d.Send(2, nil, 1024)
		d.ChannelBusy(false) // idle at t=0: DIFS, then countdown
		busyStart := p.DIFS() + 2*p.SlotTime
		busyEnd := busyStart + 5*sim.Millisecond
		sched.At(busyStart, func() { d.ChannelBusy(true) })
		sched.At(busyEnd, func() { d.ChannelBusy(false) })
		sched.RunUntil(20 * sim.Millisecond)

		if len(ch.sent) == 0 {
			t.Fatalf("seed %d: nothing transmitted", seed)
		}
		// Only the first attempt reflects the frozen countdown; later
		// frames are ACK-timeout retries (the channel never delivers).
		tx := ch.at[0]
		if tx >= busyStart && tx < busyEnd {
			t.Fatalf("seed %d: transmitted at %v inside the busy window", seed, tx)
		}
		if tx >= busyEnd {
			// Resumed countdown: after busy + DIFS, within the residual
			// CWmin-slot budget.
			min := busyEnd + p.DIFS()
			max := min + sim.Time(p.CWMin)*p.SlotTime
			if tx < min || tx > max {
				t.Errorf("seed %d: resumed tx at %v, want within [%v, %v]", seed, tx, min, max)
			}
		}
	}
}
