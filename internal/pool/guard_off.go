//go:build !pooldebug

package pool

// DebugEnabled reports whether the pooldebug build tag is active. Guard
// calls in the arena are gated on this constant, so normal builds
// compile the lifecycle checks away entirely.
const DebugEnabled = false

// guard is the release-checking hook set. In normal builds it carries no
// state and its methods are never reached.
type guard struct{}

func (guard) init()              {}
func (guard) onGrow(any)         {}
func (guard) onGet(any)          {}
func (guard) onPut(any) bool     { return false }
