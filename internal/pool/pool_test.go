package pool

import "testing"

type obj struct {
	id     int
	inited bool
}

func TestArenaRecycles(t *testing.T) {
	a := NewArena[obj](4, nil)
	x := a.Get()
	x.id = 7
	a.Put(x)
	y := a.Get()
	if y != x {
		t.Error("freelist did not hand the released object back")
	}
	if y.id != 7 {
		t.Error("arena zeroed the object; contents are the caller's job")
	}
}

func TestArenaGrowth(t *testing.T) {
	a := NewArena[obj](2, nil)
	seen := map[*obj]bool{}
	for i := 0; i < 5; i++ {
		x := a.Get()
		if seen[x] {
			t.Fatalf("object %d handed out twice while live", i)
		}
		seen[x] = true
	}
	st := a.Stats()
	if st.Chunks != 3 || st.ChunkSize != 2 {
		t.Errorf("chunks = %d×%d, want 3×2", st.Chunks, st.ChunkSize)
	}
	if st.Live != 5 || st.Free != 1 {
		t.Errorf("live/free = %d/%d, want 5/1", st.Live, st.Free)
	}
	if st.Gets != 5 || st.Puts != 0 {
		t.Errorf("gets/puts = %d/%d, want 5/0", st.Gets, st.Puts)
	}
}

func TestArenaInitRunsOncePerObject(t *testing.T) {
	inits := 0
	a := NewArena[obj](2, func(o *obj) {
		inits++
		o.inited = true
	})
	x := a.Get()
	if !x.inited {
		t.Error("init hook did not run")
	}
	a.Put(x)
	a.Get()
	if inits != 2 { // one whole chunk initialized, no re-init on reuse
		t.Errorf("init ran %d times, want 2 (once per object in the chunk)", inits)
	}
}

func TestArenaDefaultChunkSize(t *testing.T) {
	a := NewArena[obj](0, nil)
	a.Get()
	if st := a.Stats(); st.ChunkSize != DefaultChunkSize {
		t.Errorf("chunk size = %d, want %d", st.ChunkSize, DefaultChunkSize)
	}
}

// TestPoolDebugGuards exercises the pooldebug lifecycle checks: a double
// Put panics at the offending call site and the poison hook scribbles
// released objects. In normal builds the guards compile away, so the
// test only runs under `go test -tags pooldebug`.
func TestPoolDebugGuards(t *testing.T) {
	if !DebugEnabled {
		t.Skip("build with -tags pooldebug")
	}
	a := NewArena[obj](2, nil)
	a.SetPoison(func(o *obj) { o.id = -1 })
	x := a.Get()
	x.id = 42
	a.Put(x)
	if x.id != -1 {
		t.Error("poison hook did not run on release")
	}
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic")
		}
	}()
	a.Put(x)
}
