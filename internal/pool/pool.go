// Package pool provides the chunked freelist arena behind every hot-path
// object pool in the simulator (MAC frames, transport packets, medium
// arrivals, wireline transfers). It generalizes the recycled-slab
// technique the event scheduler uses for sim.Event: objects live in
// fixed-size chunks so their addresses stay stable, a freelist recycles
// released objects, and steady-state Get/Put never allocates.
//
// Arenas are single-goroutine by design, matching the scheduler they
// serve: one world, one goroutine, one set of arenas. Nothing here is
// safe for concurrent use.
//
// Build with `-tags pooldebug` to enable lifecycle checking: every Put is
// verified against the freelist (double-free panics) and the optional
// poison hook scribbles sentinel values over released objects so
// use-after-release surfaces as wild field values instead of silent
// corruption.
package pool

// DefaultChunkSize is the number of objects per slab when NewArena is
// given a non-positive chunk size. It matches the scheduler's event
// chunk size.
const DefaultChunkSize = 256

// Stats is a point-in-time snapshot of an arena's (or arena-like pool's)
// occupancy, in the style of the scheduler's growth counters.
type Stats struct {
	// Chunks is how many slabs have been allocated since construction.
	Chunks int `json:"chunks"`
	// ChunkSize is the number of objects per slab.
	ChunkSize int `json:"chunk_size"`
	// Live is the number of objects currently handed out (Get minus Put).
	Live int `json:"live"`
	// Free is the number of objects waiting on the freelist.
	Free int `json:"free"`
	// Gets and Puts count lifetime checkouts and returns.
	Gets uint64 `json:"gets"`
	Puts uint64 `json:"puts"`
}

// Arena is a chunked freelist allocator for T. The zero value is not
// useful; construct with NewArena.
type Arena[T any] struct {
	free      []*T
	chunkSize int
	chunks    int
	gets      uint64
	puts      uint64
	init      func(*T)
	poison    func(*T)
	guard     guard
}

// NewArena builds an arena that allocates chunkSize objects per slab
// (DefaultChunkSize when chunkSize <= 0). If init is non-nil it runs
// exactly once per object, when the object's chunk is first allocated —
// the place to bind method-value handlers so per-use setup stays
// allocation-free.
func NewArena[T any](chunkSize int, init func(*T)) *Arena[T] {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	a := &Arena[T]{chunkSize: chunkSize, init: init}
	a.guard.init()
	return a
}

// SetPoison registers a hook that scribbles sentinel values over an
// object as it is released. The hook only runs under the pooldebug build
// tag; release stays cheap in normal builds.
func (a *Arena[T]) SetPoison(poison func(*T)) { a.poison = poison }

// Get hands out an object, growing the slab by one chunk only when every
// previously allocated object is live. The object's contents are
// whatever the previous user (or init) left — callers reset what they
// use.
func (a *Arena[T]) Get() *T {
	if len(a.free) == 0 {
		a.grow()
	}
	n := len(a.free) - 1
	x := a.free[n]
	a.free[n] = nil
	a.free = a.free[:n]
	a.gets++
	if DebugEnabled {
		a.guard.onGet(x)
	}
	return x
}

// Put returns an object to the freelist. The caller must not touch the
// object afterward; under pooldebug a second Put of the same object
// panics and the poison hook (if set) overwrites its fields.
func (a *Arena[T]) Put(x *T) {
	if DebugEnabled {
		if a.guard.onPut(x) {
			panic("pool: object released twice")
		}
		if a.poison != nil {
			a.poison(x)
		}
	}
	a.puts++
	a.free = append(a.free, x)
}

// Stats reports the arena's current occupancy.
func (a *Arena[T]) Stats() Stats {
	return Stats{
		Chunks:    a.chunks,
		ChunkSize: a.chunkSize,
		Live:      a.chunks*a.chunkSize - len(a.free),
		Free:      len(a.free),
		Gets:      a.gets,
		Puts:      a.puts,
	}
}

func (a *Arena[T]) grow() {
	chunk := make([]T, a.chunkSize)
	a.chunks++
	for i := range chunk {
		x := &chunk[i]
		if a.init != nil {
			a.init(x)
		}
		if DebugEnabled {
			a.guard.onGrow(x)
		}
		a.free = append(a.free, x)
	}
}
