//go:build pooldebug

package pool

// DebugEnabled reports whether the pooldebug build tag is active.
const DebugEnabled = true

// guard tracks which objects are currently on the freelist so a second
// Put of the same object is caught at the offending call site instead of
// surfacing later as two callers sharing one object.
type guard struct {
	free map[any]struct{}
}

func (g *guard) init() { g.free = make(map[any]struct{}) }

func (g *guard) onGrow(x any) { g.free[x] = struct{}{} }

func (g *guard) onGet(x any) { delete(g.free, x) }

// onPut reports whether the object was already free (a double release).
func (g *guard) onPut(x any) bool {
	if _, dup := g.free[x]; dup {
		return true
	}
	g.free[x] = struct{}{}
	return false
}
