package tracestudy

import (
	"math"
	"testing"
)

func TestCorruptionStudyValidation(t *testing.T) {
	if _, err := RunCorruptionStudy(CorruptionStudyConfig{Frames: 0, FrameBytes: 100}); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := RunCorruptionStudy(CorruptionStudyConfig{Frames: 10, FrameBytes: 10}); err == nil {
		t.Error("tiny frames accepted")
	}
	if _, err := RunCorruptionStudy(CorruptionStudyConfig{Frames: 10, FrameBytes: 100}); err == nil {
		t.Error("nil process accepted")
	}
}

// Table I, 802.11b row: 65536 received, ≈1367 corrupted, 98.8% with intact
// destination, 94.9% of those with intact source.
func TestTableI80211B(t *testing.T) {
	res, err := RunCorruptionStudy(TableIConfig80211B(1))
	if err != nil {
		t.Fatal(err)
	}
	corruptionRate := float64(res.Corrupted) / float64(res.Received)
	if corruptionRate < 0.012 || corruptionRate > 0.032 {
		t.Errorf("11b corruption rate %.4f, want ≈0.021 (1367/65536)", corruptionRate)
	}
	if res.DstPreservedRate < 0.96 || res.DstPreservedRate > 1.0 {
		t.Errorf("11b dst preserved %.3f, want ≈0.988", res.DstPreservedRate)
	}
	if res.SrcDstPreservedRate < 0.90 {
		t.Errorf("11b src|dst preserved %.3f, want ≈0.949", res.SrcDstPreservedRate)
	}
}

// Table I, 802.11a row: ≈32% corrupted, 84% dst preserved, 91.4% src|dst.
func TestTableI80211A(t *testing.T) {
	res, err := RunCorruptionStudy(TableIConfig80211A(1))
	if err != nil {
		t.Fatal(err)
	}
	corruptionRate := float64(res.Corrupted) / float64(res.Received)
	if corruptionRate < 0.24 || corruptionRate > 0.40 {
		t.Errorf("11a corruption rate %.3f, want ≈0.32 (7376/23068)", corruptionRate)
	}
	if math.Abs(res.DstPreservedRate-0.84) > 0.08 {
		t.Errorf("11a dst preserved %.3f, want ≈0.84", res.DstPreservedRate)
	}
	if math.Abs(res.SrcDstPreservedRate-0.914) > 0.08 {
		t.Errorf("11a src|dst preserved %.3f, want ≈0.914", res.SrcDstPreservedRate)
	}
}

func TestRSSIStudyValidation(t *testing.T) {
	bad := DefaultRSSIStudyConfig(1)
	bad.Nodes = 1
	if _, err := RunRSSIStudy(bad); err == nil {
		t.Error("1-node study accepted")
	}
	bad2 := DefaultRSSIStudyConfig(1)
	bad2.SamplesPerLink = 1
	if _, err := RunRSSIStudy(bad2); err == nil {
		t.Error("1-sample study accepted")
	}
	bad3 := DefaultRSSIStudyConfig(1)
	bad3.FloorW = 0
	if _, err := RunRSSIStudy(bad3); err == nil {
		t.Error("zero floor accepted")
	}
}

// Fig 21: ≈95% of RSSI samples within 1 dB of the link median.
func TestFig21RSSIStability(t *testing.T) {
	res, err := RunRSSIStudy(DefaultRSSIStudyConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deviations) != 16*15*200 {
		t.Fatalf("deviation count = %d", len(res.Deviations))
	}
	within1 := res.FractionWithin(1.0)
	if within1 < 0.90 || within1 > 0.99 {
		t.Errorf("fraction within 1 dB = %.3f, want ≈0.95", within1)
	}
	// CDF must be monotone and reach ~1 by 5 dB.
	cdf := res.CDF([]float64{0.25, 0.5, 1, 2, 5})
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone: %v", cdf)
		}
	}
	if cdf[len(cdf)-1] < 0.99 {
		t.Errorf("CDF(5dB) = %.3f, want ≈1", cdf[len(cdf)-1])
	}
}

// Fig 22: FP falls and FN rises with the threshold; 1 dB gives both low.
func TestFig22DetectionTradeoff(t *testing.T) {
	thresholds := []float64{0, 0.5, 1, 2, 3, 4, 5}
	pts, err := RunDetectionTradeoff(DefaultRSSIStudyConfig(22), thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(thresholds) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FalsePositive > pts[i-1].FalsePositive {
			t.Errorf("FP not monotone nonincreasing at %v", pts[i].ThresholdDB)
		}
		if pts[i].FalseNegative < pts[i-1].FalseNegative {
			t.Errorf("FN not monotone nondecreasing at %v", pts[i].ThresholdDB)
		}
	}
	// At 0 dB every legit sample is flagged (FP ≈ 1 minus exact-median
	// ties); at the 1 dB operating point both error rates are low.
	var at1 TradeoffPoint
	for _, p := range pts {
		if p.ThresholdDB == 1 {
			at1 = p
		}
	}
	if at1.FalsePositive > 0.10 {
		t.Errorf("FP(1dB) = %.3f, want ≤0.10", at1.FalsePositive)
	}
	if at1.FalseNegative > 0.15 {
		t.Errorf("FN(1dB) = %.3f, want small", at1.FalseNegative)
	}
}

func TestDetectionTradeoffValidation(t *testing.T) {
	if _, err := RunDetectionTradeoff(DefaultRSSIStudyConfig(1), nil); err == nil {
		t.Error("empty thresholds accepted")
	}
}
