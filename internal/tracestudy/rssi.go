package tracestudy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"greedy80211/internal/phys"
)

// RSSIStudyConfig parameterizes the Fig 21/22 reproduction: nodes spread
// over an office floor, per-link RSSI sampling, median tracking.
type RSSIStudyConfig struct {
	// Nodes is the testbed size (the paper used 16).
	Nodes int
	// FloorW and FloorH are the floor dimensions in meters.
	FloorW, FloorH float64
	// SamplesPerLink is how many RSSI readings each directed link gets.
	SamplesPerLink int
	// Model is the per-packet RSSI process.
	Model phys.RSSIModel
	// PathLossExponent shapes indoor attenuation (≈3.5 for offices).
	PathLossExponent float64
	// Seed drives placement and sampling.
	Seed int64
}

// DefaultRSSIStudyConfig mirrors the paper's 16-node office floor.
func DefaultRSSIStudyConfig(seed int64) RSSIStudyConfig {
	return RSSIStudyConfig{
		Nodes:            16,
		FloorW:           50,
		FloorH:           30,
		SamplesPerLink:   200,
		Model:            phys.DefaultRSSIModel(),
		PathLossExponent: 3.5,
		Seed:             seed,
	}
}

func (c RSSIStudyConfig) validate() error {
	if c.Nodes < 3 {
		return fmt.Errorf("tracestudy: need ≥3 nodes, got %d", c.Nodes)
	}
	if c.SamplesPerLink < 3 {
		return fmt.Errorf("tracestudy: need ≥3 samples per link, got %d", c.SamplesPerLink)
	}
	if c.FloorW <= 0 || c.FloorH <= 0 {
		return fmt.Errorf("tracestudy: invalid floor %v × %v", c.FloorW, c.FloorH)
	}
	return nil
}

// link holds the ground truth of one directed link in the study.
type link struct {
	meanDBm   float64
	medianDBm float64
}

// rssiWorld is the generated floor: node positions and per-link state.
type rssiWorld struct {
	cfg   RSSIStudyConfig
	rng   *rand.Rand
	pos   []phys.Position
	links map[[2]int]*link // [sender, receiver]
}

func buildRSSIWorld(cfg RSSIStudyConfig) (*rssiWorld, []float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	w := &rssiWorld{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		links: make(map[[2]int]*link),
	}
	for i := 0; i < cfg.Nodes; i++ {
		w.pos = append(w.pos, phys.Position{
			X: w.rng.Float64() * cfg.FloorW,
			Y: w.rng.Float64() * cfg.FloorH,
		})
	}
	prop := phys.Propagation{
		CommRange:         1e6, // everyone hears everyone on one floor
		CSRange:           1e6,
		TxPowerDBm:        18,
		PathLossExponent:  cfg.PathLossExponent,
		ReferenceDistance: 1,
	}
	var deviations []float64
	for s := 0; s < cfg.Nodes; s++ {
		for r := 0; r < cfg.Nodes; r++ {
			if s == r {
				continue
			}
			mean := prop.RxPowerDBm(w.pos[s].DistanceTo(w.pos[r]))
			samples := make([]float64, cfg.SamplesPerLink)
			for k := range samples {
				samples[k] = cfg.Model.Sample(w.rng, mean)
			}
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)
			median := sorted[len(sorted)/2]
			w.links[[2]int{s, r}] = &link{meanDBm: mean, medianDBm: median}
			for _, v := range samples {
				deviations = append(deviations, math.Abs(v-median))
			}
		}
	}
	return w, deviations, nil
}

// RSSIStudyResult carries every |RSSI − median| deviation observed.
type RSSIStudyResult struct {
	Deviations []float64
}

// RunRSSIStudy generates the floor and samples every link (Fig 21).
func RunRSSIStudy(cfg RSSIStudyConfig) (RSSIStudyResult, error) {
	_, devs, err := buildRSSIWorld(cfg)
	if err != nil {
		return RSSIStudyResult{}, err
	}
	return RSSIStudyResult{Deviations: devs}, nil
}

// CDF reports the fraction of deviations ≤ x for each x.
func (r RSSIStudyResult) CDF(xs []float64) []float64 {
	sorted := append([]float64(nil), r.Deviations...)
	sort.Float64s(sorted)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))) /
			float64(len(sorted))
	}
	return out
}

// FractionWithin reports the fraction of deviations ≤ x (the paper's
// headline: ≈95% within 1 dB).
func (r RSSIStudyResult) FractionWithin(x float64) float64 {
	if len(r.Deviations) == 0 {
		return 0
	}
	n := 0
	for _, d := range r.Deviations {
		if d <= x {
			n++
		}
	}
	return float64(n) / float64(len(r.Deviations))
}

// TradeoffPoint is one threshold's detection quality (Fig 22).
type TradeoffPoint struct {
	ThresholdDB   float64
	FalsePositive float64 // legitimate ACK flagged as spoofed
	FalseNegative float64 // spoofed ACK accepted as legitimate
}

// RunDetectionTradeoff sweeps the RSSI threshold: a false positive is a
// true receiver's sample deviating beyond the threshold from its own link
// median; a false negative is a spoofer's sample (drawn on the
// spoofer→sender link) falling within the threshold of the impersonated
// receiver's median. Spoofer/victim pairs range over all node triples.
func RunDetectionTradeoff(cfg RSSIStudyConfig, thresholds []float64) ([]TradeoffPoint, error) {
	w, devs, err := buildRSSIWorld(cfg)
	if err != nil {
		return nil, err
	}
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("tracestudy: no thresholds")
	}
	// Spoof deviations: for each sender S, victim N, spoofer G (all
	// distinct), sample G→S readings against N→S's median.
	var spoofDevs []float64
	const spoofSamples = 8
	for s := 0; s < cfg.Nodes; s++ {
		for n := 0; n < cfg.Nodes; n++ {
			if n == s {
				continue
			}
			victim := w.links[[2]int{n, s}]
			for g := 0; g < cfg.Nodes; g++ {
				if g == s || g == n {
					continue
				}
				spoofer := w.links[[2]int{g, s}]
				for k := 0; k < spoofSamples; k++ {
					sample := cfg.Model.Sample(w.rng, spoofer.meanDBm)
					spoofDevs = append(spoofDevs, math.Abs(sample-victim.medianDBm))
				}
			}
		}
	}
	out := make([]TradeoffPoint, 0, len(thresholds))
	for _, th := range thresholds {
		fp := 0
		for _, d := range devs {
			if d > th {
				fp++
			}
		}
		fn := 0
		for _, d := range spoofDevs {
			if d <= th {
				fn++
			}
		}
		out = append(out, TradeoffPoint{
			ThresholdDB:   th,
			FalsePositive: float64(fp) / float64(len(devs)),
			FalseNegative: float64(fn) / float64(len(spoofDevs)),
		})
	}
	return out, nil
}
