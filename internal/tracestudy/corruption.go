// Package tracestudy reproduces the paper's measurement studies as
// synthetic experiments (the original studies ran on an office-floor
// MadWiFi/Click testbed we do not have — see DESIGN.md §2):
//
//   - Table I: how often corrupted frames preserve their MAC addresses,
//     the feasibility basis of misbehavior 3 (fake ACKs).
//   - Fig 21: the CDF of per-packet RSSI deviation from the link median
//     over a 16-node floor, the feasibility basis of GRC's spoofed-ACK
//     detector.
//   - Fig 22: the detector's false-positive/false-negative trade-off as
//     the RSSI threshold sweeps 0–5 dB.
package tracestudy

import (
	"fmt"
	"math/rand"

	"greedy80211/internal/phys"
)

// CorruptionStudyConfig parameterizes a Table I reproduction.
type CorruptionStudyConfig struct {
	// Frames is how many frame receptions to simulate (the paper captured
	// 65536 on 802.11b and 23068 on 802.11a).
	Frames int
	// FrameBytes is the frame size on the air.
	FrameBytes int
	// Process generates the per-frame error pattern.
	Process phys.ByteErrorProcess
	// Seed drives the draw.
	Seed int64
}

// CorruptionStudyResult is one Table I row.
type CorruptionStudyResult struct {
	Received            int
	Corrupted           int
	CorruptedDstOK      int // corrupted frames with intact destination
	CorruptedSrcDstOK   int // corrupted frames with both addresses intact
	DstPreservedRate    float64
	SrcDstPreservedRate float64 // among frames with intact destination
}

// RunCorruptionStudy draws the configured number of frames and tallies
// address preservation among the corrupted ones.
func RunCorruptionStudy(cfg CorruptionStudyConfig) (CorruptionStudyResult, error) {
	if cfg.Frames <= 0 || cfg.FrameBytes <= 16 {
		return CorruptionStudyResult{}, fmt.Errorf(
			"tracestudy: need positive frames and >16-byte frames, got %d × %dB",
			cfg.Frames, cfg.FrameBytes)
	}
	if cfg.Process == nil {
		return CorruptionStudyResult{}, fmt.Errorf("tracestudy: nil error process")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := CorruptionStudyResult{Received: cfg.Frames}
	for i := 0; i < cfg.Frames; i++ {
		c := cfg.Process.CorruptFrame(rng, cfg.FrameBytes)
		if !c.Corrupted {
			continue
		}
		res.Corrupted++
		if !c.DstHit {
			res.CorruptedDstOK++
			if !c.SrcHit {
				res.CorruptedSrcDstOK++
			}
		}
	}
	if res.Corrupted > 0 {
		res.DstPreservedRate = float64(res.CorruptedDstOK) / float64(res.Corrupted)
	}
	if res.CorruptedDstOK > 0 {
		res.SrcDstPreservedRate = float64(res.CorruptedSrcDstOK) / float64(res.CorruptedDstOK)
	}
	return res, nil
}

// TableIConfig80211B returns a configuration calibrated to the paper's
// 802.11b capture: 65536 frames, ~2.1% corrupted, near-memoryless residual
// byte errors (high preservation: 98.8% / 94.9%).
func TableIConfig80211B(seed int64) CorruptionStudyConfig {
	return CorruptionStudyConfig{
		Frames:     65536,
		FrameBytes: 1092,
		// Mild burstiness: mostly isolated byte errors with occasional
		// short bursts, tuned to Table I's 802.11b row.
		Process: phys.GilbertElliott{
			PGoodToBad: 0.0000165,
			PBadToGood: 0.35,
			PErrGood:   0,
			PErrBad:    0.65,
			PStartBad:  -1,
		},
		Seed: seed,
	}
}

// TableIConfig80211A returns a configuration calibrated to the paper's
// 802.11a capture: 23068 frames, ~32% corrupted, strongly bursty OFDM
// symbol failures (lower preservation: 84% / 91.4%).
func TableIConfig80211A(seed int64) CorruptionStudyConfig {
	return CorruptionStudyConfig{
		Frames:     23068,
		FrameBytes: 1092,
		// OFDM frames fail as a whole: a marginal-SNR fade lasts longer
		// than one frame (coherence time ≫ frame airtime), scattering
		// symbol errors across the entire frame. 32% of frames start in a
		// fade; within one, each byte is corrupted with ≈2.6% probability,
		// which puts the 6-byte address fields at ≈15% risk — the paper's
		// 84%/91.4% preservation rates.
		Process: phys.GilbertElliott{
			PGoodToBad: 0,
			PBadToGood: 0,
			PErrGood:   0,
			PErrBad:    0.026,
			PStartBad:  0.32,
		},
		Seed: seed,
	}
}
