package sim

// Timer is a restartable one-shot timer layered on the Scheduler's event
// queue. MAC-layer timeouts (CTS timeout, ACK timeout, NAV expiry, backoff
// slots) are all Timers. The zero value is unusable; create with NewTimer.
type Timer struct {
	sched *Scheduler
	fn    Handler
	ev    *Event
	// fire is the bound t.fire method, captured once at construction so
	// re-arming the timer does not allocate a fresh method value.
	fire Handler
}

// NewTimer returns a stopped timer that runs fn each time it expires.
func NewTimer(sched *Scheduler, fn Handler) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil handler")
	}
	t := &Timer{sched: sched, fn: fn}
	t.fire = t.onFire
	return t
}

// Start arms the timer to fire after delay, replacing any pending expiry.
func (t *Timer) Start(delay Time) {
	t.Stop()
	t.ev = t.sched.Schedule(delay, t.fire)
}

// StartAt arms the timer to fire at absolute time when, replacing any
// pending expiry.
func (t *Timer) StartAt(when Time) {
	t.Stop()
	t.ev = t.sched.At(when, t.fire)
}

// Stop disarms the timer if pending. Safe to call at any time.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sched.Cancel(t.ev)
		t.ev = nil
	}
}

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.ev != nil && !t.ev.Cancelled() }

// Deadline reports when the timer will fire, or Never if not pending.
func (t *Timer) Deadline() Time {
	if !t.Pending() {
		return Never
	}
	return t.ev.When()
}

func (t *Timer) onFire() {
	t.ev = nil
	t.fn()
}
