// Package sim provides the discrete-event simulation kernel used by every
// other package in this repository: virtual time, an event scheduler, and
// deterministic random-number streams.
//
// The kernel is deliberately small. A simulation is a single goroutine that
// pops timestamped events off a heap and executes their callbacks; callbacks
// schedule further events. Determinism comes from (a) a total order on
// events (time, then insertion sequence) and (b) seeded RNG streams handed
// out by the Scheduler.
package sim

import (
	"fmt"
	"strconv"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. 802.11 works in microsecond quanta, but nanosecond resolution
// keeps propagation-delay and rate arithmetic exact without floating point.
type Time int64

// Duration units, mirroring time.Duration but for virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Never is a sentinel meaning "no scheduled time". It sorts after every
// realistic simulation instant.
const Never Time = 1<<63 - 1

// Microseconds reports t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "152.3µs" or "1.250s".
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return strconv.FormatInt(int64(t), 10) + "ns"
	case t < Millisecond:
		return fmt.Sprintf("%.1fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// FromMicroseconds converts a microsecond count to a Time.
func FromMicroseconds(us int64) Time { return Time(us) * Microsecond }

// FromSeconds converts a (possibly fractional) second count to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }
