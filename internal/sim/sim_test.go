package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	tests := []struct {
		name string
		in   Time
		want string
	}{
		{"nanoseconds", 512 * Nanosecond, "512ns"},
		{"microseconds", 152*Microsecond + 300*Nanosecond, "152.3µs"},
		{"milliseconds", 5 * Millisecond, "5.000ms"},
		{"seconds", 1250 * Millisecond, "1.250s"},
		{"never", Never, "never"},
		{"negative", -3 * Millisecond, "-3.000ms"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromMicroseconds(50); got != 50*Microsecond {
		t.Errorf("FromMicroseconds(50) = %v", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3.0 {
		t.Errorf("Microseconds() = %v", got)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.Schedule(30*Microsecond, func() { order = append(order, 3) })
	s.Schedule(10*Microsecond, func() { order = append(order, 1) })
	s.Schedule(20*Microsecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 30*Microsecond {
		t.Errorf("clock = %v, want 30µs", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Microsecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	ev := s.Schedule(10*Microsecond, func() { fired = true })
	s.Cancel(ev)
	s.Cancel(ev) // double-cancel is a no-op
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestSchedulerCascade(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.Schedule(Microsecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run()
	if count != 100 {
		t.Errorf("cascade count = %d, want 100", count)
	}
	if s.Executed() != 100 {
		t.Errorf("Executed() = %d, want 100", s.Executed())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		s.Schedule(d*Microsecond, func() { fired = append(fired, d) })
	}
	s.RunUntil(20 * Microsecond) // inclusive
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	if s.Now() != 20*Microsecond {
		t.Errorf("clock = %v, want 20µs", s.Now())
	}
	s.RunUntil(100 * Microsecond)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4", fired)
	}
	if s.Now() != 100*Microsecond {
		t.Errorf("clock advanced to %v, want 100µs", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i)*Microsecond, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (halted)", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.Schedule(10*Microsecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5*Microsecond, func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a := NewScheduler(42)
	b := NewScheduler(42)
	ra, rb := a.RNG(), b.RNG()
	for i := 0; i < 100; i++ {
		if ra.Int63() != rb.Int63() {
			t.Fatal("same seed, same stream index: sequences differ")
		}
	}
	// Different stream indices should not be identical.
	rc := a.RNG()
	same := true
	raCheck := NewScheduler(42).RNG()
	for i := 0; i < 20; i++ {
		if rc.Int63() != raCheck.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct streams produced identical output")
	}
}

func TestTimerBasics(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	if tm.Pending() {
		t.Error("new timer pending")
	}
	tm.Start(10 * Microsecond)
	if !tm.Pending() {
		t.Error("armed timer not pending")
	}
	if tm.Deadline() != 10*Microsecond {
		t.Errorf("deadline = %v", tm.Deadline())
	}
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
	if tm.Deadline() != Never {
		t.Errorf("idle deadline = %v, want Never", tm.Deadline())
	}
}

func TestTimerRestartReplaces(t *testing.T) {
	s := NewScheduler(1)
	var times []Time
	tm := NewTimer(s, func() { times = append(times, s.Now()) })
	tm.Start(10 * Microsecond)
	tm.Start(25 * Microsecond) // replaces the first arming
	s.Run()
	if len(times) != 1 || times[0] != 25*Microsecond {
		t.Errorf("fired at %v, want exactly [25µs]", times)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := NewTimer(s, func() { fired = true })
	tm.Start(10 * Microsecond)
	tm.Stop()
	tm.Stop() // idempotent
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerStartAt(t *testing.T) {
	s := NewScheduler(1)
	var at Time = -1
	tm := NewTimer(s, func() { at = s.Now() })
	s.Schedule(5*Microsecond, func() { tm.StartAt(42 * Microsecond) })
	s.Run()
	if at != 42*Microsecond {
		t.Errorf("fired at %v, want 42µs", at)
	}
}

// Property: for any batch of (time, id) pairs, events fire sorted by time
// with ties broken by insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := NewScheduler(7)
		type rec struct {
			when Time
			id   int
		}
		var fired []rec
		for i, d := range delaysRaw {
			i, when := i, Time(d)*Microsecond
			s.At(when, func() { fired = append(fired, rec{when, i}) })
		}
		s.Run()
		if len(fired) != len(delaysRaw) {
			return false
		}
		sorted := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].when != fired[j].when {
				return fired[i].when < fired[j].when
			}
			return fired[i].id < fired[j].id
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil never leaves an event with when ≤ end unexecuted.
func TestPropertyRunUntilComplete(t *testing.T) {
	f := func(delaysRaw []uint16, endRaw uint16) bool {
		s := NewScheduler(3)
		end := Time(endRaw) * Microsecond
		want := 0
		got := 0
		for _, d := range delaysRaw {
			when := Time(d) * Microsecond
			if when <= end {
				want++
			}
			s.At(when, func() { got++ })
		}
		s.RunUntil(end)
		return got == want && s.Now() == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCancelledNeverFire(t *testing.T) {
	f := func(delaysRaw []uint16, cancelMask []bool) bool {
		s := NewScheduler(9)
		rng := rand.New(rand.NewSource(1))
		_ = rng
		firedCancelled := false
		var events []*Event
		for i, d := range delaysRaw {
			i := i
			ev := s.At(Time(d)*Microsecond, func() {
				if i < len(cancelMask) && cancelMask[i] {
					firedCancelled = true
				}
			})
			events = append(events, ev)
		}
		for i, ev := range events {
			if i < len(cancelMask) && cancelMask[i] {
				s.Cancel(ev)
			}
		}
		s.Run()
		return !firedCancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Cancelled events must not disturb FIFO ordering among surviving
// same-time events, even when cancellations interleave with scheduling.
func TestSameTimeFIFOWithCancellations(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(5*Microsecond, func() { order = append(order, i) }))
	}
	for i, ev := range events {
		if i%3 == 0 {
			s.Cancel(ev)
		}
	}
	s.Run()
	want := 0
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			continue
		}
		if want >= len(order) || order[want] != i {
			t.Fatalf("surviving same-time events out of FIFO order: %v", order)
		}
		want++
	}
	if want != len(order) {
		t.Fatalf("fired %d events, want %d: %v", len(order), want, order)
	}
}

// A cancel-heavy workload (the Timer restart pattern: every armed timeout
// is cancelled and re-armed) must drain completely and fire nothing twice.
func TestCancelHeavyWorkload(t *testing.T) {
	s := NewScheduler(1)
	fired := map[int]int{}
	var pending []*Event
	for round := 0; round < 50; round++ {
		for _, ev := range pending {
			s.Cancel(ev)
		}
		pending = pending[:0]
		for i := 0; i < 10; i++ {
			id := round*10 + i
			pending = append(pending, s.Schedule(Time(10+i)*Microsecond, func() { fired[id]++ }))
		}
		s.RunUntil(s.Now() + 5*Microsecond) // half-way: nothing due yet
	}
	s.Run()
	// Only the final round's events survive; each fires exactly once.
	if len(fired) != 10 {
		t.Fatalf("%d distinct events fired, want 10", len(fired))
	}
	for id, n := range fired {
		if id < 490 || n != 1 {
			t.Fatalf("event %d fired %d times", id, n)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", s.Pending())
	}
}

// Freelist reuse: once a workload's events have been popped, rescheduling
// the same volume must reuse their storage instead of growing the slab.
func TestFreelistReuseAfterPop(t *testing.T) {
	s := NewScheduler(1)
	burst := func() {
		for i := 0; i < 3*eventChunkSize; i++ {
			ev := s.Schedule(Time(i)*Microsecond, func() {})
			if i%2 == 0 {
				s.Cancel(ev) // cancelled events recycle on pop too
			}
		}
		s.Run()
	}
	burst()
	chunksAfterFirst := s.chunks
	if chunksAfterFirst == 0 {
		t.Fatal("no slab chunks allocated by first burst")
	}
	for i := 0; i < 10; i++ {
		burst()
	}
	if s.chunks != chunksAfterFirst {
		t.Errorf("slab grew from %d to %d chunks across identical bursts; freelist not reused",
			chunksAfterFirst, s.chunks)
	}
}

// Recycled events must present fresh state to the next Schedule call: a
// cancelled-then-recycled slot starts un-cancelled.
func TestRecycledEventStateReset(t *testing.T) {
	s := NewScheduler(1)
	ev := s.Schedule(Microsecond, func() {})
	s.Cancel(ev)
	s.Run() // drains and recycles ev
	fired := false
	ev2 := s.Schedule(Microsecond, func() { fired = true })
	if ev2.Cancelled() {
		t.Fatal("recycled event starts cancelled")
	}
	s.Run()
	if !fired {
		t.Fatal("event on recycled storage did not fire")
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.Schedule(Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.Schedule(0, tick)
	s.Run()
}

// BenchmarkSchedulerCancelHeavy models the MAC's dominant pattern: nearly
// every scheduled timeout is cancelled (ACK arrives before the timer) and
// replaced. The queue must absorb the dead events without allocating.
func BenchmarkSchedulerCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	s := NewScheduler(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n >= b.N {
			return
		}
		doomed := s.Schedule(50*Microsecond, func() { panic("cancelled event fired") })
		s.Schedule(Microsecond, tick)
		s.Cancel(doomed)
	}
	b.ResetTimer()
	s.Schedule(0, tick)
	s.Run()
}

// BenchmarkSchedulerFanout measures heap behavior at depth: a wide queue
// of pending events with steady pop/push turnover.
func BenchmarkSchedulerFanout(b *testing.B) {
	b.ReportAllocs()
	s := NewScheduler(1)
	const width = 4096
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.Schedule(Time(width)*Microsecond, tick)
		}
	}
	for i := 0; i < width; i++ {
		s.Schedule(Time(i)*Microsecond, tick)
	}
	b.ResetTimer()
	s.Run()
}
