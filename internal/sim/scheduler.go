package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Handler is an event callback. It runs at the event's scheduled time with
// the Scheduler's clock already advanced to that time.
type Handler func()

// Event is a scheduled callback. The zero value is not useful; events are
// created via Scheduler.Schedule or Scheduler.At. An Event may be cancelled
// before it fires; cancellation is O(1) (the event is skipped when popped).
type Event struct {
	when      Time
	seq       uint64 // tie-break: FIFO among same-time events
	index     int    // heap index, -1 once popped
	cancelled bool
	fn        Handler
}

// When reports the time at which the event is (or was) scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventQueue implements heap.Interface over *Event ordered by (when, seq).
type eventQueue []*Event

// Len implements heap.Interface.
func (q eventQueue) Len() int { return len(q) }

// Less implements heap.Interface.
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

// Swap implements heap.Interface.
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

// Push implements heap.Interface.
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

// Pop implements heap.Interface.
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is the discrete-event simulation core: a virtual clock and a
// priority queue of events. It is single-goroutine by design — all of the
// simulation's concurrency is virtual. A Scheduler also acts as the root of
// the simulation's deterministic randomness (see RNG).
type Scheduler struct {
	now      Time
	queue    eventQueue
	seq      uint64
	executed uint64
	seed     int64
	streams  int64
	halted   bool
}

// NewScheduler returns a scheduler with its clock at zero, seeding all RNG
// streams derived via RNG from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Executed reports how many events have fired so far (useful for progress
// accounting and benchmarks).
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending reports the number of events still queued (including cancelled
// events not yet skipped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// RNG returns a new deterministic random stream. Streams are derived from
// the scheduler seed and a counter, so the i-th stream requested is the same
// across runs with the same seed regardless of timing.
func (s *Scheduler) RNG() *rand.Rand {
	s.streams++
	// SplitMix-style mixing keeps streams decorrelated even for small seeds.
	z := uint64(s.seed) + uint64(s.streams)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// At schedules fn to run at absolute time t, which must not be in the past.
func (s *Scheduler) At(t Time, fn Handler) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	ev := &Event{when: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// Schedule schedules fn to run after delay (which may be zero but not
// negative).
func (s *Scheduler) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	ev.fn = nil // release references held by the closure
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Halt() { s.halted = true }

// step pops and executes the next event. It reports false when the queue is
// exhausted.
func (s *Scheduler) step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.cancelled {
			continue
		}
		s.now = ev.when
		fn := ev.fn
		ev.fn = nil
		s.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.step() {
	}
}

// RunUntil executes events with time ≤ end, leaving the clock at end (or at
// the last event if the queue empties first). Events scheduled at exactly
// end do fire.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		// Peek: the heap root is the earliest event.
		var next *Event
		for len(s.queue) > 0 && s.queue[0].cancelled {
			heap.Pop(&s.queue)
		}
		if len(s.queue) == 0 {
			break
		}
		next = s.queue[0]
		if next.when > end {
			break
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
}
