package sim

import (
	"fmt"
	"math/rand"
)

// Handler is an event callback. It runs at the event's scheduled time with
// the Scheduler's clock already advanced to that time.
type Handler func()

// Event is a scheduled callback. The zero value is not useful; events are
// created via Scheduler.Schedule or Scheduler.At. An Event may be cancelled
// before it fires; cancellation is O(1) (the event is skipped when popped).
//
// Events are recycled: once an event has fired (or been cancelled and
// drained from the queue) its storage returns to the scheduler's freelist
// and a later Schedule/At call may hand the same *Event out again. Holding
// a reference past that point and calling Cancel on it would cancel the
// event's next incarnation, so drop references when an event fires — the
// pattern Timer follows by clearing its pointer before running the handler.
type Event struct {
	when      Time
	seq       uint64 // tie-break: FIFO among same-time events
	cancelled bool
	fn        Handler
}

// When reports the time at which the event is (or was) scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// entry is one heap slot. The ordering key (when, seq) is stored inline so
// sift comparisons stay within the heap's own backing array instead of
// chasing the *Event pointer.
type entry struct {
	when Time
	seq  uint64
	ev   *Event
}

// less orders entries by (when, seq): earliest first, FIFO among ties.
func less(a, b entry) bool {
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

// heapArity is the fan-out of the implicit min-heap. A 4-ary heap is
// shallower than a binary one (fewer cache lines touched per pop) and the
// four-child scan stays within one or two lines of the entry slice.
const heapArity = 4

// eventChunkSize is how many Events each slab allocation holds. Event
// pointers must stay stable, so events are allocated in fixed-size chunks
// rather than one growable slice.
const eventChunkSize = 256

// Scheduler is the discrete-event simulation core: a virtual clock and a
// priority queue of events. It is single-goroutine by design — all of the
// simulation's concurrency is virtual; independent Schedulers may run on
// concurrent goroutines. A Scheduler also acts as the root of the
// simulation's deterministic randomness (see RNG).
type Scheduler struct {
	now      Time
	heap     []entry
	seq      uint64
	executed uint64
	seed     int64
	streams  int64
	halted   bool

	// Event storage: fixed-size chunks keep *Event stable while the
	// freelist recycles fired/cancelled events, so steady-state
	// scheduling does not allocate.
	free   []*Event
	chunks int // number of slabs allocated (growth observability)
}

// NewScheduler returns a scheduler with its clock at zero, seeding all RNG
// streams derived via RNG from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Executed reports how many events have fired so far (useful for progress
// accounting and benchmarks).
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending reports the number of events still queued (including cancelled
// events not yet skipped).
func (s *Scheduler) Pending() int { return len(s.heap) }

// RNG returns a new deterministic random stream. Streams are derived from
// the scheduler seed and a counter, so the i-th stream requested is the same
// across runs with the same seed regardless of timing.
func (s *Scheduler) RNG() *rand.Rand {
	s.streams++
	// SplitMix-style mixing keeps streams decorrelated even for small seeds.
	z := uint64(s.seed) + uint64(s.streams)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// alloc hands out an Event from the freelist, growing the slab by one
// chunk only when every previously allocated event is live.
func (s *Scheduler) alloc() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	chunk := make([]Event, eventChunkSize)
	s.chunks++
	for i := 1; i < eventChunkSize; i++ {
		s.free = append(s.free, &chunk[i])
	}
	return &chunk[0]
}

// release returns a drained event to the freelist.
func (s *Scheduler) release(ev *Event) {
	ev.fn = nil
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute time t, which must not be in the past.
func (s *Scheduler) At(t Time, fn Handler) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	ev := s.alloc()
	ev.when = t
	ev.seq = s.seq
	ev.cancelled = false
	ev.fn = fn
	s.push(entry{when: t, seq: s.seq, ev: ev})
	s.seq++
	return ev
}

// Schedule schedules fn to run after delay (which may be zero but not
// negative).
func (s *Scheduler) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	ev.fn = nil // release references held by the closure
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Halt() { s.halted = true }

// push appends e and sifts it up to its heap position.
func (s *Scheduler) push(e entry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.heap = h
}

// pop removes and returns the minimum entry. The caller must ensure the
// heap is non-empty.
func (s *Scheduler) pop() entry {
	h := s.heap
	min := h[0]
	n := len(h) - 1
	moved := h[n]
	h[n] = entry{} // drop the *Event reference for the GC
	h = h[:n]
	s.heap = h
	if n > 0 {
		// Sift moved down from the root, shifting smaller children up
		// into the hole instead of swapping.
		i := 0
		for {
			first := heapArity*i + 1
			if first >= n {
				break
			}
			m := first
			end := first + heapArity
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if less(h[c], h[m]) {
					m = c
				}
			}
			if !less(h[m], moved) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = moved
	}
	return min
}

// step pops and executes the next event. It reports false when the queue is
// exhausted.
func (s *Scheduler) step() bool {
	for len(s.heap) > 0 {
		e := s.pop()
		ev := e.ev
		if ev.cancelled {
			s.release(ev)
			continue
		}
		s.now = e.when
		fn := ev.fn
		s.executed++
		fn()
		s.release(ev)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.step() {
	}
}

// RunUntil executes events with time ≤ end, leaving the clock at end (or at
// the last event if the queue empties first). Events scheduled at exactly
// end do fire.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		// Peek: the heap root is the earliest event. Drain cancelled
		// events so the peek sees a live one.
		for len(s.heap) > 0 && s.heap[0].ev.cancelled {
			s.release(s.pop().ev)
		}
		if len(s.heap) == 0 {
			break
		}
		if s.heap[0].when > end {
			break
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
}
