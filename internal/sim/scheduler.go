package sim

import (
	"fmt"
	"math/rand"

	"greedy80211/internal/pool"
)

// Handler is an event callback. It runs at the event's scheduled time with
// the Scheduler's clock already advanced to that time.
type Handler func()

// ArgHandler is an event callback taking the argument it was scheduled
// with (see AtCall). Passing a package-level function plus a pointer
// argument schedules with zero allocations, where an equivalent closure
// would allocate per event or per captured object.
type ArgHandler func(arg any)

// Event is a scheduled callback. The zero value is not useful; events are
// created via Scheduler.Schedule or Scheduler.At. An Event may be cancelled
// before it fires; cancellation is O(1) (the event is skipped when popped).
//
// Events are recycled: once an event has fired (or been cancelled and
// drained from the queue) its storage returns to the scheduler's freelist
// and a later Schedule/At call may hand the same *Event out again. Holding
// a reference past that point and calling Cancel on it would cancel the
// event's next incarnation, so drop references when an event fires — the
// pattern Timer follows by clearing its pointer before running the handler.
type Event struct {
	when      Time
	seq       uint64 // tie-break: FIFO among same-time events
	id        uint32 // slab slot, fixed at chunk allocation (see entry)
	cancelled bool
	fn        Handler
	argFn     ArgHandler // exactly one of fn/argFn is set
	arg       any
}

// When reports the time at which the event is (or was) scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// entry is one heap slot. The ordering key (when, seq) is stored inline so
// sift comparisons stay within the heap's own backing array instead of
// chasing the event, and the event itself is referenced by its slab id
// rather than a pointer: a pointer-free entry type means sift swaps issue
// no GC write barriers and the GC never scans the heap slice. Both showed
// up in profiles (pop was ~30% flat, with barrier flushes behind it).
type entry struct {
	when Time
	seq  uint64
	id   uint32
}

// less orders entries by (when, seq): earliest first, FIFO among ties.
func less(a, b entry) bool {
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

// heapArity is the fan-out of the implicit min-heap. A 4-ary heap is
// shallower than a binary one (fewer cache lines touched per pop) and the
// four-child scan stays within one or two lines of the entry slice.
const heapArity = 4

// eventChunkSize is how many Events each slab allocation holds. Event
// pointers must stay stable, so events are allocated in fixed-size chunks
// rather than one growable slice. The size must stay a power of two: an
// event's id decomposes as (slab index << shift) | slot.
// Live events track pending-queue depth (tens in hotspot scenarios), and
// a world is built per seed, so a small slab keeps construction cheap.
const (
	eventChunkSize  = 64
	eventChunkShift = 6
	eventChunkMask  = eventChunkSize - 1
)

// eventSlab is one fixed-size block of event storage.
type eventSlab [eventChunkSize]Event

// Scheduler is the discrete-event simulation core: a virtual clock and a
// priority queue of events. It is single-goroutine by design — all of the
// simulation's concurrency is virtual; independent Schedulers may run on
// concurrent goroutines. A Scheduler also acts as the root of the
// simulation's deterministic randomness (see RNG).
type Scheduler struct {
	now      Time
	heap     []entry
	seq      uint64
	executed uint64
	seed     int64
	streams  int64
	halted   bool

	// Event storage: fixed-size slabs keep *Event stable while the
	// freelist recycles fired/cancelled events (by id, keeping the
	// freelist pointer-free too), so steady-state scheduling does not
	// allocate.
	slabs  []*eventSlab
	free   []uint32
	chunks int // number of slabs allocated (growth observability)
}

// eventAt resolves a slab id back to its event.
func (s *Scheduler) eventAt(id uint32) *Event {
	return &s.slabs[id>>eventChunkShift][id&eventChunkMask]
}

// NewScheduler returns a scheduler with its clock at zero, seeding all RNG
// streams derived via RNG from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Executed reports how many events have fired so far (useful for progress
// accounting and benchmarks).
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending reports the number of events still queued (including cancelled
// events not yet skipped).
func (s *Scheduler) Pending() int { return len(s.heap) }

// Stats reports the event slab's occupancy in the same shape the object
// pools use: chunks grown, events currently queued (live), and freelist
// depth. Every At call checks an event out, so Gets equals the lifetime
// schedule count.
func (s *Scheduler) Stats() pool.Stats {
	live := s.chunks*eventChunkSize - len(s.free)
	return pool.Stats{
		Chunks:    s.chunks,
		ChunkSize: eventChunkSize,
		Live:      live,
		Free:      len(s.free),
		Gets:      s.seq,
		Puts:      s.seq - uint64(live),
	}
}

// RNG returns a new deterministic random stream. Streams are derived from
// the scheduler seed and a counter, so the i-th stream requested is the same
// across runs with the same seed regardless of timing.
func (s *Scheduler) RNG() *rand.Rand {
	s.streams++
	// SplitMix-style mixing keeps streams decorrelated even for small seeds.
	z := uint64(s.seed) + uint64(s.streams)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// alloc hands out an Event from the freelist, growing the slab by one
// chunk only when every previously allocated event is live.
func (s *Scheduler) alloc() *Event {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return s.eventAt(id)
	}
	slab := new(eventSlab)
	base := uint32(len(s.slabs)) << eventChunkShift
	s.slabs = append(s.slabs, slab)
	s.chunks++
	for i := eventChunkSize - 1; i >= 1; i-- {
		slab[i].id = base + uint32(i)
		s.free = append(s.free, base+uint32(i))
	}
	slab[0].id = base
	return &slab[0]
}

// release returns a drained event to the freelist.
func (s *Scheduler) release(ev *Event) {
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	s.free = append(s.free, ev.id)
}

// At schedules fn to run at absolute time t, which must not be in the past.
func (s *Scheduler) At(t Time, fn Handler) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	ev := s.alloc()
	ev.when = t
	ev.seq = s.seq
	ev.cancelled = false
	ev.fn = fn
	s.push(entry{when: t, seq: s.seq, id: ev.id})
	s.seq++
	return ev
}

// AtCall schedules fn(arg) to run at absolute time t. It is the
// allocation-free alternative to At for hot paths: fn is typically a
// package-level function and arg a pooled object, so neither boxes.
func (s *Scheduler) AtCall(t Time, fn ArgHandler, arg any) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	ev := s.alloc()
	ev.when = t
	ev.seq = s.seq
	ev.cancelled = false
	ev.argFn = fn
	ev.arg = arg
	s.push(entry{when: t, seq: s.seq, id: ev.id})
	s.seq++
	return ev
}

// Schedule schedules fn to run after delay (which may be zero but not
// negative).
func (s *Scheduler) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	// Release references held by the closure or argument.
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Halt() { s.halted = true }

// push appends e and sifts it up to its heap position.
func (s *Scheduler) push(e entry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.heap = h
}

// pop removes and returns the minimum entry. The caller must ensure the
// heap is non-empty.
func (s *Scheduler) pop() entry {
	h := s.heap
	min := h[0]
	n := len(h) - 1
	moved := h[n]
	h = h[:n]
	s.heap = h
	if n > 0 {
		// Sift moved down from the root, shifting smaller children up
		// into the hole instead of swapping.
		i := 0
		for {
			first := heapArity*i + 1
			if first >= n {
				break
			}
			m := first
			end := first + heapArity
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if less(h[c], h[m]) {
					m = c
				}
			}
			if !less(h[m], moved) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = moved
	}
	return min
}

// step pops and executes the next event. It reports false when the queue is
// exhausted.
func (s *Scheduler) step() bool {
	for len(s.heap) > 0 {
		e := s.pop()
		ev := s.eventAt(e.id)
		if ev.cancelled {
			s.release(ev)
			continue
		}
		s.now = e.when
		s.executed++
		if fn := ev.fn; fn != nil {
			fn()
		} else {
			ev.argFn(ev.arg)
		}
		s.release(ev)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.step() {
	}
}

// RunUntil executes events with time ≤ end, leaving the clock at end (or at
// the last event if the queue empties first). Events scheduled at exactly
// end do fire.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		// Peek: the heap root is the earliest event. Drain cancelled
		// events so the peek sees a live one.
		for len(s.heap) > 0 && s.eventAt(s.heap[0].id).cancelled {
			s.release(s.eventAt(s.pop().id))
		}
		if len(s.heap) == 0 {
			break
		}
		if s.heap[0].when > end {
			break
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
}
