package campaign

import (
	"encoding/json"
	"testing"
)

func TestStatusDocCodec(t *testing.T) {
	spec := testSpec()
	units, err := spec.Units()
	if err != nil {
		t.Fatal(err)
	}
	sts := []UnitStatus{
		{Unit: units[0], Done: true},
		{Unit: units[1], InFlight: true},
	}
	doc := NewStatusDoc(sts)
	if doc.Total != 2 || doc.Done != 1 || doc.Interrupted != 1 || doc.Pending != 0 {
		t.Fatalf("counters: %+v", doc)
	}
	if doc.Units[0].State != UnitDone || doc.Units[1].State != UnitInterrupted {
		t.Fatalf("states: %+v", doc.Units)
	}
	if doc.Units[0].Name != units[0].Name() || doc.Units[0].Key != units[0].Key {
		t.Errorf("unit identity not carried into the codec: %+v", doc.Units[0])
	}

	// Server-side overlays recount cleanly.
	doc.Units[1].State = UnitLeased
	doc.Recount()
	if doc.Leased != 1 || doc.Interrupted != 0 {
		t.Errorf("after overlay: %+v", doc)
	}

	// The codec round-trips through JSON — the same bytes `campaign
	// status -json` prints and campaignd serves.
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back StatusDoc
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total != doc.Total || back.Leased != doc.Leased || len(back.Units) != 2 ||
		back.Units[1].State != UnitLeased {
		t.Errorf("round trip: %+v", back)
	}
}
