package campaign

import (
	"fmt"
	"sort"
)

// UnitStatus is one unit's standing against a store.
type UnitStatus struct {
	Unit Unit
	// Done: committed in the store. InFlight: the journal shows a start
	// with no matching done and no store entry — the unit was being
	// computed when a previous run died.
	Done, InFlight bool
}

// Status reports every unit of the spec against the store at storeDir.
func Status(spec *Spec, storeDir string) ([]UnitStatus, error) {
	units, err := spec.Units()
	if err != nil {
		return nil, err
	}
	store, err := OpenStore(storeDir)
	if err != nil {
		return nil, err
	}
	recs, err := ReadJournal(store.JournalPath())
	if err != nil {
		return nil, err
	}
	started := make(map[string]bool)
	for _, r := range recs {
		switch r.Op {
		case "start":
			started[r.Key] = true
		case "done":
			delete(started, r.Key)
		}
	}
	out := make([]UnitStatus, len(units))
	for i, u := range units {
		done := store.Has(u.Key)
		out[i] = UnitStatus{Unit: u, Done: done, InFlight: !done && started[u.Key]}
	}
	return out, nil
}

// GCReport summarizes a garbage collection pass.
type GCReport struct {
	Kept, Deleted int
	DeletedKeys   []string
}

// GC deletes every store entry not referenced by the spec (old module
// versions, abandoned configs). With dryRun it only reports what would
// go. The journal is left alone — it is history, and resume never
// trusts it over the store.
func GC(spec *Spec, storeDir string, dryRun bool) (*GCReport, error) {
	units, err := spec.Units()
	if err != nil {
		return nil, err
	}
	store, err := OpenStore(storeDir)
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(units))
	for _, u := range units {
		keep[u.Key] = true
	}
	keys, err := store.Keys()
	if err != nil {
		return nil, err
	}
	rep := &GCReport{}
	for _, key := range keys {
		if keep[key] {
			rep.Kept++
			continue
		}
		if !dryRun {
			if err := store.Delete(key); err != nil {
				return rep, err
			}
		}
		rep.Deleted++
		rep.DeletedKeys = append(rep.DeletedKeys, key)
	}
	sort.Strings(rep.DeletedKeys)
	return rep, nil
}

// Verify checks every committed entry in the store and returns the
// errors found (empty means the store is sound).
func Verify(storeDir string) ([]error, error) {
	store, err := OpenStore(storeDir)
	if err != nil {
		return nil, err
	}
	keys, err := store.Keys()
	if err != nil {
		return nil, err
	}
	var bad []error
	for _, key := range keys {
		if err := store.VerifyEntry(key); err != nil {
			bad = append(bad, fmt.Errorf("%s: %w", key[:12], err))
		}
	}
	return bad, nil
}
