package campaign

import (
	"fmt"
	"sort"
)

// UnitStatus is one unit's standing against a store.
type UnitStatus struct {
	Unit Unit
	// Done: committed in the store. InFlight: the journal shows a start
	// with no matching done and no store entry — the unit was being
	// computed when a previous run died. Screened: the journal's latest
	// word on the unit is a model-screening disposition and the store
	// still has no entry.
	Done, InFlight, Screened bool
}

// UnitState labels a unit's standing in the shared status codec.
type UnitState string

const (
	// UnitDone: the unit is committed in the store.
	UnitDone UnitState = "done"
	// UnitInterrupted: journaled as started, never finished, absent from
	// the store — in flight when a previous run died.
	UnitInterrupted UnitState = "interrupted"
	// UnitLeased: held by a live campaignd worker (server-side only; the
	// CLI never reports it because lease state lives in the server).
	UnitLeased UnitState = "leased"
	// UnitFailed: the server gave up on the unit after repeated worker
	// failures (server-side only).
	UnitFailed UnitState = "failed"
	// UnitScreened: absent from the store, but the journal records a
	// model-screening disposition — the analytic model vouched for the
	// unit's previous-module result, so recomputation was deferred.
	UnitScreened UnitState = "screened"
	// UnitPending: not computed and not claimed.
	UnitPending UnitState = "pending"
)

// UnitStatusDoc is one unit in the shared status codec.
type UnitStatusDoc struct {
	Name     string    `json:"name"`
	Artifact string    `json:"artifact"`
	BaseSeed int64     `json:"base_seed"`
	Key      string    `json:"key"`
	State    UnitState `json:"state"`
}

// StatusDoc is the status codec shared verbatim by `campaign status
// -json` and campaignd's GET /v1/campaigns/{id}: one struct, one JSON
// shape, so the CLI and the HTTP surface can never drift apart.
type StatusDoc struct {
	Total       int             `json:"total"`
	Done        int             `json:"done"`
	Leased      int             `json:"leased"`
	Interrupted int             `json:"interrupted"`
	Failed      int             `json:"failed"`
	Screened    int             `json:"screened"`
	Pending     int             `json:"pending"`
	Units       []UnitStatusDoc `json:"units"`
}

// NewStatusDoc converts per-unit standings into the shared codec.
func NewStatusDoc(sts []UnitStatus) *StatusDoc {
	doc := &StatusDoc{Units: make([]UnitStatusDoc, len(sts))}
	for i, st := range sts {
		state := UnitPending
		switch {
		case st.Done:
			state = UnitDone
		case st.InFlight:
			state = UnitInterrupted
		case st.Screened:
			state = UnitScreened
		}
		doc.Units[i] = UnitStatusDoc{
			Name:     st.Unit.Name(),
			Artifact: st.Unit.Artifact,
			BaseSeed: st.Unit.BaseSeed,
			Key:      st.Unit.Key,
			State:    state,
		}
	}
	doc.Recount()
	return doc
}

// Recount recomputes the summary counters from the per-unit states.
// campaignd overlays lease/failure states on the units and calls this to
// keep the totals honest.
func (d *StatusDoc) Recount() {
	d.Total = len(d.Units)
	d.Done, d.Leased, d.Interrupted, d.Failed, d.Screened, d.Pending = 0, 0, 0, 0, 0, 0
	for _, u := range d.Units {
		switch u.State {
		case UnitDone:
			d.Done++
		case UnitLeased:
			d.Leased++
		case UnitInterrupted:
			d.Interrupted++
		case UnitFailed:
			d.Failed++
		case UnitScreened:
			d.Screened++
		default:
			d.Pending++
		}
	}
}

// Status reports every unit of the spec against the store.
func Status(spec *Spec, store *Store) ([]UnitStatus, error) {
	units, err := spec.Units()
	if err != nil {
		return nil, err
	}
	recs, err := ReadJournal(store.JournalPath())
	if err != nil {
		return nil, err
	}
	started := make(map[string]bool)
	screened := make(map[string]bool)
	for _, r := range recs {
		switch r.Op {
		case "start":
			started[r.Key] = true
			delete(screened, r.Key)
		case "done":
			delete(started, r.Key)
		case "screened":
			screened[r.Key] = true
		}
	}
	out := make([]UnitStatus, len(units))
	for i, u := range units {
		done := store.Has(u.Key)
		out[i] = UnitStatus{
			Unit:     u,
			Done:     done,
			InFlight: !done && started[u.Key],
			Screened: !done && !started[u.Key] && screened[u.Key],
		}
	}
	return out, nil
}

// GCReport summarizes a garbage collection pass.
type GCReport struct {
	Kept, Deleted int
	DeletedKeys   []string
}

// GC deletes every store entry not referenced by the spec (old module
// versions, abandoned configs). With dryRun it only reports what would
// go. The journal is left alone — it is history, and resume never
// trusts it over the store.
func GC(spec *Spec, store *Store, dryRun bool) (*GCReport, error) {
	units, err := spec.Units()
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(units))
	for _, u := range units {
		keep[u.Key] = true
	}
	keys, err := store.Keys()
	if err != nil {
		return nil, err
	}
	rep := &GCReport{}
	for _, key := range keys {
		if keep[key] {
			rep.Kept++
			continue
		}
		if !dryRun {
			if err := store.Delete(key); err != nil {
				return rep, err
			}
		}
		rep.Deleted++
		rep.DeletedKeys = append(rep.DeletedKeys, key)
	}
	sort.Strings(rep.DeletedKeys)
	return rep, nil
}

// Verify checks every committed entry in the store and returns the
// errors found (empty means the store is sound).
func Verify(store *Store) ([]error, error) {
	keys, err := store.Keys()
	if err != nil {
		return nil, err
	}
	var bad []error
	for _, key := range keys {
		if err := store.VerifyEntry(key); err != nil {
			bad = append(bad, fmt.Errorf("%s: %w", key[:12], err))
		}
	}
	return bad, nil
}
