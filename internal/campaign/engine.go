package campaign

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"greedy80211/internal/core"
	"greedy80211/internal/experiments"
	"greedy80211/internal/metrics"
	"greedy80211/internal/runner"
)

// Outcome classifies what happened to one unit during a Run.
type Outcome string

const (
	// OutcomeHit means the unit was already in the store: zero
	// simulation work.
	OutcomeHit Outcome = "hit"
	// OutcomeComputed means the unit was simulated and committed.
	OutcomeComputed Outcome = "computed"
	// OutcomeFailed means the unit's runner returned an error.
	OutcomeFailed Outcome = "failed"
	// OutcomeSkipped means cancellation arrived before the unit started.
	OutcomeSkipped Outcome = "skipped"
	// OutcomeScreened means the unit was not simulated because the
	// Options.Screen oracle confirmed a previous-module entry of the same
	// artifact and config still agrees with the analytic model.
	OutcomeScreened Outcome = "screened"
)

// Options configures one engine run.
type Options struct {
	// StoreDir roots a directory-backed content-addressed store.
	// Required unless Store is set.
	StoreDir string
	// Store, when non-nil, is an already-open store (possibly on a
	// non-directory Backend); it takes precedence over StoreDir.
	Store *Store
	// OutDir, when non-empty, receives the assembled per-artifact
	// results and the merged telemetry sidecar once every unit of the
	// full work-list is in the store.
	OutDir string
	// Shard/Shards partition the work-list: this process computes only
	// units with Index % Shards == Shard. Shards <= 1 means all units.
	Shard, Shards int
	// OnUnit, when set, observes each unit's outcome as it lands
	// (serialized — implementations need no locking).
	OnUnit func(u Unit, o Outcome, err error)
	// Screen, when set, enables the model-screening pass: for each unit
	// missing from the store whose previous-module incarnation exists
	// (FindPrevious), the oracle decides whether that prior result still
	// agrees with the analytic model — returning true records the unit as
	// screened instead of simulating it. cmd/campaign run -screen wires
	// this to report.ModelAgreement over the Markov-chain predictions.
	Screen func(u Unit, prev Meta, result []byte) (ok bool, why string)
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// UnitError pairs a failed unit with its error.
type UnitError struct {
	Unit Unit
	Err  error
}

// Report summarizes a Run.
type Report struct {
	// Units is the full work-list size; InShard how many this process
	// was responsible for.
	Units, InShard int
	// CacheHits + Computed + Screened + Skipped + len(Failures) == InShard.
	CacheHits, Computed, Screened, Skipped int
	Failures                               []UnitError
	// Assembled reports whether the merge pass ran and OutFiles what it
	// wrote.
	Assembled bool
	OutFiles  []string
}

// Run executes the campaign: expand the spec, skip every unit already in
// the store, compute the misses of this shard in parallel (journaling
// start/done around each store commit), and — when the whole work-list
// is present and nothing failed — assemble the final outputs. Unit
// failures do not abort the rest of the campaign; they are collected in
// the report. A cancelled ctx stops launching new units, finishes the
// ones in flight, and returns the partial report with err == ctx.Err():
// re-running the same command later resumes from the store.
func Run(ctx context.Context, spec *Spec, opt Options) (*Report, error) {
	if opt.Shards > 1 && (opt.Shard < 0 || opt.Shard >= opt.Shards) {
		return nil, fmt.Errorf("campaign: shard %d out of range 0..%d", opt.Shard, opt.Shards-1)
	}
	logw := opt.Log
	if logw == nil {
		logw = io.Discard
	}
	expandStart := time.Now()
	units, err := spec.Units()
	if err != nil {
		return nil, err
	}
	expandEnd := time.Now()
	store := opt.Store
	if store == nil {
		if store, err = OpenStore(opt.StoreDir); err != nil {
			return nil, err
		}
	}
	journal, err := OpenJournal(store.JournalPath())
	if err != nil {
		return nil, err
	}
	defer journal.Close()
	// The span log rides beside the journal: phase timings for every unit
	// this process touches, renderable later by `campaign spans`. Span
	// loss is never worth failing a run, so append errors are ignored;
	// OpenSpanLog on an unjournaled store ("" path) yields a no-op log.
	spans, err := OpenSpanLog(store.SpanPath())
	if err != nil {
		return nil, err
	}
	defer spans.Close()
	spans.Append(Span{Unit: "expand", Phase: "expand",
		StartUnixNs: expandStart.UnixNano(), EndUnixNs: expandEnd.UnixNano(),
		Note: fmt.Sprintf("%d units", len(units))})

	mine := units
	if opt.Shards > 1 {
		mine = mine[:0:0]
		for _, u := range units {
			if u.Index%opt.Shards == opt.Shard {
				mine = append(mine, u)
			}
		}
	}
	rep := &Report{Units: len(units), InShard: len(mine)}
	fmt.Fprintf(logw, "campaign: %d units (%d in this shard)\n", len(units), len(mine))

	var (
		mu       sync.Mutex
		done     int
		outcomes = make([]Outcome, len(mine))
		failures = make([]UnitError, 0)
	)
	record := func(i int, o Outcome, err error) {
		mu.Lock()
		defer mu.Unlock()
		outcomes[i] = o
		if err != nil {
			failures = append(failures, UnitError{Unit: mine[i], Err: err})
		}
		done++
		fmt.Fprintf(logw, "campaign: [%d/%d] %s %s\n", done, len(mine), mine[i].Name(), o)
		if opt.OnUnit != nil {
			opt.OnUnit(mine[i], o, err)
		}
	}
	runErr := runner.EachContext(ctx, len(mine), func(i int) error {
		u := mine[i]
		if store.Has(u.Key) {
			record(i, OutcomeHit, nil)
			return nil
		}
		if opt.Screen != nil {
			prev, prevResult, perr := FindPrevious(store, u)
			if perr == nil && prev.Key != "" {
				if ok, why := opt.Screen(u, prev, prevResult); ok {
					sr := Record{Op: "screened", Key: u.Key, Artifact: u.Artifact,
						BaseSeed: u.BaseSeed, Prev: prev.Key, Note: why}
					if err := journal.Append(sr); err != nil {
						record(i, OutcomeFailed, err)
						return nil
					}
					now := time.Now().UnixNano()
					spans.Append(Span{Unit: u.Name(), Key: u.Key, Artifact: u.Artifact,
						Phase: "screened", StartUnixNs: now, EndUnixNs: now, Note: why})
					record(i, OutcomeScreened, nil)
					return nil
				}
			}
		}
		jr := Record{Key: u.Key, Artifact: u.Artifact, BaseSeed: u.BaseSeed}
		jr.Op = "start"
		if err := journal.Append(jr); err != nil {
			record(i, OutcomeFailed, err)
			return nil
		}
		computeStart := time.Now()
		result, metricsJSON, err := ComputeUnit(u)
		computeEnd := time.Now()
		spans.Append(Span{Unit: u.Name(), Key: u.Key, Artifact: u.Artifact, Phase: "compute",
			StartUnixNs: computeStart.UnixNano(), EndUnixNs: computeEnd.UnixNano()})
		if err != nil {
			record(i, OutcomeFailed, fmt.Errorf("%s: %w", u.Name(), err))
			return nil
		}
		meta := Meta{
			Key:        u.Key,
			Module:     core.ModuleFingerprint(),
			Artifact:   u.Artifact,
			Seeds:      u.Config.Seeds,
			BaseSeed:   u.Config.BaseSeed,
			DurationNs: int64(u.Config.Duration),
			Quick:      u.Config.Quick,
		}
		if err := store.Put(meta, result, metricsJSON); err != nil {
			record(i, OutcomeFailed, err)
			return nil
		}
		jr.Op = "done"
		if err := journal.Append(jr); err != nil {
			record(i, OutcomeFailed, err)
			return nil
		}
		spans.Append(Span{Unit: u.Name(), Key: u.Key, Artifact: u.Artifact, Phase: "commit",
			StartUnixNs: computeEnd.UnixNano(), EndUnixNs: time.Now().UnixNano()})
		record(i, OutcomeComputed, nil)
		return nil
	})
	for _, o := range outcomes {
		switch o {
		case OutcomeHit:
			rep.CacheHits++
		case OutcomeComputed:
			rep.Computed++
		case OutcomeScreened:
			rep.Screened++
		case OutcomeFailed:
			// counted via rep.Failures
		default:
			rep.Skipped++
		}
	}
	rep.Failures = failures
	if runErr != nil {
		return rep, runErr // interrupted; store holds the progress
	}
	if len(failures) > 0 {
		return rep, nil
	}
	if opt.OutDir == "" {
		return rep, nil
	}
	missing := 0
	for _, u := range units {
		if !store.Has(u.Key) {
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(logw, "campaign: store missing %d/%d units; skipping assemble (run remaining shards, then re-run)\n",
			missing, len(units))
		return rep, nil
	}
	files, err := assemble(store, units, opt.OutDir)
	if err != nil {
		return rep, err
	}
	rep.Assembled = true
	rep.OutFiles = files
	fmt.Fprintf(logw, "campaign: assembled %d files into %s\n", len(files), opt.OutDir)
	return rep, nil
}

// ComputeUnit runs one artifact under the unit's config with a
// telemetry collector attached and returns the two store payloads. It is
// the single compute primitive shared by the in-process engine and
// campaignd HTTP workers — both produce exactly the bytes a standalone
// run of the artifact would.
func ComputeUnit(u Unit) (result, metricsJSON []byte, err error) {
	coll := metrics.NewCollector()
	cfg := u.Config
	cfg.Metrics = coll
	res, err := experiments.Run(u.Artifact, cfg)
	if err != nil {
		return nil, nil, err
	}
	result, err = res.MarshalStable()
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := metrics.EncodeSnapshots(&buf, coll.Snapshots()); err != nil {
		return nil, nil, err
	}
	return result, buf.Bytes(), nil
}

// assemble is the merge pass: stream every unit's stored bytes into the
// output directory, in work-list order. result.json files are copied
// verbatim (they were encoded by the same stable encoder a direct run
// uses) and the per-unit snapshot arrays are decoded, labeled, and
// re-emitted as one metrics.jsonl — byte-identical to what a single
// sequential `cmd/experiments -run a,b,… -json dir -metrics file`
// invocation over the same artifacts and config would write.
func assemble(store *Store, units []Unit, outDir string) ([]string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: assemble: %w", err)
	}
	var files []string
	var labeled []metrics.Labeled
	for _, u := range units {
		_, result, metricsJSON, err := store.Get(u.Key)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(outDir, u.Name()+".json")
		if err := os.WriteFile(path, result, 0o644); err != nil {
			return nil, fmt.Errorf("campaign: assemble: %w", err)
		}
		files = append(files, path)
		snaps, err := metrics.DecodeSnapshots(bytes.NewReader(metricsJSON))
		if err != nil {
			return nil, fmt.Errorf("campaign: assemble %s: %w", u.Name(), err)
		}
		for i, snap := range snaps {
			labeled = append(labeled, metrics.Labeled{Label: u.Name(), Group: i, Snap: snap})
		}
	}
	sidecar := filepath.Join(outDir, "metrics.jsonl")
	if err := metrics.WriteFile(sidecar, labeled...); err != nil {
		return nil, fmt.Errorf("campaign: assemble: %w", err)
	}
	files = append(files, sidecar)
	return files, nil
}

// CheckPayloads validates that a unit's two payloads parse as a Result
// document and a snapshot array. VerifyEntry uses it against stored
// bytes; campaignd uses it to vet worker uploads before committing them.
func CheckPayloads(result, metricsJSON []byte) error {
	if _, err := experiments.DecodeResult(bytes.NewReader(result)); err != nil {
		return err
	}
	if _, err := metrics.DecodeSnapshots(bytes.NewReader(metricsJSON)); err != nil {
		return err
	}
	return nil
}
