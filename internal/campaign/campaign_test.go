package campaign

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"greedy80211/internal/experiments"
	"greedy80211/internal/runner"
	"greedy80211/internal/sim"
)

// testSpec is a tiny two-artifact campaign: extc (three single-run
// cases) and fig1 (trimmed sweep), fast enough for CI.
func testSpec() *Spec {
	return &Spec{
		Artifacts: []string{"extc", "fig1"},
		Config:    SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	}
}

func mustRun(t *testing.T, spec *Spec, opt Options) *Report {
	t.Helper()
	rep, err := Run(context.Background(), spec, opt)
	if err != nil {
		t.Fatalf("campaign.Run: %v", err)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("campaign.Run failures: %v", rep.Failures)
	}
	return rep
}

// readTree loads every file under dir keyed by relative path.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		out[rel] = string(b)
		return nil
	})
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	return out
}

func diffTrees(t *testing.T, want, got map[string]string, label string) {
	t.Helper()
	var wantNames, gotNames []string
	for k := range want {
		wantNames = append(wantNames, k)
	}
	for k := range got {
		gotNames = append(gotNames, k)
	}
	sort.Strings(wantNames)
	sort.Strings(gotNames)
	if strings.Join(wantNames, ",") != strings.Join(gotNames, ",") {
		t.Fatalf("%s: file sets differ: want %v, got %v", label, wantNames, gotNames)
	}
	for _, name := range wantNames {
		if want[name] != got[name] {
			t.Errorf("%s: %s differs byte-for-byte", label, name)
		}
	}
}

// A warm-cache rerun must perform zero simulation work: every unit is a
// cache hit (the acceptance criterion: hit count == unit total).
func TestWarmCacheRerunHitsEverything(t *testing.T) {
	store := t.TempDir()
	out1, out2 := t.TempDir(), t.TempDir()
	spec := testSpec()

	cold := mustRun(t, spec, Options{StoreDir: store, OutDir: out1})
	if cold.Computed != cold.Units || cold.CacheHits != 0 {
		t.Fatalf("cold run: computed %d, hits %d, want %d computed, 0 hits",
			cold.Computed, cold.CacheHits, cold.Units)
	}
	if !cold.Assembled {
		t.Fatal("cold run did not assemble")
	}

	warm := mustRun(t, spec, Options{StoreDir: store, OutDir: out2})
	if warm.CacheHits != warm.Units || warm.Computed != 0 {
		t.Fatalf("warm rerun: hits %d, computed %d, want hits == units (%d) and 0 computed",
			warm.CacheHits, warm.Computed, warm.Units)
	}
	diffTrees(t, readTree(t, out1), readTree(t, out2), "warm rerun outputs")
}

// Two shards against a shared store must cover disjoint units, and the
// merged assembly must equal a single-process run byte-for-byte — both
// the per-artifact results and the metrics sidecar.
func TestTwoShardRunMergesByteIdentical(t *testing.T) {
	spec := testSpec()
	shardStore, soloStore := t.TempDir(), t.TempDir()
	shardOut, soloOut := t.TempDir(), t.TempDir()

	s0 := mustRun(t, spec, Options{StoreDir: shardStore, Shard: 0, Shards: 2})
	s1 := mustRun(t, spec, Options{StoreDir: shardStore, Shard: 1, Shards: 2})
	if s0.Computed+s1.Computed != s0.Units {
		t.Fatalf("shards computed %d + %d units, want exactly %d between them",
			s0.Computed, s1.Computed, s0.Units)
	}
	if s0.InShard+s1.InShard != s0.Units || s0.InShard == 0 || s1.InShard == 0 {
		t.Fatalf("shard partition %d + %d not a 2-way split of %d", s0.InShard, s1.InShard, s0.Units)
	}
	// The merge pass: a full run over the now-complete store is all hits.
	merge := mustRun(t, spec, Options{StoreDir: shardStore, OutDir: shardOut})
	if merge.CacheHits != merge.Units {
		t.Fatalf("merge pass recomputed %d units", merge.Computed)
	}
	if !merge.Assembled {
		t.Fatal("merge pass did not assemble")
	}

	solo := mustRun(t, spec, Options{StoreDir: soloStore, OutDir: soloOut})
	if !solo.Assembled {
		t.Fatal("solo run did not assemble")
	}
	diffTrees(t, readTree(t, soloOut), readTree(t, shardOut), "2-shard merge vs 1-process run")
}

// An interrupted campaign — cancelled mid-run, then crash-damaged
// (journal tail torn off, one committed unit destroyed) — must resume
// and produce output byte-identical to a never-interrupted run.
func TestInterruptResumeByteIdentical(t *testing.T) {
	// Four units with a worker-pool limit of 1: at most two units are in
	// flight when the first one lands (one pooled, one inline), so
	// cancelling on the first outcome always leaves a strict subset
	// computed and at least two units skipped.
	spec := &Spec{
		Artifacts: []string{"extc", "fig1", "tab1", "tab3"},
		Config:    SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	}
	old := runner.Limit()
	defer runner.SetLimit(old)
	runner.SetLimit(1)

	crashStore, freshStore := t.TempDir(), t.TempDir()
	crashOut, freshOut := t.TempDir(), t.TempDir()

	// Cancel as soon as the first unit lands; in-flight units finish,
	// unstarted ones are skipped.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Run(ctx, spec, Options{
		StoreDir: crashStore,
		OutDir:   crashOut,
		OnUnit:   func(Unit, Outcome, error) { cancel() },
	})
	if err != context.Canceled {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if rep.Computed == 0 || rep.Computed == rep.Units {
		t.Fatalf("interrupted run computed %d of %d units; want a strict subset", rep.Computed, rep.Units)
	}
	if rep.Assembled {
		t.Fatal("interrupted run must not assemble")
	}

	// Simulate the crash aftermath: tear off the journal's final line
	// and destroy one committed store entry outright.
	store, err := OpenStore(crashStore)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(store.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(jb), "\n"), "\n")
	torn := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if err := os.WriteFile(store.JournalPath(), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := store.Keys()
	if err != nil || len(keys) == 0 {
		t.Fatalf("store keys: %v (%d keys)", err, len(keys))
	}
	kept := len(keys)
	if kept > 1 {
		if err := store.Delete(keys[0]); err != nil {
			t.Fatal(err)
		}
		kept--
	}

	resumed := mustRun(t, spec, Options{StoreDir: crashStore, OutDir: crashOut})
	if !resumed.Assembled {
		t.Fatal("resumed run did not assemble")
	}
	if resumed.CacheHits != kept {
		t.Errorf("resumed run reused %d units, want the %d that survived the crash", resumed.CacheHits, kept)
	}
	if resumed.Computed != resumed.Units-kept {
		t.Errorf("resumed run recomputed %d units, want %d", resumed.Computed, resumed.Units-kept)
	}

	fresh := mustRun(t, spec, Options{StoreDir: freshStore, OutDir: freshOut})
	if !fresh.Assembled {
		t.Fatal("fresh run did not assemble")
	}
	diffTrees(t, readTree(t, freshOut), readTree(t, crashOut), "resumed vs uninterrupted run")
}

// Normalize is idempotent over arbitrary configs, and hashing happens on
// the normalized form: a config is key-equal to its normalization, and
// configs differing only in defaulted fields hash identically.
func TestKeyCanonicalization(t *testing.T) {
	gen := func(seeds int, baseSeed int64, durMs int, quickMode bool) experiments.RunConfig {
		if seeds < 0 {
			seeds = -seeds
		}
		if durMs < 0 {
			durMs = -durMs
		}
		return experiments.RunConfig{
			Seeds:    seeds % 8,
			BaseSeed: baseSeed,
			Duration: sim.Time(durMs%2000) * sim.Millisecond,
			Quick:    quickMode,
		}
	}
	idempotent := func(seeds int, baseSeed int64, durMs int, quickMode bool) bool {
		c := gen(seeds, baseSeed, durMs, quickMode)
		n := c.Normalize()
		return n == n.Normalize()
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("Normalize not idempotent: %v", err)
	}
	keyStable := func(seeds int, baseSeed int64, durMs int, quickMode bool) bool {
		c := gen(seeds, baseSeed, durMs, quickMode)
		return Key("fig1", c) == Key("fig1", c.Normalize())
	}
	if err := quick.Check(keyStable, nil); err != nil {
		t.Errorf("Key differs between a config and its normalization: %v", err)
	}

	zero := experiments.RunConfig{}
	explicit := experiments.RunConfig{
		Seeds:    experiments.DefaultSeeds,
		Duration: experiments.DefaultDuration,
	}
	if Key("fig1", zero) != Key("fig1", explicit) {
		t.Error("zero config and explicit defaults hash differently")
	}
	if Key("fig1", zero) == Key("fig2", zero) {
		t.Error("different artifacts hash identically")
	}
	if Key("fig1", zero) == Key("fig1", experiments.RunConfig{BaseSeed: 1}) {
		t.Error("different base seeds hash identically")
	}
	if Key("fig1", zero) == Key("fig1", experiments.RunConfig{Quick: true}) {
		t.Error("quick and full configs hash identically")
	}
}

// The work-list expansion is deterministic and shard partitions are
// stable: expanding the same spec twice yields identical units.
func TestUnitsDeterministicAndSeedCross(t *testing.T) {
	spec := &Spec{
		Artifacts: []string{"fig1", "extc"},
		Config:    SpecConfig{Quick: true, Duration: "100ms"},
		BaseSeeds: []int64{0, 1000},
	}
	a, err := spec.Units()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Units()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 {
		t.Fatalf("got %d units, want 4 (2 artifacts × 2 seeds)", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unit %d differs between expansions: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].Name() != "fig1_seed0" || a[1].Name() != "fig1_seed1000" {
		t.Errorf("multi-seed names wrong: %s, %s", a[0].Name(), a[1].Name())
	}
	seen := map[string]bool{}
	for _, u := range a {
		if seen[u.Key] {
			t.Fatalf("duplicate key for unit %s", u.Name())
		}
		seen[u.Key] = true
	}
}

func TestSpecErrors(t *testing.T) {
	for name, spec := range map[string]*Spec{
		"empty":        {},
		"unknown":      {Artifacts: []string{"fig999"}},
		"dup artifact": {Artifacts: []string{"fig1", "fig1"}},
		"dup seed":     {Artifacts: []string{"fig1"}, BaseSeeds: []int64{3, 3}},
		"bad duration": {Artifacts: []string{"fig1"}, Config: SpecConfig{Duration: "nonsense"}},
	} {
		if _, err := spec.Units(); err == nil {
			t.Errorf("%s: Units() accepted an invalid spec", name)
		}
	}
}
