package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"greedy80211/internal/core"
	"greedy80211/internal/experiments"
)

// FormatVersion names the store's key and value format. Bump it whenever
// the canonical key payload, the Result JSON encoding, or the snapshot
// encoding changes shape — every existing store entry becomes a miss
// instead of decoding garbage.
const FormatVersion = "campaign/v1"

// keyPayload is everything that determines a unit's output bytes, in
// canonical (normalized, fixed-field-order) form. RunConfig.Metrics is
// deliberately absent: attaching a collector changes what is observed,
// never what is computed.
type keyPayload struct {
	Version    string `json:"v"`
	Module     string `json:"module"`
	Artifact   string `json:"artifact"`
	Seeds      int    `json:"seeds"`
	BaseSeed   int64  `json:"base_seed"`
	DurationNs int64  `json:"duration_ns"`
	Quick      bool   `json:"quick"`
}

// Key returns the unit's content address: the hex sha256 of the
// canonical JSON of (format version, module fingerprint, artifact id,
// normalized config). Two configs that differ only in defaulted fields
// normalize identically and therefore collide on purpose — they describe
// the same work.
func Key(artifact string, cfg experiments.RunConfig) string {
	n := cfg.Normalize()
	payload := keyPayload{
		Version:    FormatVersion,
		Module:     core.ModuleFingerprint(),
		Artifact:   artifact,
		Seeds:      n.Seeds,
		BaseSeed:   n.BaseSeed,
		DurationNs: int64(n.Duration),
		Quick:      n.Quick,
	}
	b, err := json.Marshal(payload)
	if err != nil {
		// A struct of strings, ints, and bools cannot fail to marshal.
		panic("campaign: key marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
