package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Store is the on-disk content-addressed result cache. Layout:
//
//	<root>/objects/<key[:2]>/<key>/result.json   stable Result encoding
//	<root>/objects/<key[:2]>/<key>/metrics.json  snapshot array
//	<root>/objects/<key[:2]>/<key>/meta.json     key echo + checksums
//	<root>/journal.jsonl                         write-ahead unit log
//
// Writes are atomic: an entry is staged in a temp directory under the
// root (same filesystem) with meta.json written last, then renamed into
// place, so a reader either sees a complete entry or none — a crash
// mid-write leaves only stray tmp directories, which Open sweeps.
type Store struct {
	root string
}

// Meta is the entry's self-description: the key's preimage fields plus
// content checksums, so `campaign verify` can detect both corruption
// (checksum mismatch) and misfiling (directory name != meta key).
type Meta struct {
	Key           string `json:"key"`
	Module        string `json:"module"`
	Artifact      string `json:"artifact"`
	Seeds         int    `json:"seeds"`
	BaseSeed      int64  `json:"base_seed"`
	DurationNs    int64  `json:"duration_ns"`
	Quick         bool   `json:"quick"`
	ResultSHA256  string `json:"result_sha256"`
	MetricsSHA256 string `json:"metrics_sha256"`
	CreatedUnix   int64  `json:"created_unix"`
}

// OpenStore opens (creating if needed) a store rooted at dir and removes
// any tmp- staging directories left behind by a crashed writer.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening store: %w", err)
	}
	stale, _ := filepath.Glob(filepath.Join(dir, "tmp-*"))
	for _, d := range stale {
		os.RemoveAll(d)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// JournalPath is where the store's write-ahead journal lives.
func (s *Store) JournalPath() string { return filepath.Join(s.root, "journal.jsonl") }

func (s *Store) objectDir(key string) string {
	return filepath.Join(s.root, "objects", key[:2], key)
}

// Has reports whether a complete entry exists for key (meta.json is
// written last, so its presence implies the whole entry landed).
func (s *Store) Has(key string) bool {
	if len(key) < 2 {
		return false
	}
	_, err := os.Stat(filepath.Join(s.objectDir(key), "meta.json"))
	return err == nil
}

// Put commits one unit's bytes under meta.Key atomically. Checksums are
// filled in here. If a concurrent writer (another shard pointed at the
// same store) already committed the key, Put quietly keeps the existing
// entry — content-addressing makes both copies interchangeable.
func (s *Store) Put(meta Meta, result, metricsJSON []byte) error {
	if len(meta.Key) < 2 {
		return fmt.Errorf("campaign: store put: invalid key %q", meta.Key)
	}
	meta.ResultSHA256 = hexSum(result)
	meta.MetricsSHA256 = hexSum(metricsJSON)
	if meta.CreatedUnix == 0 {
		meta.CreatedUnix = time.Now().Unix()
	}
	tmp, err := os.MkdirTemp(s.root, "tmp-")
	if err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	defer os.RemoveAll(tmp)
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"result.json", result},
		{"metrics.json", metricsJSON},
		{"meta.json", append(metaBytes, '\n')}, // meta last: the commit marker
	} {
		if err := os.WriteFile(filepath.Join(tmp, f.name), f.data, 0o644); err != nil {
			return fmt.Errorf("campaign: store put %s: %w", f.name, err)
		}
	}
	dst := s.objectDir(meta.Key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		if s.Has(meta.Key) {
			return nil // lost a benign race with an identical writer
		}
		return fmt.Errorf("campaign: store put: %w", err)
	}
	return nil
}

// Get reads one complete entry back.
func (s *Store) Get(key string) (Meta, []byte, []byte, error) {
	var meta Meta
	dir := s.objectDir(key)
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	result, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	metricsJSON, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	return meta, result, metricsJSON, nil
}

// Keys lists every committed entry, sorted.
func (s *Store) Keys() ([]string, error) {
	dirs, err := filepath.Glob(filepath.Join(s.root, "objects", "*", "*"))
	if err != nil {
		return nil, fmt.Errorf("campaign: store keys: %w", err)
	}
	var keys []string
	for _, d := range dirs {
		key := filepath.Base(d)
		if s.Has(key) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes an entry (no error if absent).
func (s *Store) Delete(key string) error {
	if len(key) < 2 {
		return nil
	}
	if err := os.RemoveAll(s.objectDir(key)); err != nil {
		return fmt.Errorf("campaign: store delete %s: %w", key, err)
	}
	return nil
}

// VerifyEntry checks one entry end to end: meta parses, the directory
// name matches the meta key, both payload checksums hold, and the result
// still decodes as a Result document.
func (s *Store) VerifyEntry(key string) error {
	meta, result, metricsJSON, err := s.Get(key)
	if err != nil {
		return err
	}
	if meta.Key != key {
		return fmt.Errorf("campaign: entry %s: meta key mismatch (%s)", key, meta.Key)
	}
	if got := hexSum(result); got != meta.ResultSHA256 {
		return fmt.Errorf("campaign: entry %s: result.json checksum mismatch", key)
	}
	if got := hexSum(metricsJSON); got != meta.MetricsSHA256 {
		return fmt.Errorf("campaign: entry %s: metrics.json checksum mismatch", key)
	}
	if err := decodeCheck(result, metricsJSON); err != nil {
		return fmt.Errorf("campaign: entry %s: %w", key, err)
	}
	return nil
}

func hexSum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
