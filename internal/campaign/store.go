package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Store is the content-addressed result cache, layered over a Backend.
// Entry layout (object names, any backend):
//
//	objects/<key[:2]>/<key>/result.json   stable Result encoding
//	objects/<key[:2]>/<key>/metrics.json  snapshot array
//	objects/<key[:2]>/<key>/meta.json     key echo + checksums
//
// plus, for directory-backed stores, a local write-ahead journal at
// <root>/journal.jsonl. Commits write the payloads first and meta.json
// last; each object lands atomically (Backend contract), so meta's
// presence is the commit marker — a reader that sees meta sees a
// complete entry, and a crash mid-commit leaves only unreferenced
// payload objects that a re-run simply overwrites with identical bytes.
type Store struct {
	b           Backend
	root        string // "" when the backend is not a local directory
	journalPath string // "" disables journaling
}

// Meta is the entry's self-description: the key's preimage fields plus
// content checksums, so `campaign verify` can detect both corruption
// (checksum mismatch) and misfiling (entry name != meta key).
type Meta struct {
	Key           string `json:"key"`
	Module        string `json:"module"`
	Artifact      string `json:"artifact"`
	Seeds         int    `json:"seeds"`
	BaseSeed      int64  `json:"base_seed"`
	DurationNs    int64  `json:"duration_ns"`
	Quick         bool   `json:"quick"`
	ResultSHA256  string `json:"result_sha256"`
	MetricsSHA256 string `json:"metrics_sha256"`
	CreatedUnix   int64  `json:"created_unix"`
}

// RunConfigSpec returns the SpecConfig form of the entry's config — the
// codec that travels between campaignd server and workers.
func (m Meta) RunConfigSpec() SpecConfig {
	return SpecConfig{
		Seeds:    m.Seeds,
		BaseSeed: m.BaseSeed,
		Duration: time.Duration(m.DurationNs).String(),
		Quick:    m.Quick,
	}
}

// OpenStore opens (creating if needed) a directory-backed store rooted
// at dir, sweeping any tmp- staging leftovers, with its write-ahead
// journal at <dir>/journal.jsonl.
func OpenStore(dir string) (*Store, error) {
	b, err := NewDirBackend(dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening store: %w", err)
	}
	return &Store{b: b, root: dir, journalPath: filepath.Join(dir, "journal.jsonl")}, nil
}

// NewStore layers the content-addressed cache over an arbitrary
// Backend. journalPath roots the local write-ahead journal; empty
// disables journaling (remote backends may not have a local disk).
func NewStore(b Backend, journalPath string) *Store {
	s := &Store{b: b, journalPath: journalPath}
	if db, ok := b.(*DirBackend); ok {
		s.root = db.Root()
	}
	return s
}

// Backend exposes the persistence layer (campaignd serves auxiliary
// objects — cached trace renders — through it).
func (s *Store) Backend() Backend { return s.b }

// Root returns the store's root directory, or "" for non-directory
// backends.
func (s *Store) Root() string { return s.root }

// JournalPath is where the store's write-ahead journal lives ("" when
// journaling is disabled).
func (s *Store) JournalPath() string { return s.journalPath }

func entryPrefix(key string) string {
	return "objects/" + key[:2] + "/" + key + "/"
}

func metaName(key string) string    { return entryPrefix(key) + "meta.json" }
func resultName(key string) string  { return entryPrefix(key) + "result.json" }
func metricsName(key string) string { return entryPrefix(key) + "metrics.json" }

// Has reports whether a complete entry exists for key (meta.json is
// written last, so its presence implies the whole entry landed).
func (s *Store) Has(key string) bool {
	if len(key) < 2 {
		return false
	}
	_, err := s.b.Stat(metaName(key))
	return err == nil
}

// Put commits one unit's bytes under meta.Key. Checksums are filled in
// here. Payloads land first, meta.json last as the commit marker; every
// object write is atomic, so concurrent readers see either no entry or a
// complete one. If a concurrent writer (another shard or worker pointed
// at the same store) already committed the key, the overwrite is benign
// — content-addressing makes both copies byte-identical.
func (s *Store) Put(meta Meta, result, metricsJSON []byte) error {
	if len(meta.Key) < 2 {
		return fmt.Errorf("campaign: store put: invalid key %q", meta.Key)
	}
	meta.ResultSHA256 = hexSum(result)
	meta.MetricsSHA256 = hexSum(metricsJSON)
	if meta.CreatedUnix == 0 {
		meta.CreatedUnix = time.Now().Unix()
	}
	if s.Has(meta.Key) {
		return nil // a racing identical writer already committed
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	for _, obj := range []struct {
		name string
		data []byte
	}{
		{resultName(meta.Key), result},
		{metricsName(meta.Key), metricsJSON},
		{metaName(meta.Key), append(metaBytes, '\n')}, // meta last: the commit marker
	} {
		if err := s.b.Put(obj.name, obj.data); err != nil {
			return fmt.Errorf("campaign: store put: %w", err)
		}
	}
	return nil
}

// Get reads one complete entry back. Absence (or an entry deleted while
// reading) surfaces as an error satisfying errors.Is(err, fs.ErrNotExist).
func (s *Store) Get(key string) (Meta, []byte, []byte, error) {
	var meta Meta
	if len(key) < 2 {
		return meta, nil, nil, fmt.Errorf("campaign: store get: invalid key %q", key)
	}
	metaBytes, err := s.b.Get(metaName(key))
	if err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	result, err := s.b.Get(resultName(key))
	if err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	metricsJSON, err := s.b.Get(metricsName(key))
	if err != nil {
		return meta, nil, nil, fmt.Errorf("campaign: store get %s: %w", key, err)
	}
	return meta, result, metricsJSON, nil
}

// GetMeta reads only an entry's meta document.
func (s *Store) GetMeta(key string) (Meta, error) {
	var meta Meta
	if len(key) < 2 {
		return meta, fmt.Errorf("campaign: store meta: invalid key %q", key)
	}
	metaBytes, err := s.b.Get(metaName(key))
	if err != nil {
		return meta, fmt.Errorf("campaign: store meta %s: %w", key, err)
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return meta, fmt.Errorf("campaign: store meta %s: %w", key, err)
	}
	return meta, nil
}

// GetResult reads only an entry's result payload.
func (s *Store) GetResult(key string) ([]byte, error) {
	if len(key) < 2 {
		return nil, fmt.Errorf("campaign: store result: invalid key %q", key)
	}
	data, err := s.b.Get(resultName(key))
	if err != nil {
		return nil, fmt.Errorf("campaign: store result %s: %w", key, err)
	}
	return data, nil
}

// GetMetrics reads only an entry's telemetry payload.
func (s *Store) GetMetrics(key string) ([]byte, error) {
	if len(key) < 2 {
		return nil, fmt.Errorf("campaign: store metrics: invalid key %q", key)
	}
	data, err := s.b.Get(metricsName(key))
	if err != nil {
		return nil, fmt.Errorf("campaign: store metrics %s: %w", key, err)
	}
	return data, nil
}

// Keys lists every committed entry, sorted. Only entries whose commit
// marker landed are reported, so a concurrent half-written entry is
// invisible.
func (s *Store) Keys() ([]string, error) {
	names, err := s.b.List("objects/")
	if err != nil {
		return nil, fmt.Errorf("campaign: store keys: %w", err)
	}
	var keys []string
	for _, name := range names {
		if !strings.HasSuffix(name, "/meta.json") {
			continue
		}
		parts := strings.Split(name, "/")
		if len(parts) != 4 {
			continue
		}
		keys = append(keys, parts[2])
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes an entry (no error if absent). The commit marker goes
// first, un-committing the entry, so a concurrent reader sees either the
// complete entry or a clean not-exist — never a checksum mismatch.
func (s *Store) Delete(key string) error {
	if len(key) < 2 {
		return nil
	}
	for _, name := range []string{metaName(key), resultName(key), metricsName(key)} {
		if err := s.b.Delete(name); err != nil {
			return fmt.Errorf("campaign: store delete %s: %w", key, err)
		}
	}
	return nil
}

// VerifyEntry checks one entry end to end: meta parses, the entry name
// matches the meta key, both payload checksums hold, and the result
// still decodes as a Result document.
func (s *Store) VerifyEntry(key string) error {
	meta, result, metricsJSON, err := s.Get(key)
	if err != nil {
		return err
	}
	if meta.Key != key {
		return fmt.Errorf("campaign: entry %s: meta key mismatch (%s)", key, meta.Key)
	}
	if got := hexSum(result); got != meta.ResultSHA256 {
		return fmt.Errorf("campaign: entry %s: result.json checksum mismatch", key)
	}
	if got := hexSum(metricsJSON); got != meta.MetricsSHA256 {
		return fmt.Errorf("campaign: entry %s: metrics.json checksum mismatch", key)
	}
	if err := CheckPayloads(result, metricsJSON); err != nil {
		return fmt.Errorf("campaign: entry %s: %w", key, err)
	}
	return nil
}

func hexSum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
