package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Span is one completed interval in a campaign unit's lifecycle,
// recorded after the fact (spans are never open on disk, so a crash
// cannot tear one). Phases:
//
//	expand    campaign spec expanded into units (Unit = campaign id)
//	lease     a worker held the unit, grant to completion/expiry
//	compute   the unit's simulations ran (local engine)
//	upload    result bytes travelled worker -> server
//	commit    the store entry landed
//	screened  the analytic model vouched for the unit; no compute
type Span struct {
	Unit        string `json:"unit"`               // unit name, or campaign id for expand spans
	Key         string `json:"key,omitempty"`      // store key, when known
	Artifact    string `json:"artifact,omitempty"` // figure/table the unit feeds
	Phase       string `json:"phase"`
	Worker      string `json:"worker,omitempty"` // lease holder, distributed runs only
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns"`
	Note        string `json:"note,omitempty"` // disposition detail: "expired", screening reason, ...
}

// SpanLog is the append-only progress-span sibling of the Journal: the
// journal answers "which units are attempted/committed", the span log
// answers "where did the time go". It is advisory telemetry — readers
// tolerate a missing or torn file, and nothing replays from it.
type SpanLog struct {
	mu sync.Mutex
	f  *os.File
}

// OpenSpanLog opens (creating if needed) the span log at path for
// appending. An empty path returns a no-op log, mirroring OpenJournal.
func OpenSpanLog(path string) (*SpanLog, error) {
	if path == "" {
		return &SpanLog{}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening span log: %w", err)
	}
	return &SpanLog{f: f}, nil
}

// Append writes one completed span as a single line. Safe for
// concurrent use; spans with EndUnixNs before StartUnixNs are clamped
// to zero duration rather than rejected (clock skew is telemetry noise,
// not an error).
func (l *SpanLog) Append(s Span) error {
	if l.f == nil {
		return nil
	}
	if s.EndUnixNs < s.StartUnixNs {
		s.EndUnixNs = s.StartUnixNs
	}
	line, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("campaign: span append: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("campaign: span append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (l *SpanLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Close()
}

// ReadSpans loads every well-formed span from path. A missing file (or
// the empty path of a no-op log) is an empty history; torn lines are
// skipped, matching ReadJournal.
func ReadSpans(path string) ([]Span, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("campaign: reading spans: %w", err)
	}
	defer f.Close()
	var spans []Span
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			continue // torn or foreign line
		}
		if s.Phase == "" {
			continue
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return spans, fmt.Errorf("campaign: reading spans: %w", err)
	}
	return spans, nil
}

// SpanPath is where the store's progress-span log lives — beside the
// write-ahead journal ("" when journaling is disabled, since both need
// the same local disk).
func (s *Store) SpanPath() string {
	if s.journalPath == "" {
		return ""
	}
	return filepath.Join(filepath.Dir(s.journalPath), "spans.jsonl")
}
