package campaign

import (
	"bytes"
	"fmt"
	"strings"

	"greedy80211/internal/experiments"
	"greedy80211/internal/metrics"
)

// UnitResult is one unit of a spec read back from the store, decoded:
// the assembled form downstream consumers (cmd/report) work with, as
// opposed to assemble's raw byte streaming.
type UnitResult struct {
	Unit Unit
	Meta Meta
	// Result is the decoded artifact; re-encoding it with WriteJSON
	// reproduces the stored bytes exactly.
	Result *experiments.Result
	// Snapshots is the unit's telemetry sidecar, one snapshot per
	// runSeeds batch in canonical order.
	Snapshots []*metrics.Snapshot
}

// MissingUnitsError reports which units of a spec have no store entry.
type MissingUnitsError struct {
	Missing []Unit
}

func (e *MissingUnitsError) Error() string {
	names := make([]string, 0, len(e.Missing))
	for _, u := range e.Missing {
		names = append(names, u.Name())
	}
	return fmt.Sprintf("campaign: store is missing %d units: %s",
		len(e.Missing), strings.Join(names, ", "))
}

// Results reads every unit of the spec back from the store, decoded, in
// work-list order. It never computes anything: if any unit is absent it
// fails with a *MissingUnitsError naming them all, so callers can either
// run the campaign first or report exactly what is missing.
func Results(spec *Spec, store *Store) ([]UnitResult, error) {
	units, err := spec.Units()
	if err != nil {
		return nil, err
	}
	var missing []Unit
	for _, u := range units {
		if !store.Has(u.Key) {
			missing = append(missing, u)
		}
	}
	if len(missing) > 0 {
		return nil, &MissingUnitsError{Missing: missing}
	}
	out := make([]UnitResult, 0, len(units))
	for _, u := range units {
		meta, resultJSON, metricsJSON, err := store.Get(u.Key)
		if err != nil {
			return nil, err
		}
		res, err := experiments.DecodeResult(bytes.NewReader(resultJSON))
		if err != nil {
			return nil, fmt.Errorf("campaign: results %s: %w", u.Name(), err)
		}
		snaps, err := metrics.DecodeSnapshots(bytes.NewReader(metricsJSON))
		if err != nil {
			return nil, fmt.Errorf("campaign: results %s: %w", u.Name(), err)
		}
		out = append(out, UnitResult{Unit: u, Meta: meta, Result: res, Snapshots: snaps})
	}
	return out, nil
}
