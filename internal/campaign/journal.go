package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Record is one journal line. "start" is written ahead of computing a
// unit, "done" after its store commit — so a start without a matching
// done marks a unit that was in flight when the process died.
// "screened" records a model-screening disposition: the unit was not
// computed because the analytic model vouched for its previous-module
// entry (Prev names that entry's key; Note says why).
type Record struct {
	Op       string `json:"op"` // "start" | "done" | "screened"
	Key      string `json:"key"`
	Artifact string `json:"artifact"`
	BaseSeed int64  `json:"base_seed"`
	// Prev and Note are set only on "screened" records.
	Prev string `json:"prev,omitempty"`
	Note string `json:"note,omitempty"`
}

// Journal is the store's append-only write-ahead unit-completion log.
// The store itself is the source of truth for what is computed (entries
// commit atomically); the journal adds history — which units this
// campaign attempted, which were in flight at a crash — for status
// reporting and crash diagnosis. Resume therefore survives a truncated
// or deleted journal: units are re-validated against the store.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. An empty path returns a no-op journal — stores on backends
// without a local disk run unjournaled (the store itself stays the
// source of truth; only the in-flight history is lost).
func OpenJournal(path string) (*Journal, error) {
	if path == "" {
		return &Journal{}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one record as a single line. Safe for concurrent use by
// the worker pool.
func (j *Journal) Append(r Record) error {
	if j.f == nil {
		return nil
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("campaign: journal append: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("campaign: journal append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}

// ReadJournal loads every well-formed record from path. A missing file
// (or the empty path of a no-op journal) is an empty journal; a torn
// final line (crash mid-append) is skipped, not an error.
func ReadJournal(path string) ([]Record, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("campaign: reading journal: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			continue // torn or foreign line
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return recs, fmt.Errorf("campaign: reading journal: %w", err)
	}
	return recs, nil
}
