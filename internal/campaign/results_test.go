package campaign

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestResultsReadsBackDecodedUnits(t *testing.T) {
	spec := testSpec()
	store := t.TempDir()
	mustRun(t, spec, Options{StoreDir: store})

	got, err := Results(spec, mustStore(t, store))
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	units, _ := spec.Units()
	if len(got) != len(units) {
		t.Fatalf("Results returned %d units, want %d", len(got), len(units))
	}
	for i, ur := range got {
		if ur.Unit.Name() != units[i].Name() {
			t.Errorf("unit %d: name %q, want %q (work-list order)", i, ur.Unit.Name(), units[i].Name())
		}
		if ur.Result == nil || ur.Result.ID != ur.Unit.Artifact {
			t.Errorf("unit %d: decoded result id %v, want %q", i, ur.Result, ur.Unit.Artifact)
		}
		if ur.Meta.Key != ur.Unit.Key {
			t.Errorf("unit %d: meta key mismatch", i)
		}
		// Re-encoding the decoded result must reproduce the stored bytes.
		var buf bytes.Buffer
		if err := ur.Result.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		_, stored, _, err := mustStore(t, store).Get(ur.Unit.Key)
		if err != nil {
			t.Fatalf("store get: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), stored) {
			t.Errorf("unit %d (%s): decode→re-encode is not the stored bytes", i, ur.Unit.Name())
		}
	}
}

func mustStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func TestResultsMissingUnits(t *testing.T) {
	spec := testSpec()
	store := t.TempDir()

	// Cold store: every unit is missing, named in work-list order.
	_, err := Results(spec, mustStore(t, store))
	var missing *MissingUnitsError
	if !errors.As(err, &missing) {
		t.Fatalf("Results on cold store: err = %v, want *MissingUnitsError", err)
	}
	units, _ := spec.Units()
	if len(missing.Missing) != len(units) {
		t.Fatalf("missing %d units, want %d", len(missing.Missing), len(units))
	}
	if !strings.Contains(err.Error(), units[0].Name()) {
		t.Errorf("error %q does not name missing unit %q", err, units[0].Name())
	}

	// Half-warm store: only the deleted unit is reported.
	mustRun(t, spec, Options{StoreDir: store})
	if err := mustStore(t, store).Delete(units[0].Key); err != nil {
		t.Fatalf("delete: %v", err)
	}
	_, err = Results(spec, mustStore(t, store))
	if !errors.As(err, &missing) {
		t.Fatalf("Results on torn store: err = %v, want *MissingUnitsError", err)
	}
	if len(missing.Missing) != 1 || missing.Missing[0].Name() != units[0].Name() {
		t.Fatalf("missing = %v, want exactly %q", missing.Missing, units[0].Name())
	}
	// Recompute and the read succeeds again.
	mustRun(t, spec, Options{StoreDir: store})
	if _, err := Results(spec, mustStore(t, store)); err != nil {
		t.Fatalf("Results after recompute: %v", err)
	}
}
