// Package campaign is the durable experiment-campaign engine: it turns a
// declarative spec (artifact ids + RunConfig overrides + a base-seed
// set) into a deterministic work-list of units, computes each unit at
// most once into an on-disk content-addressed store, journals
// completions so an interrupted campaign resumes where it stopped, and
// shards the work-list stably so independent processes cover disjoint
// units against a shared store. A final assemble pass reads every unit
// back and writes per-artifact results and one telemetry sidecar
// byte-identically to a single sequential cmd/experiments run.
//
// A unit is one complete artifact regeneration under one normalized
// RunConfig: (artifact × config variant × base seed). Each unit's bytes
// are exactly what a standalone run of that artifact would produce, so
// caching, sharding, and resumption can never change output — only skip
// recomputation.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"greedy80211/internal/experiments"
	"greedy80211/internal/sim"
)

// Spec declares a campaign: which artifacts, under which RunConfig, over
// which base seeds. The zero config means the experiments defaults
// (5 seeds × 5 s, the paper's methodology).
type Spec struct {
	// Artifacts lists artifact ids; "all" expands to every registered
	// artifact in canonical order.
	Artifacts []string `json:"artifacts"`
	// Config overrides the per-unit RunConfig.
	Config SpecConfig `json:"config"`
	// BaseSeeds runs every artifact once per base seed (distinct units).
	// Empty means one unit per artifact at Config.BaseSeed.
	BaseSeeds []int64 `json:"base_seeds,omitempty"`
}

// SpecConfig is the JSON form of experiments.RunConfig (Duration as a
// human-readable string, e.g. "500ms").
type SpecConfig struct {
	Seeds    int    `json:"seeds,omitempty"`
	BaseSeed int64  `json:"base_seed,omitempty"`
	Duration string `json:"duration,omitempty"`
	Quick    bool   `json:"quick,omitempty"`
}

// RunConfig converts the spec's config to an experiments.RunConfig.
func (sc SpecConfig) RunConfig() (experiments.RunConfig, error) {
	cfg := experiments.RunConfig{
		Seeds:    sc.Seeds,
		BaseSeed: sc.BaseSeed,
		Quick:    sc.Quick,
	}
	if sc.Duration != "" {
		d, err := time.ParseDuration(sc.Duration)
		if err != nil {
			return cfg, fmt.Errorf("campaign: spec duration: %w", err)
		}
		cfg.Duration = sim.Time(d.Nanoseconds())
	}
	return cfg, nil
}

// SpecConfigOf is RunConfig's inverse codec: the JSON-serializable form
// of a config, round-tripping exactly through SpecConfig.RunConfig (the
// duration string is time.Duration's own rendering). campaignd uses it
// to ship a unit's normalized config to workers.
func SpecConfigOf(cfg experiments.RunConfig) SpecConfig {
	return SpecConfig{
		Seeds:    cfg.Seeds,
		BaseSeed: cfg.BaseSeed,
		Duration: time.Duration(cfg.Duration).String(),
		Quick:    cfg.Quick,
	}
}

// LoadSpec reads a JSON spec file, rejecting unknown fields so typos in
// a campaign file fail loudly instead of silently running the defaults.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: parsing spec %s: %w", path, err)
	}
	return &s, nil
}

// Unit is one entry of the expanded work-list: a complete artifact
// regeneration under one normalized config.
type Unit struct {
	// Index is the unit's position in the full deterministic work-list;
	// sharding partitions on it (Index % Shards == Shard).
	Index    int
	Artifact string
	BaseSeed int64
	// Config is the normalized RunConfig the unit runs under (BaseSeed
	// already applied).
	Config experiments.RunConfig
	// Key is the unit's content address in the store.
	Key string
	// multiSeed notes whether the spec had several base seeds, which
	// switches output naming to <artifact>_seed<n>.
	multiSeed bool
}

// Name is the unit's output basename: the artifact id, suffixed with the
// base seed when the spec sweeps several.
func (u Unit) Name() string {
	if u.multiSeed {
		return fmt.Sprintf("%s_seed%d", u.Artifact, u.BaseSeed)
	}
	return u.Artifact
}

// Units expands the spec into the deterministic work-list: artifacts in
// spec order ("all" in registry order) crossed with the base-seed set,
// every config normalized and keyed. The expansion is a pure function of
// the spec and the module version, so two processes expanding the same
// spec always agree on unit indices — which is what makes -shard i/n
// partitioning stable across machines.
func (s *Spec) Units() ([]Unit, error) {
	if len(s.Artifacts) == 0 {
		return nil, fmt.Errorf("campaign: spec lists no artifacts")
	}
	var ids []string
	seen := make(map[string]bool)
	for _, id := range s.Artifacts {
		if id == "all" {
			for _, reg := range experiments.All() {
				if !seen[reg.ID] {
					seen[reg.ID] = true
					ids = append(ids, reg.ID)
				}
			}
			continue
		}
		if _, ok := experiments.Lookup(id); !ok {
			return nil, fmt.Errorf("campaign: unknown artifact %q", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("campaign: duplicate artifact %q", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	base, err := s.Config.RunConfig()
	if err != nil {
		return nil, err
	}
	seeds := s.BaseSeeds
	if len(seeds) == 0 {
		seeds = []int64{base.BaseSeed}
	}
	seedSeen := make(map[int64]bool, len(seeds))
	for _, sd := range seeds {
		if seedSeen[sd] {
			return nil, fmt.Errorf("campaign: duplicate base seed %d", sd)
		}
		seedSeen[sd] = true
	}
	units := make([]Unit, 0, len(ids)*len(seeds))
	for _, id := range ids {
		for _, sd := range seeds {
			cfg := base
			cfg.BaseSeed = sd
			cfg = cfg.Normalize()
			units = append(units, Unit{
				Index:     len(units),
				Artifact:  id,
				BaseSeed:  sd,
				Config:    cfg,
				Key:       Key(id, cfg),
				multiSeed: len(seeds) > 1,
			})
		}
	}
	return units, nil
}
