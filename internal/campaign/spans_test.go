package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

func phasesByName(spans []Span) map[string][]Span {
	out := make(map[string][]Span)
	for _, s := range spans {
		out[s.Phase] = append(out[s.Phase], s)
	}
	return out
}

// A local engine run must leave a span trail beside the journal: one
// expand span plus compute and commit spans for every unit it
// simulated — and a warm rerun (all cache hits) adds only another
// expand span, since hits do no work worth timing.
func TestRunWritesLifecycleSpans(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	rep := mustRun(t, spec, Options{StoreDir: dir})

	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(store.SpanPath())
	if err != nil {
		t.Fatal(err)
	}
	byPhase := phasesByName(spans)
	if len(byPhase["expand"]) != 1 {
		t.Errorf("expand spans: %d, want 1", len(byPhase["expand"]))
	}
	if got := len(byPhase["compute"]); got != rep.Computed {
		t.Errorf("compute spans: %d, want %d", got, rep.Computed)
	}
	if got := len(byPhase["commit"]); got != rep.Computed {
		t.Errorf("commit spans: %d, want %d", got, rep.Computed)
	}
	for _, s := range spans {
		if s.EndUnixNs < s.StartUnixNs {
			t.Errorf("span %s/%s ends before it starts", s.Phase, s.Unit)
		}
		if s.Phase != "expand" && (s.Key == "" || s.Artifact == "") {
			t.Errorf("unit span missing identity: %+v", s)
		}
	}

	mustRun(t, spec, Options{StoreDir: dir})
	spans2, err := ReadSpans(store.SpanPath())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spans) + 1; len(spans2) != want {
		t.Errorf("warm rerun grew the span log to %d entries, want %d (one more expand)", len(spans2), want)
	}
}

// The span log is advisory: torn trailing lines and foreign garbage are
// skipped, and a store without a journal records nothing at all.
func TestReadSpansTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	log, err := OpenSpanLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(Span{Unit: "u1", Phase: "compute", StartUnixNs: 10, EndUnixNs: 5}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json at all\n{\"unit\":\"torn\",\"phase\":\"comp")
	f.Close()

	spans, err := ReadSpans(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Unit != "u1" {
		t.Fatalf("spans through garbage: %+v", spans)
	}
	if spans[0].EndUnixNs != spans[0].StartUnixNs {
		t.Errorf("backwards span not clamped: %+v", spans[0])
	}

	if got, err := ReadSpans(filepath.Join(dir, "missing.jsonl")); err != nil || got != nil {
		t.Errorf("missing file: %v, %v", got, err)
	}
	if got, err := ReadSpans(""); err != nil || got != nil {
		t.Errorf("no-op path: %v, %v", got, err)
	}

	noop, err := OpenSpanLog("")
	if err != nil {
		t.Fatal(err)
	}
	if err := noop.Append(Span{Unit: "x", Phase: "compute"}); err != nil {
		t.Errorf("no-op append: %v", err)
	}
	if err := noop.Close(); err != nil {
		t.Errorf("no-op close: %v", err)
	}
}
