package campaign

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// These tests pin the store's concurrency contract: a reader running
// beside in-progress commits or an in-progress gc observes each entry
// either completely (meta present, checksums hold, payloads decode) or
// not at all (clean fs.ErrNotExist) — never a torn, half-committed, or
// half-deleted object.

// testKeys derives n distinct well-formed (64 hex char) keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", 0xfeed0000+i)
	}
	return keys
}

func TestStoreConcurrentReadersDuringCommits(t *testing.T) {
	s := mustStore(t, t.TempDir())
	keys := testKeys(48)

	var committed atomic.Int64 // index below which entries are durably in
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, key := range keys {
			putTestEntry(t, s, key)
			committed.Store(int64(i + 1))
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				key := keys[rng.Intn(len(keys))]
				// Entries are never deleted here and meta is the commit
				// marker, so Has(key) promises a complete, verifiable
				// entry — the strict form of the contract.
				if s.Has(key) {
					if err := s.VerifyEntry(key); err != nil {
						t.Errorf("reader saw a torn committed entry: %v", err)
						return
					}
				}
				// A blind Get may race the commit: full success or clean
				// not-exist are the only allowed outcomes.
				if _, _, _, err := s.Get(key); err != nil && !errors.Is(err, fs.ErrNotExist) {
					t.Errorf("Get mid-commit: %v (want nil or fs.ErrNotExist)", err)
					return
				}
				// Keys must report at least everything committed before
				// the walk began (entries landing mid-walk may or may not
				// be seen — both are fine).
				low := committed.Load()
				listed, err := s.Keys()
				if err != nil {
					t.Errorf("Keys mid-commit: %v", err)
					return
				}
				if int64(len(listed)) < low {
					t.Errorf("Keys lost committed entries: %d listed, %d committed", len(listed), low)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	<-done

	// Settled state: everything is in and verifies.
	for _, key := range keys {
		if err := s.VerifyEntry(key); err != nil {
			t.Fatalf("after settle: %v", err)
		}
	}
}

func TestStoreConcurrentReadersDuringGC(t *testing.T) {
	s := mustStore(t, t.TempDir())
	spec := testSpec()
	units, err := spec.Units()
	if err != nil {
		t.Fatal(err)
	}
	// Referenced entries survive gc; strays are deleted while readers
	// are mid-flight.
	for _, u := range units {
		putTestEntry(t, s, u.Key)
	}
	strays := testKeys(48)
	for _, key := range strays {
		putTestEntry(t, s, key)
	}

	done := make(chan struct{})
	var gcRep *GCReport
	var gcErr error
	go func() {
		defer close(done)
		gcRep, gcErr = GC(spec, s, false)
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				key := strays[rng.Intn(len(strays))]
				// Mid-delete, an entry must read as either fully intact
				// (checksums hold) or cleanly absent. meta goes first, so
				// a reader can never pass Has and then find a payload
				// checksum-broken — but it may see meta and then lose a
				// payload to the delete, which must surface as not-exist.
				if err := s.VerifyEntry(key); err != nil && !errors.Is(err, fs.ErrNotExist) {
					t.Errorf("reader mid-gc: %v (want nil or fs.ErrNotExist)", err)
					return
				}
				// Referenced entries are untouchable throughout.
				u := units[rng.Intn(len(units))]
				if err := s.VerifyEntry(u.Key); err != nil {
					t.Errorf("gc disturbed a referenced entry: %v", err)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	<-done

	if gcErr != nil {
		t.Fatalf("gc: %v", gcErr)
	}
	if gcRep.Deleted != len(strays) || gcRep.Kept != len(units) {
		t.Errorf("gc report: kept %d deleted %d, want %d/%d", gcRep.Kept, gcRep.Deleted, len(units), len(strays))
	}
	for _, key := range strays {
		if s.Has(key) {
			t.Errorf("stray %s survived gc", key[:12])
		}
	}
	for _, u := range units {
		if err := s.VerifyEntry(u.Key); err != nil {
			t.Errorf("after gc: %v", err)
		}
	}
}
