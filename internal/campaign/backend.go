package campaign

import (
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Backend is the persistence layer under the content-addressed store: a
// flat namespace of immutable blobs with object-store-shaped operations,
// so the local directory implementation below and a future remote object
// store (S3/GCS-like) are interchangeable. Object names are
// slash-separated relative paths ("objects/ab/abcd…/result.json").
//
// Contract every implementation must honor:
//
//   - Put is atomic: a concurrent Get of the same name returns either
//     the complete previous content, the complete new content, or a
//     not-exist error — never a torn prefix. Overwriting an existing
//     object is allowed (the store only ever overwrites with identical
//     bytes, because names are content addresses).
//   - Get and Stat report absence with an error satisfying
//     errors.Is(err, fs.ErrNotExist).
//   - Delete of a missing object is a no-op, not an error.
//   - List returns every object name with the given prefix, sorted.
//   - All methods are safe for concurrent use.
type Backend interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List(prefix string) ([]string, error)
	Stat(name string) (ObjectInfo, error)
	Delete(name string) error
}

// ObjectInfo describes one stored object without reading it.
type ObjectInfo struct {
	Name string
	Size int64
}

// validObjectName rejects names that could escape a rooted namespace or
// that differ between backends (empty segments, dot segments, absolute
// or backslashed paths).
func validObjectName(name string) error {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, "\\") {
		return fmt.Errorf("campaign: invalid object name %q", name)
	}
	if cleaned := path.Clean(name); cleaned != name || name == "." || strings.HasPrefix(cleaned, "..") {
		return fmt.Errorf("campaign: invalid object name %q", name)
	}
	return nil
}

// DirBackend is the first Backend: a local directory, one file per
// object. Put stages the bytes in a tmp- file on the same filesystem and
// renames it into place, which is what makes commits atomic; OpenStore
// sweeps tmp- leftovers from crashed writers.
type DirBackend struct {
	root string
}

// NewDirBackend opens (creating if needed) a directory-backed object
// namespace rooted at dir and removes any tmp- staging files or
// directories a crashed writer left behind.
func NewDirBackend(dir string) (*DirBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening backend: %w", err)
	}
	stale, _ := filepath.Glob(filepath.Join(dir, "tmp-*"))
	for _, d := range stale {
		os.RemoveAll(d)
	}
	return &DirBackend{root: dir}, nil
}

// Root returns the backend's root directory.
func (b *DirBackend) Root() string { return b.root }

func (b *DirBackend) path(name string) string {
	return filepath.Join(b.root, filepath.FromSlash(name))
}

// Put atomically writes data under name: stage in a tmp- file at the
// root (same filesystem as the destination), then rename into place.
func (b *DirBackend) Put(name string, data []byte) error {
	if err := validObjectName(name); err != nil {
		return err
	}
	dst := b.path(name)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("campaign: backend put %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(b.root, "tmp-")
	if err != nil {
		return fmt.Errorf("campaign: backend put %s: %w", name, err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, dst)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: backend put %s: %w", name, werr)
	}
	return nil
}

// Get reads one object; a missing object satisfies
// errors.Is(err, fs.ErrNotExist).
func (b *DirBackend) Get(name string) ([]byte, error) {
	if err := validObjectName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(b.path(name))
	if err != nil {
		return nil, fmt.Errorf("campaign: backend get %s: %w", name, err)
	}
	return data, nil
}

// Stat describes one object without reading it.
func (b *DirBackend) Stat(name string) (ObjectInfo, error) {
	if err := validObjectName(name); err != nil {
		return ObjectInfo{}, err
	}
	fi, err := os.Stat(b.path(name))
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("campaign: backend stat %s: %w", name, err)
	}
	if fi.IsDir() {
		return ObjectInfo{}, fmt.Errorf("campaign: backend stat %s: %w", name, fs.ErrNotExist)
	}
	return ObjectInfo{Name: name, Size: fi.Size()}, nil
}

// List returns the sorted names of every object with the given prefix.
// Staging files are never listed.
func (b *DirBackend) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(b.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			// A directory pruned by a concurrent Delete mid-walk is not
			// an inconsistency; objects are judged by their own presence.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), "tmp-") {
			return nil
		}
		rel, err := filepath.Rel(b.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: backend list %s: %w", prefix, err)
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes one object (no error if absent) and prunes any
// directories the removal emptied, so a deleted entry leaves no husk.
func (b *DirBackend) Delete(name string) error {
	if err := validObjectName(name); err != nil {
		return err
	}
	if err := os.Remove(b.path(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("campaign: backend delete %s: %w", name, err)
	}
	for dir := path.Dir(name); dir != "." && dir != "/"; dir = path.Dir(dir) {
		// Remove refuses non-empty directories, which is exactly the
		// stop condition.
		if err := os.Remove(b.path(dir)); err != nil {
			break
		}
	}
	return nil
}
