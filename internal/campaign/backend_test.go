package campaign

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestDirBackendRoundTrip(t *testing.T) {
	b, err := NewDirBackend(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	name := "objects/ab/abcd/meta.json"
	if _, err := b.Get(name); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get missing: %v, want fs.ErrNotExist", err)
	}
	if _, err := b.Stat(name); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat missing: %v, want fs.ErrNotExist", err)
	}
	want := []byte("{\"k\":1}\n")
	if err := b.Put(name, want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(name)
	if err != nil || string(got) != string(want) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	info, err := b.Stat(name)
	if err != nil || info.Name != name || info.Size != int64(len(want)) {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	// Overwrite is allowed and atomic.
	if err := b.Put(name, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Get(name); string(got) != "x" {
		t.Fatalf("after overwrite: %q", got)
	}
	if err := b.Delete(name); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(name); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get after Delete: %v", err)
	}
	// Deleting a missing object is a no-op, not an error.
	if err := b.Delete(name); err != nil {
		t.Fatalf("double Delete: %v", err)
	}
	// Delete pruned the directories its removal emptied.
	if _, err := os.Stat(filepath.Join(b.Root(), "objects")); !os.IsNotExist(err) {
		t.Error("Delete left empty parent directories behind")
	}
}

func TestDirBackendListAndPrefix(t *testing.T) {
	b, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"objects/aa/aaa1/meta.json",
		"objects/aa/aaa1/result.json",
		"objects/bb/bbb2/meta.json",
		"traces/aa/aaa1/timeline",
	}
	for _, n := range names {
		if err := b.Put(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	all, err := b.List("")
	if err != nil {
		t.Fatal(err)
	}
	// List is sorted; the fixture list above already is.
	if !reflect.DeepEqual(all, names) {
		t.Fatalf("List(\"\") = %v, want %v", all, names)
	}
	objs, err := b.List("objects/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(objs, names[:3]) {
		t.Fatalf("List(objects/) = %v, want %v", objs, names[:3])
	}
}

func TestDirBackendRejectsBadNames(t *testing.T) {
	b, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"", "/abs", "a//b", "a/", "../escape", "a/../b", ".", "a/./b", `a\b`,
	} {
		if err := b.Put(name, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid object name", name)
		}
	}
}

func TestDirBackendListSkipsStaging(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("objects/aa/k/meta.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A concurrent Put's staging file must be invisible to List.
	if err := os.WriteFile(filepath.Join(dir, "tmp-123456"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	all, err := b.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0] != "objects/aa/k/meta.json" {
		t.Fatalf("List sees staging files: %v", all)
	}
}
