package campaign

import (
	"greedy80211/internal/core"
)

// Model screening: when the code changes, every unit's key changes with
// the module fingerprint and a warm store goes cold — even though most
// changes leave most artifacts' physics untouched. The screening pass
// lets the analytic tier vouch for those stale entries: before
// simulating a missing unit, the engine finds the unit's most recent
// previous-module entry and asks the Options.Screen oracle (wired by
// cmd/campaign to the Markov model's predictions) whether that result
// still agrees with the model. If it does, the unit is journaled and
// reported as "screened" instead of being recomputed.
//
// A screened unit deliberately does NOT adopt the stale bytes under the
// new key: the store never holds output the current module did not
// produce. Screening is a disposition — a recorded, model-backed reason
// to defer recomputation — not a cache forgery; assembling or gating on
// the store still requires computing the units for real.

// FindPrevious scans the store for the most recent complete entry that
// matches u's artifact and normalized config but was computed under a
// different module fingerprint — the unit's pre-refactor incarnation.
// It returns the zero Meta when no such entry exists. Ties on creation
// time break lexicographically by key, keeping the choice deterministic
// across processes.
func FindPrevious(store *Store, u Unit) (Meta, []byte, error) {
	keys, err := store.Keys()
	if err != nil {
		return Meta{}, nil, err
	}
	module := core.ModuleFingerprint()
	var best Meta
	for _, key := range keys {
		if key == u.Key {
			continue
		}
		meta, err := store.GetMeta(key)
		if err != nil {
			continue // torn or foreign entry; not screenable
		}
		if meta.Module == module || meta.Artifact != u.Artifact {
			continue
		}
		if meta.Seeds != u.Config.Seeds || meta.BaseSeed != u.Config.BaseSeed ||
			meta.DurationNs != int64(u.Config.Duration) || meta.Quick != u.Config.Quick {
			continue
		}
		if best.Key == "" || meta.CreatedUnix > best.CreatedUnix ||
			(meta.CreatedUnix == best.CreatedUnix && meta.Key < best.Key) {
			best = meta
		}
	}
	if best.Key == "" {
		return Meta{}, nil, nil
	}
	result, err := store.GetResult(best.Key)
	if err != nil {
		return Meta{}, nil, err
	}
	return best, result, nil
}
