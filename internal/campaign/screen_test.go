package campaign

import (
	"context"
	"strings"
	"testing"

	"greedy80211/internal/core"
)

// plantPrevious commits a fake previous-module entry for u: same
// artifact and normalized config, a synthetic key, and the given module
// fingerprint and creation time.
func plantPrevious(t *testing.T, store *Store, u Unit, key, module string, created int64) Meta {
	t.Helper()
	result, metricsJSON, err := ComputeUnit(u)
	if err != nil {
		t.Fatalf("ComputeUnit: %v", err)
	}
	meta := Meta{
		Key:         key,
		Module:      module,
		Artifact:    u.Artifact,
		Seeds:       u.Config.Seeds,
		BaseSeed:    u.Config.BaseSeed,
		DurationNs:  int64(u.Config.Duration),
		Quick:       u.Config.Quick,
		CreatedUnix: created,
	}
	if err := store.Put(meta, result, metricsJSON); err != nil {
		t.Fatalf("store.Put: %v", err)
	}
	return meta
}

func singleUnit(t *testing.T, spec *Spec) Unit {
	t.Helper()
	units, err := spec.Units()
	if err != nil {
		t.Fatalf("spec.Units: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("want 1 unit, got %d", len(units))
	}
	return units[0]
}

func screenSpec() *Spec {
	return &Spec{
		Artifacts: []string{"extc"},
		Config:    SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	}
}

func TestFindPrevious(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	u := singleUnit(t, screenSpec())

	// Empty store: no previous incarnation, no error.
	prev, _, err := FindPrevious(store, u)
	if err != nil || prev.Key != "" {
		t.Fatalf("empty store: got (%q, %v), want zero meta", prev.Key, err)
	}

	// Decoys: a different artifact, and a different config of the same
	// artifact — neither may match.
	other := singleUnit(t, &Spec{
		Artifacts: []string{"fig1"},
		Config:    SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	})
	plantPrevious(t, store, other, strings.Repeat("aa", 32), "prev-module", 100)
	diffCfg := singleUnit(t, &Spec{
		Artifacts: []string{"extc"},
		Config:    SpecConfig{Seeds: 1, BaseSeed: 7, Duration: "100ms", Quick: true},
	})
	plantPrevious(t, store, diffCfg, strings.Repeat("bb", 32), "prev-module", 100)
	prev, _, err = FindPrevious(store, u)
	if err != nil || prev.Key != "" {
		t.Fatalf("decoys only: got (%q, %v), want zero meta", prev.Key, err)
	}

	// Two real previous incarnations: the newest wins.
	plantPrevious(t, store, u, strings.Repeat("cc", 32), "prev-module", 100)
	want := plantPrevious(t, store, u, strings.Repeat("dd", 32), "prev-module", 200)
	prev, result, err := FindPrevious(store, u)
	if err != nil {
		t.Fatalf("FindPrevious: %v", err)
	}
	if prev.Key != want.Key {
		t.Errorf("newest: got %s, want %s", prev.Key[:8], want.Key[:8])
	}
	if len(result) == 0 {
		t.Error("no result bytes returned")
	}
	if err := CheckPayloads(result, []byte("[]")); err != nil {
		t.Errorf("previous result undecodable: %v", err)
	}

	// A tie on creation time breaks toward the lexicographically
	// smaller key.
	plantPrevious(t, store, u, strings.Repeat("ee", 32), "prev-module", 200)
	prev, _, err = FindPrevious(store, u)
	if err != nil || prev.Key != want.Key {
		t.Errorf("tie-break: got (%q, %v), want %s", prev.Key[:8], err, want.Key[:8])
	}

	// An entry under the current module fingerprint never screens, even
	// when newer.
	plantPrevious(t, store, u, strings.Repeat("ff", 32), core.ModuleFingerprint(), 300)
	prev, _, err = FindPrevious(store, u)
	if err != nil || prev.Key != want.Key {
		t.Errorf("current-module decoy: got (%q, %v), want %s", prev.Key[:8], err, want.Key[:8])
	}
}

func TestRunScreened(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	spec := screenSpec()
	u := singleUnit(t, spec)
	planted := plantPrevious(t, store, u, strings.Repeat("ab", 32), "prev-module", 100)

	var sawPrev Meta
	var sawResult []byte
	rep, err := Run(context.Background(), spec, Options{
		Store: store,
		Screen: func(gotU Unit, prev Meta, result []byte) (bool, string) {
			if gotU.Key != u.Key {
				t.Errorf("screen hook unit key %s, want %s", gotU.Key[:8], u.Key[:8])
			}
			sawPrev, sawResult = prev, result
			return true, "model agrees (test)"
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Screened != 1 || rep.Computed != 0 || rep.CacheHits != 0 {
		t.Fatalf("report: screened=%d computed=%d hits=%d, want 1/0/0",
			rep.Screened, rep.Computed, rep.CacheHits)
	}
	if sawPrev.Key != planted.Key {
		t.Errorf("screen hook saw prev %s, want %s", sawPrev.Key[:8], planted.Key[:8])
	}
	if len(sawResult) == 0 {
		t.Error("screen hook saw no result bytes")
	}
	if store.Has(u.Key) {
		t.Error("screened unit must not be committed under the new key")
	}

	// The journal records the disposition and status surfaces it.
	recs, err := ReadJournal(store.JournalPath())
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	var screened *Record
	for i := range recs {
		if recs[i].Op == "screened" && recs[i].Key == u.Key {
			screened = &recs[i]
		}
	}
	if screened == nil {
		t.Fatal("no screened journal record")
	}
	if screened.Prev != planted.Key || screened.Note == "" {
		t.Errorf("screened record prev=%q note=%q, want prev=%s and a note",
			screened.Prev, screened.Note, planted.Key[:8])
	}
	sts, err := Status(spec, store)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !sts[0].Screened || sts[0].Done || sts[0].InFlight {
		t.Errorf("status: %+v, want screened only", sts[0])
	}
	doc := NewStatusDoc(sts)
	if doc.Screened != 1 || doc.Units[0].State != UnitScreened {
		t.Errorf("status doc: screened=%d state=%s", doc.Screened, doc.Units[0].State)
	}

	// A rejecting oracle computes the unit for real; the store commit
	// then supersedes the screened disposition in status.
	rep, err = Run(context.Background(), spec, Options{
		Store:  store,
		Screen: func(Unit, Meta, []byte) (bool, string) { return false, "model disagrees" },
	})
	if err != nil {
		t.Fatalf("Run (reject): %v", err)
	}
	if rep.Computed != 1 || rep.Screened != 0 {
		t.Fatalf("reject report: computed=%d screened=%d, want 1/0", rep.Computed, rep.Screened)
	}
	if !store.Has(u.Key) {
		t.Error("rejected unit was not computed into the store")
	}
	sts, err = Status(spec, store)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !sts[0].Done || sts[0].Screened {
		t.Errorf("status after compute: %+v, want done", sts[0])
	}
}
