package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// putTestEntry commits a minimal well-formed entry and returns its key.
func putTestEntry(t *testing.T, s *Store, key string) {
	t.Helper()
	result := []byte("{\n  \"id\": \"x\",\n  \"title\": \"t\"\n}\n")
	metricsJSON := []byte("[]\n")
	if err := s.Put(Meta{Key: key, Artifact: "x"}, result, metricsJSON); err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
}

func TestStoreRoundTripAndVerify(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if s.Has(key) {
		t.Fatal("Has before Put")
	}
	putTestEntry(t, s, key)
	if !s.Has(key) {
		t.Fatal("Has after Put")
	}
	meta, result, metricsJSON, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Key != key || meta.Artifact != "x" {
		t.Errorf("meta round trip: %+v", meta)
	}
	if !strings.Contains(string(result), "\"id\"") || string(metricsJSON) != "[]\n" {
		t.Errorf("payload round trip: %q / %q", result, metricsJSON)
	}
	if err := s.VerifyEntry(key); err != nil {
		t.Errorf("verify clean entry: %v", err)
	}

	// Re-putting an existing key is a benign no-op (shards racing).
	putTestEntry(t, s, key)

	// Tamper with the payload: verify must notice.
	obj := filepath.Join(s.Root(), "objects", key[:2], key, "result.json")
	if err := os.WriteFile(obj, []byte("{\"id\":\"corrupted\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyEntry(key); err == nil {
		t.Error("verify accepted a tampered entry")
	}
	if bad, err := Verify(s); err != nil || len(bad) != 1 {
		t.Errorf("Verify(store) = %v, %v; want exactly one bad entry", bad, err)
	}

	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if s.Has(key) {
		t.Error("Has after Delete")
	}
}

func TestOpenStoreSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "tmp-dead"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-dead")); !os.IsNotExist(err) {
		t.Error("stale tmp- staging dir survived OpenStore")
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: "start", Key: "k1", Artifact: "fig1"},
		{Op: "done", Key: "k1", Artifact: "fig1"},
		{Op: "start", Key: "k2", Artifact: "fig2", BaseSeed: 7},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final line mid-record, as a crash during append would.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("ReadJournal after torn tail = %+v, want first two records", got)
	}

	// A missing journal is an empty one.
	if recs, err := ReadJournal(filepath.Join(t.TempDir(), "none.jsonl")); err != nil || recs != nil {
		t.Errorf("missing journal: %v, %v", recs, err)
	}
}

func TestGCKeepsReferencedEntries(t *testing.T) {
	storeDir := t.TempDir()
	spec := testSpec()
	rep, err := Run(context.Background(), spec, Options{StoreDir: storeDir})
	if err != nil || len(rep.Failures) > 0 {
		t.Fatalf("seeding store: %v / %v", err, rep.Failures)
	}
	s, err := OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	stray := strings.Repeat("cd", 32)
	putTestEntry(t, s, stray)

	dry, err := GC(spec, s, true)
	if err != nil {
		t.Fatal(err)
	}
	if dry.Deleted != 1 || dry.Kept != rep.Units {
		t.Fatalf("dry gc: kept %d deleted %d, want %d/1", dry.Kept, dry.Deleted, rep.Units)
	}
	if !s.Has(stray) {
		t.Fatal("dry run deleted the stray entry")
	}

	got, err := GC(spec, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deleted != 1 || s.Has(stray) {
		t.Errorf("gc left the stray entry (deleted %d)", got.Deleted)
	}
	// Referenced entries survive: a warm rerun is still all hits.
	warm, err := Run(context.Background(), spec, Options{StoreDir: storeDir})
	if err != nil || warm.CacheHits != warm.Units {
		t.Errorf("post-gc rerun: hits %d/%d, err %v", warm.CacheHits, warm.Units, err)
	}
}

func TestStatusReportsDoneAndInFlight(t *testing.T) {
	storeDir := t.TempDir()
	spec := testSpec()
	units, err := spec.Units()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the state: unit 0 committed, unit 1 started but never
	// finished (a crash mid-compute).
	s, err := OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	putTestEntry(t, s, units[0].Key)
	j, err := OpenJournal(s.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{
		{Op: "start", Key: units[0].Key, Artifact: units[0].Artifact},
		{Op: "done", Key: units[0].Key, Artifact: units[0].Artifact},
		{Op: "start", Key: units[1].Key, Artifact: units[1].Artifact},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	st, err := Status(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 {
		t.Fatalf("status length %d", len(st))
	}
	if !st[0].Done || st[0].InFlight {
		t.Errorf("unit 0 status = %+v, want done", st[0])
	}
	if st[1].Done || !st[1].InFlight {
		t.Errorf("unit 1 status = %+v, want in-flight", st[1])
	}
}
