// Package profileflags is the shared -cpuprofile/-memprofile plumbing of
// the CLIs (greedysim, experiments, campaign): one place registers the
// flags and one Start/stop pair owns the file lifecycle, instead of each
// command copy-pasting the pprof boilerplate.
package profileflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the parsed profile destinations.
type Flags struct {
	CPU string
	Mem string
}

// Register adds -cpuprofile and -memprofile to fs and returns the
// destination holder to pass to Start after parsing.
func Register(fs *flag.FlagSet) *Flags {
	var f Flags
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return &f
}

// Start begins CPU profiling (if requested) and arranges a heap profile
// dump; the returned stop function must run before the process exits —
// callers defer it inside a run() that returns an exit code, so profiles
// are flushed even though main os.Exits. Start never returns a nil stop.
func (f *Flags) Start() (stop func(), err error) {
	var cpuF *os.File
	if f.CPU != "" {
		cpuF, err = os.Create(f.CPU)
		if err != nil {
			return func() {}, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return func() {}, fmt.Errorf("starting cpu profile: %w", err)
		}
	}
	memPath := f.Mem
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if memPath != "" {
			out, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing heap profile: %v\n", err)
				return
			}
			defer out.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(out); err != nil {
				fmt.Fprintf(os.Stderr, "writing heap profile: %v\n", err)
			}
		}
	}, nil
}
