package phys

import (
	"fmt"
	"math"
	"math/rand"
)

// ErrorModel decides whether a frame of a given size is corrupted by the
// channel, independently at each receiver. The paper's simulations inject
// "random loss of bit-error-rate" via ns-2's error model; Table III records
// the BER→FER mapping that model produced. UnitErrorModel reproduces that
// mapping (see DESIGN.md §2 and §5): the frame error rate is
//
//	FER = 1 − (1 − BER)^U
//
// where U is the frame's error-unit count: its MAC size in bytes plus
// PLCPErrorUnits of preamble/PLCP overhead.
type ErrorModel interface {
	// FER reports the frame error rate for a frame with the given number
	// of error units.
	FER(units int) float64
	// FrameError draws whether such a frame is corrupted.
	FrameError(rng *rand.Rand, units int) bool
}

// PLCPErrorUnits is the preamble/PLCP contribution to a frame's error-unit
// count; 24 units reproduces the control-frame rows of Table III exactly
// (ACK/CTS: 14 + 24 = 38; RTS: 20 + 24 = 44).
const PLCPErrorUnits = 24

// ErrorUnits reports the error-unit count for a MAC frame of the given size
// (bytes including MAC header and FCS).
func ErrorUnits(macBytes int) int { return macBytes + PLCPErrorUnits }

// UnitErrorModel is the default channel error model: independent per-unit
// errors at rate BER. A BER of zero yields a loss-free channel.
type UnitErrorModel struct {
	BER float64
}

var _ ErrorModel = UnitErrorModel{}

// FER implements ErrorModel.
func (m UnitErrorModel) FER(units int) float64 {
	if m.BER <= 0 || units <= 0 {
		return 0
	}
	if m.BER >= 1 {
		return 1
	}
	return 1 - math.Pow(1-m.BER, float64(units))
}

// FrameError implements ErrorModel.
func (m UnitErrorModel) FrameError(rng *rand.Rand, units int) bool {
	if m.BER <= 0 {
		return false
	}
	return rng.Float64() < m.FER(units)
}

// FixedFERModel corrupts every frame with the same probability regardless
// of size. Table V's "data error rate 0.2/0.5/0.8" rows and the testbed
// emulations use it.
type FixedFERModel struct {
	Rate float64
}

var _ ErrorModel = FixedFERModel{}

// FER implements ErrorModel.
func (m FixedFERModel) FER(int) float64 {
	switch {
	case m.Rate < 0:
		return 0
	case m.Rate > 1:
		return 1
	default:
		return m.Rate
	}
}

// FrameError implements ErrorModel.
func (m FixedFERModel) FrameError(rng *rand.Rand, units int) bool {
	return m.Rate > 0 && rng.Float64() < m.FER(units)
}

// SizeGatedFER corrupts only frames of at least MinUnits error units, each
// with probability Rate. It models the "data frame error rate" knobs of
// the paper's fake-ACK experiments (Table V, Fig 19), where loss is quoted
// for data frames while short control frames get through.
type SizeGatedFER struct {
	Rate     float64
	MinUnits int
}

var _ ErrorModel = SizeGatedFER{}

// FER implements ErrorModel.
func (m SizeGatedFER) FER(units int) float64 {
	if units < m.MinUnits {
		return 0
	}
	return FixedFERModel{Rate: m.Rate}.FER(units)
}

// FrameError implements ErrorModel.
func (m SizeGatedFER) FrameError(rng *rand.Rand, units int) bool {
	return m.FER(units) > 0 && rng.Float64() < m.FER(units)
}

// RateErrorModel corrupts frames as a function of the PHY rate they were
// transmitted at — higher rates need more SNR and fail more often on a
// marginal link. It backs the auto-rate extension experiments.
type RateErrorModel interface {
	// FERAtRate reports the frame error rate at the given PHY rate.
	FERAtRate(rateBps int64, units int) float64
	// FrameErrorAtRate draws whether such a frame is corrupted.
	FrameErrorAtRate(rng *rand.Rand, rateBps int64, units int) bool
}

// RateLadderFER assigns a fixed frame error rate to each PHY rate,
// modeling a link whose SNR supports the low rates cleanly while the high
// rates are marginal. Frames below MinUnits (control frames) always pass.
type RateLadderFER struct {
	// FERByRate maps PHY rate (bits/s) to frame error rate; rates absent
	// from the map are loss-free.
	FERByRate map[int64]float64
	// MinUnits gates small frames out of the loss process.
	MinUnits int
}

var _ RateErrorModel = RateLadderFER{}

// FERAtRate implements RateErrorModel.
func (m RateLadderFER) FERAtRate(rateBps int64, units int) float64 {
	if units < m.MinUnits {
		return 0
	}
	fer := m.FERByRate[rateBps]
	switch {
	case fer < 0:
		return 0
	case fer > 1:
		return 1
	default:
		return fer
	}
}

// FrameErrorAtRate implements RateErrorModel.
func (m RateLadderFER) FrameErrorAtRate(rng *rand.Rand, rateBps int64, units int) bool {
	fer := m.FERAtRate(rateBps, units)
	return fer > 0 && rng.Float64() < fer
}

// NoError is a loss-free channel.
type NoError struct{}

var _ ErrorModel = NoError{}

// FER implements ErrorModel.
func (NoError) FER(int) float64 { return 0 }

// FrameError implements ErrorModel.
func (NoError) FrameError(*rand.Rand, int) bool { return false }

// ByteErrorProcess corrupts individual bytes of a frame, tracking whether
// the corruption touched the destination or source MAC address fields. It
// backs the Table I study: misbehavior 3 (fake ACKs) is feasible because
// most corrupted frames still carry intact MAC addresses.
type ByteErrorProcess interface {
	// CorruptFrame draws the error pattern for a frame of n bytes and
	// reports whether any byte was corrupted and whether the corruption
	// hit the destination (bytes 4–9) or source (bytes 10–15) address.
	CorruptFrame(rng *rand.Rand, n int) FrameCorruption
}

// FrameCorruption describes where channel errors landed within one frame.
type FrameCorruption struct {
	Corrupted bool
	DstHit    bool
	SrcHit    bool
}

// MAC data-frame address field offsets (bytes): Frame Control (2) +
// Duration (2), then Address1 = destination, Address2 = source.
const (
	dstAddrStart = 4
	dstAddrEnd   = 10 // exclusive
	srcAddrStart = 10
	srcAddrEnd   = 16 // exclusive
)

// UniformByteErrors corrupts each byte independently with probability P.
// It models 802.11b's near-memoryless residual errors.
type UniformByteErrors struct {
	P float64
}

var _ ByteErrorProcess = UniformByteErrors{}

// CorruptFrame implements ByteErrorProcess. It avoids an O(n) scan in the
// common no-error case by first drawing whether the frame is hit at all.
func (u UniformByteErrors) CorruptFrame(rng *rand.Rand, n int) FrameCorruption {
	var c FrameCorruption
	if u.P <= 0 || n <= 0 {
		return c
	}
	pFrame := 1 - math.Pow(1-u.P, float64(n))
	if rng.Float64() >= pFrame {
		return c
	}
	c.Corrupted = true
	// At least one byte is corrupted; resample positions until the draw is
	// consistent (cheap: P(no byte hit | frame hit) already excluded).
	for {
		hitAny := false
		for i := 0; i < n; i++ {
			if rng.Float64() < u.P {
				hitAny = true
				switch {
				case i >= dstAddrStart && i < dstAddrEnd:
					c.DstHit = true
				case i >= srcAddrStart && i < srcAddrEnd:
					c.SrcHit = true
				}
			}
		}
		if hitAny {
			return c
		}
	}
}

// GilbertElliott is a two-state burst-error process: a good state with
// near-zero byte error probability and a bad state with high error
// probability, with geometric sojourn times. OFDM (802.11a) corruption is
// bursty — whole symbols fail together — which is why the paper measures a
// markedly lower address-preservation rate on 802.11a (84%) than on
// 802.11b (98.8%).
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-byte state transition probabilities.
	PGoodToBad float64
	PBadToGood float64
	// PErrGood and PErrBad are byte corruption probabilities per state.
	PErrGood float64
	PErrBad  float64
	// PStartBad is the stationary probability of starting a frame in the
	// bad state; if negative, the stationary distribution is used.
	PStartBad float64
}

var _ ByteErrorProcess = GilbertElliott{}

// Validate reports an error for out-of-range probabilities.
func (g GilbertElliott) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", g.PGoodToBad}, {"PBadToGood", g.PBadToGood},
		{"PErrGood", g.PErrGood}, {"PErrBad", g.PErrBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("phys: GilbertElliott.%s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

func (g GilbertElliott) startBad(rng *rand.Rand) bool {
	p := g.PStartBad
	if p < 0 {
		denom := g.PGoodToBad + g.PBadToGood
		if denom == 0 {
			return false
		}
		p = g.PGoodToBad / denom
	}
	return rng.Float64() < p
}

// CorruptFrame implements ByteErrorProcess.
func (g GilbertElliott) CorruptFrame(rng *rand.Rand, n int) FrameCorruption {
	var c FrameCorruption
	bad := g.startBad(rng)
	for i := 0; i < n; i++ {
		pErr := g.PErrGood
		if bad {
			pErr = g.PErrBad
		}
		if pErr > 0 && rng.Float64() < pErr {
			c.Corrupted = true
			switch {
			case i >= dstAddrStart && i < dstAddrEnd:
				c.DstHit = true
			case i >= srcAddrStart && i < srcAddrEnd:
				c.SrcHit = true
			}
		}
		if bad {
			if rng.Float64() < g.PBadToGood {
				bad = false
			}
		} else if rng.Float64() < g.PGoodToBad {
			bad = true
		}
	}
	return c
}
