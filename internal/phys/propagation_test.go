package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	a := Position{0, 0}
	b := Position{3, 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := a.DistanceTo(a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if s := b.String(); s != "(3.0,4.0)" {
		t.Errorf("String = %q", s)
	}
}

func TestPropagationDelay(t *testing.T) {
	if PropagationDelay(0) != 0 || PropagationDelay(-1) != 0 {
		t.Error("nonpositive distance should have zero delay")
	}
	// 300m ≈ 1µs.
	d := PropagationDelay(300)
	if d < 900 || d > 1100 { // ns
		t.Errorf("300m delay = %v, want ≈1µs", d)
	}
}

func TestPropagationValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Propagation)
		wantErr bool
	}{
		{"default ok", func(*Propagation) {}, false},
		{"zero comm range", func(p *Propagation) { p.CommRange = 0 }, true},
		{"cs below comm", func(p *Propagation) { p.CSRange = p.CommRange - 1 }, true},
		{"bad exponent", func(p *Propagation) { p.PathLossExponent = 0 }, true},
		{"bad reference", func(p *Propagation) { p.ReferenceDistance = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultPropagation()
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRangeMembershipMatchesThresholds(t *testing.T) {
	p := GRCPropagation() // 55m comm / 99m CS
	origin := Position{0, 0}
	tests := []struct {
		d        float64
		comm, cs bool
	}{
		{1, true, true},
		{54.9, true, true},
		{55.1, false, true},
		{98.9, false, true},
		{99.1, false, false},
	}
	for _, tt := range tests {
		q := Position{tt.d, 0}
		if got := p.InCommRange(origin, q); got != tt.comm {
			t.Errorf("InCommRange at %vm = %v, want %v", tt.d, got, tt.comm)
		}
		if got := p.InCSRange(origin, q); got != tt.cs {
			t.Errorf("InCSRange at %vm = %v, want %v", tt.d, got, tt.cs)
		}
	}
	// Power at the range boundary must straddle the threshold.
	if p.RxPowerDBm(54) < p.RxThresholdDBm() {
		t.Error("power inside comm range below RX threshold")
	}
	if p.RxPowerDBm(56) > p.RxThresholdDBm() {
		t.Error("power outside comm range above RX threshold")
	}
}

func TestRxPowerMonotoneDecreasing(t *testing.T) {
	p := DefaultPropagation()
	f := func(d1Raw, d2Raw uint16) bool {
		d1 := 1 + float64(d1Raw)/100
		d2 := 1 + float64(d2Raw)/100
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return p.RxPowerDBm(d1) >= p.RxPowerDBm(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRxPowerPathLossSlope(t *testing.T) {
	p := DefaultPropagation() // exponent 4
	// Doubling distance should cost 10·4·log10(2) ≈ 12.04 dB.
	drop := p.RxPowerDBm(10) - p.RxPowerDBm(20)
	if math.Abs(drop-12.04) > 0.01 {
		t.Errorf("doubling-distance loss = %.2f dB, want ≈12.04", drop)
	}
}

func TestCaptures(t *testing.T) {
	if !Captures(-40, -50, 10) {
		t.Error("10 dB advantage should capture at 10 dB threshold")
	}
	if Captures(-40, -49, 10) {
		t.Error("9 dB advantage should not capture at 10 dB threshold")
	}
}
