package phys

import "fmt"

// ErrorKind names one channel error process in an ErrorSpec.
type ErrorKind string

// The error-process kinds. The zero value is a loss-free channel.
const (
	// ErrorKindNone is a loss-free channel.
	ErrorKindNone ErrorKind = ""
	// ErrorKindBER applies Table III's per-unit error process
	// (UnitErrorModel): FER = 1 − (1 − BER)^units.
	ErrorKindBER ErrorKind = "ber"
	// ErrorKindFER corrupts every frame with the same probability
	// regardless of size (FixedFERModel).
	ErrorKindFER ErrorKind = "fer"
	// ErrorKindDataFER corrupts only data-sized frames — control frames
	// below MinUnits pass (SizeGatedFER), the "data frame error rate" knob
	// of the fake-ACK experiments.
	ErrorKindDataFER ErrorKind = "data-fer"
	// ErrorKindRateLadder makes loss a function of the PHY rate a frame
	// was sent at (RateLadderFER), the auto-rate extension's channel.
	ErrorKindRateLadder ErrorKind = "rate-ladder"
)

// DataFERMinUnits is the default size gate of ErrorKindDataFER: frames of
// at least this many error units count as data. 200 units clears every
// control frame (ACK/CTS 38, RTS 44) while catching 1024-byte payloads.
const DataFERMinUnits = 200

// ErrorSpec is the one-field-of-record description of a channel error
// model: a tagged sum over the processes the simulator knows, with only
// the fields of the selected kind meaningful. It is JSON-serializable, so
// campaign specs and TopologySpecs can carry it, and it replaces the old
// DefaultBER / DefaultFER / DefaultDataFER / RateError precedence stack
// in scenario.Config, where each knob silently overrode the previous one;
// Validate rejects conflicting settings instead.
type ErrorSpec struct {
	// Kind selects the process; the remaining fields parameterize it.
	Kind ErrorKind `json:"kind,omitempty"`
	// BER is ErrorKindBER's per-unit error rate.
	BER float64 `json:"ber,omitempty"`
	// FER is the frame error rate of ErrorKindFER and ErrorKindDataFER.
	FER float64 `json:"fer,omitempty"`
	// MinUnits gates small frames out of ErrorKindDataFER and
	// ErrorKindRateLadder; zero means DataFERMinUnits for data-fer and
	// no gate for rate-ladder.
	MinUnits int `json:"min_units,omitempty"`
	// FERByRate maps PHY rate (bits/s) to frame error rate for
	// ErrorKindRateLadder; absent rates are loss-free.
	FERByRate map[int64]float64 `json:"fer_by_rate,omitempty"`
}

// BERSpec selects Table III's per-unit error process.
func BERSpec(ber float64) ErrorSpec { return ErrorSpec{Kind: ErrorKindBER, BER: ber} }

// FERSpec selects a size-independent frame error rate.
func FERSpec(rate float64) ErrorSpec { return ErrorSpec{Kind: ErrorKindFER, FER: rate} }

// DataFERSpec selects a data-frame-only error rate with the default size
// gate.
func DataFERSpec(rate float64) ErrorSpec { return ErrorSpec{Kind: ErrorKindDataFER, FER: rate} }

// RateLadderSpec selects PHY-rate-dependent loss; frames below minUnits
// always pass.
func RateLadderSpec(ferByRate map[int64]float64, minUnits int) ErrorSpec {
	return ErrorSpec{Kind: ErrorKindRateLadder, FERByRate: ferByRate, MinUnits: minUnits}
}

// IsZero reports whether the spec is the loss-free zero value.
func (s ErrorSpec) IsZero() bool {
	return s.Kind == ErrorKindNone && s.BER == 0 && s.FER == 0 &&
		s.MinUnits == 0 && len(s.FERByRate) == 0
}

// Validate rejects unknown kinds, out-of-range probabilities, and —
// unlike the precedence stack it replaces — any parameter that belongs to
// a different kind than the selected one, so a config cannot silently
// carry two half-specified error models.
func (s ErrorSpec) Validate() error {
	checkProb := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("phys: ErrorSpec.%s = %v out of [0,1]", name, v)
		}
		return nil
	}
	stray := func(cond bool, field string) error {
		if cond {
			return fmt.Errorf("phys: ErrorSpec kind %q conflicts with %s (set one model only)", s.Kind, field)
		}
		return nil
	}
	switch s.Kind {
	case ErrorKindNone:
		if !s.IsZero() {
			return fmt.Errorf("phys: ErrorSpec has parameters but no kind (set Kind, e.g. %q)", ErrorKindBER)
		}
		return nil
	case ErrorKindBER:
		if err := checkProb("BER", s.BER); err != nil {
			return err
		}
		for _, e := range []error{
			stray(s.FER != 0, "FER"),
			stray(s.MinUnits != 0, "MinUnits"),
			stray(len(s.FERByRate) != 0, "FERByRate"),
		} {
			if e != nil {
				return e
			}
		}
		return nil
	case ErrorKindFER:
		if err := checkProb("FER", s.FER); err != nil {
			return err
		}
		for _, e := range []error{
			stray(s.BER != 0, "BER"),
			stray(s.MinUnits != 0, "MinUnits"),
			stray(len(s.FERByRate) != 0, "FERByRate"),
		} {
			if e != nil {
				return e
			}
		}
		return nil
	case ErrorKindDataFER:
		if err := checkProb("FER", s.FER); err != nil {
			return err
		}
		if s.MinUnits < 0 {
			return fmt.Errorf("phys: ErrorSpec.MinUnits = %d must be non-negative", s.MinUnits)
		}
		for _, e := range []error{
			stray(s.BER != 0, "BER"),
			stray(len(s.FERByRate) != 0, "FERByRate"),
		} {
			if e != nil {
				return e
			}
		}
		return nil
	case ErrorKindRateLadder:
		for rate, fer := range s.FERByRate {
			if rate <= 0 {
				return fmt.Errorf("phys: ErrorSpec.FERByRate has non-positive rate %d", rate)
			}
			if err := checkProb(fmt.Sprintf("FERByRate[%d]", rate), fer); err != nil {
				return err
			}
		}
		if s.MinUnits < 0 {
			return fmt.Errorf("phys: ErrorSpec.MinUnits = %d must be non-negative", s.MinUnits)
		}
		for _, e := range []error{
			stray(s.BER != 0, "BER"),
			stray(s.FER != 0, "FER"),
		} {
			if e != nil {
				return e
			}
		}
		return nil
	default:
		return fmt.Errorf("phys: unknown ErrorSpec kind %q", s.Kind)
	}
}

// Models materializes the spec: a per-frame error model, a rate-dependent
// model, or neither (loss-free). At most one of the two returns non-nil.
func (s ErrorSpec) Models() (ErrorModel, RateErrorModel, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	switch s.Kind {
	case ErrorKindNone:
		return nil, nil, nil
	case ErrorKindBER:
		return UnitErrorModel{BER: s.BER}, nil, nil
	case ErrorKindFER:
		return FixedFERModel{Rate: s.FER}, nil, nil
	case ErrorKindDataFER:
		min := s.MinUnits
		if min == 0 {
			min = DataFERMinUnits
		}
		return SizeGatedFER{Rate: s.FER, MinUnits: min}, nil, nil
	case ErrorKindRateLadder:
		return nil, RateLadderFER{FERByRate: s.FERByRate, MinUnits: s.MinUnits}, nil
	default:
		return nil, nil, fmt.Errorf("phys: unknown ErrorSpec kind %q", s.Kind)
	}
}
