package phys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Table III of the paper: BER → FER for each frame type, under the error
// model FER = 1-(1-BER)^units with the paper's unit counts.
func TestUnitErrorModelReproducesTableIII(t *testing.T) {
	// Unit counts that reproduce the paper's table: control frames are
	// MAC bytes + 24 PLCP units; the TCP rows use the paper's own counts.
	const (
		unitsACKCTS  = CTSFrameBytes + PLCPErrorUnits // 38
		unitsRTS     = RTSFrameBytes + PLCPErrorUnits // 44
		unitsTCPACK  = 112
		unitsTCPData = 1130
	)
	tests := []struct {
		ber                            float64
		ackCTS, rts, tcpACK, tcpDataLo float64
	}{
		{1e-5, 3.799e-4, 4.399e-4, 1.119e-3, 1.130e-2},
		{2e-4, 7.519e-3, 8.762e-3, 2.235e-2, 2.033e-1},
		{3.2e-4, 1.121e-2, 1.398e-2, 3.521e-2, 3.048e-1},
		{4.4e-4, 1.658e-2, 1.918e-2, 4.810e-2, 3.934e-1},
		{8e-4, 2.995e-2, 3.460e-2, 8.574e-2, 5.971e-1},
	}
	// Tolerance 8%: the paper's ACK/CTS cell at BER 3.2e-4 implies ~35
	// units while every other row implies 38; the closed form lands within
	// 8% of every published cell.
	approx := func(got, want float64) bool {
		return math.Abs(got-want)/want < 0.08
	}
	for _, tt := range tests {
		m := UnitErrorModel{BER: tt.ber}
		if got := m.FER(unitsACKCTS); !approx(got, tt.ackCTS) {
			t.Errorf("BER %v ACK/CTS FER = %v, want %v", tt.ber, got, tt.ackCTS)
		}
		if got := m.FER(unitsRTS); !approx(got, tt.rts) {
			t.Errorf("BER %v RTS FER = %v, want %v", tt.ber, got, tt.rts)
		}
		if got := m.FER(unitsTCPACK); !approx(got, tt.tcpACK) {
			t.Errorf("BER %v TCP-ACK FER = %v, want %v", tt.ber, got, tt.tcpACK)
		}
		if got := m.FER(unitsTCPData); !approx(got, tt.tcpDataLo) {
			t.Errorf("BER %v TCP-data FER = %v, want %v", tt.ber, got, tt.tcpDataLo)
		}
	}
}

func TestUnitErrorModelEdges(t *testing.T) {
	if (UnitErrorModel{BER: 0}).FER(1000) != 0 {
		t.Error("zero BER should have zero FER")
	}
	if (UnitErrorModel{BER: 1}).FER(10) != 1 {
		t.Error("BER 1 should have FER 1")
	}
	if (UnitErrorModel{BER: 0.5}).FER(0) != 0 {
		t.Error("zero units should have zero FER")
	}
	rng := rand.New(rand.NewSource(1))
	if (UnitErrorModel{}).FrameError(rng, 100) {
		t.Error("zero-BER model corrupted a frame")
	}
}

// Property: FER is monotone in both BER and frame size.
func TestPropertyFERMonotone(t *testing.T) {
	f := func(berRaw uint16, u1, u2 uint8) bool {
		ber := float64(berRaw) / float64(1<<20)
		m := UnitErrorModel{BER: ber}
		a, b := int(u1), int(u2)
		if a > b {
			a, b = b, a
		}
		if m.FER(a) > m.FER(b) {
			return false
		}
		m2 := UnitErrorModel{BER: ber * 2}
		return m2.FER(b) >= m.FER(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameErrorFrequencyMatchesFER(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := UnitErrorModel{BER: 2e-4}
	const units = 1130
	const n = 50000
	errors := 0
	for i := 0; i < n; i++ {
		if m.FrameError(rng, units) {
			errors++
		}
	}
	got := float64(errors) / n
	want := m.FER(units) // ≈ 0.2
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical FER = %v, want ≈%v", got, want)
	}
}

func TestFixedFERModel(t *testing.T) {
	m := FixedFERModel{Rate: 0.5}
	if m.FER(10) != 0.5 || m.FER(10000) != 0.5 {
		t.Error("fixed FER should ignore size")
	}
	if (FixedFERModel{Rate: -1}).FER(5) != 0 {
		t.Error("negative rate should clamp to 0")
	}
	if (FixedFERModel{Rate: 2}).FER(5) != 1 {
		t.Error("rate >1 should clamp to 1")
	}
	rng := rand.New(rand.NewSource(3))
	hits := 0
	for i := 0; i < 10000; i++ {
		if m.FrameError(rng, 1) {
			hits++
		}
	}
	if hits < 4700 || hits > 5300 {
		t.Errorf("fixed 0.5 FER hit %d/10000", hits)
	}
}

func TestNoError(t *testing.T) {
	var m NoError
	rng := rand.New(rand.NewSource(1))
	if m.FER(1<<20) != 0 || m.FrameError(rng, 1<<20) {
		t.Error("NoError corrupted a frame")
	}
}

func TestUniformByteErrorsAddressPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	proc := UniformByteErrors{P: 2e-5}
	const frameBytes = 1100
	const n = 200000
	var corrupted, dstOK, bothOK int
	for i := 0; i < n; i++ {
		c := proc.CorruptFrame(rng, frameBytes)
		if !c.Corrupted {
			continue
		}
		corrupted++
		if !c.DstHit {
			dstOK++
			if !c.SrcHit {
				bothOK++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("no corrupted frames generated")
	}
	// With memoryless byte errors, address bytes are 12/1100 of the frame:
	// nearly all corrupted frames preserve the addresses (≥97%), matching
	// the 802.11b row of Table I (98.8% / 94.9%).
	if ratio := float64(dstOK) / float64(corrupted); ratio < 0.97 {
		t.Errorf("dst preserved ratio = %v, want ≥0.97", ratio)
	}
	if ratio := float64(bothOK) / float64(corrupted); ratio < 0.95 {
		t.Errorf("src+dst preserved ratio = %v, want ≥0.95", ratio)
	}
}

func TestUniformByteErrorsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := UniformByteErrors{P: 0}.CorruptFrame(rng, 100)
	if c.Corrupted || c.DstHit || c.SrcHit {
		t.Error("zero-P process corrupted a frame")
	}
}

func TestGilbertElliottValidate(t *testing.T) {
	good := GilbertElliott{PGoodToBad: 0.01, PBadToGood: 0.3, PErrBad: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := good
	bad.PErrBad = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// A bursty process must hit address fields more often (per corrupted
	// frame) than a uniform process with the same marginal corruption rate
	// would suggest — that is the mechanism behind the 802.11a row of
	// Table I.
	rng := rand.New(rand.NewSource(5))
	ge := GilbertElliott{
		PGoodToBad: 0.004,
		PBadToGood: 0.10,
		PErrGood:   0,
		PErrBad:    0.5,
		PStartBad:  -1,
	}
	const frameBytes = 1100
	const n = 50000
	var corrupted, dstPreserved int
	for i := 0; i < n; i++ {
		c := ge.CorruptFrame(rng, frameBytes)
		if c.Corrupted {
			corrupted++
			if !c.DstHit {
				dstPreserved++
			}
		}
	}
	if corrupted < n/10 {
		t.Fatalf("only %d corrupted frames; calibration off", corrupted)
	}
	ratio := float64(dstPreserved) / float64(corrupted)
	if ratio > 0.97 || ratio < 0.5 {
		t.Errorf("bursty dst-preservation = %v, want between 0.5 and 0.97", ratio)
	}
}

func TestGilbertElliottStationaryStart(t *testing.T) {
	// PStartBad < 0 should use the stationary distribution; with zero
	// transition rates that means always-good.
	rng := rand.New(rand.NewSource(2))
	ge := GilbertElliott{PErrBad: 1, PStartBad: -1}
	c := ge.CorruptFrame(rng, 1000)
	if c.Corrupted {
		t.Error("stationary start with zero transitions should stay good")
	}
}
