package phys

import (
	"math/rand"
	"testing"
)

func TestSizeGatedFER(t *testing.T) {
	m := SizeGatedFER{Rate: 0.5, MinUnits: 200}
	if m.FER(199) != 0 {
		t.Error("control-sized frame gated incorrectly")
	}
	if m.FER(200) != 0.5 || m.FER(2000) != 0.5 {
		t.Error("data-sized frame rate wrong")
	}
	// Clamping mirrors FixedFERModel.
	if (SizeGatedFER{Rate: -1}).FER(500) != 0 {
		t.Error("negative rate not clamped")
	}
	if (SizeGatedFER{Rate: 2}).FER(500) != 1 {
		t.Error("rate >1 not clamped")
	}
	rng := rand.New(rand.NewSource(1))
	hitsSmall, hitsBig := 0, 0
	for i := 0; i < 4000; i++ {
		if m.FrameError(rng, 100) {
			hitsSmall++
		}
		if m.FrameError(rng, 1000) {
			hitsBig++
		}
	}
	if hitsSmall != 0 {
		t.Errorf("gated frames corrupted %d times", hitsSmall)
	}
	if hitsBig < 1800 || hitsBig > 2200 {
		t.Errorf("data frames corrupted %d/4000, want ≈2000", hitsBig)
	}
}

func TestRateLadderFER(t *testing.T) {
	m := RateLadderFER{
		FERByRate: map[int64]float64{
			11_000_000: 0.7,
			5_500_000:  0.15,
			2_000_000:  -0.5, // clamps to 0
			1_000_000:  1.5,  // clamps to 1
		},
		MinUnits: 200,
	}
	if got := m.FERAtRate(11_000_000, 1000); got != 0.7 {
		t.Errorf("11M FER = %v", got)
	}
	if got := m.FERAtRate(5_500_000, 1000); got != 0.15 {
		t.Errorf("5.5M FER = %v", got)
	}
	if got := m.FERAtRate(2_000_000, 1000); got != 0 {
		t.Errorf("negative FER not clamped: %v", got)
	}
	if got := m.FERAtRate(1_000_000, 1000); got != 1 {
		t.Errorf("FER >1 not clamped: %v", got)
	}
	// Unknown rate: loss-free.
	if got := m.FERAtRate(54_000_000, 1000); got != 0 {
		t.Errorf("unknown rate FER = %v", got)
	}
	// Control frames pass at any rate.
	if got := m.FERAtRate(11_000_000, 38); got != 0 {
		t.Errorf("control frame FER = %v", got)
	}
	rng := rand.New(rand.NewSource(2))
	hits := 0
	for i := 0; i < 4000; i++ {
		if m.FrameErrorAtRate(rng, 11_000_000, 1000) {
			hits++
		}
	}
	if hits < 2600 || hits > 3000 {
		t.Errorf("11M corrupted %d/4000, want ≈2800", hits)
	}
	if m.FrameErrorAtRate(rng, 2_000_000, 1000) {
		t.Error("clamped-to-zero rate corrupted a frame")
	}
}
