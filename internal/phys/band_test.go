package phys

import (
	"testing"

	"greedy80211/internal/sim"
)

func TestBandString(t *testing.T) {
	if Band80211B.String() != "802.11b" || Band80211A.String() != "802.11a" {
		t.Error("band names wrong")
	}
	if Band(99).String() != "Band(99)" {
		t.Error("unknown band name wrong")
	}
}

func TestParams80211BTimings(t *testing.T) {
	p := Params80211B()
	if got := p.DIFS(); got != 50*sim.Microsecond {
		t.Errorf("11b DIFS = %v, want 50µs", got)
	}
	if p.SIFS != 10*sim.Microsecond || p.SlotTime != 20*sim.Microsecond {
		t.Errorf("11b SIFS/slot = %v/%v", p.SIFS, p.SlotTime)
	}
	if p.CWMin != 31 || p.CWMax != 1023 {
		t.Errorf("11b CW = %d..%d", p.CWMin, p.CWMax)
	}
}

func TestParams80211ATimings(t *testing.T) {
	p := Params80211A()
	if got := p.DIFS(); got != 34*sim.Microsecond {
		t.Errorf("11a DIFS = %v, want 34µs", got)
	}
	if p.CWMin != 15 {
		t.Errorf("11a CWMin = %d, want 15", p.CWMin)
	}
}

func TestTxDurationDSSS(t *testing.T) {
	p := Params80211B()
	tests := []struct {
		name  string
		bytes int
		bps   int64
		want  sim.Time
	}{
		// 192µs preamble + payload bits / rate, rounded up to µs.
		{"RTS at basic", RTSFrameBytes, Rate1Mbps, (192 + 160) * sim.Microsecond},
		{"CTS at basic", CTSFrameBytes, Rate1Mbps, (192 + 112) * sim.Microsecond},
		{"ACK at basic", ACKFrameBytes, Rate1Mbps, (192 + 112) * sim.Microsecond},
		// 1052 bytes = 8416 bits at 11 Mbps = 765.09... → 766 µs.
		{"1024B data at 11M", 1024 + DataHeaderBytes, Rate11Mbps, (192 + 766) * sim.Microsecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.TxDuration(tt.bytes, tt.bps); got != tt.want {
				t.Errorf("TxDuration(%d, %d) = %v, want %v", tt.bytes, tt.bps, got, tt.want)
			}
		})
	}
}

func TestTxDurationOFDM(t *testing.T) {
	p := Params80211A()
	// 6 Mbps → 24 data bits per 4µs symbol. ACK: 16+112+6 = 134 bits →
	// ceil(134/24) = 6 symbols = 24µs, plus 20µs preamble/SIGNAL.
	if got := p.TxDuration(ACKFrameBytes, Rate6Mbps); got != 44*sim.Microsecond {
		t.Errorf("11a ACK duration = %v, want 44µs", got)
	}
	// 1052-byte data frame: 16+8416+6 = 8438 bits → ceil/24 = 352 symbols
	// = 1408µs + 20µs.
	if got := p.TxDuration(1024+DataHeaderBytes, Rate6Mbps); got != 1428*sim.Microsecond {
		t.Errorf("11a data duration = %v, want 1428µs", got)
	}
}

func TestTxDurationMonotonicInSize(t *testing.T) {
	for _, p := range []Params{Params80211B(), Params80211A()} {
		prev := sim.Time(0)
		for bytes := 1; bytes < 2000; bytes += 13 {
			d := p.TxDuration(bytes, p.DataRateBps)
			if d < prev {
				t.Fatalf("%v: duration decreased at %d bytes", p.Band, bytes)
			}
			prev = d
		}
	}
}

func TestTxDurationPanics(t *testing.T) {
	p := Params80211B()
	for _, tt := range []struct {
		name  string
		bytes int
		bps   int64
	}{
		{"zero bytes", 0, Rate1Mbps},
		{"zero rate", 10, 0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			p.TxDuration(tt.bytes, tt.bps)
		})
	}
}

func TestEIFS(t *testing.T) {
	p := Params80211B()
	// SIFS(10) + ACK at 1Mbps (304) + DIFS(50) = 364µs.
	if got := p.EIFS(); got != 364*sim.Microsecond {
		t.Errorf("11b EIFS = %v, want 364µs", got)
	}
}

func TestTimeoutsCoverResponse(t *testing.T) {
	for _, p := range []Params{Params80211B(), Params80211A()} {
		if p.CTSTimeout() < p.SIFS+p.TxDuration(CTSFrameBytes, p.BasicRateBps) {
			t.Errorf("%v: CTS timeout shorter than SIFS+CTS", p.Band)
		}
		if p.ACKTimeout() < p.SIFS+p.TxDuration(ACKFrameBytes, p.BasicRateBps) {
			t.Errorf("%v: ACK timeout shorter than SIFS+ACK", p.Band)
		}
	}
}

func TestMaxNAV(t *testing.T) {
	if MaxNAV() != 32767*sim.Microsecond {
		t.Errorf("MaxNAV = %v", MaxNAV())
	}
}
