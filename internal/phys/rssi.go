package phys

import (
	"math/rand"
)

// RSSIModel generates per-packet RSSI readings around a link's mean power.
// Section VII-B of the paper measures (Fig 21) that ~95% of RSSI samples on
// an office-floor testbed fall within 1 dB of the link median, with a small
// heavy tail. The model reproduces that: Gaussian jitter with standard
// deviation Sigma, plus an occasional outlier drawn with a wider deviation.
type RSSIModel struct {
	// Sigma is the common-case jitter standard deviation in dB.
	Sigma float64
	// OutlierProb is the probability a sample is an outlier (deep fade or
	// constructive multipath burst).
	OutlierProb float64
	// OutlierSigma is the outlier deviation in dB.
	OutlierSigma float64
}

// DefaultRSSIModel is calibrated so that ≈95% of samples deviate from the
// median by under 1 dB, matching Fig 21.
func DefaultRSSIModel() RSSIModel {
	return RSSIModel{
		Sigma:        0.5,
		OutlierProb:  0.02,
		OutlierSigma: 3.0,
	}
}

// Sample draws one RSSI reading (dBm) for a packet on a link whose mean
// received power is meanDBm.
func (m RSSIModel) Sample(rng *rand.Rand, meanDBm float64) float64 {
	sigma := m.Sigma
	if m.OutlierProb > 0 && rng.Float64() < m.OutlierProb {
		sigma = m.OutlierSigma
	}
	return meanDBm + rng.NormFloat64()*sigma
}

// MedianTracker maintains a running median estimate of a link's RSSI using
// a bounded reservoir of recent samples. GRC's spoofed-ACK detector keys
// off |sample − median|, so the estimator must resist the very outliers it
// is meant to flag; a windowed median does.
type MedianTracker struct {
	window  []float64
	scratch []float64
	next    int
	full    bool
}

// NewMedianTracker returns a tracker over the last size samples.
func NewMedianTracker(size int) *MedianTracker {
	if size <= 0 {
		size = 32
	}
	return &MedianTracker{window: make([]float64, size)}
}

// Add records a sample.
func (t *MedianTracker) Add(v float64) {
	t.window[t.next] = v
	t.next++
	if t.next == len(t.window) {
		t.next = 0
		t.full = true
	}
}

// Count reports how many samples are currently in the window.
func (t *MedianTracker) Count() int {
	if t.full {
		return len(t.window)
	}
	return t.next
}

// Median reports the median of the windowed samples, or 0 with ok=false if
// no samples have been recorded.
func (t *MedianTracker) Median() (median float64, ok bool) {
	n := t.Count()
	if n == 0 {
		return 0, false
	}
	if cap(t.scratch) < n {
		t.scratch = make([]float64, n)
	}
	s := t.scratch[:n]
	copy(s, t.window[:n])
	// Insertion sort: windows are small (≤ 64) and this avoids allocation.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if n%2 == 1 {
		return s[n/2], true
	}
	return (s[n/2-1] + s[n/2]) / 2, true
}
