// Package phys models the 802.11 physical layer pieces the paper's
// evaluation depends on: per-band (802.11b DSSS / 802.11a OFDM) timing
// parameters and frame durations, a threshold-based propagation model with
// distinct communication and carrier-sense ranges, a per-packet RSSI
// process, the capture effect, and frame-error models calibrated to the
// paper's Table III.
package phys

import (
	"fmt"

	"greedy80211/internal/sim"
)

// Band selects an 802.11 PHY. The paper evaluates 802.11b at 11 Mbps and
// 802.11a at 6 Mbps.
type Band int

const (
	// Band80211B is DSSS 802.11b: long preamble, 20 µs slots.
	Band80211B Band = iota + 1
	// Band80211A is OFDM 802.11a: 9 µs slots, 4 µs symbols.
	Band80211A
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case Band80211B:
		return "802.11b"
	case Band80211A:
		return "802.11a"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// Params carries the per-band MAC/PHY constants of IEEE 802.11-1999.
type Params struct {
	Band     Band
	SlotTime sim.Time
	SIFS     sim.Time
	// CWMin and CWMax are the minimum and maximum contention windows,
	// expressed as the inclusive upper bound of the uniform backoff draw
	// (31 and 1023 for 802.11b; 15 and 1023 for 802.11a).
	CWMin int
	CWMax int
	// DataRateBps is the PHY rate for data frames; BasicRateBps the rate
	// for control frames (RTS/CTS/ACK) and PLCP-protected responses.
	DataRateBps  int64
	BasicRateBps int64
	// PLCPOverhead is the preamble + PLCP header airtime prepended to
	// every frame (192 µs long preamble for 11b; 20 µs for 11a).
	PLCPOverhead sim.Time
	// OFDM reports whether durations quantize to 4 µs symbols (802.11a).
	OFDM bool
	// ShortRetryLimit and LongRetryLimit are dot11ShortRetryLimit and
	// dot11LongRetryLimit (7 and 4).
	ShortRetryLimit int
	LongRetryLimit  int
}

// Default PHY rates used throughout the paper's evaluation.
const (
	Rate1Mbps  int64 = 1_000_000
	Rate2Mbps  int64 = 2_000_000
	Rate6Mbps  int64 = 6_000_000
	Rate11Mbps int64 = 11_000_000
)

// Params80211B returns the 802.11b configuration the paper simulates:
// 11 Mbps data rate, 1 Mbps basic rate (ns-2 default), long preamble.
func Params80211B() Params {
	return Params{
		Band:            Band80211B,
		SlotTime:        20 * sim.Microsecond,
		SIFS:            10 * sim.Microsecond,
		CWMin:           31,
		CWMax:           1023,
		DataRateBps:     Rate11Mbps,
		BasicRateBps:    Rate1Mbps,
		PLCPOverhead:    192 * sim.Microsecond,
		OFDM:            false,
		ShortRetryLimit: 7,
		LongRetryLimit:  4,
	}
}

// Params80211A returns the 802.11a configuration the paper evaluates:
// 6 Mbps for both data and control frames (the testbed's fixed rate).
func Params80211A() Params {
	return Params{
		Band:            Band80211A,
		SlotTime:        9 * sim.Microsecond,
		SIFS:            16 * sim.Microsecond,
		CWMin:           15,
		CWMax:           1023,
		DataRateBps:     Rate6Mbps,
		BasicRateBps:    Rate6Mbps,
		PLCPOverhead:    20 * sim.Microsecond,
		OFDM:            true,
		ShortRetryLimit: 7,
		LongRetryLimit:  4,
	}
}

// DIFS is SIFS + 2 slots.
func (p Params) DIFS() sim.Time { return p.SIFS + 2*p.SlotTime }

// EIFS is the extended inter-frame space used after a corrupted reception:
// SIFS + basic-rate ACK airtime + DIFS.
func (p Params) EIFS() sim.Time {
	return p.SIFS + p.TxDuration(ACKFrameBytes, p.BasicRateBps) + p.DIFS()
}

// Control-frame MAC sizes (bytes, including FCS) per IEEE 802.11-1999.
const (
	RTSFrameBytes = 20
	CTSFrameBytes = 14
	ACKFrameBytes = 14
	// DataHeaderBytes is the data-frame MAC overhead: 24-byte header +
	// 4-byte FCS (ns-2's 802.11 model uses the same 28 bytes).
	DataHeaderBytes = 28
)

// TxDuration reports the airtime of a frame of the given MAC size (bytes,
// including MAC header and FCS) at the given PHY rate, including PLCP
// preamble and header. For OFDM bands the payload airtime quantizes to
// 4 µs symbols and includes the 16-bit SERVICE and 6-bit tail fields.
func (p Params) TxDuration(bytes int, bps int64) sim.Time {
	if bytes <= 0 {
		panic(fmt.Sprintf("phys: TxDuration of %d bytes", bytes))
	}
	if bps <= 0 {
		panic(fmt.Sprintf("phys: TxDuration at %d bps", bps))
	}
	if p.OFDM {
		const symbolDur = 4 * sim.Microsecond
		bitsPerSymbol := bps * 4 / 1_000_000 // NDBPS: 24 at 6 Mbps, 48 at 12, ...
		payloadBits := int64(16 + 8*bytes + 6)
		symbols := (payloadBits + bitsPerSymbol - 1) / bitsPerSymbol
		return p.PLCPOverhead + sim.Time(symbols)*symbolDur
	}
	bits := int64(bytes) * 8
	// Round up to whole microseconds, as the PHY pads to its clock.
	us := (bits*1_000_000 + bps - 1) / bps
	return p.PLCPOverhead + sim.FromMicroseconds(us)
}

// CTSTimeout is how long a sender waits for a CTS after finishing its RTS
// before treating the exchange as failed: SIFS + slot + CTS airtime at the
// basic rate, plus a small margin for propagation.
func (p Params) CTSTimeout() sim.Time {
	return p.SIFS + p.SlotTime + p.TxDuration(CTSFrameBytes, p.BasicRateBps) + 5*sim.Microsecond
}

// ACKTimeout is the analogous wait for a MAC ACK after a data frame.
func (p Params) ACKTimeout() sim.Time {
	return p.SIFS + p.SlotTime + p.TxDuration(ACKFrameBytes, p.BasicRateBps) + 5*sim.Microsecond
}

// MaxNAV is the largest NAV value a duration field can carry (the paper's
// misbehaving receivers inflate up to this), in microseconds.
const MaxNAVMicros = 32767

// MaxNAV as a sim.Time.
func MaxNAV() sim.Time { return sim.FromMicroseconds(MaxNAVMicros) }
