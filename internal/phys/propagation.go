package phys

import (
	"fmt"
	"math"

	"greedy80211/internal/sim"
)

// Position is a node location on the floor plan, in meters.
type Position struct {
	X, Y float64
}

// DistanceTo reports the Euclidean distance between two positions, meters.
func (p Position) DistanceTo(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (p Position) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// SpeedOfLight in meters per second, for propagation delay.
const speedOfLight = 299_792_458.0

// PropagationDelay reports the signal flight time over d meters.
func PropagationDelay(d float64) sim.Time {
	if d <= 0 {
		return 0
	}
	return sim.Time(d / speedOfLight * float64(sim.Second))
}

// Propagation computes received power and range membership between node
// positions. The paper's ns-2 setup uses a two-ray-ground-style power law
// with distinct reception and carrier-sense thresholds, parameterized here
// directly by the two ranges (e.g. 55 m communication / 99 m interference
// in the GRC evaluation of Fig 23).
type Propagation struct {
	// CommRange is the maximum distance at which a frame can be decoded.
	CommRange float64
	// CSRange is the maximum distance at which energy is detected
	// (physical carrier sense / interference); CSRange ≥ CommRange.
	CSRange float64
	// TxPowerDBm is the transmit power; only relative levels matter.
	TxPowerDBm float64
	// PathLossExponent is the power-law exponent (4 = two-ray ground).
	PathLossExponent float64
	// ReferenceDistance anchors the path-loss curve (meters).
	ReferenceDistance float64
}

// DefaultPropagation mirrors the paper's default: every node within
// communication range of every other (they place all nodes close together
// unless studying distance effects). Ranges follow ns-2's stock 250 m /
// 550 m two-ray-ground values.
func DefaultPropagation() Propagation {
	return Propagation{
		CommRange:         250,
		CSRange:           550,
		TxPowerDBm:        20,
		PathLossExponent:  4,
		ReferenceDistance: 1,
	}
}

// GRCPropagation is the Fig 23 topology's propagation: 55 m communication
// range and 99 m interference range.
func GRCPropagation() Propagation {
	p := DefaultPropagation()
	p.CommRange = 55
	p.CSRange = 99
	return p
}

// Validate reports a descriptive error for inconsistent parameters.
func (p Propagation) Validate() error {
	if p.CommRange <= 0 {
		return fmt.Errorf("phys: communication range %.1f must be positive", p.CommRange)
	}
	if p.CSRange < p.CommRange {
		return fmt.Errorf("phys: carrier-sense range %.1f below communication range %.1f",
			p.CSRange, p.CommRange)
	}
	if p.PathLossExponent <= 0 {
		return fmt.Errorf("phys: path-loss exponent %.1f must be positive", p.PathLossExponent)
	}
	if p.ReferenceDistance <= 0 {
		return fmt.Errorf("phys: reference distance %.2f must be positive", p.ReferenceDistance)
	}
	return nil
}

// RxPowerDBm reports the mean received power at distance d meters.
func (p Propagation) RxPowerDBm(d float64) float64 {
	if d < p.ReferenceDistance {
		d = p.ReferenceDistance
	}
	return p.TxPowerDBm - 10*p.PathLossExponent*math.Log10(d/p.ReferenceDistance)
}

// RxThresholdDBm is the minimum power at which a frame is decodable: the
// power at exactly CommRange.
func (p Propagation) RxThresholdDBm() float64 { return p.RxPowerDBm(p.CommRange) }

// CSThresholdDBm is the minimum power at which energy is sensed: the power
// at exactly CSRange.
func (p Propagation) CSThresholdDBm() float64 { return p.RxPowerDBm(p.CSRange) }

// InCommRange reports whether a transmission from a to b is decodable.
func (p Propagation) InCommRange(a, b Position) bool {
	return a.DistanceTo(b) <= p.CommRange
}

// InCSRange reports whether a transmission from a raises b's carrier sense.
func (p Propagation) InCSRange(a, b Position) bool {
	return a.DistanceTo(b) <= p.CSRange
}

// CaptureThresholdDB is the ns-2 default capture ratio (10 dB): when two
// receptions overlap, the stronger is decoded only if it exceeds the other
// by at least this many dB.
const CaptureThresholdDB = 10.0

// Captures reports whether a signal at strongDBm captures over one at
// weakDBm under the given capture threshold.
func Captures(strongDBm, weakDBm, thresholdDB float64) bool {
	return strongDBm-weakDBm >= thresholdDB
}
