package phys

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRSSIModelCalibration(t *testing.T) {
	// DefaultRSSIModel is calibrated to Fig 21: ≈95% of samples within
	// 1 dB of the link median.
	rng := rand.New(rand.NewSource(21))
	m := DefaultRSSIModel()
	const mean = -55.0
	const n = 20000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = m.Sample(rng, mean)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	within := 0
	for _, s := range samples {
		if math.Abs(s-median) <= 1 {
			within++
		}
	}
	frac := float64(within) / n
	if frac < 0.90 || frac > 0.985 {
		t.Errorf("fraction within 1 dB = %v, want ≈0.95", frac)
	}
	if math.Abs(median-mean) > 0.1 {
		t.Errorf("median = %v, want ≈%v", median, mean)
	}
}

func TestMedianTrackerBasics(t *testing.T) {
	tr := NewMedianTracker(5)
	if _, ok := tr.Median(); ok {
		t.Error("empty tracker reported a median")
	}
	tr.Add(3)
	if m, ok := tr.Median(); !ok || m != 3 {
		t.Errorf("median of [3] = %v, %v", m, ok)
	}
	tr.Add(1)
	if m, _ := tr.Median(); m != 2 {
		t.Errorf("median of [3,1] = %v, want 2", m)
	}
	tr.Add(10)
	if m, _ := tr.Median(); m != 3 {
		t.Errorf("median of [3,1,10] = %v, want 3", m)
	}
}

func TestMedianTrackerWindowEviction(t *testing.T) {
	tr := NewMedianTracker(3)
	for _, v := range []float64{100, 100, 100, 1, 1, 1} {
		tr.Add(v)
	}
	if m, _ := tr.Median(); m != 1 {
		t.Errorf("median after window rolled = %v, want 1", m)
	}
	if tr.Count() != 3 {
		t.Errorf("Count = %d, want 3", tr.Count())
	}
}

func TestMedianTrackerDefaultSize(t *testing.T) {
	tr := NewMedianTracker(0)
	for i := 0; i < 100; i++ {
		tr.Add(float64(i))
	}
	if tr.Count() != 32 {
		t.Errorf("default window Count = %d, want 32", tr.Count())
	}
}

func TestMedianTrackerOutlierRobust(t *testing.T) {
	// One large outlier in a window must not move the median much — the
	// property GRC's spoof detector relies on.
	tr := NewMedianTracker(15)
	for i := 0; i < 14; i++ {
		tr.Add(-55)
	}
	tr.Add(-20) // spoofer's much stronger ACK
	if m, _ := tr.Median(); m != -55 {
		t.Errorf("median with one outlier = %v, want -55", m)
	}
}

// Property: the tracked median is always within [min, max] of the window
// contents and matches a reference sort-based median.
func TestPropertyMedianMatchesReference(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		const size = 9
		tr := NewMedianTracker(size)
		var window []float64
		for _, r := range raw {
			v := float64(r)
			tr.Add(v)
			window = append(window, v)
			if len(window) > size {
				window = window[1:]
			}
		}
		ref := append([]float64(nil), window...)
		sort.Float64s(ref)
		var want float64
		n := len(ref)
		if n%2 == 1 {
			want = ref[n/2]
		} else {
			want = (ref[n/2-1] + ref[n/2]) / 2
		}
		got, ok := tr.Median()
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
