package phys

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestErrorSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    ErrorSpec
		wantErr string // substring; empty = valid
	}{
		{"zero value", ErrorSpec{}, ""},
		{"ber", BERSpec(2e-4), ""},
		{"fer", FERSpec(0.2), ""},
		{"data fer", DataFERSpec(0.5), ""},
		{"rate ladder", RateLadderSpec(map[int64]float64{11e6: 0.7}, 200), ""},
		{"params without kind", ErrorSpec{BER: 1e-4}, "no kind"},
		{"unknown kind", ErrorSpec{Kind: "bogus"}, "unknown"},
		{"ber out of range", BERSpec(1.5), "out of [0,1]"},
		{"fer out of range", FERSpec(-0.1), "out of [0,1]"},
		{"ber with fer", ErrorSpec{Kind: ErrorKindBER, BER: 1e-4, FER: 0.2}, "conflicts"},
		{"fer with ladder", ErrorSpec{Kind: ErrorKindFER, FER: 0.2, FERByRate: map[int64]float64{1e6: 0.1}}, "conflicts"},
		{"data fer with ber", ErrorSpec{Kind: ErrorKindDataFER, FER: 0.2, BER: 1e-4}, "conflicts"},
		{"ladder with fer", ErrorSpec{Kind: ErrorKindRateLadder, FERByRate: map[int64]float64{1e6: 0.1}, FER: 0.2}, "conflicts"},
		{"ladder bad rate", ErrorSpec{Kind: ErrorKindRateLadder, FERByRate: map[int64]float64{0: 0.1}}, "non-positive rate"},
		{"negative min units", ErrorSpec{Kind: ErrorKindDataFER, FER: 0.2, MinUnits: -1}, "non-negative"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

// TestErrorSpecModelsMatchLegacy pins the spec-built models to the exact
// model values the deprecated scenario.Config fields used to construct,
// so converting a call site cannot shift a single RNG draw.
func TestErrorSpecModelsMatchLegacy(t *testing.T) {
	em, rem, err := BERSpec(2e-4).Models()
	if err != nil || rem != nil {
		t.Fatalf("BERSpec: em=%v rem=%v err=%v", em, rem, err)
	}
	if got, want := em.(UnitErrorModel), (UnitErrorModel{BER: 2e-4}); got != want {
		t.Fatalf("BERSpec model = %+v, want %+v", got, want)
	}
	em, _, err = FERSpec(0.3).Models()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := em.(FixedFERModel), (FixedFERModel{Rate: 0.3}); got != want {
		t.Fatalf("FERSpec model = %+v, want %+v", got, want)
	}
	em, _, err = DataFERSpec(0.5).Models()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := em.(SizeGatedFER), (SizeGatedFER{Rate: 0.5, MinUnits: DataFERMinUnits}); got != want {
		t.Fatalf("DataFERSpec model = %+v, want %+v", got, want)
	}
	ladder := map[int64]float64{11e6: 0.7, 5_500_000: 0.15}
	em, rem, err = RateLadderSpec(ladder, 200).Models()
	if err != nil || em != nil {
		t.Fatalf("RateLadderSpec: em=%v err=%v", em, err)
	}
	rl := rem.(RateLadderFER)
	if rl.MinUnits != 200 || rl.FERByRate[11e6] != 0.7 {
		t.Fatalf("RateLadderSpec model = %+v", rl)
	}
	// Same spec, same draws: the materialized model behaves like the
	// directly constructed one under an identical RNG stream.
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	direct := UnitErrorModel{BER: 2e-4}
	spec, _, _ := BERSpec(2e-4).Models()
	for i := 0; i < 1000; i++ {
		if direct.FrameError(a, 1048) != spec.FrameError(b, 1048) {
			t.Fatalf("draw %d diverged", i)
		}
	}
}

func TestErrorSpecJSONRoundTrip(t *testing.T) {
	in := DataFERSpec(0.5)
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ErrorSpec
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != ErrorKindDataFER || out.FER != 0.5 {
		t.Fatalf("round trip = %+v (raw %s)", out, raw)
	}
	if !(ErrorSpec{}).IsZero() || in.IsZero() {
		t.Fatal("IsZero misclassifies")
	}
}
