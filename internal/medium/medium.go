// Package medium models the shared wireless channel: every transmission
// reaches the radios in carrier-sense range on the transmitter's channel,
// the medium tracks overlapping receptions, resolves collisions with the
// capture effect, applies independent per-link channel errors, and reports
// physical-carrier-sense transitions to each station's MAC.
//
// Delivery is neighbor-scoped: each radio keeps an interference-graph
// adjacency list (co-channel radios within carrier-sense range, with the
// per-link propagation precomputed), so the event cost of one transmission
// scales with the transmitter's neighbor count, not the total radio
// population. Radios on other channels cost zero events. A world where
// everyone is in range of everyone on one channel — the paper's hotspot —
// has full neighbor sets, making the scoped path a strict generalization
// of the old broadcast-to-all delivery (Config.DisableNeighborScoping
// keeps the legacy O(radios) scan for comparison; outputs are identical).
package medium

import (
	"fmt"
	"math"
	"math/rand"

	"greedy80211/internal/mac"
	"greedy80211/internal/metrics"
	"greedy80211/internal/phys"
	"greedy80211/internal/pool"
	"greedy80211/internal/sim"
)

// LinkKey identifies a directed radio link for per-link overrides.
type LinkKey struct {
	From, To mac.NodeID
}

// AddrModel draws whether a corrupted frame's MAC address fields survive.
// Table I of the paper measures that most corrupted frames preserve both
// addresses (98.8%/94.9% on 802.11b, 84%/91.4% on 802.11a), which is what
// makes fake ACKs (misbehavior 3) feasible.
type AddrModel struct {
	// PDstPreserved is the probability the destination address of a
	// corrupted frame is intact.
	PDstPreserved float64
	// PSrcPreservedGivenDst is the probability the source address is also
	// intact, given the destination was.
	PSrcPreservedGivenDst float64
}

// AddrModel80211B returns Table I's 802.11b address-preservation rates.
func AddrModel80211B() AddrModel {
	return AddrModel{PDstPreserved: 0.988, PSrcPreservedGivenDst: 0.949}
}

// AddrModel80211A returns Table I's 802.11a address-preservation rates.
func AddrModel80211A() AddrModel {
	return AddrModel{PDstPreserved: 0.840, PSrcPreservedGivenDst: 0.914}
}

// Draw samples a corruption record for a frame already known corrupted.
func (m AddrModel) Draw(rng *rand.Rand) phys.FrameCorruption {
	return phys.FrameCorruption{
		Corrupted: true,
		DstHit:    rng.Float64() >= m.PDstPreserved,
		SrcHit:    rng.Float64() >= m.PSrcPreservedGivenDst,
	}
}

// Config parameterizes the medium.
type Config struct {
	// Propagation defines ranges and received power.
	Propagation phys.Propagation
	// RSSI generates per-frame signal-strength samples.
	RSSI phys.RSSIModel
	// DefaultError is the channel error model applied to every link
	// without an override; nil means a loss-free channel.
	DefaultError phys.ErrorModel
	// LinkError overrides the error model on specific directed links —
	// the paper injects loss on only one flow in several experiments.
	LinkError map[LinkKey]phys.ErrorModel
	// RateError, when non-nil, takes precedence for frames that carry a
	// transmission rate: loss depends on the PHY rate chosen (auto-rate
	// extension).
	RateError phys.RateErrorModel
	// Addr decides address preservation in corrupted frames; the zero
	// value preserves addresses always.
	Addr AddrModel
	// CaptureEnabled turns on the capture effect.
	CaptureEnabled bool
	// CaptureThresholdDB is the power ratio (dB) the stronger of two
	// overlapping frames needs to be decoded; zero means the ns-2 default
	// of 10 dB.
	CaptureThresholdDB float64
	// ForceCapture resolves every overlap to the strongest frame
	// regardless of ratio. Section IV-B of the paper evaluates spoofed
	// ACKs under the assumption that capture always resolves the
	// two-simultaneous-ACKs case; this switch mirrors that assumption.
	ForceCapture bool
	// Tap observes every transmission and per-receiver outcome when
	// non-nil (tracing, airtime accounting). It must not mutate frames.
	// Further taps can join the fan-out after construction with AddTap.
	Tap Tap
	// Metrics, when non-nil, receives per-station transmit-airtime and
	// channel-occupancy bumps at frame grant time — the always-on
	// telemetry path (no tap required, plain counter arithmetic).
	Metrics *metrics.Registry
	// DisableNeighborScoping falls back to the legacy broadcast fan-out:
	// every transmission scans all radios instead of the transmitter's
	// neighbor list. Deliveries, RNG draws, and therefore all outputs are
	// byte-identical either way (the scan applies the same channel and
	// carrier-sense-range membership in the same order); the switch exists
	// for the neighbor-vs-broadcast identity tests and scaling benchmarks.
	DisableNeighborScoping bool
}

// Tap receives channel events for tracing and accounting.
type Tap interface {
	// OnTransmit fires when a radio puts a frame on the air.
	OnTransmit(src mac.NodeID, f *mac.Frame, start, airtime sim.Time)
	// OnReceive fires at each radio's reception outcome at time at.
	// Outcomes other than decoded/corrupted (energy only, half-duplex
	// deafness) are not reported.
	OnReceive(dst mac.NodeID, f *mac.Frame, info mac.RxInfo, at sim.Time)
}

// DefaultConfig returns the paper's baseline channel: all nodes in range,
// capture at 10 dB, loss-free.
func DefaultConfig() Config {
	return Config{
		Propagation:        phys.DefaultPropagation(),
		RSSI:               phys.DefaultRSSIModel(),
		CaptureEnabled:     true,
		CaptureThresholdDB: phys.CaptureThresholdDB,
		Addr:               AddrModel{PDstPreserved: 1, PSrcPreservedGivenDst: 1},
	}
}

// arrival is one frame in flight at one receiving radio. Arrivals are
// recycled through the medium's arena and their two events are scheduled
// via AtCall with the package-level dispatchers below, so the hot path
// creates no per-event (or even per-object) closures. While scheduled,
// the arrival holds one reference on its frame.
type arrival struct {
	m              *Medium
	o              *radio
	frame          *mac.Frame
	from           mac.NodeID
	rssi           float64
	inComm         bool
	start, end     sim.Time
	overlapped     bool
	strongestOther float64
	selfTx         bool
}

func beginArrivalEvent(x any) { a := x.(*arrival); a.m.beginArrival(a.o, a) }
func endArrivalEvent(x any)   { a := x.(*arrival); a.m.endArrival(a.o, a) }

type radio struct {
	id      mac.NodeID
	pos     phys.Position
	channel int
	rcv     mac.Receiver

	inflight []*arrival
	txUntil  sim.Time
	// neighbors is this radio's interference-graph adjacency: co-channel
	// radios within carrier-sense range, in Medium.order order, with the
	// per-link propagation cached (range checks, received power, and delay
	// are pure functions of the pair, and recomputing the path-loss
	// logarithm per arrival was a measurable share of Transmit). Rebuilt
	// lazily whenever the medium's topology generation moves past topoGen
	// (a radio was added or repositioned).
	neighbors []neighbor
	// links is the legacy full-population propagation cache (indexed like
	// Medium.order), maintained only under DisableNeighborScoping.
	links   []link
	topoGen uint64
}

// neighbor is one interference-graph edge: the destination radio plus the
// cached directed-link propagation toward it.
type neighbor struct {
	o      *radio
	inComm bool
	rxDBm  float64
	delay  sim.Time
}

// link is the cached propagation from one radio to another (legacy
// broadcast path).
type link struct {
	inCS, inComm bool
	rxPowerDBm   float64
	delay        sim.Time
}

// Medium is the shared channel. Not safe for concurrent use; it is driven
// by the single-goroutine simulation scheduler.
type Medium struct {
	sched    *sim.Scheduler
	cfg      Config
	rng      *rand.Rand
	radios   map[mac.NodeID]*radio
	order    []*radio // deterministic iteration order
	taps     []Tap    // fan-out list, seeded from cfg.Tap
	arrivals *pool.Arena[arrival]
	// topoGen counts topology mutations (radio added, position changed);
	// each radio rebuilds its neighbor list lazily when its own topoGen
	// falls behind.
	topoGen uint64
}

var _ mac.Channel = (*Medium)(nil)

// New constructs a medium. The configuration is validated.
func New(sched *sim.Scheduler, cfg Config) (*Medium, error) {
	if sched == nil {
		return nil, fmt.Errorf("medium: nil scheduler")
	}
	if err := cfg.Propagation.Validate(); err != nil {
		return nil, fmt.Errorf("medium: %w", err)
	}
	if cfg.CaptureThresholdDB == 0 {
		cfg.CaptureThresholdDB = phys.CaptureThresholdDB
	}
	if cfg.Addr == (AddrModel{}) {
		cfg.Addr = AddrModel{PDstPreserved: 1, PSrcPreservedGivenDst: 1}
	}
	m := &Medium{
		sched:  sched,
		cfg:    cfg,
		rng:    sched.RNG(),
		radios: make(map[mac.NodeID]*radio),
	}
	m.arrivals = pool.NewArena[arrival](64, func(a *arrival) { a.m = m })
	if cfg.Tap != nil {
		m.taps = append(m.taps, cfg.Tap)
	}
	return m, nil
}

// AddTap appends a tap to the fan-out list. Taps fire in registration
// order (the constructor's Config.Tap first); a flight recorder can join a
// medium that already carries a detector tap. Call it before the
// simulation runs.
func (m *Medium) AddTap(t Tap) {
	if t == nil {
		panic("medium: AddTap with nil tap")
	}
	m.taps = append(m.taps, t)
}

// DefaultChannel is the channel radios join when none is given; every
// single-cell scenario lives on it.
const DefaultChannel = 1

// AddRadio registers a station's radio at a fixed position on the default
// channel.
func (m *Medium) AddRadio(id mac.NodeID, pos phys.Position, rcv mac.Receiver) error {
	return m.AddRadioOn(id, pos, DefaultChannel, rcv)
}

// AddRadioOn registers a station's radio on a specific channel. Radios on
// different channels never interact: a transmission costs zero events at
// off-channel radios. Channel 0 means DefaultChannel.
func (m *Medium) AddRadioOn(id mac.NodeID, pos phys.Position, channel int, rcv mac.Receiver) error {
	if rcv == nil {
		return fmt.Errorf("medium: radio %d has nil receiver", id)
	}
	if channel == 0 {
		channel = DefaultChannel
	}
	if channel < 0 {
		return fmt.Errorf("medium: radio %d on negative channel %d", id, channel)
	}
	if _, dup := m.radios[id]; dup {
		return fmt.Errorf("medium: duplicate radio %d", id)
	}
	r := &radio{id: id, pos: pos, channel: channel, rcv: rcv}
	m.radios[id] = r
	m.order = append(m.order, r)
	m.topoGen++
	return nil
}

// SetPosition moves a registered radio; neighbor sets rebuild lazily on
// the next transmission. Call it between exchanges (e.g. from a mobility
// event), not while the radio has frames in flight — arrivals already
// scheduled keep their old propagation.
func (m *Medium) SetPosition(id mac.NodeID, pos phys.Position) error {
	r, ok := m.radios[id]
	if !ok {
		return fmt.Errorf("medium: SetPosition of unregistered radio %d", id)
	}
	r.pos = pos
	m.topoGen++
	return nil
}

// Position reports a registered radio's location.
func (m *Medium) Position(id mac.NodeID) (phys.Position, bool) {
	r, ok := m.radios[id]
	if !ok {
		return phys.Position{}, false
	}
	return r.pos, true
}

// Channel reports a registered radio's channel.
func (m *Medium) Channel(id mac.NodeID) (int, bool) {
	r, ok := m.radios[id]
	if !ok {
		return 0, false
	}
	return r.channel, true
}

// NeighborCount reports how many co-channel radios sit within id's
// carrier-sense range — the fan-out cost of one of its transmissions.
func (m *Medium) NeighborCount(id mac.NodeID) int {
	r, ok := m.radios[id]
	if !ok {
		return 0
	}
	if r.topoGen != m.topoGen {
		m.buildTopology(r)
	}
	if m.cfg.DisableNeighborScoping {
		n := 0
		for i, o := range m.order {
			if o != r && o.channel == r.channel && r.links[i].inCS {
				n++
			}
		}
		return n
	}
	return len(r.neighbors)
}

// MeanRSSDBm reports the mean received power on a directed link, as the
// propagation model computes it. Detection calibration uses this.
func (m *Medium) MeanRSSDBm(from, to mac.NodeID) (float64, bool) {
	a, okA := m.radios[from]
	b, okB := m.radios[to]
	if !okA || !okB {
		return 0, false
	}
	return m.cfg.Propagation.RxPowerDBm(a.pos.DistanceTo(b.pos)), true
}

// SetLinkError installs (or replaces) the error model of one directed
// link, overriding the default. Several experiments inject loss on only
// one flow's links.
func (m *Medium) SetLinkError(from, to mac.NodeID, em phys.ErrorModel) {
	if em == nil {
		panic("medium: SetLinkError with nil model")
	}
	if m.cfg.LinkError == nil {
		m.cfg.LinkError = make(map[LinkKey]phys.ErrorModel)
	}
	m.cfg.LinkError[LinkKey{From: from, To: to}] = em
}

func (m *Medium) errorModelFor(from, to mac.NodeID) phys.ErrorModel {
	if em, ok := m.cfg.LinkError[LinkKey{From: from, To: to}]; ok {
		return em
	}
	if m.cfg.DefaultError != nil {
		return m.cfg.DefaultError
	}
	return phys.NoError{}
}

// Transmit implements mac.Channel: src's frame occupies the air for
// airtime, reaching every co-channel radio within carrier-sense range.
func (m *Medium) Transmit(src mac.NodeID, f *mac.Frame, airtime sim.Time) {
	tx, ok := m.radios[src]
	if !ok {
		panic(fmt.Sprintf("medium: transmit from unregistered radio %d", src))
	}
	if airtime <= 0 {
		panic(fmt.Sprintf("medium: non-positive airtime %v", airtime))
	}
	now := m.sched.Now()
	tx.txUntil = now + airtime
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.RecordTx(src, airtime)
	}
	for _, t := range m.taps {
		t.OnTransmit(src, f, now, airtime)
	}
	// A radio is deaf while transmitting: anything arriving at it is lost.
	for _, a := range tx.inflight {
		a.selfTx = true
	}
	if tx.topoGen != m.topoGen {
		m.buildTopology(tx)
	}
	if m.cfg.DisableNeighborScoping {
		// Legacy broadcast fan-out: scan the whole population, applying
		// the same membership test the neighbor list precomputes. The two
		// paths visit identical receivers in identical order, so RNG draws
		// and outputs match byte for byte.
		for i, o := range m.order {
			if o == tx || o.channel != tx.channel {
				continue
			}
			lk := &tx.links[i]
			if !lk.inCS {
				continue
			}
			m.scheduleArrival(o, f, src, lk.inComm, lk.rxPowerDBm, lk.delay, now, airtime)
		}
		return
	}
	for i := range tx.neighbors {
		nb := &tx.neighbors[i]
		m.scheduleArrival(nb.o, f, src, nb.inComm, nb.rxDBm, nb.delay, now, airtime)
	}
}

// scheduleArrival enqueues one receiver's begin/end arrival pair.
func (m *Medium) scheduleArrival(o *radio, f *mac.Frame, from mac.NodeID,
	inComm bool, rxDBm float64, delay sim.Time, now, airtime sim.Time) {
	a := m.arrivals.Get()
	a.o = o
	a.frame = f
	a.from = from
	a.rssi = m.cfg.RSSI.Sample(m.rng, rxDBm)
	a.inComm = inComm
	a.overlapped = false
	a.strongestOther = math.Inf(-1)
	a.selfTx = false
	f.Retain() // the in-flight copy keeps the frame alive until endArrival
	a.start = now + delay
	a.end = a.start + airtime
	m.sched.AtCall(a.start, beginArrivalEvent, a)
}

// buildTopology refreshes r's cached adjacency. Under neighbor scoping
// (the default) it rebuilds the interference-graph edge list: co-channel
// radios within carrier-sense range in registration order, each edge
// carrying the directed-link propagation. Under DisableNeighborScoping it
// rebuilds the legacy full-population link cache instead.
func (m *Medium) buildTopology(r *radio) {
	r.topoGen = m.topoGen
	if m.cfg.DisableNeighborScoping {
		r.links = make([]link, len(m.order))
		for i, o := range m.order {
			dist := r.pos.DistanceTo(o.pos)
			r.links[i] = link{
				inCS:       dist <= m.cfg.Propagation.CSRange,
				inComm:     dist <= m.cfg.Propagation.CommRange,
				rxPowerDBm: m.cfg.Propagation.RxPowerDBm(dist),
				delay:      phys.PropagationDelay(dist),
			}
		}
		return
	}
	r.neighbors = r.neighbors[:0]
	for _, o := range m.order {
		if o == r || o.channel != r.channel {
			continue
		}
		dist := r.pos.DistanceTo(o.pos)
		if dist > m.cfg.Propagation.CSRange {
			continue
		}
		r.neighbors = append(r.neighbors, neighbor{
			o:      o,
			inComm: dist <= m.cfg.Propagation.CommRange,
			rxDBm:  m.cfg.Propagation.RxPowerDBm(dist),
			delay:  phys.PropagationDelay(dist),
		})
	}
}

func (m *Medium) beginArrival(o *radio, a *arrival) {
	for _, b := range o.inflight {
		b.overlapped = true
		if a.rssi > b.strongestOther {
			b.strongestOther = a.rssi
		}
		a.overlapped = true
		if b.rssi > a.strongestOther {
			a.strongestOther = b.rssi
		}
	}
	if m.sched.Now() < o.txUntil {
		a.selfTx = true
	}
	o.inflight = append(o.inflight, a)
	if len(o.inflight) == 1 {
		o.rcv.ChannelBusy(true)
	}
	m.sched.AtCall(a.end, endArrivalEvent, a)
}

func (m *Medium) endArrival(o *radio, a *arrival) {
	for i, b := range o.inflight {
		if b == a {
			o.inflight = append(o.inflight[:i], o.inflight[i+1:]...)
			break
		}
	}
	// Report the carrier-sense transition before delivering the frame so
	// the MAC sees a consistent idle state while handling it.
	if len(o.inflight) == 0 {
		o.rcv.ChannelBusy(false)
	}
	if a.selfTx || !a.inComm {
		m.recycle(a) // deaf or below reception threshold: energy only
		return
	}
	info := mac.RxInfo{Decoded: true, RSSIDBm: a.rssi}
	switch {
	case a.overlapped && !m.captures(a):
		info.Decoded = false
	default:
		units := phys.ErrorUnits(a.frame.MACBytes)
		if m.cfg.RateError != nil && a.frame.TxRate > 0 {
			info.Decoded = !m.cfg.RateError.FrameErrorAtRate(m.rng, a.frame.TxRate, units)
		} else {
			info.Decoded = !m.errorModelFor(a.from, o.id).FrameError(m.rng, units)
		}
	}
	if !info.Decoded {
		info.Corruption = m.cfg.Addr.Draw(m.rng)
	}
	for _, t := range m.taps {
		t.OnReceive(o.id, a.frame, info, m.sched.Now())
	}
	f := a.frame
	// The arrival token is fully consumed; recycle it before RxEnd so
	// follow-on transmissions can reuse it. The frame reference is
	// released only after RxEnd returns — this arrival may hold the last
	// one, and releasing first would hand the MAC a recycled frame.
	a.frame = nil
	a.o = nil
	m.arrivals.Put(a)
	o.rcv.RxEnd(f, info)
	f.Release()
}

// recycle drops the arrival's frame reference and returns it to the
// arena.
func (m *Medium) recycle(a *arrival) {
	a.frame.Release()
	a.frame = nil
	a.o = nil
	m.arrivals.Put(a)
}

// ArrivalStats reports the arrival arena's occupancy.
func (m *Medium) ArrivalStats() pool.Stats { return m.arrivals.Stats() }

func (m *Medium) captures(a *arrival) bool {
	if !m.cfg.CaptureEnabled {
		return false
	}
	if m.cfg.ForceCapture {
		return a.rssi > a.strongestOther
	}
	return phys.Captures(a.rssi, a.strongestOther, m.cfg.CaptureThresholdDB)
}
