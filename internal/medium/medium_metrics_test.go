package medium

import (
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/metrics"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// One data/ACK exchange overheard by a co-located bystander, checked
// against hand arithmetic. The data frame's duration field reserves
// SIFS + ACK airtime; the bystander is physically busy during the ACK
// itself, so the NAV alone blocks it for exactly the SIFS gap. The sender
// and the addressed receiver never set a NAV at all.
func TestNAVBlockedMatchesHandComputedExchange(t *testing.T) {
	cfg := DefaultConfig()
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	h := newHarness(t, cfg, 21)
	// Co-located stations: zero propagation delay keeps the arithmetic
	// exact. No RTS/CTS, loss-free channel, a single enqueued MSDU.
	a := h.addStation(t, 1, phys.Position{}, mac.Config{})
	b := h.addStation(t, 2, phys.Position{}, mac.Config{})
	c := h.addStation(t, 3, phys.Position{}, mac.Config{})
	reg.Register(1, "A", a.dcf)
	reg.Register(2, "B", b.dcf)
	reg.Register(3, "C", c.dcf)
	if !a.dcf.Send(2, nil, 1024) {
		t.Fatal("enqueue failed")
	}
	h.run(1 * sim.Second)

	p := phys.Params80211B()
	if got := c.dcf.NAVBlocked(); got != p.SIFS {
		t.Errorf("bystander NAV-blocked = %v, want exactly SIFS = %v", got, p.SIFS)
	}
	if got := a.dcf.NAVBlocked(); got != 0 {
		t.Errorf("sender NAV-blocked = %v, want 0 (own frame sets no NAV)", got)
	}
	if got := b.dcf.NAVBlocked(); got != 0 {
		t.Errorf("receiver NAV-blocked = %v, want 0 (frame addressed to it)", got)
	}

	// Airtime attribution: A's one data frame, B's one ACK, C silent, and
	// channel busy time is their sum.
	dataAir := p.TxDuration(1024+phys.DataHeaderBytes, p.DataRateBps)
	ackAir := p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps)
	s := reg.Snapshot(1 * sim.Second)
	if len(s.Stations) != 3 {
		t.Fatalf("stations in snapshot: %d", len(s.Stations))
	}
	stA, stB, stC := s.Stations[0], s.Stations[1], s.Stations[2]
	if got := stA.AirtimeSecs; got != dataAir.Seconds() {
		t.Errorf("A airtime = %v s, want %v s", got, dataAir.Seconds())
	}
	if got := stB.AirtimeSecs; got != ackAir.Seconds() {
		t.Errorf("B airtime = %v s, want %v s", got, ackAir.Seconds())
	}
	if stC.AirtimeSecs != 0 {
		t.Errorf("silent bystander airtime = %v s", stC.AirtimeSecs)
	}
	if got, want := s.ChannelBusySecs, (dataAir + ackAir).Seconds(); got != want {
		t.Errorf("channel busy = %v s, want %v s", got, want)
	}
	if stC.NAVBlockedSecs != p.SIFS.Seconds() {
		t.Errorf("snapshot NAV-blocked = %v s, want %v s", stC.NAVBlockedSecs, p.SIFS.Seconds())
	}
}

// The always-on registry and the hand-rolled airtime tap must agree: the
// registry's channel-busy total equals the sum of every OnTransmit
// airtime.
type airtimeSum struct {
	total sim.Time
}

func (s *airtimeSum) OnTransmit(_ mac.NodeID, _ *mac.Frame, _, airtime sim.Time) {
	s.total += airtime
}
func (s *airtimeSum) OnReceive(mac.NodeID, *mac.Frame, mac.RxInfo, sim.Time) {}

func TestRegistryAgreesWithTap(t *testing.T) {
	cfg := DefaultConfig()
	reg := metrics.NewRegistry()
	tap := &airtimeSum{}
	cfg.Metrics = reg
	cfg.Tap = tap
	h := newHarness(t, cfg, 23)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{UseRTSCTS: true})
	h.startFlow(1, 2)
	h.run(1 * sim.Second)

	s := reg.Snapshot(1 * sim.Second)
	if s.ChannelBusySecs == 0 {
		t.Fatal("registry saw no transmissions")
	}
	if got, want := s.ChannelBusySecs, tap.total.Seconds(); got != want {
		t.Errorf("registry busy %v s != tap sum %v s", got, want)
	}
}
