package medium

import (
	"math/rand"
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// rxCollector records raw reception outcomes at one radio.
type rxCollector struct {
	busy    []bool
	decoded []*mac.Frame
	corrupt []*mac.Frame
	rssi    []float64
}

func (c *rxCollector) ChannelBusy(b bool) { c.busy = append(c.busy, b) }
func (c *rxCollector) RxEnd(f *mac.Frame, info mac.RxInfo) {
	c.rssi = append(c.rssi, info.RSSIDBm)
	if info.Decoded {
		c.decoded = append(c.decoded, f)
	} else {
		c.corrupt = append(c.corrupt, f)
	}
}

func dataFrame(src, dst mac.NodeID, seq uint16) *mac.Frame {
	return &mac.Frame{Type: mac.FrameData, Src: src, Dst: dst, Seq: seq, MACBytes: 1052}
}

// setupRaw builds a medium with raw collectors at each position.
func setupRaw(t *testing.T, cfg Config, positions []phys.Position) (*sim.Scheduler, *Medium, []*rxCollector) {
	t.Helper()
	sched := sim.NewScheduler(3)
	m, err := New(sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]*rxCollector, len(positions))
	for i, pos := range positions {
		cols[i] = &rxCollector{}
		if err := m.AddRadio(mac.NodeID(i+1), pos, cols[i]); err != nil {
			t.Fatal(err)
		}
	}
	return sched, m, cols
}

func TestOverlapWithoutCaptureCorruptsBoth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSSI = phys.RSSIModel{} // no jitter: deterministic power comparison
	// Senders 1 and 2 equidistant from receiver 3: no capture possible.
	sched, m, cols := setupRaw(t, cfg, []phys.Position{
		{X: -10}, {X: 10}, {Y: 0},
	})
	air := 500 * sim.Microsecond
	m.Transmit(1, dataFrame(1, 3, 1), air)
	m.Transmit(2, dataFrame(2, 3, 2), air)
	sched.Run()

	rx := cols[2]
	if len(rx.decoded) != 0 {
		t.Errorf("equidistant overlap decoded %d frames, want 0", len(rx.decoded))
	}
	if len(rx.corrupt) != 2 {
		t.Errorf("corrupted %d frames, want 2", len(rx.corrupt))
	}
}

func TestOverlapWithCaptureDecodesStronger(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSSI = phys.RSSIModel{}
	// Sender 1 at 5 m, sender 2 at 50 m from receiver 3: 40 dB apart.
	sched, m, cols := setupRaw(t, cfg, []phys.Position{
		{X: -5}, {X: 50}, {},
	})
	air := 500 * sim.Microsecond
	m.Transmit(1, dataFrame(1, 3, 1), air)
	m.Transmit(2, dataFrame(2, 3, 2), air)
	sched.Run()

	rx := cols[2]
	if len(rx.decoded) != 1 || rx.decoded[0].Src != 1 {
		t.Errorf("capture should decode sender 1's frame: decoded %v", rx.decoded)
	}
	if len(rx.corrupt) != 1 || rx.corrupt[0].Src != 2 {
		t.Errorf("weaker frame should corrupt: %v", rx.corrupt)
	}
}

func TestCaptureDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSSI = phys.RSSIModel{}
	cfg.CaptureEnabled = false
	sched, m, cols := setupRaw(t, cfg, []phys.Position{
		{X: -5}, {X: 50}, {},
	})
	air := 500 * sim.Microsecond
	m.Transmit(1, dataFrame(1, 3, 1), air)
	m.Transmit(2, dataFrame(2, 3, 2), air)
	sched.Run()
	if len(cols[2].decoded) != 0 {
		t.Error("capture disabled but a frame was decoded from an overlap")
	}
}

func TestForceCaptureResolvesSmallMargins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSSI = phys.RSSIModel{}
	cfg.ForceCapture = true
	// 5 m vs 6 m: ≈3 dB apart — below the 10 dB threshold, but force
	// capture hands the frame to the stronger anyway.
	sched, m, cols := setupRaw(t, cfg, []phys.Position{
		{X: -5}, {X: 6}, {},
	})
	air := 500 * sim.Microsecond
	m.Transmit(1, dataFrame(1, 3, 1), air)
	m.Transmit(2, dataFrame(2, 3, 2), air)
	sched.Run()
	if len(cols[2].decoded) != 1 || cols[2].decoded[0].Src != 1 {
		t.Errorf("force capture should decode the stronger frame: %v", cols[2].decoded)
	}
}

func TestHalfDuplexDeafness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSSI = phys.RSSIModel{}
	sched, m, cols := setupRaw(t, cfg, []phys.Position{
		{}, {X: 5},
	})
	air := 500 * sim.Microsecond
	// Radio 2 starts transmitting, then radio 1's frame arrives at 2
	// mid-transmission: 2 must hear nothing.
	m.Transmit(2, dataFrame(2, 1, 1), air)
	sched.RunUntil(100 * sim.Microsecond)
	m.Transmit(1, dataFrame(1, 2, 2), air)
	sched.Run()

	if n := len(cols[1].decoded) + len(cols[1].corrupt); n != 0 {
		t.Errorf("transmitting radio received %d frames", n)
	}
	// Radio 1 finished its reception window after its own tx? Radio 1
	// receives 2's frame only for the part before its own tx began —
	// here they overlap, so radio 1 is deaf to it too.
	if n := len(cols[0].decoded); n != 0 {
		t.Errorf("radio 1 decoded %d frames while transmitting", n)
	}
}

func TestNonOverlappingSequentialFramesBothDecode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSSI = phys.RSSIModel{}
	sched, m, cols := setupRaw(t, cfg, []phys.Position{
		{X: -10}, {X: 10}, {},
	})
	air := 200 * sim.Microsecond
	m.Transmit(1, dataFrame(1, 3, 1), air)
	sched.RunUntil(300 * sim.Microsecond) // first frame fully done
	m.Transmit(2, dataFrame(2, 3, 2), air)
	sched.Run()
	if len(cols[2].decoded) != 2 {
		t.Errorf("sequential frames decoded %d, want 2", len(cols[2].decoded))
	}
}

func TestBusyTransitionsBalance(t *testing.T) {
	cfg := DefaultConfig()
	sched, m, cols := setupRaw(t, cfg, []phys.Position{
		{}, {X: 5},
	})
	air := 300 * sim.Microsecond
	for i := 0; i < 5; i++ {
		m.Transmit(1, dataFrame(1, 2, uint16(i)), air)
		sched.RunUntil(sched.Now() + 400*sim.Microsecond)
	}
	sched.Run()
	ups, downs := 0, 0
	for _, b := range cols[1].busy {
		if b {
			ups++
		} else {
			downs++
		}
	}
	if ups != downs || ups != 5 {
		t.Errorf("busy transitions unbalanced: %d up, %d down", ups, downs)
	}
}

func TestAddrModelDrawRates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := AddrModel80211A() // 0.84 / 0.914
	const n = 50000
	dstOK, srcOK := 0, 0
	for i := 0; i < n; i++ {
		c := m.Draw(rng)
		if !c.Corrupted {
			t.Fatal("Draw must mark the frame corrupted")
		}
		if !c.DstHit {
			dstOK++
		}
		if !c.SrcHit {
			srcOK++
		}
	}
	if got := float64(dstOK) / n; got < 0.82 || got > 0.86 {
		t.Errorf("dst preserved rate = %.3f, want ≈0.84", got)
	}
	if got := float64(srcOK) / n; got < 0.89 || got > 0.93 {
		t.Errorf("src preserved rate = %.3f, want ≈0.914", got)
	}
}

func TestSetLinkErrorValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	m, err := New(sched, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("nil error model accepted")
		}
	}()
	m.SetLinkError(1, 2, nil)
}

func TestTransmitValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	m, err := New(sched, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Run("unregistered radio", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		m.Transmit(9, dataFrame(9, 1, 0), sim.Microsecond)
	})
	t.Run("zero airtime", func(t *testing.T) {
		col := &rxCollector{}
		if err := m.AddRadio(1, phys.Position{}, col); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		m.Transmit(1, dataFrame(1, 2, 0), 0)
	})
}

// tapRecorder counts tap callbacks for the medium-side contract.
type tapRecorder struct {
	tx, rx int
	lastAt sim.Time
}

func (r *tapRecorder) OnTransmit(mac.NodeID, *mac.Frame, sim.Time, sim.Time) { r.tx++ }
func (r *tapRecorder) OnReceive(_ mac.NodeID, _ *mac.Frame, _ mac.RxInfo, at sim.Time) {
	r.rx++
	r.lastAt = at
}

func TestMediumTapContract(t *testing.T) {
	cfg := DefaultConfig()
	tap := &tapRecorder{}
	cfg.Tap = tap
	sched, m, _ := setupRaw(t, cfg, []phys.Position{
		{}, {X: 5}, {X: 0, Y: 5},
	})
	air := 300 * sim.Microsecond
	m.Transmit(1, dataFrame(1, 2, 1), air)
	sched.Run()
	if tap.tx != 1 {
		t.Errorf("tap tx = %d, want 1", tap.tx)
	}
	if tap.rx != 2 { // radios 2 and 3 both hear it
		t.Errorf("tap rx = %d, want 2", tap.rx)
	}
	// Arrival end = airtime + propagation delay (≤1 µs at these ranges).
	if tap.lastAt < air || tap.lastAt > air+sim.Microsecond {
		t.Errorf("tap rx time = %v, want ≈ frame end %v", tap.lastAt, air)
	}
}
