package medium

import (
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// satUpper is a saturated upper layer: it keeps the MAC queue topped up
// with fixed-size packets to one destination and counts deliveries.
type satUpper struct {
	dcf       *mac.DCF
	dst       mac.NodeID
	bytes     int
	delivered int
	rxBytes   int
	txOK      int
	txFail    int
	sending   bool
}

func (u *satUpper) pump() {
	if !u.sending {
		return
	}
	for u.dcf.QueueLen() < 10 {
		if !u.dcf.Send(u.dst, nil, u.bytes) {
			break
		}
	}
}

func (u *satUpper) DeliverData(f *mac.Frame, _ float64) {
	u.delivered++
	u.rxBytes += f.PayloadBytes
}

func (u *satUpper) TxDone(_ *mac.Frame, ok bool) {
	if ok {
		u.txOK++
	} else {
		u.txFail++
	}
	u.pump()
}

// station bundles a DCF and its saturated upper for tests.
type station struct {
	dcf   *mac.DCF
	upper *satUpper
}

type harness struct {
	sched    *sim.Scheduler
	med      *Medium
	stations map[mac.NodeID]*station
}

func newHarness(t *testing.T, cfg Config, seed int64) *harness {
	t.Helper()
	sched := sim.NewScheduler(seed)
	med, err := New(sched, cfg)
	if err != nil {
		t.Fatalf("New medium: %v", err)
	}
	return &harness{sched: sched, med: med, stations: make(map[mac.NodeID]*station)}
}

func (h *harness) addStation(t *testing.T, id mac.NodeID, pos phys.Position, mcfg mac.Config) *station {
	t.Helper()
	mcfg.ID = id
	if mcfg.Params.Band == 0 {
		mcfg.Params = phys.Params80211B()
	}
	u := &satUpper{bytes: 1024}
	dcf := mac.New(h.sched, h.med, u, mcfg)
	u.dcf = dcf
	if err := h.med.AddRadio(id, pos, dcf); err != nil {
		t.Fatalf("AddRadio(%d): %v", id, err)
	}
	s := &station{dcf: dcf, upper: u}
	h.stations[id] = s
	return s
}

// startFlow makes station src saturate traffic toward dst.
func (h *harness) startFlow(src, dst mac.NodeID) {
	s := h.stations[src]
	s.upper.dst = dst
	s.upper.sending = true
	s.upper.pump()
}

func (h *harness) run(d sim.Time) { h.sched.RunUntil(d) }

func TestSingleFlowDeliversEverything(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 1)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{UseRTSCTS: true})
	h.startFlow(1, 2)
	h.run(2 * sim.Second)

	tx := h.stations[1].upper
	rx := h.stations[2].upper
	if tx.txOK == 0 {
		t.Fatal("no MSDUs completed")
	}
	if tx.txFail != 0 {
		t.Errorf("MSDU drops on a clean channel: %d", tx.txFail)
	}
	if rx.delivered != tx.txOK {
		t.Errorf("delivered %d != acked %d on a clean channel", rx.delivered, tx.txOK)
	}
	// Throughput sanity for 802.11b, 1024-byte MSDUs, RTS/CTS on, basic
	// rate 1 Mbps: per-packet airtime is roughly DIFS(50) + backoff(~310)
	// + RTS(352) + CTS(304) + DATA(958) + ACK(304) + 3×SIFS(30) ≈ 2.3 ms,
	// so ≈ 430 pkt/s. Accept a generous band.
	pps := float64(rx.delivered) / 2.0
	if pps < 350 || pps > 520 {
		t.Errorf("single-flow rate = %.0f pkt/s, want ≈ 430", pps)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 3)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 3, phys.Position{X: 0, Y: 5}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 4, phys.Position{X: 5, Y: 5}, mac.Config{UseRTSCTS: true})
	h.startFlow(1, 2)
	h.startFlow(3, 4)
	h.run(5 * sim.Second)

	d1 := h.stations[2].upper.delivered
	d2 := h.stations[4].upper.delivered
	if d1 == 0 || d2 == 0 {
		t.Fatalf("a flow starved on a clean channel: %d vs %d", d1, d2)
	}
	ratio := float64(d1) / float64(d2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("normal flows unfair: %d vs %d (ratio %.2f)", d1, d2, ratio)
	}
	// Aggregate should be near the single-flow capacity (same medium).
	if total := d1 + d2; total < 1700 {
		t.Errorf("aggregate %d pkts in 5s too low", total)
	}
}

// inflatePolicy inflates the NAV of chosen frame types by a fixed amount.
type inflatePolicy struct {
	mac.NormalPolicy
	types map[mac.FrameType]bool
	extra sim.Time
}

func (p inflatePolicy) OutgoingDuration(t mac.FrameType, normal sim.Time) sim.Time {
	if p.types[t] {
		return normal + p.extra
	}
	return normal
}

func TestCTSNAVInflationStarvesCompetitor(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 5)
	greedy := inflatePolicy{
		types: map[mac.FrameType]bool{mac.FrameCTS: true, mac.FrameACK: true},
		extra: 10 * sim.Millisecond,
	}
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{UseRTSCTS: true})                 // GS
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{UseRTSCTS: true, Policy: greedy}) // GR
	h.addStation(t, 3, phys.Position{X: 0, Y: 5}, mac.Config{UseRTSCTS: true})           // NS
	h.addStation(t, 4, phys.Position{X: 5, Y: 5}, mac.Config{UseRTSCTS: true})           // NR
	h.startFlow(1, 2)
	h.startFlow(3, 4)
	h.run(5 * sim.Second)

	gr := h.stations[2].upper.delivered
	nr := h.stations[4].upper.delivered
	if gr < 10*nr {
		t.Errorf("10ms CTS/ACK NAV inflation: greedy %d vs normal %d, want ≥10× gap", gr, nr)
	}
	if gr < 1000 {
		t.Errorf("greedy flow only delivered %d pkts in 5s; inflation should not hurt it", gr)
	}
}

func TestNAVInflationIgnoredBySender(t *testing.T) {
	// The inflated CTS is addressed to GS, so GS must not set its own NAV
	// from it — otherwise the attack would throttle its own flow.
	h := newHarness(t, DefaultConfig(), 7)
	greedy := inflatePolicy{
		types: map[mac.FrameType]bool{mac.FrameCTS: true},
		extra: 30 * sim.Millisecond,
	}
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{UseRTSCTS: true, Policy: greedy})
	h.startFlow(1, 2)
	h.run(2 * sim.Second)

	if nav := h.stations[1].dcf.NAVUntil(); nav > 0 {
		// GS's NAV may have been set by... nothing: only frames addressed
		// to it ever reach it in this 2-node topology.
		t.Errorf("GS NAV set to %v by its own receiver's CTS", nav)
	}
	got := h.stations[2].upper.delivered
	if got < 700 {
		t.Errorf("GS-GR flow delivered %d pkts in 2s; inflation must not slow its own flow", got)
	}
}

func TestHiddenTerminalsCollide(t *testing.T) {
	// Senders 200m apart (outside each other's 99m CS range in the GRC
	// propagation), receivers co-located midway: classic hidden terminals.
	cfg := DefaultConfig()
	cfg.Propagation = phys.GRCPropagation()
	h := newHarness(t, cfg, 9)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{})   // S1 (no RTS/CTS)
	h.addStation(t, 2, phys.Position{X: 50}, mac.Config{})  // R1: 50m from S1, hears S2's energy
	h.addStation(t, 3, phys.Position{X: 130}, mac.Config{}) // S2: 130m from S1 — hidden
	h.addStation(t, 4, phys.Position{X: 80}, mac.Config{})  // R2: 50m from S2, hears S1's energy
	h.startFlow(1, 2)
	h.startFlow(3, 4)
	h.run(3 * sim.Second)

	c1 := h.stations[2].dcf.Counters()
	c2 := h.stations[4].dcf.Counters()
	if c1.CorruptedRx == 0 && c2.CorruptedRx == 0 {
		t.Error("hidden terminals produced no collisions")
	}
	s1 := h.stations[1].dcf.Counters()
	if s1.ACKTimeouts == 0 {
		t.Error("hidden-terminal sender saw no ACK timeouts")
	}
	// Exponential backoff must have kicked in.
	if s1.AvgCW() <= float64(phys.Params80211B().CWMin) {
		t.Errorf("hidden-terminal sender avg CW = %.1f, want > CWmin", s1.AvgCW())
	}
}

func TestOutOfRangeNodesUnaffected(t *testing.T) {
	// Two pairs far apart (beyond CS range): both should get full
	// single-flow throughput.
	cfg := DefaultConfig()
	cfg.Propagation = phys.GRCPropagation() // 55m/99m
	h := newHarness(t, cfg, 11)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 3, phys.Position{X: 300}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 4, phys.Position{X: 305}, mac.Config{UseRTSCTS: true})
	h.startFlow(1, 2)
	h.startFlow(3, 4)
	h.run(2 * sim.Second)

	d1 := h.stations[2].upper.delivered
	d2 := h.stations[4].upper.delivered
	for _, d := range []int{d1, d2} {
		if pps := float64(d) / 2.0; pps < 350 {
			t.Errorf("isolated flow rate %.0f pkt/s, want near single-flow capacity", pps)
		}
	}
}

func TestChannelErrorsCauseRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DefaultError = phys.UnitErrorModel{BER: 2e-4} // ≈20% FER on data
	h := newHarness(t, cfg, 13)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{UseRTSCTS: true})
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{UseRTSCTS: true})
	h.startFlow(1, 2)
	h.run(2 * sim.Second)

	c := h.stations[1].dcf.Counters()
	if c.DataRetries == 0 {
		t.Error("lossy channel produced no data retries")
	}
	rx := h.stations[2].dcf.Counters()
	if rx.CorruptedRx == 0 {
		t.Error("receiver saw no corrupted frames at BER 2e-4")
	}
	// MAC retransmissions should recover nearly all losses.
	tx := h.stations[1].upper
	if tx.txOK == 0 || float64(tx.txFail)/float64(tx.txOK+tx.txFail) > 0.01 {
		t.Errorf("too many MSDU drops: %d ok, %d fail", tx.txOK, tx.txFail)
	}
}

func TestPerLinkErrorOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkError = map[LinkKey]phys.ErrorModel{
		{From: 1, To: 2}: phys.FixedFERModel{Rate: 1}, // everything lost
	}
	h := newHarness(t, cfg, 15)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{}) // no RTS so data is what fails
	h.addStation(t, 2, phys.Position{X: 5}, mac.Config{})
	h.startFlow(1, 2)
	h.run(1 * sim.Second)

	if got := h.stations[2].upper.delivered; got != 0 {
		t.Errorf("fully lossy link delivered %d frames", got)
	}
	if h.stations[1].upper.txFail == 0 {
		t.Error("sender never gave up on a fully lossy link")
	}
}

func TestCaptureStrongerFrameSurvives(t *testing.T) {
	// Two senders transmit to a common receiver without carrier sense of
	// each other being possible to avoid — force simultaneous starts by
	// hidden placement. The near sender (5m) is ≥10dB stronger than the
	// far one (50m) under exponent-4 path loss (40 dB), so its frames
	// should capture.
	cfg := DefaultConfig()
	cfg.Propagation = phys.GRCPropagation()
	h := newHarness(t, cfg, 17)
	h.addStation(t, 1, phys.Position{X: 0}, mac.Config{})   // S1
	h.addStation(t, 2, phys.Position{X: 20}, mac.Config{})  // R2: 20m from S1, 95m from S3
	h.addStation(t, 3, phys.Position{X: 115}, mac.Config{}) // S3: hidden from S1 (115m > 99m)
	h.addStation(t, 4, phys.Position{X: 61}, mac.Config{})  // R4: 54m from S3, 61m from S1
	h.startFlow(1, 2)
	h.startFlow(3, 4)
	h.run(3 * sim.Second)

	near := h.stations[2].upper.delivered
	far := h.stations[4].upper.delivered
	if near == 0 {
		t.Fatal("near flow starved")
	}
	// At R2, S1's frames are 27 dB above S3's interference (20m vs 95m at
	// path-loss exponent 4): every overlap captures, so the near flow
	// never drops an MSDU. At R4 the margin is only ~2 dB, so overlaps
	// corrupt and the far flow suffers.
	if h.stations[1].upper.txFail > 0 {
		t.Errorf("near flow with capture advantage dropped %d MSDUs", h.stations[1].upper.txFail)
	}
	if far >= near {
		t.Errorf("capture-protected flow (%d) should beat the unprotected one (%d)", near, far)
	}
}

func TestMediumValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil scheduler accepted")
	}
	bad := DefaultConfig()
	bad.Propagation.CommRange = -1
	if _, err := New(sched, bad); err == nil {
		t.Error("invalid propagation accepted")
	}
	m, err := New(sched, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := mac.New(sched, m, nopUpper{}, mac.Config{ID: 1, Params: phys.Params80211B()})
	if err := m.AddRadio(1, phys.Position{}, d); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRadio(1, phys.Position{}, d); err == nil {
		t.Error("duplicate radio accepted")
	}
	if err := m.AddRadio(2, phys.Position{}, nil); err == nil {
		t.Error("nil receiver accepted")
	}
	if _, ok := m.Position(1); !ok {
		t.Error("registered radio position missing")
	}
	if _, ok := m.Position(99); ok {
		t.Error("unregistered radio has a position")
	}
	if _, ok := m.MeanRSSDBm(1, 99); ok {
		t.Error("MeanRSS for unregistered radio")
	}
}

type nopUpper struct{}

func (nopUpper) DeliverData(*mac.Frame, float64) {}
func (nopUpper) TxDone(*mac.Frame, bool)         {}
