package campaignd

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"greedy80211/internal/campaign"
)

// Lease is one unit checked out to one worker. A lease is alive until
// its deadline; heartbeats push the deadline forward, completion or
// failure removes it, and a deadline in the past means the worker died —
// the unit becomes grantable again.
type Lease struct {
	ID         string
	CampaignID string
	Worker     string
	Unit       campaign.Unit
	UnitName   string
	Granted    time.Time
	Deadline   time.Time
}

// leaseTable is the in-memory lease ledger. It is deliberately not
// persisted: a server restart drops every lease, which is safe — the
// store still records what is computed, workers fail their next
// heartbeat, re-lease, and racing duplicate computations commit
// identical bytes under identical keys.
type leaseTable struct {
	mu    sync.Mutex
	ttl   time.Duration
	now   func() time.Time
	seq   uint64
	byID  map[string]*Lease
	byKey map[string]*Lease
}

func newLeaseTable(ttl time.Duration, now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	return &leaseTable{
		ttl:   ttl,
		now:   now,
		byID:  make(map[string]*Lease),
		byKey: make(map[string]*Lease),
	}
}

// Sweep removes and returns every expired lease. The caller re-issues
// their units simply by treating them as unleased on the next grant.
func (t *leaseTable) Sweep() []*Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var dead []*Lease
	for id, l := range t.byID {
		if l.Deadline.Before(now) {
			delete(t.byID, id)
			delete(t.byKey, l.Unit.Key)
			dead = append(dead, l)
		}
	}
	return dead
}

// Grant leases the unit to worker, or returns nil if another live lease
// already holds its key.
func (t *leaseTable) Grant(campaignID string, u campaign.Unit, name, worker string) *Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.byKey[u.Key]; ok && !existing.Deadline.Before(t.now()) {
		return nil
	}
	t.seq++
	var rnd [8]byte
	if _, err := rand.Read(rnd[:]); err != nil {
		// crypto/rand never fails on the platforms we run on; if it
		// somehow does, the sequence number alone still uniquely
		// identifies the lease within this process.
		copy(rnd[:], fmt.Sprintf("%08d", t.seq))
	}
	now := t.now()
	l := &Lease{
		ID:         fmt.Sprintf("l%d-%s", t.seq, hex.EncodeToString(rnd[:])),
		CampaignID: campaignID,
		Worker:     worker,
		Unit:       u,
		UnitName:   name,
		Granted:    now,
		Deadline:   now.Add(t.ttl),
	}
	t.byID[l.ID] = l
	t.byKey[u.Key] = l
	return l
}

// Heartbeat extends the lease's deadline by a full TTL, returning the
// holding worker's name. The last return is false when the lease is
// unknown or already expired — the worker lost it and must abandon the
// unit.
func (t *leaseTable) Heartbeat(id string) (time.Duration, string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.byID[id]
	if !ok || l.Deadline.Before(t.now()) {
		return 0, "", false
	}
	l.Deadline = t.now().Add(t.ttl)
	return t.ttl, l.Worker, true
}

// Remove takes the lease out of the table (complete or fail), returning
// it if it was still live.
func (t *leaseTable) Remove(id string) (*Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	delete(t.byID, id)
	delete(t.byKey, l.Unit.Key)
	if l.Deadline.Before(t.now()) {
		return l, false
	}
	return l, true
}

// HasKey reports whether a live lease holds the key.
func (t *leaseTable) HasKey(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.byKey[key]
	return ok && !l.Deadline.Before(t.now())
}

// LeaseInfo is one live lease as reported by /v1/stats.
type LeaseInfo struct {
	Worker     string  `json:"worker"`
	CampaignID string  `json:"campaign_id"`
	Unit       string  `json:"unit"`
	Key        string  `json:"key"`
	AgeSeconds float64 `json:"age_s"`
	TTLSeconds float64 `json:"ttl_remaining_s"`
}

// Snapshot lists the live leases, oldest first.
func (t *leaseTable) Snapshot() []LeaseInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]LeaseInfo, 0, len(t.byID))
	for _, l := range t.byID {
		if l.Deadline.Before(now) {
			continue
		}
		out = append(out, LeaseInfo{
			Worker:     l.Worker,
			CampaignID: l.CampaignID,
			Unit:       l.UnitName,
			Key:        l.Unit.Key,
			AgeSeconds: now.Sub(l.Granted).Seconds(),
			TTLSeconds: l.Deadline.Sub(now).Seconds(),
		})
	}
	// Oldest (largest age) first; ties broken by key for stable output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].AgeSeconds > out[j-1].AgeSeconds ||
			(out[j].AgeSeconds == out[j-1].AgeSeconds && out[j].Key < out[j-1].Key)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// leasedKeys returns the set of keys under live lease (for status
// overlays).
func (t *leaseTable) leasedKeys() map[string]bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make(map[string]bool, len(t.byKey))
	for key, l := range t.byKey {
		if !l.Deadline.Before(now) {
			out[key] = true
		}
	}
	return out
}
