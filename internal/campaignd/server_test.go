package campaignd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/core"
	"greedy80211/internal/obs"
)

func testSpec() *campaign.Spec {
	return &campaign.Spec{
		Artifacts: []string{"tab3"},
		Config:    campaign.SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	}
}

// newTestServer stands up a Server over a fresh store and an httptest
// front end. A nil clock uses real time.
func newTestServer(t *testing.T, ttl time.Duration, clock *fakeClock) (*Server, *httptest.Server, *campaign.Store) {
	t.Helper()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: store, LeaseTTL: ttl, Logger: obs.LogfLogger(t.Logf)}
	if clock != nil {
		cfg.Now = clock.now
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, store
}

// doJSON posts (or gets, with nil body) and decodes into out, asserting
// the expected status.
func doJSON(t *testing.T, method, url string, in, out any, wantStatus int) {
	t.Helper()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
}

func TestServerBlobConditionalReads(t *testing.T) {
	_, ts, store := newTestServer(t, 0, nil)
	key := strings.Repeat("ab", 32)
	result := []byte("{\n  \"id\": \"x\",\n  \"title\": \"t\"\n}\n")
	if err := store.Put(campaign.Meta{Key: key, Artifact: "x"}, result, []byte("[]\n")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(body, result) {
		t.Fatalf("cold read: %d %q", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.Contains(resp.Header.Get("Cache-Control"), "immutable") {
		t.Fatalf("headers: ETag=%q Cache-Control=%q", etag, resp.Header.Get("Cache-Control"))
	}

	// Warm read: If-None-Match turns the response into an empty 304.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/results/"+key, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("warm read: %d %q", resp.StatusCode, body)
	}

	// Metrics and meta endpoints serve the same entry.
	resp, err = http.Get(ts.URL + "/v1/metrics/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "[]\n" {
		t.Fatalf("metrics: %d %q", resp.StatusCode, body)
	}
	var meta campaign.Meta
	doJSON(t, "GET", ts.URL+"/v1/meta/"+key, nil, &meta, 200)
	if meta.Key != key || meta.Artifact != "x" {
		t.Fatalf("meta: %+v", meta)
	}

	// Absent keys 404 with an error doc.
	var ed ErrorDoc
	doJSON(t, "GET", ts.URL+"/v1/results/"+strings.Repeat("cd", 32), nil, &ed, 404)
	if ed.Error == "" {
		t.Error("404 without error doc")
	}

	// The stats surface saw all of it.
	var stats StatsDoc
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats, 200)
	if stats.Cache.Served < 2 || stats.Cache.NotModified != 1 || stats.Cache.Missing != 1 {
		t.Errorf("cache stats: %+v", stats.Cache)
	}
	if stats.StoreObjects != 1 {
		t.Errorf("store objects: %d", stats.StoreObjects)
	}
}

func TestServerCampaignLifecycle(t *testing.T) {
	_, ts, store := newTestServer(t, 0, nil)
	spec := testSpec()

	var doc CampaignDoc
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, &doc, 200)
	if doc.ID != SpecID(spec) {
		t.Fatalf("id %q, want %q", doc.ID, SpecID(spec))
	}
	if doc.Status.Total != 1 || doc.Status.Pending != 1 {
		t.Fatalf("fresh campaign status: %+v", doc.Status)
	}
	// Submission is idempotent.
	var doc2 CampaignDoc
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, &doc2, 200)
	if doc2.ID != doc.ID {
		t.Fatalf("resubmit changed id: %q vs %q", doc2.ID, doc.ID)
	}

	// Lease the unit; the campaign now reports it leased.
	var lr LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w1"}, &lr, 200)
	if lr.Lease == nil || lr.Lease.Unit.Artifact != "tab3" {
		t.Fatalf("lease: %+v", lr)
	}
	if err := lr.Lease.Unit.VerifyKey(); err != nil {
		t.Fatalf("key verification in-process must pass: %v", err)
	}
	doJSON(t, "GET", ts.URL+"/v1/campaigns/"+doc.ID, nil, &doc, 200)
	if doc.Status.Leased != 1 || doc.Status.Pending != 0 {
		t.Fatalf("leased status: %+v", doc.Status)
	}

	// A second worker is told to wait, not granted the same key.
	var lr2 LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w2"}, &lr2, 200)
	if lr2.Lease != nil || lr2.Done || lr2.RetryAfterMs <= 0 {
		t.Fatalf("contended lease: %+v", lr2)
	}

	// Heartbeat, compute, upload.
	var hb HeartbeatResponse
	doJSON(t, "POST", ts.URL+"/v1/leases/"+lr.Lease.LeaseID+"/heartbeat", nil, &hb, 200)
	if hb.TTLMs <= 0 {
		t.Fatalf("heartbeat: %+v", hb)
	}
	unit, err := lr.Lease.Unit.Unit()
	if err != nil {
		t.Fatal(err)
	}
	result, metrics, err := campaign.ComputeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompleteResponse
	doJSON(t, "POST", ts.URL+"/v1/leases/"+lr.Lease.LeaseID+"/complete",
		CompleteRequest{Key: unit.Key, Result: string(result), Metrics: string(metrics)}, &cr, 200)
	if !cr.Committed || cr.LeaseLost {
		t.Fatalf("complete: %+v", cr)
	}
	if !store.Has(unit.Key) {
		t.Fatal("complete did not commit to the store")
	}

	// The campaign is done; the next lease call says so.
	doJSON(t, "GET", ts.URL+"/v1/campaigns/"+doc.ID, nil, &doc, 200)
	if doc.Status.Done != 1 {
		t.Fatalf("final status: %+v", doc.Status)
	}
	var lr3 LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w2"}, &lr3, 200)
	if !lr3.Done {
		t.Fatalf("post-completion lease: %+v", lr3)
	}

	// The result is immediately servable with the content-address ETag.
	resp, err := http.Get(ts.URL + "/v1/results/" + unit.Key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(got, result) {
		t.Fatalf("serving the committed result: %d", resp.StatusCode)
	}
}

func TestServerLeaseExpiryReissueAndLateUpload(t *testing.T) {
	clock := &fakeClock{t: time.Unix(5000, 0)}
	_, ts, _ := newTestServer(t, 10*time.Second, clock)
	spec := testSpec()

	var doc CampaignDoc
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, &doc, 200)
	var lr1 LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "dying"}, &lr1, 200)
	if lr1.Lease == nil {
		t.Fatalf("first lease: %+v", lr1)
	}

	// The worker goes silent past the TTL; the next lease request sweeps
	// the corpse and re-issues the same unit.
	clock.advance(11 * time.Second)
	var lr2 LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "healthy"}, &lr2, 200)
	if lr2.Lease == nil || lr2.Lease.Unit.Key != lr1.Lease.Unit.Key {
		t.Fatalf("re-issue: %+v", lr2)
	}
	if lr2.Lease.LeaseID == lr1.Lease.LeaseID {
		t.Fatal("re-issue reused the dead lease id")
	}

	// The dead worker's heartbeat now fails — it must abandon the unit.
	var ed ErrorDoc
	doJSON(t, "POST", ts.URL+"/v1/leases/"+lr1.Lease.LeaseID+"/heartbeat", nil, &ed, 404)

	// But its late upload still lands (content-addressed, idempotent),
	// flagged as lease-lost.
	unit, err := lr1.Lease.Unit.Unit()
	if err != nil {
		t.Fatal(err)
	}
	result, metrics, err := campaign.ComputeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompleteResponse
	doJSON(t, "POST", ts.URL+"/v1/leases/"+lr1.Lease.LeaseID+"/complete",
		CompleteRequest{Key: unit.Key, Result: string(result), Metrics: string(metrics)}, &cr, 200)
	if !cr.Committed || !cr.LeaseLost {
		t.Fatalf("late upload: %+v", cr)
	}

	// The healthy worker's duplicate upload is a benign no-op commit.
	cr = CompleteResponse{}
	doJSON(t, "POST", ts.URL+"/v1/leases/"+lr2.Lease.LeaseID+"/complete",
		CompleteRequest{Key: unit.Key, Result: string(result), Metrics: string(metrics)}, &cr, 200)
	if !cr.Committed || cr.LeaseLost {
		t.Fatalf("duplicate upload: %+v", cr)
	}

	var stats StatsDoc
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats, 200)
	if stats.Leases.Expired < 1 || stats.Leases.LateCompletes != 1 || stats.Leases.Completed != 1 {
		t.Errorf("lease stats: %+v", stats.Leases)
	}
}

func TestServerUnitFailureRetirement(t *testing.T) {
	srv, ts, _ := newTestServer(t, 0, nil)
	_ = srv
	spec := testSpec()
	var doc CampaignDoc
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, &doc, 200)

	// Fail the unit MaxUnitFailures times; afterwards the campaign is
	// exhausted with the unit retired, not re-issued forever.
	for i := 0; i < 3; i++ {
		var lr LeaseResponse
		doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w"}, &lr, 200)
		if lr.Lease == nil {
			t.Fatalf("attempt %d: %+v", i, lr)
		}
		doJSON(t, "POST", ts.URL+"/v1/leases/"+lr.Lease.LeaseID+"/fail",
			FailRequest{Error: fmt.Sprintf("boom %d", i)}, nil, 200)
	}
	var lr LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w"}, &lr, 200)
	if !lr.Done || lr.FailedUnits != 1 {
		t.Fatalf("after retirement: %+v", lr)
	}
	doJSON(t, "GET", ts.URL+"/v1/campaigns/"+doc.ID, nil, &doc, 200)
	if doc.Status.Failed != 1 {
		t.Fatalf("status after retirement: %+v", doc.Status)
	}
}

func TestServerRejectsCorruptUpload(t *testing.T) {
	_, ts, store := newTestServer(t, 0, nil)
	spec := testSpec()
	var doc CampaignDoc
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, &doc, 200)
	var lr LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w"}, &lr, 200)

	var ed ErrorDoc
	doJSON(t, "POST", ts.URL+"/v1/leases/"+lr.Lease.LeaseID+"/complete",
		CompleteRequest{Key: lr.Lease.Unit.Key, Result: "not json", Metrics: "[]"}, &ed, 422)
	if ed.Error == "" {
		t.Error("422 without error doc")
	}
	if store.Has(lr.Lease.Unit.Key) {
		t.Error("corrupt upload reached the store")
	}
}

func TestServerVerdictsConditional(t *testing.T) {
	_, ts, _ := newTestServer(t, 0, nil)
	resp, err := http.Get(ts.URL + "/v1/verdicts")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("verdicts: %d %s", resp.StatusCode, body)
	}
	var vd struct {
		Missing   int `json:"missing"`
		Artifacts []struct {
			Verdict string `json:"verdict"`
		} `json:"artifacts"`
	}
	if err := json.Unmarshal(body, &vd); err != nil {
		t.Fatalf("verdicts body: %v", err)
	}
	if vd.Missing == 0 || len(vd.Artifacts) == 0 {
		t.Errorf("empty store must yield missing verdicts: %s", body)
	}
	etag := resp.Header.Get("ETag")
	req, _ := http.NewRequest("GET", ts.URL+"/v1/verdicts", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("stable store, same ETag: %d", resp.StatusCode)
	}
}

func TestServerTraceRenders(t *testing.T) {
	_, ts, store := newTestServer(t, 0, nil)
	// fig1 is a simulated artifact, so its render has real recordings
	// (tab3 is analytic and would render an empty-trace note instead).
	spec := &campaign.Spec{
		Artifacts: []string{"fig1"},
		Config:    campaign.SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	}
	units, err := spec.Units()
	if err != nil {
		t.Fatal(err)
	}
	u := units[0]
	result, metrics, err := campaign.ComputeUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(metaFor(u, core.ModuleFingerprint()), result, metrics); err != nil {
		t.Fatal(err)
	}

	get := func(url, ifNoneMatch string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest("GET", url, nil)
		if ifNoneMatch != "" {
			req.Header.Set("If-None-Match", ifNoneMatch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	// First hit renders (re-simulates); the body is a timeline.
	resp, body := get(ts.URL+"/v1/traces/"+u.Key, "")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("===")) {
		t.Fatalf("timeline render: %d %.120q", resp.StatusCode, body)
	}
	// Second hit is served from the backend cache, byte-identical.
	resp2, body2 := get(ts.URL+"/v1/traces/"+u.Key, "")
	if resp2.StatusCode != 200 || !bytes.Equal(body, body2) {
		t.Fatalf("cached render differs")
	}
	// Conditional hit costs nothing.
	resp3, _ := get(ts.URL+"/v1/traces/"+u.Key, resp.Header.Get("ETag"))
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional render: %d", resp3.StatusCode)
	}
	var stats StatsDoc
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats, 200)
	if stats.Traces.Rendered != 1 || stats.Traces.Cached != 1 {
		t.Errorf("trace stats: %+v", stats.Traces)
	}

	// JSONL format renders each line as a JSON object.
	resp, body = get(ts.URL+"/v1/traces/"+u.Key+"?format=jsonl", "")
	if resp.StatusCode != 200 {
		t.Fatalf("jsonl render: %d", resp.StatusCode)
	}
	line, _, _ := bytes.Cut(body, []byte("\n"))
	var obj map[string]any
	if err := json.Unmarshal(line, &obj); err != nil {
		t.Fatalf("jsonl first line %q: %v", line, err)
	}

	// Unknown formats are rejected; absent keys 404.
	if resp, _ := get(ts.URL+"/v1/traces/"+u.Key+"?format=chrome", ""); resp.StatusCode != 400 {
		t.Errorf("unknown format: %d", resp.StatusCode)
	}
	if resp, _ := get(ts.URL+"/v1/traces/"+strings.Repeat("ef", 32), ""); resp.StatusCode != 404 {
		t.Errorf("absent key: %d", resp.StatusCode)
	}

	// A module-fingerprint mismatch refuses with 409: the render would
	// not reproduce the stored result.
	skewKey := strings.Repeat("0a", 32)
	skewMeta := metaFor(u, "some-other-module")
	skewMeta.Key = skewKey
	if err := store.Put(skewMeta, result, metrics); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(ts.URL+"/v1/traces/"+skewKey, ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("module skew: %d, want 409", resp.StatusCode)
	}
}
