package campaignd

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/obs"
)

// Requests no registered route claims — random paths, wrong methods,
// probe junk — must all collapse into the single "unmatched" stats key,
// so hostile clients cannot grow the per-route table without bound.
func TestUnmatchedRoutesCollapseToOneKey(t *testing.T) {
	_, ts, _ := newTestServer(t, 0, nil)
	rng := rand.New(rand.NewSource(42))
	const probes = 60
	for i := 0; i < probes; i++ {
		path := fmt.Sprintf("/%x/%x", rng.Int63(), rng.Int63())
		method := []string{"GET", "POST", "DELETE"}[i%3]
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Wrong method on a real path is unmatched too (the mux 405s it).
	resp, err := http.Get(ts.URL + "/v1/campaigns/nope/lease")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var stats StatsDoc
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats, 200)
	um, ok := stats.Requests["unmatched"]
	if !ok || um.Count < probes {
		t.Fatalf("unmatched route doc: %+v (want count >= %d)", um, probes)
	}
	if um.Errors < probes {
		t.Errorf("unmatched errors = %d, want >= %d (404s count as errors)", um.Errors, probes)
	}
	for route := range stats.Requests {
		if route != "unmatched" && !strings.HasPrefix(route, "GET ") && !strings.HasPrefix(route, "POST ") {
			t.Errorf("unexpected route key %q — probe paths must not mint keys", route)
		}
	}
	if len(stats.Requests) > 3 {
		t.Errorf("request table grew to %d keys: %+v", len(stats.Requests), stats.Requests)
	}
}

// The Prometheus surface must parse under the repo's own lint parser
// and carry the series the runbooks point at: per-route latency
// histograms, lease counters, build identity as constant labels, and
// runtime health gauges.
func TestMetricsExpositionParsesAndCovers(t *testing.T) {
	_, ts, _ := newTestServer(t, 0, nil)
	spec := testSpec()
	var doc CampaignDoc
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, &doc, 200)
	var lr LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w1"}, &lr, 200)
	if lr.Lease == nil {
		t.Fatalf("lease: %+v", lr)
	}
	var stats StatsDoc
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats, 200)
	if stats.Build.Module == "" || stats.Build.GoVersion == "" {
		t.Errorf("build info missing from /v1/stats: %+v", stats.Build)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want the v0.0.4 exposition type", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	prom, err := obs.ParsePrometheusText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	reqs := prom.Families["campaignd_request_seconds"]
	if reqs == nil || reqs.Type != "histogram" || reqs.Samples == 0 {
		t.Fatalf("campaignd_request_seconds family: %+v", reqs)
	}
	if !regexp.MustCompile(`campaignd_leases_total\{event="granted"[^}]*\} [1-9]`).Match(body) {
		t.Error("campaignd_leases_total{event=\"granted\"} not >= 1 after a grant")
	}
	if !regexp.MustCompile(`campaignd_request_seconds_bucket\{[^}]*route="GET /v1/stats"[^}]*le=`).Match(body) &&
		!regexp.MustCompile(`campaignd_request_seconds_bucket\{[^}]*le=[^}]*route="GET /v1/stats"`).Match(body) {
		t.Error("no latency buckets for route \"GET /v1/stats\"")
	}
	if v, ok := prom.Sample("campaignd_build_info"); !ok || v != 1 {
		t.Errorf("campaignd_build_info = %v, %v", v, ok)
	}
	for _, name := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes",
		"campaignd_uptime_seconds", "campaignd_leases_active", "campaignd_store_objects"} {
		if _, ok := prom.Sample(name); !ok {
			t.Errorf("missing %s in exposition", name)
		}
	}
}

// /healthz is pure liveness; /readyz must flip to 503 "draining" while
// the listener is still open (the DrainDelay window), so a
// load-balancer — or this test — can observe the drain before
// connections start failing.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:      store,
		DrainDelay: 2 * time.Second,
		Logger:     obs.LogfLogger(t.Logf),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body strings.Builder
		buf := make([]byte, 512)
		for {
			n, err := resp.Body.Read(buf)
			body.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, body.String()
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz before drain: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, `"ready"`) {
		t.Fatalf("readyz before drain: %d %q", code, body)
	}

	cancel()
	deadline := time.Now().Add(2 * time.Second)
	flipped := false
	for time.Now().Before(deadline) {
		code, body := get("/readyz")
		if code == http.StatusServiceUnavailable && strings.Contains(body, `"draining"`) {
			flipped = true
			// Liveness stays green during the drain window.
			if hcode, _ := get("/healthz"); hcode != 200 {
				t.Errorf("healthz during drain: %d", hcode)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !flipped {
		t.Error("readyz never reported draining while the listener was open")
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// twoUnitSpec is testSpec with two base seeds: two units of the same
// artifact, so one completion leaves one pending — the shape the
// progress/ETA assertions need.
func twoUnitSpec() *campaign.Spec {
	s := testSpec()
	s.BaseSeeds = []int64{1, 2}
	return s
}

// completeLease computes a granted unit and uploads it, asserting a
// clean commit.
func completeLease(t *testing.T, ts string, lr *LeaseResponse) {
	t.Helper()
	unit, err := lr.Lease.Unit.Unit()
	if err != nil {
		t.Fatal(err)
	}
	result, metrics, err := campaign.ComputeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompleteResponse
	doJSON(t, "POST", ts+"/v1/leases/"+lr.Lease.LeaseID+"/complete",
		CompleteRequest{Key: unit.Key, Result: string(result), Metrics: string(metrics)}, &cr, 200)
	if !cr.Committed || cr.LeaseLost {
		t.Fatalf("complete: %+v", cr)
	}
}

// The progress view must learn per-unit wall time from completions
// (EWMA), project an ETA for the remainder, expose the worker fleet,
// and flip Done only when nothing is pending or leased — while the span
// log beside the journal records the full unit lifecycle.
func TestProgressViewETAWorkersAndSpans(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9000, 0)}
	_, ts, store := newTestServer(t, time.Hour, clock)
	var doc CampaignDoc
	doJSON(t, "POST", ts.URL+"/v1/campaigns", twoUnitSpec(), &doc, 200)

	var lr LeaseResponse
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w1"}, &lr, 200)
	if lr.Lease == nil {
		t.Fatalf("lease: %+v", lr)
	}
	clock.advance(5 * time.Second) // the unit "takes" 5s of wall time
	completeLease(t, ts.URL, &lr)

	var prog ProgressDoc
	doJSON(t, "GET", ts.URL+"/v1/progress", nil, &prog, 200)
	if prog.Done {
		t.Error("Done with a unit still pending")
	}
	if len(prog.Campaigns) != 1 {
		t.Fatalf("campaigns: %+v", prog.Campaigns)
	}
	cp := prog.Campaigns[0]
	if cp.Total != 2 || cp.Done != 1 || cp.Pending != 1 || cp.DonePct != 50 {
		t.Fatalf("campaign progress: %+v", cp)
	}
	// One 5s completion, one unit remaining, fleet of one: ETA == EWMA == 5s.
	if len(cp.Artifacts) != 1 || cp.Artifacts[0].UnitSeconds != 5 || cp.Artifacts[0].ETASeconds != 5 {
		t.Fatalf("artifact progress: %+v", cp.Artifacts)
	}
	if cp.ETASeconds != 5 {
		t.Errorf("campaign ETA = %v, want 5", cp.ETASeconds)
	}
	if len(prog.Workers) != 1 || prog.Workers[0].Worker != "w1" ||
		prog.Workers[0].Completed != 1 || prog.Workers[0].ActiveLeases != 0 {
		t.Fatalf("workers: %+v", prog.Workers)
	}

	// Finish the campaign; Done flips and the ETA disappears.
	doJSON(t, "POST", ts.URL+"/v1/campaigns/"+doc.ID+"/lease", LeaseRequest{Worker: "w2"}, &lr, 200)
	if lr.Lease == nil {
		t.Fatalf("second lease: %+v", lr)
	}
	clock.advance(3 * time.Second)
	completeLease(t, ts.URL, &lr)
	var final ProgressDoc
	doJSON(t, "GET", ts.URL+"/v1/progress", nil, &final, 200)
	if !final.Done || final.Campaigns[0].Done != 2 || final.Campaigns[0].ETASeconds != 0 {
		t.Fatalf("final progress: %+v", final.Campaigns[0])
	}
	// EWMA folded the 3s sample into the 5s estimate: 0.3*3 + 0.7*5.
	if got := final.Campaigns[0].Artifacts[0].UnitSeconds; got < 4.3 || got > 4.5 {
		t.Errorf("EWMA after second unit = %v, want ~4.4", got)
	}

	spans, err := campaign.ReadSpans(store.SpanPath())
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, s := range spans {
		count[s.Phase]++
	}
	if count["expand"] != 1 || count["lease"] != 2 || count["upload"] != 2 || count["commit"] != 2 {
		t.Fatalf("span phases: %v (spans: %+v)", count, spans)
	}
	for _, s := range spans {
		if s.Phase == "lease" && (s.Note != "completed" || s.Worker == "") {
			t.Errorf("lease span: %+v", s)
		}
	}
}
