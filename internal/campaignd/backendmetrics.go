package campaignd

import (
	"errors"
	"io/fs"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/obs"
)

// meteredBackend wraps the store's Backend so every persistence
// operation the server performs lands in the registry: an op counter
// split by outcome plus a latency histogram per op. The wrapper is
// transparent — campaignd re-layers the store over it at construction,
// so engine-side users of the same store are unaffected.
type meteredBackend struct {
	inner campaign.Backend
	ops   map[string]*backendOp
}

type backendOp struct {
	ok      *obs.Counter
	miss    *obs.Counter
	errs    *obs.Counter
	latency *obs.Histogram
}

func newMeteredBackend(inner campaign.Backend, reg *obs.Registry) *meteredBackend {
	const opsHelp = "Store backend operations by op and outcome."
	mb := &meteredBackend{inner: inner, ops: make(map[string]*backendOp, 5)}
	for _, op := range []string{"put", "get", "list", "stat", "delete"} {
		outcome := func(v string) *obs.Counter {
			return reg.Counter("campaignd_backend_ops_total", opsHelp,
				obs.Label{Key: "op", Value: op}, obs.Label{Key: "outcome", Value: v})
		}
		mb.ops[op] = &backendOp{
			ok:   outcome("ok"),
			miss: outcome("miss"),
			errs: outcome("error"),
			latency: reg.Histogram("campaignd_backend_op_seconds", "Store backend operation latency by op.", nil,
				obs.Label{Key: "op", Value: op}),
		}
	}
	return mb
}

// observe records one backend call. A not-exist result is a "miss", not
// an error — Has-probes and cache lookups miss routinely. Durations use
// the wall clock directly (not the server's injectable clock): backend
// IO is real even under a test clock, and nothing asserts on the
// measured values.
func (b *meteredBackend) observe(op string, start time.Time, err error) {
	o := b.ops[op]
	o.latency.Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		o.ok.Inc()
	case errors.Is(err, fs.ErrNotExist):
		o.miss.Inc()
	default:
		o.errs.Inc()
	}
}

func (b *meteredBackend) Put(name string, data []byte) error {
	start := time.Now()
	err := b.inner.Put(name, data)
	b.observe("put", start, err)
	return err
}

func (b *meteredBackend) Get(name string) ([]byte, error) {
	start := time.Now()
	data, err := b.inner.Get(name)
	b.observe("get", start, err)
	return data, err
}

func (b *meteredBackend) List(prefix string) ([]string, error) {
	start := time.Now()
	names, err := b.inner.List(prefix)
	b.observe("list", start, err)
	return names, err
}

func (b *meteredBackend) Stat(name string) (campaign.ObjectInfo, error) {
	start := time.Now()
	info, err := b.inner.Stat(name)
	b.observe("stat", start, err)
	return info, err
}

func (b *meteredBackend) Delete(name string) error {
	start := time.Now()
	err := b.inner.Delete(name)
	b.observe("delete", start, err)
	return err
}
