package campaignd

import (
	"sort"
	"sync"
	"time"
)

// ewmaAlpha weights the most recent unit wall-time at 30% — reactive
// enough to track a config change mid-campaign, smooth enough that one
// slow unit does not whipsaw the ETA.
const ewmaAlpha = 0.3

// progressTracker accumulates what the status endpoints cannot recover
// from the store alone: how long units of each artifact actually take
// (EWMA of lease-grant-to-commit wall time) and which workers have been
// doing the work. It is advisory telemetry — a server restart forgets
// it, and the ETAs simply warm up again.
type progressTracker struct {
	mu      sync.Mutex
	now     func() time.Time
	ewma    map[string]float64 // artifact -> smoothed per-unit wall seconds
	workers map[string]*workerRecord
}

type workerRecord struct {
	completed uint64
	failed    uint64
	lastSeen  time.Time
}

func newProgressTracker(now func() time.Time) *progressTracker {
	return &progressTracker{
		now:     now,
		ewma:    make(map[string]float64),
		workers: make(map[string]*workerRecord),
	}
}

func (p *progressTracker) worker(name string) *workerRecord {
	w := p.workers[name]
	if w == nil {
		w = &workerRecord{}
		p.workers[name] = w
	}
	return w
}

// workerSeen refreshes a worker's liveness (lease and heartbeat calls).
func (p *progressTracker) workerSeen(name string) {
	if name == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.worker(name).lastSeen = p.now()
}

// unitCompleted folds one finished unit's wall time into the artifact's
// EWMA and credits the worker.
func (p *progressTracker) unitCompleted(worker, artifact string, wall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sample := wall.Seconds()
	if sample < 0 {
		sample = 0
	}
	if prev, ok := p.ewma[artifact]; ok {
		p.ewma[artifact] = ewmaAlpha*sample + (1-ewmaAlpha)*prev
	} else {
		p.ewma[artifact] = sample
	}
	if worker != "" {
		w := p.worker(worker)
		w.completed++
		w.lastSeen = p.now()
	}
}

// unitFailed debits the worker (the unit's wall time teaches nothing —
// failures are not representative of compute cost).
func (p *progressTracker) unitFailed(worker string) {
	if worker == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.worker(worker)
	w.failed++
	w.lastSeen = p.now()
}

func (p *progressTracker) ewmaSnapshot() map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.ewma))
	for k, v := range p.ewma {
		out[k] = v
	}
	return out
}

// workersDoc renders the fleet table, active lease counts folded in,
// sorted by name for stable output.
func (p *progressTracker) workersDoc(active map[string]int) []WorkerProgress {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	names := make(map[string]bool, len(p.workers)+len(active))
	for name := range p.workers {
		names[name] = true
	}
	for name := range active {
		names[name] = true
	}
	out := make([]WorkerProgress, 0, len(names))
	for name := range names {
		wp := WorkerProgress{Worker: name, ActiveLeases: active[name]}
		if w := p.workers[name]; w != nil {
			wp.Completed = w.completed
			wp.Failed = w.failed
			if !w.lastSeen.IsZero() {
				wp.LastSeenAgoS = now.Sub(w.lastSeen).Seconds()
			}
		}
		out = append(out, wp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// ProgressDoc is the GET /v1/progress body: live completion state with
// ETAs, cheap enough to poll (`campaign status -follow` does, every
// couple of seconds).
type ProgressDoc struct {
	UptimeSeconds float64            `json:"uptime_s"`
	Draining      bool               `json:"draining"`
	Done          bool               `json:"done"` // nothing pending or leased anywhere
	Campaigns     []CampaignProgress `json:"campaigns"`
	Workers       []WorkerProgress   `json:"workers,omitempty"`
}

// CampaignProgress is one campaign's completion state. ETASeconds is
// remaining-units x per-unit EWMA, divided across the live worker
// fleet; zero means unknown (no completed unit has taught the tracker a
// wall time yet).
type CampaignProgress struct {
	ID         string             `json:"id"`
	Total      int                `json:"total"`
	Done       int                `json:"done"`
	Leased     int                `json:"leased"`
	Failed     int                `json:"failed"`
	Screened   int                `json:"screened"`
	Pending    int                `json:"pending"` // includes interrupted units
	DonePct    float64            `json:"done_pct"`
	ETASeconds float64            `json:"eta_s,omitempty"`
	Artifacts  []ArtifactProgress `json:"artifacts"`
}

// ArtifactProgress is the per-artifact slice of a campaign: settled
// units over total, plus the learned per-unit wall time driving the
// ETA. The per-artifact ETA assumes the whole fleet works this artifact
// — optimistic individually, accurate in sum.
type ArtifactProgress struct {
	Artifact    string  `json:"artifact"`
	Total       int     `json:"total"`
	Done        int     `json:"done"`
	UnitSeconds float64 `json:"unit_s,omitempty"` // EWMA wall time per unit
	ETASeconds  float64 `json:"eta_s,omitempty"`
}

// WorkerProgress is one row of the fleet table.
type WorkerProgress struct {
	Worker       string  `json:"worker"`
	ActiveLeases int     `json:"active_leases"`
	Completed    uint64  `json:"completed"`
	Failed       uint64  `json:"failed,omitempty"`
	LastSeenAgoS float64 `json:"last_seen_ago_s"`
}
