package client_test

import (
	"context"
	"encoding/json"
	"io"
	"io/fs"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd"
	"greedy80211/internal/campaignd/client"
	"greedy80211/internal/obs"
)

func TestClientRetriesTransientFailures(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			http.Error(w, "wedged", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ttl_ms":100}`)
	}))
	defer ts.Close()

	c := &client.Client{BaseURL: ts.URL, Retries: 4, RetryBase: time.Millisecond, Logger: obs.LogfLogger(t.Logf)}
	if err := c.Heartbeat(context.Background(), "l1"); err != nil {
		t.Fatalf("heartbeat through transient 500s: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two 500s then success)", got)
	}

	// Exhausted retries surface the underlying error.
	attempts.Store(-100)
	c.Retries = 2
	if err := c.Heartbeat(context.Background(), "l1"); err == nil {
		t.Error("heartbeat against a permanently wedged server succeeded")
	}
}

func TestClientDoesNotRetryDeliberateRejections(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(campaignd.ErrorDoc{Error: "lease expired or unknown"})
	}))
	defer ts.Close()

	c := &client.Client{BaseURL: ts.URL, Retries: 5, RetryBase: time.Millisecond}
	err := c.Heartbeat(context.Background(), "l1")
	if err == nil || !client.IsNotFound(err) {
		t.Fatalf("err = %v, want a not-found API error", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d; 4xx must not be retried", got)
	}
}

// readTree loads every file under dir keyed by relative slash path.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		out[filepath.ToSlash(rel)] = string(b)
		return nil
	})
	if err != nil {
		t.Fatalf("readTree %s: %v", dir, err)
	}
	return out
}

// TestWorkerFanOutEndToEnd is the acceptance test for the serve/compute
// split: a campaign submitted over HTTP, computed by two workers — one
// of which dies mid-unit and has its lease expire and re-issue — must
// assemble byte-identically to a sequential `campaign run`, and a warm
// conditional read of a served result must cost a 304.
func TestWorkerFanOutEndToEnd(t *testing.T) {
	storeDir := t.TempDir()
	store, err := campaign.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := campaignd.New(campaignd.Config{
		Store:    store,
		LeaseTTL: 300 * time.Millisecond, // short so the dead worker's unit re-issues fast
		Logger:   obs.LogfLogger(t.Logf),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	base := "http://" + ln.Addr().String()

	spec := &campaign.Spec{
		Artifacts: []string{"extc", "fig1"},
		Config:    campaign.SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	}
	c := &client.Client{BaseURL: base, Logger: obs.LogfLogger(t.Logf)}
	doc, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Status.Total != 2 || doc.Status.Pending != 2 {
		t.Fatalf("submitted campaign: %+v", doc.Status)
	}

	// Worker 1 takes a lease and dies mid-unit: it never heartbeats,
	// never completes, never even fails — exactly a SIGKILL.
	dead, err := c.Lease(ctx, doc.ID, "doomed-worker")
	if err != nil {
		t.Fatal(err)
	}
	if dead.Lease == nil {
		t.Fatalf("doomed worker got no lease: %+v", dead)
	}

	// Worker 2 runs the real Work loop. It computes the free unit
	// immediately, waits out the dead worker's lease, then computes the
	// re-issued unit too.
	wstats, err := c.Work(ctx, doc.ID, "healthy-worker")
	if err != nil {
		t.Fatalf("work loop: %v (stats %+v)", err, wstats)
	}
	if wstats.Computed != 2 {
		t.Fatalf("healthy worker computed %d units, want 2 (one re-issued); stats %+v", wstats.Computed, wstats)
	}

	doc, err = c.Campaign(ctx, doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Status.Done != 2 {
		t.Fatalf("campaign after fan-out: %+v", doc.Status)
	}

	// The lease fabric must have actually expired and re-issued the
	// doomed worker's unit.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sd campaignd.StatsDoc
	if err := json.NewDecoder(resp.Body).Decode(&sd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sd.Leases.Expired < 1 {
		t.Errorf("no lease expired: %+v", sd.Leases)
	}

	// Assembling from the worker-filled store is pure cache hits and
	// byte-identical to a fresh sequential run of the same spec.
	outHTTP := t.TempDir()
	rep, err := campaign.Run(context.Background(), spec, campaign.Options{Store: store, OutDir: outHTTP})
	if err != nil || len(rep.Failures) > 0 {
		t.Fatalf("assemble: %v / %v", err, rep.Failures)
	}
	if rep.Computed != 0 || rep.CacheHits != 2 {
		t.Fatalf("assemble recomputed: %+v", rep)
	}
	outSeq := t.TempDir()
	seqRep, err := campaign.Run(context.Background(), spec, campaign.Options{StoreDir: t.TempDir(), OutDir: outSeq})
	if err != nil || len(seqRep.Failures) > 0 {
		t.Fatalf("sequential reference: %v / %v", err, seqRep.Failures)
	}
	got, want := readTree(t, outHTTP), readTree(t, outSeq)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("assembled trees differ in shape: %d vs %d files", len(got), len(want))
	}
	for name, wantBody := range want {
		if got[name] != wantBody {
			t.Errorf("%s: worker-computed assembly differs from sequential run", name)
		}
	}

	// Warm conditional read: a second GET with the ETag is a 304.
	key := dead.Lease.Unit.Key
	resp, err = http.Get(base + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cold result read: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest("GET", base+"/v1/results/"+key, nil)
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("warm result read: %d %q", resp2.StatusCode, body)
	}
}
