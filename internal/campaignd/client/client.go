// Package client is the worker-side half of the campaignd lease
// protocol: a small retrying HTTP client plus the Work loop that pulls
// leases, heartbeats while computing, and uploads results. cmd/campaign
// worker and submit are thin wrappers over this package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd"
	"greedy80211/internal/obs"
)

// Client talks to one campaignd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retries is how many times a transiently-failed request is retried
	// (connection errors and 5xx responses). Zero means 4.
	Retries int
	// RetryBase is the first backoff delay; it doubles per attempt.
	// Zero means 100ms.
	RetryBase time.Duration
	// Logger receives structured progress logs; nil discards them.
	// Correlation ids (request, lease) travel in the context and attach
	// to every record automatically.
	Logger *slog.Logger
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) log() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return obs.Discard()
}

// apiError is a non-2xx response the server answered deliberately (the
// request reached the server and was rejected) — not retryable.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Status)
}

// IsNotFound reports whether err is a server-side 404 (expired lease,
// unknown campaign or key).
func IsNotFound(err error) bool {
	var ae *apiError
	if ok := asAPIError(err, &ae); ok {
		return ae.Status == http.StatusNotFound
	}
	return false
}

func asAPIError(err error, target **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// do sends one JSON request and decodes the JSON answer into out,
// retrying connection failures and 5xx responses with doubling backoff.
// 4xx responses are the server speaking; they surface immediately as
// *apiError. Every request carries an X-Request-ID — the one already in
// ctx if the caller set it (obs.WithRequestID), otherwise a fresh id
// shared by all retry attempts — and the server echoes it into its
// access log, so a worker-side failure is one grep away from the
// server-side view of the same request.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 4
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	reqID := obs.RequestID(ctx)
	if reqID == "" {
		reqID = obs.NewID()
		ctx = obs.WithRequestID(ctx, reqID)
	}
	url := strings.TrimRight(c.BaseURL, "/") + path
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
			return err
		}
		req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("X-Request-ID", reqID)
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			resp.Body.Close()
			switch {
			case rerr != nil:
				err = rerr
			case resp.StatusCode >= 500:
				err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, firstLine(data))
			case resp.StatusCode >= 400:
				var ed campaignd.ErrorDoc
				if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
					return &apiError{Status: resp.StatusCode, Msg: ed.Error}
				}
				return &apiError{Status: resp.StatusCode, Msg: firstLine(data)}
			default:
				if out == nil {
					return nil
				}
				return json.Unmarshal(data, out)
			}
		}
		lastErr = err
		if attempt >= retries {
			return fmt.Errorf("%s %s: %w (after %d attempts)", method, path, err, attempt+1)
		}
		c.log().InfoContext(ctx, "retrying request",
			"method", method, "path", path, "error", err, "backoff", backoff)
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// Submit registers a campaign spec and returns the server's view of it.
func (c *Client) Submit(ctx context.Context, spec *campaign.Spec) (*campaignd.CampaignDoc, error) {
	var doc campaignd.CampaignDoc
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Campaign fetches one campaign's status document.
func (c *Client) Campaign(ctx context.Context, id string) (*campaignd.CampaignDoc, error) {
	var doc campaignd.CampaignDoc
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Lease asks for a unit to compute.
func (c *Client) Lease(ctx context.Context, campaignID, worker string) (*campaignd.LeaseResponse, error) {
	var resp campaignd.LeaseResponse
	req := campaignd.LeaseRequest{Worker: worker}
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns/"+campaignID+"/lease", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Heartbeat extends a lease.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/heartbeat", nil, nil)
}

// Complete uploads a computed unit.
func (c *Client) Complete(ctx context.Context, leaseID, key string, result, metrics []byte) (*campaignd.CompleteResponse, error) {
	var resp campaignd.CompleteResponse
	req := campaignd.CompleteRequest{Key: key, Result: string(result), Metrics: string(metrics)}
	if err := c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/complete", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Fail reports that the worker could not compute its leased unit.
func (c *Client) Fail(ctx context.Context, leaseID string, reason error) error {
	req := campaignd.FailRequest{Error: fmt.Sprint(reason)}
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/fail", req, nil)
}

// Progress fetches the server's live completion view (per-campaign
// done/ETA rollups plus the worker fleet table). `campaign status
// -follow` polls this.
func (c *Client) Progress(ctx context.Context) (*campaignd.ProgressDoc, error) {
	var doc campaignd.ProgressDoc
	if err := c.do(ctx, http.MethodGet, "/v1/progress", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Stats fetches the server's operator stats document.
func (c *Client) Stats(ctx context.Context) (*campaignd.StatsDoc, error) {
	var doc campaignd.StatsDoc
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// WorkStats summarizes one Work loop.
type WorkStats struct {
	Computed int // units computed and committed by this worker
	Failed   int // units this worker failed on
	Waited   int // retry-after rounds spent waiting on other workers
}

// DefaultWorkerName names this process for lease attribution.
func DefaultWorkerName() string {
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// Work pulls leases from the campaign until the server says it is done
// or ctx is cancelled. Each leased unit is key-verified against the
// local binary (refusing on module-fingerprint skew), computed with a
// background heartbeat at TTL/3, and uploaded. Compute errors are
// reported via Fail and the loop moves on — the server retires units
// that fail repeatedly. A cancelled ctx abandons the in-flight unit
// silently: its lease expires on the server and the unit is re-issued,
// which is exactly the dead-worker path.
func (c *Client) Work(ctx context.Context, campaignID, worker string) (WorkStats, error) {
	if worker == "" {
		worker = DefaultWorkerName()
	}
	var stats WorkStats
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		resp, err := c.Lease(ctx, campaignID, worker)
		if err != nil {
			return stats, err
		}
		switch {
		case resp.Done:
			if resp.FailedUnits > 0 {
				return stats, fmt.Errorf("campaign exhausted with %d unit(s) failed beyond retry", resp.FailedUnits)
			}
			return stats, nil
		case resp.Lease == nil:
			stats.Waited++
			wait := time.Duration(resp.RetryAfterMs) * time.Millisecond
			if wait <= 0 {
				wait = 500 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		if err := c.computeLease(ctx, resp.Lease, &stats); err != nil {
			return stats, err
		}
	}
}

// computeLease runs one leased unit end to end. The lease id rides the
// context from here on, so every log line — client and server — of this
// unit's compute carries it.
func (c *Client) computeLease(ctx context.Context, grant *campaignd.LeaseGrant, stats *WorkStats) error {
	ctx = obs.WithLeaseID(ctx, grant.LeaseID)
	wu := grant.Unit
	if err := wu.VerifyKey(); err != nil {
		// Version skew: this binary would compute different bytes than
		// the key promises. Refuse loudly — retrying cannot help.
		c.Fail(context.WithoutCancel(ctx), grant.LeaseID, err)
		return err
	}
	unit, err := wu.Unit()
	if err != nil {
		c.Fail(context.WithoutCancel(ctx), grant.LeaseID, err)
		return err
	}

	// Heartbeat at a third of the TTL while the simulation runs.
	ttl := time.Duration(grant.TTLMs) * time.Millisecond
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	hbLost := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := c.Heartbeat(hbCtx, grant.LeaseID); err != nil && IsNotFound(err) {
					close(hbLost)
					return
				}
			}
		}
	}()

	c.log().InfoContext(ctx, "computing unit", "unit", wu.Name, "key", wu.Key[:12])
	result, metrics, err := campaign.ComputeUnit(unit)
	stopHB()
	if err != nil {
		stats.Failed++
		c.log().WarnContext(ctx, "unit failed", "unit", wu.Name, "error", err)
		if ferr := c.Fail(context.WithoutCancel(ctx), grant.LeaseID, err); ferr != nil && !IsNotFound(ferr) {
			return ferr
		}
		return nil
	}
	select {
	case <-hbLost:
		// The server already expired this lease; upload anyway — the
		// commit is idempotent and the server accepts late uploads.
		c.log().InfoContext(ctx, "lease expired mid-compute; uploading late", "unit", wu.Name)
	default:
	}
	cresp, err := c.Complete(ctx, grant.LeaseID, wu.Key, result, metrics)
	if err != nil {
		return fmt.Errorf("uploading %s: %w", wu.Name, err)
	}
	stats.Computed++
	if cresp.LeaseLost {
		c.log().InfoContext(ctx, "committed after lease loss (still counted)", "unit", wu.Name)
	} else {
		c.log().InfoContext(ctx, "committed unit", "unit", wu.Name)
	}
	return nil
}
