package client_test

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd"
	"greedy80211/internal/campaignd/client"
	"greedy80211/internal/obs"
)

// syncBuffer lets the server's handler goroutines and the test share a
// log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// A request id set on the worker's context must ride the X-Request-ID
// header into the server's access log, and the lease id minted by the
// server must come back and scope the client's own compute logs — the
// full correlation round trip, verified over a real lease→complete
// cycle through both binaries' logging stacks.
func TestCorrelationIDsPropagateClientToServer(t *testing.T) {
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var serverLog syncBuffer
	logger, err := obs.NewLogger(&serverLog, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := campaignd.New(campaignd.Config{Store: store, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	var clientLog syncBuffer
	clogger, err := obs.NewLogger(&clientLog, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	c := &client.Client{BaseURL: ts.URL, Logger: clogger}

	const reqID = "corr-roundtrip-0123"
	ctx := obs.WithRequestID(context.Background(), reqID)
	spec := &campaign.Spec{
		Artifacts: []string{"tab3"},
		Config:    campaign.SpecConfig{Seeds: 1, Duration: "100ms", Quick: true},
	}
	doc, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	wstats, err := c.Work(ctx, doc.ID, "w-obs")
	if err != nil || wstats.Computed != 1 {
		t.Fatalf("work: %+v, %v", wstats, err)
	}

	srvLines := serverLog.String()
	if !regexp.MustCompile(`"request_id":"` + reqID + `"`).MatchString(srvLines) {
		t.Errorf("server access log never saw the client's request id %q:\n%s", reqID, srvLines)
	}
	// The lease id the client logged its compute under must be the same
	// one the server granted and committed.
	m := regexp.MustCompile(`"lease_id":"([A-Za-z0-9_.-]+)"`).FindStringSubmatch(clientLog.String())
	if m == nil {
		t.Fatalf("client log carries no lease id:\n%s", clientLog.String())
	}
	if !regexp.MustCompile(`"msg":"committed unit".*"lease_id":"` + m[1] + `"`).MatchString(srvLines) {
		t.Errorf("server commit log does not carry lease id %s:\n%s", m[1], srvLines)
	}

	// Header echo: a well-formed caller-supplied id comes back verbatim;
	// garbage is replaced with a fresh server-minted one.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-ID", "my.custom-ID_42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "my.custom-ID_42" {
		t.Errorf("valid id not echoed: %q", got)
	}
	req, _ = http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-ID", "bad id with spaces!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" || got == "bad id with spaces!" {
		t.Errorf("invalid id not replaced: %q", got)
	}
}
