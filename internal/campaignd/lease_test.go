package campaignd

import (
	"testing"
	"time"

	"greedy80211/internal/campaign"
)

// fakeClock is a hand-advanced clock for deterministic lease-expiry
// tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func leaseUnit(key string) campaign.Unit {
	return campaign.Unit{Artifact: "fig1", Key: key}
}

func TestLeaseTableGrantHeartbeatExpiry(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	lt := newLeaseTable(30*time.Second, clock.now)

	l := lt.Grant("c1", leaseUnit("k1"), "fig1/s0", "w1")
	if l == nil || l.Worker != "w1" {
		t.Fatalf("grant: %+v", l)
	}
	// The key is held: a second grant is refused while the lease lives.
	if dup := lt.Grant("c1", leaseUnit("k1"), "fig1/s0", "w2"); dup != nil {
		t.Fatalf("double grant of a live key: %+v", dup)
	}
	if !lt.HasKey("k1") {
		t.Fatal("HasKey after grant")
	}

	// Heartbeats keep pushing the deadline: 25s + 25s on a 30s TTL
	// crosses the original deadline without expiring.
	clock.advance(25 * time.Second)
	if ttl, worker, ok := lt.Heartbeat(l.ID); !ok || ttl != 30*time.Second || worker != "w1" {
		t.Fatalf("heartbeat: %v, %q, %v", ttl, worker, ok)
	}
	clock.advance(25 * time.Second)
	if dead := lt.Sweep(); len(dead) != 0 {
		t.Fatalf("sweep reaped a heartbeating lease: %+v", dead)
	}

	// Silence past the TTL expires it; the key becomes grantable again.
	clock.advance(31 * time.Second)
	dead := lt.Sweep()
	if len(dead) != 1 || dead[0].ID != l.ID {
		t.Fatalf("sweep: %+v", dead)
	}
	if _, _, ok := lt.Heartbeat(l.ID); ok {
		t.Fatal("heartbeat on a swept lease succeeded")
	}
	if lt.HasKey("k1") {
		t.Fatal("HasKey after expiry")
	}
	l2 := lt.Grant("c1", leaseUnit("k1"), "fig1/s0", "w2")
	if l2 == nil || l2.ID == l.ID {
		t.Fatalf("re-grant after expiry: %+v", l2)
	}
}

func TestLeaseTableRemoveLiveVsExpired(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	lt := newLeaseTable(10*time.Second, clock.now)

	l := lt.Grant("c1", leaseUnit("k1"), "u", "w")
	if got, live := lt.Remove(l.ID); got == nil || !live {
		t.Fatalf("remove live: %+v, %v", got, live)
	}
	if _, ok := lt.Remove(l.ID); ok {
		t.Fatal("double remove reported live")
	}

	// An expired-but-unswept lease removes as not-live: the server
	// counts its completion as late.
	l2 := lt.Grant("c1", leaseUnit("k2"), "u", "w")
	clock.advance(11 * time.Second)
	if got, live := lt.Remove(l2.ID); got == nil || live {
		t.Fatalf("remove expired: %+v, live=%v", got, live)
	}
}

func TestLeaseTableSnapshotOldestFirst(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	lt := newLeaseTable(time.Minute, clock.now)

	lt.Grant("c1", leaseUnit("k1"), "u1", "w1")
	clock.advance(5 * time.Second)
	lt.Grant("c1", leaseUnit("k2"), "u2", "w2")
	clock.advance(5 * time.Second)

	snap := lt.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap[0].Key != "k1" || snap[1].Key != "k2" {
		t.Errorf("snapshot order: %+v", snap)
	}
	if snap[0].AgeSeconds != 10 || snap[1].AgeSeconds != 5 {
		t.Errorf("ages: %+v", snap)
	}
	keys := lt.leasedKeys()
	if !keys["k1"] || !keys["k2"] || len(keys) != 2 {
		t.Errorf("leasedKeys: %v", keys)
	}

	// Expired leases drop out of both views without a sweep.
	clock.advance(time.Minute)
	if snap := lt.Snapshot(); len(snap) != 0 {
		t.Errorf("snapshot after expiry: %+v", snap)
	}
	if keys := lt.leasedKeys(); len(keys) != 0 {
		t.Errorf("leasedKeys after expiry: %v", keys)
	}
}
