package campaignd

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/experiments"
	"greedy80211/internal/obs"
	"greedy80211/internal/report"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
)

// routes wires the versioned REST surface. Every handler is wrapped
// with the route tag its latency is accounted under — requests the mux
// never matches keep an empty tag and collapse into the single
// "unmatched" key in Handler (bounded cardinality).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("GET /v1/campaigns", s.handleCampaignList)
	handle("POST /v1/campaigns", s.handleCampaignSubmit)
	handle("GET /v1/campaigns/{id}", s.handleCampaignStatus)
	handle("POST /v1/campaigns/{id}/lease", s.handleLease)
	handle("POST /v1/leases/{id}/heartbeat", s.handleHeartbeat)
	handle("POST /v1/leases/{id}/complete", s.handleComplete)
	handle("POST /v1/leases/{id}/fail", s.handleFail)
	handle("GET /v1/results/{key}", s.handleResult)
	handle("GET /v1/metrics/{key}", s.handleMetrics)
	handle("GET /v1/meta/{key}", s.handleMeta)
	handle("GET /v1/verdicts", s.handleVerdicts)
	handle("GET /v1/traces/{key}", s.handleTraces)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/progress", s.handleProgress)
	handle("GET /metrics", s.handleMetricsExposition)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /readyz", s.handleReadyz)
	return mux
}

// instrument tags the response recorder with the matched pattern;
// observation itself happens once, in Handler, after the mux returns.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rec, ok := w.(*statusRecorder); ok {
			rec.route = pattern
		}
		h(w, r)
	}
}

// writeJSON is the one response codec: indented JSON plus a trailing
// newline, the same rendering `campaign status -json` prints.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorDoc{Error: fmt.Sprintf(format, args...)})
}

// httpError lets deep helpers pick the response status (e.g. 409 for a
// module-fingerprint conflict) without plumbing http through them.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// readJSON decodes a request body, rejecting unknown fields.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// serveBlob writes immutable content-addressed bytes with a strong ETag.
// If the client already holds the bytes (If-None-Match), it gets a 304
// and the server never touches the payload — the warm-reader fast path
// the store's sha256 addressing buys.
func (s *Server) serveBlob(w http.ResponseWriter, r *http.Request, etag, contentType string, body func() ([]byte, error)) {
	quoted := `"` + etag + `"`
	w.Header().Set("ETag", quoted)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, quoted) {
		s.stats.blobNotModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := body()
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.stats.blobMissing.Add(1)
			writeErr(w, http.StatusNotFound, "no such object")
			return
		}
		var he *httpError
		if errors.As(err, &he) {
			writeErr(w, he.code, "%s", he.msg)
			return
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.stats.blobServed.Add(1)
	w.Header().Set("Content-Type", contentType)
	w.Write(data)
}

// --- campaigns ---

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	sums, err := s.campaignSummaries()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CampaignList{Campaigns: sums})
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	if err := readJSON(r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, "parsing spec: %v", err)
		return
	}
	id, err := s.Register(&spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	doc, err := s.campaignDoc(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) campaignDoc(id string) (*CampaignDoc, error) {
	st := s.campaignByID(id)
	if st == nil {
		return nil, nil
	}
	status, err := s.statusDoc(st)
	if err != nil {
		return nil, err
	}
	return &CampaignDoc{ID: id, Artifacts: artifactsOf(st.units), Status: status}, nil
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	doc, err := s.campaignDoc(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if doc == nil {
		writeErr(w, http.StatusNotFound, "no such campaign")
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// --- leases ---

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	st := s.campaignByID(r.PathValue("id"))
	if st == nil {
		writeErr(w, http.StatusNotFound, "no such campaign")
		return
	}
	var req LeaseRequest
	if err := readJSON(r, &req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Worker == "" {
		req.Worker = "anonymous"
	}
	s.progress.workerSeen(req.Worker)
	if dead := s.leases.Sweep(); len(dead) > 0 {
		s.stats.leasesExpired.Add(uint64(len(dead)))
		now := s.now()
		for _, l := range dead {
			s.spans.Append(campaign.Span{
				Unit: l.UnitName, Key: l.Unit.Key, Artifact: l.Unit.Artifact,
				Phase: "lease", Worker: l.Worker,
				StartUnixNs: l.Granted.UnixNano(), EndUnixNs: now.UnixNano(),
				Note: "expired",
			})
		}
		s.logger.InfoContext(r.Context(), "leases expired; units re-issuable", "count", len(dead))
	}
	remaining, failed := 0, 0
	for _, u := range st.units {
		if s.store.Has(u.Key) {
			continue
		}
		if s.failureCount(st, u.Key) >= s.cfg.MaxUnitFailures {
			failed++
			continue
		}
		remaining++
		l := s.leases.Grant(st.id, u, u.Name(), req.Worker)
		if l == nil {
			continue // live lease held by someone else
		}
		s.journal.Append(campaign.Record{Op: "start", Key: u.Key, Artifact: u.Artifact, BaseSeed: u.BaseSeed})
		s.stats.leasesGranted.Add(1)
		s.logger.InfoContext(obs.WithLeaseID(r.Context(), l.ID), "leased unit",
			"unit", u.Name(), "key", u.Key[:12], "worker", req.Worker)
		writeJSON(w, http.StatusOK, LeaseResponse{Lease: &LeaseGrant{
			LeaseID:    l.ID,
			CampaignID: st.id,
			TTLMs:      s.cfg.LeaseTTL.Milliseconds(),
			Unit:       wireUnit(u),
		}})
		return
	}
	if remaining == 0 {
		writeJSON(w, http.StatusOK, LeaseResponse{Done: true, FailedUnits: failed})
		return
	}
	// Everything left is leased out; suggest coming back around half a
	// TTL later (bounded below so a tiny test TTL can't busy-spin).
	retry := s.cfg.LeaseTTL / 2
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	writeJSON(w, http.StatusOK, LeaseResponse{RetryAfterMs: retry.Milliseconds()})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	ttl, worker, ok := s.leases.Heartbeat(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "lease expired or unknown")
		return
	}
	s.progress.workerSeen(worker)
	writeJSON(w, http.StatusOK, HeartbeatResponse{TTLMs: ttl.Milliseconds()})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	uploadStart := s.now()
	var req CompleteRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	leaseID := r.PathValue("id")
	ctx := obs.WithLeaseID(r.Context(), leaseID)
	l, live := s.leases.Remove(leaseID)
	var unit campaign.Unit
	switch {
	case l != nil:
		unit = l.Unit
		if req.Key != "" && req.Key != unit.Key {
			writeErr(w, http.StatusConflict, "uploaded key %s does not match leased unit %s", req.Key, unit.Key)
			return
		}
	default:
		// The lease is gone (expired and swept, or the server
		// restarted). The bytes are still valid if the key names a
		// registered unit — content addressing makes any correct
		// computation of the unit interchangeable.
		var ok bool
		if unit, ok = s.unitByKey(req.Key); !ok {
			writeErr(w, http.StatusNotFound, "lease unknown and key matches no registered unit")
			return
		}
	}
	result, metrics := []byte(req.Result), []byte(req.Metrics)
	if err := campaign.CheckPayloads(result, metrics); err != nil {
		s.stats.leasesFailed.Add(1)
		writeErr(w, http.StatusUnprocessableEntity, "rejecting upload: %v", err)
		return
	}
	worker := ""
	if l != nil {
		worker = l.Worker
	}
	uploadEnd := s.now()
	s.spans.Append(campaign.Span{
		Unit: unit.Name(), Key: unit.Key, Artifact: unit.Artifact,
		Phase: "upload", Worker: worker,
		StartUnixNs: uploadStart.UnixNano(), EndUnixNs: uploadEnd.UnixNano(),
	})
	if err := s.store.Put(metaFor(unit, s.module), result, metrics); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	commitEnd := s.now()
	s.spans.Append(campaign.Span{
		Unit: unit.Name(), Key: unit.Key, Artifact: unit.Artifact,
		Phase: "commit", Worker: worker,
		StartUnixNs: uploadEnd.UnixNano(), EndUnixNs: commitEnd.UnixNano(),
	})
	s.journal.Append(campaign.Record{Op: "done", Key: unit.Key, Artifact: unit.Artifact, BaseSeed: unit.BaseSeed})
	lost := l == nil || !live
	if lost {
		s.stats.lateCompletes.Add(1)
	} else {
		s.stats.leasesCompleted.Add(1)
	}
	if l != nil {
		s.spans.Append(campaign.Span{
			Unit: unit.Name(), Key: unit.Key, Artifact: unit.Artifact,
			Phase: "lease", Worker: l.Worker,
			StartUnixNs: l.Granted.UnixNano(), EndUnixNs: commitEnd.UnixNano(),
			Note: map[bool]string{true: "late", false: "completed"}[lost],
		})
		if !lost {
			s.progress.unitCompleted(l.Worker, unit.Artifact, commitEnd.Sub(l.Granted))
		}
	}
	s.logger.InfoContext(ctx, "committed unit",
		"artifact", unit.Artifact, "key", unit.Key[:12], "worker", worker, "lease_lost", lost)
	writeJSON(w, http.StatusOK, CompleteResponse{Committed: true, LeaseLost: lost})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := readJSON(r, &req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	l, _ := s.leases.Remove(r.PathValue("id"))
	if l == nil {
		writeErr(w, http.StatusNotFound, "lease expired or unknown")
		return
	}
	s.stats.leasesFailed.Add(1)
	s.progress.unitFailed(l.Worker)
	st := s.campaignByID(l.CampaignID)
	count := 0
	if st != nil {
		count = s.recordFailure(st, l.Unit.Key)
	}
	s.spans.Append(campaign.Span{
		Unit: l.UnitName, Key: l.Unit.Key, Artifact: l.Unit.Artifact,
		Phase: "lease", Worker: l.Worker,
		StartUnixNs: l.Granted.UnixNano(), EndUnixNs: s.now().UnixNano(),
		Note: "failed: " + req.Error,
	})
	s.logger.InfoContext(obs.WithLeaseID(r.Context(), l.ID), "worker failed unit",
		"worker", l.Worker, "unit", l.UnitName, "attempt", count, "error", req.Error)
	writeJSON(w, http.StatusOK, struct {
		Failures int  `json:"failures"`
		GivenUp  bool `json:"given_up"`
	}{count, count >= s.cfg.MaxUnitFailures})
}

// --- content-addressed reads ---

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.serveBlob(w, r, key+"/result", "application/json", func() ([]byte, error) {
		return s.store.GetResult(key)
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.serveBlob(w, r, key+"/metrics", "application/json", func() ([]byte, error) {
		return s.store.GetMetrics(key)
	})
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.serveBlob(w, r, key+"/meta", "application/json", func() ([]byte, error) {
		meta, err := s.store.GetMeta(key)
		if err != nil {
			return nil, err
		}
		b, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	})
}

// --- verdicts ---

// handleVerdicts evaluates the reproduction gate read-only against the
// store (never simulating) and serves the verdicts document — the same
// codec cmd/report writes to verdicts.json. The ETag is the sha256 of
// the body, so pollers watching a stable store get 304s.
func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	sets, err := s.refSets()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	rep, err := report.FromStore(r.Context(), sets, s.store, false, io.Discard)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := report.WriteVerdicts(&buf, rep); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sum := sha256.Sum256(buf.Bytes())
	s.serveBlob(w, r, hex.EncodeToString(sum[:]), "application/json", func() ([]byte, error) {
		return buf.Bytes(), nil
	})
}

// --- trace renders ---

// handleTraces serves a flight-recorder render of the unit behind key.
// The render is deterministic (same seeds, same config, probes perturb
// nothing), so it is computed at most once: the first request simulates
// and caches the bytes in the backend under traces/<key>/<format>, and
// every later request — across server restarts — is a pure read.
// Formats: "timeline" (ASCII, default) and "jsonl" (concatenated
// per-world JSONL streams).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "timeline"
	}
	contentType := "text/plain; charset=utf-8"
	if format == "jsonl" {
		contentType = "application/x-ndjson"
	} else if format != "timeline" {
		writeErr(w, http.StatusBadRequest, "unknown format %q (want timeline or jsonl)", format)
		return
	}
	if len(key) < 2 {
		writeErr(w, http.StatusNotFound, "no such object")
		return
	}
	cacheName := "traces/" + key[:2] + "/" + key + "/" + format
	s.serveBlob(w, r, key+"/trace-"+format, contentType, func() ([]byte, error) {
		if data, err := s.store.Backend().Get(cacheName); err == nil {
			s.stats.tracesCached.Add(1)
			return data, nil
		}
		data, err := s.renderTrace(key, format)
		if err != nil {
			return nil, err
		}
		// Cache for every later reader; a failed cache write only costs
		// the next request a re-render.
		if err := s.store.Backend().Put(cacheName, data); err != nil {
			s.logger.Warn("caching trace render failed", "object", cacheName, "error", err)
		}
		s.stats.tracesRendered.Add(1)
		return data, nil
	})
}

// renderTrace re-simulates the stored unit with a flight recorder
// attached and renders the recordings. The unit's meta names the exact
// artifact and normalized config; the module fingerprint must match this
// binary's, otherwise the re-simulation would not reproduce the stored
// result and the render would lie about it.
func (s *Server) renderTrace(key, format string) ([]byte, error) {
	meta, err := s.store.GetMeta(key)
	if err != nil {
		return nil, err
	}
	if meta.Module != s.module {
		return nil, &httpError{
			code: http.StatusConflict,
			msg: fmt.Sprintf("entry %s was computed by module %q, this server is %q; refusing to render a trace that would not match the stored result",
				key[:12], meta.Module, s.module),
		}
	}
	coll := trace.NewCollector(0)
	rc := experiments.RunConfig{
		Seeds:    meta.Seeds,
		BaseSeed: meta.BaseSeed,
		Duration: sim.Time(meta.DurationNs),
		Quick:    meta.Quick,
		Trace:    coll,
	}
	if _, err := experiments.Run(meta.Artifact, rc); err != nil {
		return nil, fmt.Errorf("campaignd: tracing %s: %w", meta.Artifact, err)
	}
	var buf bytes.Buffer
	if len(coll.Recordings()) == 0 && format != "jsonl" {
		// Analytic artifacts run no simulated worlds; say so instead of
		// serving a confusing empty render. (JSONL stays empty — zero
		// lines is the honest encoding there.)
		fmt.Fprintf(&buf, "%s: no trace recordings (analytic artifact, no simulated worlds)\n", meta.Artifact)
	}
	for i, rec := range coll.Recordings() {
		rmeta := rec.Meta(meta.Artifact)
		events := rec.Recorder.Events()
		switch format {
		case "jsonl":
			if err := trace.WriteJSONL(&buf, rmeta, events); err != nil {
				return nil, err
			}
		default:
			fmt.Fprintf(&buf, "=== %s run %d seed %d ===\n", meta.Artifact, i, rec.Seed)
			buf.WriteString(trace.RenderTimeline(rmeta, events, 0, 0, 120))
		}
	}
	return buf.Bytes(), nil
}

// --- stats ---

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	keys, err := s.store.Keys()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mu.Lock()
	nCampaigns := len(s.campaigns)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.stats.doc(s.now(), nCampaigns, len(keys), s.leases.Snapshot()))
}

// --- observability surface ---

// handleMetricsExposition serves the registry as Prometheus text
// exposition format v0.0.4 — the dependency-free rendering obs
// implements. Rendered into a buffer first so a slow client cannot hold
// registry snapshots open.
func (s *Server) handleMetricsExposition(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.stats.reg.WritePrometheus(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: 503 while draining (before the listener
// closes, so pollers see the drain coming) or when the store stops
// answering; 200 with the object count otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyDoc{Status: "draining"})
		return
	}
	keys, err := s.store.Keys()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, ReadyDoc{Status: "store-unreachable", Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ReadyDoc{Status: "ready", StoreObjects: len(keys)})
}

// handleProgress serves the live completion view: per-campaign and
// per-artifact done counts, ETAs from the learned per-unit wall times,
// and the worker fleet table.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()

	live := s.leases.Snapshot()
	activeByWorker := make(map[string]int)
	for _, l := range live {
		activeByWorker[l.Worker]++
	}
	fleet := len(activeByWorker)
	if fleet == 0 {
		fleet = 1 // ETA assumes at least a sequential worker
	}
	ewma := s.progress.ewmaSnapshot()

	doc := ProgressDoc{
		UptimeSeconds: s.now().Sub(s.stats.start).Seconds(),
		Draining:      s.draining.Load(),
		Done:          len(ids) > 0,
		Campaigns:     make([]CampaignProgress, 0, len(ids)),
		Workers:       s.progress.workersDoc(activeByWorker),
	}
	for _, id := range ids {
		st := s.campaignByID(id)
		if st == nil {
			continue
		}
		status, err := s.statusDoc(st)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		cp := CampaignProgress{
			ID:       id,
			Total:    status.Total,
			Done:     status.Done,
			Leased:   status.Leased,
			Failed:   status.Failed,
			Screened: status.Screened,
			Pending:  status.Pending + status.Interrupted,
		}
		if cp.Total > 0 {
			settled := cp.Done + cp.Failed + cp.Screened
			cp.DonePct = 100 * float64(settled) / float64(cp.Total)
		}
		// Per-artifact rollup in first-seen (work-list) order.
		var order []string
		byArtifact := make(map[string]*ArtifactProgress)
		remaining := make(map[string]int)
		for _, u := range status.Units {
			ap := byArtifact[u.Artifact]
			if ap == nil {
				ap = &ArtifactProgress{Artifact: u.Artifact}
				byArtifact[u.Artifact] = ap
				order = append(order, u.Artifact)
			}
			ap.Total++
			switch u.State {
			case campaign.UnitDone, campaign.UnitScreened, campaign.UnitFailed:
				ap.Done++
			default:
				remaining[u.Artifact]++
			}
		}
		for _, a := range order {
			ap := byArtifact[a]
			ap.UnitSeconds = ewma[a]
			if n := remaining[a]; n > 0 && ap.UnitSeconds > 0 {
				ap.ETASeconds = float64(n) * ap.UnitSeconds / float64(fleet)
			}
			cp.ETASeconds += ap.ETASeconds
			cp.Artifacts = append(cp.Artifacts, *ap)
		}
		if cp.Pending+cp.Leased > 0 {
			doc.Done = false
		}
		doc.Campaigns = append(doc.Campaigns, cp)
	}
	writeJSON(w, http.StatusOK, doc)
}
