package campaignd

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	"greedy80211/internal/obs"
)

// serverStats is the observability surface behind both GET /v1/stats
// (operator JSON) and GET /metrics (Prometheus text). Everything is
// backed by one obs.Registry — the JSON document is a view over the
// same counters and histograms the exposition serves, so the two can
// never disagree. Route series are keyed by the registered pattern
// (unmatched requests collapse to "unmatched"), so cardinality stays
// bounded no matter what paths clients probe.
type serverStats struct {
	start  time.Time
	module string
	reg    *obs.Registry

	blobServed      *obs.Counter // 200s off the store (results/metrics/meta/traces/verdicts)
	blobNotModified *obs.Counter // 304s — the warm-reader fast path
	blobMissing     *obs.Counter // 404s for absent keys

	leasesGranted   *obs.Counter
	leasesExpired   *obs.Counter
	leasesCompleted *obs.Counter
	leasesFailed    *obs.Counter
	lateCompletes   *obs.Counter // uploads whose lease had already expired

	tracesRendered *obs.Counter // simulated on demand
	tracesCached   *obs.Counter // served from the backend render cache

	mu     sync.Mutex
	routes map[string]*routeStats
}

// routeStats is one route's latency series: the histogram carries
// count/sum/distribution for /metrics, the max rides alongside for the
// JSON view (a histogram cannot recover it).
type routeStats struct {
	hist   *obs.Histogram
	errors *obs.Counter
	maxNs  int64
}

const (
	helpRequests = "Request latency by registered route pattern."
	helpErrors   = "Responses with status >= 400 by route pattern."
)

func newServerStats(start time.Time, module string) *serverStats {
	reg := obs.NewRegistry(
		obs.Label{Key: "module", Value: module},
		obs.Label{Key: "go_version", Value: runtime.Version()},
	)
	reg.Gauge("campaignd_build_info",
		"Constant 1; build identity is carried by the module/go_version labels.").Set(1)
	obs.RegisterRuntimeMetrics(reg)
	leases := func(event string) *obs.Counter {
		return reg.Counter("campaignd_leases_total", "Lease-fabric events by type.",
			obs.Label{Key: "event", Value: event})
	}
	reads := func(result string) *obs.Counter {
		return reg.Counter("campaignd_store_reads_total", "Content-addressed reads by outcome.",
			obs.Label{Key: "result", Value: result})
	}
	renders := func(source string) *obs.Counter {
		return reg.Counter("campaignd_trace_renders_total", "Trace renders by source.",
			obs.Label{Key: "source", Value: source})
	}
	return &serverStats{
		start:           start,
		module:          module,
		reg:             reg,
		blobServed:      reads("served"),
		blobNotModified: reads("not_modified"),
		blobMissing:     reads("missing"),
		leasesGranted:   leases("granted"),
		leasesExpired:   leases("expired_reissued"),
		leasesCompleted: leases("completed"),
		leasesFailed:    leases("failed"),
		lateCompletes:   leases("late_complete"),
		tracesRendered:  renders("simulated"),
		tracesCached:    renders("cache"),
		routes:          make(map[string]*routeStats),
	}
}

func (s *serverStats) observe(route string, status int, d time.Duration) {
	s.mu.Lock()
	rs := s.routes[route]
	if rs == nil {
		rs = &routeStats{
			hist: s.reg.Histogram("campaignd_request_seconds", helpRequests, nil,
				obs.Label{Key: "route", Value: route}),
			errors: s.reg.Counter("campaignd_request_errors_total", helpErrors,
				obs.Label{Key: "route", Value: route}),
		}
		s.routes[route] = rs
	}
	if ns := d.Nanoseconds(); ns > rs.maxNs {
		rs.maxNs = ns
	}
	s.mu.Unlock()
	rs.hist.Observe(d.Seconds())
	if status >= 400 {
		rs.errors.Inc()
	}
}

// RouteDoc is one route's latency summary in StatsDoc.
type RouteDoc struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors,omitempty"`
	AvgMs  float64 `json:"avg_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// StatsDoc is the GET /v1/stats body.
type StatsDoc struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Campaigns     int     `json:"campaigns"`
	StoreObjects  int     `json:"store_objects"`
	Build         struct {
		Module    string `json:"module"`
		GoVersion string `json:"go_version"`
	} `json:"build"`
	Cache struct {
		Served      uint64  `json:"served"`
		NotModified uint64  `json:"not_modified"`
		Missing     uint64  `json:"missing"`
		HitRate     float64 `json:"hit_rate"` // 304s over all found reads
	} `json:"cache"`
	Leases struct {
		Active        int         `json:"active"`
		OldestAgeS    float64     `json:"oldest_age_s"`
		Granted       uint64      `json:"granted"`
		Expired       uint64      `json:"expired_reissued"`
		Completed     uint64      `json:"completed"`
		Failed        uint64      `json:"failed"`
		LateCompletes uint64      `json:"late_completes"`
		Live          []LeaseInfo `json:"live,omitempty"`
	} `json:"leases"`
	Traces struct {
		Rendered uint64 `json:"rendered"`
		Cached   uint64 `json:"cached"`
	} `json:"traces"`
	Requests map[string]RouteDoc `json:"requests"`
}

func (s *serverStats) doc(now time.Time, campaigns, storeObjects int, live []LeaseInfo) *StatsDoc {
	d := &StatsDoc{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Campaigns:     campaigns,
		StoreObjects:  storeObjects,
		Requests:      make(map[string]RouteDoc),
	}
	d.Build.Module = s.module
	d.Build.GoVersion = runtime.Version()
	d.Cache.Served = s.blobServed.Value()
	d.Cache.NotModified = s.blobNotModified.Value()
	d.Cache.Missing = s.blobMissing.Value()
	if total := d.Cache.Served + d.Cache.NotModified; total > 0 {
		d.Cache.HitRate = float64(d.Cache.NotModified) / float64(total)
	}
	d.Leases.Active = len(live)
	if len(live) > 0 {
		d.Leases.OldestAgeS = live[0].AgeSeconds
	}
	d.Leases.Granted = s.leasesGranted.Value()
	d.Leases.Expired = s.leasesExpired.Value()
	d.Leases.Completed = s.leasesCompleted.Value()
	d.Leases.Failed = s.leasesFailed.Value()
	d.Leases.LateCompletes = s.lateCompletes.Value()
	d.Leases.Live = live
	d.Traces.Rendered = s.tracesRendered.Value()
	d.Traces.Cached = s.tracesCached.Value()
	s.mu.Lock()
	for route, rs := range s.routes {
		snap := rs.hist.Snapshot()
		doc := RouteDoc{Count: snap.Count, Errors: rs.errors.Value(), MaxMs: float64(rs.maxNs) / 1e6}
		if snap.Count > 0 {
			doc.AvgMs = snap.Sum / float64(snap.Count) * 1e3
		}
		d.Requests[route] = doc
	}
	s.mu.Unlock()
	return d
}

// statusRecorder captures the response code, byte count, and — set by
// the per-pattern instrument — which registered route matched, for
// latency accounting and access logs. A request no pattern claimed
// leaves route empty and is accounted as "unmatched".
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	route  string
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}
