package campaignd

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// serverStats is the expvar-style observability surface behind
// GET /v1/stats: cache effectiveness (how many reads the
// content-addressed ETags turned into 304s), lease-fabric health
// (grants, expiries, re-issues, live lease ages), and per-route request
// latencies. Counters are atomics; the route map is guarded by a mutex
// and keyed by the registered pattern, not the raw URL, so cardinality
// stays bounded.
type serverStats struct {
	start time.Time

	blobServed      atomic.Uint64 // 200s off the store (results/metrics/meta/traces/verdicts)
	blobNotModified atomic.Uint64 // 304s — the warm-reader fast path
	blobMissing     atomic.Uint64 // 404s for absent keys

	leasesGranted   atomic.Uint64
	leasesExpired   atomic.Uint64
	leasesCompleted atomic.Uint64
	leasesFailed    atomic.Uint64
	lateCompletes   atomic.Uint64 // uploads whose lease had already expired

	tracesRendered atomic.Uint64 // simulated on demand
	tracesCached   atomic.Uint64 // served from the backend render cache

	mu     sync.Mutex
	routes map[string]*routeStats
}

type routeStats struct {
	Count   uint64
	Errors  uint64 // responses with status >= 400
	TotalNs int64
	MaxNs   int64
}

func newServerStats(now time.Time) *serverStats {
	return &serverStats{start: now, routes: make(map[string]*routeStats)}
}

func (s *serverStats) observe(route string, status int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.routes[route]
	if rs == nil {
		rs = &routeStats{}
		s.routes[route] = rs
	}
	rs.Count++
	if status >= 400 {
		rs.Errors++
	}
	ns := d.Nanoseconds()
	rs.TotalNs += ns
	if ns > rs.MaxNs {
		rs.MaxNs = ns
	}
}

// RouteDoc is one route's latency summary in StatsDoc.
type RouteDoc struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors,omitempty"`
	AvgMs  float64 `json:"avg_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// StatsDoc is the GET /v1/stats body.
type StatsDoc struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Campaigns     int     `json:"campaigns"`
	StoreObjects  int     `json:"store_objects"`
	Cache         struct {
		Served      uint64  `json:"served"`
		NotModified uint64  `json:"not_modified"`
		Missing     uint64  `json:"missing"`
		HitRate     float64 `json:"hit_rate"` // 304s over all found reads
	} `json:"cache"`
	Leases struct {
		Active        int         `json:"active"`
		OldestAgeS    float64     `json:"oldest_age_s"`
		Granted       uint64      `json:"granted"`
		Expired       uint64      `json:"expired_reissued"`
		Completed     uint64      `json:"completed"`
		Failed        uint64      `json:"failed"`
		LateCompletes uint64      `json:"late_completes"`
		Live          []LeaseInfo `json:"live,omitempty"`
	} `json:"leases"`
	Traces struct {
		Rendered uint64 `json:"rendered"`
		Cached   uint64 `json:"cached"`
	} `json:"traces"`
	Requests map[string]RouteDoc `json:"requests"`
}

func (s *serverStats) doc(now time.Time, campaigns, storeObjects int, live []LeaseInfo) *StatsDoc {
	d := &StatsDoc{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Campaigns:     campaigns,
		StoreObjects:  storeObjects,
		Requests:      make(map[string]RouteDoc),
	}
	d.Cache.Served = s.blobServed.Load()
	d.Cache.NotModified = s.blobNotModified.Load()
	d.Cache.Missing = s.blobMissing.Load()
	if total := d.Cache.Served + d.Cache.NotModified; total > 0 {
		d.Cache.HitRate = float64(d.Cache.NotModified) / float64(total)
	}
	d.Leases.Active = len(live)
	if len(live) > 0 {
		d.Leases.OldestAgeS = live[0].AgeSeconds
	}
	d.Leases.Granted = s.leasesGranted.Load()
	d.Leases.Expired = s.leasesExpired.Load()
	d.Leases.Completed = s.leasesCompleted.Load()
	d.Leases.Failed = s.leasesFailed.Load()
	d.Leases.LateCompletes = s.lateCompletes.Load()
	d.Leases.Live = live
	d.Traces.Rendered = s.tracesRendered.Load()
	d.Traces.Cached = s.tracesCached.Load()
	s.mu.Lock()
	for route, rs := range s.routes {
		doc := RouteDoc{Count: rs.Count, Errors: rs.Errors, MaxMs: float64(rs.MaxNs) / 1e6}
		if rs.Count > 0 {
			doc.AvgMs = float64(rs.TotalNs) / float64(rs.Count) / 1e6
		}
		d.Requests[route] = doc
	}
	s.mu.Unlock()
	return d
}

// statusRecorder captures the response code for latency accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
