// Package campaignd is the campaign results service: a long-running
// stdlib net/http server over the content-addressed campaign store. It
// serves cached results, metrics snapshots, gate verdicts, and trace
// renders as conditional (ETag / If-None-Match) JSON — warm readers cost
// one stat — and turns the store's deterministic work-list into a
// multi-host compute fabric: campaign specs POSTed to the server are
// expanded server-side, and worker processes pull per-unit leases over
// HTTP, heartbeat while computing, and upload results; a lease that
// stops heartbeating expires and its unit is re-issued, so a dead worker
// never strands a campaign. Persistence goes through campaign.Backend,
// so the same server runs unchanged on the local-directory store today
// and an object store later.
package campaignd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"greedy80211/internal/campaign"
)

// WireUnit is one work-list unit on the wire: everything a worker needs
// to recompute the unit and nothing it has to guess. Config is the
// normalized RunConfig in its JSON (SpecConfig) form; Key is the
// server's content address for the unit, which the worker re-derives
// locally before computing — a mismatch means the worker binary's module
// fingerprint differs from the server's, and the worker must refuse
// rather than upload bytes the server would file under the wrong key.
type WireUnit struct {
	Index    int                 `json:"index"`
	Artifact string              `json:"artifact"`
	BaseSeed int64               `json:"base_seed"`
	Name     string              `json:"name"`
	Key      string              `json:"key"`
	Config   campaign.SpecConfig `json:"config"`
}

// wireUnit converts a work-list unit to its wire form.
func wireUnit(u campaign.Unit) WireUnit {
	return WireUnit{
		Index:    u.Index,
		Artifact: u.Artifact,
		BaseSeed: u.BaseSeed,
		Name:     u.Name(),
		Key:      u.Key,
		Config:   campaign.SpecConfigOf(u.Config),
	}
}

// Unit reconstructs the computable unit. The returned error reports a
// malformed config; key verification is a separate, deliberate step
// (VerifyKey) so callers can distinguish "bad wire data" from "version
// skew".
func (w WireUnit) Unit() (campaign.Unit, error) {
	cfg, err := w.Config.RunConfig()
	if err != nil {
		return campaign.Unit{}, fmt.Errorf("campaignd: wire unit %s: %w", w.Name, err)
	}
	return campaign.Unit{
		Index:    w.Index,
		Artifact: w.Artifact,
		BaseSeed: w.BaseSeed,
		Config:   cfg.Normalize(),
		Key:      w.Key,
	}, nil
}

// VerifyKey re-derives the unit's content address with the local
// binary's module fingerprint and compares it to the server's. An error
// means this process must not compute the unit.
func (w WireUnit) VerifyKey() error {
	u, err := w.Unit()
	if err != nil {
		return err
	}
	if got := campaign.Key(u.Artifact, u.Config); got != w.Key {
		return fmt.Errorf("campaignd: unit %s: local key %s != server key %s (module fingerprint or format skew; rebuild the worker from the server's commit)",
			w.Name, got[:12], w.Key[:12])
	}
	return nil
}

// SubmitRequest is the POST /v1/campaigns body: a campaign spec,
// verbatim — the same JSON `campaign run -spec` reads.
type SubmitRequest = campaign.Spec

// CampaignDoc describes one registered campaign: its deterministic id
// plus the shared status codec (the exact struct `campaign status -json`
// prints).
type CampaignDoc struct {
	ID        string               `json:"id"`
	Artifacts []string             `json:"artifacts"`
	Status    *campaign.StatusDoc  `json:"status"`
}

// CampaignList is GET /v1/campaigns.
type CampaignList struct {
	Campaigns []CampaignSummary `json:"campaigns"`
}

// CampaignSummary is one row of the campaign listing.
type CampaignSummary struct {
	ID        string   `json:"id"`
	Artifacts []string `json:"artifacts"`
	Total     int      `json:"total"`
	Done      int      `json:"done"`
	Leased    int      `json:"leased"`
	Failed    int      `json:"failed"`
	Pending   int      `json:"pending"`
}

// LeaseRequest is the POST /v1/campaigns/{id}/lease body.
type LeaseRequest struct {
	// Worker names the requesting process (host:pid or similar); it
	// appears in stats and logs.
	Worker string `json:"worker"`
}

// LeaseGrant is one issued lease.
type LeaseGrant struct {
	LeaseID    string   `json:"lease_id"`
	CampaignID string   `json:"campaign_id"`
	TTLMs      int64    `json:"ttl_ms"`
	Unit       WireUnit `json:"unit"`
}

// LeaseResponse is the lease endpoint's answer: exactly one of Lease
// set (work to do), Done true (nothing left — the campaign is fully
// computed or exhausted), or RetryAfterMs > 0 (every remaining unit is
// currently leased to someone else; ask again later).
type LeaseResponse struct {
	Lease        *LeaseGrant `json:"lease,omitempty"`
	Done         bool        `json:"done,omitempty"`
	FailedUnits  int         `json:"failed_units,omitempty"`
	RetryAfterMs int64       `json:"retry_after_ms,omitempty"`
}

// HeartbeatResponse extends a lease.
type HeartbeatResponse struct {
	TTLMs int64 `json:"ttl_ms"`
}

// CompleteRequest uploads one computed unit. Result and Metrics carry
// the exact bytes campaign.ComputeUnit produced (JSON text travels fine
// inside a JSON string); the server re-validates both before committing.
type CompleteRequest struct {
	Key     string `json:"key"`
	Result  string `json:"result"`
	Metrics string `json:"metrics"`
}

// CompleteResponse acknowledges a commit. LeaseLost notes that the
// uploader's lease had already expired (the unit may have been re-issued
// meanwhile); the upload is still committed — content-addressing makes
// duplicate computations byte-identical, so the first commit wins and
// the rest are no-ops.
type CompleteResponse struct {
	Committed bool `json:"committed"`
	LeaseLost bool `json:"lease_lost,omitempty"`
}

// FailRequest reports a unit the worker could not compute.
type FailRequest struct {
	Error string `json:"error"`
}

// ErrorDoc is every non-2xx body.
type ErrorDoc struct {
	Error string `json:"error"`
}

// ReadyDoc is the GET /readyz body: "ready" with 200, or "draining" /
// "store-unreachable" with 503.
type ReadyDoc struct {
	Status       string `json:"status"`
	StoreObjects int    `json:"store_objects,omitempty"`
	Error        string `json:"error,omitempty"`
}

// SpecID is a campaign's deterministic identity: the first 16 hex digits
// of the sha256 of the spec's canonical JSON. Submitting the same spec
// twice yields the same campaign — submission is idempotent by
// construction.
func SpecID(spec *campaign.Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// Spec is strings, ints, and bools; it cannot fail to marshal.
		panic("campaignd: spec marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:16]
}

// metaFor builds the store meta document for a unit computed remotely.
func metaFor(u campaign.Unit, module string) campaign.Meta {
	cfg := u.Config.Normalize()
	return campaign.Meta{
		Key:        u.Key,
		Module:     module,
		Artifact:   u.Artifact,
		Seeds:      cfg.Seeds,
		BaseSeed:   cfg.BaseSeed,
		DurationNs: int64(cfg.Duration),
		Quick:      cfg.Quick,
	}
}
