package campaignd

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/core"
	"greedy80211/internal/report"
)

// Config configures a Server.
type Config struct {
	// Store is the content-addressed store to serve and fill (required).
	Store *campaign.Store
	// LeaseTTL is how long a worker may go without a heartbeat before
	// its unit is re-issued. Zero means 30s.
	LeaseTTL time.Duration
	// MaxUnitFailures is how many worker-reported failures a unit
	// tolerates before the server stops re-issuing it. Zero means 3.
	MaxUnitFailures int
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the listener closes. Zero means 10s.
	DrainTimeout time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// campaignState is one registered campaign: the expanded deterministic
// work-list plus per-unit failure counts. Units never change after
// registration — the work-list is a pure function of the spec.
type campaignState struct {
	id       string
	spec     *campaign.Spec
	units    []campaign.Unit
	failures map[string]int
}

// Server is the campaign results service. Create with New, expose with
// Handler (or run with Serve), and Close when done.
type Server struct {
	cfg     Config
	store   *campaign.Store
	journal *campaign.Journal
	leases  *leaseTable
	stats   *serverStats
	module  string
	now     func() time.Time
	logf    func(string, ...any)

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string

	refsOnce sync.Once
	refsets  []*report.RefSet
	refsErr  error

	mux *http.ServeMux
}

// New builds a Server over an open store. The server appends to the
// store's write-ahead journal (lease grants journal "start", commits
// journal "done"), so `campaign status` on the same store shows units
// that were in flight when a server or worker died.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("campaignd: Config.Store is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxUnitFailures <= 0 {
		cfg.MaxUnitFailures = 3
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	journal, err := campaign.OpenJournal(cfg.Store.JournalPath())
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		store:     cfg.Store,
		journal:   journal,
		leases:    newLeaseTable(cfg.LeaseTTL, now),
		stats:     newServerStats(now()),
		module:    core.ModuleFingerprint(),
		now:       now,
		logf:      logf,
		campaigns: make(map[string]*campaignState),
	}
	s.mux = s.routes()
	return s, nil
}

// Close releases the journal. Safe after Serve has returned.
func (s *Server) Close() error { return s.journal.Close() }

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Register expands and registers a campaign spec, returning its
// deterministic id. Registering the same spec twice is a no-op returning
// the same id. It is both the POST /v1/campaigns implementation and the
// programmatic preload hook cmd/campaignd's -spec flag uses.
func (s *Server) Register(spec *campaign.Spec) (string, error) {
	units, err := spec.Units()
	if err != nil {
		return "", err
	}
	id := SpecID(spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.campaigns[id]; !ok {
		s.campaigns[id] = &campaignState{
			id:       id,
			spec:     spec,
			units:    units,
			failures: make(map[string]int),
		}
		s.order = append(s.order, id)
		s.logf("campaignd: registered campaign %s (%d units)", id, len(units))
	}
	return id, nil
}

func (s *Server) campaignByID(id string) *campaignState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// failureCount and recordFailure guard the per-unit failure ledger.
func (s *Server) failureCount(st *campaignState, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.failures[key]
}

func (s *Server) recordFailure(st *campaignState, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.failures[key]++
	return st.failures[key]
}

// unitByKey finds a registered unit by its content address (any
// campaign), for late uploads whose lease already expired.
func (s *Server) unitByKey(key string) (campaign.Unit, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.campaigns {
		for _, u := range st.units {
			if u.Key == key {
				return u, true
			}
		}
	}
	return campaign.Unit{}, false
}

// statusDoc builds the shared status codec for one campaign, overlaying
// live lease and failure state on the store/journal standing.
func (s *Server) statusDoc(st *campaignState) (*campaign.StatusDoc, error) {
	sts, err := campaign.Status(st.spec, s.store)
	if err != nil {
		return nil, err
	}
	doc := campaign.NewStatusDoc(sts)
	leased := s.leases.leasedKeys()
	s.mu.Lock()
	for i := range doc.Units {
		u := &doc.Units[i]
		if u.State == campaign.UnitDone {
			continue
		}
		switch {
		case leased[u.Key]:
			u.State = campaign.UnitLeased
		case st.failures[u.Key] >= s.cfg.MaxUnitFailures:
			u.State = campaign.UnitFailed
		}
	}
	s.mu.Unlock()
	doc.Recount()
	return doc, nil
}

// refSets lazily loads the embedded golden refdata for /v1/verdicts.
func (s *Server) refSets() ([]*report.RefSet, error) {
	s.refsOnce.Do(func() {
		s.refsets, s.refsErr = report.LoadEmbedded()
	})
	return s.refsets, s.refsErr
}

// Serve runs the service on ln until ctx is cancelled, then drains:
// the listener closes immediately, in-flight requests get DrainTimeout
// to finish (a mid-commit upload either lands completely or not at all —
// store commits are atomic and the journal is line-buffered), and the
// journal closes last, so a SIGTERM'd server leaves the store and WAL
// exactly as consistent as a crash would, minus the torn tail.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.logf("campaignd: draining (%s grace)", s.cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	<-errc // http.ErrServerClosed from Serve
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("campaignd: shutdown: %w", err)
	}
	return nil
}

// campaignSummaries lists the registered campaigns in registration
// order.
func (s *Server) campaignSummaries() ([]CampaignSummary, error) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]CampaignSummary, 0, len(ids))
	for _, id := range ids {
		st := s.campaignByID(id)
		if st == nil {
			continue
		}
		doc, err := s.statusDoc(st)
		if err != nil {
			return nil, err
		}
		out = append(out, CampaignSummary{
			ID:        id,
			Artifacts: artifactsOf(st.units),
			Total:     doc.Total,
			Done:      doc.Done,
			Leased:    doc.Leased,
			Failed:    doc.Failed,
			Pending:   doc.Pending + doc.Interrupted,
		})
	}
	return out, nil
}

func artifactsOf(units []campaign.Unit) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range units {
		if !seen[u.Artifact] {
			seen[u.Artifact] = true
			out = append(out, u.Artifact)
		}
	}
	sort.Strings(out)
	return out
}
