package campaignd

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/core"
	"greedy80211/internal/obs"
	"greedy80211/internal/report"
)

// Config configures a Server.
type Config struct {
	// Store is the content-addressed store to serve and fill (required).
	Store *campaign.Store
	// LeaseTTL is how long a worker may go without a heartbeat before
	// its unit is re-issued. Zero means 30s.
	LeaseTTL time.Duration
	// MaxUnitFailures is how many worker-reported failures a unit
	// tolerates before the server stops re-issuing it. Zero means 3.
	MaxUnitFailures int
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the listener closes. Zero means 10s.
	DrainTimeout time.Duration
	// DrainDelay holds the listener open for this long after shutdown
	// begins, with /readyz already failing — the window a load-balancer
	// (or the CI smoke test) needs to observe the drain before
	// connections start being refused. Zero means no window.
	DrainDelay time.Duration
	// Logger receives structured progress and access logs; nil discards
	// them.
	Logger *slog.Logger
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// campaignState is one registered campaign: the expanded deterministic
// work-list plus per-unit failure counts. Units never change after
// registration — the work-list is a pure function of the spec.
type campaignState struct {
	id       string
	spec     *campaign.Spec
	units    []campaign.Unit
	failures map[string]int
}

// Server is the campaign results service. Create with New, expose with
// Handler (or run with Serve), and Close when done.
type Server struct {
	cfg      Config
	store    *campaign.Store
	journal  *campaign.Journal
	spans    *campaign.SpanLog
	leases   *leaseTable
	stats    *serverStats
	progress *progressTracker
	module   string
	now      func() time.Time
	logger   *slog.Logger
	draining atomic.Bool

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string

	refsOnce sync.Once
	refsets  []*report.RefSet
	refsErr  error

	mux *http.ServeMux
}

// New builds a Server over an open store. The server appends to the
// store's write-ahead journal (lease grants journal "start", commits
// journal "done") and to its progress-span log, so `campaign status`
// and `campaign spans` on the same store see what the server did. The
// store's backend is re-wrapped with per-op metrics, so every
// persistence call the server makes shows up on /metrics.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("campaignd: Config.Store is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxUnitFailures <= 0 {
		cfg.MaxUnitFailures = 3
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	journal, err := campaign.OpenJournal(cfg.Store.JournalPath())
	if err != nil {
		return nil, err
	}
	spans, err := campaign.OpenSpanLog(cfg.Store.SpanPath())
	if err != nil {
		journal.Close()
		return nil, err
	}
	stats := newServerStats(now(), core.ModuleFingerprint())
	s := &Server{
		cfg:       cfg,
		store:     campaign.NewStore(newMeteredBackend(cfg.Store.Backend(), stats.reg), cfg.Store.JournalPath()),
		journal:   journal,
		spans:     spans,
		leases:    newLeaseTable(cfg.LeaseTTL, now),
		stats:     stats,
		progress:  newProgressTracker(now),
		module:    core.ModuleFingerprint(),
		now:       now,
		logger:    logger,
		campaigns: make(map[string]*campaignState),
	}
	s.registerGauges()
	s.mux = s.routes()
	return s, nil
}

// registerGauges wires the live-state gauges: unlike the counters they
// read server structures at scrape time, so they need the constructed
// Server.
func (s *Server) registerGauges() {
	reg := s.stats.reg
	reg.GaugeFunc("campaignd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return s.now().Sub(s.stats.start).Seconds() })
	reg.GaugeFunc("campaignd_leases_active", "Live (unexpired) leases.",
		func() float64 { return float64(len(s.leases.leasedKeys())) })
	reg.GaugeFunc("campaignd_campaigns_registered", "Registered campaigns.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.campaigns))
		})
	reg.GaugeFunc("campaignd_draining", "1 while graceful shutdown is in progress.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("campaignd_store_objects", "Committed entries in the store (-1: store unreachable).",
		func() float64 {
			keys, err := s.store.Keys()
			if err != nil {
				return -1
			}
			return float64(len(keys))
		})
}

// Close releases the journal and span log. Safe after Serve returns.
func (s *Server) Close() error {
	err := s.journal.Close()
	if serr := s.spans.Close(); err == nil {
		err = serr
	}
	return err
}

// Handler returns the service's HTTP surface: correlation-ID plumbing,
// the access log, and route-normalized latency accounting wrap the
// versioned mux. Requests arriving with an X-Request-ID keep it (the
// worker's retry loop correlates client and server logs that way);
// everything else gets a fresh id. Requests no registered pattern
// claims are accounted under the single route key "unmatched", so
// hostile or misconfigured clients cannot grow the stats table.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if !validRequestID(reqID) {
			reqID = obs.NewID()
		}
		ctx := obs.WithRequestID(r.Context(), reqID)
		w.Header().Set("X-Request-ID", reqID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := s.now()
		s.mux.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := s.now().Sub(start)
		route := rec.route
		if route == "" {
			route = "unmatched"
		}
		s.stats.observe(route, rec.status, elapsed)
		s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", rec.status),
			slog.Int64("bytes", rec.bytes),
			slog.Float64("dur_ms", float64(elapsed.Nanoseconds())/1e6),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// validRequestID accepts ids a client may supply: short and safe to
// echo into headers and logs.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// DebugHandler returns the opt-in debug surface cmd/campaignd serves on
// its -debug-addr listener: the pprof profile endpoints plus the same
// /metrics and /healthz the main listener has (so an operator can scrape
// a wedged server even if the main handler is saturated).
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", s.handleMetricsExposition)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Register expands and registers a campaign spec, returning its
// deterministic id. Registering the same spec twice is a no-op returning
// the same id. It is both the POST /v1/campaigns implementation and the
// programmatic preload hook cmd/campaignd's -spec flag uses.
func (s *Server) Register(spec *campaign.Spec) (string, error) {
	expandStart := s.now()
	units, err := spec.Units()
	if err != nil {
		return "", err
	}
	expandEnd := s.now()
	id := SpecID(spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.campaigns[id]; !ok {
		s.campaigns[id] = &campaignState{
			id:       id,
			spec:     spec,
			units:    units,
			failures: make(map[string]int),
		}
		s.order = append(s.order, id)
		s.spans.Append(campaign.Span{
			Unit: id, Phase: "expand",
			StartUnixNs: expandStart.UnixNano(), EndUnixNs: expandEnd.UnixNano(),
			Note: fmt.Sprintf("%d units", len(units)),
		})
		s.logger.Info("registered campaign", "campaign", id, "units", len(units))
	}
	return id, nil
}

func (s *Server) campaignByID(id string) *campaignState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// failureCount and recordFailure guard the per-unit failure ledger.
func (s *Server) failureCount(st *campaignState, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.failures[key]
}

func (s *Server) recordFailure(st *campaignState, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.failures[key]++
	return st.failures[key]
}

// unitByKey finds a registered unit by its content address (any
// campaign), for late uploads whose lease already expired.
func (s *Server) unitByKey(key string) (campaign.Unit, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.campaigns {
		for _, u := range st.units {
			if u.Key == key {
				return u, true
			}
		}
	}
	return campaign.Unit{}, false
}

// statusDoc builds the shared status codec for one campaign, overlaying
// live lease and failure state on the store/journal standing.
func (s *Server) statusDoc(st *campaignState) (*campaign.StatusDoc, error) {
	sts, err := campaign.Status(st.spec, s.store)
	if err != nil {
		return nil, err
	}
	doc := campaign.NewStatusDoc(sts)
	leased := s.leases.leasedKeys()
	s.mu.Lock()
	for i := range doc.Units {
		u := &doc.Units[i]
		if u.State == campaign.UnitDone {
			continue
		}
		switch {
		case leased[u.Key]:
			u.State = campaign.UnitLeased
		case st.failures[u.Key] >= s.cfg.MaxUnitFailures:
			u.State = campaign.UnitFailed
		}
	}
	s.mu.Unlock()
	doc.Recount()
	return doc, nil
}

// refSets lazily loads the embedded golden refdata for /v1/verdicts.
func (s *Server) refSets() ([]*report.RefSet, error) {
	s.refsOnce.Do(func() {
		s.refsets, s.refsErr = report.LoadEmbedded()
	})
	return s.refsets, s.refsErr
}

// Serve runs the service on ln until ctx is cancelled, then drains.
// The drain is observable before it is disruptive: /readyz flips to 503
// first, the listener stays open for DrainDelay (load-balancer grace),
// then the listener closes and in-flight requests get DrainTimeout to
// finish (a mid-commit upload either lands completely or not at all —
// store commits are atomic and the journal is line-buffered). The
// journal and span log close last, so a SIGTERM'd server leaves the
// store and WAL exactly as consistent as a crash would, minus the torn
// tail.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.logger.Info("draining", "delay", s.cfg.DrainDelay, "grace", s.cfg.DrainTimeout)
	if s.cfg.DrainDelay > 0 {
		timer := time.NewTimer(s.cfg.DrainDelay)
		select {
		case <-timer.C:
		case err := <-errc:
			timer.Stop()
			s.Close()
			return err
		}
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	<-errc // http.ErrServerClosed from Serve
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("campaignd: shutdown: %w", err)
	}
	return nil
}

// campaignSummaries lists the registered campaigns in registration
// order.
func (s *Server) campaignSummaries() ([]CampaignSummary, error) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]CampaignSummary, 0, len(ids))
	for _, id := range ids {
		st := s.campaignByID(id)
		if st == nil {
			continue
		}
		doc, err := s.statusDoc(st)
		if err != nil {
			return nil, err
		}
		out = append(out, CampaignSummary{
			ID:        id,
			Artifacts: artifactsOf(st.units),
			Total:     doc.Total,
			Done:      doc.Done,
			Leased:    doc.Leased,
			Failed:    doc.Failed,
			Pending:   doc.Pending + doc.Interrupted,
		})
	}
	return out, nil
}

func artifactsOf(units []campaign.Unit) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range units {
		if !seen[u.Artifact] {
			seen[u.Artifact] = true
			out = append(out, u.Artifact)
		}
	}
	sort.Strings(out)
	return out
}
