package core_test

import (
	"fmt"
	"log"

	"greedy80211/internal/core"
	"greedy80211/internal/sim"
)

// The library's one-call surface: run the paper's headline NAV-inflation
// attack with and without the GRC countermeasure.
func ExampleRun() {
	base := core.Config{
		Seed:         1,
		Runs:         2,
		Duration:     2 * sim.Second,
		Misbehavior:  core.MisbehaviorNAVInflation,
		NAVInflation: 10 * sim.Millisecond,
	}
	attacked, err := core.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	protected := base
	protected.EnableGRC = true
	defended, err := core.Run(protected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack starves the normal flow: %v\n",
		attacked.Goodput.NormalMbps < 0.1*attacked.Goodput.GreedyMbps)
	fmt.Printf("GRC restores fairness: %v\n",
		defended.Goodput.NormalMbps > 0.5*defended.Goodput.GreedyMbps)
	fmt.Printf("GRC intervened: %v\n", defended.GRC.NAVCorrections > 0)
	// Output:
	// attack starves the normal flow: true
	// GRC restores fairness: true
	// GRC intervened: true
}
