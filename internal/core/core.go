// Package core is the high-level facade of the library: one call builds a
// hotspot scenario from the paper's vocabulary (pairs or a shared AP, a
// misbehavior, a greedy percentage, optional GRC protection), runs it over
// several seeds, and reports per-flow goodput plus detection statistics.
//
// Lower-level control — custom topologies, mixed policies, wired backhaul —
// is available through package scenario, and the individual mechanisms
// through packages mac, medium, greedy, and detect.
package core

import (
	"context"
	"fmt"
	"sort"

	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/mac"
	"greedy80211/internal/medium"
	"greedy80211/internal/metrics"
	"greedy80211/internal/phys"
	"greedy80211/internal/runner"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/trace"
)

// Version identifies the library release.
const Version = "1.0.0"

// Misbehavior selects the greedy receiver behavior under study.
type Misbehavior int

const (
	// MisbehaviorNone runs a fully compliant network (baselines).
	MisbehaviorNone Misbehavior = iota + 1
	// MisbehaviorNAVInflation is misbehavior 1: inflated duration fields.
	MisbehaviorNAVInflation
	// MisbehaviorACKSpoofing is misbehavior 2: MAC ACKs forged on behalf
	// of competing receivers.
	MisbehaviorACKSpoofing
	// MisbehaviorFakeACKs is misbehavior 3: ACKs for corrupted frames.
	MisbehaviorFakeACKs
)

// String implements fmt.Stringer.
func (m Misbehavior) String() string {
	switch m {
	case MisbehaviorNone:
		return "none"
	case MisbehaviorNAVInflation:
		return "nav-inflation"
	case MisbehaviorACKSpoofing:
		return "ack-spoofing"
	case MisbehaviorFakeACKs:
		return "fake-acks"
	default:
		return fmt.Sprintf("Misbehavior(%d)", int(m))
	}
}

// Config describes a complete experiment in the paper's vocabulary.
type Config struct {
	// Seed drives all randomness; runs use Seed, Seed+1, …
	Seed int64
	// Runs is how many seeded repetitions feed each median (default 5,
	// the paper's methodology).
	Runs int
	// Duration is the simulated time per run (default 5 s).
	Duration sim.Time

	// Band selects 802.11b (default) or 802.11a.
	Band phys.Band
	// Transport selects UDP (default) or TCP.
	Transport scenario.Transport
	// Pairs is the number of sender→receiver flows (default 2).
	Pairs int
	// SharedAP puts all flows behind one access point instead of one
	// sender per flow.
	SharedAP bool
	// HiddenTerminals uses the hidden-sender topology (UDP, no RTS/CTS) —
	// the collision-loss setting of the fake-ACK study.
	HiddenTerminals bool
	// DisableRTSCTS turns the RTS/CTS exchange off.
	DisableRTSCTS bool

	// Misbehavior and the number of GreedyReceivers (the last k receivers
	// misbehave). GreedyPercent throttles how often (default 100).
	Misbehavior     Misbehavior
	GreedyReceivers int
	GreedyPercent   float64
	// NAVInflation is the duration added by misbehavior 1 (default 10 ms);
	// NAVFrames the frame set it applies to (default CTS+ACK).
	NAVInflation sim.Time
	NAVFrames    greedy.FrameSet

	// BER injects Table III channel errors; DataFER injects a fixed data
	// frame error rate instead.
	BER     float64
	DataFER float64

	// EnableGRC installs the countermeasure at every station.
	EnableGRC bool

	// Trace attaches a channel tap (e.g. *trace.Recorder) to every run;
	// events from all runs accumulate into the same tap. Because the tap
	// is shared mutable state, runs execute sequentially when it is set.
	Trace medium.Tap
	// FlightRecorder, when non-nil, attaches a full flight recorder (tap +
	// MAC probe) to every run, one recording per seed. Unlike Trace, each
	// run gets its own recorder, so runs stay parallel and the collector's
	// canonical ordering keeps exports deterministic.
	FlightRecorder *trace.Collector
	// Pools, when non-nil, folds every run's end-of-run pool occupancy
	// (frame/packet arenas, arrival arena, event slab) into the report.
	// Pool telemetry is observability-only: it never feeds Result, whose
	// numbers stay identical with pooling on or off.
	Pools *scenario.PoolReport
}

// FlowResult is one flow's outcome.
type FlowResult struct {
	ID          int
	Greedy      bool
	GoodputMbps float64
}

// GoodputSummary averages the per-class flow medians.
type GoodputSummary struct {
	// GreedyMbps and NormalMbps average the greedy and normal flows'
	// median goodputs (zero when the class is empty).
	GreedyMbps float64
	NormalMbps float64
}

// GRCSummary reports the countermeasure's median interventions per run
// across protected stations (all zero when GRC is disabled).
type GRCSummary struct {
	NAVCorrections float64
	SpoofsIgnored  float64
}

// Result aggregates an experiment's medians across runs: per-flow
// goodput, class summaries, GRC interventions, and the always-on
// per-station telemetry snapshot.
type Result struct {
	Flows   []FlowResult
	Goodput GoodputSummary
	// Metrics is the per-station MAC/channel telemetry (average CW,
	// airtime shares, NAV-blocked time, …), medianed across runs and
	// merged deterministically by station ID. Always populated.
	Metrics *metrics.Snapshot
	GRC     GRCSummary
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Duration == 0 {
		c.Duration = 5 * sim.Second
	}
	if c.Band == 0 {
		c.Band = phys.Band80211B
	}
	if c.Transport == 0 {
		c.Transport = scenario.UDP
	}
	if c.Pairs == 0 {
		c.Pairs = 2
	}
	if c.Misbehavior == 0 {
		c.Misbehavior = MisbehaviorNone
	}
	if c.GreedyPercent == 0 {
		c.GreedyPercent = 100
	}
	if c.NAVInflation == 0 {
		c.NAVInflation = 10 * sim.Millisecond
	}
	if c.NAVFrames == (greedy.FrameSet{}) {
		c.NAVFrames = greedy.CTSAndACK
	}
	if c.Misbehavior != MisbehaviorNone && c.GreedyReceivers == 0 {
		c.GreedyReceivers = 1
	}
	return c
}

// Validate reports whether the configuration is runnable. Defaults are
// applied before checking, so a zero value in a defaulted field (Pairs,
// Runs, …) never fails; Run and RunContext call it, and callers may use
// it to vet a configuration without running anything.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Pairs < 1 {
		return fmt.Errorf("core: need at least one pair, got %d", c.Pairs)
	}
	if c.GreedyReceivers > c.Pairs {
		return fmt.Errorf("core: %d greedy receivers exceed %d pairs", c.GreedyReceivers, c.Pairs)
	}
	if c.GreedyPercent < 0 || c.GreedyPercent > 100 {
		return fmt.Errorf("core: greedy percent %v out of [0,100]", c.GreedyPercent)
	}
	if c.HiddenTerminals && (c.Pairs != 2 || c.SharedAP) {
		return fmt.Errorf("core: hidden-terminal topology requires exactly 2 pairs and no shared AP")
	}
	if c.Misbehavior == MisbehaviorFakeACKs && c.BER == 0 && c.DataFER == 0 && !c.HiddenTerminals {
		return fmt.Errorf("core: fake ACKs need a loss source (BER, DataFER, or HiddenTerminals)")
	}
	return nil
}

// policyFor builds receiver i's station options for one run.
func (c Config) receiverOpts(w *scenario.World, i int, grcCfg *detect.Config) scenario.StationOpts {
	opts := scenario.StationOpts{}
	if c.EnableGRC {
		opts.GRC = grcCfg
	}
	if i < c.Pairs-c.GreedyReceivers {
		return opts
	}
	switch c.Misbehavior {
	case MisbehaviorNAVInflation:
		opts.Policy = greedy.NewNAVInflation(w.Sched.RNG(), c.NAVFrames, c.NAVInflation, c.GreedyPercent)
	case MisbehaviorACKSpoofing:
		// Target every normal receiver already registered.
		var victims []mac.NodeID
		for j := 0; j < c.Pairs-c.GreedyReceivers; j++ {
			if st, ok := w.Station(scenario.ReceiverName(j)); ok {
				victims = append(victims, st.ID)
			}
		}
		opts.Policy = greedy.NewACKSpoofer(w.Sched.RNG(), c.GreedyPercent, victims...)
	case MisbehaviorFakeACKs:
		opts.Policy = greedy.NewFakeACKer(w.Sched.RNG(), c.GreedyPercent)
	}
	return opts
}

func (c Config) buildWorld(seed int64, grcCfg *detect.Config) (*scenario.World, error) {
	base := scenario.Config{
		Seed:         seed,
		Band:         c.Band,
		UseRTSCTS:    !c.DisableRTSCTS,
		ForceCapture: c.Misbehavior == MisbehaviorACKSpoofing,
		Trace:        c.Trace,
	}
	switch {
	case c.DataFER > 0:
		base.Error = phys.DataFERSpec(c.DataFER)
	case c.BER > 0:
		base.Error = phys.BERSpec(c.BER)
	}
	recv := func(w *scenario.World, i int) scenario.StationOpts {
		return c.receiverOpts(w, i, grcCfg)
	}
	send := func(w *scenario.World, i int) scenario.StationOpts {
		if !c.EnableGRC {
			return scenario.StationOpts{}
		}
		return scenario.StationOpts{GRC: grcCfg}
	}
	switch {
	case c.HiddenTerminals:
		return scenario.BuildHiddenPairs(scenario.HiddenPairsConfig{Config: base, ReceiverOpts: recv})
	case c.SharedAP:
		return scenario.BuildSharedAP(scenario.SharedAPConfig{
			Config: base, N: c.Pairs, Transport: c.Transport, ReceiverOpts: recv,
		})
	default:
		return scenario.BuildPairs(scenario.PairsConfig{
			Config: base, N: c.Pairs, Transport: c.Transport,
			ReceiverOpts: recv, SenderOpts: send,
		})
	}
}

// Run executes the experiment and reports per-flow median goodput plus
// the telemetry snapshot. It is RunContext without cancellation.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the experiment with cooperative cancellation: ctx
// is checked between seeded runs (a simulated world, once started, runs
// to completion), so cancelling stops the sweep at the next run boundary
// and returns ctx.Err().
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	grcCfg := detect.DefaultConfig()
	type runResult struct {
		flows         map[int]float64
		snap          *metrics.Snapshot
		nav, spoofIgn float64
	}
	oneRun := func(r int) (runResult, error) {
		seed := cfg.Seed + int64(r)
		w, err := cfg.buildWorld(seed, &grcCfg)
		if err != nil {
			return runResult{}, fmt.Errorf("core: building run %d: %w", r, err)
		}
		if cfg.FlightRecorder != nil {
			rec := cfg.FlightRecorder.Start(seed)
			w.AttachTrace(rec, rec)
		}
		w.Run(cfg.Duration)
		if cfg.Pools != nil {
			cfg.Pools.Add(w.PoolStats())
		}
		res := runResult{flows: make(map[int]float64), snap: w.MetricsSnapshot()}
		for _, fl := range w.Flows() {
			res.flows[fl.ID] = fl.GoodputMbps(cfg.Duration)
		}
		if cfg.EnableGRC {
			var nav, ign int64
			for i := 0; i < cfg.Pairs; i++ {
				for _, name := range []string{scenario.SenderName(i), scenario.ReceiverName(i)} {
					if st, ok := w.Station(name); ok && st.GRC != nil {
						nav += st.GRC.Stats().NAVClamped
						ign += st.GRC.Stats().SpoofIgnored
					}
				}
			}
			res.nav = float64(nav)
			res.spoofIgn = float64(ign)
		}
		return res, nil
	}
	// Runs are independent deterministic worlds, so they execute on the
	// runner pool — except when a Trace tap is attached: the tap is shared
	// mutable state that every run's channel feeds, so those runs stay
	// sequential (with a cancellation check between runs).
	var runs []runResult
	if cfg.Trace != nil {
		for r := 0; r < cfg.Runs; r++ {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			rr, err := oneRun(r)
			if err != nil {
				return Result{}, err
			}
			runs = append(runs, rr)
		}
	} else {
		var err error
		runs, err = runner.MapContext(ctx, cfg.Runs, func(r int) (runResult, error) { return oneRun(r) })
		if err != nil {
			return Result{}, err
		}
	}
	perFlow := make(map[int][]float64)
	snaps := make([]*metrics.Snapshot, 0, len(runs))
	var navCorr, spoofIgn []float64
	for _, rr := range runs {
		for id, v := range rr.flows {
			perFlow[id] = append(perFlow[id], v)
		}
		snaps = append(snaps, rr.snap)
		if cfg.EnableGRC {
			navCorr = append(navCorr, rr.nav)
			spoofIgn = append(spoofIgn, rr.spoofIgn)
		}
	}
	res := Result{
		Metrics: metrics.MedianSnapshots(snaps),
		GRC: GRCSummary{
			NAVCorrections: stats.Median(navCorr),
			SpoofsIgnored:  stats.Median(spoofIgn),
		},
	}
	ids := make([]int, 0, len(perFlow))
	for id := range perFlow {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var gSum, nSum float64
	var gN, nN int
	for _, id := range ids {
		med := stats.Median(perFlow[id])
		isGreedy := cfg.Misbehavior != MisbehaviorNone && id > cfg.Pairs-cfg.GreedyReceivers
		res.Flows = append(res.Flows, FlowResult{ID: id, Greedy: isGreedy, GoodputMbps: med})
		if isGreedy {
			gSum += med
			gN++
		} else {
			nSum += med
			nN++
		}
	}
	if gN > 0 {
		res.Goodput.GreedyMbps = gSum / float64(gN)
	}
	if nN > 0 {
		res.Goodput.NormalMbps = nSum / float64(nN)
	}
	return res, nil
}
