package core

import (
	"testing"

	"greedy80211/internal/greedy"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
)

// fast trims a config for test runtime.
func fast(cfg Config) Config {
	cfg.Runs = 2
	cfg.Duration = 2 * sim.Second
	return cfg
}

func TestMisbehaviorString(t *testing.T) {
	tests := []struct {
		m    Misbehavior
		want string
	}{
		{MisbehaviorNone, "none"},
		{MisbehaviorNAVInflation, "nav-inflation"},
		{MisbehaviorACKSpoofing, "ack-spoofing"},
		{MisbehaviorFakeACKs, "fake-acks"},
		{Misbehavior(42), "Misbehavior(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"greedy exceeds pairs", func(c *Config) {
			c.Misbehavior = MisbehaviorNAVInflation
			c.GreedyReceivers = 5
			c.Pairs = 2
		}},
		{"bad GP", func(c *Config) { c.GreedyPercent = 150 }},
		{"hidden with shared AP", func(c *Config) {
			c.HiddenTerminals = true
			c.SharedAP = true
		}},
		{"fake acks without loss", func(c *Config) { c.Misbehavior = MisbehaviorFakeACKs }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := fast(Config{})
			tt.mut(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestBaselineFairness(t *testing.T) {
	res, err := Run(fast(Config{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows = %+v", res.Flows)
	}
	for _, f := range res.Flows {
		if f.Greedy {
			t.Error("baseline flow marked greedy")
		}
		if f.GoodputMbps < 1.0 {
			t.Errorf("flow %d goodput %.2f too low", f.ID, f.GoodputMbps)
		}
	}
	if res.GreedyGoodputMbps != 0 {
		t.Error("greedy average nonzero without misbehavior")
	}
}

func TestNAVInflationEndToEnd(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:        2,
		Misbehavior: MisbehaviorNAVInflation,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyGoodputMbps < 3*res.NormalGoodputMbps {
		t.Errorf("greedy %.2f vs normal %.2f: 10ms inflation should dominate",
			res.GreedyGoodputMbps, res.NormalGoodputMbps)
	}
	var sawGreedy bool
	for _, f := range res.Flows {
		if f.Greedy {
			sawGreedy = true
		}
	}
	if !sawGreedy {
		t.Error("no flow marked greedy")
	}
}

func TestNAVInflationWithGRC(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:        3,
		Misbehavior: MisbehaviorNAVInflation,
		NAVFrames:   greedy.CTSOnly,
		EnableGRC:   true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.NAVCorrections == 0 {
		t.Error("GRC never corrected a NAV")
	}
	if res.NormalGoodputMbps < res.GreedyGoodputMbps*0.5 {
		t.Errorf("GRC left %.2f vs %.2f", res.NormalGoodputMbps, res.GreedyGoodputMbps)
	}
}

func TestSpoofingEndToEnd(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:        4,
		Transport:   scenario.TCP,
		Misbehavior: MisbehaviorACKSpoofing,
		BER:         2e-4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyGoodputMbps <= res.NormalGoodputMbps {
		t.Errorf("spoofing gave greedy %.2f ≤ normal %.2f",
			res.GreedyGoodputMbps, res.NormalGoodputMbps)
	}
}

func TestFakeACKsHiddenEndToEnd(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:            5,
		Misbehavior:     MisbehaviorFakeACKs,
		HiddenTerminals: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyGoodputMbps <= res.NormalGoodputMbps {
		t.Errorf("fake ACKs gave greedy %.2f ≤ normal %.2f",
			res.GreedyGoodputMbps, res.NormalGoodputMbps)
	}
}

func TestSharedAPTopology(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:      6,
		SharedAP:  true,
		Transport: scenario.TCP,
		Pairs:     3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(res.Flows))
	}
}
