package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"greedy80211/internal/greedy"
	"greedy80211/internal/mac"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
)

// fast trims a config for test runtime.
func fast(cfg Config) Config {
	cfg.Runs = 2
	cfg.Duration = 2 * sim.Second
	return cfg
}

func TestMisbehaviorString(t *testing.T) {
	tests := []struct {
		m    Misbehavior
		want string
	}{
		{MisbehaviorNone, "none"},
		{MisbehaviorNAVInflation, "nav-inflation"},
		{MisbehaviorACKSpoofing, "ack-spoofing"},
		{MisbehaviorFakeACKs, "fake-acks"},
		{Misbehavior(42), "Misbehavior(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"greedy exceeds pairs", func(c *Config) {
			c.Misbehavior = MisbehaviorNAVInflation
			c.GreedyReceivers = 5
			c.Pairs = 2
		}},
		{"bad GP", func(c *Config) { c.GreedyPercent = 150 }},
		{"hidden with shared AP", func(c *Config) {
			c.HiddenTerminals = true
			c.SharedAP = true
		}},
		{"fake acks without loss", func(c *Config) { c.Misbehavior = MisbehaviorFakeACKs }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := fast(Config{})
			tt.mut(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestBaselineFairness(t *testing.T) {
	res, err := Run(fast(Config{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows = %+v", res.Flows)
	}
	for _, f := range res.Flows {
		if f.Greedy {
			t.Error("baseline flow marked greedy")
		}
		if f.GoodputMbps < 1.0 {
			t.Errorf("flow %d goodput %.2f too low", f.ID, f.GoodputMbps)
		}
	}
	if res.Goodput.GreedyMbps != 0 {
		t.Error("greedy average nonzero without misbehavior")
	}
}

func TestPoolReportWiring(t *testing.T) {
	rep := new(scenario.PoolReport)
	cfg := fast(Config{Seed: 1})
	cfg.Pools = rep
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := rep.Worlds(); got != cfg.Runs {
		t.Errorf("pool report folded %d worlds, want %d", got, cfg.Runs)
	}
	s := rep.String()
	for _, want := range []string{"frames", "packets", "arrivals", "events"} {
		if !strings.Contains(s, want) {
			t.Errorf("pool report missing %q:\n%s", want, s)
		}
	}
}

func TestNAVInflationEndToEnd(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:        2,
		Misbehavior: MisbehaviorNAVInflation,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput.GreedyMbps < 3*res.Goodput.NormalMbps {
		t.Errorf("greedy %.2f vs normal %.2f: 10ms inflation should dominate",
			res.Goodput.GreedyMbps, res.Goodput.NormalMbps)
	}
	var sawGreedy bool
	for _, f := range res.Flows {
		if f.Greedy {
			sawGreedy = true
		}
	}
	if !sawGreedy {
		t.Error("no flow marked greedy")
	}
}

func TestNAVInflationWithGRC(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:        3,
		Misbehavior: MisbehaviorNAVInflation,
		NAVFrames:   greedy.CTSOnly,
		EnableGRC:   true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.GRC.NAVCorrections == 0 {
		t.Error("GRC never corrected a NAV")
	}
	if res.Goodput.NormalMbps < res.Goodput.GreedyMbps*0.5 {
		t.Errorf("GRC left %.2f vs %.2f", res.Goodput.NormalMbps, res.Goodput.GreedyMbps)
	}
}

func TestSpoofingEndToEnd(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:        4,
		Transport:   scenario.TCP,
		Misbehavior: MisbehaviorACKSpoofing,
		BER:         2e-4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput.GreedyMbps <= res.Goodput.NormalMbps {
		t.Errorf("spoofing gave greedy %.2f ≤ normal %.2f",
			res.Goodput.GreedyMbps, res.Goodput.NormalMbps)
	}
}

func TestFakeACKsHiddenEndToEnd(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:            5,
		Misbehavior:     MisbehaviorFakeACKs,
		HiddenTerminals: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput.GreedyMbps <= res.Goodput.NormalMbps {
		t.Errorf("fake ACKs gave greedy %.2f ≤ normal %.2f",
			res.Goodput.GreedyMbps, res.Goodput.NormalMbps)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, fast(Config{Seed: 1})); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancelTap cancels a context from the first transmission of the first
// run, so the cancellation lands mid-sweep: the in-flight run completes,
// the check before the next run aborts.
type cancelTap struct {
	once   sync.Once
	cancel context.CancelFunc
}

func (c *cancelTap) OnTransmit(_ mac.NodeID, _ *mac.Frame, _, _ sim.Time) {
	c.once.Do(c.cancel)
}
func (c *cancelTap) OnReceive(mac.NodeID, *mac.Frame, mac.RxInfo, sim.Time) {}

func TestRunContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tap := &cancelTap{cancel: cancel}
	cfg := fast(Config{Seed: 1})
	cfg.Runs = 4
	cfg.Trace = tap // shared tap forces the sequential path
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestValidateExported(t *testing.T) {
	// The zero config is valid after defaulting.
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	bad := Config{GreedyPercent: 150}
	if err := bad.Validate(); err == nil {
		t.Error("GreedyPercent 150 accepted")
	}
}

func TestMetricsOnResult(t *testing.T) {
	res, err := Run(fast(Config{Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m == nil {
		t.Fatal("Result.Metrics nil: telemetry must be always on")
	}
	if m.Runs != 2 {
		t.Errorf("merged snapshot runs = %d, want 2", m.Runs)
	}
	// 2 pairs → 4 stations, every sender with airtime and a sane AvgCW.
	if len(m.Stations) != 4 {
		t.Fatalf("stations = %d, want 4", len(m.Stations))
	}
	var withAirtime int
	for _, st := range m.Stations {
		if st.AirtimeSecs > 0 {
			withAirtime++
		}
	}
	if withAirtime != 4 {
		t.Errorf("%d stations with airtime, want 4 (senders tx data, receivers tx ACKs)", withAirtime)
	}
	if m.ChannelUtilization <= 0 || m.ChannelUtilization > 1.5 {
		t.Errorf("channel utilization = %v", m.ChannelUtilization)
	}
}

func TestSharedAPTopology(t *testing.T) {
	res, err := Run(fast(Config{
		Seed:      6,
		SharedAP:  true,
		Transport: scenario.TCP,
		Pairs:     3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(res.Flows))
	}
}
