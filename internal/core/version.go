package core

import "runtime/debug"

// ModuleFingerprint identifies the code that produced a result, for use
// in durable cache keys: "<module path>@<vcs revision or module
// version>". A cached unit is only reusable if it was computed by the
// same code, so the fingerprint folds into the campaign store's
// content-addressed keys; binaries built without VCS stamping (go test,
// plain go run in a dirty tree) report "devel", which still separates
// them from stamped release builds.
func ModuleFingerprint() string {
	const fallback = "greedy80211@devel"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return fallback
	}
	mod := bi.Main.Path
	if mod == "" {
		mod = "greedy80211"
	}
	ver := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			ver = s.Value
			break
		}
	}
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	return mod + "@" + ver
}
