package experiments

import (
	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/stats"
	"greedy80211/internal/transport"
)

// The testbed experiments (Section VI) ran on four MadWiFi 802.11a nodes
// at a fixed 6 Mbps. We mirror them in simulation with the same knobs the
// paper used: direct NAV inflation where MadWiFi allows it, and the
// documented emulations (disable-retransmission, CWmax=CWmin) where the
// paper emulated too (see DESIGN.md §2).

func registerTestbed() {
	register("tab6", "Testbed mirror: TCP goodput with NAV inflated on RTS of TCP ACKs (802.11a)", "Table VI (§VI)", runTab6)
	register("tab7", "Testbed mirror: UDP goodput with inflated ACK/CTS NAV (802.11a)", "Table VII (§VI)", runTab7)
	register("tab8", "Testbed mirror: spoof-ACK emulation via disabled retransmissions (TCP)", "Table VIII (§VI)", runTab8)
	register("tab9", "Testbed mirror: fake-ACK emulation via CWmax=CWmin (UDP)", "Table IX (§VI)", runTab9)
}

// testbedPairs builds the 2-pair 802.11a world the testbed used, with the
// second receiver optionally greedy.
func testbedPairs(seed int64, tr scenario.Transport, useRTS bool,
	set greedy.FrameSet, greedyOn bool) (*scenario.World, error) {
	return scenario.BuildPairs(scenario.PairsConfig{
		Config:    scenario.Config{Seed: seed, Band: phys.Band80211A, UseRTSCTS: useRTS},
		N:         2,
		Transport: tr,
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if i != 1 || !greedyOn {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{
				Policy: greedy.NewNAVInflation(w.Sched.RNG(), set, phys.MaxNAV(), 100),
			}
		},
	})
}

func runTab6(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab6", Title: "TCP goodput when GR inflates NAV on RTS for TCP ACKs (max 32767 µs)"}
	t := stats.Table{
		Title:  "Paper testbed: no GR 2.28/2.51 Mbps; with GR 4.41 vs 0.04 Mbps.",
		Header: []string{"case", "R1_mbps", "R2_mbps"},
	}
	set := greedy.FrameSet{RTS: true}
	base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
		return testbedPairs(seed, scenario.TCP, true, set, false)
	}, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("no GR", base[1], base[2])
	att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
		return testbedPairs(seed, scenario.TCP, true, set, true)
	}, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("R2 inflates RTS NAV", att[1], att[2])
	res.AddTable(t)
	return res, nil
}

func runTab7(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab7", Title: "UDP goodput when GR inflates control-frame NAV (max 32767 µs)"}
	t := stats.Table{
		Title:  "Paper testbed rows: ACK-only (no RTS/CTS), CTS (RTS/CTS on), CTS+ACK (RTS/CTS on).",
		Header: []string{"case", "noGR_R1", "noGR_R2", "GR_R1", "GR_R2(GR)"},
	}
	rows := []struct {
		name   string
		useRTS bool
		set    greedy.FrameSet
	}{
		{"no RTS/CTS, inflated ACK NAV", false, greedy.ACKOnly},
		{"RTS/CTS, inflated CTS NAV", true, greedy.CTSOnly},
		{"RTS/CTS, inflated CTS+ACK NAV", true, greedy.CTSAndACK},
	}
	if cfg.Quick {
		rows = rows[:1]
	}
	for _, row := range rows {
		base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return testbedPairs(seed, scenario.UDP, row.useRTS, row.set, false)
		}, nil)
		if err != nil {
			return nil, err
		}
		att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return testbedPairs(seed, scenario.UDP, row.useRTS, row.set, true)
		}, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.name, base[1], base[2], att[1], att[2])
	}
	res.AddTable(t)
	return res, nil
}

// sharedAPEmulation builds the testbed's one-sender-two-receivers world
// with an emulation knob on the sender. The real testbed channel was far
// from loss-free — the paper's own Table I capture on the same hardware
// shows ~32% of 802.11a frames corrupted — so we inject a BER that
// produces a comparable data frame error rate, keeping the backoff
// machinery engaged as it was there (tab9); the TCP spoof emulation uses
// a milder BER so the victim's connection survives as it did on the
// testbed (tab8).
func sharedAPEmulation(seed int64, ber float64, tr scenario.Transport,
	senderOpts func(w *scenario.World) scenario.StationOpts) (*scenario.World, error) {
	w, err := scenario.NewWorld(scenario.Config{Seed: seed, Band: phys.Band80211A, Error: phys.BERSpec(ber)})
	if err != nil {
		return nil, err
	}
	if _, err := w.AddStation("R1", phys.Position{X: 5}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	if _, err := w.AddStation("R2", phys.Position{X: 5, Y: 5}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	opts := scenario.StationOpts{}
	if senderOpts != nil {
		opts = senderOpts(w)
	}
	if _, err := w.AddStation("S1", phys.Position{}, opts); err != nil {
		return nil, err
	}
	for i, rx := range []string{"R1", "R2"} {
		switch tr {
		case scenario.TCP:
			_, err = w.AddTCPFlow(i+1, "S1", rx, transport.DefaultTCPConfig(i+1))
		default:
			_, err = w.AddUDPFlow(i+1, "S1", rx, scenario.DefaultCBRRateBps, scenario.DefaultPayloadBytes)
		}
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

func runTab8(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab8", Title: "Spoof-ACK emulation: sender disables MAC retransmission toward NR (TCP)"}
	t := stats.Table{
		Title:  "Paper testbed: no GR 2.68/1.96 Mbps; with GR 3.51 (GR) vs 0.98 (NR).",
		Header: []string{"case", "R1_mbps", "R2_mbps"},
	}
	base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
		return sharedAPEmulation(seed, 2e-4, scenario.TCP, nil)
	}, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("no GR", base[1], base[2])
	att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
		return sharedAPEmulation(seed, 2e-4, scenario.TCP, func(w *scenario.World) scenario.StationOpts {
			return scenario.StationOpts{SpoofEmulationVictims: []string{"R1"}}
		})
	}, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("R2 GR (no MAC rtx to R1)", att[1], att[2])
	res.AddTable(t)
	return res, nil
}

func runTab9(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab9", Title: "Fake-ACK emulation: sender CW pinned at CWmin toward GR (UDP)"}
	t := stats.Table{
		Title:  "Paper testbed: no GR 2.08/2.99 Mbps; with GR 2.79 (GR) vs 2.35 (NR).",
		Header: []string{"case", "R1_mbps", "R2_mbps"},
	}
	base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
		return sharedAPEmulation(seed, 8e-4, scenario.UDP, nil)
	}, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("no GR", base[1], base[2])
	att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
		return sharedAPEmulation(seed, 8e-4, scenario.UDP, func(w *scenario.World) scenario.StationOpts {
			return scenario.StationOpts{CWMinCapPeers: []string{"R2"}}
		})
	}, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("R2 GR (CWmax=CWmin to R2)", att[1], att[2])
	res.AddTable(t)
	return res, nil
}
