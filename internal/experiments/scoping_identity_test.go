package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"greedy80211/internal/metrics"
	"greedy80211/internal/scenario"
	"greedy80211/internal/trace"
)

// TestGatedArtifactsScopedVsBroadcast: the nine artifacts behind the
// reproduction gate must be byte-identical — result JSON, telemetry
// sidecar, and full trace export — whether the medium delivers via
// neighbor sets or the legacy broadcast scan. Single-cell worlds have
// full neighbor sets, so the scoped path must be a strict
// generalization; this is the before/after-refactor identity check,
// kept alive via the broadcast switch.
func TestGatedArtifactsScopedVsBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every gated artifact twice")
	}
	gated := []string{"fig1", "fig2", "fig4", "fig6", "fig11", "fig18", "fig23", "tab4", "extc"}
	for _, id := range gated {
		id := id
		t.Run(id, func(t *testing.T) {
			run := func(broadcast bool) ([]byte, []byte, []byte) {
				scenario.SetBroadcastMediumForTest(broadcast)
				defer scenario.SetBroadcastMediumForTest(false)
				mcol := metrics.NewCollector()
				tcol := trace.NewCollector(0)
				res, err := Run(id, RunConfig{Quick: true, Seeds: 1, BaseSeed: 3, Metrics: mcol, Trace: tcol})
				if err != nil {
					t.Fatal(err)
				}
				doc, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				var mbuf bytes.Buffer
				if err := metrics.EncodeSnapshots(&mbuf, mcol.Snapshots()); err != nil {
					t.Fatal(err)
				}
				return doc, mbuf.Bytes(), exportAll(t, tcol)
			}
			scopedRes, scopedMet, scopedTrace := run(false)
			bcastRes, bcastMet, bcastTrace := run(true)
			if !bytes.Equal(scopedRes, bcastRes) {
				t.Errorf("result JSON differs between scoped and broadcast delivery")
			}
			if !bytes.Equal(scopedMet, bcastMet) {
				t.Errorf("metrics sidecar differs between scoped and broadcast delivery")
			}
			if !bytes.Equal(scopedTrace, bcastTrace) {
				t.Errorf("trace export differs: scoped %d bytes, broadcast %d bytes",
					len(scopedTrace), len(bcastTrace))
			}
			if len(scopedTrace) == 0 {
				t.Error("empty trace export")
			}
		})
	}
}
