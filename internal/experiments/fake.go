package experiments

import (
	"fmt"

	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/stats"
)

func registerFake() {
	register("fig18", "Fake ACKs under hidden-terminal collisions vs greedy percentage (UDP)", "Fig. 18 (§V-C)", runFig18)
	register("tab4", "Sender contention window with fake ACKs under hidden terminals (GP 100%)", "Table IV (§V-C)", runTab4)
	register("tab5", "Fake-ACK goodput under inherent wireless losses (802.11b, UDP)", "Table V (§V-C)", runTab5)
	register("fig19", "Fake ACKs: one greedy receiver vs N normal pairs × loss rate (UDP)", "Fig. 19 (§V-C)", runFig19)
}

// hiddenWorld builds the Fig 18 topology with the last nGreedy receivers
// faking ACKs at greedy percentage gp.
func hiddenWorld(seed int64, band phys.Band, gp float64, nGreedy int) (*scenario.World, error) {
	return scenario.BuildHiddenPairs(scenario.HiddenPairsConfig{
		Config: scenario.Config{Seed: seed, Band: band},
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if i < 2-nGreedy || gp == 0 {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{Policy: greedy.NewFakeACKer(w.Sched.RNG(), gp)}
		},
	})
}

func runFig18(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig18", Title: "Fake ACKs with hidden-terminal collision losses"}
	gps := pick(cfg, []float64{0, 25, 50, 75, 100})

	oneR1 := stats.Series{Name: "1 GR: R1 normal (Mbps)"}
	oneR2 := stats.Series{Name: "1 GR: R2 greedy (Mbps)"}
	bothR1 := stats.Series{Name: "2 GR: R1 (Mbps)"}
	bothR2 := stats.Series{Name: "2 GR: R2 (Mbps)"}
	pts, err := sweep(gps, func(gp float64) (baseAttPoint, error) {
		one, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return hiddenWorld(seed, phys.Band80211B, gp, 1)
		}, nil)
		if err != nil {
			return baseAttPoint{}, err
		}
		both, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return hiddenWorld(seed, phys.Band80211B, gp, 2)
		}, nil)
		return baseAttPoint{base: one, att: both}, err
	})
	if err != nil {
		return nil, err
	}
	for i, gp := range gps {
		oneR1.Add(gp, pts[i].base[1])
		oneR2.Add(gp, pts[i].base[2])
		bothR1.Add(gp, pts[i].att[1])
		bothR2.Add(gp, pts[i].att[2])
	}
	res.AddSeries("(a) only R2 fakes ACKs: its gain grows with GP.",
		"greedy_percent", oneR1, oneR2)
	res.AddSeries("(b) both fake ACKs: disabled backoff breeds collisions and both suffer.",
		"greedy_percent", bothR1, bothR2)
	return res, nil
}

func runTab4(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab4", Title: "Average sender CW, hidden terminals, UDP, GP 100%"}
	t := stats.Table{
		Title:  "Fake ACKs pin the greedy flow's sender near CWmin while the normal sender backs off.",
		Header: []string{"band", "case", "S1_avg_cw", "S2_avg_cw"},
	}
	bands := []phys.Band{phys.Band80211B, phys.Band80211A}
	if cfg.Quick {
		bands = bands[:1]
	}
	type rowCase struct {
		band    phys.Band
		name    string
		nGreedy int
	}
	var cases []rowCase
	for _, band := range bands {
		for _, tc := range []struct {
			name    string
			nGreedy int
		}{
			{"no GR", 0},
			{"R2 GR", 1},
			{"both GR", 2},
		} {
			cases = append(cases, rowCase{band, tc.name, tc.nGreedy})
		}
	}
	rows, err := sweep(cases, func(rc rowCase) (map[string]float64, error) {
		_, metrics, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return hiddenWorld(seed, rc.band, 100, rc.nGreedy)
		}, cwExtract)
		return metrics, err
	})
	if err != nil {
		return nil, err
	}
	for i, rc := range cases {
		t.AddRow(rc.band.String(), rc.name, rows[i]["cw_ns"], rows[i]["cw_gs"])
	}
	res.AddTable(t)
	return res, nil
}

// inherentLossPairs builds 2 UDP pairs with a fixed data-frame error rate
// on every link (inherent medium loss, not collision loss).
func inherentLossPairs(seed int64, dataFER, gp float64, nGreedy int) (*scenario.World, error) {
	return scenario.BuildPairs(scenario.PairsConfig{
		Config: scenario.Config{
			Seed: seed, UseRTSCTS: true, Error: phys.DataFERSpec(dataFER),
		},
		N:         2,
		Transport: scenario.UDP,
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if i < 2-nGreedy || gp == 0 {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{Policy: greedy.NewFakeACKer(w.Sched.RNG(), gp)}
		},
	})
}

func runTab5(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab5", Title: "Fake-ACK goodput under inherent wireless losses"}
	t := stats.Table{
		Title:  "Under non-collision losses, backoff is pure waste: faking ACKs helps modestly.",
		Header: []string{"data_fer", "noGR_R1", "noGR_R2", "1GR_R1", "1GR_R2(GR)", "2GR_R1", "2GR_R2"},
	}
	fers := pick(cfg, []float64{0.2, 0.5, 0.8})
	type ferPoint struct {
		base, one, two map[int]float64
	}
	pts, err := sweep(fers, func(fer float64) (ferPoint, error) {
		base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return inherentLossPairs(seed, fer, 0, 0)
		}, nil)
		if err != nil {
			return ferPoint{}, err
		}
		one, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return inherentLossPairs(seed, fer, 100, 1)
		}, nil)
		if err != nil {
			return ferPoint{}, err
		}
		two, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return inherentLossPairs(seed, fer, 100, 2)
		}, nil)
		return ferPoint{base, one, two}, err
	})
	if err != nil {
		return nil, err
	}
	for i, fer := range fers {
		p := pts[i]
		t.AddRow(fer, p.base[1], p.base[2], p.one[1], p.one[2], p.two[1], p.two[2])
	}
	res.AddTable(t)
	return res, nil
}

func runFig19(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig19", Title: "Fake ACKs: one greedy receiver vs N normal pairs × loss"}
	ns := []int{1, 2, 3, 5}
	if cfg.Quick {
		ns = []int{1, 3}
	}
	for _, fer := range []float64{0.2, 0.5} {
		nrAvg := stats.Series{Name: "normal avg (Mbps)"}
		gr := stats.Series{Name: "greedy (Mbps)"}
		pts, err := sweep(ns, func(n int) (map[int]float64, error) {
			total := n + 1
			flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return scenario.BuildPairs(scenario.PairsConfig{
					Config: scenario.Config{
						Seed: seed, UseRTSCTS: true, Error: phys.DataFERSpec(fer),
					},
					N:         total,
					Transport: scenario.UDP,
					ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
						if i != total-1 {
							return scenario.StationOpts{}
						}
						return scenario.StationOpts{Policy: greedy.NewFakeACKer(w.Sched.RNG(), 100)}
					},
				})
			}, nil)
			return flows, err
		})
		if err != nil {
			return nil, err
		}
		for i, n := range ns {
			total := n + 1
			var sum float64
			for id := 1; id < total; id++ {
				sum += pts[i][id]
			}
			nrAvg.Add(float64(n), sum/float64(n))
			gr.Add(float64(n), pts[i][total])
		}
		res.AddSeries(fmt.Sprintf("data frame error rate %.1f", fer),
			"normal_pairs", nrAvg, gr)
	}
	return res, nil
}
