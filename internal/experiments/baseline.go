package experiments

import (
	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
)

func registerBaseline() {
	register("extc", "Extension: DOMINO (sender-side detector) is blind to receiver misbehavior", "§II extension", runExtC)
}

// runExtC pits the paper's three misbehaviors against a DOMINO backoff
// monitor: the attacks succeed while every sender looks compliant — the
// motivating observation of the paper. GRC's detections on the same runs
// are shown for contrast.
func runExtC(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "extc", Title: "DOMINO vs receiver misbehaviors: compliant senders, skewed goodput"}
	t := stats.Table{
		Title: "DOMINO flags senders whose observed average backoff is below half the nominal " +
			"CWmin/2; greedy receivers never alter their senders' backoff, so the attacks run " +
			"unflagged (GRC catches them instead: fig23, fig24, extc's companion runs).",
		Header: []string{"misbehavior", "NR_mbps", "GR_mbps", "domino_flagged",
			"GS_avg_backoff_slots"},
	}
	type extcCase struct {
		name  string
		build func(seed int64, dom *detect.Domino) (*scenario.World, error)
	}
	cases := []extcCase{
		{"nav-inflation +10ms CTS", func(seed int64, dom *detect.Domino) (*scenario.World, error) {
			return scenario.BuildPairs(scenario.PairsConfig{
				Config:    scenario.Config{Seed: seed, UseRTSCTS: true, Trace: dom},
				N:         2,
				Transport: scenario.UDP,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if i != 1 {
						return scenario.StationOpts{}
					}
					return scenario.StationOpts{Policy: greedy.NewNAVInflation(
						w.Sched.RNG(), greedy.CTSOnly, 10*sim.Millisecond, 100)}
				},
			})
		}},
		{"ack-spoofing BER 2e-4", func(seed int64, dom *detect.Domino) (*scenario.World, error) {
			return scenario.BuildPairs(scenario.PairsConfig{
				Config: scenario.Config{
					Seed: seed, UseRTSCTS: true, Error: phys.BERSpec(2e-4),
					ForceCapture: true, Trace: dom,
				},
				N:         2,
				Transport: scenario.TCP,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if i != 1 {
						return scenario.StationOpts{}
					}
					victim, _ := w.Station(scenario.ReceiverName(0))
					return scenario.StationOpts{
						Policy: greedy.NewACKSpoofer(w.Sched.RNG(), 100, victim.ID),
					}
				},
			})
		}},
		{"fake-acks hidden terminals", func(seed int64, dom *detect.Domino) (*scenario.World, error) {
			base := scenario.Config{Seed: seed, Trace: dom}
			return scenario.BuildHiddenPairs(scenario.HiddenPairsConfig{
				Config: base,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if i != 1 {
						return scenario.StationOpts{}
					}
					return scenario.StationOpts{Policy: greedy.NewFakeACKer(w.Sched.RNG(), 100)}
				},
			})
		}},
	}
	type caseResult struct {
		f1, f2, gsBackoff float64
		flagged           string
	}
	rows, err := sweep(cases, func(tc extcCase) (caseResult, error) {
		// One representative seeded run per misbehavior (the verdicts are
		// counters, not medians). Each case gets its own Domino monitor,
		// so cases are independent and run concurrently.
		dom := detect.NewDomino(phys.Params80211B(), 0.5, 20)
		seed := cfg.BaseSeed + 1
		w, err := tc.build(seed, dom)
		if err != nil {
			return caseResult{}, err
		}
		// The Domino monitor occupies the world's Config.Trace tap, so the
		// flight recorder (if any) joins as a second tap here.
		if cfg.Trace != nil {
			rec := cfg.Trace.Start(seed)
			w.AttachTrace(rec, rec)
		}
		w.Run(cfg.Duration)
		f1, _ := w.Flow(1)
		f2, _ := w.Flow(2)
		gs, _ := w.Station(scenario.SenderName(1))
		r := caseResult{
			f1:      f1.GoodputMbps(cfg.Duration),
			f2:      f2.GoodputMbps(cfg.Duration),
			flagged: "no",
		}
		for _, v := range dom.Verdicts() {
			if v.Station == gs.ID {
				r.gsBackoff = v.AvgBackoff
			}
		}
		if dom.AnyCheater() {
			r.flagged = "YES"
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range cases {
		t.AddRow(tc.name, rows[i].f1, rows[i].f2, rows[i].flagged, rows[i].gsBackoff)
	}
	res.AddTable(t)
	return res, nil
}
