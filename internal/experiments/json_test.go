package experiments

import (
	"bytes"
	"testing"
)

// The JSON encoding is the campaign store's value format, so it must be
// stable (same Result → same bytes) and a decode/re-encode cycle must be
// the identity — floats included. fig1 covers series with measured
// float64s, tab3 a pure table artifact.
func TestResultJSONRoundTripIsIdentity(t *testing.T) {
	cfg := RunConfig{Quick: true, Seeds: 1, BaseSeed: 5}
	for _, id := range []string{"fig1", "tab3"} {
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("run %s: %v", id, err)
			}
			first, err := res.MarshalStable()
			if err != nil {
				t.Fatal(err)
			}
			again, err := res.MarshalStable()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, again) {
				t.Fatal("encoding the same Result twice produced different bytes")
			}
			decoded, err := DecodeResult(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			reencoded, err := decoded.MarshalStable()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, reencoded) {
				t.Error("decode → re-encode changed bytes")
			}
			if decoded.String() != res.String() {
				t.Error("decoded result renders differently")
			}
		})
	}
}
