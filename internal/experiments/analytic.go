package experiments

import (
	"greedy80211/internal/analytic"
	"greedy80211/internal/stats"
	"greedy80211/internal/tracestudy"
)

func registerAnalytic() {
	register("tab1", "Corrupted frames preserving MAC addresses (testbed measurement)", "Table I (§V-C)", runTab1)
	register("tab3", "BER and the corresponding FER", "Table III (§V-B)", runTab3)
}

func runTab1(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab1", Title: "Corrupted frames preserve source/destination MAC addresses"}
	t := stats.Table{
		Title: "Synthetic reproduction of the paper's capture (see DESIGN.md §2); " +
			"paper: 11b 1367/1351/1282 of 65536, 11a 7376/6197/5663 of 23068.",
		Header: []string{"band", "received", "corrupted", "corrupted_dst_ok", "corrupted_srcdst_ok",
			"dst_preserved", "srcdst_preserved"},
	}
	for _, tc := range []struct {
		name string
		cfg  tracestudy.CorruptionStudyConfig
	}{
		{"802.11b", tracestudy.TableIConfig80211B(cfg.BaseSeed + 1)},
		{"802.11a", tracestudy.TableIConfig80211A(cfg.BaseSeed + 2)},
	} {
		study := tc.cfg
		if cfg.Quick {
			study.Frames /= 8
		}
		r, err := tracestudy.RunCorruptionStudy(study)
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, r.Received, r.Corrupted, r.CorruptedDstOK, r.CorruptedSrcDstOK,
			r.DstPreservedRate, r.SrcDstPreservedRate)
	}
	res.AddTable(t)
	return res, nil
}

func runTab3(RunConfig) (*Result, error) {
	res := &Result{ID: "tab3", Title: "BER and the corresponding FER"}
	t := stats.Table{
		Title:  "FER = 1 − (1 − BER)^units with units ACK/CTS=38, RTS=44, TCP-ACK=112, TCP-DATA=1130.",
		Header: []string{"ber", "ack_cts", "rts", "tcp_ack", "tcp_data"},
	}
	for _, row := range analytic.TableIII() {
		t.AddRow(row.BER, row.ACKCTS, row.RTS, row.TCPACK, row.TCPData)
	}
	res.AddTable(t)
	return res, nil
}
