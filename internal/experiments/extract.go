package experiments

import (
	"math"
	"strconv"
	"strings"
)

// Reference-point extraction: cmd/report joins an artifact's regenerated
// data against checked-in golden values, so it needs to address single
// data points inside a Result the same way the refdata files do — by
// (series group, series name, x) for figures and by (table, row, column)
// for tables. Both lookups return NaN when the point does not exist;
// callers classify that as a missing measurement rather than an error, so
// a renamed series or a trimmed sweep surfaces as a "missing" verdict in
// the report instead of aborting it.

// Point returns the y value of the named series at x within series group
// g, or NaN if the group, series, or x sample is absent. X values are
// matched exactly: sweeps are built from literal float constants, so the
// refdata files quote the same literals.
func (r *Result) Point(group int, series string, x float64) float64 {
	if group < 0 || group >= len(r.Series) {
		return math.NaN()
	}
	for _, s := range r.Series[group].Series {
		if s.Name != series {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y
			}
		}
	}
	return math.NaN()
}

// Cell returns the numeric value of table t at (row, column name), or NaN
// if the cell is absent or non-numeric. When key is non-empty it must
// equal the row's leading non-numeric cells joined by a single space
// (e.g. "802.11b R2 GR") — a guard that keeps refdata checks anchored to
// the intended row even if rows are ever reordered.
func (r *Result) Cell(t, row int, col, key string) float64 {
	raw, ok := r.CellText(t, row, col, key)
	if !ok {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// CellText returns the raw string of table t at (row, column name), for
// checks against non-numeric cells (e.g. the DOMINO "flagged" verdict
// column). The key guard works as in Cell. ok is false when the cell is
// absent or the key does not match.
func (r *Result) CellText(t, row int, col, key string) (string, bool) {
	if t < 0 || t >= len(r.Tables) {
		return "", false
	}
	tab := r.Tables[t]
	ci := -1
	for i, h := range tab.Header {
		if h == col {
			ci = i
			break
		}
	}
	if ci < 0 || row < 0 || row >= len(tab.Rows) {
		return "", false
	}
	cells := tab.Rows[row]
	if key != "" && rowKey(cells) != key {
		return "", false
	}
	if ci >= len(cells) {
		return "", false
	}
	return cells[ci], true
}

// rowKey is the row's identity for the Cell key guard: its leading cells
// up to (excluding) the first numeric one, joined by single spaces.
func rowKey(cells []string) string {
	var parts []string
	for _, c := range cells {
		if _, err := strconv.ParseFloat(c, 64); err == nil {
			break
		}
		parts = append(parts, c)
	}
	return strings.Join(parts, " ")
}
