package experiments

import (
	"fmt"

	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
)

// Ablations of the design choices DESIGN.md calls out: the capture-effect
// assumption behind the spoofing evaluation, GRC's RSSI threshold, and
// the basic (control-frame) rate.

func registerAblation() {
	register("abl1", "Ablation: capture-effect assumption in the ACK-spoofing evaluation", "ablation (beyond paper)", runAbl1)
	register("abl2", "Ablation: GRC RSSI threshold in the live spoofing scenario", "ablation (beyond paper)", runAbl2)
	register("abl3", "Ablation: control-frame (basic) rate 1 vs 2 Mbps", "ablation (beyond paper)", runAbl3)
}

// runAbl1 re-runs the Fig 11 operating point under three capture regimes.
// The paper assumes capture always resolves the two-simultaneous-ACKs
// case (ForceCapture); realistic 10 dB capture lets the spoofed ACK
// *collide* with the genuine one when their powers are close — adding a
// jamming side effect the paper deliberately excluded.
func runAbl1(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "abl1", Title: "Spoofing at BER 2e-4 under different capture regimes"}
	t := stats.Table{
		Title: "ForceCapture is the paper's assumption; 10 dB is ns-2's realistic threshold " +
			"(close ACKs collide: spoofing gains a jamming component); none = every overlap collides.",
		Header: []string{"capture", "noGR_R1", "noGR_R2", "GR_NR", "GR_GR"},
	}
	type regime struct {
		name    string
		force   bool
		disable bool
	}
	regimes := []regime{
		{"force (paper)", true, false},
		{"10 dB threshold", false, false},
		{"disabled", false, true},
	}
	if cfg.Quick {
		regimes = regimes[:2]
	}
	rows, err := sweep(regimes, func(reg regime) (baseAttPoint, error) {
		build := func(seed int64, spoof bool) (*scenario.World, error) {
			return scenario.BuildPairs(scenario.PairsConfig{
				Config: scenario.Config{
					Seed: seed, UseRTSCTS: true, Error: phys.BERSpec(2e-4),
					ForceCapture: reg.force, DisableCapture: reg.disable,
				},
				N:         2,
				Transport: scenario.TCP,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if !spoof || i != 1 {
						return scenario.StationOpts{}
					}
					victim, _ := w.Station(scenario.ReceiverName(0))
					return scenario.StationOpts{
						Policy: greedy.NewACKSpoofer(w.Sched.RNG(), 100, victim.ID),
					}
				},
			})
		}
		base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return build(seed, false)
		}, nil)
		if err != nil {
			return baseAttPoint{}, err
		}
		att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return build(seed, true)
		}, nil)
		return baseAttPoint{base, att}, err
	})
	if err != nil {
		return nil, err
	}
	for i, reg := range regimes {
		t.AddRow(reg.name, rows[i].base[1], rows[i].base[2], rows[i].att[1], rows[i].att[2])
	}
	res.AddTable(t)
	return res, nil
}

// runAbl2 sweeps GRC's RSSI threshold in the live Fig 24 scenario at
// BER 4.4e-4, reporting the victim's recovered goodput and GRC's
// intervention counters — the live-system counterpart of Fig 22's offline
// FP/FN curves.
func runAbl2(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "abl2", Title: "GRC RSSI threshold sweep against live spoofing (BER 4.4e-4)"}
	t := stats.Table{
		Title: "Small thresholds flag more (risking false suspicion); large thresholds miss " +
			"spoofs. Recovery is stable because only capture-safe rejections act.",
		Header: []string{"threshold_db", "victim_mbps", "attacker_mbps",
			"spoofs_ignored", "acks_checked"},
	}
	thresholds := pick(cfg, []float64{0.25, 0.5, 1, 2, 4})
	type thPoint struct {
		flows   map[int]float64
		metrics map[string]float64
	}
	pts, err := sweep(thresholds, func(th float64) (thPoint, error) {
		grcCfg := detect.DefaultConfig()
		grcCfg.RSSIThresholdDB = th
		flows, metrics, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return grcSpoofWorldWithConfig(seed, 4.4e-4, grcCfg)
		}, func(w *scenario.World, m map[string]float64) {
			s1, _ := w.Station("S1")
			m["ignored"] = float64(s1.GRC.Stats().SpoofIgnored)
			m["checked"] = float64(s1.GRC.Stats().ACKsChecked)
		})
		return thPoint{flows, metrics}, err
	})
	if err != nil {
		return nil, err
	}
	for i, th := range thresholds {
		p := pts[i]
		t.AddRow(th, p.flows[1], p.flows[2], p.metrics["ignored"], p.metrics["checked"])
	}
	res.AddTable(t)
	return res, nil
}

// runAbl3 compares 1 Mbps vs 2 Mbps control frames: baseline capacity
// rises with the faster basic rate, and the NAV-inflation attack remains
// exactly as devastating (it manipulates a field, not airtime).
func runAbl3(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "abl3", Title: "Control-frame rate ablation (802.11b, UDP)"}
	t := stats.Table{
		Title:  "Faster control frames raise capacity; the NAV attack is rate-independent.",
		Header: []string{"basic_rate", "case", "R1_mbps", "R2_mbps"},
	}
	type rowCase struct {
		rate   int64
		name   string
		greedy bool
	}
	var cases []rowCase
	for _, rate := range []int64{phys.Rate1Mbps, phys.Rate2Mbps} {
		for _, tc := range []struct {
			name   string
			greedy bool
		}{{"no GR", false}, {"R2 inflates CTS 10ms", true}} {
			cases = append(cases, rowCase{rate, tc.name, tc.greedy})
		}
	}
	rows, err := sweep(cases, func(c rowCase) (map[int]float64, error) {
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return scenario.BuildPairs(scenario.PairsConfig{
				Config: scenario.Config{
					Seed: seed, UseRTSCTS: true, ControlRateBps: c.rate,
				},
				N:         2,
				Transport: scenario.UDP,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if !c.greedy || i != 1 {
						return scenario.StationOpts{}
					}
					return scenario.StationOpts{Policy: greedy.NewNAVInflation(
						w.Sched.RNG(), greedy.CTSOnly, 10*sim.Millisecond, 100)}
				},
			})
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		t.AddRow(fmt.Sprintf("%d Mbps", c.rate/1_000_000), c.name, rows[i][1], rows[i][2])
	}
	res.AddTable(t)
	return res, nil
}
