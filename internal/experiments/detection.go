package experiments

import (
	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/tracestudy"
	"greedy80211/internal/transport"
)

func registerDetection() {
	register("fig21", "CDF of |RSSI − median RSSI| over all links (16-node floor)", "Fig. 21 (§VII)", runFig21)
	register("fig22", "Spoof detection: false positive/negative vs RSSI threshold", "Fig. 22 (§VII)", runFig22)
	register("fig23", "GRC vs inflated CTS NAV across pair separation (UDP and TCP)", "Fig. 23 (§VIII)", runFig23)
	register("fig24", "GRC vs ACK spoofing across BER (TCP)", "Fig. 24 (§VIII)", runFig24)
}

func runFig21(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig21", Title: "CDF of RSSI deviation from the link median"}
	study := tracestudy.DefaultRSSIStudyConfig(cfg.BaseSeed + 21)
	if cfg.Quick {
		study.SamplesPerLink = 50
	}
	r, err := tracestudy.RunRSSIStudy(study)
	if err != nil {
		return nil, err
	}
	xs := []float64{0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 5}
	cdf := r.CDF(xs)
	s := stats.Series{Name: "CDF"}
	for i, x := range xs {
		s.Add(x, cdf[i])
	}
	res.AddSeries("≈95% of samples fall within 1 dB of the link median.", "deviation_db", s)
	return res, nil
}

func runFig22(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig22", Title: "False positive and false negative vs RSSI threshold"}
	study := tracestudy.DefaultRSSIStudyConfig(cfg.BaseSeed + 22)
	if cfg.Quick {
		study.SamplesPerLink = 50
	}
	thresholds := []float64{0, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 5}
	pts, err := tracestudy.RunDetectionTradeoff(study, thresholds)
	if err != nil {
		return nil, err
	}
	fp := stats.Series{Name: "false positive"}
	fn := stats.Series{Name: "false negative"}
	for _, p := range pts {
		fp.Add(p.ThresholdDB, p.FalsePositive)
		fn.Add(p.ThresholdDB, p.FalseNegative)
	}
	res.AddSeries("1 dB achieves both low FP and low FN.", "rssi_threshold_db", fp, fn)
	return res, nil
}

// grcNAVWorld builds the Fig 23 topology: pair 1 at the origin, pair 2 at
// distance d, 55 m communication / 99 m interference ranges, R2 inflating
// CTS NAV when greedyOn, GRC everywhere when grcOn.
func grcNAVWorld(seed int64, tr scenario.Transport, d float64, greedyOn, grcOn bool) (*scenario.World, error) {
	prop := phys.GRCPropagation()
	w, err := scenario.NewWorld(scenario.Config{
		Seed: seed, UseRTSCTS: true, Propagation: &prop,
	})
	if err != nil {
		return nil, err
	}
	grcCfg := detect.DefaultConfig()
	opts := func(greedy bool) scenario.StationOpts {
		o := scenario.StationOpts{}
		if grcOn {
			o.GRC = &grcCfg
		}
		return o
	}
	r2opts := opts(true)
	if greedyOn {
		r2opts.Policy = greedy.NewNAVInflation(w.Sched.RNG(), greedyFrameSetCTS(), 31*sim.Millisecond, 100)
	}
	// Geometry per Fig 23(a): pair 1 clustered at the origin; the greedy
	// receiver R2 at distance d, with its sender S2 a further 10 m out.
	// This creates the paper's three regimes: d ≤ 45 m, S1/R1 hear S2's
	// RTS and clamp R2's CTS NAV exactly; 45 < d ≤ 55 m, they hear only
	// R2's CTS and must fall back to the 1500-byte MTU bound (R2 keeps a
	// ~46% airtime advantage); d > 55 m, the inflated CTS is inaudible.
	add := func(name string, pos phys.Position, o scenario.StationOpts) error {
		_, err := w.AddStation(name, pos, o)
		return err
	}
	if err := add("R1", phys.Position{X: 2}, opts(false)); err != nil {
		return nil, err
	}
	if err := add("R2", phys.Position{X: d}, r2opts); err != nil {
		return nil, err
	}
	if err := add("S1", phys.Position{}, opts(false)); err != nil {
		return nil, err
	}
	if err := add("S2", phys.Position{X: d + 10}, opts(false)); err != nil {
		return nil, err
	}
	for i, pair := range [][2]string{{"S1", "R1"}, {"S2", "R2"}} {
		switch tr {
		case scenario.TCP:
			_, err = w.AddTCPFlow(i+1, pair[0], pair[1], transport.DefaultTCPConfig(i+1))
		default:
			_, err = w.AddUDPFlow(i+1, pair[0], pair[1], scenario.DefaultCBRRateBps, scenario.DefaultPayloadBytes)
		}
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

func greedyFrameSetCTS() greedy.FrameSet { return greedy.CTSOnly }

// protPoint is one sweep point's baseline / attack / GRC-protected runs.
type protPoint struct {
	base, att, prot map[int]float64
}

func runFig23(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig23", Title: "GRC against inflated CTS NAV vs pair separation (comm 55 m, interf 99 m)"}
	dists := pick(cfg, []float64{5, 15, 25, 35, 45, 52, 65, 85, 105, 120})
	transports := []struct {
		caption string
		tr      scenario.Transport
	}{
		{"(b) UDP", scenario.UDP},
		{"(c) TCP", scenario.TCP},
	}
	if cfg.Quick {
		transports = transports[:1]
	}
	for _, tc := range transports {
		noGR := stats.Series{Name: "no GR: R1 (Mbps)"}
		attR1 := stats.Series{Name: "GR no GRC: R1 (Mbps)"}
		attR2 := stats.Series{Name: "GR no GRC: R2 (Mbps)"}
		grcR1 := stats.Series{Name: "GR + GRC: R1 (Mbps)"}
		grcR2 := stats.Series{Name: "GR + GRC: R2 (Mbps)"}
		pts, err := sweep(dists, func(d float64) (protPoint, error) {
			base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return grcNAVWorld(seed, tc.tr, d, false, false)
			}, nil)
			if err != nil {
				return protPoint{}, err
			}
			att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return grcNAVWorld(seed, tc.tr, d, true, false)
			}, nil)
			if err != nil {
				return protPoint{}, err
			}
			prot, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return grcNAVWorld(seed, tc.tr, d, true, true)
			}, nil)
			return protPoint{base, att, prot}, err
		})
		if err != nil {
			return nil, err
		}
		for i, d := range dists {
			p := pts[i]
			noGR.Add(d, p.base[1])
			attR1.Add(d, p.att[1])
			attR2.Add(d, p.att[2])
			grcR1.Add(d, p.prot[1])
			grcR2.Add(d, p.prot[2])
		}
		res.AddSeries(tc.caption+" — GRC restores R1 below 55 m; beyond 55 m the inflated CTS is inaudible anyway.",
			"pair_separation_m", noGR, attR1, attR2, grcR1, grcR2)
	}
	return res, nil
}

// grcSpoofWorld builds the Fig 24 scenario: two TCP pairs with equal BER;
// R2 spoofs for R1 from a position whose signal at S1 is ≥10 dB below
// R1's, so GRC can safely ignore forged ACKs.
func grcSpoofWorld(seed int64, ber float64, greedyOn, grcOn bool) (*scenario.World, error) {
	if !grcOn {
		return grcSpoofWorldAt(seed, ber, greedyOn, nil)
	}
	cfg := detect.DefaultConfig()
	return grcSpoofWorldAt(seed, ber, greedyOn, &cfg)
}

// grcSpoofWorldWithConfig is grcSpoofWorld with the attack on and a
// custom GRC configuration at the victim's sender (the abl2 sweep).
func grcSpoofWorldWithConfig(seed int64, ber float64, grcCfg detect.Config) (*scenario.World, error) {
	return grcSpoofWorldAt(seed, ber, true, &grcCfg)
}

func grcSpoofWorldAt(seed int64, ber float64, greedyOn bool, grcCfg *detect.Config) (*scenario.World, error) {
	w, err := scenario.NewWorld(scenario.Config{
		Seed: seed, UseRTSCTS: true, Error: phys.BERSpec(ber), ForceCapture: true,
	})
	if err != nil {
		return nil, err
	}
	if _, err := w.AddStation("R1", phys.Position{X: 5}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	r2opts := scenario.StationOpts{}
	if greedyOn {
		r1, _ := w.Station("R1")
		r2opts.Policy = greedy.NewACKSpoofer(w.Sched.RNG(), 100, r1.ID)
	}
	if _, err := w.AddStation("R2", phys.Position{X: 5, Y: 30}, r2opts); err != nil {
		return nil, err
	}
	s1opts := scenario.StationOpts{}
	if grcCfg != nil {
		s1opts.GRC = grcCfg
	}
	if _, err := w.AddStation("S1", phys.Position{}, s1opts); err != nil {
		return nil, err
	}
	if _, err := w.AddStation("S2", phys.Position{Y: 30}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	if _, err := w.AddTCPFlow(1, "S1", "R1", transport.DefaultTCPConfig(1)); err != nil {
		return nil, err
	}
	if _, err := w.AddTCPFlow(2, "S2", "R2", transport.DefaultTCPConfig(2)); err != nil {
		return nil, err
	}
	return w, nil
}

func runFig24(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig24", Title: "GRC detects and recovers from ACK spoofing vs BER"}
	bers := pick(cfg, []float64{0, 1e-5, 2e-4, 4.4e-4, 8e-4, 1.4e-3})
	noGR1 := stats.Series{Name: "no GR: R1 (Mbps)"}
	noGR2 := stats.Series{Name: "no GR: R2 (Mbps)"}
	attR1 := stats.Series{Name: "GR no GRC: R1 (Mbps)"}
	attR2 := stats.Series{Name: "GR no GRC: R2 (Mbps)"}
	grcR1 := stats.Series{Name: "GR + GRC: R1 (Mbps)"}
	grcR2 := stats.Series{Name: "GR + GRC: R2 (Mbps)"}
	pts, err := sweep(bers, func(ber float64) (protPoint, error) {
		base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return grcSpoofWorld(seed, ber, false, false)
		}, nil)
		if err != nil {
			return protPoint{}, err
		}
		att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return grcSpoofWorld(seed, ber, true, false)
		}, nil)
		if err != nil {
			return protPoint{}, err
		}
		prot, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return grcSpoofWorld(seed, ber, true, true)
		}, nil)
		return protPoint{base, att, prot}, err
	})
	if err != nil {
		return nil, err
	}
	for i, ber := range bers {
		p := pts[i]
		x := ber * 1e4
		noGR1.Add(x, p.base[1])
		noGR2.Add(x, p.base[2])
		attR1.Add(x, p.att[1])
		attR2.Add(x, p.att[2])
		grcR1.Add(x, p.prot[1])
		grcR2.Add(x, p.prot[2])
	}
	res.AddSeries("With GRC both flows track the no-attack goodput curves.",
		"ber_1e-4", noGR1, noGR2, attR1, attR2, grcR1, grcR2)
	return res, nil
}
