package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits the artifact as stable, machine-readable JSON: struct
// field order is fixed by the type definitions and floats use Go's
// shortest round-trip representation, so encoding the same Result always
// produces the same bytes, and a decode/re-encode cycle is the identity.
// This is the `-json` output of cmd/experiments and the value format of
// the campaign result store.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("experiments: %s json encode: %w", r.ID, err)
	}
	return nil
}

// MarshalStable returns WriteJSON's bytes.
func (r *Result) MarshalStable() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeResult reads one WriteJSON document back. Decoding then
// re-encoding yields byte-identical output (float64s survive the JSON
// round trip exactly).
func DecodeResult(rd io.Reader) (*Result, error) {
	var res Result
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("experiments: json decode: %w", err)
	}
	return &res, nil
}
