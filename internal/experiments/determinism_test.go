package experiments

import (
	"testing"

	"greedy80211/internal/runner"
)

// The parallel experiment engine must be invisible in the output: runs are
// collected by (sweep-point, seed) index, never by completion order, so an
// artifact regenerated on a saturated worker pool is byte-identical to the
// sequential regeneration. Representative artifacts cover a series sweep
// with extracted metrics (fig2), a non-simulation study (tab1), and a
// table-of-cases runner with nested runSeeds fan-out (abl1).
func TestParallelMatchesSequential(t *testing.T) {
	cfg := RunConfig{Quick: true, Seeds: 3, BaseSeed: 17}
	old := runner.Limit()
	defer runner.SetLimit(old)
	for _, id := range []string{"fig2", "tab1", "abl1"} {
		t.Run(id, func(t *testing.T) {
			runner.SetLimit(1)
			seq, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("sequential %s: %v", id, err)
			}
			runner.SetLimit(8)
			par, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("parallel %s: %v", id, err)
			}
			if seq.String() != par.String() {
				t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, seq.String(), par.String())
			}
		})
	}
}
