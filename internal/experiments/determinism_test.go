package experiments

import (
	"strings"
	"testing"

	"greedy80211/internal/metrics"
	"greedy80211/internal/runner"
)

// The parallel experiment engine must be invisible in the output: runs are
// collected by (sweep-point, seed) index, never by completion order, so an
// artifact regenerated on a saturated worker pool is byte-identical to the
// sequential regeneration. Representative artifacts cover a series sweep
// with extracted metrics (fig2), a non-simulation study (tab1), and a
// table-of-cases runner with nested runSeeds fan-out (abl1).
func TestParallelMatchesSequential(t *testing.T) {
	cfg := RunConfig{Quick: true, Seeds: 3, BaseSeed: 17}
	old := runner.Limit()
	defer runner.SetLimit(old)
	for _, id := range []string{"fig2", "tab1", "abl1"} {
		t.Run(id, func(t *testing.T) {
			runner.SetLimit(1)
			seq, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("sequential %s: %v", id, err)
			}
			runner.SetLimit(8)
			par, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("parallel %s: %v", id, err)
			}
			if seq.String() != par.String() {
				t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, seq.String(), par.String())
			}
		})
	}
}

// The telemetry sidecar must be byte-identical across worker-pool sizes:
// snapshots are collected in completion order, but the Collector emits
// them canonically. fig2 exercises a series sweep with per-point seed
// fan-out; tab1 a table runner.
func TestMetricsSidecarParallelMatchesSequential(t *testing.T) {
	old := runner.Limit()
	defer runner.SetLimit(old)
	emit := func(id string, limit int) string {
		runner.SetLimit(limit)
		col := metrics.NewCollector()
		cfg := RunConfig{Quick: true, Seeds: 3, BaseSeed: 29, Metrics: col}
		if _, err := Run(id, cfg); err != nil {
			t.Fatalf("%s at limit %d: %v", id, limit, err)
		}
		var b strings.Builder
		for i, snap := range col.Snapshots() {
			if err := metrics.EncodeJSONL(&b, metrics.Labeled{Label: id, Group: i, Snap: snap}); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	for _, tc := range []struct {
		id        string
		simulated bool // tab1 is a non-simulation study: no worlds, no telemetry
	}{{"fig2", true}, {"abl1", true}, {"tab1", false}} {
		t.Run(tc.id, func(t *testing.T) {
			seq := emit(tc.id, 1)
			par := emit(tc.id, 8)
			if tc.simulated && seq == "" {
				t.Fatalf("%s: no telemetry collected", tc.id)
			}
			if seq != par {
				t.Errorf("%s: sidecar differs between sequential and parallel runs\n--- sequential ---\n%s\n--- parallel ---\n%s",
					tc.id, seq, par)
			}
		})
	}
}
