package experiments

import (
	"math"
	"testing"

	"greedy80211/internal/stats"
)

func extractFixture() *Result {
	res := &Result{ID: "figx", Title: "fixture"}
	a := stats.Series{Name: "A (Mbps)"}
	a.Add(0, 1.5)
	a.Add(0.2, 2.5)
	b := stats.Series{Name: "B (Mbps)"}
	b.Add(0, 0.5)
	res.AddSeries("group zero", "x_ms", a, b)
	t := stats.Table{Header: []string{"band", "case", "S1", "S2"}}
	t.AddRow("802.11b", "no GR", 137.37, 112.25)
	t.AddRow("802.11b", "R2 GR", 193.43, 0.0005)
	res.AddTable(t)
	return res
}

func TestResultPoint(t *testing.T) {
	r := extractFixture()
	if got := r.Point(0, "A (Mbps)", 0.2); got != 2.5 {
		t.Errorf("Point(0, A, 0.2) = %v, want 2.5", got)
	}
	if got := r.Point(0, "B (Mbps)", 0); got != 0.5 {
		t.Errorf("Point(0, B, 0) = %v, want 0.5", got)
	}
	for name, got := range map[string]float64{
		"absent series": r.Point(0, "C (Mbps)", 0),
		"absent x":      r.Point(0, "A (Mbps)", 0.3),
		"absent group":  r.Point(1, "A (Mbps)", 0),
		"bad group":     r.Point(-1, "A (Mbps)", 0),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s: got %v, want NaN", name, got)
		}
	}
}

func TestResultCell(t *testing.T) {
	r := extractFixture()
	if got := r.Cell(0, 0, "S1", ""); got != 137.37 {
		t.Errorf("Cell(0,0,S1) = %v, want 137.37", got)
	}
	// Small values round-trip through the table's scientific formatting.
	if got := r.Cell(0, 1, "S2", ""); got != 5e-4 {
		t.Errorf("Cell(0,1,S2) = %v, want 5e-4", got)
	}
	// The key guard anchors the check to the intended row.
	if got := r.Cell(0, 1, "S1", "802.11b R2 GR"); got != 193.43 {
		t.Errorf("Cell with matching key = %v, want 193.43", got)
	}
	for name, got := range map[string]float64{
		"key mismatch":    r.Cell(0, 1, "S1", "802.11b no GR"),
		"absent column":   r.Cell(0, 0, "S9", ""),
		"absent row":      r.Cell(0, 9, "S1", ""),
		"absent table":    r.Cell(1, 0, "S1", ""),
		"non-numeric col": r.Cell(0, 0, "case", ""),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s: got %v, want NaN", name, got)
		}
	}
}

func TestRegistryPaperRefs(t *testing.T) {
	for _, reg := range All() {
		if reg.Paper == "" {
			t.Errorf("artifact %s has no paper reference", reg.ID)
		}
	}
}
