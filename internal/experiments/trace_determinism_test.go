package experiments

import (
	"bytes"
	"testing"

	"greedy80211/internal/runner"
	"greedy80211/internal/trace"
)

// exportAll serializes every recording of one collector in canonical
// order, exactly as trace.ExportDir would lay the files out.
func exportAll(t *testing.T, coll *trace.Collector) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range coll.Recordings() {
		if err := trace.WriteJSONL(&buf, rec.Meta("x"), rec.Recorder.Events()); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// The flight recorder must be invisible to scheduling and its exports
// deterministic: the same artifact recorded on a single-worker pool and
// on a wide pool must produce byte-identical JSONL streams, because the
// Collector orders recordings canonically by seed, not completion order.
// fig1 fans out seeds under one sweep; abl1 nests runSeeds per case.
func TestTraceParallelMatchesSequential(t *testing.T) {
	old := runner.Limit()
	defer runner.SetLimit(old)
	for _, id := range []string{"fig1", "abl1"} {
		t.Run(id, func(t *testing.T) {
			run := func(limit int) []byte {
				runner.SetLimit(limit)
				coll := trace.NewCollector(0)
				cfg := RunConfig{Quick: true, Seeds: 2, BaseSeed: 17, Trace: coll}
				if _, err := Run(id, cfg); err != nil {
					t.Fatalf("limit %d: %v", limit, err)
				}
				return exportAll(t, coll)
			}
			seq := run(1)
			par := run(8)
			if !bytes.Equal(seq, par) {
				t.Errorf("%s: parallel trace differs from sequential (%d vs %d bytes)",
					id, len(seq), len(par))
			}
			if len(seq) == 0 {
				t.Errorf("%s: empty trace export", id)
			}
		})
	}
}

// TestTraceDoesNotPerturbResults: attaching the recorder must not change
// the artifact's numbers — probes consume no randomness and schedule no
// events.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	cfg := RunConfig{Quick: true, Seeds: 2, BaseSeed: 17}
	bare, err := Run("fig1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced := cfg
	traced.Trace = trace.NewCollector(0)
	got, err := Run("fig1", traced)
	if err != nil {
		t.Fatal(err)
	}
	if bare.String() != got.String() {
		t.Errorf("tracing changed fig1 output:\n--- bare ---\n%s\n--- traced ---\n%s",
			bare.String(), got.String())
	}
}
