package experiments

import (
	"greedy80211/internal/greedy"
	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/stats"
)

// The auto-rate experiments implement the paper's Section IX future work:
// how rate adaptation (ARF) interacts with the feedback-forging
// misbehaviors. Fake ACKs hide failures from ARF, so the greedy flow's
// sender climbs to rates the channel cannot sustain; spoofed ACKs do the
// same to the victim's sender.

func registerAutoRate() {
	register("exta", "Extension: fake ACKs under ARF auto-rate vs fixed rate (UDP)", "§IX extension", runExtA)
	register("extb", "Extension: spoofed ACKs under ARF auto-rate vs fixed rate (TCP)", "§IX extension", runExtB)
}

// marginalLadderFER models a link whose SNR supports 1–2 Mbps cleanly,
// 5.5 Mbps marginally, and 11 Mbps badly.
func marginalLadderFER() phys.ErrorSpec {
	return phys.RateLadderSpec(map[int64]float64{
		1_000_000:  0,
		2_000_000:  0.01,
		5_500_000:  0.15,
		11_000_000: 0.70,
	}, 200) // control frames (basic rate, short) always pass
}

// autoratePairs builds 2 pairs on a marginal link; senders optionally run
// ARF, and the last receiver optionally misbehaves.
func autoratePairs(seed int64, tr scenario.Transport, useARF bool,
	policy func(w *scenario.World) mac.ReceiverPolicy) (*scenario.World, error) {
	return scenario.BuildPairs(scenario.PairsConfig{
		Config: scenario.Config{
			Seed:         seed,
			UseRTSCTS:    true,
			Error:        marginalLadderFER(),
			ForceCapture: tr == scenario.TCP, // spoofing study keeps the paper's capture assumption
		},
		N:         2,
		Transport: tr,
		SenderOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if !useARF {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{
				AutoRate: mac.NewARF(mac.Rates80211B(), 0, 0),
			}
		},
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if i != 1 || policy == nil {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{Policy: policy(w)}
		},
	})
}

func runExtA(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "exta", Title: "Fake ACKs × auto-rate: forged feedback pins ARF at unsustainable rates"}
	t := stats.Table{
		Title: "Marginal link (11 Mbps FER 0.7, 5.5 Mbps FER 0.15). Under ARF, fake ACKs stop " +
			"the sender from downshifting, reducing the attack's benefit (Section IX).",
		Header: []string{"rate_control", "case", "R1_mbps", "R2_mbps"},
	}
	type rowCase struct {
		rcName, tcName string
		arf, fake      bool
	}
	var cases []rowCase
	for _, rc := range []struct {
		name string
		arf  bool
	}{{"fixed 11 Mbps", false}, {"ARF", true}} {
		for _, tc := range []struct {
			name string
			fake bool
		}{{"no GR", false}, {"R2 fakes ACKs", true}} {
			cases = append(cases, rowCase{rc.name, tc.name, rc.arf, tc.fake})
		}
	}
	rows, err := sweep(cases, func(c rowCase) (map[int]float64, error) {
		var policy func(w *scenario.World) mac.ReceiverPolicy
		if c.fake {
			policy = func(w *scenario.World) mac.ReceiverPolicy {
				return greedy.NewFakeACKer(w.Sched.RNG(), 100)
			}
		}
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return autoratePairs(seed, scenario.UDP, c.arf, policy)
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		t.AddRow(c.rcName, c.tcName, rows[i][1], rows[i][2])
	}
	res.AddTable(t)
	return res, nil
}

func runExtB(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "extb", Title: "Spoofed ACKs × auto-rate: the victim's sender is kept at a bad rate"}
	t := stats.Table{
		Title: "Spoofed ACKs hide the victim's losses from its sender's ARF, so it never " +
			"downshifts — increasing the damage (Section IX).",
		Header: []string{"rate_control", "case", "NR_mbps", "GR_mbps"},
	}
	type rowCase struct {
		rcName, tcName string
		arf, spoof     bool
	}
	var cases []rowCase
	for _, rc := range []struct {
		name string
		arf  bool
	}{{"fixed 11 Mbps", false}, {"ARF", true}} {
		for _, tc := range []struct {
			name  string
			spoof bool
		}{{"no GR", false}, {"R2 spoofs for R1", true}} {
			cases = append(cases, rowCase{rc.name, tc.name, rc.arf, tc.spoof})
		}
	}
	rows, err := sweep(cases, func(c rowCase) (map[int]float64, error) {
		var policy func(w *scenario.World) mac.ReceiverPolicy
		if c.spoof {
			policy = func(w *scenario.World) mac.ReceiverPolicy {
				r1, _ := w.Station(scenario.ReceiverName(0))
				return greedy.NewACKSpoofer(w.Sched.RNG(), 100, r1.ID)
			}
		}
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return autoratePairs(seed, scenario.TCP, c.arf, policy)
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		t.AddRow(c.rcName, c.tcName, rows[i][1], rows[i][2])
	}
	res.AddTable(t)
	return res, nil
}
