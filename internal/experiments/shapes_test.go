package experiments

import (
	"strconv"
	"testing"

	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
)

// The tests in this file assert the paper's *claims* — orderings,
// factors, thresholds — on moderate-fidelity runs (2 seeds × 3 s, full
// sweeps). They are the regression suite for the reproduction itself.
// Skipped with -short.

func shapeCfg() RunConfig {
	return RunConfig{Seeds: 2, Duration: 3 * sim.Second, BaseSeed: 41}
}

func shapeRun(t *testing.T, id string) *Result {
	t.Helper()
	if testing.Short() {
		t.Skip("shape assertions skipped in -short mode")
	}
	res, err := Run(id, shapeCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

// at returns the y value of series s at x, failing if absent.
func at(t *testing.T, s stats.Series, x float64) float64 {
	t.Helper()
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	t.Fatalf("series %q has no point at x=%v", s.Name, x)
	return 0
}

// Fig 1 claim: starvation by 0.6 ms of CTS NAV inflation.
func TestShapeFig1StarvationThreshold(t *testing.T) {
	res := shapeRun(t, "fig1")
	nr, gr := res.Series[0].Series[0], res.Series[0].Series[1]
	if v := at(t, nr, 0) / at(t, gr, 0); v < 0.75 || v > 1.33 {
		t.Errorf("zero-inflation baseline unfair: ratio %.2f", v)
	}
	if nrAt06 := at(t, nr, 0.6); nrAt06 > 0.1 {
		t.Errorf("victim still at %.2f Mbps at +0.6 ms; paper claims starvation", nrAt06)
	}
	if grAt06 := at(t, gr, 0.6); grAt06 < 3.0 {
		t.Errorf("greedy only %.2f Mbps at +0.6 ms; should hold the channel", grAt06)
	}
}

// Fig 4 claim: greedy wins at every inflation; RTS+CTS starves at 1 ms;
// all-frames is at least as damaging as CTS-only everywhere.
func TestShapeFig4Ordering(t *testing.T) {
	res := shapeRun(t, "fig4")
	cts := res.Series[0]
	rtscts := res.Series[1]
	all := res.Series[3]
	for _, x := range []float64{1, 2, 5, 10, 31} {
		if at(t, cts.Series[0], x) >= at(t, cts.Series[1], x) {
			t.Errorf("CTS panel at %vms: victim ≥ greedy", x)
		}
	}
	if v := at(t, rtscts.Series[0], 1); v > 0.35 {
		t.Errorf("RTS+CTS at 1ms leaves victim %.2f Mbps; paper claims near-starvation", v)
	}
	for _, x := range []float64{1, 5, 31} {
		if at(t, all.Series[0], x) > at(t, cts.Series[0], x)+0.15 {
			t.Errorf("all-frames leaves victim more than CTS-only at %vms", x)
		}
	}
}

// Fig 6 claim: ~10 ms CTS inflation dominates 7 competitors.
func TestShapeFig6Domination(t *testing.T) {
	res := shapeRun(t, "fig6")
	gr, nr := res.Series[0].Series[0], res.Series[0].Series[1]
	if g, n := at(t, gr, 10), at(t, nr, 10); g < 20*n {
		t.Errorf("at 10ms greedy %.2f vs normal-avg %.2f; paper claims domination", g, n)
	}
	if g0, n0 := at(t, gr, 0), at(t, nr, 0); g0 > 3*n0 {
		t.Errorf("baseline already skewed: %.2f vs %.2f", g0, n0)
	}
}

// Fig 7 claim: GP=50% already yields a substantial gain at 5/10 ms and a
// full grab at 31 ms.
func TestShapeFig7GreedyPercent(t *testing.T) {
	res := shapeRun(t, "fig7")
	for i, wantGapAt50 := range []float64{0.7, 1.2, 1.5} {
		nr, gr := res.Series[i].Series[0], res.Series[i].Series[1]
		gap := at(t, gr, 50) - at(t, nr, 50)
		if gap < wantGapAt50 {
			t.Errorf("panel %d GP=50 gap %.2f Mbps, want ≥ %.2f", i, gap, wantGapAt50)
		}
		// Monotone in GP for the greedy side (within noise).
		if at(t, gr, 100) < at(t, gr, 25) {
			t.Errorf("panel %d: greedy goodput fell from GP 25 to 100", i)
		}
	}
}

// Fig 9 claim: with k ≥ 1 greedy receivers at +31 ms, the channel is
// monopolized — one flow dominates (leadership can change hands after a
// packet loss, as the paper notes, so over a finite run the top two
// flows may split the epochs) and the rest of the field starves.
func TestShapeFig9SingleSurvivor(t *testing.T) {
	if testing.Short() {
		t.Skip("shape assertions skipped in -short mode")
	}
	cfg := shapeCfg()
	cfg.Duration = 6 * sim.Second
	res, err := Run("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	for _, row := range rows[1:] { // skip the k=0 baseline row
		vals := make([]float64, 0, 8)
		total := 0.0
		for _, cell := range row[1:] {
			v := parseCell(t, cell)
			vals = append(vals, v)
			total += v
		}
		top, second, starved := 0.0, 0.0, 0
		for _, v := range vals {
			switch {
			case v > top:
				second = top
				top = v
			case v > second:
				second = v
			}
			if v < 0.05*total {
				starved++
			}
		}
		if top+second < 0.7*total {
			t.Errorf("row %v: top-2 hold %.0f%% of goodput, want ≥70%%",
				row[0], 100*(top+second)/total)
		}
		if starved < 4 {
			t.Errorf("row %v: only %d of 8 flows starved; want ≥4", row[0], starved)
		}
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

// Fig 11 claim: the greedy gain rises with loss up to moderate BER then
// shrinks; at extreme loss both flows die.
func TestShapeFig11GainProfile(t *testing.T) {
	res := shapeRun(t, "fig11")
	g := res.Series[0].Series // 802.11b panel
	wNR, wGR := g[2], g[3]
	gainAt := func(x float64) float64 { return at(t, wGR, x) - at(t, wNR, x) }
	if gainAt(2) < 1.0 {
		t.Errorf("gain at BER 2e-4 = %.2f Mbps, want ≥1", gainAt(2))
	}
	if gainAt(2) <= gainAt(0.1) {
		t.Error("gain should grow from negligible to moderate loss")
	}
	if gainAt(14) > 0.3 {
		t.Errorf("gain at extreme loss = %.2f, want collapse", gainAt(14))
	}
	if both := at(t, wGR, 14) + at(t, wNR, 14); both > 0.3 {
		t.Errorf("flows alive at BER 1.4e-3: %.2f total", both)
	}
}

// Fig 13 claim: mutual spoofing at GP 100% destroys most of the total.
func TestShapeFig13MutualDestruction(t *testing.T) {
	res := shapeRun(t, "fig13")
	rows := res.Tables[0].Rows
	var baseline, mutual100 float64
	for _, row := range rows {
		gp := parseCell(t, row[0])
		k := parseCell(t, row[1])
		total := parseCell(t, row[4])
		if k == 0 {
			baseline = total
		}
		if k == 2 && gp == 100 {
			mutual100 = total
		}
	}
	if mutual100 > baseline/2 {
		t.Errorf("mutual spoofing total %.2f vs baseline %.2f; want ≥50%% destruction",
			mutual100, baseline)
	}
}

// Fig 15 claim: the greedy/victim ratio grows with wireline latency up
// to ≈200 ms.
func TestShapeFig15LatencyAmplifies(t *testing.T) {
	res := shapeRun(t, "fig15")
	g := res.Series[0].Series
	wNR, wGR := g[2], g[3]
	r2 := at(t, wGR, 2) / at(t, wNR, 2)
	r200 := at(t, wGR, 200) / at(t, wNR, 200)
	if r200 <= r2 {
		t.Errorf("gain ratio did not grow with latency: %.2f at 2ms vs %.2f at 200ms", r2, r200)
	}
	// The attack must hurt at every latency.
	for _, x := range []float64{2, 50, 100, 200} {
		if at(t, wGR, x) <= at(t, wNR, x) {
			t.Errorf("no greedy gain at %vms", x)
		}
	}
}

// Fig 18 claim: one faker's gain grows with GP; two fakers both lose.
func TestShapeFig18(t *testing.T) {
	res := shapeRun(t, "fig18")
	oneNR, oneGR := res.Series[0].Series[0], res.Series[0].Series[1]
	if at(t, oneGR, 100) < 4*at(t, oneNR, 100) {
		t.Errorf("GP100 faker %.2f vs normal %.2f; want dominance",
			at(t, oneGR, 100), at(t, oneNR, 100))
	}
	if at(t, oneGR, 100) < at(t, oneGR, 25) {
		t.Error("faker gain not monotone in GP")
	}
	bothR1, bothR2 := res.Series[1].Series[0], res.Series[1].Series[1]
	base := at(t, bothR1, 0) + at(t, bothR2, 0)
	end := at(t, bothR1, 100) + at(t, bothR2, 100)
	if end > 0.8*base {
		t.Errorf("mutual faking total %.2f vs %.2f baseline; want joint loss", end, base)
	}
}

// Table 5 claim: under inherent losses, faking helps the greedy flow and
// mutual faking is not harmful.
func TestShapeTab5InherentLoss(t *testing.T) {
	res := shapeRun(t, "tab5")
	for _, row := range res.Tables[0].Rows {
		noGR2 := parseCell(t, row[2])
		gr := parseCell(t, row[4])
		if gr < noGR2 {
			t.Errorf("FER %s: faking receiver %.2f below its baseline %.2f", row[0], gr, noGR2)
		}
		bothR1 := parseCell(t, row[5])
		noGR1 := parseCell(t, row[1])
		if bothR1 < 0.7*noGR1 {
			t.Errorf("FER %s: mutual faking hurt under inherent loss (%.2f vs %.2f)",
				row[0], bothR1, noGR1)
		}
	}
}

// Fig 23 claim: three spatial regimes (exact clamp / MTU fallback /
// out of range) for the GRC NAV guard.
func TestShapeFig23Regimes(t *testing.T) {
	res := shapeRun(t, "fig23")
	g := res.Series[0].Series // UDP panel
	noGR, attR1, grcR1, grcR2 := g[0], g[1], g[3], g[4]
	// In range without GRC: dead victim.
	if at(t, attR1, 25) > 0.2 {
		t.Errorf("victim alive without GRC in range: %.2f", at(t, attR1, 25))
	}
	// Exact-clamp region: GRC restores to ≈ baseline.
	if v := at(t, grcR1, 25); v < 0.7*at(t, noGR, 25) {
		t.Errorf("GRC restoration at 25m = %.2f vs baseline %.2f", v, at(t, noGR, 25))
	}
	// MTU-fallback region (52m): victim alive but below the greedy flow.
	v52, g52 := at(t, grcR1, 52), at(t, grcR2, 52)
	if v52 < 0.15 {
		t.Errorf("MTU-fallback victim starved: %.2f", v52)
	}
	if v52 > g52 {
		t.Errorf("MTU-fallback should leave the greedy flow an edge: %.2f vs %.2f", v52, g52)
	}
	// Out of range: attack inert.
	if v := at(t, attR1, 85); v < 0.7*at(t, noGR, 85) {
		t.Errorf("attack affected an out-of-range victim: %.2f vs %.2f", v, at(t, noGR, 85))
	}
}

// Fig 24 claim: with GRC both flows track the no-attack curves.
func TestShapeFig24Recovery(t *testing.T) {
	res := shapeRun(t, "fig24")
	g := res.Series[0].Series
	noGR1, attR1, grcR1 := g[0], g[2], g[4]
	const x = 2 // BER 2e-4
	if at(t, attR1, x) > 0.4*at(t, noGR1, x) {
		t.Errorf("attack ineffective: %.2f vs %.2f", at(t, attR1, x), at(t, noGR1, x))
	}
	if at(t, grcR1, x) < 0.6*at(t, noGR1, x) {
		t.Errorf("GRC recovery incomplete: %.2f vs baseline %.2f",
			at(t, grcR1, x), at(t, noGR1, x))
	}
}

// Extension claims (Section IX): fake ACKs backfire under ARF; spoofing
// worsens under ARF.
func TestShapeAutoRateExtensions(t *testing.T) {
	resA := shapeRun(t, "exta")
	rows := resA.Tables[0].Rows
	// rows: fixed/noGR, fixed/fake, ARF/noGR, ARF/fake — columns R1, R2.
	fixedFakeR2 := parseCell(t, rows[1][3])
	fixedNoR2 := parseCell(t, rows[0][3])
	arfFakeR2 := parseCell(t, rows[3][3])
	arfNoR2 := parseCell(t, rows[2][3])
	if fixedFakeR2 <= fixedNoR2 {
		t.Errorf("fixed rate: faking should pay (%.2f vs %.2f)", fixedFakeR2, fixedNoR2)
	}
	if arfFakeR2 >= arfNoR2 {
		t.Errorf("ARF: faking should backfire (%.2f vs honest %.2f)", arfFakeR2, arfNoR2)
	}

	resB := shapeRun(t, "extb")
	rowsB := resB.Tables[0].Rows
	arfSpoofNR := parseCell(t, rowsB[3][2])
	arfNoNR := parseCell(t, rowsB[2][2])
	arfSpoofGR := parseCell(t, rowsB[3][3])
	if arfSpoofNR > 0.5*arfNoNR {
		t.Errorf("ARF spoofing victim %.2f vs baseline %.2f; want heavy damage", arfSpoofNR, arfNoNR)
	}
	if arfSpoofGR <= arfSpoofNR {
		t.Error("ARF spoofing should benefit the attacker")
	}
}
