package experiments

import (
	"strings"
	"testing"

	"greedy80211/internal/sim"
)

// Every data-bearing artifact of the paper must be registered (fig20 is
// the GRC flow chart — no data to regenerate).
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig21", "fig22", "fig23", "fig24",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9",
		// Extensions beyond the paper (Section IX future work and the
		// DOMINO sender-side baseline).
		"exta", "extb", "extc", "abl1", "abl2", "abl3",
		// Multi-BSS extension (beyond the paper).
		"dense1",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("artifact %s not registered", id)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d artifacts, want %d", got, len(want))
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	// Figures numerically before tables; fig2 before fig10.
	idx := make(map[string]int, len(all))
	for i, r := range all {
		idx[r.ID] = i
	}
	if idx["fig2"] > idx["fig10"] {
		t.Error("fig2 should sort before fig10")
	}
	if idx["fig24"] > idx["tab1"] {
		t.Error("figures should sort before tables")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", RunConfig{Quick: true}); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := RunConfig{}.Normalize()
	if c.Seeds != DefaultSeeds || c.Duration != DefaultDuration {
		t.Errorf("defaults = %+v", c)
	}
	q := RunConfig{Quick: true}.Normalize()
	if q.Seeds != 1 || q.Duration != 2*sim.Second {
		t.Errorf("quick defaults = %+v", q)
	}
}

func TestPick(t *testing.T) {
	full := []float64{1, 2, 3, 4, 5}
	if got := pick(RunConfig{}, full); len(got) != 5 {
		t.Error("non-quick pick trimmed")
	}
	got := pick(RunConfig{Quick: true}, full)
	if len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("quick pick = %v", got)
	}
}

// quickRun executes one artifact in quick mode and sanity-checks output.
func quickRun(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, RunConfig{Quick: true, BaseSeed: 7})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := res.String()
	if !strings.Contains(out, id) || len(out) < 50 {
		t.Fatalf("%s output too thin:\n%s", id, out)
	}
	return res
}

func TestFig1Quick(t *testing.T) {
	res := quickRun(t, "fig1")
	// At the largest inflation the greedy receiver must dominate.
	g := res.Series[0].Series
	nr, gr := g[0], g[1]
	lastNR := nr.Points[len(nr.Points)-1].Y
	lastGR := gr.Points[len(gr.Points)-1].Y
	if lastGR < 5*lastNR {
		t.Errorf("fig1 at max inflation: GR %.2f vs NR %.2f, want starvation", lastGR, lastNR)
	}
	// At zero inflation the two are comparable.
	if nr.Points[0].Y < 0.5*gr.Points[0].Y {
		t.Errorf("fig1 baseline unfair: %.2f vs %.2f", nr.Points[0].Y, gr.Points[0].Y)
	}
}

func TestFig2Quick(t *testing.T) {
	res := quickRun(t, "fig2")
	gs, ns := res.Series[0].Series[0], res.Series[0].Series[1]
	// GS stays near CWmin at max inflation; NS's CW grows.
	lastGS := gs.Points[len(gs.Points)-1].Y
	lastNS := ns.Points[len(ns.Points)-1].Y
	if lastGS > 80 {
		t.Errorf("GS avg CW %.0f, want near 31", lastGS)
	}
	if lastNS < lastGS {
		t.Errorf("NS avg CW %.0f not above GS %.0f under inflation", lastNS, lastGS)
	}
}

func TestFig3Quick(t *testing.T) {
	res := quickRun(t, "fig3")
	meas, model := res.Series[0].Series[0], res.Series[0].Series[1]
	for i := range meas.Points {
		m, p := meas.Points[i].Y, model.Points[i].Y
		if m < 0 || m > 1 || p < 0 || p > 1 {
			t.Fatalf("ratios out of range: measured %v model %v", m, p)
		}
		diff := m - p
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.2 {
			t.Errorf("model error %.2f at v=%v (measured %.2f vs model %.2f)",
				diff, meas.Points[i].X, m, p)
		}
	}
}

func TestTab3Quick(t *testing.T) {
	res := quickRun(t, "tab3")
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 5 {
		t.Fatalf("tab3 shape wrong: %+v", res.Tables)
	}
}

func TestTab1Quick(t *testing.T) {
	res := quickRun(t, "tab1")
	if len(res.Tables[0].Rows) != 2 {
		t.Fatalf("tab1 should have 2 band rows")
	}
}

func TestFig22Quick(t *testing.T) {
	res := quickRun(t, "fig22")
	fp := res.Series[0].Series[0]
	if fp.Points[0].Y < fp.Points[len(fp.Points)-1].Y {
		t.Error("false positives should fall as the threshold grows")
	}
}

// TestEveryArtifactRunsQuick executes the entire registry in quick mode —
// the paper's full evaluation end to end. Skipped with -short.
func TestEveryArtifactRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep skipped in -short mode")
	}
	for _, reg := range All() {
		reg := reg
		t.Run(reg.ID, func(t *testing.T) {
			res, err := reg.Runner(RunConfig{Quick: true, BaseSeed: 3})
			if err != nil {
				t.Fatalf("%s failed: %v", reg.ID, err)
			}
			if len(res.Tables) == 0 && len(res.Series) == 0 {
				t.Fatalf("%s produced no output", reg.ID)
			}
		})
	}
}
