package experiments

import (
	"fmt"

	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/transport"
	"greedy80211/internal/wireline"
)

func registerSpoof() {
	register("fig11", "Spoofed-ACK TCP goodput vs BER (802.11b and 802.11a)", "Fig. 11 (§V-B)", runFig11)
	register("fig12", "Spoofed-ACK TCP goodput vs greedy percentage and loss (802.11b)", "Fig. 12 (§V-B)", runFig12)
	register("fig13", "Spoofing under 0/1/2 greedy receivers vs GP (TCP, BER 2e-4)", "Fig. 13 (§V-B)", runFig13)
	register("fig14", "One greedy receiver vs N normal pairs: shared AP and per-flow APs", "Fig. 14 (§V-B)", runFig14)
	register("fig15", "Remote TCP senders: goodput vs wireline latency (BER 2e-5)", "Fig. 15 (§V-B)", runFig15)
	register("fig16", "Remote TCP senders: greedy percentage × wireline latency", "Fig. 16 (§V-B)", runFig16)
	register("fig17", "Spoofed-ACK UDP goodput vs loss (1 AP, 2 receivers)", "Fig. 17 (§V-B)", runFig17)
}

// spoofPairs builds 2 TCP pairs where the last nGreedy receivers spoof
// ACKs on behalf of the normal receivers, under channel BER.
func spoofPairs(seed int64, band phys.Band, ber, gp float64, nGreedy int) (*scenario.World, error) {
	return scenario.BuildPairs(scenario.PairsConfig{
		Config: scenario.Config{
			Seed: seed, Band: band, UseRTSCTS: true,
			Error: phys.BERSpec(ber), ForceCapture: true,
		},
		N:         2,
		Transport: scenario.TCP,
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if i < 2-nGreedy || gp == 0 {
				return scenario.StationOpts{}
			}
			// Spoof on behalf of the other pair's receiver (when both are
			// greedy, each targets the other).
			if victim, ok := w.Station(scenario.ReceiverName(1 - i)); ok {
				return scenario.StationOpts{
					Policy: greedy.NewACKSpoofer(w.Sched.RNG(), gp, victim.ID),
				}
			}
			return scenario.StationOpts{
				Policy: greedy.NewACKSpoofer(w.Sched.RNG(), gp),
			}
		},
	})
}

func runFig11(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig11", Title: "Spoofed-ACK TCP goodput vs BER"}
	bers := pick(cfg, []float64{0, 1e-5, 1e-4, 2e-4, 3.2e-4, 4.4e-4, 8e-4, 1.4e-3})
	bands := []phys.Band{phys.Band80211B, phys.Band80211A}
	if cfg.Quick {
		bands = bands[:1]
	}
	for _, band := range bands {
		noGR1 := stats.Series{Name: "no GR: R1 (Mbps)"}
		noGR2 := stats.Series{Name: "no GR: R2 (Mbps)"}
		wNR := stats.Series{Name: "w R2 GR: NR (Mbps)"}
		wGR := stats.Series{Name: "w R2 GR: GR (Mbps)"}
		pts, err := sweep(bers, func(ber float64) (baseAttPoint, error) {
			base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return spoofPairs(seed, band, ber, 0, 0)
			}, nil)
			if err != nil {
				return baseAttPoint{}, err
			}
			att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return spoofPairs(seed, band, ber, 100, 1)
			}, nil)
			return baseAttPoint{base, att}, err
		})
		if err != nil {
			return nil, err
		}
		for i, ber := range bers {
			x := ber * 1e4
			noGR1.Add(x, pts[i].base[1])
			noGR2.Add(x, pts[i].base[2])
			wNR.Add(x, pts[i].att[1])
			wGR.Add(x, pts[i].att[2])
		}
		res.AddSeries(fmt.Sprintf("%v; GR spoofs MAC ACKs on behalf of NR.", band),
			"ber_1e-4", noGR1, noGR2, wNR, wGR)
	}
	return res, nil
}

func runFig12(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig12", Title: "Spoofed-ACK TCP goodput vs greedy percentage and loss"}
	gps := pick(cfg, []float64{0, 20, 40, 60, 80, 100})
	for _, ber := range []float64{1e-5, 2e-4, 8e-4} {
		nr := stats.Series{Name: "NS-NR (Mbps)"}
		gr := stats.Series{Name: "GS-GR (Mbps)"}
		pts, err := sweep(gps, func(gp float64) (map[int]float64, error) {
			flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return spoofPairs(seed, phys.Band80211B, ber, gp, 1)
			}, nil)
			return flows, err
		})
		if err != nil {
			return nil, err
		}
		for i, gp := range gps {
			nr.Add(gp, pts[i][1])
			gr.Add(gp, pts[i][2])
		}
		res.AddSeries(fmt.Sprintf("BER %.1e", ber), "greedy_percent", nr, gr)
	}
	return res, nil
}

func runFig13(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig13", Title: "Spoofing with 0/1/2 greedy receivers (TCP, BER 2e-4)"}
	gps := pick(cfg, []float64{25, 50, 75, 100})
	t := stats.Table{
		Title:  "Mutual spoofing disables MAC retransmission for both flows; total goodput drops.",
		Header: []string{"greedy_percent", "greedy_count", "R1_mbps", "R2_mbps", "total_mbps"},
	}
	counts := []int{0, 1, 2}
	if cfg.Quick {
		counts = []int{0, 2}
	}
	type rowCase struct {
		gp float64
		k  int
	}
	var cases []rowCase
	for _, k := range counts {
		for _, gp := range gps {
			if k == 0 && gp != gps[0] {
				continue // baseline does not vary with GP
			}
			useGP := gp
			if k == 0 {
				useGP = 0
			}
			cases = append(cases, rowCase{useGP, k})
		}
	}
	rows, err := sweep(cases, func(rc rowCase) (map[int]float64, error) {
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return spoofPairs(seed, phys.Band80211B, 2e-4, rc.gp, rc.k)
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, rc := range cases {
		t.AddRow(rc.gp, rc.k, rows[i][1], rows[i][2], rows[i][1]+rows[i][2])
	}
	res.AddTable(t)
	return res, nil
}

func runFig14(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig14", Title: "One greedy receiver vs N normal pairs (TCP, BER 2e-4)"}
	ns := []int{1, 3, 5, 7}
	if cfg.Quick {
		ns = []int{1, 3}
	}
	shared := stats.Table{
		Title:  "(a) all flows share one AP",
		Header: []string{"normal_receivers", "normal_avg_mbps", "greedy_mbps"},
	}
	separate := stats.Table{
		Title:  "(b) each flow has its own AP",
		Header: []string{"normal_receivers", "normal_avg_mbps", "greedy_mbps"},
	}
	pts, err := sweep(ns, func(n int) (baseAttPoint, error) {
		total := n + 1
		// (a) shared AP: receiver total-1 spoofs for everyone else.
		sharedFlows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return scenario.BuildSharedAP(scenario.SharedAPConfig{
				Config: scenario.Config{
					Seed: seed, UseRTSCTS: true, Error: phys.BERSpec(2e-4), ForceCapture: true,
				},
				N:         total,
				Transport: scenario.TCP,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if i != total-1 {
						return scenario.StationOpts{}
					}
					return scenario.StationOpts{Policy: greedy.NewACKSpoofer(w.Sched.RNG(), 100)}
				},
			})
		}, nil)
		if err != nil {
			return baseAttPoint{}, err
		}

		// (b) separate APs: pairs topology.
		sepFlows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return scenario.BuildPairs(scenario.PairsConfig{
				Config: scenario.Config{
					Seed: seed, UseRTSCTS: true, Error: phys.BERSpec(2e-4), ForceCapture: true,
				},
				N:         total,
				Transport: scenario.TCP,
				ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
					if i != total-1 {
						return scenario.StationOpts{}
					}
					return scenario.StationOpts{Policy: greedy.NewACKSpoofer(w.Sched.RNG(), 100)}
				},
			})
		}, nil)
		return baseAttPoint{base: sharedFlows, att: sepFlows}, err
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		total := n + 1
		var sharedSum, sepSum float64
		for id := 1; id < total; id++ {
			sharedSum += pts[i].base[id]
			sepSum += pts[i].att[id]
		}
		shared.AddRow(n, sharedSum/float64(n), pts[i].base[total])
		separate.AddRow(n, sepSum/float64(n), pts[i].att[total])
	}
	res.AddTable(shared)
	res.AddTable(separate)
	return res, nil
}

// remoteSenders builds the Fig 15 topology: two wired hosts behind one AP,
// two wireless receivers, wireless BER 2e-5; R2 optionally spoofs for R1.
func remoteSenders(seed int64, delay sim.Time, gp float64) (*scenario.World, error) {
	w, err := scenario.NewWorld(scenario.Config{
		Seed: seed, UseRTSCTS: true, Error: phys.BERSpec(2e-5), ForceCapture: true,
	})
	if err != nil {
		return nil, err
	}
	if _, err := w.AddStation("R1", phys.Position{X: 5}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	r2opts := scenario.StationOpts{}
	if gp > 0 {
		r1, _ := w.Station("R1")
		r2opts.Policy = greedy.NewACKSpoofer(w.Sched.RNG(), gp, r1.ID)
	}
	if _, err := w.AddStation("R2", phys.Position{X: 5, Y: 5}, r2opts); err != nil {
		return nil, err
	}
	if _, err := w.AddStation("AP", phys.Position{}, scenario.StationOpts{}); err != nil {
		return nil, err
	}
	for _, h := range []string{"H1", "H2"} {
		if _, err := w.AddWiredHost(h); err != nil {
			return nil, err
		}
		if err := w.ConnectWired(h, "AP", wireline.Config{Delay: delay, RateBps: 100e6}); err != nil {
			return nil, err
		}
	}
	if _, err := w.AddTCPFlow(1, "H1", "R1", transport.DefaultTCPConfig(1)); err != nil {
		return nil, err
	}
	if _, err := w.AddTCPFlow(2, "H2", "R2", transport.DefaultTCPConfig(2)); err != nil {
		return nil, err
	}
	return w, nil
}

// wanDuration stretches a run to cover at least 60 WAN round trips so the
// goodput measurement reflects steady state rather than slow start.
func wanDuration(cfg RunConfig, oneWay sim.Time) RunConfig {
	if min := 120 * oneWay; cfg.Duration < min {
		cfg.Duration = min
	}
	return cfg
}

func runFig15(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig15", Title: "Remote TCP senders: goodput vs one-way wireline latency"}
	delays := pick(cfg, []float64{2, 10, 50, 100, 200, 400})
	noGR1 := stats.Series{Name: "no GR: R1 (Mbps)"}
	noGR2 := stats.Series{Name: "no GR: R2 (Mbps)"}
	wNR := stats.Series{Name: "w R2 GR: NR (Mbps)"}
	wGR := stats.Series{Name: "w R2 GR: GR (Mbps)"}
	pts, err := sweep(delays, func(ms float64) (baseAttPoint, error) {
		delay := sim.FromSeconds(ms / 1000)
		// Long WAN round trips need longer runs: TCP must leave slow
		// start and reach steady state before the measurement means much.
		wanCfg := wanDuration(cfg, delay)
		base, _, err := runSeeds(wanCfg, func(seed int64) (*scenario.World, error) {
			return remoteSenders(seed, delay, 0)
		}, nil)
		if err != nil {
			return baseAttPoint{}, err
		}
		att, _, err := runSeeds(wanCfg, func(seed int64) (*scenario.World, error) {
			return remoteSenders(seed, delay, 100)
		}, nil)
		return baseAttPoint{base, att}, err
	})
	if err != nil {
		return nil, err
	}
	for i, ms := range delays {
		noGR1.Add(ms, pts[i].base[1])
		noGR2.Add(ms, pts[i].base[2])
		wNR.Add(ms, pts[i].att[1])
		wGR.Add(ms, pts[i].att[2])
	}
	res.AddSeries("End-to-end loss recovery grows costlier with wireline latency.",
		"wired_latency_ms", noGR1, noGR2, wNR, wGR)
	return res, nil
}

func runFig16(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig16", Title: "Remote TCP senders: greedy percentage sweep per latency"}
	gps := pick(cfg, []float64{0, 20, 40, 60, 80, 100})
	latencies := []float64{2, 50, 100, 200, 400}
	if cfg.Quick {
		latencies = []float64{2, 200}
	}
	for _, ms := range latencies {
		delay := sim.FromSeconds(ms / 1000)
		wanCfg := wanDuration(cfg, delay)
		nr := stats.Series{Name: "NR (Mbps)"}
		gr := stats.Series{Name: "GR (Mbps)"}
		pts, err := sweep(gps, func(gp float64) (map[int]float64, error) {
			flows, _, err := runSeeds(wanCfg, func(seed int64) (*scenario.World, error) {
				return remoteSenders(seed, delay, gp)
			}, nil)
			return flows, err
		})
		if err != nil {
			return nil, err
		}
		for i, gp := range gps {
			nr.Add(gp, pts[i][1])
			gr.Add(gp, pts[i][2])
		}
		res.AddSeries(fmt.Sprintf("wireline latency %.0f ms", ms), "greedy_percent", nr, gr)
	}
	return res, nil
}

func runFig17(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig17", Title: "Spoofed-ACK UDP goodput vs loss (1 AP, 2 receivers)"}
	bers := pick(cfg, []float64{0, 1e-5, 2e-4, 4.4e-4, 8e-4})
	build := func(seed int64, ber, gp float64) (*scenario.World, error) {
		return scenario.BuildSharedAP(scenario.SharedAPConfig{
			Config: scenario.Config{
				Seed: seed, UseRTSCTS: true, ForceCapture: true,
				Error: phys.BERSpec(ber),
			},
			N:         2,
			Transport: scenario.UDP,
			ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
				if i != 1 || gp == 0 {
					return scenario.StationOpts{}
				}
				r1, _ := w.Station(scenario.ReceiverName(0))
				return scenario.StationOpts{
					Policy: greedy.NewACKSpoofer(w.Sched.RNG(), gp, r1.ID),
				}
			},
		})
	}
	noGR1 := stats.Series{Name: "no GR: R1 (Mbps)"}
	noGR2 := stats.Series{Name: "no GR: R2 (Mbps)"}
	wNR := stats.Series{Name: "w R2 GR: NR (Mbps)"}
	wGR := stats.Series{Name: "w R2 GR: GR (Mbps)"}
	pts, err := sweep(bers, func(ber float64) (baseAttPoint, error) {
		base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return build(seed, ber, 0)
		}, nil)
		if err != nil {
			return baseAttPoint{}, err
		}
		att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return build(seed, ber, 100)
		}, nil)
		return baseAttPoint{base, att}, err
	})
	if err != nil {
		return nil, err
	}
	for i, ber := range bers {
		x := ber * 1e4
		noGR1.Add(x, pts[i].base[1])
		noGR2.Add(x, pts[i].base[2])
		wNR.Add(x, pts[i].att[1])
		wGR.Add(x, pts[i].att[2])
	}
	res.AddSeries("UDP gains are smaller than TCP's (no congestion-control coupling).",
		"ber_1e-4", noGR1, noGR2, wNR, wGR)
	return res, nil
}
