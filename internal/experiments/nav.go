package experiments

import (
	"fmt"

	"greedy80211/internal/analytic"
	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
)

func registerNAV() {
	register("fig1", "UDP goodput of NS-NR and GS-GR vs CTS NAV inflation (802.11b)", "Fig. 1 (§V-A)", runFig1)
	register("fig2", "Average CW of GS and NS vs NAV inflation (802.11b, UDP)", "Fig. 2 (§V-A)", runFig2)
	register("fig3", "RTS sending ratio: Eq 1-2 model vs simulation (802.11b, UDP)", "Fig. 3 (§V-A)", runFig3)
	register("fig4", "TCP goodput vs NAV inflation on CTS / RTS+CTS / ACK / all frames (802.11b)", "Fig. 4 (§V-A)", runFig4)
	register("fig5", "TCP goodput vs NAV inflation (802.11a)", "Fig. 5 (§V-A)", runFig5)
	register("fig6", "8 TCP flows, one greedy receiver inflating CTS NAV (802.11b)", "Fig. 6 (§V-A)", runFig6)
	register("fig7", "TCP goodput vs greedy percentage at NAV +5/10/31 ms (802.11b)", "Fig. 7 (§V-A)", runFig7)
	register("fig8", "Goodput under 0/1/2 greedy receivers at NAV +5/10/31 ms (802.11b, TCP)", "Fig. 8 (§V-A)", runFig8)
	register("fig9", "Per-receiver goodput vs number of greedy receivers, 8 TCP flows, NAV +31 ms", "Fig. 9 (§V-A)", runFig9)
	register("fig10", "One sender, multiple receivers: TCP (2 and 8 rx) and UDP (2 rx)", "Fig. 10 (§V-A)", runFig10)
	register("tab2", "Average TCP congestion window, 1-sender vs 2-sender", "Table II (§V-A)", runTab2)
}

// navPairs builds the canonical 2-pair world with receiver 2 greedy.
func navPairs(seed int64, band phys.Band, tr scenario.Transport, set greedy.FrameSet,
	extra sim.Time, gp float64, nGreedy, nPairs int) (*scenario.World, error) {
	return scenario.BuildPairs(scenario.PairsConfig{
		Config:    scenario.Config{Seed: seed, Band: band, UseRTSCTS: true},
		N:         nPairs,
		Transport: tr,
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			// The last nGreedy receivers misbehave.
			if i < nPairs-nGreedy || extra == 0 {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{
				Policy: greedy.NewNAVInflation(w.Sched.RNG(), set, extra, gp),
			}
		},
	})
}

func runFig1(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig1", Title: "UDP goodput vs CTS NAV inflation (802.11b)"}
	sweepMs := pick(cfg, []float64{0, 0.2, 0.4, 0.6, 1, 2, 5, 10})
	nr := stats.Series{Name: "NS-NR (Mbps)"}
	gr := stats.Series{Name: "GS-GR (Mbps)"}
	pts, err := sweep(sweepMs, func(ms float64) (map[int]float64, error) {
		extra := sim.FromSeconds(ms / 1000)
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, phys.Band80211B, scenario.UDP, greedy.CTSOnly, extra, 100, 1, 2)
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, ms := range sweepMs {
		nr.Add(ms, pts[i][1])
		gr.Add(ms, pts[i][2])
	}
	res.AddSeries("Goodput of two UDP flows; GR inflates CTS NAV.", "nav_increase_ms", nr, gr)
	return res, nil
}

// cwExtract captures the average contention window of both senders.
func cwExtract(w *scenario.World, m map[string]float64) {
	ns, _ := w.Station(scenario.SenderName(0))
	gs, _ := w.Station(scenario.SenderName(1))
	m["cw_ns"] = ns.DCF.Counters().AvgCW()
	m["cw_gs"] = gs.DCF.Counters().AvgCW()
}

func runFig2(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig2", Title: "Average CW of GS and NS vs NAV inflation (timeslots)"}
	sweepSlots := pick(cfg, []float64{0, 4, 8, 12, 16, 20, 24, 28, 32, 40})
	nsCW := stats.Series{Name: "NS avg CW"}
	gsCW := stats.Series{Name: "GS avg CW"}
	slot := phys.Params80211B().SlotTime
	pts, err := sweep(sweepSlots, func(v float64) (map[string]float64, error) {
		extra := sim.Time(v) * slot
		_, metrics, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, phys.Band80211B, scenario.UDP, greedy.CTSAndACK, extra, 100, 1, 2)
		}, cwExtract)
		return metrics, err
	})
	if err != nil {
		return nil, err
	}
	for i, v := range sweepSlots {
		nsCW.Add(v, pts[i]["cw_ns"])
		gsCW.Add(v, pts[i]["cw_gs"])
	}
	res.AddSeries("GS's CW stays near CWmin (31) while NS's grows with inflation.",
		"nav_increase_slots", gsCW, nsCW)
	return res, nil
}

func runFig3(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig3", Title: "Sending ratio GS/(GS+NS): measured RTS ratio vs Eq 1-2 model"}
	sweepSlots := pick(cfg, []float64{0, 4, 8, 12, 16, 20, 24, 28})
	measured := stats.Series{Name: "measured RTS ratio"}
	model := stats.Series{Name: "Eq 1-2 model"}
	slot := phys.Params80211B().SlotTime
	pts, err := sweep(sweepSlots, func(v float64) (map[string]float64, error) {
		extra := sim.Time(v) * slot
		_, metrics, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, phys.Band80211B, scenario.UDP, greedy.CTSAndACK, extra, 100, 1, 2)
		}, func(w *scenario.World, m map[string]float64) {
			ns, _ := w.Station(scenario.SenderName(0))
			gs, _ := w.Station(scenario.SenderName(1))
			nRTS := float64(ns.DCF.Counters().RTSSent)
			gRTS := float64(gs.DCF.Counters().RTSSent)
			if nRTS+gRTS > 0 {
				m["ratio"] = gRTS / (nRTS + gRTS)
			}
			// Feed the measured CW distributions into the model.
			gsDist := histToDist(gs.DCF.Counters().CWHist)
			nsDist := histToDist(ns.DCF.Counters().CWHist)
			if r, err := analytic.SendingRatio(gsDist, nsDist, int(v)); err == nil {
				m["model"] = r
			}
		})
		return metrics, err
	})
	if err != nil {
		return nil, err
	}
	for i, v := range sweepSlots {
		measured.Add(v, pts[i]["ratio"])
		model.Add(v, pts[i]["model"])
	}
	res.AddSeries("Model accuracy for the NAV-inflation send ratio.", "nav_increase_slots",
		measured, model)
	return res, nil
}

func histToDist(hist map[int]int64) analytic.CWDist {
	d := make(analytic.CWDist, len(hist))
	var total int64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return analytic.Single(31)
	}
	for cw, n := range hist {
		d[cw] = float64(n) / float64(total)
	}
	return d
}

// navTCPSweep renders one Fig 4/5 panel.
func navTCPSweep(cfg RunConfig, band phys.Band, set greedy.FrameSet, label string) (stats.Series, stats.Series, error) {
	sweepMs := pick(cfg, []float64{0, 1, 2, 5, 10, 20, 31})
	nr := stats.Series{Name: "NS-NR " + label}
	gr := stats.Series{Name: "GS-GR " + label}
	pts, err := sweep(sweepMs, func(ms float64) (map[int]float64, error) {
		extra := sim.FromSeconds(ms / 1000)
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, band, scenario.TCP, set, extra, 100, 1, 2)
		}, nil)
		return flows, err
	})
	if err != nil {
		return stats.Series{}, stats.Series{}, err
	}
	for i, ms := range sweepMs {
		nr.Add(ms, pts[i][1])
		gr.Add(ms, pts[i][2])
	}
	return nr, gr, nil
}

func runNAVTCPFigure(cfg RunConfig, id string, band phys.Band) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: id, Title: fmt.Sprintf("TCP goodput vs NAV inflation (%v)", band)}
	panels := []struct {
		caption string
		set     greedy.FrameSet
	}{
		{"(a) inflated CTS NAV", greedy.CTSOnly},
		{"(b) inflated RTS and CTS NAV", greedy.RTSAndCTS},
		{"(c) inflated ACK NAV", greedy.ACKOnly},
		{"(d) inflated NAV on all frames", greedy.AllFrames},
	}
	if cfg.Quick {
		panels = panels[:2]
	}
	for _, p := range panels {
		nr, gr, err := navTCPSweep(cfg, band, p.set, "(Mbps)")
		if err != nil {
			return nil, err
		}
		res.AddSeries(p.caption, "nav_increase_ms", nr, gr)
	}
	return res, nil
}

func runFig4(cfg RunConfig) (*Result, error) { return runNAVTCPFigure(cfg, "fig4", phys.Band80211B) }
func runFig5(cfg RunConfig) (*Result, error) { return runNAVTCPFigure(cfg, "fig5", phys.Band80211A) }

func runFig6(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig6", Title: "8 TCP flows, one greedy receiver inflating CTS NAV"}
	sweepMs := pick(cfg, []float64{0, 1, 2, 5, 10, 31})
	gr := stats.Series{Name: "greedy receiver (Mbps)"}
	nrAvg := stats.Series{Name: "avg of 7 normal receivers (Mbps)"}
	pts, err := sweep(sweepMs, func(ms float64) (map[int]float64, error) {
		extra := sim.FromSeconds(ms / 1000)
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, phys.Band80211B, scenario.TCP, greedy.CTSOnly, extra, 100, 1, 8)
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, ms := range sweepMs {
		var sum float64
		for id := 1; id <= 7; id++ {
			sum += pts[i][id]
		}
		nrAvg.Add(ms, sum/7)
		gr.Add(ms, pts[i][8])
	}
	res.AddSeries("It takes ≈10 ms of CTS NAV inflation to dominate 7 competitors.",
		"nav_increase_ms", gr, nrAvg)
	return res, nil
}

func runFig7(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig7", Title: "Goodput vs greedy percentage at NAV +5/10/31 ms (TCP)"}
	gps := pick(cfg, []float64{0, 25, 50, 75, 100})
	for _, navMs := range []float64{5, 10, 31} {
		extra := sim.FromSeconds(navMs / 1000)
		nr := stats.Series{Name: "NS-NR (Mbps)"}
		gr := stats.Series{Name: "GS-GR (Mbps)"}
		pts, err := sweep(gps, func(gp float64) (map[int]float64, error) {
			flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return navPairs(seed, phys.Band80211B, scenario.TCP, greedy.CTSOnly, extra, gp, 1, 2)
			}, nil)
			return flows, err
		})
		if err != nil {
			return nil, err
		}
		for i, gp := range gps {
			nr.Add(gp, pts[i][1])
			gr.Add(gp, pts[i][2])
		}
		res.AddSeries(fmt.Sprintf("NAV inflated by %.0f ms", navMs), "greedy_percent", nr, gr)
	}
	return res, nil
}

func runFig8(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig8", Title: "Goodput under 0, 1, or 2 greedy receivers (TCP)"}
	t := stats.Table{
		Title:  "CTS NAV inflation; receivers R1, R2 (greedy receivers are the last k).",
		Header: []string{"nav_ms", "greedy_count", "R1_mbps", "R2_mbps"},
	}
	counts := []int{0, 1, 2}
	if cfg.Quick {
		counts = []int{0, 2}
	}
	type rowCase struct {
		navMs float64
		k     int
	}
	var cases []rowCase
	for _, navMs := range []float64{5, 10, 31} {
		for _, k := range counts {
			cases = append(cases, rowCase{navMs, k})
		}
	}
	rows, err := sweep(cases, func(rc rowCase) (map[int]float64, error) {
		extra := sim.FromSeconds(rc.navMs / 1000)
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, phys.Band80211B, scenario.TCP, greedy.CTSOnly, extra, 100, rc.k, 2)
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, rc := range cases {
		t.AddRow(rc.navMs, rc.k, rows[i][1], rows[i][2])
	}
	res.AddTable(t)
	return res, nil
}

func runFig9(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig9", Title: "8 TCP flows: per-receiver goodput vs number of greedy receivers (NAV +31 ms)"}
	t := stats.Table{
		Title:  "Receivers 8-k+1 .. 8 are greedy; only one greedy receiver survives.",
		Header: []string{"greedy_count", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"},
	}
	counts := []int{0, 1, 2, 4, 8}
	if cfg.Quick {
		counts = []int{0, 2}
	}
	rows, err := sweep(counts, func(k int) (map[int]float64, error) {
		flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, phys.Band80211B, scenario.TCP, greedy.CTSOnly, 31*sim.Millisecond, 100, k, 8)
		}, nil)
		return flows, err
	})
	if err != nil {
		return nil, err
	}
	for i, k := range counts {
		row := make([]any, 0, 9)
		row = append(row, k)
		for id := 1; id <= 8; id++ {
			row = append(row, rows[i][id])
		}
		t.AddRow(row...)
	}
	res.AddTable(t)
	return res, nil
}

// sharedAP builds the one-sender topology with receiver n-1 greedy.
func sharedAP(seed int64, tr scenario.Transport, n int, extra sim.Time) (*scenario.World, error) {
	return scenario.BuildSharedAP(scenario.SharedAPConfig{
		Config:    scenario.Config{Seed: seed, Band: phys.Band80211B, UseRTSCTS: true},
		N:         n,
		Transport: tr,
		ReceiverOpts: func(w *scenario.World, i int) scenario.StationOpts {
			if i != n-1 || extra == 0 {
				return scenario.StationOpts{}
			}
			return scenario.StationOpts{
				Policy: greedy.NewNAVInflation(w.Sched.RNG(), greedy.CTSOnly, extra, 100),
			}
		},
	})
}

func runFig10(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "fig10", Title: "One sender, multiple receivers; last receiver inflates CTS NAV"}
	sweepMs := pick(cfg, []float64{0, 1, 2, 5, 10, 20, 31})

	panel := func(caption string, tr scenario.Transport, n int) error {
		nr := stats.Series{Name: "normal avg (Mbps)"}
		gr := stats.Series{Name: "greedy (Mbps)"}
		pts, err := sweep(sweepMs, func(ms float64) (map[int]float64, error) {
			extra := sim.FromSeconds(ms / 1000)
			flows, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
				return sharedAP(seed, tr, n, extra)
			}, nil)
			return flows, err
		})
		if err != nil {
			return err
		}
		for i, ms := range sweepMs {
			var sum float64
			for id := 1; id < n; id++ {
				sum += pts[i][id]
			}
			nr.Add(ms, sum/float64(n-1))
			gr.Add(ms, pts[i][n])
		}
		res.AddSeries(caption, "nav_increase_ms", nr, gr)
		return nil
	}
	if err := panel("(a) TCP, 2 receivers", scenario.TCP, 2); err != nil {
		return nil, err
	}
	if !cfg.Quick {
		if err := panel("(b) TCP, 8 receivers", scenario.TCP, 8); err != nil {
			return nil, err
		}
	}
	if err := panel("(c) UDP, 2 receivers", scenario.UDP, 2); err != nil {
		return nil, err
	}
	return res, nil
}

func runTab2(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "tab2", Title: "Average TCP congestion window (packets)"}
	t := stats.Table{
		Title:  "1 sender: shared AP to NR+GR. 2 senders: separate pairs. GR inflates CTS NAV.",
		Header: []string{"nav_ms", "1snd_S-NR", "1snd_S-GR", "2snd_NS-NR", "2snd_GS-GR"},
	}
	sweepMs := pick(cfg, []float64{0, 1, 2, 5, 10, 20, 31})
	cwnd := func(w *scenario.World, m map[string]float64) {
		f1, _ := w.Flow(1)
		f2, _ := w.Flow(2)
		m["cwnd1"] = f1.TCPSend.AvgCwnd()
		m["cwnd2"] = f2.TCPSend.AvgCwnd()
	}
	type cwndPoint struct {
		oneSnd, twoSnd map[string]float64
	}
	pts, err := sweep(sweepMs, func(ms float64) (cwndPoint, error) {
		extra := sim.FromSeconds(ms / 1000)
		_, oneSnd, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return sharedAP(seed, scenario.TCP, 2, extra)
		}, cwnd)
		if err != nil {
			return cwndPoint{}, err
		}
		_, twoSnd, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return navPairs(seed, phys.Band80211B, scenario.TCP, greedy.CTSOnly, extra, 100, 1, 2)
		}, cwnd)
		if err != nil {
			return cwndPoint{}, err
		}
		return cwndPoint{oneSnd, twoSnd}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, ms := range sweepMs {
		p := pts[i]
		t.AddRow(ms, p.oneSnd["cwnd1"], p.oneSnd["cwnd2"], p.twoSnd["cwnd1"], p.twoSnd["cwnd2"])
	}
	res.AddTable(t)
	return res, nil
}
