package experiments

import (
	"greedy80211/internal/scenario"
	"greedy80211/internal/stats"
)

func registerDense() {
	register("dense1", "Extension: greedy receiver in a dense multi-BSS hotspot grid × channel plan", "multi-BSS extension (beyond paper)", runDense1)
}

// The dense hotspot deployment: a 3×3 grid of BSSs, each an AP with
// three clients (one uplink, two downlink), cell centers 100 m apart so
// every cell carrier-senses every co-channel cell.
const (
	denseCells    = 9
	denseStations = 3
	denseUplink   = 1
	// denseGreedyCell hosts the misbehaving client: the center cell,
	// which overlaps the most neighbors.
	denseGreedyCell = 4
	// denseGreedyStation is the greedy client's index in its cell — a
	// downlink receiver (index 0 is the uplink sender).
	denseGreedyStation = 1
	// denseRateBps keeps 27 concurrent flows near saturation without
	// the single-pair rate's event blow-up.
	denseRateBps = 1e6
)

// denseWorld builds the grid on the given channel plan; greedy toggles
// fake ACKs on the center cell's first downlink receiver.
func denseWorld(seed int64, plan []int, greedy bool) (*scenario.World, error) {
	top := scenario.TopologySpec{
		NumCells:        denseCells,
		GridCols:        3,
		ChannelPlan:     plan,
		DefaultStations: denseStations,
		DefaultUplink:   denseUplink,
	}
	if greedy {
		cells := make([]scenario.CellSpec, denseGreedyCell+1)
		specs := make([]scenario.StationSpec, denseGreedyStation+1)
		specs[denseGreedyStation] = scenario.StationSpec{
			Policy: scenario.PolicySpec{Name: scenario.PolicyFakeACKs},
		}
		cells[denseGreedyCell] = scenario.CellSpec{StationSpecs: specs}
		top.Cells = cells
	}
	return scenario.BuildCells(scenario.CellsConfig{
		Config:     scenario.Config{Seed: seed},
		Topology:   top,
		CBRRateBps: denseRateBps,
	})
}

func runDense1(cfg RunConfig) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{ID: "dense1", Title: "Greedy receiver in a dense multi-BSS hotspot grid"}
	t := stats.Table{
		Title: "Fake ACKs in the center BSS: the greedy flow's gain and the collateral damage shrink as the channel plan separates overlapping cells.",
		Header: []string{"plan", "case", "greedy_flow", "same_cell_avg", "other_cells_avg", "aggregate"},
	}
	plans := []struct {
		name string
		plan []int
	}{
		{"3-channel", []int{1, 6, 11}},
		{"1-channel", []int{1}},
	}
	if cfg.Quick {
		plans = plans[:1]
	}
	type planPoint struct{ base, att map[int]float64 }
	pts, err := sweep(plans, func(p struct {
		name string
		plan []int
	}) (planPoint, error) {
		base, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return denseWorld(seed, p.plan, false)
		}, nil)
		if err != nil {
			return planPoint{}, err
		}
		att, _, err := runSeeds(cfg, func(seed int64) (*scenario.World, error) {
			return denseWorld(seed, p.plan, true)
		}, nil)
		return planPoint{base, att}, err
	})
	if err != nil {
		return nil, err
	}
	greedyFlow := denseGreedyCell*denseStations + denseGreedyStation + 1
	for i, p := range plans {
		for _, c := range []struct {
			name  string
			flows map[int]float64
		}{
			{"no GR", pts[i].base},
			{"center GR", pts[i].att},
		} {
			var sameSum, otherSum, total float64
			for id, v := range c.flows {
				total += v
				cell := (id - 1) / denseStations
				switch {
				case id == greedyFlow:
				case cell == denseGreedyCell:
					sameSum += v
				default:
					otherSum += v
				}
			}
			t.AddRow(p.name, c.name,
				c.flows[greedyFlow],
				sameSum/float64(denseStations-1),
				otherSum/float64((denseCells-1)*denseStations),
				total)
		}
	}
	res.AddTable(t)
	return res, nil
}
