// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections V, VI, and VIII). Each artifact has a registered
// runner keyed by its id ("fig1" … "fig24", "tab1" … "tab9"); runners
// build the matching scenario, run it over several seeds, and emit the
// same rows or series the paper reports.
//
// Absolute numbers differ from the paper's ns-2/testbed values (different
// substrate); the shapes — who wins, by what factor, where the crossovers
// fall — are the reproduction target. EXPERIMENTS.md records both.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"greedy80211/internal/metrics"
	"greedy80211/internal/runner"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/trace"
)

// RunConfig controls how much work each runner does.
type RunConfig struct {
	// Seeds is how many seeded repetitions feed each median (the paper
	// uses 5). Zero means the default.
	Seeds int
	// BaseSeed offsets every seed.
	BaseSeed int64
	// Duration is the simulated time per run. Zero means the default.
	Duration sim.Time
	// Quick trims sweeps to a few representative points (for benchmarks
	// and smoke tests).
	Quick bool
	// Metrics, when non-nil, collects one telemetry snapshot (seed-median
	// of every world's per-station counters) per runSeeds invocation — the
	// sidecar the cmds write next to the artifact output. The collector
	// canonicalizes ordering, so parallel and sequential runs of the same
	// artifact produce identical sidecars.
	Metrics *metrics.Collector
	// Trace, when non-nil, attaches a flight recorder to every world the
	// artifact builds (one recording per world, keyed by seed). Like
	// Metrics, the collector canonicalizes ordering, so trace exports are
	// byte-identical across parallel widths. Probe emission consumes no
	// randomness and schedules no events, so the artifact numbers are
	// unchanged.
	Trace *trace.Collector
	// Pools, when non-nil, folds every world's end-of-run pool occupancy
	// (frame/packet arenas, arrival arena, event slab) into the report as
	// seeds finish. Pool telemetry is an stdout-only observability
	// surface: it never enters metrics sidecars or result JSON, which
	// stay byte-identical with pooling on or off.
	Pools *scenario.PoolReport
}

// Defaults applied by normalize.
const (
	DefaultSeeds    = 5
	DefaultDuration = 5 * sim.Second
)

// Normalize fills defaulted fields in. It is idempotent, and it is the
// canonical form the campaign engine hashes when building cache keys:
// two configs that normalize identically describe the same work.
func (c RunConfig) Normalize() RunConfig {
	if c.Seeds == 0 {
		if c.Quick {
			c.Seeds = 1
		} else {
			c.Seeds = DefaultSeeds
		}
	}
	if c.Duration == 0 {
		if c.Quick {
			c.Duration = 2 * sim.Second
		} else {
			c.Duration = DefaultDuration
		}
	}
	return c
}

// Result is one regenerated artifact. The json tags define the stable
// machine-readable encoding (see WriteJSON) used by `-json` output and as
// the campaign store's value format.
type Result struct {
	ID     string        `json:"id"`
	Title  string        `json:"title"`
	Tables []stats.Table `json:"tables,omitempty"`
	Series []SeriesGroup `json:"series,omitempty"`
}

// SeriesGroup is a set of curves sharing an x-axis.
type SeriesGroup struct {
	Caption string         `json:"caption,omitempty"`
	XLabel  string         `json:"x_label"`
	Series  []stats.Series `json:"series"`
}

// AddTable appends a table to the result.
func (r *Result) AddTable(t stats.Table) { r.Tables = append(r.Tables, t) }

// AddSeries appends a series group to the result.
func (r *Result) AddSeries(caption, xLabel string, series ...stats.Series) {
	r.Series = append(r.Series, SeriesGroup{Caption: caption, XLabel: xLabel, Series: series})
}

// String renders the artifact as text.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, g := range r.Series {
		if g.Caption != "" {
			b.WriteString(g.Caption)
			b.WriteByte('\n')
		}
		b.WriteString(stats.FormatSeries(g.XLabel, g.Series...))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVFiles renders the artifact's tables and series groups as CSV
// documents keyed by a suggested file name (<id>_<kind><k>.csv), for
// plotting.
func (r *Result) CSVFiles() (map[string]string, error) {
	out := make(map[string]string, len(r.Tables)+len(r.Series))
	for i, t := range r.Tables {
		doc, err := t.CSV()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s table %d: %w", r.ID, i, err)
		}
		out[fmt.Sprintf("%s_table%d.csv", r.ID, i+1)] = doc
	}
	for i, g := range r.Series {
		doc, err := stats.SeriesCSV(g.XLabel, g.Series...)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s series %d: %w", r.ID, i, err)
		}
		out[fmt.Sprintf("%s_series%d.csv", r.ID, i+1)] = doc
	}
	return out, nil
}

// Runner regenerates one artifact.
type Runner func(cfg RunConfig) (*Result, error)

// Registration describes one artifact in the registry.
type Registration struct {
	ID    string
	Title string
	// Paper locates the artifact in the source paper: the figure or
	// table it regenerates plus the section carrying the claim, or an
	// extension/ablation marker for studies beyond the paper. cmd/report
	// joins this against the refdata golden values and the EXPERIMENTS.md
	// artifact↔paper mapping table is generated from it.
	Paper  string
	Runner Runner
}

var (
	registry     = map[string]Registration{}
	registerOnce sync.Once
)

// ensureRegistered populates the registry on first use (explicit lazy
// registration instead of init functions).
func ensureRegistered() {
	registerOnce.Do(func() {
		registerNAV()
		registerSpoof()
		registerFake()
		registerAnalytic()
		registerTestbed()
		registerDetection()
		registerAutoRate()
		registerBaseline()
		registerAblation()
		registerDense()
	})
}

func register(id, title, paper string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Registration{ID: id, Title: title, Paper: paper, Runner: r}
}

// Lookup finds a registered artifact by id.
func Lookup(id string) (Registration, bool) {
	ensureRegistered()
	r, ok := registry[id]
	return r, ok
}

// All lists every registered artifact sorted by id (figures first, then
// tables, each numerically).
func All() []Registration {
	ensureRegistered()
	out := make([]Registration, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		return artifactKey(out[i].ID) < artifactKey(out[j].ID)
	})
	return out
}

// artifactKey sorts "fig2" before "fig10" and figures before tables.
func artifactKey(id string) string {
	kind, num := id, 0
	for i, c := range id {
		if c >= '0' && c <= '9' {
			kind = id[:i]
			fmt.Sscanf(id[i:], "%d", &num)
			break
		}
	}
	return fmt.Sprintf("%s-%04d", kind, num)
}

// Run executes one artifact by id.
func Run(id string, cfg RunConfig) (*Result, error) {
	reg, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown artifact %q", id)
	}
	return reg.Runner(cfg)
}

// --- shared runners -------------------------------------------------------

// seedRun is one seed's extraction: per-flow goodputs, any named metrics,
// and the world's telemetry snapshot when a collector is attached.
type seedRun struct {
	flows   map[int]float64
	metrics map[string]float64
	snap    *metrics.Snapshot
}

// runSeeds builds and runs the scenario once per seed, extracting per-flow
// goodputs and any additional metrics, then reduces each to its median.
// Seeds run concurrently on the runner pool (each world is an independent
// single-goroutine simulation); results are merged in seed order, so the
// medians are identical to a sequential run. When cfg.Metrics is set, the
// seed-median telemetry snapshot of the worlds is added to the collector.
func runSeeds(cfg RunConfig, build func(seed int64) (*scenario.World, error),
	extract func(w *scenario.World, metrics map[string]float64)) (map[int]float64, map[string]float64, error) {
	runs, err := runner.Map(cfg.Seeds, func(i int) (seedRun, error) {
		seed := cfg.BaseSeed + int64(i) + 1
		w, err := build(seed)
		if err != nil {
			return seedRun{}, err
		}
		if cfg.Trace != nil {
			rec := cfg.Trace.Start(seed)
			w.AttachTrace(rec, rec)
		}
		w.Run(cfg.Duration)
		r := seedRun{flows: make(map[int]float64)}
		for _, fl := range w.Flows() {
			r.flows[fl.ID] = fl.GoodputMbps(cfg.Duration)
		}
		if extract != nil {
			r.metrics = make(map[string]float64)
			extract(w, r.metrics)
		}
		if cfg.Metrics != nil {
			r.snap = w.MetricsSnapshot()
		}
		if cfg.Pools != nil {
			cfg.Pools.Add(w.PoolStats())
		}
		return r, nil
	})
	if err != nil {
		return nil, nil, err
	}
	perFlow := make(map[int][]float64)
	perMetric := make(map[string][]float64)
	var snaps []*metrics.Snapshot
	for _, r := range runs {
		for id, v := range r.flows {
			perFlow[id] = append(perFlow[id], v)
		}
		for k, v := range r.metrics {
			perMetric[k] = append(perMetric[k], v)
		}
		if r.snap != nil {
			snaps = append(snaps, r.snap)
		}
	}
	if cfg.Metrics != nil {
		if merged := metrics.MedianSnapshots(snaps); merged != nil {
			cfg.Metrics.Add(merged)
		}
	}
	flows := make(map[int]float64, len(perFlow))
	for id, vals := range perFlow {
		flows[id] = stats.Median(vals)
	}
	mets := make(map[string]float64, len(perMetric))
	for k, vals := range perMetric {
		mets[k] = stats.Median(vals)
	}
	return flows, mets, nil
}

// baseAttPoint pairs one sweep point's baseline and attack per-flow
// goodputs (the recurring no-GR / with-GR comparison).
type baseAttPoint struct {
	base, att map[int]float64
}

// sweep runs body(x) for every sweep value concurrently on the runner pool
// and returns the per-point results in sweep order. The bodies themselves
// typically call runSeeds, which fans out further; nesting is safe and the
// ordering of the returned slice — and therefore of every series point and
// table row derived from it — matches the sequential loop it replaces.
func sweep[X any, T any](xs []X, body func(x X) (T, error)) ([]T, error) {
	return runner.Map(len(xs), func(i int) (T, error) { return body(xs[i]) })
}

// pick trims a sweep to representative points in Quick mode: first, one
// middle, and last.
func pick(cfg RunConfig, full []float64) []float64 {
	if !cfg.Quick || len(full) <= 3 {
		return full
	}
	return []float64{full[0], full[len(full)/2], full[len(full)-1]}
}
