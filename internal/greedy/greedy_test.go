package greedy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

func TestFrameSetContains(t *testing.T) {
	tests := []struct {
		name string
		set  FrameSet
		ft   mac.FrameType
		want bool
	}{
		{"cts in CTSOnly", CTSOnly, mac.FrameCTS, true},
		{"ack not in CTSOnly", CTSOnly, mac.FrameACK, false},
		{"rts in RTSAndCTS", RTSAndCTS, mac.FrameRTS, true},
		{"data in AllFrames", AllFrames, mac.FrameData, true},
		{"unknown type", AllFrames, mac.FrameType(99), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.set.Contains(tt.ft); got != tt.want {
				t.Errorf("Contains(%v) = %v", tt.ft, got)
			}
		})
	}
}

func TestNAVInflationTargetsFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewNAVInflation(rng, CTSOnly, 10*sim.Millisecond, 100)
	normal := 300 * sim.Microsecond
	if got := p.OutgoingDuration(mac.FrameCTS, normal); got != normal+10*sim.Millisecond {
		t.Errorf("CTS duration = %v", got)
	}
	if got := p.OutgoingDuration(mac.FrameACK, normal); got != normal {
		t.Errorf("ACK duration inflated by a CTS-only policy: %v", got)
	}
	if p.Inflated != 1 {
		t.Errorf("Inflated = %d, want 1", p.Inflated)
	}
}

func TestNAVInflationGreedyPercent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewNAVInflation(rng, CTSOnly, sim.Millisecond, 50)
	const n = 20000
	inflated := 0
	for i := 0; i < n; i++ {
		if p.OutgoingDuration(mac.FrameCTS, 0) > 0 {
			inflated++
		}
	}
	frac := float64(inflated) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("GP=50 inflated %.3f of frames, want ≈0.5", frac)
	}
}

func TestNAVInflationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative inflation accepted")
		}
	}()
	NewNAVInflation(rand.New(rand.NewSource(1)), CTSOnly, -1, 100)
}

func TestACKSpooferVictimFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewACKSpoofer(rng, 100, 4)
	if p.SpoofSniffedData(&mac.Frame{Type: mac.FrameData, Src: 1, Dst: 9}) {
		t.Error("spoofed for a non-victim")
	}
	if !p.SpoofSniffedData(&mac.Frame{Type: mac.FrameData, Src: 1, Dst: 4}) {
		t.Error("did not spoof for the victim")
	}
	if p.Sniffed != 1 || p.Spoofs != 1 {
		t.Errorf("counters sniffed=%d spoofs=%d", p.Sniffed, p.Spoofs)
	}
}

func TestACKSpooferAllVictims(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewACKSpoofer(rng, 100)
	for dst := mac.NodeID(2); dst < 10; dst++ {
		if !p.SpoofSniffedData(&mac.Frame{Type: mac.FrameData, Src: 1, Dst: dst}) {
			t.Errorf("victimless spoofer skipped dst %d", dst)
		}
	}
}

func TestFakeACKerGP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewFakeACKer(rng, 0)
	if p.AckCorrupted(1, phys.FrameCorruption{Corrupted: true}) {
		t.Error("GP=0 faked an ACK")
	}
	p2 := NewFakeACKer(rng, 100)
	if !p2.AckCorrupted(1, phys.FrameCorruption{Corrupted: true}) {
		t.Error("GP=100 did not fake an ACK")
	}
	if p2.Opportunities != 1 || p2.Faked != 1 {
		t.Errorf("counters = %d/%d", p2.Opportunities, p2.Faked)
	}
}

func TestCombinedDelegation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := &Combined{
		NAV:   NewNAVInflation(rng, ACKOnly, sim.Millisecond, 100),
		Spoof: NewACKSpoofer(rng, 100),
		Fake:  NewFakeACKer(rng, 100),
	}
	if got := c.OutgoingDuration(mac.FrameACK, 0); got != sim.Millisecond {
		t.Errorf("combined ACK duration = %v", got)
	}
	if got := c.OutgoingDuration(mac.FrameCTS, 7); got != 7 {
		t.Errorf("combined CTS duration = %v, want unchanged", got)
	}
	if !c.SpoofSniffedData(&mac.Frame{Type: mac.FrameData, Src: 1, Dst: 2}) {
		t.Error("combined did not spoof")
	}
	if !c.AckCorrupted(1, phys.FrameCorruption{Corrupted: true}) {
		t.Error("combined did not fake")
	}
}

func TestCombinedEmptyIsNormal(t *testing.T) {
	c := &Combined{}
	if got := c.OutgoingDuration(mac.FrameCTS, 5); got != 5 {
		t.Error("empty Combined changed a duration")
	}
	if c.SpoofSniffedData(&mac.Frame{}) || c.AckCorrupted(1, phys.FrameCorruption{}) {
		t.Error("empty Combined misbehaved")
	}
}

// Property: GP fraction of greedy actions converges to gp/100 for any GP.
func TestPropertyGPFraction(t *testing.T) {
	f := func(gpRaw uint8) bool {
		gp := float64(gpRaw % 101)
		rng := rand.New(rand.NewSource(int64(gpRaw) + 7))
		p := NewFakeACKer(rng, gp)
		const n = 5000
		hits := 0
		for i := 0; i < n; i++ {
			if p.AckCorrupted(1, phys.FrameCorruption{Corrupted: true}) {
				hits++
			}
		}
		frac := float64(hits) / n * 100
		return math.Abs(frac-gp) < 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: inflation never decreases a duration and equals normal+extra
// when applied.
func TestPropertyInflationMonotone(t *testing.T) {
	f := func(extraRaw uint16, normalRaw uint16) bool {
		rng := rand.New(rand.NewSource(11))
		extra := sim.Time(extraRaw) * sim.Microsecond
		normal := sim.Time(normalRaw) * sim.Microsecond
		p := NewNAVInflation(rng, AllFrames, extra, 100)
		got := p.OutgoingDuration(mac.FrameCTS, normal)
		return got == normal+extra && got >= normal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
