// Package greedy implements the paper's three greedy-receiver
// misbehaviors as mac.ReceiverPolicy values:
//
//   - Misbehavior 1, NAV inflation (NAVInflation): the receiver advertises
//     inflated duration fields in CTS/ACK frames (and RTS/DATA frames when
//     it transmits TCP ACKs), silencing every station except its own
//     sender — which ignores frames addressed to itself — so its sender
//     monopolizes the channel.
//   - Misbehavior 2, ACK spoofing (ACKSpoofer): the receiver sniffs data
//     frames destined to competing receivers and acknowledges them on the
//     victims' behalf, suppressing MAC-layer retransmission and pushing
//     wireless losses up into the victims' TCP congestion control.
//   - Misbehavior 3, fake ACKs (FakeACKer): the receiver acknowledges
//     corrupted frames destined to itself, preventing its sender's
//     exponential backoff and increasing its share of the medium.
//
// Every misbehavior takes a greedy percentage (GP): the fraction of
// opportunities on which the receiver actually misbehaves, which the paper
// varies to study detectability-vs-gain trade-offs.
package greedy

import (
	"fmt"
	"math/rand"

	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// FrameSet selects which outgoing frame types a misbehavior manipulates.
type FrameSet struct {
	RTS, CTS, Data, ACK bool
}

// Contains reports whether t is in the set.
func (s FrameSet) Contains(t mac.FrameType) bool {
	switch t {
	case mac.FrameRTS:
		return s.RTS
	case mac.FrameCTS:
		return s.CTS
	case mac.FrameData:
		return s.Data
	case mac.FrameACK:
		return s.ACK
	default:
		return false
	}
}

// Common frame sets from the paper's NAV-inflation sweeps (Fig 4a–d).
var (
	// CTSOnly inflates CTS frames.
	CTSOnly = FrameSet{CTS: true}
	// ACKOnly inflates MAC ACK frames.
	ACKOnly = FrameSet{ACK: true}
	// CTSAndACK inflates both receiver control frames (all a UDP receiver
	// can transmit).
	CTSAndACK = FrameSet{CTS: true, ACK: true}
	// RTSAndCTS inflates CTS plus the RTS frames a TCP receiver sends for
	// its TCP ACK packets.
	RTSAndCTS = FrameSet{RTS: true, CTS: true}
	// AllFrames inflates every frame the receiver transmits (Fig 4d).
	AllFrames = FrameSet{RTS: true, CTS: true, Data: true, ACK: true}
)

// gpDraw reports whether the receiver behaves greedily this opportunity.
func gpDraw(rng *rand.Rand, percent float64) bool {
	switch {
	case percent >= 100:
		return true
	case percent <= 0:
		return false
	default:
		return rng.Float64()*100 < percent
	}
}

// NAVInflation is misbehavior 1. It implements mac.ReceiverPolicy.
type NAVInflation struct {
	mac.NormalPolicy

	frames FrameSet
	extra  sim.Time
	gp     float64
	rng    *rand.Rand

	// Inflated counts frames actually transmitted with inflated NAV.
	Inflated int64
}

var _ mac.ReceiverPolicy = (*NAVInflation)(nil)

// NewNAVInflation builds the policy: frames in set carry a duration field
// increased by extra (clamped to the protocol maximum of 32767 µs by the
// MAC) on greedyPercent of opportunities.
func NewNAVInflation(rng *rand.Rand, set FrameSet, extra sim.Time, greedyPercent float64) *NAVInflation {
	if rng == nil {
		panic("greedy: NewNAVInflation needs an RNG")
	}
	if extra < 0 {
		panic(fmt.Sprintf("greedy: negative NAV inflation %v", extra))
	}
	return &NAVInflation{frames: set, extra: extra, gp: greedyPercent, rng: rng}
}

// OutgoingDuration implements mac.ReceiverPolicy.
func (p *NAVInflation) OutgoingDuration(t mac.FrameType, normal sim.Time) sim.Time {
	if !p.frames.Contains(t) || !gpDraw(p.rng, p.gp) {
		return normal
	}
	p.Inflated++
	return normal + p.extra
}

// ACKSpoofer is misbehavior 2. It implements mac.ReceiverPolicy. The MAC
// invokes SpoofSniffedData for every decoded data frame addressed to
// another station (promiscuous mode).
type ACKSpoofer struct {
	mac.NormalPolicy

	gp  float64
	rng *rand.Rand
	// victims restricts spoofing to data frames addressed to these
	// stations; empty means spoof for every other receiver.
	victims map[mac.NodeID]bool

	// Sniffed counts eligible overheard data frames; Spoofs counts ACKs
	// actually forged.
	Sniffed int64
	Spoofs  int64
}

var _ mac.ReceiverPolicy = (*ACKSpoofer)(nil)

// NewACKSpoofer builds the policy. victims may be nil to target everyone.
func NewACKSpoofer(rng *rand.Rand, greedyPercent float64, victims ...mac.NodeID) *ACKSpoofer {
	if rng == nil {
		panic("greedy: NewACKSpoofer needs an RNG")
	}
	s := &ACKSpoofer{gp: greedyPercent, rng: rng}
	if len(victims) > 0 {
		s.victims = make(map[mac.NodeID]bool, len(victims))
		for _, v := range victims {
			s.victims[v] = true
		}
	}
	return s
}

// SpoofSniffedData implements mac.ReceiverPolicy.
func (p *ACKSpoofer) SpoofSniffedData(f *mac.Frame) bool {
	if p.victims != nil && !p.victims[f.Dst] {
		return false
	}
	p.Sniffed++
	if !gpDraw(p.rng, p.gp) {
		return false
	}
	p.Spoofs++
	return true
}

// FakeACKer is misbehavior 3. It implements mac.ReceiverPolicy. The MAC
// invokes AckCorrupted when a corrupted data frame's surviving addressing
// shows it was destined to this station.
type FakeACKer struct {
	mac.NormalPolicy

	gp  float64
	rng *rand.Rand

	// Opportunities counts corrupted own-frames seen; Faked counts ACKs
	// sent for them.
	Opportunities int64
	Faked         int64
}

var _ mac.ReceiverPolicy = (*FakeACKer)(nil)

// NewFakeACKer builds the policy.
func NewFakeACKer(rng *rand.Rand, greedyPercent float64) *FakeACKer {
	if rng == nil {
		panic("greedy: NewFakeACKer needs an RNG")
	}
	return &FakeACKer{gp: greedyPercent, rng: rng}
}

// AckCorrupted implements mac.ReceiverPolicy.
func (p *FakeACKer) AckCorrupted(_ mac.NodeID, c phys.FrameCorruption) bool {
	p.Opportunities++
	if !gpDraw(p.rng, p.gp) {
		return false
	}
	p.Faked++
	return true
}

// Combined chains several misbehaviors into one policy: NAV inflation
// applies to outgoing durations, spoofing to sniffed frames, and faking to
// corrupted receptions. Nil fields behave normally.
type Combined struct {
	NAV   *NAVInflation
	Spoof *ACKSpoofer
	Fake  *FakeACKer
}

var _ mac.ReceiverPolicy = (*Combined)(nil)

// OutgoingDuration implements mac.ReceiverPolicy.
func (c *Combined) OutgoingDuration(t mac.FrameType, normal sim.Time) sim.Time {
	if c.NAV == nil {
		return normal
	}
	return c.NAV.OutgoingDuration(t, normal)
}

// AckCorrupted implements mac.ReceiverPolicy.
func (c *Combined) AckCorrupted(src mac.NodeID, fc phys.FrameCorruption) bool {
	return c.Fake != nil && c.Fake.AckCorrupted(src, fc)
}

// SpoofSniffedData implements mac.ReceiverPolicy.
func (c *Combined) SpoofSniffedData(f *mac.Frame) bool {
	return c.Spoof != nil && c.Spoof.SpoofSniffedData(f)
}
