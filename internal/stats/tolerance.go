package stats

import (
	"fmt"
	"math"
)

// Band is a symmetric tolerance band around a reference value: a measured
// value v is inside the band around want when
//
//	|v - want| <= Abs + Rel*|want|
//
// Both components are additive so a purely relative band still admits
// exact zeros (want == 0 forces the Rel term to 0) when Abs covers the
// noise floor. The zero Band admits only an exact match.
type Band struct {
	// Rel is the relative half-width (0.1 = ±10% of |want|).
	Rel float64 `json:"rel,omitempty"`
	// Abs is the absolute half-width, in the metric's own unit.
	Abs float64 `json:"abs,omitempty"`
}

// IsZero reports whether the band is unset.
func (b Band) IsZero() bool { return b.Rel == 0 && b.Abs == 0 }

// Width is the band's half-width around want.
func (b Band) Width(want float64) float64 { return b.Abs + b.Rel*math.Abs(want) }

// Holds reports whether got is within the band around want. The boundary
// is inclusive: a deviation exactly equal to the width passes. NaN on
// either side never holds.
func (b Band) Holds(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	return math.Abs(got-want) <= b.Width(want)
}

// String renders the band compactly ("±10%", "±0.05", "±10%+0.05").
func (b Band) String() string {
	switch {
	case b.Rel != 0 && b.Abs != 0:
		return fmt.Sprintf("±%g%%+%g", b.Rel*100, b.Abs)
	case b.Rel != 0:
		return fmt.Sprintf("±%g%%", b.Rel*100)
	default:
		return fmt.Sprintf("±%g", b.Abs)
	}
}

// Verdict classifies one measured value against its golden reference.
type Verdict string

const (
	// VerdictPass: within the pass band — the reproduction holds.
	VerdictPass Verdict = "pass"
	// VerdictDrift: outside the pass band but within the fail band — the
	// trend survives, the magnitude moved. Reports surface drift; gating
	// treats it as passing unless strict mode is on.
	VerdictDrift Verdict = "drift"
	// VerdictFail: outside every band — the claim no longer reproduces.
	VerdictFail Verdict = "fail"
	// VerdictMissing: the value could not be extracted (absent series or
	// table cell, NaN measurement). Gates like a failure: a silently
	// vanished metric must not read as healthy.
	VerdictMissing Verdict = "missing"
)

// Gates reports whether the verdict should fail a regression gate.
// Drift gates only in strict mode.
func (v Verdict) Gates(strict bool) bool {
	switch v {
	case VerdictFail, VerdictMissing:
		return true
	case VerdictDrift:
		return strict
	default:
		return false
	}
}

// Classify compares got against want: pass within the pass band, drift
// within the fail band, fail outside both. A zero fail band means there
// is no drift region — anything outside pass fails outright. NaN in got
// or want classifies as missing.
func Classify(got, want float64, pass, fail Band) Verdict {
	if math.IsNaN(got) || math.IsNaN(want) {
		return VerdictMissing
	}
	if pass.Holds(got, want) {
		return VerdictPass
	}
	if !fail.IsZero() && fail.Holds(got, want) {
		return VerdictDrift
	}
	return VerdictFail
}
