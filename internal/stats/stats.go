// Package stats provides the small aggregation and formatting helpers the
// experiment harness uses: multi-run medians (the paper reports the median
// of 5 runs), x/y series for figures, and aligned text tables.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Median reports the median of vals (the paper's per-point statistic over
// 5 seeded runs). It returns 0 for an empty slice.
func Median(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean reports the arithmetic mean of vals, or 0 for an empty slice.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Point is one (x, y) sample of a figure's series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one labeled curve of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Table is an aligned text table. Cells are stored as the formatted
// strings AddRow produced, so a table round-trips exactly through the
// JSON encoding.
type Table struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row of cells formatted from values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.3f", v)
	case av >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatSeries renders one or more series sharing an x-axis as an aligned
// table: the x column followed by one y column per series.
func FormatSeries(xLabel string, series ...Series) string {
	t := Table{Header: make([]string, 0, len(series)+1)}
	t.Header = append(t.Header, xLabel)
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	// Collect the union of x values in order of first appearance.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]any, 0, len(series)+1)
		row = append(row, x)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = formatFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}
