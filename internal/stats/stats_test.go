package stats

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"five runs", []float64{1.2, 1.5, 1.1, 1.4, 1.3}, 1.3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.in); got != tt.want {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.Points) != 2 || s.Points[1] != (Point{3, 4}) {
		t.Errorf("Points = %v", s.Points)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{
		Title:  "Table X",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("a-much-longer-name", 42)
	tab.AddRow("tiny", 1e-7)
	out := tab.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "alpha") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.000e-07") {
		t.Errorf("scientific formatting missing:\n%s", out)
	}
}

func TestFormatSeriesAlignsSharedAxis(t *testing.T) {
	a := Series{Name: "greedy"}
	a.Add(0, 1.6)
	a.Add(5, 3.1)
	b := Series{Name: "normal"}
	b.Add(0, 1.6)
	b.Add(5, 0.2)
	b.Add(10, 0.0)
	out := FormatSeries("nav_ms", a, b)
	if !strings.Contains(out, "greedy") || !strings.Contains(out, "normal") {
		t.Errorf("missing series names:\n%s", out)
	}
	// Three x rows (0, 5, 10) after header+separator.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// x values must be sorted.
	if strings.Index(out, "10") < strings.Index(out, "5") {
		t.Errorf("x values unsorted:\n%s", out)
	}
}

// Property: the median lies between min and max and is order-invariant.
func TestPropertyMedianBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		m := Median(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if m < sorted[0] || m > sorted[len(sorted)-1] {
			return false
		}
		// Shuffle-invariance: reversing the input changes nothing.
		rev := make([]float64, len(vals))
		for i, v := range vals {
			rev[len(vals)-1-i] = v
		}
		return Median(rev) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
