package stats

import (
	"math"
	"testing"
)

func TestBandHolds(t *testing.T) {
	cases := []struct {
		name      string
		band      Band
		got, want float64
		holds     bool
	}{
		{"exact match zero band", Band{}, 1.5, 1.5, true},
		{"any deviation fails zero band", Band{}, 1.5000001, 1.5, false},
		{"inside rel", Band{Rel: 0.1}, 1.05, 1.0, true},
		{"exact rel boundary is inclusive", Band{Rel: 0.25}, 2.5, 2.0, true},
		{"outside rel", Band{Rel: 0.1}, 1.11, 1.0, false},
		{"inside abs", Band{Abs: 0.05}, 0.04, 0, true},
		{"exact abs boundary is inclusive", Band{Abs: 0.05}, 0.05, 0, true},
		{"outside abs", Band{Abs: 0.05}, 0.051, 0, false},
		{"rel and abs add", Band{Rel: 0.1, Abs: 0.05}, 1.15, 1.0, true},
		{"negative want uses magnitude", Band{Rel: 0.25}, -2.5, -2.0, true},
		{"rel band around zero needs abs", Band{Rel: 0.5}, 0.01, 0, false},
		{"nan got", Band{Rel: 1, Abs: 1}, math.NaN(), 1, false},
		{"nan want", Band{Rel: 1, Abs: 1}, 1, math.NaN(), false},
	}
	for _, c := range cases {
		if got := c.band.Holds(c.got, c.want); got != c.holds {
			t.Errorf("%s: Band%+v.Holds(%v, %v) = %v, want %v",
				c.name, c.band, c.got, c.want, got, c.holds)
		}
	}
}

func TestClassify(t *testing.T) {
	pass := Band{Rel: 0.25}
	fail := Band{Rel: 0.75}
	cases := []struct {
		name      string
		got, want float64
		verdict   Verdict
	}{
		{"well inside pass", 2.0, 2.0, VerdictPass},
		{"exact pass boundary", 2.5, 2.0, VerdictPass},
		{"just past pass is drift", 2.51, 2.0, VerdictDrift},
		{"exact fail boundary is drift", 3.5, 2.0, VerdictDrift},
		{"outside fail", 3.51, 2.0, VerdictFail},
		{"nan measurement", math.NaN(), 2.0, VerdictMissing},
		{"nan golden", 2.0, math.NaN(), VerdictMissing},
	}
	for _, c := range cases {
		if got := Classify(c.got, c.want, pass, fail); got != c.verdict {
			t.Errorf("%s: Classify(%v, %v) = %s, want %s", c.name, c.got, c.want, got, c.verdict)
		}
	}
}

func TestClassifyNoFailBand(t *testing.T) {
	// With a zero fail band there is no drift region: outside pass is fail.
	if v := Classify(1.2, 1.0, Band{Rel: 0.1}, Band{}); v != VerdictFail {
		t.Fatalf("Classify without fail band = %s, want %s", v, VerdictFail)
	}
	if v := Classify(1.05, 1.0, Band{Rel: 0.1}, Band{}); v != VerdictPass {
		t.Fatalf("Classify inside pass = %s, want %s", v, VerdictPass)
	}
}

func TestVerdictGates(t *testing.T) {
	cases := []struct {
		v              Verdict
		normal, strict bool
	}{
		{VerdictPass, false, false},
		{VerdictDrift, false, true},
		{VerdictFail, true, true},
		{VerdictMissing, true, true},
	}
	for _, c := range cases {
		if got := c.v.Gates(false); got != c.normal {
			t.Errorf("%s.Gates(false) = %v, want %v", c.v, got, c.normal)
		}
		if got := c.v.Gates(true); got != c.strict {
			t.Errorf("%s.Gates(true) = %v, want %v", c.v, got, c.strict)
		}
	}
}

func TestBandString(t *testing.T) {
	cases := []struct {
		band Band
		want string
	}{
		{Band{Rel: 0.1}, "±10%"},
		{Band{Abs: 0.05}, "±0.05"},
		{Band{Rel: 0.25, Abs: 0.01}, "±25%+0.01"},
		{Band{}, "±0"},
	}
	for _, c := range cases {
		if got := c.band.String(); got != c.want {
			t.Errorf("Band%+v.String() = %q, want %q", c.band, got, c.want)
		}
	}
}
