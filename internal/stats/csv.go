package stats

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CSV renders the table as RFC 4180 CSV (header row first).
func (t *Table) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(t.Header); err != nil {
		return "", fmt.Errorf("stats: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return "", fmt.Errorf("stats: csv row: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("stats: csv flush: %w", err)
	}
	return b.String(), nil
}

// SeriesCSV renders one or more series sharing an x-axis as CSV: the x
// column followed by one y column per series; missing points are empty
// cells.
func SeriesCSV(xLabel string, series ...Series) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := make([]string, 0, len(series)+1)
	header = append(header, xLabel)
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := w.Write(header); err != nil {
		return "", fmt.Errorf("stats: csv header: %w", err)
	}
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = strconv.FormatFloat(p.Y, 'g', -1, 64)
					break
				}
			}
			row = append(row, cell)
		}
		if err := w.Write(row); err != nil {
			return "", fmt.Errorf("stats: csv row: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("stats: csv flush: %w", err)
	}
	return b.String(), nil
}
