package stats

import (
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tab := Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha, with comma", 1.5)
	tab.AddRow("beta", 42)
	out, err := tab.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"alpha, with comma"`) {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
}

func TestSeriesCSV(t *testing.T) {
	a := Series{Name: "greedy"}
	a.Add(0, 1.5)
	a.Add(5, 3.25)
	b := Series{Name: "normal"}
	b.Add(0, 1.5)
	b.Add(10, 0.125)
	out, err := SeriesCSV("nav_ms", a, b)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	want := []string{
		"nav_ms,greedy,normal",
		"0,1.5,1.5",
		"5,3.25,",
		"10,,0.125",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines:\n%s", out)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}
