package node

import (
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/transport"
)

type captureAgent struct {
	got []*transport.Packet
}

func (a *captureAgent) Receive(p *transport.Packet) { a.got = append(a.got, p) }

func TestInjectToAgent(t *testing.T) {
	n := New("sta")
	a := &captureAgent{}
	n.AddAgent(5, a)
	p := &transport.Packet{Flow: 5, Seq: 1}
	n.Inject(p)
	if len(a.got) != 1 || a.got[0] != p {
		t.Fatalf("agent got %v", a.got)
	}
}

func TestInjectForwardsViaRoute(t *testing.T) {
	n := New("ap")
	var forwarded []*transport.Packet
	n.SetRoute(7, RouteFunc(func(p *transport.Packet) bool {
		forwarded = append(forwarded, p)
		return true
	}))
	n.Inject(&transport.Packet{Flow: 7})
	if len(forwarded) != 1 {
		t.Fatal("route not used for non-local flow")
	}
}

func TestInjectDropsUnrouted(t *testing.T) {
	n := New("sta")
	n.Inject(&transport.Packet{Flow: 9})
	if n.UnroutedDrops != 1 {
		t.Errorf("UnroutedDrops = %d, want 1", n.UnroutedDrops)
	}
}

func TestOutputForRoutes(t *testing.T) {
	n := New("sta")
	sent := 0
	n.SetRoute(3, RouteFunc(func(*transport.Packet) bool { sent++; return true }))
	out := n.OutputFor(3)
	if !out.Output(&transport.Packet{Flow: 3}) || sent != 1 {
		t.Error("OutputFor did not forward")
	}
	// Unrouted flow: drop reported.
	out9 := n.OutputFor(9)
	if out9.Output(&transport.Packet{Flow: 9}) {
		t.Error("unrouted output claimed success")
	}
	if n.UnroutedDrops != 1 {
		t.Errorf("UnroutedDrops = %d", n.UnroutedDrops)
	}
}

func TestDeliverDataUnwrapsPayload(t *testing.T) {
	n := New("sta")
	a := &captureAgent{}
	n.AddAgent(2, a)
	pkt := &transport.Packet{Flow: 2, Seq: 4}
	n.DeliverData(&mac.Frame{Type: mac.FrameData, Payload: pkt}, -50)
	if len(a.got) != 1 || a.got[0].Seq != 4 {
		t.Fatal("payload not delivered to agent")
	}
	// Non-packet payloads are dropped, not panicked on.
	n.DeliverData(&mac.Frame{Type: mac.FrameData, Payload: "junk"}, -50)
	if n.UnroutedDrops != 1 {
		t.Errorf("junk payload drops = %d", n.UnroutedDrops)
	}
	n.TxDone(nil, true) // no-op, must not panic
}

func TestRegistrationPanics(t *testing.T) {
	for _, tt := range []struct {
		name string
		fn   func(n *Node)
	}{
		{"nil agent", func(n *Node) { n.AddAgent(1, nil) }},
		{"dup agent", func(n *Node) { n.AddAgent(1, &captureAgent{}); n.AddAgent(1, &captureAgent{}) }},
		{"nil route", func(n *Node) { n.SetRoute(1, nil) }},
		{"wireless without MAC", func(n *Node) { n.WirelessTo(2) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tt.fn(New("x"))
		})
	}
}

func TestNameAndMAC(t *testing.T) {
	n := New("ap-1")
	if n.Name() != "ap-1" {
		t.Errorf("Name = %q", n.Name())
	}
	if n.MAC() != nil {
		t.Error("fresh node has a MAC")
	}
}
