// Package node composes the pieces of a station: a MAC, transport agents,
// and per-flow routing. It implements mac.Upper (delivering received frames
// to agents) and provides transport.Output shims that push agent traffic to
// the right next hop — a wireless destination or a wireline endpoint (the
// AP-bridging case of the paper's remote-sender experiments).
package node

import (
	"fmt"

	"greedy80211/internal/mac"
	"greedy80211/internal/transport"
)

// Route forwards a packet one hop toward its destination. It reports false
// when the packet was dropped (full queue).
type Route interface {
	Forward(p *transport.Packet) bool
}

// RouteFunc adapts a function to Route.
type RouteFunc func(p *transport.Packet) bool

// Forward implements Route.
func (f RouteFunc) Forward(p *transport.Packet) bool { return f(p) }

// Node is a host: wireless station, access point, or wired-only remote
// host (no MAC). The zero value is unusable; construct with New.
type Node struct {
	name   string
	dcf    *mac.DCF
	agents map[int]transport.Agent
	routes map[int]Route

	// UnroutedDrops counts packets that arrived for a flow with neither a
	// local agent nor a route.
	UnroutedDrops int64

	// TxDoneHook, when non-nil, observes every MAC MSDU completion (the
	// cross-layer spoofed-ACK detector correlates MAC-acknowledged TCP
	// segments with later TCP retransmissions).
	TxDoneHook func(f *mac.Frame, ok bool)
}

var _ mac.Upper = (*Node)(nil)

// New creates a node with the given diagnostic name.
func New(name string) *Node {
	return &Node{
		name:   name,
		agents: make(map[int]transport.Agent),
		routes: make(map[int]Route),
	}
}

// Name reports the node's diagnostic name.
func (n *Node) Name() string { return n.name }

// AttachMAC binds the node's wireless MAC. It may be omitted for
// wired-only hosts.
func (n *Node) AttachMAC(d *mac.DCF) { n.dcf = d }

// MAC reports the attached MAC, or nil for a wired-only host.
func (n *Node) MAC() *mac.DCF { return n.dcf }

// AddAgent registers the local consumer for a flow's packets.
func (n *Node) AddAgent(flow int, a transport.Agent) {
	if a == nil {
		panic(fmt.Sprintf("node %s: nil agent for flow %d", n.name, flow))
	}
	if _, dup := n.agents[flow]; dup {
		panic(fmt.Sprintf("node %s: duplicate agent for flow %d", n.name, flow))
	}
	n.agents[flow] = a
}

// SetRoute registers the next hop for a flow's packets originated or
// forwarded by this node.
func (n *Node) SetRoute(flow int, r Route) {
	if r == nil {
		panic(fmt.Sprintf("node %s: nil route for flow %d", n.name, flow))
	}
	n.routes[flow] = r
}

// WirelessTo returns a Route that transmits packets over this node's MAC
// to the given station.
func (n *Node) WirelessTo(dst mac.NodeID) Route {
	if n.dcf == nil {
		panic(fmt.Sprintf("node %s: WirelessTo without a MAC", n.name))
	}
	return RouteFunc(func(p *transport.Packet) bool {
		return n.dcf.Send(dst, p, p.WireBytes)
	})
}

// OutputFor returns the transport.Output a local agent should emit into:
// packets are forwarded along the flow's route.
func (n *Node) OutputFor(flow int) transport.Output {
	return transport.OutputFunc(func(p *transport.Packet) bool {
		r, ok := n.routes[flow]
		if !ok {
			n.UnroutedDrops++
			return false
		}
		return r.Forward(p)
	})
}

// Inject delivers a packet arriving at this node from any medium: local
// agents consume it, otherwise it is forwarded along the flow route (AP
// bridging), otherwise dropped. A packet that ends its journey here — an
// agent consumed it or nothing wanted it — is released back to its pool;
// forwarding passes ownership onward unless the next hop refuses it.
func (n *Node) Inject(p *transport.Packet) {
	if a, ok := n.agents[p.Flow]; ok {
		a.Receive(p)
		p.Release()
		return
	}
	if r, ok := n.routes[p.Flow]; ok {
		if !r.Forward(p) {
			p.Release()
		}
		return
	}
	n.UnroutedDrops++
	p.Release()
}

// DeliverData implements mac.Upper.
func (n *Node) DeliverData(f *mac.Frame, _ float64) {
	p, ok := f.Payload.(*transport.Packet)
	if !ok {
		n.UnroutedDrops++
		return
	}
	n.Inject(p)
}

// TxDone implements mac.Upper. Transport agents drive their own timers;
// MAC completion feeds only the optional observation hook.
func (n *Node) TxDone(f *mac.Frame, ok bool) {
	if n.TxDoneHook != nil {
		n.TxDoneHook(f, ok)
	}
}
