package transport

import "fmt"

// seqSet is a dense membership set for non-negative sequence numbers.
// Sources number packets sequentially from zero, so a bitset beats a
// map[int]bool on both the per-packet hash and the rehash-growth
// allocations that showed up in duplicate-detection profiles.
type seqSet struct {
	words []uint64
}

// testAndSet records seq and reports whether it was already present.
func (s *seqSet) testAndSet(seq int) bool {
	if seq < 0 {
		panic(fmt.Sprintf("transport: negative packet seq %d", seq))
	}
	w := seq >> 6
	bit := uint64(1) << uint(seq&63)
	if w >= len(s.words) {
		grown := make([]uint64, max(w+1, 2*len(s.words)))
		copy(grown, s.words)
		s.words = grown
	}
	if s.words[w]&bit != 0 {
		return true
	}
	s.words[w] |= bit
	return false
}
