package transport

import (
	"testing"

	"greedy80211/internal/sim"
)

// newRenoPair wires a sender/receiver with selective drops controlled by
// the test.
type dropPipe struct {
	sched  *sim.Scheduler
	delay  sim.Time
	toRecv *TCPReceiver
	toSend *TCPSender
	drop   func(seq int) bool
}

func (p *dropPipe) dataOut(pkt *Packet) bool {
	if p.drop != nil && !pkt.IsACK && p.drop(pkt.Seq) {
		return true
	}
	p.sched.Schedule(p.delay, func() { p.toRecv.Receive(pkt) })
	return true
}

func (p *dropPipe) ackOut(pkt *Packet) bool {
	p.sched.Schedule(p.delay, func() { p.toSend.Receive(pkt) })
	return true
}

func buildDropPair(newReno bool) (*sim.Scheduler, *TCPSender, *TCPReceiver, *dropPipe) {
	sched := sim.NewScheduler(9)
	p := &dropPipe{sched: sched, delay: 5 * sim.Millisecond}
	cfg := DefaultTCPConfig(1)
	cfg.NewReno = newReno
	snd := NewTCPSender(sched, OutputFunc(p.dataOut), cfg)
	rcv := NewTCPReceiver(1, OutputFunc(p.ackOut))
	p.toRecv = rcv
	p.toSend = snd
	return sched, snd, rcv, p
}

// Two losses in one window: Reno needs a timeout or a second fast
// retransmit cycle; NewReno repairs both holes inside one fast recovery.
func TestNewRenoRepairsMultipleHolesWithoutTimeout(t *testing.T) {
	for _, tt := range []struct {
		name    string
		newReno bool
	}{{"reno", false}, {"newreno", true}} {
		t.Run(tt.name, func(t *testing.T) {
			sched, snd, rcv, pipe := buildDropPair(tt.newReno)
			dropped := map[int]bool{}
			pipe.drop = func(seq int) bool {
				// Drop the first transmission of seqs 40 and 42.
				if (seq == 40 || seq == 42) && !dropped[seq] {
					dropped[seq] = true
					return true
				}
				return false
			}
			snd.Start()
			sched.RunUntil(3 * sim.Second)
			if len(dropped) != 2 {
				t.Fatalf("dropped %d packets, want 2", len(dropped))
			}
			if int64(rcv.RcvNxt()) != rcv.Stats().UniquePackets {
				t.Error("holes left after recovery")
			}
			if tt.newReno && snd.Timeouts != 0 {
				t.Errorf("NewReno needed %d timeouts for a 2-loss window", snd.Timeouts)
			}
			if rcv.RcvNxt() < 1000 {
				t.Errorf("throughput collapsed: %d packets in 3s", rcv.RcvNxt())
			}
		})
	}
}

func TestDelayedAckHalvesAckTraffic(t *testing.T) {
	run := func(delayed bool) (*TCPSender, *TCPReceiver) {
		sched := sim.NewScheduler(11)
		p := &dropPipe{sched: sched, delay: 5 * sim.Millisecond}
		snd := NewTCPSender(sched, OutputFunc(p.dataOut), DefaultTCPConfig(1))
		var rcv *TCPReceiver
		if delayed {
			rcv = NewTCPReceiverDelayed(sched, 1, OutputFunc(p.ackOut), 100*sim.Millisecond)
		} else {
			rcv = NewTCPReceiver(1, OutputFunc(p.ackOut))
		}
		p.toRecv = rcv
		p.toSend = snd
		snd.Start()
		sched.RunUntil(2 * sim.Second)
		return snd, rcv
	}
	_, everyRcv := run(false)
	_, delRcv := run(true)
	everyRatio := float64(everyRcv.AcksSent) / float64(everyRcv.Stats().UniquePackets)
	delRatio := float64(delRcv.AcksSent) / float64(delRcv.Stats().UniquePackets)
	if everyRatio < 0.99 {
		t.Errorf("ack-every-segment ratio %.2f, want ≈1", everyRatio)
	}
	if delRatio > 0.65 {
		t.Errorf("delayed-ack ratio %.2f, want ≈0.5", delRatio)
	}
	// Delayed ACKs must not break delivery.
	if int64(delRcv.RcvNxt()) != delRcv.Stats().UniquePackets {
		t.Error("delayed-ack receiver left holes")
	}
	if delRcv.Stats().UniquePackets < everyRcv.Stats().UniquePackets/3 {
		t.Errorf("delayed acks collapsed throughput: %d vs %d",
			delRcv.Stats().UniquePackets, everyRcv.Stats().UniquePackets)
	}
}

func TestDelayedAckImmediateOnOutOfOrder(t *testing.T) {
	sched := sim.NewScheduler(13)
	var acks []*Packet
	rcv := NewTCPReceiverDelayed(sched, 1, OutputFunc(func(p *Packet) bool {
		acks = append(acks, p)
		return true
	}), 100*sim.Millisecond)
	// Out-of-order arrival must trigger an immediate duplicate ACK (the
	// sender's fast-retransmit signal cannot wait 100 ms).
	rcv.Receive(&Packet{Flow: 1, Seq: 0, PayloadBytes: 10})
	sched.RunUntil(sim.Millisecond) // seq 0's ack still delayed
	if len(acks) != 0 {
		t.Fatal("in-order single segment acked immediately despite delayed mode")
	}
	rcv.Receive(&Packet{Flow: 1, Seq: 5, PayloadBytes: 10}) // gap!
	if len(acks) != 1 || acks[0].AckSeq != 1 {
		t.Fatalf("out-of-order arrival not acked immediately: %v", acks)
	}
}

func TestDelayedAckTimerFires(t *testing.T) {
	sched := sim.NewScheduler(15)
	var acks []*Packet
	rcv := NewTCPReceiverDelayed(sched, 1, OutputFunc(func(p *Packet) bool {
		acks = append(acks, p)
		return true
	}), 50*sim.Millisecond)
	rcv.Receive(&Packet{Flow: 1, Seq: 0, PayloadBytes: 10})
	sched.RunUntil(49 * sim.Millisecond)
	if len(acks) != 0 {
		t.Fatal("ack sent before the delay elapsed")
	}
	sched.RunUntil(51 * sim.Millisecond)
	if len(acks) != 1 || acks[0].AckSeq != 1 {
		t.Fatalf("delayed ack not sent on timer: %v", acks)
	}
}

func TestNewTCPReceiverDelayedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero delay accepted")
		}
	}()
	NewTCPReceiverDelayed(sim.NewScheduler(1), 1, OutputFunc(func(*Packet) bool { return true }), 0)
}
