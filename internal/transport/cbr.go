package transport

import (
	"fmt"
	"math/rand"

	"greedy80211/internal/sim"
)

// CBRSource generates constant-bit-rate UDP traffic: one PayloadBytes
// packet every interval. The paper's UDP experiments run all CBR flows at
// the same rate, high enough to saturate the medium, so goodput differences
// are purely MAC-layer effects.
type CBRSource struct {
	sched  *sim.Scheduler
	out    Output
	flow   int
	bytes  int
	every  sim.Time
	jitter float64
	rng    *rand.Rand
	timer  *sim.Timer

	pool *PacketPool

	seq     int
	offered int64
	dropped int64
}

// UsePool makes the source draw packets from p instead of the heap. Call
// before Start; a nil pool keeps heap allocation.
func (s *CBRSource) UsePool(p *PacketPool) { s.pool = p }

// NewCBRSource builds a CBR source for flow sending payloadBytes packets
// every interval through out. Each inter-packet gap carries ±1% uniform
// jitter: competing CBR flows with identical periods would otherwise
// phase-lock against shared queues and bias admission systematically (a
// classic discrete-event artifact).
func NewCBRSource(sched *sim.Scheduler, out Output, flow, payloadBytes int, interval sim.Time) *CBRSource {
	if interval <= 0 {
		panic(fmt.Sprintf("transport: CBR interval %v must be positive", interval))
	}
	if payloadBytes <= 0 {
		panic(fmt.Sprintf("transport: CBR payload %d must be positive", payloadBytes))
	}
	s := &CBRSource{
		sched:  sched,
		out:    out,
		flow:   flow,
		bytes:  payloadBytes,
		every:  interval,
		jitter: 0.01,
		rng:    sched.RNG(),
	}
	s.timer = sim.NewTimer(sched, s.tick)
	return s
}

// CBRIntervalForRate returns the packet interval that yields rateBps of
// application payload with the given packet size.
func CBRIntervalForRate(rateBps float64, payloadBytes int) sim.Time {
	if rateBps <= 0 || payloadBytes <= 0 {
		panic("transport: CBRIntervalForRate requires positive rate and size")
	}
	return sim.FromSeconds(float64(payloadBytes*8) / rateBps)
}

// Start begins generation immediately.
func (s *CBRSource) Start() { s.timer.Start(0) }

// Stop halts generation.
func (s *CBRSource) Stop() { s.timer.Stop() }

// Offered reports how many packets the source generated.
func (s *CBRSource) Offered() int64 { return s.offered }

// LocalDrops reports packets rejected by the output (full MAC queue).
func (s *CBRSource) LocalDrops() int64 { return s.dropped }

func (s *CBRSource) tick() {
	p := s.pool.Get()
	p.Flow = s.flow
	p.Seq = s.seq
	p.PayloadBytes = s.bytes
	p.WireBytes = s.bytes + UDPIPHeaderBytes
	s.seq++
	s.offered++
	if !s.out.Output(p) {
		s.dropped++
		p.Release() // never left this node
	}
	next := s.every
	if s.jitter > 0 {
		next += sim.Time(float64(s.every) * s.jitter * (2*s.rng.Float64() - 1))
	}
	s.timer.Start(next)
}

// UDPSink counts unique packets received on a flow. It implements Agent.
type UDPSink struct {
	seen  seqSet
	stats FlowStats
}

var _ Agent = (*UDPSink)(nil)

// NewUDPSink builds an empty sink.
func NewUDPSink() *UDPSink {
	return &UDPSink{}
}

// Receive implements Agent.
func (s *UDPSink) Receive(p *Packet) {
	if p.IsACK {
		return
	}
	if s.seen.testAndSet(p.Seq) {
		s.stats.DuplicatePackets++
		return
	}
	s.stats.UniquePackets++
	s.stats.UniqueBytes += int64(p.PayloadBytes)
}

// Stats reports the accumulated reception statistics.
func (s *UDPSink) Stats() FlowStats { return s.stats }
