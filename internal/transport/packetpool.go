package transport

import "greedy80211/internal/pool"

// PacketPool recycles Packets through a chunked freelist arena. Sources
// (CBR ticks, TCP segment/ACK emission) check packets out; ownership
// travels with the packet — through MAC queues and wireline links — to
// the node that finally consumes it, which releases it after the local
// agent's Receive returns. A creator whose Output call reports false
// releases the packet itself (it never left the node).
//
// Packets that die in transit without a release — an MSDU dropped at the
// MAC retry limit, traffic still queued when the world's horizon ends —
// are deliberately leaked to the garbage collector: the MAC cannot tell
// whether the final retry was in fact received (only the ACK was lost),
// so releasing there could double-free with the receiver. Worlds are
// short-lived; the leak is bounded by drop counts.
//
// A nil *PacketPool is valid and heap-allocates: Get returns &Packet{},
// and Release on such packets is a no-op.
type PacketPool struct {
	arena *pool.Arena[Packet]
}

// NewPacketPool builds an empty pool. Live packets track MAC queue depth
// plus receiver reordering buffers (tens), so chunks stay small to keep
// per-seed world construction cheap.
func NewPacketPool() *PacketPool {
	p := &PacketPool{arena: pool.NewArena[Packet](64, nil)}
	p.arena.SetPoison(func(pk *Packet) {
		// Impossible field values expose use-after-release under pooldebug.
		*pk = Packet{Flow: -9999, Seq: -9999, AckSeq: -9999, pool: pk.pool}
	})
	return p
}

// Get checks a zeroed packet out of the pool. On a nil pool it returns a
// plain heap packet.
func (p *PacketPool) Get() *Packet {
	if p == nil {
		return &Packet{}
	}
	pk := p.arena.Get()
	*pk = Packet{pool: p, refs: 1}
	return pk
}

// Stats reports pool occupancy; zero on a nil pool.
func (p *PacketPool) Stats() pool.Stats {
	if p == nil {
		return pool.Stats{}
	}
	return p.arena.Stats()
}

// Retain adds a reference to a pooled packet; a no-op for nil or
// unpooled packets.
func (p *Packet) Retain() {
	if p == nil || p.pool == nil {
		return
	}
	if p.refs <= 0 {
		panic("transport: Retain of a released packet")
	}
	p.refs++
}

// Release drops one reference; the last release zeroes the packet and
// returns it to the pool. A no-op for nil or unpooled packets; releasing
// more times than retained panics.
func (p *Packet) Release() {
	if p == nil || p.pool == nil {
		return
	}
	if p.refs <= 0 {
		panic("transport: packet released twice")
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	pl := p.pool
	*p = Packet{pool: pl}
	pl.arena.Put(p)
}
