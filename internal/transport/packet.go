// Package transport provides the upper-layer traffic the paper's scenarios
// run over the 802.11 MAC: constant-bit-rate UDP flows and a TCP Reno
// implementation (slow start, congestion avoidance, fast retransmit and
// recovery, RTO estimation). Misbehavior 2 (spoofed MAC ACKs) works by
// pushing wireless losses up into TCP's congestion control; this package is
// where those effects become visible.
package transport

import (
	"fmt"

	"greedy80211/internal/sim"
)

// Header sizes on the wire (bytes).
const (
	// TCPIPHeaderBytes is the TCP/IP header overhead carried by TCP
	// segments and pure ACKs (ns-2's 40-byte default).
	TCPIPHeaderBytes = 40
	// UDPIPHeaderBytes is the UDP/IP header overhead.
	UDPIPHeaderBytes = 28
)

// Packet is an upper-layer datagram or segment. Sequence numbers count
// packets, not bytes, mirroring ns-2's TCP.
type Packet struct {
	// Flow identifies the end-to-end flow the packet belongs to.
	Flow int
	// Seq is the data sequence number (data packets only).
	Seq int
	// IsACK marks a pure TCP acknowledgment.
	IsACK bool
	// AckSeq is the cumulative acknowledgment: the next sequence number
	// the receiver expects.
	AckSeq int
	// PayloadBytes is the application payload size.
	PayloadBytes int
	// WireBytes is the transport+network size on the wire.
	WireBytes int

	// pool and refs implement recycled packets (see PacketPool). Both
	// stay zero for plain &Packet{} literals, which Release then ignores.
	pool *PacketPool
	refs int32
}

// String implements fmt.Stringer.
func (p *Packet) String() string {
	if p.IsACK {
		return fmt.Sprintf("flow %d ACK %d", p.Flow, p.AckSeq)
	}
	return fmt.Sprintf("flow %d DATA %d (%dB)", p.Flow, p.Seq, p.PayloadBytes)
}

// Output is where an agent hands packets for delivery (the node's routing
// shim onto the MAC or a wireline link). It reports false when the packet
// was dropped locally (full queue).
type Output interface {
	Output(p *Packet) bool
}

// Agent consumes packets addressed to its flow at a node.
type Agent interface {
	// Receive handles one arriving packet.
	Receive(p *Packet)
}

// OutputFunc adapts a function to the Output interface.
type OutputFunc func(p *Packet) bool

// Output implements Output.
func (f OutputFunc) Output(p *Packet) bool { return f(p) }

// FlowStats aggregates what a sink has received: the goodput numerator of
// every figure in the paper (unique, uncorrupted application bytes).
type FlowStats struct {
	// UniquePackets and UniqueBytes count first-time sequence numbers.
	UniquePackets int64
	UniqueBytes   int64
	// DuplicatePackets counts repeats (e.g. TCP retransmissions that
	// arrived after the original).
	DuplicatePackets int64
}

// GoodputBps reports application goodput in bits per second over interval.
func (s FlowStats) GoodputBps(interval sim.Time) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(s.UniqueBytes) * 8 / interval.Seconds()
}
