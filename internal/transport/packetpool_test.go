package transport

import "testing"

func TestPacketPoolLifecycle(t *testing.T) {
	p := NewPacketPool()
	pk := p.Get()
	pk.Flow, pk.Seq = 3, 17
	pk.Release()
	if st := p.Stats(); st.Live != 0 || st.Gets != 1 || st.Puts != 1 {
		t.Errorf("after release: %+v", st)
	}
	again := p.Get()
	if again != pk {
		t.Error("pool did not recycle the released packet")
	}
	if again.Flow != 0 || again.Seq != 0 {
		t.Errorf("recycled packet not zeroed: %+v", again)
	}
}

func TestPacketRetainRelease(t *testing.T) {
	p := NewPacketPool()
	pk := p.Get()
	pk.Retain()
	pk.Release()
	if st := p.Stats(); st.Live != 1 {
		t.Errorf("live = %d after one of two refs dropped, want 1", st.Live)
	}
	pk.Release()
	if st := p.Stats(); st.Live != 0 {
		t.Errorf("live = %d after final release, want 0", st.Live)
	}
}

func TestPacketDoubleReleasePanics(t *testing.T) {
	p := NewPacketPool()
	pk := p.Get()
	pk.Release()
	defer func() {
		if recover() == nil {
			t.Error("second Release did not panic")
		}
	}()
	pk.Release()
}

func TestUnpooledPacketNoOps(t *testing.T) {
	var p *PacketPool
	pk := p.Get()
	pk.Retain()
	pk.Release()
	pk.Release()
	var nilPk *Packet
	nilPk.Retain()
	nilPk.Release()
}
