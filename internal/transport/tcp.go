package transport

import (
	"fmt"

	"greedy80211/internal/sim"
)

// TCPConfig parameterizes a Reno sender.
type TCPConfig struct {
	// Flow identifies the connection.
	Flow int
	// MSS is the segment payload in bytes (the paper uses 1024).
	MSS int
	// MaxWindow caps the congestion window, in packets.
	MaxWindow float64
	// InitialRTO, MinRTO, and MaxRTO bound the retransmission timer.
	InitialRTO sim.Time
	MinRTO     sim.Time
	MaxRTO     sim.Time
	// InitialSSThresh is the slow-start threshold at connection start, in
	// packets; zero means MaxWindow.
	InitialSSThresh float64
	// NewReno enables partial-ACK handling in fast recovery (RFC 6582):
	// a new ACK that does not cover the recovery point retransmits the
	// next hole and stays in fast recovery instead of exiting. The
	// paper-era default is plain Reno.
	NewReno bool
	// AckDelay, when positive, makes the receiver delay ACKs per RFC 5681
	// (every second in-order segment or after this delay). Zero keeps the
	// ACK-every-segment behavior the paper's ns-2 setup uses.
	AckDelay sim.Time
}

// DefaultTCPConfig returns ns-2-like Reno parameters for flow.
func DefaultTCPConfig(flow int) TCPConfig {
	return TCPConfig{
		Flow:       flow,
		MSS:        1024,
		MaxWindow:  128,
		InitialRTO: 3 * sim.Second,
		MinRTO:     200 * sim.Millisecond,
		MaxRTO:     60 * sim.Second,
	}
}

// TCPSender is a Reno congestion-control sender with an unbounded backlog
// (an FTP source): it always has data to send. It implements Agent to
// consume the acknowledgment stream.
type TCPSender struct {
	cfg   TCPConfig
	sched *sim.Scheduler
	out   Output
	pool  *PacketPool

	cwnd       float64
	ssthresh   float64
	sndUna     int
	sndNxt     int
	maxEmitted int // highest sequence ever transmitted + 1
	dupAcks    int
	inFR       bool // fast recovery
	recover    int  // NewReno: highest sequence outstanding at FR entry

	// RTO estimation (RFC 6298 shape), with Karn's rule: one outstanding
	// sample, invalidated by retransmission.
	srtt       sim.Time
	rttvar     sim.Time
	rto        sim.Time
	hasSample  bool
	rttSeq     int
	rttStart   sim.Time
	rttPending bool
	rtoTimer   *sim.Timer

	// Time-weighted congestion-window average (Table II).
	cwndIntegral float64
	cwndSince    sim.Time
	startedAt    sim.Time
	started      bool

	// RetransmitHook, when non-nil, observes retransmissions of the first
	// unacknowledged segment — the one TCP actually believes lost. (Later
	// go-back-N resends cover segments that may have been delivered and
	// would pollute loss-correlation detectors.) The cross-layer
	// spoofed-ACK detector (package detect) correlates these with
	// MAC-acknowledged segments.
	RetransmitHook func(seq int)

	// Statistics.
	Retransmits   int64
	Timeouts      int64
	FastRecovery  int64
	SegmentsSent  int64
	AcksReceived  int64
	OutputDrops   int64
	retransmitted map[int]bool // seqs retransmitted since last sample start
}

var _ Agent = (*TCPSender)(nil)

// NewTCPSender builds a Reno sender pushing segments through out.
func NewTCPSender(sched *sim.Scheduler, out Output, cfg TCPConfig) *TCPSender {
	if cfg.MSS <= 0 {
		panic(fmt.Sprintf("transport: TCP MSS %d must be positive", cfg.MSS))
	}
	if cfg.MaxWindow < 1 {
		panic(fmt.Sprintf("transport: TCP MaxWindow %.1f must be ≥ 1", cfg.MaxWindow))
	}
	if cfg.InitialRTO <= 0 || cfg.MinRTO <= 0 || cfg.MaxRTO < cfg.MinRTO {
		panic("transport: TCP RTO bounds invalid")
	}
	ssthresh := cfg.InitialSSThresh
	if ssthresh == 0 {
		ssthresh = cfg.MaxWindow
	}
	s := &TCPSender{
		cfg:           cfg,
		sched:         sched,
		out:           out,
		cwnd:          1,
		ssthresh:      ssthresh,
		rto:           cfg.InitialRTO,
		retransmitted: make(map[int]bool),
	}
	s.rtoTimer = sim.NewTimer(sched, s.onTimeout)
	return s
}

// UsePool makes the sender draw segments from p instead of the heap.
// Call before Start; a nil pool keeps heap allocation.
func (s *TCPSender) UsePool(p *PacketPool) { s.pool = p }

// Start opens the connection: the first segment goes out immediately.
func (s *TCPSender) Start() {
	s.started = true
	s.startedAt = s.sched.Now()
	s.cwndSince = s.startedAt
	s.trySend()
}

// Cwnd reports the current congestion window in packets.
func (s *TCPSender) Cwnd() float64 { return s.cwnd }

// AvgCwnd reports the time-weighted average congestion window since Start.
func (s *TCPSender) AvgCwnd() float64 {
	if !s.started {
		return 0
	}
	total := s.sched.Now() - s.startedAt
	if total <= 0 {
		return s.cwnd
	}
	integral := s.cwndIntegral + s.cwnd*float64(s.sched.Now()-s.cwndSince)
	return integral / float64(total)
}

// setCwnd updates the window, accumulating the time-weighted integral.
func (s *TCPSender) setCwnd(v float64) {
	if v < 1 {
		v = 1
	}
	if v > s.cfg.MaxWindow {
		v = s.cfg.MaxWindow
	}
	now := s.sched.Now()
	s.cwndIntegral += s.cwnd * float64(now-s.cwndSince)
	s.cwndSince = now
	s.cwnd = v
}

func (s *TCPSender) window() int {
	w := int(s.cwnd)
	if w < 1 {
		w = 1
	}
	return w
}

func (s *TCPSender) trySend() {
	for s.sndNxt < s.sndUna+s.window() {
		// Sequences below maxEmitted were already sent once (go-back-N
		// resends after a timeout): they are retransmissions for Karn's
		// rule and statistics.
		s.emit(s.sndNxt, s.sndNxt < s.maxEmitted)
		s.sndNxt++
	}
}

func (s *TCPSender) emit(seq int, isRetransmit bool) {
	p := s.pool.Get()
	p.Flow = s.cfg.Flow
	p.Seq = seq
	p.PayloadBytes = s.cfg.MSS
	p.WireBytes = s.cfg.MSS + TCPIPHeaderBytes
	s.SegmentsSent++
	if seq >= s.maxEmitted {
		s.maxEmitted = seq + 1
	}
	if isRetransmit {
		s.Retransmits++
		s.retransmitted[seq] = true
		if s.RetransmitHook != nil && seq == s.sndUna {
			s.RetransmitHook(seq)
		}
		if s.rttPending && seq == s.rttSeq {
			s.rttPending = false // Karn: sample invalidated
		}
	} else if !s.rttPending {
		s.rttSeq = seq
		s.rttStart = s.sched.Now()
		s.rttPending = true
	}
	if !s.out.Output(p) {
		s.OutputDrops++
		p.Release() // never left this node
	}
	if !s.rtoTimer.Pending() {
		s.rtoTimer.Start(s.rto)
	}
}

// Receive implements Agent: processes the acknowledgment stream.
func (s *TCPSender) Receive(p *Packet) {
	if !p.IsACK || p.Flow != s.cfg.Flow {
		return
	}
	s.AcksReceived++
	switch {
	case p.AckSeq > s.sndUna:
		s.newAck(p.AckSeq)
	case p.AckSeq == s.sndUna && s.sndNxt > s.sndUna:
		s.dupAck()
	}
}

func (s *TCPSender) newAck(ackSeq int) {
	if s.rttPending && ackSeq > s.rttSeq && !s.retransmitted[s.rttSeq] {
		s.sampleRTT(s.sched.Now() - s.rttStart)
	}
	s.rttPending = false
	for seq := s.sndUna; seq < ackSeq; seq++ {
		delete(s.retransmitted, seq)
	}
	prevUna := s.sndUna
	s.sndUna = ackSeq
	if s.sndNxt < s.sndUna {
		s.sndNxt = s.sndUna
	}
	if s.inFR && s.cfg.NewReno && ackSeq < s.recover {
		// NewReno partial ACK: the first hole after ackSeq is still
		// missing — retransmit it, deflate by the amount acked, and stay
		// in fast recovery.
		s.emit(ackSeq, true)
		s.setCwnd(s.cwnd - float64(ackSeq-prevUna) + 1)
		s.rtoTimer.Start(s.rto)
		s.trySend()
		return
	}
	s.dupAcks = 0
	if s.inFR {
		// Reno: any new ACK ends fast recovery, deflating to ssthresh.
		// (NewReno reaches here only once the recovery point is covered.)
		s.inFR = false
		s.setCwnd(s.ssthresh)
	} else if s.cwnd < s.ssthresh {
		s.setCwnd(s.cwnd + 1) // slow start
	} else {
		s.setCwnd(s.cwnd + 1/s.cwnd) // congestion avoidance
	}
	if s.sndUna == s.sndNxt {
		s.rtoTimer.Stop()
	} else {
		s.rtoTimer.Start(s.rto)
	}
	s.trySend()
}

func (s *TCPSender) dupAck() {
	s.dupAcks++
	switch {
	case s.inFR:
		s.setCwnd(s.cwnd + 1) // window inflation
		s.trySend()
	case s.dupAcks == 3:
		// Fast retransmit + fast recovery.
		s.FastRecovery++
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.emit(s.sndUna, true)
		s.setCwnd(s.ssthresh + 3)
		s.inFR = true
		s.recover = s.sndNxt
		s.rtoTimer.Start(s.rto)
	}
}

func (s *TCPSender) onTimeout() {
	if s.sndUna == s.sndNxt {
		return // nothing outstanding
	}
	s.Timeouts++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.setCwnd(1)
	s.dupAcks = 0
	s.inFR = false
	s.rttPending = false // Karn: never sample across a timeout
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	// Go-back-N restart from the first unacknowledged segment.
	s.sndNxt = s.sndUna
	s.emit(s.sndNxt, true)
	s.sndNxt++
	s.rtoTimer.Start(s.rto)
}

func (s *TCPSender) sampleRTT(sample sim.Time) {
	if sample <= 0 {
		sample = sim.Millisecond
	}
	if !s.hasSample {
		s.srtt = sample
		s.rttvar = sample / 2
		s.hasSample = true
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	if rto > s.cfg.MaxRTO {
		rto = s.cfg.MaxRTO
	}
	s.rto = rto
}

// SRTT reports the smoothed RTT estimate (zero before the first sample).
func (s *TCPSender) SRTT() sim.Time { return s.srtt }

// RTO reports the current retransmission timeout.
func (s *TCPSender) RTO() sim.Time { return s.rto }

// TCPReceiver acknowledges arriving segments cumulatively and counts
// unique goodput. By default it ACKs every segment (ns-2's paper-era
// behavior); NewTCPReceiverDelayed enables RFC 5681 delayed ACKs. It
// implements Agent.
type TCPReceiver struct {
	flow   int
	out    Output
	pool   *PacketPool
	rcvNxt int
	ooo    map[int]bool
	seen   seqSet
	stats  FlowStats

	// Delayed-ACK state (nil timer means ACK-every-segment).
	delay      sim.Time
	delayTimer *sim.Timer
	ackPending bool

	// AcksSent counts pure ACKs emitted.
	AcksSent int64
}

var _ Agent = (*TCPReceiver)(nil)

// NewTCPReceiver builds a receiver for flow answering through out,
// acknowledging every segment.
func NewTCPReceiver(flow int, out Output) *TCPReceiver {
	return &TCPReceiver{
		flow: flow,
		out:  out,
		ooo:  make(map[int]bool),
	}
}

// NewTCPReceiverDelayed builds a receiver with RFC 5681 delayed ACKs: an
// ACK is sent for every second in-order segment or after delay, and
// immediately for out-of-order or hole-filling segments.
func NewTCPReceiverDelayed(sched *sim.Scheduler, flow int, out Output, delay sim.Time) *TCPReceiver {
	if sched == nil || delay <= 0 {
		panic("transport: NewTCPReceiverDelayed needs a scheduler and positive delay")
	}
	r := NewTCPReceiver(flow, out)
	r.delay = delay
	r.delayTimer = sim.NewTimer(sched, r.sendAck)
	return r
}

// UsePool makes the receiver draw ACKs from p instead of the heap. A nil
// pool keeps heap allocation.
func (r *TCPReceiver) UsePool(p *PacketPool) { r.pool = p }

// Receive implements Agent.
func (r *TCPReceiver) Receive(p *Packet) {
	if p.IsACK || p.Flow != r.flow {
		return
	}
	if !r.seen.testAndSet(p.Seq) {
		r.stats.UniquePackets++
		r.stats.UniqueBytes += int64(p.PayloadBytes)
	} else {
		r.stats.DuplicatePackets++
	}
	inOrder := p.Seq == r.rcvNxt
	filledHole := false
	switch {
	case inOrder:
		r.rcvNxt++
		for r.ooo[r.rcvNxt] {
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt++
			filledHole = true
		}
	case p.Seq > r.rcvNxt:
		r.ooo[p.Seq] = true
	}
	if r.delayTimer == nil {
		r.sendAck()
		return
	}
	// Delayed-ACK policy: immediate for duplicates, out-of-order, and
	// hole-filling arrivals; otherwise every second segment or on timer.
	switch {
	case !inOrder || filledHole:
		r.sendAck()
	case r.ackPending:
		r.sendAck()
	default:
		r.ackPending = true
		r.delayTimer.Start(r.delay)
	}
}

func (r *TCPReceiver) sendAck() {
	if r.delayTimer != nil {
		r.delayTimer.Stop()
	}
	r.ackPending = false
	r.AcksSent++
	p := r.pool.Get()
	p.Flow = r.flow
	p.IsACK = true
	p.AckSeq = r.rcvNxt
	p.WireBytes = TCPIPHeaderBytes
	if !r.out.Output(p) {
		p.Release() // never left this node
	}
}

// Stats reports accumulated goodput statistics.
func (r *TCPReceiver) Stats() FlowStats { return r.stats }

// RcvNxt reports the next expected in-order sequence number.
func (r *TCPReceiver) RcvNxt() int { return r.rcvNxt }
