package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"greedy80211/internal/sim"
)

func TestPacketString(t *testing.T) {
	d := &Packet{Flow: 1, Seq: 5, PayloadBytes: 1024}
	a := &Packet{Flow: 1, IsACK: true, AckSeq: 6}
	if d.String() == "" || a.String() == "" {
		t.Error("empty String()")
	}
}

func TestFlowStatsGoodput(t *testing.T) {
	s := FlowStats{UniqueBytes: 125000} // 1 Mbit
	if got := s.GoodputBps(sim.Second); got != 1e6 {
		t.Errorf("GoodputBps = %v, want 1e6", got)
	}
	if got := s.GoodputBps(0); got != 0 {
		t.Error("zero interval should have zero goodput")
	}
}

func TestCBRIntervalForRate(t *testing.T) {
	// 1024-byte packets at 8.192 Mbps → 1 ms.
	if got := CBRIntervalForRate(8.192e6, 1024); got != sim.Millisecond {
		t.Errorf("interval = %v, want 1ms", got)
	}
}

func TestCBRSourceGeneratesAtRate(t *testing.T) {
	sched := sim.NewScheduler(1)
	var got []*Packet
	out := OutputFunc(func(p *Packet) bool { got = append(got, p); return true })
	src := NewCBRSource(sched, out, 7, 512, sim.Millisecond)
	src.Start()
	sched.RunUntil(100 * sim.Millisecond)
	src.Stop()
	sched.RunUntil(200 * sim.Millisecond)

	// t=0 .. t=100ms inclusive at ~1ms spacing, ±1% jitter.
	if len(got) < 99 || len(got) > 103 {
		t.Errorf("generated %d packets, want ≈101", len(got))
	}
	for i, p := range got {
		if p.Seq != i || p.Flow != 7 || p.PayloadBytes != 512 || p.WireBytes != 512+UDPIPHeaderBytes {
			t.Fatalf("packet %d malformed: %+v", i, p)
		}
	}
	if src.Offered() != int64(len(got)) {
		t.Errorf("Offered = %d, want %d", src.Offered(), len(got))
	}
}

func TestCBRSourceCountsDrops(t *testing.T) {
	sched := sim.NewScheduler(1)
	out := OutputFunc(func(*Packet) bool { return false })
	src := NewCBRSource(sched, out, 1, 100, sim.Millisecond)
	src.Start()
	sched.RunUntil(10 * sim.Millisecond)
	if src.LocalDrops() != 11 {
		t.Errorf("LocalDrops = %d, want 11", src.LocalDrops())
	}
}

func TestUDPSinkDeduplicates(t *testing.T) {
	s := NewUDPSink()
	for _, seq := range []int{0, 1, 1, 2, 0} {
		s.Receive(&Packet{Seq: seq, PayloadBytes: 100})
	}
	s.Receive(&Packet{IsACK: true}) // ignored
	st := s.Stats()
	if st.UniquePackets != 3 || st.DuplicatePackets != 2 || st.UniqueBytes != 300 {
		t.Errorf("stats = %+v", st)
	}
}

// pipe is a bidirectional transport harness between a TCP sender and
// receiver with one-way delay, i.i.d. loss, and a queue of infinite depth.
type pipe struct {
	sched    *sim.Scheduler
	delay    sim.Time
	loss     float64
	rng      *rand.Rand
	toRecv   *TCPReceiver
	toSend   *TCPSender
	dataLost int
}

func (p *pipe) dataOut(pkt *Packet) bool {
	if p.rng.Float64() < p.loss {
		p.dataLost++
		return true // lost in transit, not locally
	}
	p.sched.Schedule(p.delay, func() { p.toRecv.Receive(pkt) })
	return true
}

func (p *pipe) ackOut(pkt *Packet) bool {
	if p.rng.Float64() < p.loss {
		return true
	}
	p.sched.Schedule(p.delay, func() { p.toSend.Receive(pkt) })
	return true
}

func newTCPPair(seed int64, delay sim.Time, loss float64) (*sim.Scheduler, *TCPSender, *TCPReceiver, *pipe) {
	sched := sim.NewScheduler(seed)
	p := &pipe{sched: sched, delay: delay, loss: loss, rng: rand.New(rand.NewSource(seed))}
	snd := NewTCPSender(sched, OutputFunc(p.dataOut), DefaultTCPConfig(1))
	rcv := NewTCPReceiver(1, OutputFunc(p.ackOut))
	p.toRecv = rcv
	p.toSend = snd
	return sched, snd, rcv, p
}

func TestTCPLosslessDelivery(t *testing.T) {
	sched, snd, rcv, _ := newTCPPair(1, 5*sim.Millisecond, 0)
	snd.Start()
	sched.RunUntil(2 * sim.Second)

	if rcv.Stats().UniquePackets == 0 {
		t.Fatal("nothing delivered")
	}
	if rcv.Stats().DuplicatePackets != 0 {
		t.Errorf("duplicates on a lossless pipe: %d", rcv.Stats().DuplicatePackets)
	}
	if snd.Retransmits != 0 || snd.Timeouts != 0 {
		t.Errorf("retransmits=%d timeouts=%d on lossless pipe", snd.Retransmits, snd.Timeouts)
	}
	// The receiver must have advanced contiguously.
	if int64(rcv.RcvNxt()) != rcv.Stats().UniquePackets {
		t.Errorf("rcvNxt %d != unique %d: gap on a lossless pipe",
			rcv.RcvNxt(), rcv.Stats().UniquePackets)
	}
	// cwnd should have opened well beyond 1.
	if snd.Cwnd() < 10 {
		t.Errorf("cwnd = %.1f after 2s lossless, want growth", snd.Cwnd())
	}
	// RTT estimate should be near 2×5ms.
	if srtt := snd.SRTT(); srtt < 9*sim.Millisecond || srtt > 30*sim.Millisecond {
		t.Errorf("SRTT = %v, want ≈10ms", srtt)
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	sched, snd, rcv, p := newTCPPair(2, 5*sim.Millisecond, 0.05)
	snd.Start()
	sched.RunUntil(10 * sim.Second)

	if p.dataLost == 0 {
		t.Fatal("no losses injected")
	}
	if snd.Retransmits == 0 {
		t.Error("no retransmissions despite loss")
	}
	// Everything below rcvNxt was delivered in order: no holes remain
	// below the cumulative ack point by construction; check progress.
	if rcv.RcvNxt() < 1000 {
		t.Errorf("only %d in-order packets in 10s at 5%% loss", rcv.RcvNxt())
	}
	// Loss keeps the window below the cap.
	if snd.AvgCwnd() >= snd.cfg.MaxWindow {
		t.Errorf("avg cwnd %.1f pinned at cap despite loss", snd.AvgCwnd())
	}
}

func TestTCPTimeoutPath(t *testing.T) {
	// 60% loss forces timeouts (fast retransmit rarely completes).
	sched, snd, _, _ := newTCPPair(3, 5*sim.Millisecond, 0.6)
	snd.Start()
	sched.RunUntil(60 * sim.Second)

	if snd.Timeouts == 0 {
		t.Error("no RTO timeouts at 60% loss")
	}
	if snd.Cwnd() > snd.cfg.MaxWindow {
		t.Errorf("cwnd %.1f exceeded cap", snd.Cwnd())
	}
}

func TestTCPFastRecovery(t *testing.T) {
	sched, snd, rcv, p := newTCPPair(4, 5*sim.Millisecond, 0)
	snd.Start()
	sched.RunUntil(500 * sim.Millisecond) // let cwnd open
	// Drop exactly one data packet by swapping the output temporarily.
	dropped := false
	orig := snd.out
	snd.out = OutputFunc(func(pkt *Packet) bool {
		if !dropped && !pkt.IsACK {
			dropped = true
			return true
		}
		return orig.Output(pkt)
	})
	sched.RunUntil(510 * sim.Millisecond)
	snd.out = orig
	sched.RunUntil(2 * sim.Second)

	if !dropped {
		t.Fatal("never dropped a packet")
	}
	if snd.FastRecovery == 0 {
		t.Error("single loss in a large window should trigger fast recovery")
	}
	if snd.Timeouts != 0 {
		t.Error("single loss should not need an RTO")
	}
	if int64(rcv.RcvNxt()) != rcv.Stats().UniquePackets {
		t.Error("hole left after recovery")
	}
	_ = p
}

func TestTCPAvgCwndTracks(t *testing.T) {
	sched, snd, _, _ := newTCPPair(5, sim.Millisecond, 0)
	snd.Start()
	sched.RunUntil(sim.Second)
	avg := snd.AvgCwnd()
	if avg <= 1 || avg > snd.cfg.MaxWindow {
		t.Errorf("AvgCwnd = %.2f out of range", avg)
	}
}

func TestTCPConfigValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	out := OutputFunc(func(*Packet) bool { return true })
	for _, tt := range []struct {
		name string
		mut  func(*TCPConfig)
	}{
		{"zero MSS", func(c *TCPConfig) { c.MSS = 0 }},
		{"tiny window", func(c *TCPConfig) { c.MaxWindow = 0.5 }},
		{"bad RTO", func(c *TCPConfig) { c.MinRTO = 0 }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultTCPConfig(1)
			tt.mut(&cfg)
			defer func() {
				if recover() == nil {
					t.Error("invalid config accepted")
				}
			}()
			NewTCPSender(sched, out, cfg)
		})
	}
}

// Property: under arbitrary loss patterns, the receiver's cumulative point
// only advances over packets actually seen, and everything below it was
// delivered exactly in order (no phantom packets).
func TestPropertyTCPIntegrity(t *testing.T) {
	f := func(seed int64, lossRaw uint8) bool {
		loss := float64(lossRaw%80) / 100
		sched, snd, rcv, _ := newTCPPair(seed, 2*sim.Millisecond, loss)
		snd.Start()
		sched.RunUntil(3 * sim.Second)
		// rcvNxt never exceeds the highest sequence ever emitted (sndNxt
		// itself may rewind below rcvNxt after a go-back-N timeout).
		if rcv.RcvNxt() > snd.maxEmitted {
			return false
		}
		// Unique deliveries are at least the in-order prefix.
		if rcv.Stats().UniquePackets < int64(rcv.RcvNxt()) {
			return false
		}
		// Sender invariants.
		return snd.sndUna <= snd.sndNxt && snd.Cwnd() >= 1 &&
			snd.Cwnd() <= snd.cfg.MaxWindow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: goodput through the sink equals unique sequence count × size.
func TestPropertyUDPSinkAccounting(t *testing.T) {
	f := func(seqsRaw []uint8) bool {
		s := NewUDPSink()
		unique := make(map[int]bool)
		for _, q := range seqsRaw {
			seq := int(q % 32)
			s.Receive(&Packet{Seq: seq, PayloadBytes: 10})
			unique[seq] = true
		}
		st := s.Stats()
		return st.UniquePackets == int64(len(unique)) &&
			st.UniqueBytes == int64(10*len(unique)) &&
			st.UniquePackets+st.DuplicatePackets == int64(len(seqsRaw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
