package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"strings"
	"testing"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestLoggerAttachesCorrelationIDsFromContext(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithRequestID(context.Background(), "req-1234")
	ctx = WithLeaseID(ctx, "l7-abcd")
	log.InfoContext(ctx, "leased unit", "unit", "fig1/s1")

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line %q: %v", buf.String(), err)
	}
	if rec["request_id"] != "req-1234" || rec["lease_id"] != "l7-abcd" {
		t.Errorf("correlation ids missing: %v", rec)
	}
	if rec["unit"] != "fig1/s1" || rec["msg"] != "leased unit" {
		t.Errorf("payload attrs lost: %v", rec)
	}

	// Without ids in context, no id attrs appear.
	buf.Reset()
	log.Info("plain")
	if strings.Contains(buf.String(), "request_id") || strings.Contains(buf.String(), "lease_id") {
		t.Errorf("ids attached without context: %s", buf.String())
	}

	// WithAttrs/WithGroup preserve the decoration.
	buf.Reset()
	log.With("worker", "w1").InfoContext(WithRequestID(context.Background(), "r2"), "derived")
	if !strings.Contains(buf.String(), `"request_id":"r2"`) || !strings.Contains(buf.String(), `"worker":"w1"`) {
		t.Errorf("derived logger lost decoration: %s", buf.String())
	}
}

func TestRequestAndLeaseIDAccessors(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" || LeaseID(ctx) != "" {
		t.Error("empty context returned ids")
	}
	ctx = WithLeaseID(WithRequestID(ctx, "r"), "l")
	if RequestID(ctx) != "r" || LeaseID(ctx) != "l" {
		t.Errorf("accessors: %q %q", RequestID(ctx), LeaseID(ctx))
	}
}

func TestLogConfigFlags(t *testing.T) {
	for _, tc := range []struct {
		args    []string
		level   slog.Level
		wantErr bool
	}{
		{args: nil, level: slog.LevelInfo},
		{args: []string{"-log-level", "debug"}, level: slog.LevelDebug},
		{args: []string{"-log-level", "warn", "-log-format", "json"}, level: slog.LevelWarn},
		{args: []string{"-log-level", "loud"}, wantErr: true},
		{args: []string{"-log-format", "xml"}, wantErr: true},
	} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		cfg := RegisterLogFlags(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		log, err := cfg.Logger(&buf)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%v: no error", tc.args)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		log.Debug("d")
		log.Warn("w")
		gotDebug := strings.Contains(buf.String(), "d")
		if wantDebug := tc.level <= slog.LevelDebug; gotDebug != wantDebug {
			t.Errorf("%v: debug emitted=%v, want %v (out %q)", tc.args, gotDebug, wantDebug, buf.String())
		}
	}
}

func TestDiscardLoggerDropsEverything(t *testing.T) {
	log := Discard()
	log.Error("nothing happens")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}

func TestLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "text", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	log.InfoContext(WithRequestID(context.Background(), "abc"), "served", "status", 200)
	line := buf.String()
	if !strings.Contains(line, "request_id=abc") || !strings.Contains(line, "status=200") {
		t.Errorf("text line: %q", line)
	}
	if _, err := NewLogger(io.Discard, "yaml", slog.LevelInfo); err == nil {
		t.Error("unknown format accepted")
	}
}
