package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Registries also carry constant labels
// (module fingerprint, go version) stamped onto every exposed series, so
// mixed-version fleets are diagnosable from scrapes alone.
type Label struct {
	Key, Value string
}

// labelSignature renders a sorted, unambiguous identity for a label set.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := append([]Label(nil), labels...)
	sort.Slice(s, func(i, j int) bool { return s[i].Key < s[j].Key })
	var b strings.Builder
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; contention on gauges is negligible here).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (upper bounds in
// ascending order, +Inf implicit) and tracks their sum. Observation is
// lock-free; snapshots are consistent enough for monitoring (bucket
// counts and sum are read without a global lock, so a scrape racing an
// Observe may be off by the in-flight sample — harmless for this use).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    Gauge
}

// NewHistogram builds a standalone histogram (registries build their own
// via Registry.Histogram). Bounds must be ascending and non-empty.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds must ascend (bound %d: %g <= %g)", i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Bounds returns the bucket upper bounds (shared slice; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram, mergeable
// across processes (shards, workers) when bucket layouts match.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is +Inf
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Merge combines two snapshots bucket by bucket. Layouts must match
// exactly — merging histograms with different bounds would silently
// misbin, so it is an error instead.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(s.Bounds) != len(o.Bounds) || len(s.Counts) != len(o.Counts) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different layouts (%d vs %d buckets)", len(s.Counts), len(o.Counts))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bounds at %d (%g vs %g)", i, s.Bounds[i], o.Bounds[i])
		}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}

// LogBuckets returns n log-spaced bucket bounds starting at min with the
// given ratio between consecutive bounds.
func LogBuckets(min, ratio float64, n int) []float64 {
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// DefaultLatencyBuckets spans 100µs to ~13s doubling per bucket — wide
// enough for both a 304 blob read and a multi-second trace re-render.
var DefaultLatencyBuckets = LogBuckets(100e-6, 2, 18)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label // sorted by key

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry owns a process's metrics. Registration is idempotent: asking
// for the same (name, labels) twice returns the same instance, which is
// what lets per-route children materialize lazily without bookkeeping at
// the call sites.
type Registry struct {
	mu     sync.Mutex
	consts []Label
	byID   map[string]*metric
	kinds  map[string]metricKind // name -> kind, for family consistency
	helps  map[string]string
	order  []*metric
}

// NewRegistry builds a registry whose constant labels are stamped onto
// every exposed series.
func NewRegistry(consts ...Label) *Registry {
	sorted := append([]Label(nil), consts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return &Registry{
		consts: sorted,
		byID:   make(map[string]*metric),
		kinds:  make(map[string]metricKind),
		helps:  make(map[string]string),
	}
}

// ConstLabels returns the registry's constant labels.
func (r *Registry) ConstLabels() []Label { return r.consts }

// lookup finds or creates the series. Mixing kinds under one name is a
// programming error and panics immediately rather than rendering a
// malformed exposition later.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, build func() *metric) *metric {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	id := name + "{" + labelSignature(sorted) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind.promType(), m.kind.promType()))
		}
		return m
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric family %s re-registered as %s (was %s)", name, kind.promType(), k.promType()))
	}
	m := build()
	m.name, m.help, m.kind, m.labels = name, help, kind, sorted
	if _, ok := r.helps[name]; !ok {
		r.helps[name] = help
		r.kinds[name] = kind
	}
	r.byID[id] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is sampled at exposition time
// (lease-table sizes, runtime stats). Re-registering the same series
// replaces the callback.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	m := r.lookup(name, help, kindGaugeFunc, labels, func() *metric {
		return &metric{}
	})
	r.mu.Lock()
	m.gaugeFn = f
	r.mu.Unlock()
}

// Histogram registers (or finds) a histogram series. A nil bounds slice
// uses DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return r.lookup(name, help, kindHistogram, labels, func() *metric {
		h, err := NewHistogram(bounds)
		if err != nil {
			panic("obs: " + err.Error())
		}
		return &metric{hist: h}
	}).hist
}

// snapshotMetrics copies the registration list under the lock so
// exposition can run sample collection outside it.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.order...)
}
