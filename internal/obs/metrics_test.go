package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// le buckets are inclusive upper bounds: 1.0 lands in le="1".
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 4.1, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // le=1: {0.5,1}; le=2: {1.5,2}; le=4: {3.9,4}; +Inf: {4.1,100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if wantSum := 0.5 + 1 + 1.5 + 2 + 3.9 + 4 + 4.1 + 100; math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}

	// Malformed bounds are rejected up front.
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
}

func TestDefaultLatencyBucketsAreLogSpaced(t *testing.T) {
	b := DefaultLatencyBuckets
	if len(b) != 18 {
		t.Fatalf("len = %d, want 18", len(b))
	}
	if math.Abs(b[0]-100e-6) > 1e-12 {
		t.Errorf("first bound = %g, want 100µs", b[0])
	}
	for i := 1; i < len(b); i++ {
		if ratio := b[i] / b[i-1]; math.Abs(ratio-2) > 1e-9 {
			t.Errorf("bucket %d ratio = %g, want 2", i, ratio)
		}
	}
	// The top bucket must comfortably hold a multi-second trace render.
	if b[len(b)-1] < 10 {
		t.Errorf("top bound %gs too small", b[len(b)-1])
	}
}

func TestHistogramMergeDeterminism(t *testing.T) {
	mk := func(values ...float64) HistogramSnapshot {
		h, err := NewHistogram([]float64{0.01, 0.1, 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range values {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	a := mk(0.005, 0.05, 5)
	b := mk(0.5, 0.05)

	ab, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := b.Merge(a)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Count != 5 || ba.Count != 5 {
		t.Errorf("merged counts: %d / %d, want 5", ab.Count, ba.Count)
	}
	for i := range ab.Counts {
		if ab.Counts[i] != ba.Counts[i] {
			t.Errorf("merge not commutative at bucket %d: %d vs %d", i, ab.Counts[i], ba.Counts[i])
		}
	}
	if math.Abs(ab.Sum-ba.Sum) > 1e-12 {
		t.Errorf("merged sums differ: %g vs %g", ab.Sum, ba.Sum)
	}

	// Layout mismatches refuse instead of misbinning.
	h2, _ := NewHistogram([]float64{1, 2})
	if _, err := a.Merge(h2.Snapshot()); err == nil {
		t.Error("merge across different layouts accepted")
	}
}

// TestRegistryConcurrentHammer exercises every primitive from many
// goroutines; run under -race this is the data-race proof, and the final
// counts must still be exact.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry(Label{Key: "module", Value: "test"})
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Lazily looked-up children from every goroutine: the lookup
			// itself is part of what is being hammered.
			c := r.Counter("hammer_total", "hammered events")
			h := r.Histogram("hammer_seconds", "hammered latencies", []float64{0.001, 0.01, 0.1})
			g := r.Gauge("hammer_gauge", "hammered gauge")
			routed := r.Counter("hammer_routed_total", "per-route", Label{Key: "route", Value: []string{"a", "b"}[w%2]})
			for i := 0; i < iters; i++ {
				c.Inc()
				routed.Inc()
				h.Observe(float64(i%100) / 1000.0)
				g.Set(float64(i))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("hammer_total", "").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	s := r.Histogram("hammer_seconds", "", []float64{0.001, 0.01, 0.1}).Snapshot()
	if s.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*iters)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	a := r.Counter("hammer_routed_total", "", Label{Key: "route", Value: "a"}).Value()
	b := r.Counter("hammer_routed_total", "", Label{Key: "route", Value: "b"}).Value()
	if a+b != workers*iters {
		t.Errorf("routed split %d+%d, want %d total", a, b, workers*iters)
	}
}

func TestRegistryLookupIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x", Label{Key: "k", Value: "v"})
	c2 := r.Counter("x_total", "x", Label{Key: "k", Value: "v"})
	if c1 != c2 {
		t.Error("same (name, labels) produced distinct counters")
	}
	if c3 := r.Counter("x_total", "x", Label{Key: "k", Value: "w"}); c3 == c1 {
		t.Error("different labels shared a counter")
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge?")
}
