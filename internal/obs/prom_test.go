package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte for byte: families
// sorted, constant labels stamped on every series, histogram rendered
// cumulatively with le, escapes applied.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry(Label{Key: "module", Value: `m"1`})
	r.Counter("svc_requests_total", "Requests served.", Label{Key: "route", Value: "GET /v1/stats"}).Add(3)
	r.Counter("svc_requests_total", "Requests served.", Label{Key: "route", Value: "unmatched"}).Add(1)
	r.Gauge("svc_leases_active", "Live leases.").Set(2)
	r.GaugeFunc("svc_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("svc_latency_seconds", "Request latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP svc_latency_seconds Request latency.`,
		`# TYPE svc_latency_seconds histogram`,
		`svc_latency_seconds_bucket{le="0.001",module="m\"1"} 1`,
		`svc_latency_seconds_bucket{le="0.01",module="m\"1"} 2`,
		`svc_latency_seconds_bucket{le="+Inf",module="m\"1"} 3`,
		`svc_latency_seconds_sum{module="m\"1"} 5.0055`,
		`svc_latency_seconds_count{module="m\"1"} 3`,
		`# HELP svc_leases_active Live leases.`,
		`# TYPE svc_leases_active gauge`,
		`svc_leases_active{module="m\"1"} 2`,
		`# HELP svc_requests_total Requests served.`,
		`# TYPE svc_requests_total counter`,
		`svc_requests_total{module="m\"1",route="GET /v1/stats"} 3`,
		`svc_requests_total{module="m\"1",route="unmatched"} 1`,
		`# HELP svc_uptime_seconds Uptime.`,
		`# TYPE svc_uptime_seconds gauge`,
		`svc_uptime_seconds{module="m\"1"} 1.5`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// A second render of the same state is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated render differs")
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry(Label{Key: "go_version", Value: "go1.22"})
	r.Counter("rt_hits_total", "hits").Add(7)
	h := r.Histogram("rt_latency_seconds", "latency", nil)
	h.Observe(0.002)
	h.Observe(0.2)
	RegisterRuntimeMetrics(r)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ParsePrometheusText(&buf)
	if err != nil {
		t.Fatalf("own exposition does not lint: %v", err)
	}
	if f := doc.Families["rt_hits_total"]; f == nil || f.Type != "counter" || f.Samples != 1 {
		t.Errorf("rt_hits_total family: %+v", f)
	}
	if f := doc.Families["rt_latency_seconds"]; f == nil || f.Type != "histogram" {
		t.Errorf("rt_latency_seconds family: %+v", f)
	} else if f.Samples != len(DefaultLatencyBuckets)+1+2 { // buckets + +Inf + sum + count
		t.Errorf("histogram samples = %d, want %d", f.Samples, len(DefaultLatencyBuckets)+3)
	}
	if v, ok := doc.Sample("rt_hits_total"); !ok || v != 7 {
		t.Errorf("rt_hits_total sample = %v %v", v, ok)
	}
	if v, ok := doc.Sample("rt_latency_seconds_count"); !ok || v != 2 {
		t.Errorf("histogram count sample = %v %v", v, ok)
	}
	if _, ok := doc.Sample("go_goroutines"); !ok {
		t.Error("runtime metrics missing from exposition")
	}
}

func TestParseRejectsMalformedExpositions(t *testing.T) {
	bad := map[string]string{
		"invalid metric name":  "9metric 1\n",
		"unquoted label value": "m{k=v} 1\n",
		"unterminated label":   "m{k=\"v} 1\n",
		"unknown escape":       `m{k="\q"} 1` + "\n",
		"missing value":        "metric_only\n",
		"bad value":            "m notanumber\n",
		"unknown TYPE":         "# TYPE m sideways\nm 1\n",
		"bucket without le":    "# TYPE h histogram\nh_bucket{x=\"1\"} 1\n",
		"bad timestamp":        "m 1 notatime\n",
		"unbalanced braces":    "m}{ 1\n",
		"invalid label name":   "m{9k=\"v\"} 1\n",
	}
	for name, in := range bad {
		if _, err := ParsePrometheusText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}

	// And the things that must parse.
	good := "# HELP m help text\n# TYPE m counter\nm{a=\"x\\\\y\\n\\\"z\"} 1 1712345678\nm2 +Inf\nm3 NaN\n"
	doc, err := ParsePrometheusText(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if doc.Samples != 3 {
		t.Errorf("samples = %d, want 3", doc.Samples)
	}
}
