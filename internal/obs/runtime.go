package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.ReadMemStats per interval so a tight
// scrape loop (or several gauges sampled in one exposition) cannot turn
// the stop-the-world read into measurable overhead.
type runtimeSampler struct {
	mu  sync.Mutex
	at  time.Time
	mem runtime.MemStats
	ttl time.Duration
	now func() time.Time
}

func (s *runtimeSampler) stats() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if s.at.IsZero() || now.Sub(s.at) >= s.ttl {
		runtime.ReadMemStats(&s.mem)
		s.at = now
	}
	return &s.mem
}

// RegisterRuntimeMetrics adds the process health gauges — goroutines,
// heap, GC — to the registry, sampled at exposition time (memory stats
// are cached for one second between reads).
func RegisterRuntimeMetrics(r *Registry) {
	s := &runtimeSampler{ttl: time.Second, now: time.Now}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(s.stats().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(s.stats().HeapObjects) })
	r.GaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.",
		func() float64 { return float64(s.stats().Sys) })
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(s.stats().NumGC) })
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(s.stats().PauseTotalNs) / 1e9 })
}
