// Package obs is the operational observability layer shared by the
// service (campaignd) and the campaign engine: structured logging with
// request- and lease-scoped correlation IDs threaded through context,
// and a dependency-free metrics registry (counters, gauges, log-spaced
// latency histograms) rendered both as Prometheus text exposition and
// as JSON. One registry per process, one logger per process; everything
// in here is safe for concurrent use.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ctxKey namespaces the context values this package owns.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	leaseIDKey
)

// NewID returns a short random correlation id (8 bytes, hex). It is not
// a UUID and does not need to be: ids only disambiguate concurrent
// requests within one deployment's log window.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a constant
		// fallback keeps logging working rather than panicking.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns ctx carrying a request correlation id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request correlation id carried by ctx ("" when
// absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithLeaseID returns ctx carrying a lease correlation id, scoping every
// log line of a worker's compute to the lease it holds.
func WithLeaseID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, leaseIDKey, id)
}

// LeaseID returns the lease correlation id carried by ctx ("" when
// absent).
func LeaseID(ctx context.Context) string {
	id, _ := ctx.Value(leaseIDKey).(string)
	return id
}

// ctxHandler decorates an slog.Handler with the correlation ids found in
// each record's context, so call sites never thread ids by hand: pass
// the request's ctx to the logger (InfoContext et al.) and the ids
// appear as attributes.
type ctxHandler struct {
	inner slog.Handler
}

func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestID(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	if id := LeaseID(ctx); id != "" {
		rec.AddAttrs(slog.String("lease_id", id))
	}
	return h.inner.Handle(ctx, rec)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}

// discardHandler drops every record (a local stand-in for the
// slog.DiscardHandler that newer toolchains ship).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops everything — the nil-config
// default for library code.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// NewLogger builds the package's standard logger: text or JSON records
// on w at the given level, with context correlation ids auto-attached.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(ctxHandler{inner: h}), nil
}

// logfWriter adapts a printf-style sink to io.Writer, one call per
// record, trailing newline trimmed.
type logfWriter struct {
	logf func(format string, args ...any)
}

func (w logfWriter) Write(p []byte) (int, error) {
	w.logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// LogfLogger adapts a printf-style sink (testing.T.Logf, log.Printf)
// into a debug-level text logger with correlation ids attached — the
// bridge tests use to capture a server's structured logs.
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	h := slog.NewTextHandler(logfWriter{logf: logf}, &slog.HandlerOptions{Level: slog.LevelDebug})
	return slog.New(ctxHandler{inner: h})
}

// LogConfig is the CLI-facing logging configuration. Register the flags
// with RegisterLogFlags, then call Logger after parsing.
type LogConfig struct {
	Format string // "text" | "json"
	Level  string // "debug" | "info" | "warn" | "error"
}

// RegisterLogFlags adds the shared -log-format and -log-level flags to
// fs and returns the config they fill.
func RegisterLogFlags(fs *flag.FlagSet) *LogConfig {
	c := &LogConfig{}
	fs.StringVar(&c.Format, "log-format", "text", "log record format: text or json")
	fs.StringVar(&c.Level, "log-level", "info", "minimum log level: debug, info, warn, or error")
	return c
}

// Logger builds the logger the parsed flags describe, writing to w.
func (c *LogConfig) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(c.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", c.Level)
	}
	return NewLogger(w, c.Format, level)
}
