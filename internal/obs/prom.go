package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue applies the Prometheus text-format label escapes.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp applies the help-string escapes.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders {k="v",...} from the series labels merged with
// the registry constants plus any extra pairs (histogram le). Keys are
// emitted in sorted order for byte-deterministic output.
func renderLabels(consts, labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(consts)+len(labels)+len(extra))
	all = append(all, consts...)
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (v0.0.4): families sorted by name, series sorted by label
// signature, one HELP/TYPE header per family. The output is
// byte-deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshotMetrics()
	sort.SliceStable(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return labelSignature(metrics[i].labels) < labelSignature(metrics[j].labels)
	})
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			lastFamily = m.name
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind.promType())
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, renderLabels(r.consts, m.labels), formatValue(float64(m.counter.Value())))
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, renderLabels(r.consts, m.labels), formatValue(m.gauge.Value()))
		case kindGaugeFunc:
			r.mu.Lock()
			f := m.gaugeFn
			r.mu.Unlock()
			v := 0.0
			if f != nil {
				v = f()
			}
			fmt.Fprintf(bw, "%s%s %s\n", m.name, renderLabels(r.consts, m.labels), formatValue(v))
		case kindHistogram:
			s := m.hist.Snapshot()
			cum := uint64(0)
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name,
					renderLabels(r.consts, m.labels, Label{Key: "le", Value: formatValue(bound)}), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name,
				renderLabels(r.consts, m.labels, Label{Key: "le", Value: "+Inf"}), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.name, renderLabels(r.consts, m.labels), formatValue(s.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.name, renderLabels(r.consts, m.labels), s.Count)
		}
	}
	return bw.Flush()
}

// PromFamily is one metric family seen by the lint parser.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples int
}

// PromDoc is the lint parser's summary of one exposition.
type PromDoc struct {
	Families map[string]*PromFamily
	Samples  int

	values map[string]float64 // first-seen value per series name
}

// Sample returns the value of the first sample whose series name matches
// name exactly (ignoring labels), and whether one was seen.
func (d *PromDoc) Sample(name string) (float64, bool) {
	f, ok := d.values[name]
	return f, ok
}

func isValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isValidLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// familyOf strips the histogram/summary series suffixes back to the
// declared family name.
func familyOf(series string, families map[string]*PromFamily) (*PromFamily, bool) {
	if f, ok := families[series]; ok {
		return f, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(series, suffix)
		if base == series {
			continue
		}
		if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f, true
		}
	}
	return nil, false
}

// parseLabels consumes a {k="v",...} block, validating names and escape
// sequences, and returns the label map.
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	s = strings.TrimSpace(s)
	if s == "" {
		return out, nil
	}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q missing '='", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !isValidLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		rest := strings.TrimSpace(s[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		// Scan the quoted value honoring escapes.
		var val strings.Builder
		i := 1
		closed := false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, fmt.Errorf("label %s value ends mid-escape", name)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s value has unknown escape \\%c", name, rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %s value unterminated", name)
		}
		out[name] = val.String()
		s = strings.TrimSpace(rest[i:])
		if s == "" {
			break
		}
		if s[0] != ',' {
			return nil, fmt.Errorf("expected ',' between labels, got %q", s)
		}
		s = strings.TrimSpace(s[1:])
	}
	return out, nil
}

// ParsePrometheusText is the promtext-lint parser: it validates that an
// exposition parses — metric and label names well-formed, label values
// properly quoted and escaped, sample values numeric, TYPE declarations
// known, histogram series carrying le — and summarizes what it saw. It
// is deliberately small (CI gates on it without any new dependency) and
// rejects anything the real Prometheus scraper would.
func ParsePrometheusText(r io.Reader) (*PromDoc, error) {
	doc := &PromDoc{Families: make(map[string]*PromFamily), values: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !isValidMetricName(fields[2]) {
					return nil, fmt.Errorf("obs: line %d: malformed HELP: %q", lineNo, line)
				}
				f := doc.family(fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 || !isValidMetricName(fields[2]) {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE: %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown type %q", lineNo, fields[3])
				}
				doc.family(fields[2]).Type = fields[3]
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp]
		name := line
		labelPart := ""
		if open := strings.IndexByte(line, '{'); open >= 0 {
			closeIdx := strings.LastIndexByte(line, '}')
			if closeIdx < open {
				return nil, fmt.Errorf("obs: line %d: unbalanced label braces: %q", lineNo, line)
			}
			name = line[:open]
			labelPart = line[open+1 : closeIdx]
			line = line[closeIdx+1:]
		} else {
			sp := strings.IndexAny(line, " \t")
			if sp < 0 {
				return nil, fmt.Errorf("obs: line %d: sample without value: %q", lineNo, line)
			}
			name = line[:sp]
			line = line[sp:]
		}
		if !isValidMetricName(name) {
			return nil, fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
		}
		labels, err := parseLabels(labelPart)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		rest := strings.Fields(line)
		if len(rest) == 0 || len(rest) > 2 {
			return nil, fmt.Errorf("obs: line %d: want value [timestamp], got %q", lineNo, line)
		}
		v, err := parseSampleValue(rest[0])
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad sample value %q", lineNo, rest[0])
		}
		if len(rest) == 2 {
			if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad timestamp %q", lineNo, rest[1])
			}
		}
		if f, ok := familyOf(name, doc.Families); ok {
			f.Samples++
			if f.Type == "histogram" && strings.HasSuffix(name, "_bucket") {
				if _, ok := labels["le"]; !ok {
					return nil, fmt.Errorf("obs: line %d: histogram bucket without le label: %q", lineNo, name)
				}
			}
		}
		if _, ok := doc.values[name]; !ok {
			doc.values[name] = v
		}
		doc.Samples++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return doc, nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func (d *PromDoc) family(name string) *PromFamily {
	f, ok := d.Families[name]
	if !ok {
		f = &PromFamily{Name: name}
		d.Families[name] = f
	}
	return f
}
