package scenario

import (
	"testing"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/transport"
)

// Delayed ACKs and NewReno over the actual wireless medium: both options
// must keep the connection healthy and delayed ACKs must roughly halve
// the reverse-channel ACK traffic (freeing airtime).
func TestTCPOptionsOverWireless(t *testing.T) {
	run := func(mut func(*transport.TCPConfig)) *Flow {
		w, err := NewWorld(Config{Seed: 37, UseRTSCTS: true, DefaultBER: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddStation("rx", phys.Position{X: 5}, StationOpts{}); err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddStation("tx", phys.Position{}, StationOpts{}); err != nil {
			t.Fatal(err)
		}
		cfg := transport.DefaultTCPConfig(1)
		if mut != nil {
			mut(&cfg)
		}
		fl, err := w.AddTCPFlow(1, "tx", "rx", cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Run(4 * sim.Second)
		return fl
	}

	plain := run(nil)
	delayed := run(func(c *transport.TCPConfig) { c.AckDelay = 100 * sim.Millisecond })
	newReno := run(func(c *transport.TCPConfig) { c.NewReno = true })

	plainG := plain.Stats().UniquePackets
	if plainG == 0 {
		t.Fatal("baseline TCP carried nothing")
	}
	for name, fl := range map[string]*Flow{"delayed-ack": delayed, "newreno": newReno} {
		if g := fl.Stats().UniquePackets; g < plainG/2 {
			t.Errorf("%s collapsed throughput: %d vs %d packets", name, g, plainG)
		}
	}
	plainRatio := float64(plain.TCPRecv.AcksSent) / float64(plain.Stats().UniquePackets)
	delRatio := float64(delayed.TCPRecv.AcksSent) / float64(delayed.Stats().UniquePackets)
	if delRatio > 0.75*plainRatio {
		t.Errorf("delayed ACKs did not reduce ACK traffic: %.2f vs %.2f acks/pkt",
			delRatio, plainRatio)
	}
	// Delayed ACKs free reverse airtime: goodput should not fall by more
	// than ~20% and often rises.
	if float64(delayed.Stats().UniquePackets) < 0.8*float64(plainG) {
		t.Errorf("delayed ACKs cost too much goodput: %d vs %d",
			delayed.Stats().UniquePackets, plainG)
	}
}
