package scenario

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"greedy80211/internal/metrics"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
)

// worldFingerprint runs the world with a flight recorder attached and
// returns the full trace export plus flows and telemetry — every
// observable output, byte for byte.
func worldFingerprint(t *testing.T, w *World, d sim.Time) ([]byte, string) {
	t.Helper()
	rec := trace.NewRecorder(0)
	w.AttachTrace(rec, rec)
	w.Run(d)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rec.Meta("id", 5), rec.Events()); err != nil {
		t.Fatal(err)
	}
	var rest bytes.Buffer
	for _, fl := range w.Flows() {
		fmt.Fprintf(&rest, "%d:%.9f\n", fl.ID, fl.GoodputMbps(d))
	}
	if err := metrics.EncodeSnapshots(&rest, []*metrics.Snapshot{w.MetricsSnapshot()}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rest.String()
}

// Neighbor scoping is a pure delivery-iteration strategy: a scoped world
// and a broadcast-scan (DisableNeighborScoping) world built from the
// same config must be indistinguishable in every output — flow
// goodputs, telemetry, and the full flight-recorder stream byte for
// byte. The cases deliberately include clipped-range and multi-channel
// topologies, where the neighbor sets are strict subsets of the
// population and any membership or ordering bug would shift RNG draws.
func TestNeighborScopingByteIdentity(t *testing.T) {
	cases := []struct {
		name  string
		build func(cfg Config) (*World, error)
	}{
		{"pairs-full-range", func(cfg Config) (*World, error) {
			cfg.UseRTSCTS = true
			return BuildPairs(PairsConfig{Config: cfg, N: 2, Transport: UDP})
		}},
		{"hidden-pairs-clipped", func(cfg Config) (*World, error) {
			return BuildHiddenPairs(HiddenPairsConfig{Config: cfg})
		}},
		{"cells-grid-clipped", func(cfg Config) (*World, error) {
			prop := phys.GRCPropagation()
			cfg.Propagation = &prop
			return BuildCells(CellsConfig{
				Config: cfg,
				Topology: TopologySpec{
					NumCells:        9,
					GridCols:        3,
					ChannelPlan:     []int{1, 6, 11},
					DefaultStations: 3,
					DefaultUplink:   1,
				},
				CBRRateBps: 1e6,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(broadcast bool) ([]byte, string) {
				w, err := tc.build(Config{Seed: 5, DisableNeighborScoping: broadcast})
				if err != nil {
					t.Fatal(err)
				}
				return worldFingerprint(t, w, 2*sim.Second)
			}
			scopedTrace, scopedRest := run(false)
			bcastTrace, bcastRest := run(true)
			if !bytes.Equal(scopedTrace, bcastTrace) {
				t.Errorf("trace exports differ: scoped %d bytes, broadcast %d bytes",
					len(scopedTrace), len(bcastTrace))
			}
			if len(scopedTrace) == 0 {
				t.Error("empty trace export")
			}
			if scopedRest != bcastRest {
				t.Errorf("flows/metrics differ:\n--- scoped ---\n%s\n--- broadcast ---\n%s",
					scopedRest, bcastRest)
			}
		})
	}
}

// TestScopedDeliveryMatchesBroadcastRandom is the property test behind
// the refactor: on randomized clipped-range layouts, a scoped world
// delivers exactly the frames the broadcast scan delivers to in-range
// radios — nothing missing at the edge of range, nothing extra across
// channels. Layout randomness is its own stream (the world's seed stays
// fixed), so each trial compares two identically-built worlds that
// differ only in delivery iteration.
func TestScopedDeliveryMatchesBroadcastRandom(t *testing.T) {
	const stations = 24
	prop := phys.GRCPropagation() // 55 m comm / 99 m CS: heavy clipping
	for layout := int64(1); layout <= 5; layout++ {
		layout := layout
		t.Run(fmt.Sprintf("layout%d", layout), func(t *testing.T) {
			rng := rand.New(rand.NewSource(layout))
			type site struct {
				pos phys.Position
				ch  int
			}
			sites := make([]site, stations)
			for i := range sites {
				sites[i] = site{
					pos: phys.Position{X: rng.Float64() * 300, Y: rng.Float64() * 300},
					ch:  []int{1, 6}[rng.Intn(2)],
				}
			}
			build := func(broadcast bool) *World {
				w, err := NewWorld(Config{
					Seed:                   9,
					Propagation:            &prop,
					DisableNeighborScoping: broadcast,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, s := range sites {
					name := fmt.Sprintf("N%d", i+1)
					if _, err := w.AddStation(name, s.pos, StationOpts{Channel: s.ch}); err != nil {
						t.Fatal(err)
					}
				}
				// One flow per station toward its nearest co-channel
				// in-comm-range peer (deterministic from the layout);
				// isolated stations stay silent.
				flowID := 1
				for i, s := range sites {
					best, bestDist := -1, math.Inf(1)
					for j, o := range sites {
						if j == i || o.ch != s.ch {
							continue
						}
						if d := s.pos.DistanceTo(o.pos); d <= prop.CommRange && d < bestDist {
							best, bestDist = j, d
						}
					}
					if best < 0 {
						continue
					}
					if _, err := w.AddUDPFlow(flowID,
						fmt.Sprintf("N%d", i+1), fmt.Sprintf("N%d", best+1), 5e5, 512); err != nil {
						t.Fatal(err)
					}
					flowID++
				}
				return w
			}
			scopedTrace, scopedRest := worldFingerprint(t, build(false), sim.Second)
			bcastTrace, bcastRest := worldFingerprint(t, build(true), sim.Second)
			if !bytes.Equal(scopedTrace, bcastTrace) {
				t.Errorf("trace exports differ: scoped %d bytes, broadcast %d bytes",
					len(scopedTrace), len(bcastTrace))
			}
			if len(scopedTrace) == 0 {
				t.Error("empty trace export")
			}
			if scopedRest != bcastRest {
				t.Errorf("flows/metrics differ:\n--- scoped ---\n%s\n--- broadcast ---\n%s",
					scopedRest, bcastRest)
			}
		})
	}
}
