package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

func TestPolicySpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    PolicySpec
		wantErr string // substring; empty = valid
	}{
		{"zero", PolicySpec{}, ""},
		{"nav", PolicySpec{Name: PolicyNAVInflation, NAVInflation: 5 * sim.Millisecond}, ""},
		{"nav frames", PolicySpec{Name: PolicyNAVInflation, Frames: "all"}, ""},
		{"spoof", PolicySpec{Name: PolicyACKSpoofing, Victims: []string{"R1"}}, ""},
		{"fake", PolicySpec{Name: PolicyFakeACKs, GreedyPercent: 50}, ""},
		{"unknown name", PolicySpec{Name: "bogus"}, "unknown policy"},
		{"params without name", PolicySpec{NAVInflation: sim.Millisecond}, "no policy name"},
		{"bad percent", PolicySpec{Name: PolicyFakeACKs, GreedyPercent: 101}, "out of [0,100]"},
		{"bad frames", PolicySpec{Name: PolicyNAVInflation, Frames: "bogus"}, "unknown"},
		{"nav victims", PolicySpec{Name: PolicyNAVInflation, Victims: []string{"R1"}}, "victims"},
		{"spoof nav knob", PolicySpec{Name: PolicyACKSpoofing, NAVInflation: sim.Millisecond}, "NAV"},
		{"fake extra knob", PolicySpec{Name: PolicyFakeACKs, Frames: "ack"}, "greedy percentage"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestStationSpecJSONRoundTrip(t *testing.T) {
	in := StationSpec{
		Policy:   PolicySpec{Name: PolicyACKSpoofing, GreedyPercent: 30, Victims: []string{"R1", "R2"}},
		QueueCap: 64,
		Position: &phys.Position{X: 12, Y: 7},
		Channel:  6,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out StationSpec
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Policy.Name != PolicyACKSpoofing || out.Policy.GreedyPercent != 30 ||
		len(out.Policy.Victims) != 2 || out.QueueCap != 64 ||
		out.Position == nil || out.Position.X != 12 || out.Channel != 6 {
		t.Fatalf("round trip = %+v (raw %s)", out, raw)
	}
}

// TestStationSpecMatchesClosure: a declarative spec world is byte-identical
// to the equivalent closure-built world — the spec path is a pure data
// encoding of the same construction order and RNG draws.
func TestStationSpecMatchesClosure(t *testing.T) {
	goodputs := func(cfg PairsConfig) []float64 {
		t.Helper()
		w, err := BuildPairs(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Run(500 * sim.Millisecond)
		var out []float64
		for _, fl := range w.Flows() {
			out = append(out, fl.GoodputMbps(500*sim.Millisecond))
		}
		return out
	}
	base := Config{Seed: 11, UseRTSCTS: true}
	closure := goodputs(PairsConfig{Config: base, N: 3, Transport: UDP,
		ReceiverOpts: func(w *World, i int) StationOpts {
			if i != 2 {
				return StationOpts{}
			}
			return StationOpts{Policy: greedy.NewNAVInflation(w.Sched.RNG(), greedy.CTSAndACK, 10*sim.Millisecond, 100)}
		}})
	spec := goodputs(PairsConfig{Config: base, N: 3, Transport: UDP,
		ReceiverSpecs: []StationSpec{{}, {}, {Policy: PolicySpec{Name: PolicyNAVInflation}}}})
	if len(closure) != len(spec) {
		t.Fatalf("flow counts differ: %d vs %d", len(closure), len(spec))
	}
	for i := range closure {
		if closure[i] != spec[i] {
			t.Fatalf("flow %d: closure %v != spec %v", i+1, closure[i], spec[i])
		}
	}
}

func TestStationSpecErrors(t *testing.T) {
	// Specs and the closure together are a config error.
	_, err := BuildPairs(PairsConfig{Config: Config{Seed: 1}, N: 1, Transport: UDP,
		ReceiverSpecs: []StationSpec{{}},
		ReceiverOpts:  func(w *World, i int) StationOpts { return StationOpts{} }})
	if err == nil || !strings.Contains(err.Error(), "not both") {
		t.Fatalf("specs+closure: err = %v", err)
	}
	// A spoofing victim that has not been added yet is reported.
	_, err = BuildPairs(PairsConfig{Config: Config{Seed: 1}, N: 1, Transport: UDP,
		ReceiverSpecs: []StationSpec{{Policy: PolicySpec{Name: PolicyACKSpoofing, Victims: []string{"nope"}}}}})
	if err == nil || !strings.Contains(err.Error(), "not added") {
		t.Fatalf("missing victim: err = %v", err)
	}
}

// TestStationSpecPositionOverride: a spec's Position replaces the
// builder's default placement.
func TestStationSpecPositionOverride(t *testing.T) {
	w, err := BuildPairs(PairsConfig{Config: Config{Seed: 1}, N: 1, Transport: UDP,
		ReceiverSpecs: []StationSpec{{Position: &phys.Position{X: 40, Y: 9}}}})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := w.Station(ReceiverName(0))
	if !ok {
		t.Fatal("R1 missing")
	}
	pos, ok := w.Medium.Position(st.ID)
	if !ok || pos.X != 40 || pos.Y != 9 {
		t.Fatalf("R1 at %+v, want the spec's override", pos)
	}
}
