package scenario

import (
	"fmt"

	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// Policy names accepted by PolicySpec.Name.
const (
	// PolicyNone is a compliant receiver (the zero value).
	PolicyNone = ""
	// PolicyNAVInflation is misbehavior 1: inflated duration fields.
	PolicyNAVInflation = "nav-inflation"
	// PolicyACKSpoofing is misbehavior 2: ACKs forged on victims' behalf.
	PolicyACKSpoofing = "ack-spoofing"
	// PolicyFakeACKs is misbehavior 3: ACKs for corrupted frames.
	PolicyFakeACKs = "fake-acks"
)

// PolicySpec is the declarative, JSON-serializable description of a
// (possibly greedy) receiver policy: a name plus the knobs the paper
// sweeps. It replaces Go closures in builder configs so campaign and
// topology specs can express greedy mixes as data. The zero value is a
// compliant receiver.
type PolicySpec struct {
	// Name selects the misbehavior (PolicyNone, PolicyNAVInflation,
	// PolicyACKSpoofing, PolicyFakeACKs).
	Name string `json:"name,omitempty"`
	// GreedyPercent is how often the receiver misbehaves; zero means 100.
	GreedyPercent float64 `json:"greedy_percent,omitempty"`
	// NAVInflation is misbehavior 1's added duration; zero means 10 ms.
	NAVInflation sim.Time `json:"nav_inflation,omitempty"`
	// Frames selects misbehavior 1's manipulated frame types: "cts",
	// "ack", "cts+ack" (default), "rts+cts", or "all".
	Frames string `json:"frames,omitempty"`
	// Victims lists already-added stations an ACK spoofer forges ACKs
	// for.
	Victims []string `json:"victims,omitempty"`
}

// IsZero reports whether the spec is the compliant zero value.
func (p PolicySpec) IsZero() bool {
	return p.Name == PolicyNone && p.GreedyPercent == 0 && p.NAVInflation == 0 &&
		p.Frames == "" && len(p.Victims) == 0
}

// frameSets maps PolicySpec.Frames names to greedy frame sets.
var frameSets = map[string]greedy.FrameSet{
	"cts":     greedy.CTSOnly,
	"ack":     greedy.ACKOnly,
	"cts+ack": greedy.CTSAndACK,
	"rts+cts": greedy.RTSAndCTS,
	"all":     greedy.AllFrames,
}

// Validate reports whether the spec is well-formed: a known policy name,
// percentages in range, and no knob that belongs to a different policy.
func (p PolicySpec) Validate() error {
	if p.GreedyPercent < 0 || p.GreedyPercent > 100 {
		return fmt.Errorf("scenario: PolicySpec.GreedyPercent %v out of [0,100]", p.GreedyPercent)
	}
	switch p.Name {
	case PolicyNone:
		if !p.IsZero() {
			return fmt.Errorf("scenario: PolicySpec has parameters but no policy name")
		}
	case PolicyNAVInflation:
		if p.Frames != "" {
			if _, ok := frameSets[p.Frames]; !ok {
				return fmt.Errorf("scenario: PolicySpec.Frames %q unknown (cts, ack, cts+ack, rts+cts, all)", p.Frames)
			}
		}
		if len(p.Victims) != 0 {
			return fmt.Errorf("scenario: PolicySpec %q does not take victims", p.Name)
		}
	case PolicyACKSpoofing:
		if p.NAVInflation != 0 || p.Frames != "" {
			return fmt.Errorf("scenario: PolicySpec %q does not take NAV/frame knobs", p.Name)
		}
	case PolicyFakeACKs:
		if p.NAVInflation != 0 || p.Frames != "" || len(p.Victims) != 0 {
			return fmt.Errorf("scenario: PolicySpec %q takes only a greedy percentage", p.Name)
		}
	default:
		return fmt.Errorf("scenario: unknown policy %q", p.Name)
	}
	return nil
}

// build materializes the policy against a world under construction.
// Victims must already be added (builders add receivers first).
func (p PolicySpec) build(w *World) (mac.ReceiverPolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gp := p.GreedyPercent
	if gp == 0 {
		gp = 100
	}
	switch p.Name {
	case PolicyNone:
		return nil, nil
	case PolicyNAVInflation:
		extra := p.NAVInflation
		if extra == 0 {
			extra = 10 * sim.Millisecond
		}
		set := greedy.CTSAndACK
		if p.Frames != "" {
			set = frameSets[p.Frames]
		}
		return greedy.NewNAVInflation(w.Sched.RNG(), set, extra, gp), nil
	case PolicyACKSpoofing:
		victims := make([]mac.NodeID, 0, len(p.Victims))
		for _, name := range p.Victims {
			st, ok := w.Station(name)
			if !ok {
				return nil, fmt.Errorf("scenario: spoof victim %q not added yet", name)
			}
			victims = append(victims, st.ID)
		}
		return greedy.NewACKSpoofer(w.Sched.RNG(), gp, victims...), nil
	case PolicyFakeACKs:
		return greedy.NewFakeACKer(w.Sched.RNG(), gp), nil
	default:
		return nil, fmt.Errorf("scenario: unknown policy %q", p.Name)
	}
}

// StationSpec declaratively customizes one builder station — the
// JSON-serializable counterpart of a ReceiverOpts/SenderOpts closure, so
// campaign specs can express greedy mixes, GRC deployment, queue sizing,
// and placement as data.
type StationSpec struct {
	// Policy installs a (possibly greedy) receiver policy.
	Policy PolicySpec `json:"policy,omitempty"`
	// GRC installs the countermeasure observer with the given config.
	GRC *detect.Config `json:"grc,omitempty"`
	// QueueCap overrides the world's MAC queue bound for this station.
	QueueCap int `json:"queue_cap,omitempty"`
	// Position overrides the builder's default placement.
	Position *phys.Position `json:"position,omitempty"`
	// Channel overrides the builder's channel assignment (multi-BSS
	// worlds); zero keeps it.
	Channel int `json:"channel,omitempty"`
}

// opts materializes the spec into StationOpts against a world under
// construction.
func (s StationSpec) opts(w *World) (StationOpts, error) {
	policy, err := s.Policy.build(w)
	if err != nil {
		return StationOpts{}, err
	}
	return StationOpts{
		Policy:   policy,
		GRC:      s.GRC,
		QueueCap: s.QueueCap,
		Channel:  s.Channel,
	}, nil
}

// stationFor resolves station i's options and position during a build:
// the declarative spec slice wins (missing indices are compliant
// stations), the legacy closure is the func-based wrapper for existing
// call sites, and setting both is a config error.
func stationFor(w *World, i int, def phys.Position, specs []StationSpec,
	fn func(w *World, i int) StationOpts) (StationOpts, phys.Position, error) {
	if len(specs) > 0 && fn != nil {
		return StationOpts{}, def, fmt.Errorf("scenario: set station specs or the opts callback, not both")
	}
	if i < len(specs) {
		opts, err := specs[i].opts(w)
		if err != nil {
			return StationOpts{}, def, err
		}
		pos := def
		if specs[i].Position != nil {
			pos = *specs[i].Position
		}
		return opts, pos, nil
	}
	if fn != nil {
		return fn(w, i), def, nil
	}
	return StationOpts{}, def, nil
}
