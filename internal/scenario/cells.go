package scenario

import (
	"fmt"
	"math"

	"greedy80211/internal/medium"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/transport"
)

// Multi-BSS layout defaults.
const (
	// DefaultCellSpacing separates adjacent grid cells. 100 m keeps
	// same-channel neighbors outside communication range under the
	// default propagation while leaving them well inside carrier-sense
	// range — the overlapping-hotspot regime.
	DefaultCellSpacing = 100.0
	// DefaultCellRadius is the station ring radius around each AP.
	DefaultCellRadius = 10.0
)

// CellAPName names cell c's access point ("AP1", "AP2", … 1-based as
// elsewhere).
func CellAPName(c int) string { return fmt.Sprintf("AP%d", c+1) }

// CellStationName names station s of cell c ("C1S1", "C1S2", …).
func CellStationName(c, s int) string { return fmt.Sprintf("C%dS%d", c+1, s+1) }

// CellSpec describes one BSS: an AP plus a ring of client stations on a
// shared channel. Zero values inherit the TopologySpec defaults.
type CellSpec struct {
	// Channel is the cell's channel; zero takes the topology's channel
	// plan (or medium.DefaultChannel without one).
	Channel int `json:"channel,omitempty"`
	// Stations is the number of client stations; zero inherits
	// DefaultStations.
	Stations int `json:"stations,omitempty"`
	// Uplink is how many of the cell's stations send uplink traffic to
	// the AP; the rest receive downlink. Zero inherits DefaultUplink.
	Uplink int `json:"uplink,omitempty"`
	// Center overrides the cell's grid placement — set it to build
	// clusters instead of grids.
	Center *phys.Position `json:"center,omitempty"`
	// Radius is the station ring radius; zero inherits DefaultRadius.
	Radius float64 `json:"radius,omitempty"`
	// StationSpecs customizes individual stations (greedy placement, GRC
	// deployment); missing indices are compliant stations.
	StationSpecs []StationSpec `json:"station_specs,omitempty"`
}

// TopologySpec is the serializable description of a multi-BSS world: how
// many cells, where they sit, which channels they use, and which
// stations misbehave. It contains no Go closures, so campaign files can
// carry whole hotspot deployments as JSON.
type TopologySpec struct {
	// Cells enumerates per-cell overrides. Cells beyond len(Cells), up
	// to NumCells, use the defaults.
	Cells []CellSpec `json:"cells,omitempty"`
	// NumCells is the total cell count when larger than len(Cells) — a
	// homogeneous grid needs no per-cell entries.
	NumCells int `json:"num_cells,omitempty"`
	// GridCols is the grid width; zero means the squarest grid
	// (ceil(sqrt(n)) columns).
	GridCols int `json:"grid_cols,omitempty"`
	// GridSpacing is the distance between adjacent cell centers; zero
	// means DefaultCellSpacing.
	GridSpacing float64 `json:"grid_spacing,omitempty"`
	// ChannelPlan assigns channels round-robin to cells without an
	// explicit Channel; empty means every cell shares
	// medium.DefaultChannel.
	ChannelPlan []int `json:"channel_plan,omitempty"`
	// DefaultStations is the station count for cells that leave Stations
	// zero.
	DefaultStations int `json:"default_stations,omitempty"`
	// DefaultUplink is the uplink count for cells that leave Uplink zero.
	DefaultUplink int `json:"default_uplink,omitempty"`
	// DefaultRadius is the ring radius for cells that leave Radius zero;
	// zero means DefaultCellRadius.
	DefaultRadius float64 `json:"default_radius,omitempty"`
}

// cellCount is the effective number of cells.
func (t TopologySpec) cellCount() int {
	if t.NumCells > len(t.Cells) {
		return t.NumCells
	}
	return len(t.Cells)
}

// cell resolves cell c with the topology defaults applied.
func (t TopologySpec) cell(c int) CellSpec {
	var cs CellSpec
	if c < len(t.Cells) {
		cs = t.Cells[c]
	}
	if cs.Stations == 0 {
		cs.Stations = t.DefaultStations
	}
	if cs.Uplink == 0 {
		cs.Uplink = t.DefaultUplink
	}
	if cs.Radius == 0 {
		cs.Radius = t.DefaultRadius
	}
	if cs.Radius == 0 {
		cs.Radius = DefaultCellRadius
	}
	if cs.Channel == 0 {
		if len(t.ChannelPlan) > 0 {
			cs.Channel = t.ChannelPlan[c%len(t.ChannelPlan)]
		} else {
			cs.Channel = medium.DefaultChannel
		}
	}
	return cs
}

// Validate reports whether the topology is well-formed.
func (t TopologySpec) Validate() error {
	if t.cellCount() <= 0 {
		return fmt.Errorf("scenario: TopologySpec has no cells")
	}
	if t.GridCols < 0 || t.NumCells < 0 || t.GridSpacing < 0 || t.DefaultRadius < 0 {
		return fmt.Errorf("scenario: TopologySpec has negative layout parameters")
	}
	for i, ch := range t.ChannelPlan {
		if ch <= 0 {
			return fmt.Errorf("scenario: TopologySpec channel plan entry %d is %d, want positive", i, ch)
		}
	}
	for c := 0; c < t.cellCount(); c++ {
		cs := t.cell(c)
		if cs.Stations < 0 || cs.Channel < 0 {
			return fmt.Errorf("scenario: cell %d has negative parameters", c)
		}
		if cs.Uplink < 0 || cs.Uplink > cs.Stations {
			return fmt.Errorf("scenario: cell %d uplink count %d exceeds its %d stations", c, cs.Uplink, cs.Stations)
		}
		if len(cs.StationSpecs) > cs.Stations {
			return fmt.Errorf("scenario: cell %d has %d station specs for %d stations", c, len(cs.StationSpecs), cs.Stations)
		}
	}
	return nil
}

// GridTopology is the common homogeneous case: cells identical grid
// cells, stationsPerCell clients each, channels assigned round-robin
// from plan.
func GridTopology(cells, stationsPerCell int, plan []int) TopologySpec {
	return TopologySpec{NumCells: cells, DefaultStations: stationsPerCell, ChannelPlan: plan}
}

// CellsConfig builds a multi-BSS hotspot world from a TopologySpec.
type CellsConfig struct {
	Config
	Topology TopologySpec
	// Transport selects UDP (CBR) or TCP for every flow.
	Transport Transport
	// CBRRateBps is the per-flow UDP rate; zero means the saturating
	// default.
	CBRRateBps float64
	// PayloadBytes is the data packet size; zero means 1024.
	PayloadBytes int
}

// BuildCells constructs the multi-BSS world: per cell, one AP at the
// grid point (or the cell's Center) and a ring of stations around it,
// all on the cell's channel, with one flow per station (downlink from
// the AP, or uplink for the first Uplink stations). Flow IDs are
// sequential across cells in cell order.
func BuildCells(cfg CellsConfig) (*World, error) {
	top := cfg.Topology
	if err := top.Validate(); err != nil {
		return nil, err
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = DefaultPayloadBytes
	}
	if cfg.CBRRateBps == 0 {
		cfg.CBRRateBps = DefaultCBRRateBps
	}
	n := top.cellCount()
	cols := top.GridCols
	if cols == 0 {
		cols = int(math.Ceil(math.Sqrt(float64(n))))
	}
	spacing := top.GridSpacing
	if spacing == 0 {
		spacing = DefaultCellSpacing
	}
	// A multi-BSS world carries hundreds of flows; the single-cell 1 ms
	// start stagger would push late flows past typical run lengths.
	if cfg.FlowStagger == 0 {
		cfg.FlowStagger = 10 * sim.Microsecond
	}
	w, err := NewWorld(cfg.Config)
	if err != nil {
		return nil, err
	}
	flowID := 1
	for c := 0; c < n; c++ {
		cell := top.cell(c)
		center := phys.Position{X: float64(c%cols) * spacing, Y: float64(c/cols) * spacing}
		if cell.Center != nil {
			center = *cell.Center
		}
		if _, err := w.AddStation(CellAPName(c), center, StationOpts{Channel: cell.Channel}); err != nil {
			return nil, err
		}
		for s := 0; s < cell.Stations; s++ {
			// Deterministic ring placement: station s at angle
			// 2πs/count, so layouts are reproducible without RNG draws.
			theta := 2 * math.Pi * float64(s) / float64(cell.Stations)
			def := phys.Position{
				X: center.X + cell.Radius*math.Cos(theta),
				Y: center.Y + cell.Radius*math.Sin(theta),
			}
			opts, pos, err := stationFor(w, s, def, cell.StationSpecs, nil)
			if err != nil {
				return nil, err
			}
			if opts.Channel == 0 {
				opts.Channel = cell.Channel
			}
			if _, err := w.AddStation(CellStationName(c, s), pos, opts); err != nil {
				return nil, err
			}
		}
		for s := 0; s < cell.Stations; s++ {
			src, dst := CellAPName(c), CellStationName(c, s)
			if s < cell.Uplink {
				src, dst = dst, src
			}
			switch cfg.Transport {
			case TCP:
				_, err = w.AddTCPFlow(flowID, src, dst, transport.DefaultTCPConfig(flowID))
			default:
				_, err = w.AddUDPFlow(flowID, src, dst, cfg.CBRRateBps, cfg.PayloadBytes)
			}
			if err != nil {
				return nil, err
			}
			flowID++
		}
	}
	return w, nil
}
